(* Experiment harness: regenerates every quantitative claim tracked in
   EXPERIMENTS.md (the paper has no measured tables or figures — it is a
   theory paper — so the "tables" are the theorem-level claims E1..E16 of
   DESIGN.md).  Run everything:

     dune exec bench/main.exe

   or a subset, optionally emitting machine-readable reports (one
   BENCH_<EXP>.json per experiment, schema documented in EXPERIMENTS.md):

     dune exec bench/main.exe -- E1 E5 E11 --json --out _reports

   This harness measures wall-clock time by design (PERF experiments and
   per-experiment progress lines); the waiver below acknowledges that.
   lbcc-lint: allow-file det-wall-clock
*)

open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Paths = Lbcc_graph.Paths
module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense
module Chebyshev = Lbcc_linalg.Chebyshev
module Spanner = Lbcc_spanner.Spanner
module Sparsify = Lbcc_sparsifier.Sparsify
module Apriori = Lbcc_sparsifier.Apriori
module Certify = Lbcc_sparsifier.Certify
module Exact = Lbcc_laplacian.Exact
module Solver = Lbcc_laplacian.Solver
module Leverage = Lbcc_lp.Leverage
module Lewis = Lbcc_lp.Lewis
module Mixed_ball = Lbcc_lp.Mixed_ball
module Problem = Lbcc_lp.Problem
module Ipm = Lbcc_lp.Ipm
module Network = Lbcc_flow.Network
module Mcmf = Lbcc_flow.Mcmf
module Mcmf_lp = Lbcc_flow.Mcmf_lp
module Model = Lbcc_net.Model
module Engine = Lbcc_net.Engine
module Vstate = Lbcc_net.Vstate
module Rounds = Lbcc_net.Rounds
module Fault = Lbcc_net.Fault
module Byzantine = Lbcc_net.Byzantine
module Bfs = Lbcc_dist.Bfs
module Report = Lbcc_obs.Report
module Json = Lbcc_obs.Json
module Metrics = Lbcc_obs.Metrics
module Cache = Lbcc_service.Cache
module Prepared = Lbcc_service.Prepared

let section id title = Printf.printf "\n=== %s: %s ===\n" id title

let note fmt = Printf.printf fmt

let cl ?direction name measured bound =
  Report.claim ?direction ~name ~measured ~bound ()

let report ?(phases = []) ?(extra = []) ~experiment ~title claims =
  { Report.experiment; title; claims; phases; extra }

let phases_of acc =
  List.map2
    (fun (label, rounds) (_, bits) -> { Report.label; rounds; bits })
    (Rounds.breakdown acc) (Rounds.bits_breakdown acc)

let log2f x = log x /. log 2.0

(* ------------------------------------------------------------------ *)
(* E1: spanner stretch / size / out-degree (Lemma 3.1)                 *)

let e1 () =
  section "E1" "spanner stretch & size vs Lemma 3.1 bounds";
  Printf.printf "%-12s %4s %2s | %6s %6s %10s | %7s %5s | %7s %6s\n" "family" "n"
    "k" "m" "|F+|" "kn^(1+1/k)" "stretch" "2k-1" "maxdeg+" "bound";
  let families =
    [
      ( "ER(0.3)",
        fun seed -> Gen.erdos_renyi_connected (Prng.create seed) ~n:64 ~p:0.3 ~w_max:8 );
      ("grid8x8", fun seed -> Gen.grid (Prng.create seed) ~rows:8 ~cols:8 ~w_max:8);
      ( "geometric",
        fun seed -> Gen.random_geometric (Prng.create seed) ~n:64 ~radius:0.3 ~w_max:8 );
      ("complete", fun seed -> Gen.complete (Prng.create seed) ~n:64 ~w_max:8);
    ]
  in
  let stretch_ratio = ref 0.0 and size_ratio = ref 0.0 and deg_ratio = ref 0.0 in
  List.iter
    (fun (name, make) ->
      List.iter
        (fun k ->
          let g = make 1 in
          let n = Graph.n g in
          let p = Array.make (Graph.m g) 1.0 in
          let r = Spanner.run ~prng:(Prng.create 7) ~graph:g ~p ~k () in
          let h = Graph.sub_edges g r.Spanner.fplus in
          let stretch = Paths.stretch g h in
          let nf = float_of_int n in
          let size_bound =
            float_of_int k *. (nf ** (1.0 +. (1.0 /. float_of_int k)))
          in
          let deg_bound = float_of_int k *. (nf ** (1.0 /. float_of_int k)) in
          let maxdeg = Array.fold_left Stdlib.max 0 (Spanner.out_degrees g r) in
          stretch_ratio :=
            Float.max !stretch_ratio (stretch /. float_of_int ((2 * k) - 1));
          size_ratio :=
            Float.max !size_ratio
              (float_of_int (List.length r.Spanner.fplus) /. size_bound);
          deg_ratio := Float.max !deg_ratio (float_of_int maxdeg /. deg_bound);
          Printf.printf "%-12s %4d %2d | %6d %6d %10.0f | %7.2f %5d | %7d %6.1f\n"
            name n k (Graph.m g)
            (List.length r.Spanner.fplus)
            size_bound stretch
            ((2 * k) - 1)
            maxdeg deg_bound)
        [ 2; 3; 4 ])
    families;
  note "claim: stretch <= 2k-1 always; |F+| = O(k n^{1+1/k}); out-degree O(k n^{1/k}).\n";
  report ~experiment:"E1" ~title:"spanner stretch & size vs Lemma 3.1 bounds"
    [
      cl "max stretch / (2k-1)" !stretch_ratio 1.0;
      cl "max |F+| / (k n^{1+1/k})" !size_ratio 1.0;
      cl "max out-degree / (k n^{1/k})" !deg_ratio 4.0;
    ]

(* ------------------------------------------------------------------ *)
(* E2: spanner round complexity (Lemma 3.2)                            *)

let e2 () =
  section "E2" "spanner rounds vs Lemma 3.2 formula";
  Printf.printf "%5s %6s %2s | %7s %12s %7s\n" "n" "m" "k" "rounds" "kn^(1/k)logn"
    "ratio";
  let k = 3 in
  let max_ratio = ref 0.0 in
  let data =
    List.map
      (fun n ->
        let g = Gen.erdos_renyi_connected (Prng.create n) ~n ~p:0.3 ~w_max:8 in
        let p = Array.make (Graph.m g) 1.0 in
        let r = Spanner.run ~prng:(Prng.create 13) ~graph:g ~p ~k () in
        let nf = float_of_int n in
        let formula = float_of_int k *. (nf ** (1.0 /. float_of_int k)) *. log nf in
        max_ratio := Float.max !max_ratio (float_of_int r.Spanner.rounds /. formula);
        Printf.printf "%5d %6d %2d | %7d %12.1f %7.2f\n" n (Graph.m g) k
          r.Spanner.rounds formula
          (float_of_int r.Spanner.rounds /. formula);
        (nf, float_of_int r.Spanner.rounds))
      [ 32; 64; 128; 256 ]
  in
  let expo =
    Stats.scaling_exponent
      (Array.of_list (List.map fst data))
      (Array.of_list (List.map snd data))
  in
  note "measured rounds ~ n^%.2f (claimed n^{1/k} * polylog = n^%.2f * polylog)\n" expo
    (1.0 /. float_of_int k);
  report ~experiment:"E2" ~title:"spanner rounds vs Lemma 3.2 formula"
    [
      cl "max rounds / (k n^{1/k} ln n)" !max_ratio 4.0;
      cl "rounds scaling exponent (n^{1/3} + polylog at small n)" expo 0.85;
    ]

(* ------------------------------------------------------------------ *)
(* E3: sparsifier quality / size / rounds (Theorem 1.2)                *)

let e3 () =
  section "E3" "spectral sparsifier quality and rounds (Theorem 1.2)";
  Printf.printf "-- quality vs bundle size t (ER n=48 p=0.6, k=3) --\n";
  Printf.printf "%3s | %6s %9s %8s\n" "t" "m_H" "eps_cert" "rounds";
  let g48 = Gen.erdos_renyi_connected (Prng.create 3) ~n:48 ~p:0.6 ~w_max:4 in
  let eps_t8 = ref infinity and rounds_t8 = ref 0 in
  List.iter
    (fun t ->
      let r = Sparsify.run ~prng:(Prng.create 17) ~graph:g48 ~epsilon:0.5 ~t ~k:3 () in
      let c = Certify.exact g48 r.Sparsify.sparsifier in
      if t = 8 then begin
        eps_t8 := c.Certify.epsilon_achieved;
        rounds_t8 := r.Sparsify.rounds
      end;
      Printf.printf "%3d | %6d %9.3f %8d\n" t
        (Graph.m r.Sparsify.sparsifier)
        c.Certify.epsilon_achieved r.Sparsify.rounds)
    [ 1; 2; 4; 8; 12 ];
  Printf.printf "-- rounds vs n (complete graphs, t=4, k=4) --\n";
  Printf.printf "%4s %6s | %6s %9s %8s %9s\n" "n" "m" "m_H" "eps_cert" "rounds"
    "log^5(n)";
  let data =
    List.map
      (fun n ->
        let g = Gen.complete (Prng.create n) ~n ~w_max:4 in
        let r = Sparsify.run ~prng:(Prng.create 19) ~graph:g ~epsilon:0.5 ~t:4 ~k:4 () in
        let c = Certify.exact g r.Sparsify.sparsifier in
        let lg = log (float_of_int n) /. log 2.0 in
        Printf.printf "%4d %6d | %6d %9.3f %8d %9.0f\n" n (Graph.m g)
          (Graph.m r.Sparsify.sparsifier)
          c.Certify.epsilon_achieved r.Sparsify.rounds
          (lg ** 5.0);
        (float_of_int n, float_of_int r.Sparsify.rounds))
      [ 64; 128; 256 ]
  in
  let expo =
    Stats.scaling_exponent
      (Array.of_list (List.map fst data))
      (Array.of_list (List.map snd data))
  in
  note "rounds ~ n^%.2f: the paper claims polylog(n) (exponent -> 0); the residual\n" expo;
  note "exponent is the spanner's n^{1/k} term at these small n.\n";
  report ~experiment:"E3" ~title:"spectral sparsifier quality and rounds (Theorem 1.2)"
    [
      cl "eps_cert at t=8 (epsilon target 0.5)" !eps_t8 0.5;
      cl "rounds at t=8 / log2^5(48)" (float_of_int !rounds_t8 /. (log2f 48.0 ** 5.0)) 2.0;
    ]

(* ------------------------------------------------------------------ *)
(* E4: ad-hoc vs a-priori sampling (Lemma 3.3)                         *)

let e4 () =
  section "E4" "ad-hoc (Alg 5) vs a-priori (Alg 4) sampling distributions";
  let g = Gen.erdos_renyi_connected (Prng.create 4) ~n:36 ~p:0.5 ~w_max:1 in
  let runs = 16 in
  let adhoc =
    Array.init runs (fun s ->
        float_of_int
          (Graph.m
             (Sparsify.run ~prng:(Prng.create (300 + s)) ~graph:g ~epsilon:0.5 ~t:2
                ~k:3 ())
               .Sparsify.sparsifier))
  in
  let apriori =
    Array.init runs (fun s ->
        float_of_int
          (Graph.m
             (Apriori.run ~prng:(Prng.create (700 + s)) ~graph:g ~epsilon:0.5 ~t:2
                ~k:3 ())
               .Apriori.sparsifier))
  in
  let sa = Stats.summarize adhoc and sb = Stats.summarize apriori in
  Printf.printf "sparsifier size over %d seeds (input m=%d):\n" runs (Graph.m g);
  Printf.printf "  ad-hoc   : %s\n" (Format.asprintf "%a" Stats.pp_summary sa);
  Printf.printf "  a-priori : %s\n" (Format.asprintf "%a" Stats.pp_summary sb);
  note "claim (Lemma 3.3): identical output distributions; means within noise.\n";
  let se =
    sqrt (((sa.Stats.stddev ** 2.0) +. (sb.Stats.stddev ** 2.0)) /. float_of_int runs)
  in
  report ~experiment:"E4" ~title:"ad-hoc vs a-priori sampling distributions (Lemma 3.3)"
    [
      cl "|mean ad-hoc - mean a-priori| (vs 3 combined stderr)"
        (Float.abs (sa.Stats.mean -. sb.Stats.mean))
        (3.0 *. se);
    ]

(* ------------------------------------------------------------------ *)
(* E5: Chebyshev iteration count (Theorem 2.3)                         *)

let e5 () =
  section "E5" "preconditioned Chebyshev iterations vs sqrt(kappa) log(1/eps)";
  Printf.printf "%7s %8s | %9s %7s %7s\n" "kappa" "eps" "measured" "bound" "ratio";
  let n = 64 in
  let prng = Prng.create 5 in
  let max_ratio = ref 0.0 in
  List.iter
    (fun kappa ->
      let d =
        Vec.init n (fun i ->
            1.0 +. ((kappa -. 1.0) *. float_of_int i /. float_of_int (n - 1)))
      in
      let a = Dense.of_diag d in
      let solve_b r = Vec.scale (1.0 /. kappa) r in
      List.iter
        (fun eps ->
          let x = Vec.init n (fun _ -> Prng.gaussian prng) in
          let b = Dense.matvec a x in
          let r =
            Chebyshev.solve_adaptive ~matvec:(Dense.matvec a) ~solve_b ~kappa
              ~rtol:eps ~b ()
          in
          let bound = Chebyshev.iterations_bound ~kappa ~eps in
          let ratio = float_of_int r.Chebyshev.iterations /. float_of_int bound in
          max_ratio := Float.max !max_ratio ratio;
          Printf.printf "%7.0f %8.0e | %9d %7d %7.2f\n" kappa eps
            r.Chebyshev.iterations bound ratio)
        [ 1e-2; 1e-6; 1e-10 ])
    [ 2.0; 10.0; 100.0; 1000.0 ];
  note "claim: measured <= bound (ratio <= 1) with the sqrt(kappa) shape.\n";
  report ~experiment:"E5"
    ~title:"preconditioned Chebyshev iterations vs sqrt(kappa) log(1/eps)"
    [ cl "max iterations / theoretical bound" !max_ratio 1.0 ]

(* ------------------------------------------------------------------ *)
(* E6: Laplacian solver (Theorem 1.3)                                  *)

let e6 () =
  section "E6" "BCC Laplacian solver rounds and accuracy (Theorem 1.3)";
  Printf.printf "%4s | %9s | %8s %6s %9s | %9s\n" "n" "preproc" "eps" "iters"
    "solve rds" "residual";
  let max_residual_ratio = ref 0.0 and max_preproc_ratio = ref 0.0 in
  List.iter
    (fun n ->
      (* density shrinks with n to keep the sweep fast; n = 512 exercises
         the power-iteration certificate (the Jacobi path stops at 400). *)
      let p = Float.min 0.3 (96.0 /. float_of_int n) in
      let g = Gen.erdos_renyi_connected (Prng.create n) ~n ~p ~w_max:8 in
      let s = Solver.preprocess ~prng:(Prng.create 23) ~graph:g ~t:8 ~k:3 () in
      let prng = Prng.create 29 in
      let b = Vec.mean_center (Vec.init n (fun _ -> Prng.gaussian prng)) in
      max_preproc_ratio :=
        Float.max !max_preproc_ratio
          (float_of_int (Solver.preprocessing_rounds s)
          /. (log2f (float_of_int n) ** 5.0));
      List.iter
        (fun eps ->
          let r = Solver.solve s ~b ~eps in
          max_residual_ratio := Float.max !max_residual_ratio (r.Solver.residual /. eps);
          Printf.printf "%4d | %9d | %8.0e %6d %9d | %9.2e\n" n
            (Solver.preprocessing_rounds s)
            eps r.Solver.iterations r.Solver.rounds r.Solver.residual)
        [ 1e-2; 1e-8 ])
    [ 32; 64; 128; 256; 512 ];
  note "claim: preprocessing polylog(n) rounds; each solve O(log(1/eps) log(nU/eps)).\n";
  report ~experiment:"E6" ~title:"BCC Laplacian solver rounds and accuracy (Theorem 1.3)"
    [
      cl "max residual / eps" !max_residual_ratio 1.0;
      cl "max preprocessing rounds / log2^5(n)" !max_preproc_ratio 2.0;
    ]

(* ------------------------------------------------------------------ *)
(* E7: leverage scores via seeded JL (Lemma 4.5)                       *)

let e7 () =
  section "E7" "approximate leverage scores (Lemma 4.5)";
  let net =
    Network.random (Prng.create 7) ~n:48 ~density:0.2 ~max_capacity:8 ~max_cost:8
  in
  let inst = Mcmf_lp.build ~prng:(Prng.create 31) net in
  let a = inst.Mcmf_lp.problem.Problem.a in
  let m = inst.Mcmf_lp.m_lp in
  let op = Leverage.of_row_scaled a (Vec.ones m) in
  let exact = Leverage.exact op in
  Printf.printf "constraint matrix: %d x %d; sum sigma = %.3f (rank %d)\n" m
    inst.Mcmf_lp.n_lp (Vec.sum exact) inst.Mcmf_lp.n_lp;
  Printf.printf "%5s | %6s %12s\n" "eta" "probes" "max rel err";
  let max_err_ratio = ref 0.0 in
  List.iter
    (fun eta ->
      let k_jl = Lbcc_lp.Jl.rows_for ~m ~eta:(eta /. 4.0) in
      let approx = Leverage.approximate ~prng:(Prng.create 37) ~eta op in
      let err = ref 0.0 in
      Array.iteri
        (fun i s ->
          if s > 1e-9 then err := Float.max !err (Float.abs (approx.(i) -. s) /. s))
        exact;
      max_err_ratio := Float.max !max_err_ratio (!err /. eta);
      Printf.printf "%5.2f | %6d %12.4f\n" eta (Stdlib.min k_jl m) !err)
    [ 2.0; 1.0; 0.5; 0.25 ];
  note "claim: (1±eta) multiplicative accuracy from O(log(m)/eta^2) seeded probes\n";
  note "(probe count capped at m, where basis probes are exact).\n";
  report ~experiment:"E7" ~title:"approximate leverage scores (Lemma 4.5)"
    [ cl "max relative error / eta" !max_err_ratio 1.0 ]

(* ------------------------------------------------------------------ *)
(* E8: Lewis weight computation (Lemma 4.6)                            *)

let e8 () =
  section "E8" "Lewis weight fixed point (Lemma 4.6)";
  let net =
    Network.random (Prng.create 8) ~n:20 ~density:0.2 ~max_capacity:4 ~max_cost:4
  in
  let inst = Mcmf_lp.build ~prng:(Prng.create 41) net in
  let a = inst.Mcmf_lp.problem.Problem.a in
  let m = inst.Mcmf_lp.m_lp and n = inst.Mcmf_lp.n_lp in
  let leverage d = Leverage.exact (Leverage.of_row_scaled a d) in
  Printf.printf "matrix %d x %d\n" m n;
  Printf.printf "%6s %8s | %6s %10s %9s\n" "p" "eta" "iters" "residual" "sum w";
  let max_res_ratio = ref 0.0 and max_sum_gap = ref 0.0 in
  List.iter
    (fun p ->
      List.iter
        (fun eta ->
          let w, iters = Lewis.fixed_point ~leverage ~p ~w0:(Vec.ones m) ~eta () in
          max_res_ratio :=
            Float.max !max_res_ratio (Lewis.residual ~leverage ~p w /. eta);
          if eta <= 1e-6 then
            max_sum_gap :=
              Float.max !max_sum_gap (Float.abs (Vec.sum w -. float_of_int n));
          Printf.printf "%6.3f %8.0e | %6d %10.2e %9.3f\n" p eta iters
            (Lewis.residual ~leverage ~p w)
            (Vec.sum w))
        [ 1e-2; 1e-6 ])
    [ 2.0; 1.5; 1.0 -. (1.0 /. log (4.0 *. float_of_int m)) ];
  let leverage_for ~p:_ d = leverage d in
  let p_target = 1.0 -. (1.0 /. log (4.0 *. float_of_int m)) in
  let _, steps =
    Lewis.compute_initial_weights ~leverage_for ~m ~n ~p_target ~eta:1e-4 ()
  in
  note "ComputeInitialWeights homotopy: %d steps (paper: O(sqrt n * polylog), sqrt n = %.1f)\n"
    steps
    (sqrt (float_of_int n));
  note "claim: geometric convergence; sum of Lewis weights = rank for every p.\n";
  report ~experiment:"E8" ~title:"Lewis weight fixed point (Lemma 4.6)"
    [
      cl "max fixed-point residual / eta" !max_res_ratio 1.0;
      cl "max |sum w - rank| at eta=1e-6" !max_sum_gap 0.01;
      cl "homotopy steps / (sqrt(n) log2 m)"
        (float_of_int steps /. (sqrt (float_of_int n) *. log2f (float_of_int m)))
        2.0;
    ]

(* ------------------------------------------------------------------ *)
(* E9: mixed-norm ball projection (Lemma 4.10)                         *)

let e9 () =
  section "E9" "projection on the mixed norm ball (Lemma 4.10)";
  Printf.printf "%6s | %10s %10s %6s | %6s %7s\n" "m" "binary" "brute" "agree"
    "evals" "rounds";
  let max_gap = ref 0.0 in
  let evals = Hashtbl.create 4 in
  List.iter
    (fun m ->
      let prng = Prng.create (m + 9) in
      let a = Vec.init m (fun _ -> Prng.gaussian prng) in
      let l = Vec.init m (fun _ -> 0.1 +. (2.0 *. Prng.float prng)) in
      let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n:64) in
      let fast = Mixed_ball.maximize ~accountant:acc ~a ~l () in
      let brute = Mixed_ball.brute_force ~a ~l () in
      let gap =
        Float.abs (fast.Mixed_ball.value -. brute.Mixed_ball.value)
        /. Float.max 1.0 brute.Mixed_ball.value
      in
      max_gap := Float.max !max_gap gap;
      Hashtbl.replace evals m fast.Mixed_ball.evaluations;
      Printf.printf "%6d | %10.4f %10.4f %6b | %6d %7d\n" m fast.Mixed_ball.value
        brute.Mixed_ball.value (gap <= 1e-6) fast.Mixed_ball.evaluations
        fast.Mixed_ball.rounds)
    [ 10; 100; 1000; 10000 ];
  note "claim: the O(log)-query search equals the full scan; rounds polylog in m.\n";
  let growth =
    float_of_int (Hashtbl.find evals 10000) /. float_of_int (Hashtbl.find evals 10)
  in
  report ~experiment:"E9" ~title:"projection on the mixed norm ball (Lemma 4.10)"
    [
      cl "max relative gap binary vs brute force" !max_gap 1e-6;
      cl "evals growth m=10 -> m=10^4 / log growth" (growth /. 4.0) 2.0;
    ]

(* ------------------------------------------------------------------ *)
(* E10: LP solver iterations ~ sqrt(rank) (Theorem 1.4)                *)

let flow_traces ~weighting nv seed =
  let net =
    Network.random (Prng.create seed) ~n:nv ~density:0.3 ~max_capacity:4 ~max_cost:4
  in
  let inst = Mcmf_lp.build ~prng:(Prng.create (seed + 1)) net in
  let solver = Mcmf_lp.laplacian_normal_solver inst in
  let config = { Ipm.default_config with weighting } in
  let mm =
    float_of_int (Stdlib.max (Network.max_capacity net) (Network.max_cost net))
  in
  let _, trace =
    Ipm.lp_solve ~config
      ~prng:(Prng.create (seed + 2))
      ~problem:inst.Mcmf_lp.problem ~solver ~x0:inst.Mcmf_lp.x0
      ~eps:(1.0 /. (12.0 *. mm))
      ()
  in
  (inst, trace)

let e10 () =
  section "E10" "IPM iterations: Lewis-weighted sqrt(n) vs unweighted sqrt(m)";
  Printf.printf "%4s %4s %4s | %11s %10s | %11s\n" "|V|" "n" "m" "lewis iters"
    "unweighted" "ratio uw/lw";
  let min_ratio = ref infinity in
  let data =
    List.map
      (fun nv ->
        let inst, tl = flow_traces ~weighting:Ipm.Lewis nv (100 + nv) in
        let _, tu = flow_traces ~weighting:Ipm.Unweighted nv (100 + nv) in
        let ratio = float_of_int tu.Ipm.iterations /. float_of_int tl.Ipm.iterations in
        min_ratio := Float.min !min_ratio ratio;
        Printf.printf "%4d %4d %4d | %11d %10d | %11.2f\n" nv inst.Mcmf_lp.n_lp
          inst.Mcmf_lp.m_lp tl.Ipm.iterations tu.Ipm.iterations ratio;
        (float_of_int inst.Mcmf_lp.n_lp, float_of_int tl.Ipm.iterations))
      [ 6; 8; 12; 16 ]
  in
  let expo =
    Stats.scaling_exponent
      (Array.of_list (List.map fst data))
      (Array.of_list (List.map snd data))
  in
  note "lewis iterations ~ n^%.2f (claim: n^0.5 * log factors);\n" expo;
  note "unweighted pays the ||w||_1 = m vs 2n gap in the step size.\n";
  report ~experiment:"E10"
    ~title:"IPM iterations: Lewis-weighted sqrt(n) vs unweighted sqrt(m)"
    [
      cl "lewis iterations scaling exponent (sqrt + polylog at small n)" expo 0.9;
      cl ~direction:Report.Ge "min unweighted/lewis iteration ratio" !min_ratio 1.0;
    ]

(* ------------------------------------------------------------------ *)
(* E11: exact min-cost max-flow (Theorem 1.1)                          *)

let e11 () =
  section "E11" "exact min-cost max-flow in O~(sqrt n) BCC rounds (Theorem 1.1)";
  Printf.printf "%4s %4s | %5s %5s %6s | %7s %10s %6s\n" "|V|" "|E|" "value" "cost"
    "exact" "iters" "rounds" "sec";
  let exact_count = ref 0 and total = ref 0 in
  let data = ref [] in
  List.iter
    (fun nv ->
      List.iter
        (fun seed ->
          incr total;
          let net =
            Network.random
              (Prng.create (nv * seed))
              ~n:nv ~density:0.3 ~max_capacity:6 ~max_cost:5
          in
          let t0 = Unix.gettimeofday () in
          let r = Mcmf_lp.solve ~prng:(Prng.create (seed + 1000)) net in
          let dt = Unix.gettimeofday () -. t0 in
          if r.Mcmf_lp.matches_baseline then incr exact_count;
          Printf.printf "%4d %4d | %5d %5d %6b | %7d %10d %6.1f\n" nv
            (Network.m net) r.Mcmf_lp.value r.Mcmf_lp.cost r.Mcmf_lp.matches_baseline
            r.Mcmf_lp.iterations r.Mcmf_lp.rounds dt;
          data := (float_of_int nv, float_of_int r.Mcmf_lp.iterations) :: !data)
        [ 1; 2 ])
    [ 6; 8; 10; 12 ];
  Printf.printf "exactness: %d/%d instances match the combinatorial optimum\n"
    !exact_count !total;
  let expo =
    Stats.scaling_exponent
      (Array.of_list (List.map fst !data))
      (Array.of_list (List.map snd !data))
  in
  note "iterations ~ |V|^%.2f (claim sqrt: 0.5 + log factors); rounds follow\n" expo;
  note "iterations x polylog (absolute counts are constants-dominated, EXPERIMENTS.md).\n";
  (* Instrumented pipeline: one shared accountant through sparsifier,
     Laplacian solver and min-cost flow, so the report carries the
     hierarchical per-phase round/bit breakdown of all three theorems. *)
  let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n:32) in
  let g = Gen.erdos_renyi_connected (Prng.create 11) ~n:32 ~p:0.3 ~w_max:6 in
  let _ =
    Sparsify.run ~accountant:acc ~prng:(Prng.create 1) ~graph:g ~epsilon:0.5 ~t:4
      ~k:3 ()
  in
  let s = Solver.preprocess ~accountant:acc ~prng:(Prng.create 2) ~graph:g ~t:4 ~k:3 () in
  let prng = Prng.create 3 in
  let b = Vec.mean_center (Vec.init 32 (fun _ -> Prng.gaussian prng)) in
  let _ = Solver.solve ~accountant:acc s ~b ~eps:1e-8 in
  let net =
    Network.random (Prng.create 5) ~n:6 ~density:0.3 ~max_capacity:4 ~max_cost:4
  in
  let _ = Mcmf_lp.solve ~accountant:acc ~prng:(Prng.create 7) net in
  Printf.printf "instrumented pipeline (n=32 graph + |V|=6 flow), phase totals:\n";
  List.iter
    (fun (node : Rounds.tree) ->
      Printf.printf "  %-12s %10d rounds %14d bits\n" node.Rounds.label
        node.Rounds.t_rounds node.Rounds.t_bits)
    (Rounds.tree acc);
  report ~experiment:"E11"
    ~title:"exact min-cost max-flow in O~(sqrt n) BCC rounds (Theorem 1.1)"
    ~phases:(phases_of acc)
    ~extra:
      [
        ("pipeline_rounds", Json.Int (Rounds.rounds acc));
        ("pipeline_bits", Json.Int (Rounds.bits acc));
      ]
    [
      cl ~direction:Report.Ge "fraction matching combinatorial optimum"
        (float_of_int !exact_count /. float_of_int !total)
        1.0;
      cl "iterations scaling exponent (sqrt + polylog at small |V|)" expo 1.0;
    ]

(* ------------------------------------------------------------------ *)
(* E12: the Figure-1 pipeline                                          *)

let e12 () =
  section "E12" "the Figure 1 pipeline, end to end";
  let g = Gen.erdos_renyi_connected (Prng.create 12) ~n:48 ~p:0.4 ~w_max:6 in
  let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n:48) in
  let sp =
    Sparsify.run ~accountant:acc ~prng:(Prng.create 1) ~graph:g ~epsilon:0.5 ~t:6
      ~k:3 ()
  in
  let cert = Certify.exact g sp.Sparsify.sparsifier in
  Printf.printf "1. sparsifier (Thm 1.2): m %d -> %d, eps=%.3f, rounds=%d\n"
    (Graph.m g)
    (Graph.m sp.Sparsify.sparsifier)
    cert.Certify.epsilon_achieved (Rounds.rounds acc);
  let solver =
    Solver.preprocess ~accountant:acc ~prng:(Prng.create 2) ~graph:g ~t:6 ~k:3 ()
  in
  let prng = Prng.create 3 in
  let b = Vec.mean_center (Vec.init 48 (fun _ -> Prng.gaussian prng)) in
  let sol = Solver.solve ~accountant:acc solver ~b ~eps:1e-8 in
  Printf.printf "2. Laplacian solver (Thm 1.3): residual %.1e in %d iterations\n"
    sol.Solver.residual sol.Solver.iterations;
  let mdense =
    let l = Graph.laplacian_dense g in
    Dense.add l (Dense.of_diag (Vec.init 48 (fun _ -> 0.5 +. Prng.float prng)))
  in
  let x_ref = Vec.init 48 (fun _ -> Prng.gaussian prng) in
  let y = Dense.matvec mdense x_ref in
  let x_sdd =
    Lbcc_laplacian.Gremban.solve_with
      ~laplacian_solve:(fun vg vb ->
        let s = Solver.preprocess ~prng:(Prng.create 4) ~graph:vg ~t:6 ~k:3 () in
        (Solver.solve s ~b:vb ~eps:1e-10).Solver.solution)
      mdense y
  in
  let sdd_err = Vec.dist2 x_sdd x_ref /. Vec.norm2 x_ref in
  Printf.printf "3. SDD via Gremban + Thm 1.3 solver: relative error %.1e\n" sdd_err;
  let net =
    Network.random (Prng.create 5) ~n:8 ~density:0.3 ~max_capacity:5 ~max_cost:4
  in
  let inst = Mcmf_lp.build ~prng:(Prng.create 6) net in
  let gsolver = Mcmf_lp.laplacian_normal_solver ~backend:`Gremban inst in
  let d_test = Vec.init inst.Mcmf_lp.m_lp (fun _ -> 0.2 +. Prng.float prng) in
  let rhs_test = Vec.init inst.Mcmf_lp.n_lp (fun _ -> Prng.gaussian prng) in
  let s1 = gsolver.Problem.solve ~d:d_test ~rhs:rhs_test in
  let s2 =
    (Problem.dense_normal_solver inst.Mcmf_lp.problem).Problem.solve ~d:d_test
      ~rhs:rhs_test
  in
  let gremban_gap = Vec.dist2 s1 s2 /. Float.max 1.0 (Vec.norm2 s2) in
  Printf.printf "4. flow normal solve via Gremban doubling: agrees with dense %.1e\n"
    gremban_gap;
  let r = Mcmf_lp.solve ~prng:(Prng.create 7) net in
  Printf.printf "5. min-cost max-flow (Thm 1.1): value=%d cost=%d exact=%b\n"
    r.Mcmf_lp.value r.Mcmf_lp.cost r.Mcmf_lp.matches_baseline;
  report ~experiment:"E12" ~title:"the Figure 1 pipeline, end to end"
    ~phases:(phases_of acc)
    [
      cl "sparsifier eps_cert (epsilon target 0.5)" cert.Certify.epsilon_achieved 0.5;
      cl "Laplacian solver residual (eps 1e-8)" sol.Solver.residual 1e-8;
      cl "SDD relative error via Gremban" sdd_err 1e-6;
      cl "flow normal solve Gremban vs dense gap" gremban_gap 1e-6;
      cl ~direction:Report.Ge "min-cost flow exact"
        (if r.Mcmf_lp.matches_baseline then 1.0 else 0.0)
        1.0;
    ]

(* ------------------------------------------------------------------ *)
(* E13: naive baseline                                                 *)

let e13 () =
  section "E13" "context: rounds vs the naive 'ship the whole graph' baseline";
  Printf.printf "%4s %6s | %10s %9s | %12s\n" "n" "m" "naive rds" "sparsify"
    "solve(1e-8)";
  let max_preproc_ratio = ref 0.0 in
  let solve_rounds = Hashtbl.create 4 in
  List.iter
    (fun n ->
      let g = Gen.complete (Prng.create n) ~n ~w_max:8 in
      let m = Graph.m g in
      let bandwidth = Model.bandwidth ~n in
      let bits_per_edge =
        Lbcc_net.Payload.size [ Vertex_id n; Vertex_id n; Weight 8.0 ]
      in
      let naive = (n - 1) * Stdlib.max 1 (Bits.ceil_div bits_per_edge bandwidth) in
      let acc = Rounds.create ~bandwidth in
      let s = Solver.preprocess ~accountant:acc ~prng:(Prng.create 3) ~graph:g ~t:2 () in
      let prng = Prng.create 5 in
      let b = Vec.mean_center (Vec.init n (fun _ -> Prng.gaussian prng)) in
      let r = Solver.solve s ~b ~eps:1e-8 in
      max_preproc_ratio :=
        Float.max !max_preproc_ratio
          (float_of_int (Solver.preprocessing_rounds s)
          /. (log2f (float_of_int n) ** 5.0));
      Hashtbl.replace solve_rounds n r.Solver.rounds;
      Printf.printf "%4d %6d | %10d %9d | %12d\n" n m naive
        (Solver.preprocessing_rounds s)
        r.Solver.rounds)
    [ 16; 32; 64; 128 ];
  note "the naive baseline is Theta(n); sparsifier preprocessing is polylog-bounded\n";
  note "but constants dominate at these n; per-solve rounds are far below both.\n";
  report ~experiment:"E13"
    ~title:"rounds vs the naive 'ship the whole graph' baseline"
    [
      cl "max preprocessing rounds / log2^5(n)" !max_preproc_ratio 2.0;
      cl "solve rounds growth n=16 -> n=128 (vs 8x input growth)"
        (float_of_int (Hashtbl.find solve_rounds 128)
        /. float_of_int (Hashtbl.find solve_rounds 16))
        8.0;
    ]

(* ------------------------------------------------------------------ *)
(* E14: the intro's SSSP context                                       *)

let e14 () =
  section "E14" "context: classical distributed primitives across the models";
  Printf.printf
    "%-6s %5s %5s | %12s | %10s %10s\n" "algo" "n" "diam" "model" "supersteps"
    "rounds";
  let max_bcc_ratio = ref 0.0 in
  let run_all name make_result g =
    let per_model =
      List.map
        (fun (mname, model) ->
          let r = make_result model g in
          let supersteps, rounds = r in
          Printf.printf "%-6s %5d %5.0f | %12s | %10d %10d\n" name (Graph.n g)
            (Paths.diameter (Graph.map_weights (fun _ _ -> 1.0) g))
            mname supersteps rounds;
          rounds)
        [ ("BC", Model.broadcast_congest); ("BCC", Model.broadcast_congested_clique) ]
    in
    match per_model with
    | [ bc; bcc ] ->
        if name <> "sssp" then
          max_bcc_ratio :=
            Float.max !max_bcc_ratio (float_of_int bcc /. float_of_int bc)
    | _ -> ()
  in
  let ring = Gen.ring (Prng.create 14) ~n:64 ~w_max:8 in
  let er = Gen.erdos_renyi_connected (Prng.create 15) ~n:64 ~p:0.1 ~w_max:8 in
  List.iter
    (fun (gname, g) ->
      Printf.printf "-- %s --\n" gname;
      run_all "bfs"
        (fun model g ->
          let r = Lbcc_dist.Bfs.run ~model ~graph:g ~source:0 () in
          (r.Lbcc_dist.Bfs.supersteps, r.Lbcc_dist.Bfs.rounds))
        g;
      run_all "sssp"
        (fun model g ->
          let r = Lbcc_dist.Sssp.run ~model ~graph:g ~source:0 () in
          (r.Lbcc_dist.Sssp.supersteps, r.Lbcc_dist.Sssp.rounds))
        g;
      run_all "leader"
        (fun model g ->
          let r = Lbcc_dist.Leader.run ~model ~graph:g () in
          (r.Lbcc_dist.Leader.supersteps, r.Lbcc_dist.Leader.rounds))
        g)
    [ ("ring n=64", ring); ("sparse ER n=64", er) ];
  note "BFS/leader track the diameter in BC and flatten in the BCC; Bellman-Ford\n";
  note "SSSP stays Theta(n)-ish in both — the gap the paper's intro highlights\n";
  note "(best known BCC SSSP is O~(sqrt n) [Nan14]; min-cost flow now matches it).\n";
  report ~experiment:"E14"
    ~title:"classical distributed primitives across the models"
    [ cl "max BCC/BC round ratio (bfs, leader)" !max_bcc_ratio 1.0 ]

(* ------------------------------------------------------------------ *)
(* E15: ablation — the stretch parameter k inside the sparsifier       *)

let e15 () =
  section "E15" "ablation: spanner stretch k inside the sparsifier";
  Printf.printf
    "(paper: k = ceil(log n); smaller k = denser, better bundles; larger k = \
     cheaper rounds)\n";
  Printf.printf "%2s | %6s %9s %8s\n" "k" "m_H" "eps_cert" "rounds";
  let g = Gen.erdos_renyi_connected (Prng.create 15) ~n:48 ~p:0.6 ~w_max:4 in
  let sizes = Hashtbl.create 4 and eps_k2 = ref infinity in
  List.iter
    (fun k ->
      let r = Sparsify.run ~prng:(Prng.create 16) ~graph:g ~epsilon:0.5 ~t:4 ~k () in
      let c = Certify.exact g r.Sparsify.sparsifier in
      Hashtbl.replace sizes k (Graph.m r.Sparsify.sparsifier);
      if k = 2 then eps_k2 := c.Certify.epsilon_achieved;
      Printf.printf "%2d | %6d %9.3f %8d\n" k
        (Graph.m r.Sparsify.sparsifier)
        c.Certify.epsilon_achieved r.Sparsify.rounds)
    [ 2; 3; 4; 6 ];
  note "the k knob trades sparsifier size and quality against round count —\n";
  note "the paper's k = ceil(log n) sits at the cheap-rounds end.\n";
  report ~experiment:"E15" ~title:"ablation: spanner stretch k inside the sparsifier"
    [
      cl "eps_cert at k=2 (epsilon target 0.5)" !eps_k2 0.5;
      cl "m_H(k=6) / m_H(k=2) (size shrinks with k)"
        (float_of_int (Hashtbl.find sizes 6) /. float_of_int (Hashtbl.find sizes 2))
        1.0;
    ]

(* ------------------------------------------------------------------ *)
(* E16: ablation — Chebyshev vs CG as the outer iteration              *)

let e16 () =
  section "E16" "ablation: preconditioned Chebyshev vs preconditioned CG";
  Printf.printf
    "(the paper uses Chebyshev because its iteration count is deterministic\n\
     given kappa — each iteration is a broadcast round, so the schedule must\n\
     be known in advance; CG adapts but needs termination detection)\n";
  Printf.printf "%7s %8s | %10s %10s\n" "kappa" "eps" "chebyshev" "pcg";
  let n = 64 in
  let prng = Prng.create 16 in
  let max_cheb_ratio = ref 0.0 and max_pcg_ratio = ref 0.0 in
  List.iter
    (fun kappa ->
      let d =
        Vec.init n (fun i ->
            1.0 +. ((kappa -. 1.0) *. float_of_int i /. float_of_int (n - 1)))
      in
      let a = Dense.of_diag d in
      let solve_b r = Vec.scale (1.0 /. kappa) r in
      List.iter
        (fun eps ->
          let x = Vec.init n (fun _ -> Prng.gaussian prng) in
          let b = Dense.matvec a x in
          let cheb =
            Chebyshev.solve_adaptive ~matvec:(Dense.matvec a) ~solve_b ~kappa
              ~rtol:eps ~b ()
          in
          let pcg =
            Lbcc_linalg.Cg.solve_preconditioned ~matvec:(Dense.matvec a)
              ~precond:solve_b ~b ~tol:eps ()
          in
          max_cheb_ratio :=
            Float.max !max_cheb_ratio
              (float_of_int cheb.Chebyshev.iterations
              /. float_of_int (Chebyshev.iterations_bound ~kappa ~eps));
          max_pcg_ratio :=
            Float.max !max_pcg_ratio
              (float_of_int pcg.Lbcc_linalg.Cg.iterations
              /. float_of_int cheb.Chebyshev.iterations);
          Printf.printf "%7.0f %8.0e | %10d %10d\n" kappa eps
            cheb.Chebyshev.iterations pcg.Lbcc_linalg.Cg.iterations)
        [ 1e-6; 1e-10 ])
    [ 10.0; 1000.0 ];
  note "CG wins iterations (optimal Krylov) but is adaptive; Chebyshev's count\n";
  note "is fixed by (kappa, eps) — the property the BCC schedule needs.\n";
  report ~experiment:"E16"
    ~title:"ablation: preconditioned Chebyshev vs preconditioned CG"
    [
      cl "max chebyshev iterations / bound" !max_cheb_ratio 1.0;
      cl "max pcg / chebyshev iteration ratio" !max_pcg_ratio 1.0;
    ]

(* ------------------------------------------------------------------ *)
(* PERF: multicore wall-clock and allocation profile                   *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let minor_words f =
  let before = Gc.minor_words () in
  let r = f () in
  (r, Gc.minor_words () -. before)

(* The pre-multicore data flow of [Solver.solve], kept as the allocation
   baseline: every Chebyshev step allocates fresh vectors for the matvec,
   the residual, the preconditioner solve and the direction update.  The
   in-place production path must beat this by >= 30% minor-heap words. *)
let legacy_chebyshev_run ~matvec ~solve_b ~kappa ~b ~iters =
  let n = Vec.dim b in
  let lmin = 1.0 /. kappa and lmax = 1.0 in
  let theta = (lmax +. lmin) /. 2.0 in
  let delta = (lmax -. lmin) /. 2.0 in
  let x = Vec.zeros n in
  let r = ref (Vec.sub b (matvec x)) in
  let z = solve_b !r in
  let d = ref (Vec.scale (1.0 /. theta) z) in
  let sigma1 = theta /. delta in
  let rho_prev = ref (1.0 /. sigma1) in
  for _ = 1 to iters do
    Vec.axpy 1.0 !d x;
    r := Vec.sub b (matvec x);
    let z = solve_b !r in
    let rho = 1.0 /. ((2.0 *. sigma1) -. !rho_prev) in
    d := Vec.add (Vec.scale (rho *. !rho_prev) !d) (Vec.scale (2.0 *. rho /. delta) z);
    rho_prev := rho
  done;
  x

let perf () =
  section "PERF" "multicore wall-clock and allocation profile";
  let cores = Domain.recommended_domain_count () in
  (* E11-style pipeline (sparsify -> Laplacian solve -> min-cost flow) at
     n = 512, run once per worker-pool size.  The outputs must be
     bit-identical — the pool is a wall-clock knob only. *)
  let n = 512 in
  let pipeline () =
    let g =
      Gen.erdos_renyi_connected (Prng.create 11) ~n ~p:(96.0 /. float_of_int n)
        ~w_max:8
    in
    let s = Solver.preprocess ~prng:(Prng.create 23) ~graph:g ~t:4 ~k:3 () in
    let prng = Prng.create 29 in
    let b = Vec.mean_center (Vec.init n (fun _ -> Prng.gaussian prng)) in
    let r = Solver.solve s ~b ~eps:1e-8 in
    let net =
      Network.random (Prng.create 5) ~n:10 ~density:0.3 ~max_capacity:4
        ~max_cost:4
    in
    let f = Mcmf_lp.solve ~prng:(Prng.create 7) net in
    (Graph.m (Solver.sparsifier s), r, f.Mcmf_lp.value, f.Mcmf_lp.cost)
  in
  let fingerprint (mh, (r : Solver.solve_result), v, c) =
    Printf.sprintf "%d|%s|%d|%d|%d" mh
      (String.concat ","
         (List.map
            (fun f -> Printf.sprintf "%Lx" (Int64.bits_of_float f))
            (Array.to_list r.Solver.solution)))
      r.Solver.iterations v c
  in
  let run_at d =
    Pool.set_default_domains d;
    let r, dt = time pipeline in
    (fingerprint r, dt)
  in
  let fp1, t1 = run_at 1 in
  let fp4, t4 = run_at 4 in
  Pool.set_default_domains 1;
  let identical = fp1 = fp4 in
  let speedup = t1 /. t4 in
  Printf.printf
    "pipeline n=%d: %.2fs at 1 domain, %.2fs at 4 domains (speedup %.2fx on %d core%s)\n"
    n t1 t4 speedup cores
    (if cores = 1 then "" else "s");
  Printf.printf "outputs bit-identical across pool sizes: %b\n" identical;
  (* Allocation profile of one high-precision Laplacian solve: the in-place
     production loop vs the legacy allocating loop, same operators, same
     iteration count. *)
  let n2 = 256 in
  let g2 = Gen.erdos_renyi_connected (Prng.create 13) ~n:n2 ~p:0.3 ~w_max:8 in
  let s2 = Solver.preprocess ~prng:(Prng.create 17) ~graph:g2 ~t:4 ~k:3 () in
  let prng = Prng.create 19 in
  let b2 = Vec.mean_center (Vec.init n2 (fun _ -> Prng.gaussian prng)) in
  let eps = 1e-8 in
  let (_, t_solve) = time (fun () -> Solver.solve s2 ~b:b2 ~eps) in
  let (_, mw_new) = minor_words (fun () -> Solver.solve s2 ~b:b2 ~eps) in
  let hf = Exact.factor (Solver.sparsifier s2) in
  let kappa = Solver.kappa s2 in
  let matvec x = Graph.apply_laplacian g2 x in
  let solve_b r =
    Vec.scale (1.0 /. kappa) (Exact.solve hf (Vec.mean_center r))
  in
  let iters = Chebyshev.iterations_bound ~kappa ~eps in
  let (_, mw_legacy) =
    minor_words (fun () -> legacy_chebyshev_run ~matvec ~solve_b ~kappa ~b:b2 ~iters)
  in
  let reduction = 1.0 -. (mw_new /. mw_legacy) in
  Printf.printf
    "laplacian solve n=%d (%d iterations): %.0f minor words in place, %.0f legacy (%.1f%% reduction)\n"
    n2 iters mw_new mw_legacy (100.0 *. reduction);
  note "claims: identical outputs at every pool size; >= 30%% fewer minor-heap\n";
  note "words than the allocating loop; >= 2x pipeline speedup when >= 4 cores\n";
  note "are available (recorded but not asserted on smaller machines).\n";
  let speedup_claim =
    if cores >= 4 then
      cl ~direction:Report.Ge "pipeline n=512 speedup at 4 domains" speedup 2.0
    else
      cl ~direction:Report.Ge
        (Printf.sprintf
           "pipeline n=512 speedup at 4 domains (hardware-limited: %d core%s)"
           cores
           (if cores = 1 then "" else "s"))
        speedup 0.0
  in
  report ~experiment:"PERF" ~title:"multicore wall-clock and allocation profile"
    ~extra:
      [
        ("cores", Json.Int cores);
        ("hardware_limited", Json.Bool (cores < 4));
        ("domains_tested", Json.Arr [ Json.Int 1; Json.Int 4 ]);
        ( "seconds",
          Json.Obj
            [
              ("pipeline_n512_domains1", Json.Float t1);
              ("pipeline_n512_domains4", Json.Float t4);
              ("laplacian_solve_n256", Json.Float t_solve);
            ] );
        ("speedup_pipeline_4_domains", Json.Float speedup);
        ( "minor_words",
          Json.Obj
            [
              ("laplacian_solve_in_place", Json.Float mw_new);
              ("laplacian_solve_legacy", Json.Float mw_legacy);
              ("reduction", Json.Float reduction);
            ] );
      ]
    [
      cl ~direction:Report.Ge "pipeline outputs identical at 1 vs 4 domains"
        (if identical then 1.0 else 0.0)
        1.0;
      cl ~direction:Report.Ge
        "laplacian solve minor-words reduction vs legacy loop" reduction 0.30;
      speedup_claim;
    ]

(* ------------------------------------------------------------------ *)
(* BATCH: prepared-operator service layer                              *)

let batch () =
  section "BATCH"
    "prepared operators: amortized rounds/query, batching, handle cache";
  let n = 96 in
  let g =
    Gen.erdos_renyi_connected (Prng.create 21) ~n ~p:0.25 ~w_max:8
  in
  let eps = 1e-8 in
  let rhs k =
    let prng = Prng.create 99 in
    List.init k (fun _ ->
        Vec.mean_center (Vec.init n (fun _ -> Prng.gaussian prng)))
  in
  (* Amortized rounds per query vs batch size: Thm 1.3 preprocessing is
     paid once per handle, so (prepare + k * query) / k must fall as k
     grows. *)
  let ks = [ 1; 2; 4; 8; 16 ] in
  Printf.printf "%4s %12s %12s %14s\n" "k" "prepare" "rounds/query"
    "amortized";
  let rows =
    List.map
      (fun k ->
        let p = Prepared.create ~seed:5 g in
        ignore (Prepared.solve_many ~eps p (rhs k) : Prepared.query_result list);
        let amortized = Prepared.amortized_rounds_per_query p in
        let per_query = Prepared.query_rounds p / k in
        Printf.printf "%4d %12d %12d %14.1f\n" k
          (Prepared.preprocessing_rounds p)
          per_query amortized;
        (k, Prepared.preprocessing_rounds p, per_query, amortized))
      ks
  in
  let amortized = List.map (fun (_, _, _, a) -> a) rows in
  let ratio_max =
    let rec worst acc = function
      | a :: (b :: _ as rest) -> worst (Float.max acc (b /. a)) rest
      | _ -> acc
    in
    worst 0.0 amortized
  in
  (* Per-query rounds must equal the standalone Thm 1.3 query phase. *)
  let standalone =
    let s = Solver.preprocess ~prng:(Prng.create 5) ~graph:g () in
    (Solver.solve s ~b:(List.hd (rhs 1)) ~eps).Solver.rounds
  in
  let per_query = match rows with (_, _, q, _) :: _ -> q | [] -> 0 in
  (* Wall-clock per solve and bit-identity at 1/2/4 domains, against the
     sequential reference. *)
  let k_fixed = 8 in
  let bs = rhs k_fixed in
  let fp qs =
    String.concat ";"
      (List.map
         (fun (q : Prepared.query_result) ->
           String.concat ","
             (List.map
                (fun f -> Printf.sprintf "%Lx" (Int64.bits_of_float f))
                (Array.to_list q.Prepared.solution)))
         qs)
  in
  let run_at d =
    Pool.set_default_domains d;
    let p = Prepared.create ~seed:5 g in
    let qs, dt = time (fun () -> Prepared.solve_many ~eps p bs) in
    (fp qs, dt /. float_of_int k_fixed)
  in
  let fp1, t1 = run_at 1 in
  let fp2, t2 = run_at 2 in
  let fp4, t4 = run_at 4 in
  Pool.set_default_domains 1;
  let fp_seq =
    let p = Prepared.create ~seed:5 g in
    fp (List.map (fun b -> Prepared.solve ~eps p ~b) bs)
  in
  let identical = fp1 = fp2 && fp2 = fp4 && fp1 = fp_seq in
  Printf.printf
    "batch k=%d wall-clock per solve: %.4fs (1 domain) %.4fs (2) %.4fs (4); \
     bit-identical=%b\n"
    k_fixed t1 t2 t4 identical;
  (* Handle cache: repeated creates on the identical graph hit.  The
     hit/miss/eviction counts come out of the cache's Metrics registry —
     the canonical export every consumer (this bench, the serve daemon's
     stats endpoint) reads, rather than a private snapshot. *)
  let cache_metrics = Metrics.create () in
  let cache = Cache.create ~capacity:4 ~metrics:cache_metrics () in
  let reps = 4 in
  for _ = 1 to reps do
    ignore (Prepared.create_cached ~cache ~seed:5 g : Prepared.t * bool)
  done;
  let hits = Metrics.counter cache_metrics "cache.hits" in
  let misses = Metrics.counter cache_metrics "cache.misses" in
  let hit_rate = float_of_int hits /. float_of_int (hits + misses) in
  Printf.printf "cache: %d prepares -> %d hits / %d misses (hit rate %.2f)\n"
    reps hits misses hit_rate;
  note
    "claims: amortized rounds/query strictly decreasing in k; batched\n\
     solutions bit-identical to sequential at 1/2/4 domains; per-query\n\
     rounds equal the standalone Thm 1.3 query phase; repeat prepares hit\n\
     the cache.\n";
  report ~experiment:"BATCH"
    ~title:"prepared-operator service: amortization, batching, cache"
    ~extra:
      [
        ("n", Json.Int n);
        ("batch_sizes", Json.Arr (List.map (fun k -> Json.Int k) ks));
        ( "amortized_rounds_per_query",
          Json.Arr (List.map (fun a -> Json.Float a) amortized) );
        ("prepare_rounds", Json.Int (match rows with (_, p, _, _) :: _ -> p | [] -> 0));
        ("query_rounds", Json.Int per_query);
        ( "seconds_per_solve",
          Json.Obj
            [
              ("domains1", Json.Float t1);
              ("domains2", Json.Float t2);
              ("domains4", Json.Float t4);
            ] );
        ( "cache",
          Json.Obj
            [
              ("prepares", Json.Int reps);
              ("hits", Json.Int hits);
              ("misses", Json.Int misses);
              ("hit_rate", Json.Float hit_rate);
            ] );
      ]
    [
      cl ~direction:Report.Le
        "max consecutive amortized-rounds ratio across k doublings" ratio_max
        0.95;
      cl ~direction:Report.Ge
        "batched solutions bit-identical at 1/2/4 domains vs sequential"
        (if identical then 1.0 else 0.0)
        1.0;
      cl ~direction:Report.Le
        "per-query rounds deviation from standalone Thm 1.3 query"
        (float_of_int (abs (per_query - standalone)))
        0.0;
      cl ~direction:Report.Ge "handle cache hit rate over repeated prepares"
        hit_rate 0.5;
    ]

(* ------------------------------------------------------------------ *)
(* SCALE: flat-core throughput and allocation at large n               *)

(* A deterministic mixing protocol on the struct-of-arrays engine: every
   vertex broadcasts a running accumulator every superstep for exactly [k]
   supersteps, folding its inbox in with masked addition.  Every vertex
   sends every superstep, so rounds, messages and bits are exact functions
   of the topology — the run is pure engine throughput. *)
let scale_wave ~graph ~acc ~k =
  let n = Graph.n graph in
  let vs = Vstate.create ~n in
  let wave = Vstate.ints vs "wave" in
  for v = 0 to n - 1 do
    wave.(v) <- v land 0x3FFF_FFFF
  done;
  let step ~round ~vertex (ib : Engine.soa_inbox) (out : Engine.soa_out) =
    for i = 0 to ib.Engine.count - 1 do
      wave.(vertex) <-
        (wave.(vertex) + ib.Engine.payloads.(i) + ib.Engine.senders.(i))
        land 0x3FFF_FFFF
    done;
    out.Engine.send <- true;
    out.Engine.value <- wave.(vertex);
    round < k
  in
  Engine.run_soa ~accountant:acc ~label:"scale-wave"
    ~model:Model.broadcast_congest ~graph
    ~size_bits:(fun w -> Bits.int_bits w)
    ~step ~max_supersteps:(k + 1) ()

let scale () =
  section "SCALE" "flat-core scaling: rounds/sec, bytes/round, allocation vs n";
  let max_n =
    match Sys.getenv_opt "LBCC_SCALE_MAX_N" with
    | Some s -> ( match int_of_string_opt s with Some v -> v | None -> 8192)
    | None -> 8192
  in
  Pool.set_default_domains 1;
  let ns = List.filter (fun n -> n <= max_n) [ 1024; 2048; 4096; 8192 ] in
  let ns = if ns = [] then [ max_n ] else ns in
  (* Part 1: raw superstep throughput of run_soa, and the allocation-free
     hot path.  Setup (state columns, double buffers, per-chunk scratch) is
     amortized out by differencing a long run against a short one on the
     same graph: the per-superstep increment is what the step loop itself
     allocates, and it must be (essentially) zero. *)
  let k_short = 32 and k_long = 256 in
  Printf.printf "%6s %9s %12s %12s %14s\n" "n" "rounds" "rounds/sec"
    "bytes/round" "words/superstep";
  let wave_rows =
    List.map
      (fun n ->
        let g =
          Gen.erdos_renyi_connected (Prng.create 31) ~n
            ~p:(12.0 /. float_of_int n) ~w_max:4
        in
        let acc_s = Rounds.create ~bandwidth:(Model.bandwidth ~n) in
        let (_ : Engine.stats), mw_short =
          minor_words (fun () -> scale_wave ~graph:g ~acc:acc_s ~k:k_short)
        in
        let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n) in
        let (stats, mw_long), dt =
          time (fun () ->
              minor_words (fun () -> scale_wave ~graph:g ~acc ~k:k_long))
        in
        let words_per_superstep =
          (mw_long -. mw_short) /. float_of_int (k_long - k_short)
        in
        let rounds = Rounds.rounds acc in
        let rounds_per_sec = float_of_int rounds /. dt in
        let bytes_per_round =
          float_of_int (Rounds.bits acc) /. 8.0 /. float_of_int rounds
        in
        Printf.printf "%6d %9d %12.0f %12.1f %14.2f\n" n rounds rounds_per_sec
          bytes_per_round words_per_superstep;
        ignore (stats : Engine.stats);
        (n, rounds, rounds_per_sec, bytes_per_round, words_per_superstep, dt))
      ns
  in
  let worst_words =
    List.fold_left
      (fun m (_, _, _, _, w, _) -> Float.max m w)
      neg_infinity wave_rows
  in
  (* Part 2: the full sparsify -> Laplacian solve -> min-cost flow pipeline
     at the same sizes.  The CG preconditioner backend and randomized probe
     certificate keep preprocessing free of dense O(n^3) factorization, so
     n = 8192 is reachable; accounting is identical to the LU backend. *)
  Printf.printf "%6s %9s %12s %12s %12s %9s\n" "n" "rounds" "lap-rounds"
    "rounds/sec" "bytes/round" "seconds";
  let pipe_rows =
    List.map
      (fun n ->
        let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n) in
        let g =
          Gen.erdos_renyi_connected (Prng.create 11) ~n
            ~p:(12.0 /. float_of_int n) ~w_max:8
        in
        let result, dt =
          time (fun () ->
              Rounds.with_phase acc "scale" (fun () ->
                  let s =
                    Solver.preprocess ~accountant:acc ~prng:(Prng.create 23)
                      ~graph:g ~t:4 ~k:3 ~certify:(`Probe 16) ~backend:`Cg ()
                  in
                  let prng = Prng.create 29 in
                  let b =
                    Vec.mean_center
                      (Vec.init n (fun _ -> Prng.gaussian prng))
                  in
                  let r = Solver.solve ~accountant:acc s ~b ~eps:1e-6 in
                  (* The min-cost-flow tail runs on a fixed-size instance
                     (the IPM's declared normal-solve cost is n-independent
                     here), so its rounds are checkpointed out of the
                     scaling curve but still part of the pipeline total. *)
                  let laplacian_rounds = Rounds.checkpoint acc in
                  let net =
                    Network.random (Prng.create 5) ~n:10 ~density:0.3
                      ~max_capacity:4 ~max_cost:4
                  in
                  let f = Mcmf_lp.solve ~accountant:acc ~prng:(Prng.create 7) net in
                  ( r.Solver.iterations,
                    laplacian_rounds,
                    f.Mcmf_lp.value,
                    f.Mcmf_lp.cost )))
        in
        let iters, lap_rounds, v, c = result in
        let rounds = Rounds.rounds acc in
        let bits = Rounds.bits acc in
        let rounds_per_sec = float_of_int rounds /. dt in
        let bytes_per_round = float_of_int bits /. 8.0 /. float_of_int rounds in
        Printf.printf "%6d %9d %12d %12.0f %12.1f %9.1f\n" n rounds lap_rounds
          rounds_per_sec bytes_per_round dt;
        (n, rounds, lap_rounds, bits, rounds_per_sec, bytes_per_round, dt,
         iters, v, c))
      ns
  in
  (* Every charged round fits the model: at bandwidth B a round carries at
     most n broadcasts of B bits, so total bits <= rounds * n * B. *)
  let worst_fill =
    List.fold_left
      (fun m (n, rounds, _, bits, _, _, _, _, _, _) ->
        let capacity =
          float_of_int rounds *. float_of_int n
          *. float_of_int (Model.bandwidth ~n)
        in
        Float.max m (float_of_int bits /. capacity))
      0.0 pipe_rows
  in
  let n_top = List.fold_left (fun m n -> Stdlib.max m n) 0 ns in
  note
    "claims: the run_soa superstep loop allocates ~nothing (amortized minor\n\
     words per superstep within noise of zero); pipeline bits never exceed\n\
     the model's per-round broadcast capacity; the sweep reaches the\n\
     requested top size (8192 unless LBCC_SCALE_MAX_N lowers it).\n";
  let row_json (n, rounds, lap_rounds, bits, rps, bpr, dt, iters, v, c) =
    Json.Obj
      [
        ("n", Json.Int n);
        ("rounds", Json.Int rounds);
        ("sparsify_solve_rounds", Json.Int lap_rounds);
        ("bits", Json.Int bits);
        ("rounds_per_sec", Json.Float rps);
        ("bytes_per_round", Json.Float bpr);
        ("seconds", Json.Float dt);
        ("solve_iterations", Json.Int iters);
        ("mcmf_value", Json.Int v);
        ("mcmf_cost", Json.Int c);
      ]
  in
  let wave_json (n, rounds, rps, bpr, words, dt) =
    Json.Obj
      [
        ("n", Json.Int n);
        ("rounds", Json.Int rounds);
        ("rounds_per_sec", Json.Float rps);
        ("bytes_per_round", Json.Float bpr);
        ("minor_words_per_superstep", Json.Float words);
        ("seconds", Json.Float dt);
      ]
  in
  report ~experiment:"SCALE"
    ~title:"flat-core scaling: throughput and allocation up to n=8192"
    ~extra:
      [
        ("max_n", Json.Int max_n);
        ("sizes", Json.Arr (List.map (fun n -> Json.Int n) ns));
        ("engine", Json.String (Engine.impl_name (Engine.default_impl ())));
        ("wave_supersteps", Json.Int k_long);
        ("wave", Json.Arr (List.map wave_json wave_rows));
        ("pipeline", Json.Arr (List.map row_json pipe_rows));
      ]
    [
      cl ~direction:Report.Le
        "run_soa amortized minor words per superstep (hot path)" worst_words
        64.0;
      cl ~direction:Report.Le
        "pipeline bits / model broadcast capacity (worst n)" worst_fill 1.0;
      cl ~direction:Report.Ge "largest pipeline size completed"
        (float_of_int
           (List.fold_left
              (fun m (n, _, _, _, _, _, _, _, _, _) -> Stdlib.max m n)
              0 pipe_rows))
        (float_of_int n_top);
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let micro () =
  section "micro" "wall-clock micro-benchmarks (Bechamel)";
  let open Bechamel in
  let g = Gen.erdos_renyi_connected (Prng.create 1) ~n:48 ~p:0.4 ~w_max:4 in
  let solver = Solver.preprocess ~prng:(Prng.create 2) ~graph:g ~t:4 ~k:3 () in
  let b = Vec.mean_center (Vec.init 48 (fun i -> float_of_int (i mod 7))) in
  let net =
    Network.random (Prng.create 3) ~n:7 ~density:0.3 ~max_capacity:4 ~max_cost:4
  in
  let prng_ball = Prng.create 4 in
  let a_ball = Vec.init 1000 (fun _ -> Prng.gaussian prng_ball) in
  let l_ball = Vec.init 1000 (fun _ -> 0.1 +. Prng.float prng_ball) in
  let tests =
    Test.make_grouped ~name:"lbcc"
      [
        Test.make ~name:"spanner-n48"
          (Staged.stage (fun () ->
               let p = Array.make (Graph.m g) 1.0 in
               ignore
                 (Spanner.run ~prng:(Prng.create 7) ~graph:g ~p ~k:3 ()
                   : Spanner.result)));
        Test.make ~name:"sparsify-n48-t2"
          (Staged.stage (fun () ->
               ignore
                 (Sparsify.run ~prng:(Prng.create 8) ~graph:g ~epsilon:0.5 ~t:2 ~k:3 ()
                   : Sparsify.result)));
        Test.make ~name:"laplacian-solve-1e-8"
          (Staged.stage (fun () ->
               ignore (Solver.solve solver ~b ~eps:1e-8 : Solver.solve_result)));
        Test.make ~name:"mixed-ball-m1000"
          (Staged.stage (fun () ->
               ignore (Mixed_ball.maximize ~a:a_ball ~l:l_ball () : Mixed_ball.result)));
        Test.make ~name:"mcmf-baseline-n7"
          (Staged.stage (fun () -> ignore (Mcmf.solve net : Mcmf.result)));
        Test.make ~name:"mcmf-ipm-n7"
          (Staged.stage (fun () ->
               ignore (Mcmf_lp.solve ~prng:(Prng.create 9) net : Mcmf_lp.solve_result)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "%-34s %14s\n" "benchmark" "ns/run";
  let rows = ref [] in
  Hashtbl.iter (fun name res -> rows := (name, res) :: !rows) results;
  List.iter
    (fun (name, res) ->
      match Analyze.OLS.estimates res with
      | Some (est :: _) -> Printf.printf "%-34s %14.0f\n" name est
      | Some [] | None -> Printf.printf "%-34s %14s\n" name "n/a")
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* BYZ: Byzantine delivery tiers — conformance, detection, overhead    *)

let byz () =
  section "BYZ" "Byzantine tiers: conformance sweep, detection, round overhead";
  let n = 16 in
  let model = Model.broadcast_congested_clique in
  let g =
    Gen.erdos_renyi_connected (Prng.create 42) ~n ~p:0.35 ~w_max:4
  in
  let f_max = Fault.max_tolerated ~n in
  let byz_faults ~count ~seed =
    Fault.create ~seed
      (Fault.spec ~byzantine:(List.init count Fun.id) ~byz_prob:0.15 ())
  in
  let seeds = List.init 20 (fun i -> i + 1) in
  let baseline = Bfs.run ~model ~graph:g ~source:0 () in
  (* Conformance: at f = f_max (the largest tolerated population) every
     fault-schedule seed must reproduce the lossless BFS distances and the
     quorum layer must report a clean run. *)
  let conform =
    List.filter
      (fun seed ->
        let r, d =
          Bfs.run_byzantine
            ~faults:(byz_faults ~count:f_max ~seed)
            ~model ~graph:g ~source:0 ()
        in
        r.Bfs.dist = baseline.Bfs.dist && Byzantine.Diag.ok d)
      seeds
  in
  let conformance =
    float_of_int (List.length conform) /. float_of_int (List.length seeds)
  in
  Printf.printf "conformance at f = %d (= f_max, n = %d): %d/%d seeds\n" f_max
    n (List.length conform) (List.length seeds);
  (* Detection: one vertex past the bound must be flagged — the diagnostics
     turn tolerance_exceeded on and the CLI exits nonzero. *)
  let detect =
    List.filter
      (fun seed ->
        let _, d =
          Bfs.run_byzantine
            ~faults:(byz_faults ~count:(f_max + 1) ~seed)
            ~model ~graph:g ~source:0 ()
        in
        not (Byzantine.Diag.ok d))
      seeds
  in
  let detection =
    float_of_int (List.length detect) /. float_of_int (List.length seeds)
  in
  Printf.printf "detection at f = %d (> f_max): %d/%d seeds flagged\n"
    (f_max + 1) (List.length detect) (List.length seeds);
  (* Round overhead of the three delivery tiers on the same lossless run. *)
  let rounds_at tier =
    let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n) in
    (match tier with
    | Model.None ->
        ignore
          (Bfs.run ~accountant:acc ~model ~graph:g ~source:0 () : Bfs.result)
    | Model.Crash_safe ->
        ignore
          (Bfs.run_reliable ~accountant:acc ~model ~graph:g ~source:0 ()
            : Bfs.result)
    | Model.Byzantine_safe ->
        ignore
          (Bfs.run_byzantine ~accountant:acc ~model ~graph:g ~source:0 ()
            : Bfs.result * Byzantine.Diag.t));
    (Rounds.rounds acc, acc)
  in
  let r_none, _ = rounds_at Model.None in
  let r_crash, _ = rounds_at Model.Crash_safe in
  let r_byz, acc_byz = rounds_at Model.Byzantine_safe in
  Printf.printf "%-16s %8s %10s\n" "tier" "rounds" "overhead";
  List.iter
    (fun (tier, r) ->
      Printf.printf "%-16s %8d %9.1fx\n"
        (Model.reliability_name tier)
        r
        (float_of_int r /. float_of_int r_none))
    [ (Model.None, r_none); (Model.Crash_safe, r_crash);
      (Model.Byzantine_safe, r_byz) ];
  (* Determinism: the Byzantine run's outputs and diagnostics must be
     bit-identical at every worker-pool size. *)
  let fingerprint_at d =
    Pool.set_default_domains d;
    let r, diag =
      Bfs.run_byzantine
        ~faults:(byz_faults ~count:f_max ~seed:7)
        ~model ~graph:g ~source:0 ()
    in
    Printf.sprintf "%s|%d|%d|%d|%d"
      (String.concat "," (List.map string_of_int (Array.to_list r.Bfs.dist)))
      r.Bfs.supersteps diag.Byzantine.Diag.virtual_supersteps
      diag.Byzantine.Diag.echo_rounds diag.Byzantine.Diag.repairs_served
  in
  let fp1 = fingerprint_at 1 in
  let fp2 = fingerprint_at 2 in
  let fp4 = fingerprint_at 4 in
  Pool.set_default_domains 1;
  let identical = fp1 = fp2 && fp2 = fp4 in
  Printf.printf "byzantine run bit-identical at 1/2/4 domains: %b\n" identical;
  note "the echo-quorum layer buys f < n/3 equivocation tolerance for a\n";
  note "constant-factor round overhead; past the bound it fails loudly.\n";
  report ~experiment:"BYZ"
    ~title:"Byzantine tiers: conformance, detection, round overhead"
    ~phases:(phases_of acc_byz)
    ~extra:
      [
        ("n", Json.Int n);
        ("f_max", Json.Int f_max);
        ("seeds", Json.Int (List.length seeds));
        ("rounds_none", Json.Int r_none);
        ("rounds_crash_safe", Json.Int r_crash);
        ("rounds_byzantine_safe", Json.Int r_byz);
      ]
    [
      cl ~direction:Report.Ge "conformance fraction at f = f_max" conformance
        1.0;
      cl ~direction:Report.Ge "detection fraction at f = f_max + 1" detection
        1.0;
      cl ~direction:Report.Ge "crash-safe / none round overhead"
        (float_of_int r_crash /. float_of_int r_none)
        1.0;
      cl ~direction:Report.Ge "byzantine-safe / crash-safe round overhead"
        (float_of_int r_byz /. float_of_int r_crash)
        1.0;
      cl "byzantine-safe rounds per protocol round and vertex"
        (float_of_int r_byz /. float_of_int (r_none * n))
        16.0;
      cl ~direction:Report.Ge "outputs identical at 1/2/4 domains"
        (if identical then 1.0 else 0.0)
        1.0;
    ]

(* ------------------------------------------------------------------ *)
(* UPDATE: incremental re-sparsification vs full rebuild                *)

let update_exp () =
  section "UPDATE"
    "graph mutation: incremental update rounds vs full rebuild, certified";
  let module Fingerprint = Lbcc_service.Fingerprint in
  let g0 = Gen.grid (Prng.create 31) ~rows:10 ~cols:10 ~w_max:8 in
  let epsilon = 0.5 in
  let steps = 3 in
  let sizes = [ 1; 4; 16; 64 ] in
  Printf.printf "base: n=%d m=%d (grid), %d deltas per stream\n" (Graph.n g0)
    (Graph.m g0) steps;
  (* Canonical rendering of the sketch's edge set — the cross-domain
     identity check compares these strings. *)
  let sketch_fp sk =
    Graph.edges sk.Sparsify.sparsifier
    |> Array.to_list
    |> List.map (fun (e : Graph.edge) ->
           Printf.sprintf "%d-%d-%Lx" e.Graph.u e.Graph.v
             (Int64.bits_of_float e.Graph.w))
    |> String.concat ";"
  in
  (* One seeded delta stream per size k: k/2 inserts, k/4 deletes, the rest
     reweights, connectivity-preserving.  [full] controls whether the
     full-rebuild baseline and the certificates are computed (only in the
     measuring pass, not in the cross-domain replays). *)
  let run_stream ?(full = true) ~domains k =
    Pool.set_default_domains domains;
    let prng = Prng.create 7 in
    let dprng = Prng.create (100 + k) in
    let sk = ref (Sparsify.sketch ~prng ~graph:g0 ~epsilon ()) in
    let fp = ref (Fingerprint.graph g0) in
    let rows = ref [] in
    let fp_exact = ref true in
    for _ = 1 to steps do
      let d =
        Gen.delta ~w_max:8 ~connected:true dprng ~graph:!sk.Sparsify.base
          ~inserts:(Stdlib.max 1 (k / 2))
          ~deletes:(k / 4)
          ~reweights:(Stdlib.max 0 (k - (k / 2) - (k / 4)))
          ()
      in
      (* Patch the fingerprint in O(|delta|) and check it against a
         from-scratch fingerprint of the accumulated graph. *)
      fp := Fingerprint.apply !fp (Fingerprint.delta !sk.Sparsify.base d);
      sk := Sparsify.update ~prng !sk d;
      if not (Fingerprint.equal !fp (Fingerprint.graph !sk.Sparsify.base))
      then fp_exact := false;
      let full_rounds, eps_achieved =
        if full then begin
          let r =
            Sparsify.run ~prng:(Prng.create 7) ~graph:!sk.Sparsify.base
              ~epsilon ()
          in
          let cert =
            Certify.exact !sk.Sparsify.base !sk.Sparsify.sparsifier
          in
          (r.Sparsify.rounds, cert.Certify.epsilon_achieved)
        end
        else (0, 0.0)
      in
      rows :=
        (Graph.Delta.size d, !sk.Sparsify.generation,
         !sk.Sparsify.last_rounds, full_rounds, eps_achieved)
        :: !rows
    done;
    (List.rev !rows, sketch_fp !sk, !fp_exact)
  in
  Printf.printf "%6s %4s %10s %10s %7s %8s\n" "|d|" "gen" "upd-rnds"
    "full-rnds" "ratio" "eps";
  let all_rows = ref [] in
  let certified = ref true in
  let fp_exact_all = ref true in
  let identical = ref true in
  List.iter
    (fun k ->
      let rows, fp1, fpx = run_stream ~domains:1 k in
      let _, fp2, _ = run_stream ~full:false ~domains:2 k in
      let _, fp4, _ = run_stream ~full:false ~domains:4 k in
      if not (fp1 = fp2 && fp2 = fp4) then identical := false;
      if not fpx then fp_exact_all := false;
      List.iter
        (fun (dsz, gen, upd, fullr, eps) ->
          (* KPPS composition: generation g may compound the per-step
             epsilon, so certify against the composed budget. *)
          let budget = ((1.0 +. epsilon) ** float_of_int (1 + gen)) -. 1.0 in
          if eps > budget then certified := false;
          Printf.printf "%6d %4d %10d %10d %7.2f %8.3f\n" dsz gen upd fullr
            (float_of_int upd /. float_of_int (Stdlib.max 1 fullr))
            eps;
          all_rows := (k, dsz, gen, upd, fullr, eps) :: !all_rows)
        rows)
    sizes;
  Pool.set_default_domains 1;
  let all_rows = List.rev !all_rows in
  (* The headline ratio: mean update/full rounds over the small-delta
     streams (the regime the incremental path exists for). *)
  let small =
    List.filter (fun (k, _, _, _, _, _) -> k <= 4) all_rows
  in
  let small_ratio =
    List.fold_left
      (fun a (_, _, _, upd, fullr, _) ->
        a +. (float_of_int upd /. float_of_int (Stdlib.max 1 fullr)))
      0.0 small
    /. float_of_int (Stdlib.max 1 (List.length small))
  in
  Printf.printf
    "small deltas (<= 4 ops): mean update/full rounds ratio %.2f; certified=%b \
     fingerprint-exact=%b domains-identical=%b\n"
    small_ratio !certified !fp_exact_all !identical;
  note
    "claims: incremental updates cost measurably fewer rounds than full\n\
     rebuilds for small deltas; every updated sketch certifies within the\n\
     composed KPPS budget; the patched fingerprint equals a from-scratch\n\
     fingerprint; the post-update sketch is bit-identical at 1/2/4 domains.\n";
  report ~experiment:"UPDATE"
    ~title:"incremental re-sparsification under Graph.Delta streams"
    ~extra:
      [
        ("n", Json.Int (Graph.n g0));
        ("m", Json.Int (Graph.m g0));
        ("epsilon", Json.Float epsilon);
        ("steps_per_stream", Json.Int steps);
        ("delta_sizes", Json.Arr (List.map (fun k -> Json.Int k) sizes));
        ( "streams",
          Json.Arr
            (List.map
               (fun (k, dsz, gen, upd, fullr, eps) ->
                 Json.Obj
                   [
                     ("requested_ops", Json.Int k);
                     ("delta_ops", Json.Int dsz);
                     ("generation", Json.Int gen);
                     ("update_rounds", Json.Int upd);
                     ("full_rounds", Json.Int fullr);
                     ("epsilon_achieved", Json.Float eps);
                   ])
               all_rows) );
      ]
    [
      cl ~direction:Report.Le
        "mean update/full-rebuild rounds ratio, small deltas (<= 4 ops)"
        small_ratio 0.9;
      cl ~direction:Report.Ge
        "updated sketches certified within the composed error budget"
        (if !certified then 1.0 else 0.0)
        1.0;
      cl ~direction:Report.Ge
        "patched fingerprint equals from-scratch fingerprint"
        (if !fp_exact_all then 1.0 else 0.0)
        1.0;
      cl ~direction:Report.Ge
        "post-update sketch bit-identical at 1/2/4 domains"
        (if !identical then 1.0 else 0.0)
        1.0;
    ]

let all_experiments =
  [
    ("E1", fun () -> Some (e1 ()));
    ("E2", fun () -> Some (e2 ()));
    ("E3", fun () -> Some (e3 ()));
    ("E4", fun () -> Some (e4 ()));
    ("E5", fun () -> Some (e5 ()));
    ("E6", fun () -> Some (e6 ()));
    ("E7", fun () -> Some (e7 ()));
    ("E8", fun () -> Some (e8 ()));
    ("E9", fun () -> Some (e9 ()));
    ("E10", fun () -> Some (e10 ()));
    ("E11", fun () -> Some (e11 ()));
    ("E12", fun () -> Some (e12 ()));
    ("E13", fun () -> Some (e13 ()));
    ("E14", fun () -> Some (e14 ()));
    ("E15", fun () -> Some (e15 ()));
    ("E16", fun () -> Some (e16 ()));
    ("BYZ", fun () -> Some (byz ()));
    ("PERF", fun () -> Some (perf ()));
    ("BATCH", fun () -> Some (batch ()));
    ("UPDATE", fun () -> Some (update_exp ()));
    ("SCALE", fun () -> Some (scale ()));
    ("micro", fun () -> micro (); None);
  ]

let usage () =
  prerr_endline
    "usage: main.exe [E1..E16|BYZ|PERF|BATCH|UPDATE|SCALE|micro]... [--json] [--out \
     DIR]\n\
     --json writes one BENCH_<EXP>.json per selected experiment (micro has\n\
     no report); --out selects the output directory (default: cwd).\n\
     Exit codes: 0 all claims hold; 1 a claim left its bound; 2 usage;\n\
     3 internal error.";
  exit 2

let () =
  let rec parse ids json out = function
    | [] -> (List.rev ids, json, out)
    | "--json" :: rest -> parse ids true out rest
    | "--out" :: dir :: rest -> parse ids json dir rest
    | [ "--out" ] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | id :: rest -> parse (id :: ids) json out rest
  in
  let ids, json, out = parse [] false "." (List.tl (Array.to_list Sys.argv)) in
  let requested = if ids = [] then List.map fst all_experiments else ids in
  (* Unknown experiment names are a usage error, detected before anything
     runs so a typo cannot silently skip part of a sweep. *)
  List.iter
    (fun id ->
      if not (List.mem_assoc id all_experiments) then begin
        Printf.eprintf "unknown experiment %s\n" id;
        exit 2
      end)
    requested;
  Printf.printf "Laplacian paradigm in the BCC — experiment harness\n";
  Printf.printf "experiments: %s\n" (String.concat " " requested);
  let run_all () =
    let failures = ref [] in
    List.iter
      (fun id ->
        let f = List.assoc id all_experiments in
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (match r with
        | Some r ->
            if not (Report.all_within r) then failures := id :: !failures;
            if json then
              let path = Report.write ~dir:out r in
              Printf.printf "[%s report: %s within_bound=%b]\n" id path
                (Report.all_within r)
        | None -> ());
        Printf.printf "[%s done in %.1fs]\n" id (Unix.gettimeofday () -. t0))
      requested;
    List.rev !failures
  in
  (* Exit-code contract (DESIGN.md §8): 1 distinguishes "ran to completion
     but a claim left its bound" from 3, "the harness itself failed". *)
  match run_all () with
  | [] -> ()
  | bad ->
      Printf.printf "CLAIMS OUT OF BOUND: %s\n" (String.concat " " bad);
      exit 1
  | exception e ->
      Printf.eprintf "internal error: %s\n" (Printexc.to_string e);
      exit 3
