open Lbcc_util
module Graph = Lbcc_graph.Graph
module Network = Lbcc_flow.Network
module Vec = Lbcc_linalg.Vec

type verdict = Ok | Degraded | Failed

type attempt = {
  attempt_seed : int;
  accepted : bool;
  score : float;
  rounds : int;
  detail : string;
}

type 'a outcome = {
  value : 'a option;
  verdict : verdict;
  attempts : attempt list;
}

let verdict_string = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Failed -> "failed"

let pp ppf o =
  Format.fprintf ppf "@[<v>verdict=%s attempts=%d@," (verdict_string o.verdict)
    (List.length o.attempts);
  List.iteri
    (fun i a ->
      Format.fprintf ppf "  #%d seed=%d %s score=%g rounds=%d %s@," (i + 1)
        a.attempt_seed
        (if a.accepted then "accepted" else "rejected")
        a.score a.rounds a.detail)
    o.attempts;
  Format.fprintf ppf "@]"

let retry ?(max_retries = 3) ~seed ~run ~accept ~score ~rounds ~detail () =
  if max_retries < 0 then invalid_arg "Resilient.retry: max_retries must be >= 0";
  let chain = Prng.create seed in
  let fresh_seed () =
    Int64.to_int (Prng.next_int64 (Prng.split chain)) land 0x3FFFFFFF
  in
  let best = ref None in
  let attempts = ref [] in
  let record a = attempts := a :: !attempts in
  let rec go i =
    if i > 1 + max_retries then
      match !best with
      | Some v -> { value = Some v; verdict = Degraded; attempts = List.rev !attempts }
      | None -> { value = None; verdict = Failed; attempts = List.rev !attempts }
    else begin
      let attempt_seed = if i = 1 then seed else fresh_seed () in
      match run ~seed:attempt_seed ~attempt:i with
      | v ->
          let ok = accept v in
          record
            {
              attempt_seed;
              accepted = ok;
              score = score v;
              rounds = rounds v;
              detail = detail v;
            };
          if ok then
            { value = Some v; verdict = Ok; attempts = List.rev !attempts }
          else begin
            (match !best with
            | Some b when score b <= score v -> ()
            | _ -> best := Some v);
            go (i + 1)
          end
      | exception e ->
          record
            {
              attempt_seed;
              accepted = false;
              score = infinity;
              rounds = 0;
              detail = Printexc.to_string e;
            };
          go (i + 1)
    end
  in
  go 1

let sparsify ?(seed = 1) ?(epsilon = 0.5) ?t ?max_retries ?accept g =
  let n = Graph.n g in
  let base_t =
    match t with
    | Some t -> t
    | None -> Lbcc_sparsifier.Sparsify.default_t ~n ~epsilon ()
  in
  let accept =
    match accept with
    | Some f -> f
    | None ->
        fun (r : Lbcc.sparsifier_result) ->
          Float.is_finite r.Lbcc.epsilon_achieved
          && r.Lbcc.epsilon_achieved <= epsilon
  in
  retry ?max_retries ~seed
    ~run:(fun ~seed ~attempt ->
      (* Backoff: doubling the bundle size doubles the w.h.p. exponent. *)
      let t = base_t * (1 lsl (attempt - 1)) in
      Lbcc.sparsify ~ctx:(Lbcc.Ctx.make ~seed ()) ~epsilon ~t g)
    ~accept
    ~score:(fun r -> r.Lbcc.epsilon_achieved)
    ~rounds:(fun r -> r.Lbcc.rounds.Lbcc.total)
    ~detail:(fun r ->
      Printf.sprintf "eps=%.4f m=%d" r.Lbcc.epsilon_achieved
        (Graph.m r.Lbcc.sparsifier))
    ()

let solve_laplacian ?(seed = 1) ?(eps = 1e-8) ?max_retries ?accept g ~b =
  let accept =
    match accept with
    | Some f -> f
    | None ->
        fun (r : Lbcc.laplacian_result) ->
          Float.is_finite r.Lbcc.residual && r.Lbcc.residual <= 10.0 *. eps
  in
  retry ?max_retries ~seed
    ~run:(fun ~seed ~attempt:_ -> Lbcc.solve_laplacian ~ctx:(Lbcc.Ctx.make ~seed ()) ~eps g ~b)
    ~accept
    ~score:(fun r -> r.Lbcc.residual)
    ~rounds:(fun r -> r.Lbcc.preprocessing_rounds + r.Lbcc.solve_rounds)
    ~detail:(fun r ->
      Printf.sprintf "residual=%.2e iters=%d" r.Lbcc.residual r.Lbcc.iterations)
    ()

let min_cost_max_flow ?(seed = 1) ?max_retries ?accept net =
  let accept =
    match accept with
    | Some f -> f
    | None -> fun (r : Lbcc.flow_result) -> r.Lbcc.exact
  in
  retry ?max_retries ~seed
    ~run:(fun ~seed ~attempt:_ -> Lbcc.min_cost_max_flow ~ctx:(Lbcc.Ctx.make ~seed ()) net)
    ~accept
    ~score:(fun r -> if r.Lbcc.exact then 0.0 else 1.0)
    ~rounds:(fun r -> r.Lbcc.rounds.Lbcc.total)
    ~detail:(fun r ->
      Printf.sprintf "value=%d cost=%d exact=%b" r.Lbcc.value r.Lbcc.cost
        r.Lbcc.exact)
    ()
