(** Laplacian paradigm in the Broadcast Congested Clique — public API.

    One-call entry points for the paper's three main results, each returning
    its result together with the simulated round count:

    - {!sparsify}: Theorem 1.2 — spectral sparsification in Broadcast
      CONGEST;
    - {!solve_laplacian}: Theorem 1.3 — the BCC Laplacian solver;
    - {!min_cost_max_flow}: Theorem 1.1 — exact minimum-cost maximum flow
      in [O~(sqrt n)] BCC rounds.

    The underlying building blocks are exposed through the per-subsystem
    libraries ([Lbcc_spanner], [Lbcc_sparsifier], [Lbcc_laplacian],
    [Lbcc_lp], [Lbcc_flow], [Lbcc_net], [Lbcc_graph], [Lbcc_linalg],
    [Lbcc_util]); this module is the curated front door. *)

module Graph = Lbcc_graph.Graph
module Network = Lbcc_flow.Network
module Vec = Lbcc_linalg.Vec

type rounds_report = {
  total : int;  (** rounds charged in the simulated model *)
  bits : int;
      (** broadcast bits recorded (per-superstep maxima, the quantity the
          lockstep model divides by B) *)
  breakdown : (string * int) list;
      (** rounds per hierarchical label path ("sparsify/spanner-..."),
          first-charge order *)
  bits_breakdown : (string * int) list;  (** bits, same labels and order *)
  bandwidth : int;  (** B, bits per message per round *)
}

type sparsifier_result = {
  sparsifier : Graph.t;
  epsilon_achieved : float;
      (** exact spectral certificate (eigensolver) for [n <= 400],
          probed otherwise *)
  out_degree_max : int;
  rounds : rounds_report;
}

val sparsify :
  ?seed:int ->
  ?epsilon:float ->
  ?t:int ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?metrics:Lbcc_obs.Metrics.t ->
  Graph.t ->
  sparsifier_result
(** Spectral sparsification (Theorem 1.2) of a connected weighted graph.
    [epsilon] defaults to [0.5]; [t] overrides the bundle size.  With a
    [?tracer] the run's phases open spans under the caller's current span;
    with [?metrics] the run bumps the registry (see the "Metrics" section
    of the README for the label set). *)

type laplacian_result = {
  solution : Vec.t;
  residual : float;  (** measured [||b - L x||/||b||] *)
  iterations : int;
  preprocessing_rounds : int;
  solve_rounds : int;
  rounds : rounds_report;  (** full accounting (preprocess + solve) *)
}

val solve_laplacian :
  ?seed:int ->
  ?eps:float ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?metrics:Lbcc_obs.Metrics.t ->
  Graph.t ->
  b:Vec.t ->
  laplacian_result
(** High-precision Laplacian solve (Theorem 1.3): [eps] defaults to
    [1e-8]; [b] must have zero sum; the graph must be connected. *)

type flow_result = {
  flow : float array;
  value : int;
  cost : int;
  exact : bool;  (** certified against the combinatorial baseline *)
  ipm_iterations : int;
  rounds : rounds_report;
}

val min_cost_max_flow :
  ?seed:int ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?metrics:Lbcc_obs.Metrics.t ->
  Network.t ->
  flow_result
(** Exact minimum-cost maximum s-t flow (Theorem 1.1) through the interior
    point pipeline, certified against successive shortest paths. *)

val effective_resistance : ?seed:int -> Graph.t -> s:int -> t:int -> float
(** Effective resistance between two vertices via the Laplacian solver —
    the classical first application of the Laplacian paradigm. *)

val version : string

val domains : unit -> int
(** Lanes of the process-wide worker pool the simulator and linalg kernels
    run on — [LBCC_DOMAINS], the [--domains] flag, or the runtime's
    recommendation.  Purely a wall-clock knob: every result is bit-identical
    at every value. *)
