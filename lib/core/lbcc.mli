(** Laplacian paradigm in the Broadcast Congested Clique — public API.

    One-call entry points for the paper's three main results, each returning
    its result together with the simulated round count:

    - {!sparsify}: Theorem 1.2 — spectral sparsification in Broadcast
      CONGEST;
    - {!solve_laplacian}: Theorem 1.3 — the BCC Laplacian solver;
    - {!min_cost_max_flow}: Theorem 1.1 — exact minimum-cost maximum flow
      in [O~(sqrt n)] BCC rounds.

    The underlying building blocks are exposed through the per-subsystem
    libraries ([Lbcc_spanner], [Lbcc_sparsifier], [Lbcc_laplacian],
    [Lbcc_service], [Lbcc_lp], [Lbcc_flow], [Lbcc_net], [Lbcc_graph],
    [Lbcc_linalg], [Lbcc_util]); this module is the curated front door.

    {b Run contexts.}  Every entry point accepts a {!Ctx.t} bundling the
    seed / tracer / metrics / reliability bundle — the {e only}
    configuration door (the historical per-call [?seed]/[?tracer]/
    [?metrics] labels were deprecated when the Prepared layer landed and
    are now gone).  Build one context with {!Ctx.make} and pass it
    everywhere.

    {b Prepared handles.}  {!solve_laplacian} and {!effective_resistance}
    now route through the {!Prepared} service layer: Theorem 1.3's
    preprocessing runs at most once per (graph fingerprint, seed) — repeat
    calls hit the process-wide handle cache and pay only query-phase
    rounds.  Hold a {!Prepared.t} directly for prepare-once / query-many
    workloads and multi-RHS batching. *)

module Graph = Lbcc_graph.Graph
module Network = Lbcc_flow.Network
module Vec = Lbcc_linalg.Vec

module Ctx = Lbcc_service.Ctx
(** Run context: seed + observability sinks, passed as [?ctx] to every
    entry point. *)

module Prepared = Lbcc_service.Prepared
(** Prepared-operator handles: preprocess once, query many times, batch
    right-hand sides across domains. *)

module Cache = Lbcc_service.Cache
(** The LRU cache type behind {!Prepared.create_cached}. *)

module Fingerprint = Lbcc_service.Fingerprint
(** Structural graph fingerprints (the handle-cache key). *)

type rounds_report = {
  total : int;  (** rounds charged in the simulated model *)
  bits : int;
      (** broadcast bits recorded (per-superstep maxima, the quantity the
          lockstep model divides by B) *)
  breakdown : (string * int) list;
      (** rounds per hierarchical label path ("sparsify/spanner-..."),
          first-charge order *)
  bits_breakdown : (string * int) list;  (** bits, same labels and order *)
  bandwidth : int;  (** B, bits per message per round *)
}

type sparsifier_result = {
  sparsifier : Graph.t;
  epsilon_achieved : float;
      (** exact spectral certificate (eigensolver) for [n <= 400],
          probed otherwise *)
  out_degree_max : int;
  rounds : rounds_report;
}

val sparsify :
  ?ctx:Ctx.t -> ?epsilon:float -> ?t:int -> Graph.t -> sparsifier_result
(** Spectral sparsification (Theorem 1.2) of a connected weighted graph.
    [epsilon] defaults to [0.5]; [t] overrides the bundle size.  With a
    tracer the run's phases open spans under the caller's current span;
    with metrics the run bumps the registry (see the "Metrics" section
    of the README for the label set). *)

type laplacian_result = {
  solution : Vec.t;
  residual : float;  (** measured [||b - L x||/||b||] *)
  iterations : int;
  preprocessing_rounds : int;
  solve_rounds : int;
  rounds : rounds_report;  (** full accounting (preprocess + solve) *)
}

val solve_laplacian :
  ?ctx:Ctx.t -> ?eps:float -> Graph.t -> b:Vec.t -> laplacian_result
(** High-precision Laplacian solve (Theorem 1.3): [eps] defaults to
    [1e-8]; [b] must have zero sum; the graph must be connected.

    Served through the {!Prepared} cache: the first call on a graph pays
    preprocessing (reported under the [prepare/*] labels), repeat calls
    with the same (graph, seed) reuse the cached handle and report only
    query-phase rounds ([query/*]).  [preprocessing_rounds] always records
    the handle's one-time cost; [rounds.total] reflects what {e this} call
    charged. *)

type flow_result = {
  flow : float array;
  value : int;
  cost : int;
  exact : bool;  (** certified against the combinatorial baseline *)
  ipm_iterations : int;
  rounds : rounds_report;
}

val min_cost_max_flow : ?ctx:Ctx.t -> Network.t -> flow_result
(** Exact minimum-cost maximum s-t flow (Theorem 1.1) through the interior
    point pipeline, certified against successive shortest paths.  The LP
    instance and normal-operator workspaces are prepared once (one
    [mcmf/prepare/*] phase in the report); every IPM iteration then charges
    only [query/*] solve rounds. *)

type resistance_result = {
  resistance : float;  (** [R_eff(s,t) = (e_s - e_t)^T L^+ (e_s - e_t)] *)
  query_rounds : int;  (** rounds for this query alone *)
  preprocessing_rounds : int;  (** the handle's one-time preparation cost *)
  rounds : rounds_report;  (** full accounting for this call *)
}

val effective_resistance :
  ?ctx:Ctx.t -> Graph.t -> s:int -> t:int -> resistance_result
(** Effective resistance between two vertices via the Laplacian solver —
    the classical first application of the Laplacian paradigm.  Routed
    through the {!Prepared} cache like {!solve_laplacian}, and — unlike the
    historical float-returning version — reports its round accounting
    instead of discarding it. *)

val version : string

val domains : unit -> int
(** Lanes of the process-wide worker pool the simulator and linalg kernels
    run on — [LBCC_DOMAINS], the [--domains] flag, or the runtime's
    recommendation.  Purely a wall-clock knob: every result is bit-identical
    at every value. *)
