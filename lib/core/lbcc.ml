open Lbcc_util
module Graph = Lbcc_graph.Graph
module Network = Lbcc_flow.Network
module Vec = Lbcc_linalg.Vec
module Rounds = Lbcc_net.Rounds
module Model = Lbcc_net.Model
module Trace = Lbcc_obs.Trace
module Metrics = Lbcc_obs.Metrics

let version = "1.0.0"

let domains () = Pool.size (Pool.default ())

type rounds_report = {
  total : int;
  bits : int;
  breakdown : (string * int) list;
  bits_breakdown : (string * int) list;
  bandwidth : int;
}

let report_of acc =
  {
    total = Rounds.rounds acc;
    bits = Rounds.bits acc;
    breakdown = Rounds.breakdown acc;
    bits_breakdown = Rounds.bits_breakdown acc;
    bandwidth = Rounds.bandwidth acc;
  }

(* One accountant per entry point, tracer attached so phase spans nest under
   whatever span the caller currently has open. *)
let fresh_accountant ?tracer ~n () =
  let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n) in
  Rounds.set_tracer acc tracer;
  acc

let observe_run ?metrics ~op acc =
  Metrics.inc metrics (op ^ ".calls");
  Metrics.inc metrics ~by:(Rounds.rounds acc) "rounds.total";
  Metrics.inc metrics ~by:(Rounds.bits acc) "bits.total";
  Metrics.observe metrics (op ^ ".rounds") (float_of_int (Rounds.rounds acc))

type sparsifier_result = {
  sparsifier : Graph.t;
  epsilon_achieved : float;
  out_degree_max : int;
  rounds : rounds_report;
}

let sparsify ?(seed = 1) ?(epsilon = 0.5) ?t ?tracer ?metrics g =
  let n = Graph.n g in
  let acc = fresh_accountant ?tracer ~n () in
  let prng = Prng.create seed in
  let r = Lbcc_sparsifier.Sparsify.run ~accountant:acc ?t ~prng ~graph:g ~epsilon () in
  let cert =
    if n <= 400 then Lbcc_sparsifier.Certify.exact g r.Lbcc_sparsifier.Sparsify.sparsifier
    else
      Lbcc_sparsifier.Certify.probe (Prng.split prng) g
        r.Lbcc_sparsifier.Sparsify.sparsifier ~samples:64
  in
  let out_deg = Lbcc_sparsifier.Sparsify.out_degrees r in
  let out_degree_max = Array.fold_left Stdlib.max 0 out_deg in
  observe_run ?metrics ~op:"sparsify" acc;
  Metrics.set_gauge metrics "sparsify.epsilon_achieved"
    cert.Lbcc_sparsifier.Certify.epsilon_achieved;
  Metrics.set_gauge metrics "sparsify.out_degree_max" (float_of_int out_degree_max);
  {
    sparsifier = r.Lbcc_sparsifier.Sparsify.sparsifier;
    epsilon_achieved = cert.Lbcc_sparsifier.Certify.epsilon_achieved;
    out_degree_max;
    rounds = report_of acc;
  }

type laplacian_result = {
  solution : Vec.t;
  residual : float;
  iterations : int;
  preprocessing_rounds : int;
  solve_rounds : int;
  rounds : rounds_report;
}

let solve_laplacian ?(seed = 1) ?(eps = 1e-8) ?tracer ?metrics g ~b =
  let prng = Prng.create seed in
  let acc = fresh_accountant ?tracer ~n:(Graph.n g) () in
  let solver = Lbcc_laplacian.Solver.preprocess ~accountant:acc ~prng ~graph:g () in
  let r = Lbcc_laplacian.Solver.solve ~accountant:acc solver ~b ~eps in
  observe_run ?metrics ~op:"solve" acc;
  Metrics.set_gauge metrics "solve.residual" r.Lbcc_laplacian.Solver.residual;
  Metrics.set_gauge metrics "solve.iterations"
    (float_of_int r.Lbcc_laplacian.Solver.iterations);
  {
    solution = r.Lbcc_laplacian.Solver.solution;
    residual = r.Lbcc_laplacian.Solver.residual;
    iterations = r.Lbcc_laplacian.Solver.iterations;
    preprocessing_rounds = Lbcc_laplacian.Solver.preprocessing_rounds solver;
    solve_rounds = r.Lbcc_laplacian.Solver.rounds;
    rounds = report_of acc;
  }

type flow_result = {
  flow : float array;
  value : int;
  cost : int;
  exact : bool;
  ipm_iterations : int;
  rounds : rounds_report;
}

let min_cost_max_flow ?(seed = 1) ?tracer ?metrics net =
  let acc = fresh_accountant ?tracer ~n:net.Network.n () in
  let r = Lbcc_flow.Mcmf_lp.solve ~accountant:acc ~prng:(Prng.create seed) net in
  observe_run ?metrics ~op:"mcmf" acc;
  Metrics.set_gauge metrics "mcmf.ipm_iterations"
    (float_of_int r.Lbcc_flow.Mcmf_lp.iterations);
  Metrics.set_gauge metrics "mcmf.value" (float_of_int r.Lbcc_flow.Mcmf_lp.value);
  Metrics.set_gauge metrics "mcmf.cost" (float_of_int r.Lbcc_flow.Mcmf_lp.cost);
  {
    flow = r.Lbcc_flow.Mcmf_lp.flow;
    value = r.Lbcc_flow.Mcmf_lp.value;
    cost = r.Lbcc_flow.Mcmf_lp.cost;
    exact = r.Lbcc_flow.Mcmf_lp.matches_baseline;
    ipm_iterations = r.Lbcc_flow.Mcmf_lp.iterations;
    rounds = report_of acc;
  }

let effective_resistance ?(seed = 1) g ~s ~t =
  if s = t then 0.0
  else begin
    let n = Graph.n g in
    let b = Vec.zeros n in
    b.(s) <- 1.0;
    b.(t) <- -1.0;
    let r = solve_laplacian ~seed ~eps:1e-10 g ~b in
    r.solution.(s) -. r.solution.(t)
  end
