open Lbcc_util
module Graph = Lbcc_graph.Graph
module Network = Lbcc_flow.Network
module Vec = Lbcc_linalg.Vec
module Rounds = Lbcc_net.Rounds
module Model = Lbcc_net.Model
module Metrics = Lbcc_obs.Metrics
module Ctx = Lbcc_service.Ctx
module Prepared = Lbcc_service.Prepared
module Cache = Lbcc_service.Cache
module Fingerprint = Lbcc_service.Fingerprint

let version = "1.0.0"

let domains () = Pool.size (Pool.default ())

type rounds_report = {
  total : int;
  bits : int;
  breakdown : (string * int) list;
  bits_breakdown : (string * int) list;
  bandwidth : int;
}

let report_of acc =
  {
    total = Rounds.rounds acc;
    bits = Rounds.bits acc;
    breakdown = Rounds.breakdown acc;
    bits_breakdown = Rounds.bits_breakdown acc;
    bandwidth = Rounds.bandwidth acc;
  }

(* One accountant per entry point, tracer attached so phase spans nest under
   whatever span the caller currently has open. *)
let fresh_accountant ?tracer ~n () =
  let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n) in
  Rounds.set_tracer acc tracer;
  acc

(* Reliability surcharge (DESIGN.md §9): the pipeline's bespoke superstep
   drivers run on the raw engine, so a delivery tier is costed, not
   simulated — every round the protocol spent is multiplied by the tier's
   per-superstep cycle overhead.  Crash_safe doubles each superstep (an
   ack/retransmit window, matching {!Lbcc_net.Reliable}'s 2-superstep
   virtual round); Byzantine_safe runs the 6-superstep echo-quorum cycle of
   {!Lbcc_net.Byzantine} at its default [retries = 1], i.e. 5 extra rounds
   per protocol round.  The overhead lands under the tier's own label so
   reports stay comparable across tiers. *)
let reliability_surcharge acc reliability =
  let extra, label =
    match reliability with
    | Model.None -> (0, "")
    | Model.Crash_safe -> (1, "retransmit")
    | Model.Byzantine_safe -> (5, "byz-echo")
  in
  if extra > 0 then
    (* Deliberately phase-free: the surcharge lands under the tier label so
     reports stay comparable across tiers (comment above). *)
    (* lbcc-lint: allow typ-phase-flow *)
    Rounds.charge acc ~label ~rounds:(extra * Rounds.rounds acc)

let observe_run ?metrics ~op acc =
  Metrics.inc metrics (op ^ ".calls");
  Metrics.inc metrics ~by:(Rounds.rounds acc) "rounds.total";
  Metrics.inc metrics ~by:(Rounds.bits acc) "bits.total";
  Metrics.observe metrics (op ^ ".rounds") (float_of_int (Rounds.rounds acc))

type sparsifier_result = {
  sparsifier : Graph.t;
  epsilon_achieved : float;
  out_degree_max : int;
  rounds : rounds_report;
}

let sparsify ?ctx ?(epsilon = 0.5) ?t g =
  let c = Ctx.resolve ?ctx () in
  let seed = c.Ctx.seed and tracer = c.Ctx.tracer and metrics = c.Ctx.metrics in
  let n = Graph.n g in
  let acc = fresh_accountant ?tracer ~n () in
  let prng = Prng.create seed in
  let r = Lbcc_sparsifier.Sparsify.run ~accountant:acc ?t ~prng ~graph:g ~epsilon () in
  let cert =
    if n <= 400 then Lbcc_sparsifier.Certify.exact g r.Lbcc_sparsifier.Sparsify.sparsifier
    else
      Lbcc_sparsifier.Certify.probe (Prng.split prng) g
        r.Lbcc_sparsifier.Sparsify.sparsifier ~samples:64
  in
  let out_deg = Lbcc_sparsifier.Sparsify.out_degrees r in
  let out_degree_max = Array.fold_left Stdlib.max 0 out_deg in
  reliability_surcharge acc c.Ctx.reliability;
  observe_run ?metrics ~op:"sparsify" acc;
  Metrics.set_gauge metrics "sparsify.epsilon_achieved"
    cert.Lbcc_sparsifier.Certify.epsilon_achieved;
  Metrics.set_gauge metrics "sparsify.out_degree_max" (float_of_int out_degree_max);
  {
    sparsifier = r.Lbcc_sparsifier.Sparsify.sparsifier;
    epsilon_achieved = cert.Lbcc_sparsifier.Certify.epsilon_achieved;
    out_degree_max;
    rounds = report_of acc;
  }

type laplacian_result = {
  solution : Vec.t;
  residual : float;
  iterations : int;
  preprocessing_rounds : int;
  solve_rounds : int;
  rounds : rounds_report;
}

(* Mirror a handle's one-time preprocessing cost into a per-call accountant
   (label-for-label, so the report's breakdown matches a from-scratch run);
   skipped on cache hits, where preparation was paid by an earlier call. *)
let mirror_prepare acc p =
  List.iter
    (* Replays the handle's label paths verbatim; a phase wrapper here would
       double-prefix them. *)
    (* lbcc-lint: allow typ-phase-flow *)
    (fun (label, rounds, bits) -> Rounds.charge acc ~bits ~label ~rounds)
    (Prepared.prepare_breakdown p)

let solve_laplacian ?ctx ?(eps = 1e-8) g ~b =
  let c = Ctx.resolve ?ctx () in
  let acc = fresh_accountant ?tracer:c.Ctx.tracer ~n:(Graph.n g) () in
  let p, hit = Prepared.create_cached ~ctx:c g in
  if not hit then mirror_prepare acc p;
  let q = Prepared.solve ~accountant:acc ~eps p ~b in
  let metrics = c.Ctx.metrics in
  reliability_surcharge acc c.Ctx.reliability;
  observe_run ?metrics ~op:"solve" acc;
  Metrics.set_gauge metrics "solve.residual" q.Prepared.residual;
  Metrics.set_gauge metrics "solve.iterations"
    (float_of_int q.Prepared.iterations);
  {
    solution = q.Prepared.solution;
    residual = q.Prepared.residual;
    iterations = q.Prepared.iterations;
    preprocessing_rounds = Prepared.preprocessing_rounds p;
    solve_rounds = q.Prepared.rounds;
    rounds = report_of acc;
  }

type flow_result = {
  flow : float array;
  value : int;
  cost : int;
  exact : bool;
  ipm_iterations : int;
  rounds : rounds_report;
}

let min_cost_max_flow ?ctx net =
  let c = Ctx.resolve ?ctx () in
  let seed = c.Ctx.seed and tracer = c.Ctx.tracer and metrics = c.Ctx.metrics in
  let acc = fresh_accountant ?tracer ~n:net.Network.n () in
  let r = Lbcc_flow.Mcmf_lp.solve ~accountant:acc ~prng:(Prng.create seed) net in
  reliability_surcharge acc c.Ctx.reliability;
  observe_run ?metrics ~op:"mcmf" acc;
  Metrics.set_gauge metrics "mcmf.ipm_iterations"
    (float_of_int r.Lbcc_flow.Mcmf_lp.iterations);
  Metrics.set_gauge metrics "mcmf.value" (float_of_int r.Lbcc_flow.Mcmf_lp.value);
  Metrics.set_gauge metrics "mcmf.cost" (float_of_int r.Lbcc_flow.Mcmf_lp.cost);
  {
    flow = r.Lbcc_flow.Mcmf_lp.flow;
    value = r.Lbcc_flow.Mcmf_lp.value;
    cost = r.Lbcc_flow.Mcmf_lp.cost;
    exact = r.Lbcc_flow.Mcmf_lp.matches_baseline;
    ipm_iterations = r.Lbcc_flow.Mcmf_lp.iterations;
    rounds = report_of acc;
  }

type resistance_result = {
  resistance : float;
  query_rounds : int;
  preprocessing_rounds : int;
  rounds : rounds_report;
}

let effective_resistance ?ctx g ~s ~t =
  let c = Ctx.resolve ?ctx () in
  let acc = fresh_accountant ?tracer:c.Ctx.tracer ~n:(Graph.n g) () in
  let p, hit = Prepared.create_cached ~ctx:c g in
  if not hit then mirror_prepare acc p;
  let resistance, q = Prepared.effective_resistance ~accountant:acc p ~s ~t in
  let metrics = c.Ctx.metrics in
  reliability_surcharge acc c.Ctx.reliability;
  observe_run ?metrics ~op:"resistance" acc;
  Metrics.set_gauge metrics "resistance.value" resistance;
  {
    resistance;
    query_rounds = q.Prepared.rounds;
    preprocessing_rounds = Prepared.preprocessing_rounds p;
    rounds = report_of acc;
  }
