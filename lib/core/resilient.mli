(** Self-healing wrappers for the w.h.p. entry points.

    The paper's guarantees hold "with high probability": a run of
    {!Lbcc.sparsify}, {!Lbcc.solve_laplacian} or {!Lbcc.min_cost_max_flow}
    can fail its own certificate (a sparsifier worse than the target
    epsilon, a residual above tolerance, an IPM answer that disagrees with
    the combinatorial baseline).  The plain API reports the certificate but
    returns the result regardless; this module closes the loop: it
    {b certifies every attempt, retries failed ones with a fresh split
    seed}, and always returns an explicit verdict instead of a silently
    degraded answer.

    Seeds: attempt 1 uses the caller's seed unchanged (so a clean first
    attempt reproduces the plain API bit-for-bit); attempt [i > 1] draws a
    fresh seed from a {!Lbcc_util.Prng.split} chain rooted at that same
    seed — the whole retry trajectory is a deterministic function of one
    integer.

    Backoff: where the algorithm exposes an effort knob, later attempts
    raise it — {!sparsify} doubles the bundle size [t] per retry (the
    paper's knob for the w.h.p. exponent); the generic {!retry} hands the
    attempt number to the caller for the same purpose (e.g. doubling a
    superstep cap). *)

module Graph = Lbcc_graph.Graph
module Network = Lbcc_flow.Network
module Vec = Lbcc_linalg.Vec

type verdict =
  | Ok  (** an attempt passed certification *)
  | Degraded
      (** budget exhausted; the best uncertified attempt is returned *)
  | Failed  (** every attempt raised; no result to return *)

type attempt = {
  attempt_seed : int;
  accepted : bool;
  score : float;
      (** certification metric, lower is better: achieved epsilon,
          measured residual, or 0/1 baseline agreement; [infinity] when
          the attempt raised *)
  rounds : int;  (** simulated rounds charged by this attempt *)
  detail : string;
}

type 'a outcome = {
  value : 'a option;  (** [None] iff [verdict = Failed] *)
  verdict : verdict;
  attempts : attempt list;  (** chronological; at least one *)
}

val verdict_string : verdict -> string

val pp : Format.formatter -> 'a outcome -> unit
(** Verdict, attempt count and per-attempt scores (not the value). *)

val retry :
  ?max_retries:int ->
  seed:int ->
  run:(seed:int -> attempt:int -> 'a) ->
  accept:('a -> bool) ->
  score:('a -> float) ->
  rounds:('a -> int) ->
  detail:('a -> string) ->
  unit ->
  'a outcome
(** The generic loop: up to [1 + max_retries] attempts (default
    [max_retries = 3]).  [run] may raise; the exception is recorded as a
    failed attempt and the loop continues.  Stops at the first accepted
    attempt. *)

val sparsify :
  ?seed:int ->
  ?epsilon:float ->
  ?t:int ->
  ?max_retries:int ->
  ?accept:(Lbcc.sparsifier_result -> bool) ->
  Graph.t ->
  Lbcc.sparsifier_result outcome
(** Certifies [epsilon_achieved <= epsilon] (via the
    {!Lbcc_sparsifier.Certify} certificate already computed by
    {!Lbcc.sparsify}); retries double the bundle size [t].  [?accept]
    overrides the certification predicate (used by tests to inject
    failures). *)

val solve_laplacian :
  ?seed:int ->
  ?eps:float ->
  ?max_retries:int ->
  ?accept:(Lbcc.laplacian_result -> bool) ->
  Graph.t ->
  b:Vec.t ->
  Lbcc.laplacian_result outcome
(** Certifies the measured 2-norm residual against [10 * eps] (the solve
    targets [eps] in the energy norm; the factor absorbs the norm gap). *)

val min_cost_max_flow :
  ?seed:int ->
  ?max_retries:int ->
  ?accept:(Lbcc.flow_result -> bool) ->
  Network.t ->
  Lbcc.flow_result outcome
(** Certifies agreement with the combinatorial successive-shortest-paths
    baseline ([result.exact]). *)
