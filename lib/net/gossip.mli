(** Epidemic rumor dissemination over the unicast congested clique.

    Each vertex may originate one rumor; {!spread} runs a push–pull gossip
    protocol until every vertex is quiescent:

    - {b eager push}: a rumor learned in round [r] is forwarded in round
      [r+1] to [fanout] targets drawn from a seeded PRNG keyed on
      [(seed, round, vertex)] — the choice is a pure function of its
      coordinates, so runs are deterministic at any pool size;
    - {b digest exchange}: every gram carries the ascending list of origins
      its sender knows, so a receiver learns {e what exists} even when the
      payload itself was not pushed to it;
    - {b lazy pull}: a vertex that heard a digest naming an origin it lacks
      asks the lowest-id known holder for the payload in the next round,
      and holders answer queued requests one round later.

    Push alone reaches most of the network in [O(log n)] rounds but leaves
    stragglers with probability [Theta(1/n)] per rumor; the digest/pull
    pair closes exactly those gaps, which is the recovery invariant
    (DESIGN.md §9): {e any vertex that ever hears a digest naming a rumor
    eventually holds that rumor, faults permitting}.  A vertex halts after
    [patience] consecutive rounds with nothing to push, pull or serve.

    All cost is charged under [label] (default ["gossip"]): rounds by the
    engine's unicast rule, bits from digests, wants and payloads alike. *)

type 'msg result = {
  known : (int * 'msg) list array;
      (** per vertex: the [(origin, rumor)] pairs it holds, ascending *)
  stats : Engine.stats;
  rumors : int;  (** number of distinct rumors originated *)
  coverage : float;
      (** delivered (vertex, rumor) pairs over [n * rumors]; [1.0] is full
          dissemination *)
  pushes : int;  (** rumor payloads sent by eager push *)
  pulls : int;  (** pull requests sent *)
}

val spread :
  ?accountant:Rounds.t ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?label:string ->
  ?fanout:int ->
  ?patience:int ->
  ?horizon:int ->
  ?max_supersteps:int ->
  ?on_timeout:Engine.on_timeout ->
  ?seed:int ->
  ?faults:Fault.t ->
  model:Model.t ->
  graph:Lbcc_graph.Graph.t ->
  size_bits:('msg -> int) ->
  rumors:(int -> 'msg option) ->
  unit ->
  'msg result
(** [spread ~model ~graph ~size_bits ~rumors ()] disseminates
    [rumors v] (for every vertex [v] where it is [Some _]) to all vertices.
    [fanout] defaults to 2, [patience] to 3, [seed] to 1.  No vertex
    retires before round [horizon] (default [patience + 3 ceil(log2 n)]),
    so stragglers sit through the epidemic's [O(log n)] spreading window
    exchanging digests before giving up.  Under [?faults]
    dropped grams slow the epidemic but the digest/pull path retries as
    long as any digest gap remains, so coverage degrades only when faults
    persist past quiescence.
    @raise Invalid_argument unless [model] is the unicast congested clique
    ([{topology = Clique; discipline = Unicast}]), or on a non-positive
    [fanout] / [patience]. *)
