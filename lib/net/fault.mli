(** Deterministic fault injection for the simulated network.

    The engine is lossless and crash-free by default; a [t] threaded through
    {!Engine.run} / {!Engine.run_unicast} as [?faults] turns on a repeatable
    failure model:

    - {b message drops}: each (sender, receiver) delivery is lost
      independently with probability [drop_prob];
    - {b duplication}: a delivered message is handed to the receiver twice
      with probability [duplicate_prob] (the inbox sees two copies);
    - {b crash-stop}: [crashes = [(v, r); ...]] removes vertex [v] at the
      start of superstep [r] — it neither steps nor sends from then on;
    - {b adversarial drops}: on top of the random losses, the first
      [adversarial_drops] deliveries that survived the coin flips are
      destroyed, in engine delivery order (a worst-case budget in the sense
      of the restricted-clique models).

    {b Determinism contract.} Random decisions are a pure function of
    [(seed, superstep, sender, receiver)] — independent of query order — so
    the same seed reproduces the same fault schedule bit-for-bit, and two
    protocols with different communication patterns still see the same fate
    for the same (round, edge) slot.  The adversarial budget is the one
    stateful component; it consumes in the engine's deterministic delivery
    order.  Per-purpose key material is derived from the single seed with
    {!Lbcc_util.Prng.split}. *)

type spec = {
  drop_prob : float;  (** per-delivery loss probability, in [\[0, 1)] *)
  duplicate_prob : float;  (** per-delivery duplication probability *)
  crashes : (int * int) list;  (** [(vertex, superstep)] crash-stop points *)
  adversarial_drops : int;  (** extra targeted-drop budget *)
}

val spec :
  ?drop_prob:float ->
  ?duplicate_prob:float ->
  ?crashes:(int * int) list ->
  ?adversarial_drops:int ->
  unit ->
  spec
(** All fields default to the lossless value (0 / []). *)

type t

val create : ?seed:int -> spec -> t
(** [create ~seed spec] compiles the spec into an injectable fault plan.
    [seed] defaults to 1.
    @raise Invalid_argument if a probability is outside [\[0, 1)] or the
    budget is negative. *)

val lossless : unit -> t
(** A fault plan that never interferes; [Engine] treats it like [None]. *)

val is_lossless : t -> bool

val crashed : t -> vertex:int -> round:int -> bool
(** Has [vertex]'s crash point passed at superstep [round]? *)

val copies : t -> round:int -> src:int -> dst:int -> int
(** How many copies of the message broadcast by [src] in superstep [round]
    reach [dst]: 0 (dropped), 1, or 2 (duplicated).  Consumes the
    adversarial budget when the random layer lets a message through. *)

val drops : t -> int
(** Messages destroyed so far (random + adversarial). *)

val duplicates : t -> int
(** Deliveries duplicated so far. *)

val adversarial_spent : t -> int
(** How much of the adversarial budget has been used. *)

val seed : t -> int

val pp : Format.formatter -> t -> unit
