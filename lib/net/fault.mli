(** Deterministic fault injection for the simulated network.

    The engine is lossless and crash-free by default; a [t] threaded through
    {!Engine.run} / {!Engine.run_unicast} as [?faults] turns on a repeatable
    failure model:

    - {b message drops}: each (sender, receiver) delivery is lost
      independently with probability [drop_prob];
    - {b duplication}: a delivered message is handed to the receiver twice
      with probability [duplicate_prob] (the inbox sees two copies);
    - {b crash-stop}: [crashes = [(v, r); ...]] removes vertex [v] at the
      start of superstep [r] — it neither steps nor sends from then on;
    - {b adversarial drops}: on top of the random losses, a budget of
      [adversarial_drops] deliveries that survived the coin flips are
      destroyed.  With an empty Byzantine set the budget burns first-come
      in engine delivery order (worst case in the restricted-clique sense);
      with a Byzantine set it is targeted — only deliveries from Byzantine
      senders are silently destroyed, when their (deterministic) coin
      fires;
    - {b payload corruption}: each delivery is tampered independently with
      probability [corrupt_prob] — the engine rewrites the payload with a
      seeded bit-flip transform keyed by the delivery's tamper salt;
    - {b equivocation}: a vertex listed in [byzantine] tampers each of its
      deliveries independently with probability [byz_prob].  Because the
      tamper salt is keyed on (round, sender, receiver), distinct receivers
      of the same broadcast see distinct corrupted payloads: the Byzantine
      sender equivocates even inside the broadcast discipline.

    {b Determinism contract.} Random decisions are a pure function of
    [(seed, superstep, sender, receiver)] — independent of query order — so
    the same seed reproduces the same fault schedule bit-for-bit, and two
    protocols with different communication patterns still see the same fate
    for the same (round, edge) slot.  The adversarial budget is the one
    stateful component; it consumes in the engine's deterministic delivery
    order.  Per-purpose key material is derived from the single seed with
    {!Lbcc_util.Prng.split}; the Byzantine salts draw after the historical
    drop/duplicate salts, so pre-Byzantine schedules are unchanged. *)

type spec = {
  drop_prob : float;  (** per-delivery loss probability, in [\[0, 1)] *)
  duplicate_prob : float;  (** per-delivery duplication probability *)
  crashes : (int * int) list;  (** [(vertex, superstep)] crash-stop points *)
  adversarial_drops : int;  (** silent-drop budget, see {!adversarial_spent} *)
  corrupt_prob : float;  (** per-delivery payload-corruption probability *)
  byzantine : int list;  (** Byzantine (equivocating) vertex set *)
  byz_prob : float;  (** per-delivery tamper probability of a Byzantine src *)
}

val spec :
  ?drop_prob:float ->
  ?duplicate_prob:float ->
  ?crashes:(int * int) list ->
  ?adversarial_drops:int ->
  ?corrupt_prob:float ->
  ?byzantine:int list ->
  ?byz_prob:float ->
  unit ->
  spec
(** All fields default to the lossless value (0 / []). *)

type t

val create : ?seed:int -> spec -> t
(** [create ~seed spec] compiles the spec into an injectable fault plan.
    [seed] defaults to 1.
    @raise Invalid_argument if a probability is outside [\[0, 1)], the
    budget is negative, or a Byzantine vertex id is negative. *)

val lossless : unit -> t
(** A fault plan that never interferes; [Engine] treats it like [None]. *)

val is_lossless : t -> bool

val crashed : t -> vertex:int -> round:int -> bool
(** Has [vertex]'s crash point passed at superstep [round]? *)

val is_byzantine : t -> int -> bool

val byzantine_count : t -> int
(** [f], the size of the Byzantine vertex set. *)

val max_tolerated : n:int -> int
(** The largest Byzantine population an echo-quorum layer over [n] vertices
    can tolerate: [floor((n-1)/3)], i.e. the largest [f] with [n >= 3f+1]. *)

val copies : t -> round:int -> src:int -> dst:int -> int
(** How many copies of the message broadcast by [src] in superstep [round]
    reach [dst]: 0 (dropped), 1, or 2 (duplicated).  Consumes the
    adversarial budget when the random layer lets a message through and the
    silent-drop adversary elects to destroy it. *)

val tamper : t -> round:int -> src:int -> dst:int -> int option
(** [Some salt] when the [src -> dst] delivery of superstep [round] is
    tampered — by channel corruption, or by equivocation when [src] is
    Byzantine.  The salt deterministically keys the payload transform
    (distinct per receiver, which is what makes tampering equivocation).
    Apart from the tamper counters this is a pure function of its
    coordinates, like {!copies}. *)

val tampers : t -> bool
(** Can this plan ever tamper a payload?  ([corrupt_prob > 0] or a
    non-empty Byzantine set with [byz_prob > 0].) *)

val equivocates : t -> bool
(** Is there an active equivocating adversary — a non-empty Byzantine set
    with [byz_prob > 0]?  {!Byzantine} uses this to decide whether its
    Byzantine vertices also forge their echo votes. *)

val drops : t -> int
(** Messages destroyed so far (random + adversarial). *)

val duplicates : t -> int
(** Deliveries duplicated so far. *)

val adversarial_spent : t -> int
(** How much of the adversarial budget has been used. *)

val corruptions : t -> int
(** Deliveries tampered by channel corruption so far. *)

val equivocations : t -> int
(** Deliveries tampered by a Byzantine sender so far. *)

val seed : t -> int

val pp : Format.formatter -> t -> unit
