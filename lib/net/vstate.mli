(** Struct-of-arrays vertex state for flat-engine protocols (DESIGN.md §10).

    A [Vstate.t] is a group of named, unboxed per-vertex columns over a
    fixed vertex count: [int array], [Float.Array.t] (unboxed 64-bit
    floats) or [Bytes.t] (one byte per vertex, for flags and small enums).
    Each accessor returns the existing column or creates it filled with
    [init]; the caller fetches columns once at setup and indexes the flat
    arrays directly inside the step loop — no per-vertex records, no
    pointer chasing, no lookup on the hot path. *)

type t

val create : n:int -> t
val n : t -> int

val ints : ?init:int -> t -> string -> int array
(** The named int column, created on first request.
    @raise Invalid_argument if the name exists with a different type. *)

val floats : ?init:float -> t -> string -> Float.Array.t
val bytes : ?init:char -> t -> string -> Bytes.t

val mem : t -> string -> bool
