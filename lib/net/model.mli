(** The message-passing models of the paper (Section 2.1).

    All four models proceed in synchronous rounds with bandwidth
    [B = Theta(log n)] bits per message.  They differ in topology
    (communication along input-graph edges vs. all-to-all) and in whether a
    vertex may send distinct messages to distinct neighbors (unicast) or must
    send the same message to all (broadcast). *)

type topology = Input_graph | Clique
type discipline = Unicast | Broadcast

type t = { topology : topology; discipline : discipline }

val congest : t
val broadcast_congest : t
val congested_clique : t
val broadcast_congested_clique : t

val bandwidth : n:int -> int
(** The per-message bandwidth [B] in bits for an [n]-vertex network:
    [2 * ceil(log2 n)], i.e. [Theta(log n)] with the constant the paper's
    messages (an ID plus a small tag) need. *)

val name : t -> string
val pp : Format.formatter -> t -> unit

type reliability =
  | None  (** raw engine: faults hit the protocol directly *)
  | Crash_safe
      (** {!Reliable}: ack/retransmit recovery from drops, duplicates and
          crash-stop vertices *)
  | Byzantine_safe
      (** {!Byzantine}: echo-quorum reliable broadcast tolerating
          [f < n/3] corrupting / equivocating vertices *)
(** The delivery-guarantee tiers every pipeline entry point can run under.
    Each tier strictly strengthens the previous one and costs strictly more
    rounds; the overhead is charged under its own accounting label
    (["<label>/retransmit"], ["<label>/byz-echo"]) so the tiers stay
    comparable in the paper's round currency (DESIGN.md §9). *)

val reliability_name : reliability -> string
(** ["none" | "crash-safe" | "byzantine-safe"]. *)

val reliability_of_string : string -> reliability option
(** Inverse of {!reliability_name}, accepting the CLI spellings
    ("raw", "crash", "reliable", "byz", ...).  [None] on unknown input. *)

val pp_reliability : Format.formatter -> reliability -> unit
