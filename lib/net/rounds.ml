open Lbcc_util
module Trace = Lbcc_obs.Trace

type entry = { mutable r : int; mutable b : int }

type t = {
  bandwidth : int;
  mutable total : int;
  mutable total_bits : int;
  tally : (string, entry) Hashtbl.t;
  mutable order : string list; (* reversed first-charge order *)
  mutable prefix : string list; (* open phases, innermost first *)
  mutable tracer : Trace.t option;
}

let create ~bandwidth =
  if bandwidth < 1 then invalid_arg "Rounds.create: bandwidth must be >= 1";
  {
    bandwidth;
    total = 0;
    total_bits = 0;
    tally = Hashtbl.create 16;
    order = [];
    prefix = [];
    tracer = None;
  }

let bandwidth t = t.bandwidth

let set_tracer t tracer = t.tracer <- tracer

let full_label t label =
  match t.prefix with
  | [] -> label
  | prefix -> String.concat "/" (List.rev prefix) ^ "/" ^ label

let charge ?(bits = 0) t ~label ~rounds =
  if rounds < 0 then invalid_arg "Rounds.charge: negative rounds";
  if bits < 0 then invalid_arg "Rounds.charge: negative bits";
  let label = full_label t label in
  t.total <- t.total + rounds;
  t.total_bits <- t.total_bits + bits;
  match Hashtbl.find_opt t.tally label with
  | Some e ->
      e.r <- e.r + rounds;
      e.b <- e.b + bits
  | None ->
      Hashtbl.add t.tally label { r = rounds; b = bits };
      t.order <- label :: t.order

let charge_broadcast t ~label ~bits =
  let bits = Stdlib.max 1 bits in
  let rounds = Stdlib.max 1 (Bits.ceil_div bits t.bandwidth) in
  charge t ~label ~bits ~rounds

let charge_vector ?(entries = 1) t ~label ~entry_bits =
  if entries < 1 then invalid_arg "Rounds.charge_vector: entries must be >= 1";
  charge_broadcast t ~label ~bits:(entries * entry_bits)

let rounds t = t.total

let bits t = t.total_bits

let entry_of t label = Hashtbl.find t.tally label

let breakdown t = List.rev_map (fun label -> (label, (entry_of t label).r)) t.order

let bits_breakdown t =
  List.rev_map (fun label -> (label, (entry_of t label).b)) t.order

let with_phase t name f =
  Trace.span t.tracer name @@ fun () ->
  t.prefix <- name :: t.prefix;
  let r0 = t.total and b0 = t.total_bits in
  Fun.protect
    ~finally:(fun () ->
      (match t.prefix with
      | p :: rest when p == name -> t.prefix <- rest
      | _ -> (* a reset inside the phase cleared the stack *) ());
      Trace.add t.tracer ~rounds:(t.total - r0) ~bits:(t.total_bits - b0) ())
    f

let with_phase_opt acc name f =
  match acc with Some t -> with_phase t name f | None -> f ()

let phase_path t = String.concat "/" (List.rev t.prefix)

type tree = { label : string; t_rounds : int; t_bits : int; children : tree list }

(* Fold the flat path-labeled breakdown into a forest.  Each node aggregates
   its subtree; charges made directly at an interior path contribute to that
   node's own totals.  First-charge order is preserved among siblings. *)
let tree t =
  let rows =
    List.rev_map
      (fun label ->
        let e = entry_of t label in
        (String.split_on_char '/' label, e.r, e.b))
      t.order
  in
  let rec build rows =
    (* Group consecutive-by-first-appearance rows by head segment. *)
    let order = ref [] in
    let groups : (string, (string list * int * int) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun (path, r, b) ->
        match path with
        | [] -> ()
        | head :: rest ->
            let bucket =
              match Hashtbl.find_opt groups head with
              | Some bucket -> bucket
              | None ->
                  let bucket = ref [] in
                  Hashtbl.add groups head bucket;
                  order := head :: !order;
                  bucket
            in
            bucket := (rest, r, b) :: !bucket)
      rows;
    List.rev_map
      (fun head ->
        let members = List.rev !(Hashtbl.find groups head) in
        let own_r = ref 0 and own_b = ref 0 in
        let deeper =
          List.filter
            (fun (rest, r, b) ->
              if rest = [] then begin
                own_r := !own_r + r;
                own_b := !own_b + b;
                false
              end
              else true)
            members
        in
        let children = build deeper in
        let sum f = List.fold_left (fun acc c -> acc + f c) 0 children in
        {
          label = head;
          t_rounds = !own_r + sum (fun c -> c.t_rounds);
          t_bits = !own_b + sum (fun c -> c.t_bits);
          children;
        })
      !order
  in
  build rows

let reset t =
  t.total <- 0;
  t.total_bits <- 0;
  Hashtbl.reset t.tally;
  t.order <- [];
  t.prefix <- []

let checkpoint t = t.total

let checkpoint_bits t = t.total_bits

let pp ppf t =
  Format.fprintf ppf "@[<v>rounds total=%d bits=%d (B=%d bits)@," t.total
    t.total_bits t.bandwidth;
  List.iter2
    (fun (l, r) (_, b) -> Format.fprintf ppf "  %-32s %d (%d bits)@," l r b)
    (breakdown t) (bits_breakdown t);
  Format.fprintf ppf "@]"
