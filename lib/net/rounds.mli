(** Round accountant.

    Round complexity is the metric the paper proves bounds on, so it is a
    first-class runtime value here: every distributed routine threads an
    accountant and charges it for each communication superstep.  A superstep
    in which the largest broadcast is [s] bits costs [ceil(s/B)] rounds
    (the synchronous lockstep cost the paper uses, e.g. the
    "[1 + log W / log n] rounds" per spanner message).

    Charges carry string labels so experiments can report per-phase
    breakdowns.  Two orthogonal refinements on top of plain round counting:

    - {b bit accounting}: each charge may also record how many broadcast
      bits determined its cost (the per-superstep maximum message, i.e. the
      quantity the lockstep model divides by [B]); totals and per-label
      breakdowns are exposed alongside the round counts.
    - {b hierarchical labels}: {!with_phase} pushes a phase name onto a
      prefix stack, and every label charged inside is recorded under
      ["phase/label"].  Phases nest ("solve/preprocess/sparsify/...") and
      {!tree} folds the flat breakdown back into a parent/child tree.

    A phase additionally opens a {!Lbcc_obs.Trace} span when a tracer is
    attached ({!set_tracer}), recording the phase's inclusive round and bit
    deltas into the span. *)

type t

val create : bandwidth:int -> t
(** [create ~bandwidth:b] with [b >= 1] bits per message per round. *)

val bandwidth : t -> int

val set_tracer : t -> Lbcc_obs.Trace.t option -> unit
(** Attach (or detach) the tracer consulted by {!with_phase}. *)

val charge : ?bits:int -> t -> label:string -> rounds:int -> unit
(** Charge a fixed number of rounds, optionally recording the broadcast
    bits that produced them (defaults to 0: unknown). *)

val charge_broadcast : t -> label:string -> bits:int -> unit
(** One synchronous broadcast superstep whose largest message has [bits]
    bits: costs [max 1 (ceil(bits/B))] rounds and records [max 1 bits]
    broadcast bits. *)

val charge_vector : ?entries:int -> t -> label:string -> entry_bits:int -> unit
(** Exchange of a distributed vector: everyone broadcasts simultaneously, so
    the superstep costs the largest per-vertex message —
    [entries * entry_bits] bits, [max 1 (ceil(entries * entry_bits / B))]
    rounds.  [entries] is the number of coordinates {e each vertex} holds
    and defaults to 1 (the common "one coordinate per vertex" layout);
    callers exchanging [c] coordinates per vertex must pass [~entries:c] or
    the charge silently undercounts by a factor of [c]. *)

val rounds : t -> int
(** Total rounds charged so far. *)

val bits : t -> int
(** Total broadcast bits recorded so far (per-superstep maxima, i.e. the
    bits that determined the round cost — not the sum over all senders). *)

val breakdown : t -> (string * int) list
(** Rounds per full label path, in first-charge order.  Sums to {!rounds}. *)

val bits_breakdown : t -> (string * int) list
(** Bits per full label path, same order as {!breakdown}.  Sums to
    {!bits}. *)

val with_phase : t -> string -> (unit -> 'a) -> 'a
(** [with_phase t name f] prefixes every label charged by [f] with
    [name ^ "/"], nesting; exception-safe.  When a tracer is attached the
    phase also runs inside a trace span named [name] that receives the
    phase's inclusive round and bit deltas. *)

val with_phase_opt : t option -> string -> (unit -> 'a) -> 'a
(** {!with_phase} through an optional accountant; [None] just runs [f]. *)

val phase_path : t -> string
(** The currently open phase prefix, ["a/b"] style; [""] at top level. *)

type tree = { label : string; t_rounds : int; t_bits : int; children : tree list }

val tree : t -> tree list
(** The breakdown folded into a forest by splitting label paths on ['/'].
    An interior node aggregates its subtree (plus any charges made directly
    at its own path); siblings keep first-charge order. *)

val reset : t -> unit
(** Clears totals, per-label tallies and the phase hierarchy (open phases
    are forgotten: subsequent charges are unprefixed). *)

val checkpoint : t -> int
(** Current total, for measuring a subcomputation as a difference. *)

val checkpoint_bits : t -> int

val pp : Format.formatter -> t -> unit
