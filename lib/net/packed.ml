module Graph = Lbcc_graph.Graph

(* Fixed-width payload codecs and packed per-round message buffers: the
   flat engine core stores every in-flight broadcast in one shared [Bytes]
   buffer (slot [v * width] holds vertex [v]'s message) gated by a presence
   bytemap, instead of an [option] box per message.  Encoders write only
   inside their own slot, so the parallel step phase may encode from
   concurrent chunks without synchronization. *)

type 'msg codec = {
  width : int; (* bytes per encoded message *)
  encode : Bytes.t -> int -> 'msg -> unit;
  decode : Bytes.t -> int -> 'msg;
}

let int_codec =
  {
    width = 8;
    encode = (fun b off v -> Bytes.set_int64_le b off (Int64.of_int v));
    decode = (fun b off -> Int64.to_int (Bytes.get_int64_le b off));
  }

(* Floats travel as their IEEE-754 bit pattern, so the round trip is the
   identity on every value — including NaNs, infinities and -0. *)
let float_codec =
  {
    width = 8;
    encode = (fun b off v -> Bytes.set_int64_le b off (Int64.bits_of_float v));
    decode = (fun b off -> Int64.float_of_bits (Bytes.get_int64_le b off));
  }

type 'msg buffer = {
  codec : 'msg codec;
  n : int;
  present : Bytes.t;
  data : Bytes.t;
}

let buffer codec ~n =
  if n < 0 then invalid_arg "Packed.buffer: negative size";
  if codec.width < 1 then invalid_arg "Packed.buffer: codec width must be >= 1";
  {
    codec;
    n;
    present = Bytes.make n '\000';
    data = Bytes.make (Stdlib.max 1 (n * codec.width)) '\000';
  }

let length buf = buf.n

(* Only the presence map is cleared: stale payload bytes stay in [data] but
   are unreachable, because every read is gated on [mem].  The QCheck suite
   pins this (reuse never leaks a previous round's payload). *)
let clear buf = Bytes.fill buf.present 0 buf.n '\000'

let set buf v msg =
  buf.codec.encode buf.data (v * buf.codec.width) msg;
  Bytes.set buf.present v '\001'

let mem buf v = Bytes.get buf.present v <> '\000'

let get buf v =
  if not (mem buf v) then invalid_arg "Packed.get: no message in slot";
  buf.codec.decode buf.data (v * buf.codec.width)

(* Counting-sort delivery plan, keyed (src, dst): the receiver-major CSR of
   the graph's directed delivery pairs.  [srcs.(off.(v)) .. srcs.(off.(v+1)-1)]
   are the senders vertex [v] hears, ascending (parallel edges adjacent) —
   built in two counting passes over the edge array, with no intermediate
   per-vertex lists and no comparison sort. *)
type plan = { off : int array; srcs : int array }

let plan graph =
  let n = Graph.n graph in
  let edges = Graph.edges graph in
  let m2 = 2 * Array.length edges in
  (* Pass 1: group the directed pairs by source. *)
  let out_off = Array.make (n + 1) 0 in
  Array.iter
    (fun (e : Graph.edge) ->
      out_off.(e.Graph.u + 1) <- out_off.(e.Graph.u + 1) + 1;
      out_off.(e.Graph.v + 1) <- out_off.(e.Graph.v + 1) + 1)
    edges;
  for i = 0 to n - 1 do
    out_off.(i + 1) <- out_off.(i + 1) + out_off.(i)
  done;
  let out_dst = Array.make m2 0 in
  let cursor = Array.copy out_off in
  Array.iter
    (fun (e : Graph.edge) ->
      out_dst.(cursor.(e.Graph.u)) <- e.Graph.v;
      cursor.(e.Graph.u) <- cursor.(e.Graph.u) + 1;
      out_dst.(cursor.(e.Graph.v)) <- e.Graph.u;
      cursor.(e.Graph.v) <- cursor.(e.Graph.v) + 1)
    edges;
  (* Pass 2: scatter sources into receiver segments.  The graph is
     undirected, so in-degrees equal out-degrees and the offsets carry
     over; walking sources in ascending order makes every segment
     ascending (the counting sort is stable). *)
  let off = Array.copy out_off in
  let srcs = Array.make m2 0 in
  let cur = Array.copy off in
  for u = 0 to n - 1 do
    for i = out_off.(u) to out_off.(u + 1) - 1 do
      let d = out_dst.(i) in
      srcs.(cur.(d)) <- u;
      cur.(d) <- cur.(d) + 1
    done
  done;
  { off; srcs }

let in_degree p v = p.off.(v + 1) - p.off.(v)

let max_in_degree p =
  let best = ref 0 in
  for v = 0 to Array.length p.off - 2 do
    best := Stdlib.max !best (in_degree p v)
  done;
  !best
