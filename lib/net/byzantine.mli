(** Echo-quorum reliable broadcast: the [Byzantine_safe] delivery tier.

    Wraps an {!Engine} vertex program so that every virtual round of the
    inner protocol is delivered through a BV-broadcast-style echo/accept
    exchange (Bracha 1987) tolerating [f < n/3] corrupting or equivocating
    vertices on the broadcast congested clique.  One virtual round expands
    into [1 + retries] cycles of three lockstep supersteps:

    + {b SEND} — every vertex broadcasts its inner payload (and ingests the
      previous cycle's repairs);
    + {b ECHO} — every vertex broadcasts a digest vote for each payload it
      holds, plus its own.  A receiver holding a tampered copy thereby
      dissents in public: the dissenting echo doubles as the broadcast
      model's lazy {e pull request};
    + {b REPAIR} — votes are tallied.  A digest with a {b strong quorum}
      ([>= 2f+1] votes, [f = floor((n-1)/3)]) is accepted by every vertex
      whose copy matches it; a {b weak quorum} ([>= f+1] votes, hence at
      least one honest voucher) licenses holders of the backed value to
      re-broadcast it, and mismatched receivers to adopt the served copy.

    The quorum argument (DESIGN.md §9): [n >= 3f+1] honest vertices number
    [>= 2f+1], so the true digest of an honest broadcast always reaches a
    strong quorum once repairs have propagated, while [f] coordinated liars
    reach at most [f < f+1] votes — they can neither fabricate a weak
    quorum nor starve an honest one.  At [f >= n/3] the honest population
    drops below [2f+1] and strong quorums become unreachable: the failure
    is {e detectable}, reported through [quorum_failures] and the
    suspicion set rather than as silent corruption.

    The schedule is a pure function of the global superstep index, so the
    layer is deterministic at any {!Lbcc_util.Pool} size; [?faults] coins
    are the only source of adversity and are themselves seeded.  Slots that
    exhaust every cycle without a strong quorum are counted in
    [quorum_failures] and their subjects suspected (excluded) from then on.

    Cost: aggregate payload bits and one round per virtual superstep ride
    the caller's [label]; all remaining rounds — echo, repair and retry
    traffic — are charged under ["<label>/byz-echo"]. *)

type 'state result = {
  states : 'state array;
  stats : Engine.stats;  (** raw engine statistics of the expanded run *)
  virtual_supersteps : int;  (** inner-protocol supersteps completed *)
  protocol_rounds : int;  (** rounds attributed to the inner protocol *)
  echo_rounds : int;  (** rounds attributed to the quorum machinery *)
  suspected : int list;
      (** vertices some honest vertex gave up on (ascending) *)
  quorum_failures : int;
      (** (virtual round, subject) slots that exhausted every cycle without
          a strong quorum — nonzero means delivery degraded detectably *)
  repairs_served : int;  (** repair entries broadcast across the run *)
  tolerance_exceeded : bool;
      (** the fault plan fields more Byzantine vertices than
          [floor((n-1)/3)] — its conformance guarantee is void *)
}

val echo_label : string -> string
(** [echo_label l] is [l ^ "/byz-echo"], the accounting label of the
    quorum machinery. *)

(** The state-independent slice of a {!result}, for protocols that wrap
    {!run} and want to surface the quorum diagnostics without exposing
    their vertex state. *)
module Diag : sig
  type t = {
    virtual_supersteps : int;
    echo_rounds : int;
    quorum_failures : int;
    suspected : int list;
    repairs_served : int;
    tolerance_exceeded : bool;
  }

  val ok : t -> bool
  (** No quorum failures and the fault plan within [f < n/3]: the run's
      delivery guarantee held. *)

  val pp : Format.formatter -> t -> unit
end

val diag : 'state result -> Diag.t

val run :
  ?accountant:Rounds.t ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?label:string ->
  ?max_supersteps:int ->
  ?on_timeout:Engine.on_timeout ->
  ?retries:int ->
  ?faults:Fault.t ->
  ?tamper:(salt:int -> 'msg -> 'msg) ->
  model:Model.t ->
  graph:Lbcc_graph.Graph.t ->
  size_bits:('msg -> int) ->
  init:(int -> 'state) ->
  step:('state, 'msg) Engine.step ->
  unit ->
  'state result
(** Runs [step] under echo-quorum delivery.  [retries] (default 1) extra
    cycles per virtual round give tampered copies one repair window each;
    [max_supersteps] caps {e real} engine supersteps, so allow
    [3 * (1 + retries)] per inner superstep.  [?tamper] is the {e inner}
    payload transform handed to the engine for corruption/equivocation
    verdicts; without it payloads are immune and only echo forgery and
    silent drops remain adversarial.
    @raise Invalid_argument on a unicast or [Input_graph] model (echo
    quorums need the clique), or [retries < 0]. *)
