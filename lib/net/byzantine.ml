module Graph = Lbcc_graph.Graph
module Tbl = Lbcc_util.Tbl

(* One virtual (inner-protocol) round expands into [1 + retries] cycles of
   three lockstep supersteps: SEND (payloads out, previous cycle's repairs
   in), ECHO (digest votes out, payloads in), REPAIR (served payloads out,
   votes in).  The schedule is a pure function of the global superstep
   index, so every vertex is always in the same (vround, cycle, phase) slot
   and a dropped control packet can cost votes but never desynchronize the
   protocol. *)

type 'msg body =
  | Send of 'msg option
  | Echo of (int * int) list (* (subject, digest), ascending by subject *)
  | Repair of (int * 'msg option) list (* (subject, payload I can vouch for) *)

type 'msg packet = { vround : int; halted : bool; body : 'msg body }

(* Digests live in [0, 2^30); a forged echo vote lives in [2^30, 2^31) so
   the in-model adversary is maximally disruptive (its common lie never
   accidentally matches an honest digest). *)
let digest (m : _ option) = Hashtbl.hash m land 0x3FFFFFFF

let forged_digest ~vround ~subject =
  0x40000000 lor (Hashtbl.hash (vround * 65_599 + subject) land 0x3FFFFFFF)

type ('state, 'msg) vertex = {
  id : int;
  nbrs : int array;
      (* The protocol is clique-only, so every vertex shares ONE [0..n-1]
         array and the iteration helpers skip [id] on the fly — n explicit
         (n-1)-element lists were an O(n^2) setup cost. *)
  mutable inner : 'state;
  mutable inner_live : bool;
  mutable vround : int; (* 0 until the first inner step runs *)
  mutable inner_steps : int; (* actual inner [step] invocations *)
  mutable out : 'msg option; (* inner broadcast for [vround] *)
  mutable zombie : bool; (* inner halted; draining echo duty *)
  (* Current virtual round's delivery state, reset at each advance. *)
  copy : (int, 'msg option) Hashtbl.t; (* subject -> latest/locked payload *)
  locked : (int, unit) Hashtbl.t; (* subject -> copy is weak-quorum backed *)
  accepted : (int, 'msg option) Hashtbl.t; (* subject -> strong-quorum value *)
  ballots : (int, (int, int) Hashtbl.t) Hashtbl.t; (* subject -> echoer -> digest *)
  weak : (int, int) Hashtbl.t; (* subject -> weak-quorum digest *)
  halted_nbrs : (int, unit) Hashtbl.t;
  suspected : (int, unit) Hashtbl.t;
  mutable failures : int; (* (vround, subject) slots that died without quorum *)
  mutable served : int; (* repair entries this vertex broadcast *)
}

type 'state result = {
  states : 'state array;
  stats : Engine.stats;
  virtual_supersteps : int;
  protocol_rounds : int;
  echo_rounds : int;
  suspected : int list;
  quorum_failures : int;
  repairs_served : int;
  tolerance_exceeded : bool;
}

let echo_label label = label ^ "/byz-echo"

(* The state-independent slice of a [result]: what a wrapping protocol can
   report without exposing its private vertex state. *)
module Diag = struct
  type t = {
    virtual_supersteps : int;
    echo_rounds : int;
    quorum_failures : int;
    suspected : int list;
    repairs_served : int;
    tolerance_exceeded : bool;
  }

  let ok d = d.quorum_failures = 0 && not d.tolerance_exceeded

  let pp ppf d =
    Format.fprintf ppf
      "@[<h>byz vrounds=%d echo-rounds=%d quorum-failures=%d suspected=%d \
       repairs=%d%s@]"
      d.virtual_supersteps d.echo_rounds d.quorum_failures
      (List.length d.suspected)
      d.repairs_served
      (if d.tolerance_exceeded then " TOLERANCE-EXCEEDED" else "")
end

let diag (r : _ result) =
  {
    Diag.virtual_supersteps = r.virtual_supersteps;
    echo_rounds = r.echo_rounds;
    quorum_failures = r.quorum_failures;
    suspected = r.suspected;
    repairs_served = r.repairs_served;
    tolerance_exceeded = r.tolerance_exceeded;
  }

let packet_bits ~n inner_bits (pkt : _ packet) =
  let open Payload in
  let base = size [ Tag 4; Int pkt.vround; Bitfield 1 ] in
  base
  +
  match pkt.body with
  | Send None -> 0
  | Send (Some m) -> inner_bits m
  | Echo entries ->
      size (List.concat_map (fun (_, _) -> [ Vertex_id n; Bitfield 31 ]) entries)
  | Repair entries ->
      List.fold_left
        (fun acc (_, p) ->
          acc + size [ Vertex_id n ]
          + (match p with None -> 1 | Some m -> 1 + inner_bits m))
        0 entries

(* Deterministic plurality: largest vote count, ties to the smallest
   digest. *)
let plurality ballots =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (_, d) ->
      Hashtbl.replace tally d
        (1 + match Hashtbl.find_opt tally d with Some c -> c | None -> 0))
    ballots;
  Tbl.sorted_bindings ~compare:Int.compare tally
  |> List.fold_left
       (fun best (d, c) ->
         match best with
         | Some (_, c') when c' >= c -> best
         | _ -> Some (d, c))
       None

let run ?accountant ?tracer ?(label = "byzantine") ?(max_supersteps = 100_000)
    ?(on_timeout = `Truncate) ?(retries = 1) ?faults ?tamper ~model ~graph
    ~size_bits ~init ~step () =
  if retries < 0 then invalid_arg "Byzantine.run: retries must be >= 0";
  (match model.Model.topology with
  | Model.Clique -> ()
  | Model.Input_graph ->
      invalid_arg "Byzantine.run: echo quorums need the clique topology");
  Lbcc_obs.Trace.span tracer label @@ fun () ->
  let n = Graph.n graph in
  let f_max = Fault.max_tolerated ~n in
  let strong_q = (2 * f_max) + 1 in
  let weak_q = f_max + 1 in
  let cycles = 1 + retries in
  let period = 3 * cycles in
  (* The in-model worst-case adversary: Byzantine vertices forge every echo
     vote with a digest common across receivers and echoers, which is what
     makes the f < n/3 threshold sharp (see DESIGN.md §9). *)
  let forges v =
    match faults with
    | Some f -> Fault.equivocates f && Fault.is_byzantine f v
    | None -> false
  in
  let all_ids = Array.init n Fun.id in
  let init_vertex v =
    {
      id = v;
      nbrs = all_ids;
      inner = init v;
      inner_live = true;
      inner_steps = 0;
      vround = 0;
      out = None;
      zombie = false;
      copy = Hashtbl.create 8;
      locked = Hashtbl.create 8;
      accepted = Hashtbl.create 8;
      ballots = Hashtbl.create 8;
      weak = Hashtbl.create 8;
      halted_nbrs = Hashtbl.create 8;
      suspected = Hashtbl.create 8;
      failures = 0;
      served = 0;
    }
  in
  (* Neighbors still expected to participate: not self, not halted, not
     suspected — iterated in place (ascending id order, as the legacy
     filtered lists were), never materialized. *)
  let is_expected v u =
    u <> v.id
    && (not (Hashtbl.mem v.halted_nbrs u))
    && not (Hashtbl.mem v.suspected u)
  in
  let iter_expected v f =
    Array.iter (fun u -> if is_expected v u then f u) v.nbrs
  in
  let count_expected v =
    Array.fold_left
      (fun acc u -> if is_expected v u then acc + 1 else acc)
      0 v.nbrs
  in
  let any_expected v = Array.exists (is_expected v) v.nbrs in
  let ballot_box v subject =
    match Hashtbl.find_opt v.ballots subject with
    | Some box -> box
    | None ->
        let box = Hashtbl.create 8 in
        Hashtbl.replace v.ballots subject box;
        box
  in
  let cast v ~subject ~echoer d = Hashtbl.replace (ballot_box v subject) echoer d in
  (* Advance the inner protocol one virtual round: deliver the accepted
     inbox, collect the next broadcast, reset the per-round tables. *)
  let advance v =
    if v.inner_live then begin
      let inbox =
        if v.vround = 0 then []
        else
          Tbl.sorted_bindings ~compare:Int.compare v.accepted
          |> List.filter_map (fun (s, p) ->
                 match p with Some m -> Some (s, m) | None -> None)
      in
      let inner', msg, continue =
        step ~round:(v.vround + 1) ~vertex:v.id v.inner inbox
      in
      v.inner <- inner';
      v.out <- msg;
      v.vround <- v.vround + 1;
      v.inner_steps <- v.inner_steps + 1;
      v.inner_live <- continue
    end
    else begin
      v.zombie <- true;
      v.out <- None;
      v.vround <- v.vround + 1
    end;
    Hashtbl.reset v.copy;
    Hashtbl.reset v.locked;
    Hashtbl.reset v.accepted;
    Hashtbl.reset v.ballots;
    Hashtbl.reset v.weak
  in
  (* End of a virtual round: everything still unaccepted is charged as a
     quorum failure and its subject suspected from now on. *)
  let finalize v =
    iter_expected v (fun s ->
        if not (Hashtbl.mem v.accepted s) then begin
          v.failures <- v.failures + 1;
          Hashtbl.replace v.suspected s ()
        end)
  in
  let ingest_send v (sender, pkt) payload =
    if pkt.halted then Hashtbl.replace v.halted_nbrs sender ()
    else if not (Hashtbl.mem v.locked sender) then
      Hashtbl.replace v.copy sender payload
  in
  let ingest_echo v (sender, entries) =
    List.iter (fun (subject, d) -> cast v ~subject ~echoer:sender d) entries
  in
  let ingest_repair v entries =
    List.iter
      (fun (subject, payload) ->
        match Hashtbl.find_opt v.weak subject with
        | Some wd
          when (not (Hashtbl.mem v.accepted subject))
               && (not (Hashtbl.mem v.suspected subject))
               && digest payload = wd
               && (match Hashtbl.find_opt v.copy subject with
                  | Some c -> digest c <> wd
                  | None -> true) ->
            Hashtbl.replace v.copy subject payload;
            Hashtbl.replace v.locked subject ()
        | _ -> ())
      entries
  in
  let compose_echo v =
    (* Vote on every subject I hold, and on my own broadcast; my own vote
       also lands in my local ballot box so self-held copies count. *)
    let entries =
      Tbl.sorted_bindings ~compare:Int.compare v.copy
      |> List.map (fun (s, p) -> (s, digest p))
    in
    let entries = entries @ [ (v.id, digest v.out) ] in
    let entries = List.sort (fun (a, _) (b, _) -> Int.compare a b) entries in
    List.iter (fun (s, d) -> cast v ~subject:s ~echoer:v.id d) entries;
    if forges v.id then
      List.map (fun (s, _) -> (s, forged_digest ~vround:v.vround ~subject:s)) entries
    else entries
  in
  let tally_and_serve v =
    let serve = ref [] in
    iter_expected v (fun s ->
        let box = Hashtbl.find_opt v.ballots s in
        let ballots =
          match box with
          | None -> []
          | Some box -> Tbl.sorted_bindings ~compare:Int.compare box
        in
        match plurality ballots with
        | None -> ()
        | Some (best, count) ->
            if count >= weak_q then begin
              Hashtbl.replace v.weak s best;
              (match Hashtbl.find_opt v.copy s with
              | Some c when digest c = best ->
                  Hashtbl.replace v.locked s ();
                  if
                    count >= strong_q
                    && not (Hashtbl.mem v.accepted s)
                  then Hashtbl.replace v.accepted s c;
                  (* Serve a repair whenever any echoer disagrees with the
                     backed digest — the dissenting echo is the broadcast
                     model's lazy pull request — or failed to vote at all,
                     which means a drop destroyed its copy. *)
                  let everyone = 1 + count_expected v in
                  if
                    List.exists (fun (_, d) -> d <> best) ballots
                    || List.length ballots < everyone
                  then serve := (s, c) :: !serve
              | _ -> ())
            end);
    let serve = List.rev !serve in
    v.served <- v.served + List.length serve;
    serve
  in
  let wrapper_step ~round ~vertex:_ v inbox =
    let k = (round - 1) mod period in
    let phase = k mod 3 in
    let vround_begins = k = 0 in
    (* Ingest by body kind: under lockstep every packet in the inbox was
       composed in the previous superstep, so its kind identifies its
       phase. *)
    List.iter
      (fun (sender, pkt) ->
        match pkt.body with
        | Send p -> ingest_send v (sender, pkt) p
        | Echo entries -> ingest_echo v (sender, entries)
        | Repair entries -> ingest_repair v entries)
      inbox;
    match phase with
    | 0 ->
        (* SEND: close the previous virtual round (repairs were just
           ingested), open the next one, broadcast its payload. *)
        if vround_begins then begin
          if v.vround > 0 then finalize v;
          advance v
        end;
        if v.zombie then begin
          let everyone_done = not (any_expected v) in
          let pkt = { vround = v.vround; halted = true; body = Send None } in
          (v, Some pkt, not everyone_done)
        end
        else
          (v, Some { vround = v.vround; halted = false; body = Send v.out }, true)
    | 1 ->
        (* ECHO: vote on everything received in the SEND superstep. *)
        let pkt =
          { vround = v.vround; halted = v.zombie; body = Echo (compose_echo v) }
        in
        (v, Some pkt, true)
    | _ ->
        (* REPAIR: tally the votes, accept on strong quorums, serve
           payloads wherever a dissenting echo asked for one. *)
        let serve = tally_and_serve v in
        let pkt =
          { vround = v.vround; halted = v.zombie; body = Repair serve }
        in
        (v, Some pkt, true)
  in
  (* Lift the caller's payload transform to packets.  Channel corruption /
     equivocation perturbs data (Send and Repair payloads); protocol
     control (vround, halted, the echo structure) stays intact — the
     coordinated echo adversary is modeled by [forges] above. *)
  let packet_tamper ~salt pkt =
    let perturb p =
      match (p, tamper) with
      | Some m, Some t -> Some (t ~salt m)
      | _ -> p
    in
    match pkt.body with
    | Send p -> { pkt with body = Send (perturb p) }
    | Repair entries ->
        { pkt with body = Repair (List.map (fun (s, p) -> (s, perturb p)) entries) }
    | Echo _ -> pkt
  in
  let vertices, stats =
    Engine.run ?faults ~label ~max_supersteps ~on_timeout ~tamper:packet_tamper
      ~model ~graph
      ~size_bits:(packet_bits ~n size_bits)
      ~init:init_vertex ~step:wrapper_step ()
  in
  let virtual_supersteps =
    Array.fold_left (fun m v -> Stdlib.max m v.inner_steps) 0 vertices
  in
  let globally_suspected = Hashtbl.create 8 in
  Array.iter
    (fun (v : _ vertex) ->
      (* Set union: insertion order cannot affect the resulting key set. *)
      (* lbcc-lint: allow det-unordered-hashtbl *)
      Hashtbl.iter (fun u () -> Hashtbl.replace globally_suspected u ()) v.suspected)
    vertices;
  let quorum_failures =
    Array.fold_left (fun acc v -> acc + v.failures) 0 vertices
  in
  let repairs_served = Array.fold_left (fun acc v -> acc + v.served) 0 vertices in
  let protocol_rounds = Stdlib.min virtual_supersteps stats.Engine.rounds in
  let echo_rounds = stats.Engine.rounds - protocol_rounds in
  let tolerance_exceeded =
    match faults with
    | Some f -> Fault.byzantine_count f > f_max
    | None -> false
  in
  (* As in [Reliable]: aggregate bits ride the protocol label, the quorum
     machinery's round overhead is charged under its own phase. *)
  (match accountant with
  | Some acc ->
      Rounds.charge acc ~label ~bits:stats.Engine.total_bits
        ~rounds:protocol_rounds;
      Rounds.charge acc ~label:(echo_label label) ~rounds:echo_rounds
  | None -> ());
  Lbcc_obs.Trace.add tracer ~rounds:stats.Engine.rounds
    ~bits:stats.Engine.total_bits ~supersteps:stats.Engine.supersteps
    ~messages:stats.Engine.messages_sent ();
  Lbcc_obs.Trace.set_attr tracer "virtual_supersteps"
    (Lbcc_obs.Json.Int virtual_supersteps);
  Lbcc_obs.Trace.set_attr tracer "echo_rounds" (Lbcc_obs.Json.Int echo_rounds);
  Lbcc_obs.Trace.set_attr tracer "quorum_failures"
    (Lbcc_obs.Json.Int quorum_failures);
  Lbcc_obs.Trace.set_attr tracer "repairs_served"
    (Lbcc_obs.Json.Int repairs_served);
  {
    states = Array.map (fun v -> v.inner) vertices;
    stats;
    virtual_supersteps;
    protocol_rounds;
    echo_rounds;
    suspected = Tbl.sorted_keys ~compare:Int.compare globally_suspected;
    quorum_failures;
    repairs_served;
    tolerance_exceeded;
  }
