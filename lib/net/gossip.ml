module Graph = Lbcc_graph.Graph
module Tbl = Lbcc_util.Tbl
module Prng = Lbcc_util.Prng

(* Epidemic dissemination over the unicast congested clique: eager push of
   freshly learned rumors to a few random targets per round, a digest of
   known origins riding every gram, and lazy pull of the rumors a digest
   proves the sender has and the receiver lacks.  Push spreads a rumor to
   most of the network in O(log n) rounds; pull closes the stragglers. *)

type 'msg gram = {
  digest : int list; (* origins the sender knows, ascending *)
  give : (int * 'msg) list; (* (origin, rumor) payloads, ascending *)
  want : int list; (* origins the sender asks this receiver for *)
}

type 'msg vertex = {
  id : int;
  known : (int, 'msg) Hashtbl.t; (* origin -> rumor *)
  mutable fresh : int list; (* learned last round, to push eagerly *)
  holders : (int, int) Hashtbl.t; (* wanted origin -> lowest known holder *)
  serve : (int, int list) Hashtbl.t; (* target -> origins to serve *)
  mutable idle : int;
  mutable pushes : int;
  mutable pulls : int;
}

type 'msg result = {
  known : (int * 'msg) list array;
  stats : Engine.stats;
  rumors : int;
  coverage : float;
  pushes : int;
  pulls : int;
}

let gram_bits ~n size_bits (g : _ gram) =
  let open Payload in
  let per_id = size [ Vertex_id n ] in
  (per_id * (List.length g.digest + List.length g.want))
  + List.fold_left (fun acc (_, m) -> acc + per_id + size_bits m) 0 g.give

(* Fanout targets for (seed, round, vertex): a fresh one-shot stream per
   coordinate triple, so the choice is independent of evaluation order. *)
let targets ~seed ~round ~vertex ~n ~fanout =
  let g =
    Prng.create
      (seed
      lxor (round * 0x9E3779B1)
      lxor ((vertex + 1) * 0x85EBCA77))
  in
  let rec pick acc k =
    if k = 0 then acc
    else
      let t = Prng.int g (n - 1) in
      (* Skew past self: uniform over the other n-1 vertices. *)
      let t = if t >= vertex then t + 1 else t in
      if List.mem t acc then pick acc k else pick (t :: acc) (k - 1)
  in
  if n <= 1 then [] else pick [] (Stdlib.min fanout (n - 1))

let log2_ceil n =
  let rec go acc k = if k <= 1 then acc else go (acc + 1) ((k + 1) / 2) in
  go 0 n

let spread ?accountant ?tracer ?(label = "gossip") ?(fanout = 2) ?(patience = 3)
    ?horizon ?(max_supersteps = 10_000) ?(on_timeout = `Truncate) ?(seed = 1)
    ?faults ~model ~graph ~size_bits ~rumors () =
  (match (model.Model.topology, model.Model.discipline) with
  | Model.Clique, Model.Unicast -> ()
  | _ ->
      invalid_arg "Gossip.spread: needs the unicast congested clique model");
  if fanout < 1 then invalid_arg "Gossip.spread: fanout must be >= 1";
  if patience < 1 then invalid_arg "Gossip.spread: patience must be >= 1";
  Lbcc_obs.Trace.span tracer label @@ fun () ->
  let n = Graph.n graph in
  (* No vertex retires before the epidemic has had time to find it: with
     fanout >= 1 the push phase needs O(log n) rounds, and a straggler is
     only safe to give up once it has sat through that window plus
     [patience] quiet rounds. *)
  let horizon =
    match horizon with Some h -> h | None -> patience + (3 * log2_ceil n)
  in
  let init v =
    let known = Hashtbl.create 8 in
    (match rumors v with
    | Some m -> Hashtbl.replace known v m
    | None -> ());
    {
      id = v;
      known;
      fresh = (if Hashtbl.mem known v then [ v ] else []);
      holders = Hashtbl.create 8;
      serve = Hashtbl.create 8;
      idle = 0;
      pushes = 0;
      pulls = 0;
    }
  in
  let learn (v : _ vertex) origin rumor =
    if not (Hashtbl.mem v.known origin) then begin
      Hashtbl.replace v.known origin rumor;
      Hashtbl.remove v.holders origin;
      v.fresh <- origin :: v.fresh;
      v.idle <- 0
    end
  in
  let ingest (v : _ vertex) (sender, g) =
    List.iter (fun (o, m) -> learn v o m) g.give;
    List.iter
      (fun o ->
        if not (Hashtbl.mem v.known o) then begin
          (match Hashtbl.find_opt v.holders o with
          | Some h when h <= sender -> ()
          | _ -> Hashtbl.replace v.holders o sender);
          v.idle <- 0
        end)
      g.digest;
    List.iter
      (fun o ->
        if Hashtbl.mem v.known o then begin
          let had =
            match Hashtbl.find_opt v.serve sender with Some l -> l | None -> []
          in
          if not (List.mem o had) then
            Hashtbl.replace v.serve sender (o :: had);
          v.idle <- 0
        end)
      g.want
  in
  let step ~round ~vertex:_ (v : _ vertex) inbox =
    List.iter (fun (s, g) -> ingest v (s, g)) inbox;
    let digest = Tbl.sorted_keys ~compare:Int.compare v.known in
    let outbox = Hashtbl.create 8 in
    let gram_to t =
      match Hashtbl.find_opt outbox t with
      | Some g -> g
      | None ->
          let g = ref { digest; give = []; want = [] } in
          Hashtbl.replace outbox t g;
          g
    in
    let active =
      v.fresh <> []
      || Hashtbl.length v.holders > 0
      || Hashtbl.length v.serve > 0
    in
    (* Anti-entropy: the digest goes to [fanout] seeded targets every
       round — that alone guarantees gaps are eventually discovered.
       Eager push piggybacks the fresh payloads on the same grams. *)
    let give =
      if v.fresh = [] then []
      else
        List.sort_uniq Int.compare v.fresh
        |> List.map (fun o -> (o, Hashtbl.find v.known o))
    in
    List.iter
      (fun t ->
        let g = gram_to t in
        g := { !g with give };
        v.pushes <- v.pushes + List.length give)
      (targets ~seed ~round ~vertex:v.id ~n ~fanout);
    (* Lazy pull: ask the lowest known holder of each missing origin. *)
    Tbl.sorted_bindings ~compare:Int.compare v.holders
    |> List.iter (fun (o, holder) ->
           let g = gram_to holder in
           g := { !g with want = o :: !g.want };
           v.pulls <- v.pulls + 1);
    (* Serve yesterday's pull requests. *)
    Tbl.sorted_bindings ~compare:Int.compare v.serve
    |> List.iter (fun (t, origins) ->
           let give =
             List.sort_uniq Int.compare origins
             |> List.filter_map (fun o ->
                    Option.map (fun m -> (o, m)) (Hashtbl.find_opt v.known o))
           in
           if give <> [] then begin
             let g = gram_to t in
             let merged =
               List.sort_uniq
                 (fun (a, _) (b, _) -> Int.compare a b)
                 (give @ !g.give)
             in
             g := { !g with give = merged }
           end);
    Hashtbl.reset v.serve;
    v.fresh <- [];
    let out =
      Tbl.sorted_bindings ~compare:Int.compare outbox
      |> List.map (fun (t, g) -> (t, !g))
    in
    v.idle <- (if active then 0 else v.idle + 1);
    (v, out, round < horizon || v.idle < patience)
  in
  let vertices, stats =
    Engine.run_unicast ?accountant ?faults ~label ~max_supersteps ~on_timeout
      ~model ~graph
      ~size_bits:(gram_bits ~n size_bits)
      ~init ~step ()
  in
  let total_rumors =
    let c = ref 0 in
    for v = 0 to n - 1 do
      if Option.is_some (rumors v) then incr c
    done;
    !c
  in
  let delivered =
    Array.fold_left
      (fun acc (v : _ vertex) -> acc + Hashtbl.length v.known)
      0 vertices
  in
  let coverage =
    if total_rumors = 0 then 1.0
    else float_of_int delivered /. float_of_int (n * total_rumors)
  in
  let pushes =
    Array.fold_left (fun acc (v : _ vertex) -> acc + v.pushes) 0 vertices
  in
  let pulls =
    Array.fold_left (fun acc (v : _ vertex) -> acc + v.pulls) 0 vertices
  in
  Lbcc_obs.Trace.add tracer ~rounds:stats.Engine.rounds
    ~bits:stats.Engine.total_bits ~supersteps:stats.Engine.supersteps
    ~messages:stats.Engine.messages_sent ();
  Lbcc_obs.Trace.set_attr tracer "coverage" (Lbcc_obs.Json.Float coverage);
  Lbcc_obs.Trace.set_attr tracer "pushes" (Lbcc_obs.Json.Int pushes);
  Lbcc_obs.Trace.set_attr tracer "pulls" (Lbcc_obs.Json.Int pulls);
  {
    known =
      Array.map
        (fun (v : _ vertex) -> Tbl.sorted_bindings ~compare:Int.compare v.known)
        vertices;
    stats;
    rumors = total_rumors;
    coverage;
    pushes;
    pulls;
  }
