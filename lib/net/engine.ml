module Graph = Lbcc_graph.Graph
module Pool = Lbcc_util.Pool

type 'msg inbox = (int * 'msg) list

type ('state, 'msg) step =
  round:int -> vertex:int -> 'state -> 'msg inbox -> 'state * 'msg option * bool

type stats = {
  supersteps : int;
  rounds : int;
  messages_sent : int;
  total_bits : int;
  converged : bool;
}

exception
  Timeout of { label : string; supersteps : int; rounds : int; phase : string }

type on_timeout = [ `Truncate | `Raise ]

(* ------------------------------------------------------------------ *)
(* Implementation selection                                            *)

type impl = Boxed | Flat

let impl_name = function Boxed -> "boxed" | Flat -> "flat"

let impl_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "boxed" | "legacy" -> Some Boxed
  | "flat" | "soa" -> Some Flat
  | _ -> None

(* The flat core is the default; LBCC_ENGINE=boxed is the one-release
   escape hatch back to the legacy implementation (the differential
   harness runs both and asserts bit-identity, so switching is a
   wall-clock knob only). *)
let initial_impl () =
  match Sys.getenv_opt "LBCC_ENGINE" with
  | None | Some "" -> Flat
  | Some s -> (
      match impl_of_string s with
      | Some i -> i
      | None ->
          Printf.eprintf
            "lbcc: ignoring unknown LBCC_ENGINE=%S (expected boxed or flat)\n%!"
            s;
          Flat)

let default_impl_ref = ref (initial_impl ())
let default_impl () = !default_impl_ref
let set_default_impl i = default_impl_ref := i

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

(* The accountant's open-phase path at the moment the cap fired; an engine
   without an accountant reports the bare label's own scope. *)
let phase_of accountant =
  match accountant with Some acc -> Rounds.phase_path acc | None -> ""

(* A fault plan that never fires costs nothing to consult, but skipping it
   entirely keeps the lossless path identical to the historical engine. *)
let active_faults = function
  | Some f when not (Fault.is_lossless f) -> Some f
  | _ -> None

let apply_crashes faults live ~round =
  match faults with
  | None -> ()
  | Some f ->
      Array.iteri
        (fun v alive ->
          if alive && Fault.crashed f ~vertex:v ~round then live.(v) <- false)
        live

let deliveries faults ~round ~src ~dst =
  match faults with
  | None -> 1
  | Some f -> Fault.copies f ~round ~src ~dst

let finish ~label ~on_timeout ~accountant ~live ~supersteps ~rounds
    ~messages_sent ~total_bits states =
  let converged = not (Array.exists Fun.id live) in
  if (not converged) && on_timeout = `Raise then
    raise (Timeout { label; supersteps; rounds; phase = phase_of accountant });
  ( states,
    { supersteps; rounds; messages_sent; total_bits; converged } )

(* Vertices are stepped in parallel chunks; a chunk touches only the state,
   outgoing slot and live flag of its own vertices, so any pool size (and
   any chunk schedule) computes the same result.  Keep the chunks coarse:
   a superstep of a small protocol is far cheaper than a dispatch. *)
let step_chunk n = Stdlib.max 16 ((n + 63) / 64)

(* Fault verdicts are replayed at send time, sender-major, in the same
   adjacency order as the historical delivery loop, so stateful budgets
   (adversarial drop quotas) burn in the identical query sequence.  Only
   non-default verdicts are stored, keyed (src, dst) as
   [(copies, tamper_salt)]; the next superstep's gather consumes them. *)
let record_overrides faults overrides ~round ~is_present ~replay_adj ~n =
  match faults with
  | None -> ()
  | Some f ->
      Hashtbl.reset overrides;
      let record ~src ~dst =
        let c = Fault.copies f ~round ~src ~dst in
        let salt = if c = 0 then None else Fault.tamper f ~round ~src ~dst in
        if c <> 1 || Option.is_some salt then
          Hashtbl.replace overrides (src, dst) (c, salt)
      in
      for v = 0 to n - 1 do
        if is_present v then
          match replay_adj with
          | None ->
              for u = 0 to n - 1 do
                if u <> v then record ~src:v ~dst:u
              done
          | Some adj -> Array.iter (fun u -> record ~src:v ~dst:u) adj.(v)
      done

(* The graph's own adjacency order, materialized only under an active fault
   plan (replay must consult deliveries in the historical order, which is
   not the sorted gather order). *)
let replay_adj_of ~model ~graph ~faults =
  match (model.Model.topology, faults) with
  | Model.Input_graph, Some _ ->
      Some
        (Array.init (Graph.n graph) (fun v ->
             Array.of_list (List.map fst (Graph.neighbors graph v))))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Legacy boxed implementation                                         *)

let run_boxed ?pool ?accountant ?tracer ?(label = "engine")
    ?(max_supersteps = 1_000_000) ?(on_timeout = `Truncate) ?faults
    ?(tamper = fun ~salt:_ msg -> msg) ~model ~graph ~size_bits ~init ~step () =
  (match model.Model.discipline with
  | Model.Broadcast -> ()
  | Model.Unicast -> invalid_arg "Engine.run: only broadcast disciplines are simulated");
  Lbcc_obs.Trace.span tracer label @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let faults = active_faults faults in
  let n = Graph.n graph in
  (* Clique receivers are implicit (no O(n^2) adjacency materialization);
     Input_graph keeps two int-array views: ascending sender order for the
     inbox gather, and the graph's own adjacency order for replaying the
     fault plan exactly as the historical delivery loop consulted it. *)
  let gather_adj =
    match model.Model.topology with
    | Model.Clique -> None
    | Model.Input_graph ->
        Some
          (Array.init n (fun v ->
               let a =
                 Array.of_list (List.map fst (Graph.neighbors graph v))
               in
               Array.sort Int.compare a;
               a))
  in
  let replay_adj = replay_adj_of ~model ~graph ~faults in
  let states = Array.init n init in
  let live = Array.make n true in
  (* Messages broadcast in superstep [s], consumed by the gather in [s+1].
     [overrides] holds the fault plan's verdicts for those messages. *)
  let prev_outgoing = ref (Array.make n None) in
  let overrides : (int * int, int * int option) Hashtbl.t =
    Hashtbl.create 16
  in
  let supersteps = ref 0 and rounds = ref 0 in
  let messages_sent = ref 0 and total_bits = ref 0 in
  let bandwidth = Model.bandwidth ~n in
  let chunk = step_chunk n in
  let any_live () = Array.exists Fun.id live in
  let copies_of ~src ~dst =
    if Option.is_none faults then (1, None)
    else
      match Hashtbl.find_opt overrides (src, dst) with
      | Some verdict -> verdict
      | None -> (1, None)
  in
  (* Consing while walking senders in descending order yields the inbox in
     ascending sender order with duplicated deliveries adjacent — exactly
     the [List.rev] of the historical push-delivery loop, which appended
     sender-by-sender with the outer loop ascending.  A tampered delivery
     is rewritten per receiver ([tamper] is pure, so applying it inside the
     parallel step phase is schedule-independent). *)
  let gather prev v =
    let inbox = ref [] in
    let take u =
      match prev.(u) with
      | None -> ()
      | Some msg ->
          let c, salt = copies_of ~src:u ~dst:v in
          if c > 0 then begin
            let msg =
              match salt with None -> msg | Some salt -> tamper ~salt msg
            in
            for _ = 1 to c do
              inbox := (u, msg) :: !inbox
            done
          end
    in
    (match gather_adj with
    | None ->
        for u = n - 1 downto 0 do
          if u <> v then take u
        done
    | Some adj ->
        let a = adj.(v) in
        for i = Array.length a - 1 downto 0 do
          take a.(i)
        done);
    !inbox
  in
  while any_live () && !supersteps < max_supersteps do
    incr supersteps;
    let round = !supersteps in
    apply_crashes faults live ~round;
    let outgoing = Array.make n None in
    let prev = !prev_outgoing in
    Pool.parallel_for pool ~chunk ~n (fun lo hi ->
        for v = lo to hi - 1 do
          if live.(v) then begin
            let inbox = gather prev v in
            let state', msg, continue = step ~round ~vertex:v states.(v) inbox in
            states.(v) <- state';
            outgoing.(v) <- msg;
            if not continue then live.(v) <- false
          end
        done);
    (* Charge: the superstep costs the largest message.  The broadcast is
       charged once per sender — a dropped delivery still occupied the
       sender's slot on the shared channel. *)
    let max_bits = ref 0 in
    for v = 0 to n - 1 do
      match outgoing.(v) with
      | None -> ()
      | Some msg ->
          let bits = size_bits msg in
          incr messages_sent;
          total_bits := !total_bits + bits;
          max_bits := Stdlib.max !max_bits bits
    done;
    record_overrides faults overrides ~round
      ~is_present:(fun v -> Option.is_some outgoing.(v))
      ~replay_adj ~n;
    prev_outgoing := outgoing;
    let cost = Stdlib.max 1 (Lbcc_util.Bits.ceil_div (Stdlib.max 1 !max_bits) bandwidth) in
    rounds := !rounds + cost;
    (match accountant with
    | Some acc -> Rounds.charge acc ~label ~bits:(Stdlib.max 1 !max_bits) ~rounds:cost
    | None -> ())
  done;
  Lbcc_obs.Trace.add tracer ~rounds:!rounds ~bits:!total_bits
    ~supersteps:!supersteps ~messages:!messages_sent ();
  finish ~label ~on_timeout ~accountant ~live ~supersteps:!supersteps
    ~rounds:!rounds ~messages_sent:!messages_sent ~total_bits:!total_bits
    states

(* ------------------------------------------------------------------ *)
(* Flat implementation                                                 *)

(* Double-buffered message slots, reused every superstep.  With a codec the
   payloads live packed in shared [Bytes] buffers (no per-message boxing in
   the store); without one they live in reusable ['msg option] arrays —
   still allocation-free at the store layer, the values themselves are
   whatever the protocol broadcasts. *)
type 'msg store = {
  s_mem : int -> bool;
  s_get : int -> 'msg;
  s_set : int -> 'msg -> unit;
  s_clear : unit -> unit; (* empty the current buffer *)
  s_swap : unit -> unit; (* current becomes previous *)
  s_mem_prev : int -> bool;
  s_get_prev : int -> 'msg;
}

let boxed_store n =
  let cur = ref (Array.make n None) and prev = ref (Array.make n None) in
  {
    s_mem = (fun v -> Option.is_some !cur.(v));
    s_get =
      (fun v ->
        match !cur.(v) with
        | Some m -> m
        | None -> invalid_arg "Engine: no message in current slot");
    s_set = (fun v m -> !cur.(v) <- Some m);
    s_clear = (fun () -> Array.fill !cur 0 n None);
    s_swap =
      (fun () ->
        let t = !prev in
        prev := !cur;
        cur := t);
    s_mem_prev = (fun v -> Option.is_some !prev.(v));
    s_get_prev =
      (fun v ->
        match !prev.(v) with
        | Some m -> m
        | None -> invalid_arg "Engine: no message in previous slot");
  }

let packed_store codec n =
  let cur = ref (Packed.buffer codec ~n) and prev = ref (Packed.buffer codec ~n) in
  {
    s_mem = (fun v -> Packed.mem !cur v);
    s_get = (fun v -> Packed.get !cur v);
    s_set = (fun v m -> Packed.set !cur v m);
    s_clear = (fun () -> Packed.clear !cur);
    s_swap =
      (fun () ->
        let t = !prev in
        prev := !cur;
        cur := t);
    s_mem_prev = (fun v -> Packed.mem !prev v);
    s_get_prev = (fun v -> Packed.get !prev v);
  }

let run_flat ?pool ?accountant ?tracer ?(label = "engine")
    ?(max_supersteps = 1_000_000) ?(on_timeout = `Truncate) ?faults
    ?(tamper = fun ~salt:_ msg -> msg) ?codec ~model ~graph ~size_bits ~init
    ~step () =
  (match model.Model.discipline with
  | Model.Broadcast -> ()
  | Model.Unicast -> invalid_arg "Engine.run: only broadcast disciplines are simulated");
  Lbcc_obs.Trace.span tracer label @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let faults = active_faults faults in
  let n = Graph.n graph in
  (* In-neighbor CSR by counting sort keyed (src, dst): segment order equals
     the boxed engine's sorted-adjacency gather, built without intermediate
     per-vertex lists.  Clique receivers stay implicit. *)
  let plan =
    match model.Model.topology with
    | Model.Clique -> None
    | Model.Input_graph -> Some (Packed.plan graph)
  in
  let replay_adj = replay_adj_of ~model ~graph ~faults in
  let states = Array.init n init in
  let live = Array.make n true in
  let store = match codec with Some c -> packed_store c n | None -> boxed_store n in
  let overrides : (int * int, int * int option) Hashtbl.t =
    Hashtbl.create 16
  in
  let supersteps = ref 0 and rounds = ref 0 in
  let messages_sent = ref 0 and total_bits = ref 0 in
  let bandwidth = Model.bandwidth ~n in
  let chunk = step_chunk n in
  let any_live () = Array.exists Fun.id live in
  let copies_of ~src ~dst =
    if Option.is_none faults then (1, None)
    else
      match Hashtbl.find_opt overrides (src, dst) with
      | Some verdict -> verdict
      | None -> (1, None)
  in
  (* Same descending cons as the boxed gather: ascending inbox, duplicated
     deliveries adjacent. *)
  let gather v =
    let inbox = ref [] in
    let take u =
      if store.s_mem_prev u then begin
        let c, salt = copies_of ~src:u ~dst:v in
        if c > 0 then begin
          let msg = store.s_get_prev u in
          let msg =
            match salt with None -> msg | Some salt -> tamper ~salt msg
          in
          for _ = 1 to c do
            inbox := (u, msg) :: !inbox
          done
        end
      end
    in
    (match plan with
    | None ->
        for u = n - 1 downto 0 do
          if u <> v then take u
        done
    | Some p ->
        let lo = p.Packed.off.(v) in
        for i = p.Packed.off.(v + 1) - 1 downto lo do
          take p.Packed.srcs.(i)
        done);
    !inbox
  in
  let round_ref = ref 0 in
  let body lo hi =
    let round = !round_ref in
    for v = lo to hi - 1 do
      if live.(v) then begin
        let inbox = gather v in
        let state', msg, continue = step ~round ~vertex:v states.(v) inbox in
        states.(v) <- state';
        (match msg with Some m -> store.s_set v m | None -> ());
        if not continue then live.(v) <- false
      end
    done
  in
  while any_live () && !supersteps < max_supersteps do
    incr supersteps;
    let round = !supersteps in
    round_ref := round;
    apply_crashes faults live ~round;
    store.s_clear ();
    Pool.parallel_for pool ~chunk ~n body;
    let max_bits = ref 0 in
    for v = 0 to n - 1 do
      if store.s_mem v then begin
        let bits = size_bits (store.s_get v) in
        incr messages_sent;
        total_bits := !total_bits + bits;
        max_bits := Stdlib.max !max_bits bits
      end
    done;
    record_overrides faults overrides ~round ~is_present:store.s_mem ~replay_adj
      ~n;
    store.s_swap ();
    let cost = Stdlib.max 1 (Lbcc_util.Bits.ceil_div (Stdlib.max 1 !max_bits) bandwidth) in
    rounds := !rounds + cost;
    (match accountant with
    | Some acc -> Rounds.charge acc ~label ~bits:(Stdlib.max 1 !max_bits) ~rounds:cost
    | None -> ())
  done;
  Lbcc_obs.Trace.add tracer ~rounds:!rounds ~bits:!total_bits
    ~supersteps:!supersteps ~messages:!messages_sent ();
  finish ~label ~on_timeout ~accountant ~live ~supersteps:!supersteps
    ~rounds:!rounds ~messages_sent:!messages_sent ~total_bits:!total_bits
    states

let run ?impl ?pool ?accountant ?tracer ?label ?max_supersteps ?on_timeout
    ?faults ?tamper ?codec ~model ~graph ~size_bits ~init ~step () =
  match (match impl with Some i -> i | None -> !default_impl_ref) with
  | Boxed ->
      run_boxed ?pool ?accountant ?tracer ?label ?max_supersteps ?on_timeout
        ?faults ?tamper ~model ~graph ~size_bits ~init ~step ()
  | Flat ->
      run_flat ?pool ?accountant ?tracer ?label ?max_supersteps ?on_timeout
        ?faults ?tamper ?codec ~model ~graph ~size_bits ~init ~step ()

(* ------------------------------------------------------------------ *)
(* Struct-of-arrays entry point                                        *)

type soa_inbox = {
  mutable count : int;
  senders : int array;
  payloads : int array;
}

type soa_out = { mutable send : bool; mutable value : int }

type soa_step = round:int -> vertex:int -> soa_inbox -> soa_out -> bool

let run_soa ?pool ?accountant ?tracer ?(label = "engine")
    ?(max_supersteps = 1_000_000) ?(on_timeout = `Truncate) ?faults
    ?(tamper = fun ~salt:_ msg -> msg) ~model ~graph ~size_bits ~step () =
  (match model.Model.discipline with
  | Model.Broadcast -> ()
  | Model.Unicast ->
      invalid_arg "Engine.run_soa: only broadcast disciplines are simulated");
  Lbcc_obs.Trace.span tracer label @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let faults = active_faults faults in
  let n = Graph.n graph in
  let plan =
    match model.Model.topology with
    | Model.Clique -> None
    | Model.Input_graph -> Some (Packed.plan graph)
  in
  let replay_adj = replay_adj_of ~model ~graph ~faults in
  let live = Array.make n true in
  (* Double-buffered flat payload slots + presence bytemaps. *)
  let pay_a = Array.make n 0 and pay_b = Array.make n 0 in
  let pres_a = Bytes.make n '\000' and pres_b = Bytes.make n '\000' in
  let cur_pay = ref pay_a and prev_pay = ref pay_b in
  let cur_pres = ref pres_a and prev_pres = ref pres_b in
  let overrides : (int * int, int * int option) Hashtbl.t =
    Hashtbl.create 16
  in
  let supersteps = ref 0 and rounds = ref 0 in
  let messages_sent = ref 0 and total_bits = ref 0 in
  let bandwidth = Model.bandwidth ~n in
  let chunk = step_chunk n in
  let nchunks = (n + chunk - 1) / chunk in
  (* Preallocated per-chunk scratch: an inbox view (capacity = duplicated
     worst case) and an out cell.  Chunk [lo/chunk] owns slot [lo/chunk] at
     every pool size, and the sequential fallback (one range [0, n)) maps
     to slot 0 — either way no two concurrent ranges share scratch. *)
  let cap =
    Stdlib.max 1
      (2
      * match plan with None -> Stdlib.max 0 (n - 1) | Some p -> Packed.max_in_degree p)
  in
  let scratch =
    Array.init (Stdlib.max 1 nchunks) (fun _ ->
        { count = 0; senders = Array.make cap 0; payloads = Array.make cap 0 })
  in
  let outs =
    Array.init (Stdlib.max 1 nchunks) (fun _ -> { send = false; value = 0 })
  in
  let any_live () = Array.exists Fun.id live in
  let copies_of ~src ~dst =
    if Option.is_none faults then (1, None)
    else
      match Hashtbl.find_opt overrides (src, dst) with
      | Some verdict -> verdict
      | None -> (1, None)
  in
  (* Ascending fill, duplicated deliveries adjacent: the same inbox order
     the list-based engines produce.  [take] is bound once here — defining
     it inside [gather_into] would allocate a closure per vertex per
     superstep, which is exactly what this path exists to avoid. *)
  let take ib v u =
    if Bytes.unsafe_get !prev_pres u <> '\000' then begin
      let c, salt = copies_of ~src:u ~dst:v in
      if c > 0 then begin
        let m = Array.unsafe_get !prev_pay u in
        let m = match salt with None -> m | Some salt -> tamper ~salt m in
        for _ = 1 to c do
          ib.senders.(ib.count) <- u;
          ib.payloads.(ib.count) <- m;
          ib.count <- ib.count + 1
        done
      end
    end
  in
  let gather_into ib v =
    ib.count <- 0;
    match plan with
    | None ->
        for u = 0 to n - 1 do
          if u <> v then take ib v u
        done
    | Some p ->
        for i = p.Packed.off.(v) to p.Packed.off.(v + 1) - 1 do
          take ib v p.Packed.srcs.(i)
        done
  in
  let round_ref = ref 0 in
  let is_present v = Bytes.get !cur_pres v <> '\000' in
  (* One closure for the whole run (and the bit-maximum cell hoisted too):
     at pool size 1 the superstep loop allocates nothing — the SCALE bench
     pins this with Gc.minor_words. *)
  let body lo hi =
    let ci = lo / chunk in
    let ib = scratch.(ci) and out = outs.(ci) in
    let round = !round_ref in
    for v = lo to hi - 1 do
      if live.(v) then begin
        gather_into ib v;
        out.send <- false;
        let continue = step ~round ~vertex:v ib out in
        if out.send then begin
          Array.unsafe_set !cur_pay v out.value;
          Bytes.unsafe_set !cur_pres v '\001'
        end;
        if not continue then live.(v) <- false
      end
    done
  in
  let max_bits = ref 0 in
  while any_live () && !supersteps < max_supersteps do
    incr supersteps;
    let round = !supersteps in
    round_ref := round;
    apply_crashes faults live ~round;
    Bytes.fill !cur_pres 0 n '\000';
    Pool.parallel_for pool ~chunk ~n body;
    max_bits := 0;
    for v = 0 to n - 1 do
      if Bytes.unsafe_get !cur_pres v <> '\000' then begin
        let bits = size_bits (Array.unsafe_get !cur_pay v) in
        incr messages_sent;
        total_bits := !total_bits + bits;
        max_bits := Stdlib.max !max_bits bits
      end
    done;
    record_overrides faults overrides ~round ~is_present ~replay_adj ~n;
    let tp = !prev_pay and ts = !prev_pres in
    prev_pay := !cur_pay;
    prev_pres := !cur_pres;
    cur_pay := tp;
    cur_pres := ts;
    let cost = Stdlib.max 1 (Lbcc_util.Bits.ceil_div (Stdlib.max 1 !max_bits) bandwidth) in
    rounds := !rounds + cost;
    (match accountant with
    | Some acc -> Rounds.charge acc ~label ~bits:(Stdlib.max 1 !max_bits) ~rounds:cost
    | None -> ())
  done;
  Lbcc_obs.Trace.add tracer ~rounds:!rounds ~bits:!total_bits
    ~supersteps:!supersteps ~messages:!messages_sent ();
  let converged = not (Array.exists Fun.id live) in
  if (not converged) && on_timeout = `Raise then
    raise
      (Timeout
         {
           label;
           supersteps = !supersteps;
           rounds = !rounds;
           phase = phase_of accountant;
         });
  {
    supersteps = !supersteps;
    rounds = !rounds;
    messages_sent = !messages_sent;
    total_bits = !total_bits;
    converged;
  }

(* ------------------------------------------------------------------ *)
(* Unicast engine                                                      *)

type ('state, 'msg) unicast_step =
  round:int ->
  vertex:int ->
  'state ->
  'msg inbox ->
  'state * (int * 'msg) list * bool

let run_unicast ?pool ?accountant ?tracer ?(label = "engine-unicast")
    ?(max_supersteps = 1_000_000) ?(on_timeout = `Truncate) ?faults
    ?(tamper = fun ~salt:_ msg -> msg) ~model ~graph ~size_bits ~init ~step () =
  (match model.Model.discipline with
  | Model.Unicast -> ()
  | Model.Broadcast ->
      invalid_arg "Engine.run_unicast: use run for broadcast disciplines");
  Lbcc_obs.Trace.span tracer label @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let faults = active_faults faults in
  let n = Graph.n graph in
  (* Clique membership is an index check; only Input_graph needs tables. *)
  let allowed_tbl =
    match model.Model.topology with
    | Model.Clique -> None
    | Model.Input_graph ->
        Some
          (Array.init n (fun v ->
               let tbl = Hashtbl.create 8 in
               List.iter
                 (fun (u, _) -> Hashtbl.replace tbl u ())
                 (Graph.neighbors graph v);
               tbl))
  in
  let allowed v u =
    match allowed_tbl with
    | None -> u <> v && u >= 0 && u < n
    | Some tbls -> Hashtbl.mem tbls.(v) u
  in
  let states = Array.init n init in
  let live = Array.make n true in
  let inboxes = Array.make n [] in
  let supersteps = ref 0 and rounds = ref 0 in
  let messages_sent = ref 0 and total_bits = ref 0 in
  let bandwidth = Model.bandwidth ~n in
  let chunk = step_chunk n in
  let any_live () = Array.exists Fun.id live in
  while any_live () && !supersteps < max_supersteps do
    incr supersteps;
    let round = !supersteps in
    apply_crashes faults live ~round;
    let outgoing = Array.make n [] in
    Pool.parallel_for pool ~chunk ~n (fun lo hi ->
        for v = lo to hi - 1 do
          if live.(v) then begin
            let inbox = List.rev inboxes.(v) in
            inboxes.(v) <- [];
            let state', msgs, continue = step ~round ~vertex:v states.(v) inbox in
            states.(v) <- state';
            let seen = Hashtbl.create 8 in
            List.iter
              (fun (u, _) ->
                if not (allowed v u) then
                  invalid_arg "Engine.run_unicast: message to a non-neighbor";
                if Hashtbl.mem seen u then
                  invalid_arg "Engine.run_unicast: two messages to one neighbor";
                Hashtbl.replace seen u ())
              msgs;
            outgoing.(v) <- msgs;
            if not continue then live.(v) <- false
          end
        done);
    (* Delivery stays sequential: per-edge messages land in receiver inboxes
       in ascending sender order, and the fault plan is consulted in the
       same sender-major sequence as ever. *)
    let max_bits = ref 0 in
    for v = 0 to n - 1 do
      List.iter
        (fun (u, msg) ->
          let bits = size_bits msg in
          incr messages_sent;
          total_bits := !total_bits + bits;
          max_bits := Stdlib.max !max_bits bits;
          let c = deliveries faults ~round ~src:v ~dst:u in
          if c > 0 then begin
            let msg =
              match faults with
              | None -> msg
              | Some f -> (
                  match Fault.tamper f ~round ~src:v ~dst:u with
                  | None -> msg
                  | Some salt -> tamper ~salt msg)
            in
            for _ = 1 to c do
              inboxes.(u) <- (v, msg) :: inboxes.(u)
            done
          end)
        outgoing.(v)
    done;
    let cost = Stdlib.max 1 (Lbcc_util.Bits.ceil_div (Stdlib.max 1 !max_bits) bandwidth) in
    rounds := !rounds + cost;
    (match accountant with
    | Some acc -> Rounds.charge acc ~label ~bits:(Stdlib.max 1 !max_bits) ~rounds:cost
    | None -> ())
  done;
  Lbcc_obs.Trace.add tracer ~rounds:!rounds ~bits:!total_bits
    ~supersteps:!supersteps ~messages:!messages_sent ();
  finish ~label ~on_timeout ~accountant ~live ~supersteps:!supersteps
    ~rounds:!rounds ~messages_sent:!messages_sent ~total_bits:!total_bits
    states
