module Graph = Lbcc_graph.Graph
module Pool = Lbcc_util.Pool

type 'msg inbox = (int * 'msg) list

type ('state, 'msg) step =
  round:int -> vertex:int -> 'state -> 'msg inbox -> 'state * 'msg option * bool

type stats = {
  supersteps : int;
  rounds : int;
  messages_sent : int;
  total_bits : int;
  converged : bool;
}

exception
  Timeout of { label : string; supersteps : int; rounds : int; phase : string }

type on_timeout = [ `Truncate | `Raise ]

(* The accountant's open-phase path at the moment the cap fired; an engine
   without an accountant reports the bare label's own scope. *)
let phase_of accountant =
  match accountant with Some acc -> Rounds.phase_path acc | None -> ""

(* A fault plan that never fires costs nothing to consult, but skipping it
   entirely keeps the lossless path identical to the historical engine. *)
let active_faults = function
  | Some f when not (Fault.is_lossless f) -> Some f
  | _ -> None

let apply_crashes faults live ~round =
  match faults with
  | None -> ()
  | Some f ->
      Array.iteri
        (fun v alive ->
          if alive && Fault.crashed f ~vertex:v ~round then live.(v) <- false)
        live

let deliveries faults ~round ~src ~dst =
  match faults with
  | None -> 1
  | Some f -> Fault.copies f ~round ~src ~dst

let finish ~label ~on_timeout ~accountant ~live ~supersteps ~rounds
    ~messages_sent ~total_bits states =
  let converged = not (Array.exists Fun.id live) in
  if (not converged) && on_timeout = `Raise then
    raise (Timeout { label; supersteps; rounds; phase = phase_of accountant });
  ( states,
    { supersteps; rounds; messages_sent; total_bits; converged } )

(* Vertices are stepped in parallel chunks; a chunk touches only the state,
   outgoing slot and live flag of its own vertices, so any pool size (and
   any chunk schedule) computes the same result.  Keep the chunks coarse:
   a superstep of a small protocol is far cheaper than a dispatch. *)
let step_chunk n = Stdlib.max 16 ((n + 63) / 64)

let run ?pool ?accountant ?tracer ?(label = "engine")
    ?(max_supersteps = 1_000_000) ?(on_timeout = `Truncate) ?faults
    ?(tamper = fun ~salt:_ msg -> msg) ~model ~graph ~size_bits ~init ~step () =
  (match model.Model.discipline with
  | Model.Broadcast -> ()
  | Model.Unicast -> invalid_arg "Engine.run: only broadcast disciplines are simulated");
  Lbcc_obs.Trace.span tracer label @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let faults = active_faults faults in
  let n = Graph.n graph in
  (* Clique receivers are implicit (no O(n^2) adjacency materialization);
     Input_graph keeps two int-array views: ascending sender order for the
     inbox gather, and the graph's own adjacency order for replaying the
     fault plan exactly as the historical delivery loop consulted it. *)
  let gather_adj, replay_adj =
    match model.Model.topology with
    | Model.Clique -> (None, None)
    | Model.Input_graph ->
        let original =
          Array.init n (fun v ->
              Array.of_list (List.map fst (Graph.neighbors graph v)))
        in
        let sorted =
          Array.map
            (fun a ->
              let s = Array.copy a in
              Array.sort Int.compare s;
              s)
            original
        in
        (Some sorted, if Option.is_none faults then None else Some original)
  in
  let states = Array.init n init in
  let live = Array.make n true in
  (* Messages broadcast in superstep [s], consumed by the gather in [s+1].
     [overrides] holds the fault plan's verdicts for those messages —
     only entries with a copy count <> 1 or a tamper salt — keyed
     (src, dst) as [(copies, tamper_salt)]. *)
  let prev_outgoing = ref (Array.make n None) in
  let overrides : (int * int, int * int option) Hashtbl.t =
    Hashtbl.create 16
  in
  let supersteps = ref 0 and rounds = ref 0 in
  let messages_sent = ref 0 and total_bits = ref 0 in
  let bandwidth = Model.bandwidth ~n in
  let chunk = step_chunk n in
  let any_live () = Array.exists Fun.id live in
  let copies_of ~src ~dst =
    if Option.is_none faults then (1, None)
    else
      match Hashtbl.find_opt overrides (src, dst) with
      | Some verdict -> verdict
      | None -> (1, None)
  in
  (* Consing while walking senders in descending order yields the inbox in
     ascending sender order with duplicated deliveries adjacent — exactly
     the [List.rev] of the historical push-delivery loop, which appended
     sender-by-sender with the outer loop ascending.  A tampered delivery
     is rewritten per receiver ([tamper] is pure, so applying it inside the
     parallel step phase is schedule-independent). *)
  let gather prev v =
    let inbox = ref [] in
    let take u =
      match prev.(u) with
      | None -> ()
      | Some msg ->
          let c, salt = copies_of ~src:u ~dst:v in
          if c > 0 then begin
            let msg =
              match salt with None -> msg | Some salt -> tamper ~salt msg
            in
            for _ = 1 to c do
              inbox := (u, msg) :: !inbox
            done
          end
    in
    (match gather_adj with
    | None ->
        for u = n - 1 downto 0 do
          if u <> v then take u
        done
    | Some adj ->
        let a = adj.(v) in
        for i = Array.length a - 1 downto 0 do
          take a.(i)
        done);
    !inbox
  in
  while any_live () && !supersteps < max_supersteps do
    incr supersteps;
    let round = !supersteps in
    apply_crashes faults live ~round;
    let outgoing = Array.make n None in
    let prev = !prev_outgoing in
    Pool.parallel_for pool ~chunk ~n (fun lo hi ->
        for v = lo to hi - 1 do
          if live.(v) then begin
            let inbox = gather prev v in
            let state', msg, continue = step ~round ~vertex:v states.(v) inbox in
            states.(v) <- state';
            outgoing.(v) <- msg;
            if not continue then live.(v) <- false
          end
        done);
    (* Charge: the superstep costs the largest message.  The broadcast is
       charged once per sender — a dropped delivery still occupied the
       sender's slot on the shared channel. *)
    let max_bits = ref 0 in
    for v = 0 to n - 1 do
      match outgoing.(v) with
      | None -> ()
      | Some msg ->
          let bits = size_bits msg in
          incr messages_sent;
          total_bits := !total_bits + bits;
          max_bits := Stdlib.max !max_bits bits
    done;
    (* Replay the fault plan at send time, sender-major in the adjacency
       order of the historical delivery loop, so stateful budgets
       (adversarial drop quotas) burn in the identical query sequence.
       The verdicts are consumed by the next superstep's gather. *)
    (match faults with
    | None -> ()
    | Some f ->
        Hashtbl.reset overrides;
        let record ~src ~dst =
          let c = Fault.copies f ~round ~src ~dst in
          let salt =
            if c = 0 then None else Fault.tamper f ~round ~src ~dst
          in
          if c <> 1 || Option.is_some salt then
            Hashtbl.replace overrides (src, dst) (c, salt)
        in
        for v = 0 to n - 1 do
          match outgoing.(v) with
          | None -> ()
          | Some _ -> (
              match replay_adj with
              | None ->
                  for u = 0 to n - 1 do
                    if u <> v then record ~src:v ~dst:u
                  done
              | Some adj -> Array.iter (fun u -> record ~src:v ~dst:u) adj.(v))
        done);
    prev_outgoing := outgoing;
    let cost = Stdlib.max 1 (Lbcc_util.Bits.ceil_div (Stdlib.max 1 !max_bits) bandwidth) in
    rounds := !rounds + cost;
    (match accountant with
    | Some acc -> Rounds.charge acc ~label ~bits:(Stdlib.max 1 !max_bits) ~rounds:cost
    | None -> ())
  done;
  Lbcc_obs.Trace.add tracer ~rounds:!rounds ~bits:!total_bits
    ~supersteps:!supersteps ~messages:!messages_sent ();
  finish ~label ~on_timeout ~accountant ~live ~supersteps:!supersteps
    ~rounds:!rounds ~messages_sent:!messages_sent ~total_bits:!total_bits
    states

type ('state, 'msg) unicast_step =
  round:int ->
  vertex:int ->
  'state ->
  'msg inbox ->
  'state * (int * 'msg) list * bool

let run_unicast ?pool ?accountant ?tracer ?(label = "engine-unicast")
    ?(max_supersteps = 1_000_000) ?(on_timeout = `Truncate) ?faults
    ?(tamper = fun ~salt:_ msg -> msg) ~model ~graph ~size_bits ~init ~step () =
  (match model.Model.discipline with
  | Model.Unicast -> ()
  | Model.Broadcast ->
      invalid_arg "Engine.run_unicast: use run for broadcast disciplines");
  Lbcc_obs.Trace.span tracer label @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let faults = active_faults faults in
  let n = Graph.n graph in
  (* Clique membership is an index check; only Input_graph needs tables. *)
  let allowed_tbl =
    match model.Model.topology with
    | Model.Clique -> None
    | Model.Input_graph ->
        Some
          (Array.init n (fun v ->
               let tbl = Hashtbl.create 8 in
               List.iter
                 (fun (u, _) -> Hashtbl.replace tbl u ())
                 (Graph.neighbors graph v);
               tbl))
  in
  let allowed v u =
    match allowed_tbl with
    | None -> u <> v && u >= 0 && u < n
    | Some tbls -> Hashtbl.mem tbls.(v) u
  in
  let states = Array.init n init in
  let live = Array.make n true in
  let inboxes = Array.make n [] in
  let supersteps = ref 0 and rounds = ref 0 in
  let messages_sent = ref 0 and total_bits = ref 0 in
  let bandwidth = Model.bandwidth ~n in
  let chunk = step_chunk n in
  let any_live () = Array.exists Fun.id live in
  while any_live () && !supersteps < max_supersteps do
    incr supersteps;
    let round = !supersteps in
    apply_crashes faults live ~round;
    let outgoing = Array.make n [] in
    Pool.parallel_for pool ~chunk ~n (fun lo hi ->
        for v = lo to hi - 1 do
          if live.(v) then begin
            let inbox = List.rev inboxes.(v) in
            inboxes.(v) <- [];
            let state', msgs, continue = step ~round ~vertex:v states.(v) inbox in
            states.(v) <- state';
            let seen = Hashtbl.create 8 in
            List.iter
              (fun (u, _) ->
                if not (allowed v u) then
                  invalid_arg "Engine.run_unicast: message to a non-neighbor";
                if Hashtbl.mem seen u then
                  invalid_arg "Engine.run_unicast: two messages to one neighbor";
                Hashtbl.replace seen u ())
              msgs;
            outgoing.(v) <- msgs;
            if not continue then live.(v) <- false
          end
        done);
    (* Delivery stays sequential: per-edge messages land in receiver inboxes
       in ascending sender order, and the fault plan is consulted in the
       same sender-major sequence as ever. *)
    let max_bits = ref 0 in
    for v = 0 to n - 1 do
      List.iter
        (fun (u, msg) ->
          let bits = size_bits msg in
          incr messages_sent;
          total_bits := !total_bits + bits;
          max_bits := Stdlib.max !max_bits bits;
          let c = deliveries faults ~round ~src:v ~dst:u in
          if c > 0 then begin
            let msg =
              match faults with
              | None -> msg
              | Some f -> (
                  match Fault.tamper f ~round ~src:v ~dst:u with
                  | None -> msg
                  | Some salt -> tamper ~salt msg)
            in
            for _ = 1 to c do
              inboxes.(u) <- (v, msg) :: inboxes.(u)
            done
          end)
        outgoing.(v)
    done;
    let cost = Stdlib.max 1 (Lbcc_util.Bits.ceil_div (Stdlib.max 1 !max_bits) bandwidth) in
    rounds := !rounds + cost;
    (match accountant with
    | Some acc -> Rounds.charge acc ~label ~bits:(Stdlib.max 1 !max_bits) ~rounds:cost
    | None -> ())
  done;
  Lbcc_obs.Trace.add tracer ~rounds:!rounds ~bits:!total_bits
    ~supersteps:!supersteps ~messages:!messages_sent ();
  finish ~label ~on_timeout ~accountant ~live ~supersteps:!supersteps
    ~rounds:!rounds ~messages_sent:!messages_sent ~total_bits:!total_bits
    states
