module Graph = Lbcc_graph.Graph

type 'msg inbox = (int * 'msg) list

type ('state, 'msg) step =
  round:int -> vertex:int -> 'state -> 'msg inbox -> 'state * 'msg option * bool

type stats = {
  supersteps : int;
  rounds : int;
  messages_sent : int;
  total_bits : int;
  converged : bool;
}

exception Timeout of { label : string; supersteps : int }

type on_timeout = [ `Truncate | `Raise ]

(* A fault plan that never fires costs nothing to consult, but skipping it
   entirely keeps the lossless path identical to the historical engine. *)
let active_faults = function
  | Some f when not (Fault.is_lossless f) -> Some f
  | _ -> None

let apply_crashes faults live ~round =
  match faults with
  | None -> ()
  | Some f ->
      Array.iteri
        (fun v alive ->
          if alive && Fault.crashed f ~vertex:v ~round then live.(v) <- false)
        live

let deliveries faults ~round ~src ~dst =
  match faults with
  | None -> 1
  | Some f -> Fault.copies f ~round ~src ~dst

let finish ~label ~on_timeout ~live ~supersteps ~rounds ~messages_sent
    ~total_bits states =
  let converged = not (Array.exists Fun.id live) in
  if (not converged) && on_timeout = `Raise then
    raise (Timeout { label; supersteps });
  ( states,
    { supersteps; rounds; messages_sent; total_bits; converged } )

let run ?accountant ?tracer ?(label = "engine") ?(max_supersteps = 1_000_000)
    ?(on_timeout = `Truncate) ?faults ~model ~graph ~size_bits ~init ~step () =
  (match model.Model.discipline with
  | Model.Broadcast -> ()
  | Model.Unicast -> invalid_arg "Engine.run: only broadcast disciplines are simulated");
  Lbcc_obs.Trace.span tracer label @@ fun () ->
  let faults = active_faults faults in
  let n = Graph.n graph in
  let neighbors =
    match model.Model.topology with
    | Model.Input_graph ->
        Array.init n (fun v -> List.map fst (Graph.neighbors graph v))
    | Model.Clique ->
        Array.init n (fun v -> List.filter (fun u -> u <> v) (List.init n Fun.id))
  in
  let states = Array.init n init in
  let live = Array.make n true in
  let inboxes = Array.make n [] in
  let supersteps = ref 0 and rounds = ref 0 in
  let messages_sent = ref 0 and total_bits = ref 0 in
  let bandwidth = Model.bandwidth ~n in
  let any_live () = Array.exists Fun.id live in
  while any_live () && !supersteps < max_supersteps do
    incr supersteps;
    apply_crashes faults live ~round:!supersteps;
    let outgoing = Array.make n None in
    for v = 0 to n - 1 do
      if live.(v) then begin
        let inbox = List.rev inboxes.(v) in
        inboxes.(v) <- [];
        let state', msg, continue = step ~round:!supersteps ~vertex:v states.(v) inbox in
        states.(v) <- state';
        outgoing.(v) <- msg;
        if not continue then live.(v) <- false
      end
    done;
    (* Deliver and charge: the superstep costs the largest message.  The
       broadcast is charged once per sender — a dropped delivery still
       occupied the sender's slot on the shared channel. *)
    let max_bits = ref 0 in
    for v = 0 to n - 1 do
      match outgoing.(v) with
      | None -> ()
      | Some msg ->
          let bits = size_bits msg in
          incr messages_sent;
          total_bits := !total_bits + bits;
          max_bits := Stdlib.max !max_bits bits;
          List.iter
            (fun u ->
              for _ = 1 to deliveries faults ~round:!supersteps ~src:v ~dst:u do
                inboxes.(u) <- (v, msg) :: inboxes.(u)
              done)
            neighbors.(v)
    done;
    let cost = Stdlib.max 1 (Lbcc_util.Bits.ceil_div (Stdlib.max 1 !max_bits) bandwidth) in
    rounds := !rounds + cost;
    (match accountant with
    | Some acc -> Rounds.charge acc ~label ~bits:(Stdlib.max 1 !max_bits) ~rounds:cost
    | None -> ())
  done;
  Lbcc_obs.Trace.add tracer ~rounds:!rounds ~bits:!total_bits
    ~supersteps:!supersteps ~messages:!messages_sent ();
  finish ~label ~on_timeout ~live ~supersteps:!supersteps ~rounds:!rounds
    ~messages_sent:!messages_sent ~total_bits:!total_bits states

type ('state, 'msg) unicast_step =
  round:int ->
  vertex:int ->
  'state ->
  'msg inbox ->
  'state * (int * 'msg) list * bool

let run_unicast ?accountant ?tracer ?(label = "engine-unicast")
    ?(max_supersteps = 1_000_000) ?(on_timeout = `Truncate) ?faults ~model
    ~graph ~size_bits ~init ~step () =
  (match model.Model.discipline with
  | Model.Unicast -> ()
  | Model.Broadcast ->
      invalid_arg "Engine.run_unicast: use run for broadcast disciplines");
  Lbcc_obs.Trace.span tracer label @@ fun () ->
  let faults = active_faults faults in
  let n = Graph.n graph in
  let allowed =
    match model.Model.topology with
    | Model.Input_graph ->
        Array.init n (fun v ->
            let tbl = Hashtbl.create 8 in
            List.iter (fun (u, _) -> Hashtbl.replace tbl u ()) (Graph.neighbors graph v);
            tbl)
    | Model.Clique ->
        Array.init n (fun v ->
            let tbl = Hashtbl.create n in
            for u = 0 to n - 1 do
              if u <> v then Hashtbl.replace tbl u ()
            done;
            tbl)
  in
  let states = Array.init n init in
  let live = Array.make n true in
  let inboxes = Array.make n [] in
  let supersteps = ref 0 and rounds = ref 0 in
  let messages_sent = ref 0 and total_bits = ref 0 in
  let bandwidth = Model.bandwidth ~n in
  let any_live () = Array.exists Fun.id live in
  while any_live () && !supersteps < max_supersteps do
    incr supersteps;
    apply_crashes faults live ~round:!supersteps;
    let outgoing = Array.make n [] in
    for v = 0 to n - 1 do
      if live.(v) then begin
        let inbox = List.rev inboxes.(v) in
        inboxes.(v) <- [];
        let state', msgs, continue = step ~round:!supersteps ~vertex:v states.(v) inbox in
        states.(v) <- state';
        let seen = Hashtbl.create 8 in
        List.iter
          (fun (u, _) ->
            if not (Hashtbl.mem allowed.(v) u) then
              invalid_arg "Engine.run_unicast: message to a non-neighbor";
            if Hashtbl.mem seen u then
              invalid_arg "Engine.run_unicast: two messages to one neighbor";
            Hashtbl.replace seen u ())
          msgs;
        outgoing.(v) <- msgs;
        if not continue then live.(v) <- false
      end
    done;
    let max_bits = ref 0 in
    for v = 0 to n - 1 do
      List.iter
        (fun (u, msg) ->
          let bits = size_bits msg in
          incr messages_sent;
          total_bits := !total_bits + bits;
          max_bits := Stdlib.max !max_bits bits;
          for _ = 1 to deliveries faults ~round:!supersteps ~src:v ~dst:u do
            inboxes.(u) <- (v, msg) :: inboxes.(u)
          done)
        outgoing.(v)
    done;
    let cost = Stdlib.max 1 (Lbcc_util.Bits.ceil_div (Stdlib.max 1 !max_bits) bandwidth) in
    rounds := !rounds + cost;
    (match accountant with
    | Some acc -> Rounds.charge acc ~label ~bits:(Stdlib.max 1 !max_bits) ~rounds:cost
    | None -> ())
  done;
  Lbcc_obs.Trace.add tracer ~rounds:!rounds ~bits:!total_bits
    ~supersteps:!supersteps ~messages:!messages_sent ();
  finish ~label ~on_timeout ~live ~supersteps:!supersteps ~rounds:!rounds
    ~messages_sent:!messages_sent ~total_bits:!total_bits states
