(** Generic synchronous broadcast engine.

    Runs a per-vertex step function in lockstep supersteps: in each superstep
    every live vertex reads its inbox (the broadcasts its in-neighbors made in
    the previous superstep), updates its local state, and optionally
    broadcasts one message.  The engine enforces the broadcast discipline
    (one outgoing message per vertex per superstep, delivered identically to
    all neighbors) and charges the accountant [ceil(max_bits/B)] rounds per
    superstep, recording the per-superstep maximum message bits alongside.
    With a [?tracer] the whole run executes inside a span named [label] that
    receives the run's rounds, aggregate sent bits, supersteps and message
    count.

    Delivery is lossless and crash-free unless a {!Fault.t} is supplied: then
    each (sender, receiver) delivery may be dropped or duplicated and
    vertices may crash-stop mid-run, all reproducibly from the fault seed.
    Termination is reported honestly: [stats.converged] says whether every
    vertex halted (or crashed) on its own, and [?on_timeout:`Raise] turns the
    superstep cap into a {!Timeout} instead of a silent truncation.

    The heavier algorithms of this repository (spanner, sparsifier) use
    bespoke superstep drivers for clarity; this engine backs the simple
    vertex programs (BFS baseline, leader election, aggregation) and the unit
    tests of the charging rules.

    {2 Parallel execution}

    The per-vertex step phase runs on a {!Lbcc_util.Pool} (the shared
    default pool unless [?pool] is given), chunked over vertex ranges.
    Results are bit-identical at every pool size: each vertex assembles its
    own inbox from the previous superstep's [outgoing] array in ascending
    sender order (reproducing the historical push-delivery order exactly),
    fault coins are flipped in a sequential phase that replays the
    historical sender-major query sequence, and a chunk writes only the
    state, message slot and live flag of its own vertices.  Step functions
    must therefore be pure per vertex — they may freely read shared
    immutable data but must not mutate state shared across vertices. *)

type 'msg inbox = (int * 'msg) list
(** [(sender, message)] pairs, ascending by sender.  Under a fault model a
    duplicated delivery appears as two adjacent pairs from the same sender. *)

type ('state, 'msg) step =
  round:int -> vertex:int -> 'state -> 'msg inbox -> 'state * 'msg option * bool
(** Returns the new state, an optional broadcast, and whether the vertex is
    still live.  A halted vertex neither sends nor steps again (its last
    state is kept); the run ends when all vertices halt or [max_supersteps]
    is reached. *)

type stats = {
  supersteps : int;
  rounds : int;
  messages_sent : int;
  total_bits : int;
  converged : bool;
      (** [true] iff every vertex halted or crashed before the superstep
          cap; [false] means the run was truncated with vertices still
          live — the states are partial. *)
}

exception
  Timeout of { label : string; supersteps : int; rounds : int; phase : string }
(** Raised instead of returning truncated state when [?on_timeout:`Raise]
    is selected and [max_supersteps] is exhausted.  [rounds] is the round
    count charged up to the cap and [phase] the accountant's open-phase
    path at that moment ([""] without an accountant or open phase), so a
    timeout pinpoints where in the pipeline the budget died. *)

type on_timeout = [ `Truncate | `Raise ]

val run :
  ?pool:Lbcc_util.Pool.t ->
  ?accountant:Rounds.t ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?label:string ->
  ?max_supersteps:int ->
  ?on_timeout:on_timeout ->
  ?faults:Fault.t ->
  ?tamper:(salt:int -> 'msg -> 'msg) ->
  model:Model.t ->
  graph:Lbcc_graph.Graph.t ->
  size_bits:('msg -> int) ->
  init:(int -> 'state) ->
  step:('state, 'msg) step ->
  unit ->
  'state array * stats
(** Runs the protocol over the communication topology selected by [model]
    ([Input_graph]: neighbors of [graph]; [Clique]: everyone).  Only
    broadcast disciplines are supported.  A crashed vertex stops stepping
    and sending from its crash superstep on; its last state is kept.

    [?tamper] gives the fault plan's corruption/equivocation verdicts
    (see {!Fault.tamper}) a concrete payload transform: when a delivery is
    tampered the receiver sees [tamper ~salt msg] instead of [msg].  It
    must be pure (it runs inside the parallel gather) and deterministic in
    [salt].  The default is the identity — a protocol that opts out of
    supplying a transform is immune to payload tampering, not silently
    corrupted.
    @raise Invalid_argument on a unicast model.
    @raise Timeout when the cap is hit under [?on_timeout:`Raise]. *)

type ('state, 'msg) unicast_step =
  round:int ->
  vertex:int ->
  'state ->
  'msg inbox ->
  'state * (int * 'msg) list * bool
(** Unicast variant: the vertex addresses each outgoing message to a
    specific neighbor (CONGEST / Congested Clique).  At most one message
    per neighbor per superstep. *)

val run_unicast :
  ?pool:Lbcc_util.Pool.t ->
  ?accountant:Rounds.t ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?label:string ->
  ?max_supersteps:int ->
  ?on_timeout:on_timeout ->
  ?faults:Fault.t ->
  ?tamper:(salt:int -> 'msg -> 'msg) ->
  model:Model.t ->
  graph:Lbcc_graph.Graph.t ->
  size_bits:('msg -> int) ->
  init:(int -> 'state) ->
  step:('state, 'msg) unicast_step ->
  unit ->
  'state array * stats
(** Per-edge messages; a superstep costs [ceil(max_bits/B)] rounds (every
    edge carries its message in parallel).
    @raise Invalid_argument on a broadcast model, a message addressed to a
    non-neighbor, or two messages to the same neighbor in one superstep.
    @raise Timeout when the cap is hit under [?on_timeout:`Raise]. *)
