(** Generic synchronous broadcast engine.

    Runs a per-vertex step function in lockstep supersteps: in each superstep
    every live vertex reads its inbox (the broadcasts its in-neighbors made in
    the previous superstep), updates its local state, and optionally
    broadcasts one message.  The engine enforces the broadcast discipline
    (one outgoing message per vertex per superstep, delivered identically to
    all neighbors) and charges the accountant [ceil(max_bits/B)] rounds per
    superstep, recording the per-superstep maximum message bits alongside.
    With a [?tracer] the whole run executes inside a span named [label] that
    receives the run's rounds, aggregate sent bits, supersteps and message
    count.

    Delivery is lossless and crash-free unless a {!Fault.t} is supplied: then
    each (sender, receiver) delivery may be dropped or duplicated and
    vertices may crash-stop mid-run, all reproducibly from the fault seed.
    Termination is reported honestly: [stats.converged] says whether every
    vertex halted (or crashed) on its own, and [?on_timeout:`Raise] turns the
    superstep cap into a {!Timeout} instead of a silent truncation.

    The heavier algorithms of this repository (spanner, sparsifier) use
    bespoke superstep drivers for clarity; this engine backs the simple
    vertex programs (BFS baseline, leader election, aggregation) and the unit
    tests of the charging rules.

    {2 Implementations}

    Two interchangeable cores back {!run} (DESIGN.md §10):

    - {!Flat} (the default): reusable double-buffered message slots — packed
      [Bytes] buffers when a {!Packed.codec} is supplied, ['msg option]
      arrays otherwise — and a counting-sort CSR delivery plan instead of
      per-vertex adjacency lists.  The steady-state message path allocates
      only the inbox lists handed to the step function.
    - {!Boxed}: the legacy implementation, kept verbatim as the differential
      baseline.

    Both produce bit-identical states, stats and accountant fingerprints for
    every protocol and fault tier ([test/test_engine_diff.ml] pins this);
    the choice is a wall-clock knob.  The initial default comes from the
    [LBCC_ENGINE] environment variable ([boxed] / [flat], default [flat]);
    {!set_default_impl} overrides it at runtime (the CLI's [--engine] flag).

    Protocols with [int] payloads that want a fully allocation-free hot
    path use {!run_soa}, which trades the polymorphic state/inbox types for
    flat arrays and preallocated scratch (see {!Vstate} for state columns).

    {2 Parallel execution}

    The per-vertex step phase runs on a {!Lbcc_util.Pool} (the shared
    default pool unless [?pool] is given), chunked over vertex ranges.
    Results are bit-identical at every pool size: each vertex assembles its
    own inbox from the previous superstep's message slots in ascending
    sender order (reproducing the historical push-delivery order exactly),
    fault coins are flipped in a sequential phase that replays the
    historical sender-major query sequence, and a chunk writes only the
    state, message slot and live flag of its own vertices.  Step functions
    must therefore be pure per vertex — they may freely read shared
    immutable data but must not mutate state shared across vertices. *)

type 'msg inbox = (int * 'msg) list
(** [(sender, message)] pairs, ascending by sender.  Under a fault model a
    duplicated delivery appears as two adjacent pairs from the same sender. *)

type ('state, 'msg) step =
  round:int -> vertex:int -> 'state -> 'msg inbox -> 'state * 'msg option * bool
(** Returns the new state, an optional broadcast, and whether the vertex is
    still live.  A halted vertex neither sends nor steps again (its last
    state is kept); the run ends when all vertices halt or [max_supersteps]
    is reached. *)

type stats = {
  supersteps : int;
  rounds : int;
  messages_sent : int;
  total_bits : int;
  converged : bool;
      (** [true] iff every vertex halted or crashed before the superstep
          cap; [false] means the run was truncated with vertices still
          live — the states are partial. *)
}

exception
  Timeout of { label : string; supersteps : int; rounds : int; phase : string }
(** Raised instead of returning truncated state when [?on_timeout:`Raise]
    is selected and [max_supersteps] is exhausted.  [rounds] is the round
    count charged up to the cap and [phase] the accountant's open-phase
    path at that moment ([""] without an accountant or open phase), so a
    timeout pinpoints where in the pipeline the budget died. *)

type on_timeout = [ `Truncate | `Raise ]

(** {2 Implementation selection} *)

type impl = Boxed | Flat

val impl_name : impl -> string
(** ["boxed"] / ["flat"]. *)

val impl_of_string : string -> impl option
(** Case-insensitive; accepts ["boxed"] / ["legacy"] and ["flat"] / ["soa"]. *)

val default_impl : unit -> impl
(** The implementation {!run} uses when [?impl] is omitted.  Initially from
    [LBCC_ENGINE] (an unknown value warns on stderr and falls back to
    {!Flat}). *)

val set_default_impl : impl -> unit

val run :
  ?impl:impl ->
  ?pool:Lbcc_util.Pool.t ->
  ?accountant:Rounds.t ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?label:string ->
  ?max_supersteps:int ->
  ?on_timeout:on_timeout ->
  ?faults:Fault.t ->
  ?tamper:(salt:int -> 'msg -> 'msg) ->
  ?codec:'msg Packed.codec ->
  model:Model.t ->
  graph:Lbcc_graph.Graph.t ->
  size_bits:('msg -> int) ->
  init:(int -> 'state) ->
  step:('state, 'msg) step ->
  unit ->
  'state array * stats
(** Runs the protocol over the communication topology selected by [model]
    ([Input_graph]: neighbors of [graph]; [Clique]: everyone).  Only
    broadcast disciplines are supported.  A crashed vertex stops stepping
    and sending from its crash superstep on; its last state is kept.

    [?impl] selects the engine core (default {!default_impl}).  [?codec]
    lets the {!Flat} core keep in-flight payloads packed in shared [Bytes]
    buffers instead of boxed per sender; it must be lossless on every
    payload the protocol broadcasts, and is ignored by {!Boxed}.

    [?tamper] gives the fault plan's corruption/equivocation verdicts
    (see {!Fault.tamper}) a concrete payload transform: when a delivery is
    tampered the receiver sees [tamper ~salt msg] instead of [msg].  It
    must be pure (it runs inside the parallel gather) and deterministic in
    [salt].  The default is the identity — a protocol that opts out of
    supplying a transform is immune to payload tampering, not silently
    corrupted.
    @raise Invalid_argument on a unicast model.
    @raise Timeout when the cap is hit under [?on_timeout:`Raise]. *)

(** {2 Struct-of-arrays entry point} *)

type soa_inbox = {
  mutable count : int;  (** live prefix length of the two arrays below *)
  senders : int array;
  payloads : int array;
}
(** A reused inbox view: entries [0 .. count-1] are valid, ascending by
    sender, duplicated deliveries adjacent — the same order as {!inbox}.
    The arrays belong to the engine's per-chunk scratch: read them inside
    the step call only, never retain them. *)

type soa_out = { mutable send : bool; mutable value : int }
(** The vertex's broadcast slot for this superstep.  [send] is reset to
    [false] before every step call; set it to [true] (with [value] filled)
    to broadcast. *)

type soa_step = round:int -> vertex:int -> soa_inbox -> soa_out -> bool
(** Returns whether the vertex is still live.  Per-vertex state lives
    outside the engine in flat columns (see {!Vstate}); the same sharing
    discipline as {!step} applies — a vertex writes only its own columns'
    slots. *)

val run_soa :
  ?pool:Lbcc_util.Pool.t ->
  ?accountant:Rounds.t ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?label:string ->
  ?max_supersteps:int ->
  ?on_timeout:on_timeout ->
  ?faults:Fault.t ->
  ?tamper:(salt:int -> int -> int) ->
  model:Model.t ->
  graph:Lbcc_graph.Graph.t ->
  size_bits:(int -> int) ->
  step:soa_step ->
  unit ->
  stats
(** The allocation-free core for [int]-payload protocols: message slots are
    double-buffered flat arrays, inboxes are filled into preallocated
    per-chunk scratch, and the step loop body is one closure hoisted out of
    the superstep loop — at pool size 1 a superstep allocates nothing
    (the SCALE bench pins [Gc.minor_words] on this path).  Semantics
    (delivery order, fault replay, charging, timeout) are identical to
    {!run}; the differential harness compares it against the boxed engine
    on the BFS protocol across fault tiers. *)

type ('state, 'msg) unicast_step =
  round:int ->
  vertex:int ->
  'state ->
  'msg inbox ->
  'state * (int * 'msg) list * bool
(** Unicast variant: the vertex addresses each outgoing message to a
    specific neighbor (CONGEST / Congested Clique).  At most one message
    per neighbor per superstep. *)

val run_unicast :
  ?pool:Lbcc_util.Pool.t ->
  ?accountant:Rounds.t ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?label:string ->
  ?max_supersteps:int ->
  ?on_timeout:on_timeout ->
  ?faults:Fault.t ->
  ?tamper:(salt:int -> 'msg -> 'msg) ->
  model:Model.t ->
  graph:Lbcc_graph.Graph.t ->
  size_bits:('msg -> int) ->
  init:(int -> 'state) ->
  step:('state, 'msg) unicast_step ->
  unit ->
  'state array * stats
(** Per-edge messages; a superstep costs [ceil(max_bits/B)] rounds (every
    edge carries its message in parallel).
    @raise Invalid_argument on a broadcast model, a message addressed to a
    non-neighbor, or two messages to the same neighbor in one superstep.
    @raise Timeout when the cap is hit under [?on_timeout:`Raise]. *)
