(* Struct-of-arrays vertex state: named unboxed columns over a fixed vertex
   count.  A protocol on the flat engine keeps its per-vertex state here —
   one [int array] / [Float.Array.t] / [Bytes.t] per field instead of one
   record per vertex — fetches each column once at setup, and indexes flat
   arrays inside the step loop.  Column lookup is by name through a
   hashtable, which is fine: it happens at program-construction time, never
   on the hot path (and nothing ever iterates the table, so bucket order
   cannot leak into results). *)

type column =
  | Ints of int array
  | Floats of Float.Array.t
  | Chars of Bytes.t

type t = {
  n : int;
  columns : (string, column) Hashtbl.t;
}

let create ~n =
  if n < 0 then invalid_arg "Vstate.create: negative vertex count";
  { n; columns = Hashtbl.create 8 }

let n t = t.n

let mismatch name kind =
  invalid_arg
    (Printf.sprintf "Vstate: column %S already exists with a non-%s type" name
       kind)

let ints ?(init = 0) t name =
  match Hashtbl.find_opt t.columns name with
  | Some (Ints a) -> a
  | Some _ -> mismatch name "int"
  | None ->
      let a = Array.make t.n init in
      Hashtbl.add t.columns name (Ints a);
      a

let floats ?(init = 0.0) t name =
  match Hashtbl.find_opt t.columns name with
  | Some (Floats a) -> a
  | Some _ -> mismatch name "float"
  | None ->
      let a = Float.Array.make t.n init in
      Hashtbl.add t.columns name (Floats a);
      a

let bytes ?(init = '\000') t name =
  match Hashtbl.find_opt t.columns name with
  | Some (Chars b) -> b
  | Some _ -> mismatch name "byte"
  | None ->
      let b = Bytes.make t.n init in
      Hashtbl.add t.columns name (Chars b);
      b

let mem t name = Hashtbl.mem t.columns name
