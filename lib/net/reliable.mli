(** Reliable broadcast over a lossy engine.

    [run] wraps any broadcast vertex program (an {!Engine.step}) in an
    ack/retransmit protocol and executes it over an engine with faults
    injected, delivering the inner protocol {b exactly-once, in-order}
    semantics: the sequence of virtual supersteps the inner program
    observes is identical to what the lossless engine would have fed it,
    so (absent crashes) the wrapped run computes the same states as
    {!Engine.run} without faults.

    Mechanics: each vertex stamps its inner broadcast (possibly the
    explicit "no message" marker) with a virtual round number and
    retransmits it every real superstep, piggybacking cumulative acks —
    the set of senders whose current-round payload it has received.  A
    vertex advances to virtual round [k+1] only when it holds round-[k]
    payloads from all relevant neighbors and all of them have acknowledged
    its own round-[k] broadcast; duplicated deliveries are filtered by the
    round stamp.  The ack barrier bounds the round skew between neighbors
    by one, so a single look-ahead buffer suffices.

    Crash tolerance: a neighbor not heard from for [patience] consecutive
    real supersteps is suspected and dropped from every barrier, after
    which the inner program simply stops hearing from it — exactly how the
    honest engine presents a halted vertex.  With drop probability [p],
    a live vertex is falsely suspected with probability [p^patience] per
    wait, so the default [patience] keeps recovery correct w.h.p.

    Cost accounting: the real execution is charged to the accountant under
    two labels — [label] receives one charge per completed virtual
    superstep (what the lossless protocol pays), and [label ^ "/retransmit"]
    receives the remainder: retransmissions, ack piggybacking, and
    round-stamp overhead.  The aggregate bits the real execution broadcast
    are recorded under the protocol label (the per-superstep maxima are not
    recoverable after the fact).  With a [?tracer] the run executes inside
    a span named [label] carrying the real execution's counters plus
    [virtual_supersteps], [protocol_rounds], [retransmit_rounds] and
    [suspected] attributes; the tracer is {e not} passed to the inner
    engine, so the span's counters are not double-counted. *)

module Graph = Lbcc_graph.Graph

type 'state result = {
  states : 'state array;  (** final inner states *)
  stats : Engine.stats;  (** real execution statistics *)
  virtual_supersteps : int;
      (** inner supersteps completed (what the lossless run counts) *)
  protocol_rounds : int;  (** rounds charged under [label] *)
  retransmit_rounds : int;
      (** rounds charged under [label ^ "/retransmit"] *)
  suspected : int list;  (** vertices suspected crashed by some neighbor *)
}

val retransmit_label : string -> string
(** The accountant label overhead is charged under. *)

val run :
  ?accountant:Rounds.t ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?label:string ->
  ?max_supersteps:int ->
  ?on_timeout:Engine.on_timeout ->
  ?patience:int ->
  ?faults:Fault.t ->
  model:Model.t ->
  graph:Graph.t ->
  size_bits:('msg -> int) ->
  init:(int -> 'state) ->
  step:('state, 'msg) Engine.step ->
  unit ->
  'state result
(** [patience] defaults to 30 real supersteps; [max_supersteps] (the cap on
    {b real} supersteps) defaults to 100_000.
    @raise Invalid_argument on a unicast model.
    @raise Engine.Timeout under [?on_timeout:`Raise] when the cap is hit. *)
