(** Fixed-width payload codecs, packed message buffers and the
    counting-sort delivery plan of the flat engine core (DESIGN.md §10).

    A codec encodes one protocol message into a fixed-width slot of a
    shared [Bytes] buffer.  The flat engine keeps two such buffers (the
    broadcasts of the previous and the current superstep) and reuses them
    every round, so the steady-state message path allocates nothing.
    Encoding must be lossless: the differential harness and the QCheck
    round-trip properties compare decoded payloads bit for bit. *)

type 'msg codec = {
  width : int;  (** bytes per encoded message; slots are [width] apart *)
  encode : Bytes.t -> int -> 'msg -> unit;
      (** [encode buf off msg] writes exactly [width] bytes at [off]. *)
  decode : Bytes.t -> int -> 'msg;
}

val int_codec : int codec
(** Full 63-bit OCaml ints, 8 bytes, little-endian. *)

val float_codec : float codec
(** IEEE-754 bit pattern, 8 bytes: the round trip is the identity on every
    float, including NaNs and [-0.]. *)

(** {2 Per-round message buffers} *)

type 'msg buffer
(** [n] fixed-width slots plus a presence bytemap.  Distinct slots may be
    written from concurrent pool chunks; the buffer itself carries no
    locks. *)

val buffer : 'msg codec -> n:int -> 'msg buffer
val length : _ buffer -> int

val clear : _ buffer -> unit
(** Empties the buffer by clearing the presence map only — stale payload
    bytes remain in the data buffer but can never be read back, because
    {!get} is gated on {!mem}. *)

val set : 'msg buffer -> int -> 'msg -> unit
val mem : _ buffer -> int -> bool

val get : 'msg buffer -> int -> 'msg
(** @raise Invalid_argument if slot [v] holds no message. *)

(** {2 Counting-sort delivery plan} *)

type plan = { off : int array; srcs : int array }
(** Receiver-major CSR over the directed delivery pairs [(src, dst)] of an
    undirected graph: vertex [v] hears senders
    [srcs.(off.(v)) .. srcs.(off.(v+1)-1)], ascending, parallel edges
    adjacent. *)

val plan : Lbcc_graph.Graph.t -> plan
(** Two counting passes over the edge array — O(n + m), no intermediate
    per-vertex lists, no comparison sort.  The segment order reproduces the
    boxed engine's sorted-adjacency gather exactly, which is what lets the
    flat engine fingerprint identically on [Input_graph] topologies. *)

val in_degree : plan -> int -> int
val max_in_degree : plan -> int
