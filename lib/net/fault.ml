open Lbcc_util

type spec = {
  drop_prob : float;
  duplicate_prob : float;
  crashes : (int * int) list;
  adversarial_drops : int;
  corrupt_prob : float;
  byzantine : int list;
  byz_prob : float;
}

let spec ?(drop_prob = 0.0) ?(duplicate_prob = 0.0) ?(crashes = [])
    ?(adversarial_drops = 0) ?(corrupt_prob = 0.0) ?(byzantine = [])
    ?(byz_prob = 0.0) () =
  {
    drop_prob;
    duplicate_prob;
    crashes;
    adversarial_drops;
    corrupt_prob;
    byzantine;
    byz_prob;
  }

type t = {
  sd : int;
  drop_prob : float;
  duplicate_prob : float;
  crash_at : (int, int) Hashtbl.t; (* vertex -> earliest crash superstep *)
  drop_salt : int;
  dup_salt : int;
  mutable adversarial_left : int;
  adversarial_budget : int;
  mutable dropped : int;
  mutable duplicated : int;
  corrupt_prob : float;
  byz_prob : float;
  byz : (int, unit) Hashtbl.t; (* Byzantine vertex set *)
  corrupt_salt : int;
  byz_salt : int;
  byz_drop_salt : int;
  mutable corrupted : int;
  mutable equivocated : int;
}

let check_prob name p =
  if not (p >= 0.0 && p < 1.0) then
    invalid_arg (Printf.sprintf "Fault.create: %s must be in [0, 1)" name)

let create ?(seed = 1) (s : spec) =
  check_prob "drop_prob" s.drop_prob;
  check_prob "duplicate_prob" s.duplicate_prob;
  check_prob "corrupt_prob" s.corrupt_prob;
  check_prob "byz_prob" s.byz_prob;
  if s.adversarial_drops < 0 then
    invalid_arg "Fault.create: adversarial_drops must be >= 0";
  let crash_at = Hashtbl.create 8 in
  List.iter
    (fun (v, r) ->
      if r < 1 then invalid_arg "Fault.create: crash superstep must be >= 1";
      match Hashtbl.find_opt crash_at v with
      | Some r' when r' <= r -> ()
      | _ -> Hashtbl.replace crash_at v r)
    s.crashes;
  let byz = Hashtbl.create 8 in
  List.iter
    (fun v ->
      if v < 0 then invalid_arg "Fault.create: byzantine vertex must be >= 0";
      Hashtbl.replace byz v ())
    s.byzantine;
  (* Independent per-purpose key material from the one seed: each salt is a
     whole split stream collapsed to its first output.  New salts draw
     after the historical two, so pre-Byzantine schedules are unchanged. *)
  let g = Prng.create seed in
  let salt () = Int64.to_int (Prng.next_int64 (Prng.split g)) land max_int in
  let drop_salt = salt () in
  let dup_salt = salt () in
  let corrupt_salt = salt () in
  let byz_salt = salt () in
  let byz_drop_salt = salt () in
  {
    sd = seed;
    drop_prob = s.drop_prob;
    duplicate_prob = s.duplicate_prob;
    crash_at;
    drop_salt;
    dup_salt;
    adversarial_left = s.adversarial_drops;
    adversarial_budget = s.adversarial_drops;
    dropped = 0;
    duplicated = 0;
    corrupt_prob = s.corrupt_prob;
    byz_prob = s.byz_prob;
    byz;
    corrupt_salt;
    byz_salt;
    byz_drop_salt;
    corrupted = 0;
    equivocated = 0;
  }

let lossless () = create ~seed:0 (spec ())

let is_lossless t =
  Float.equal t.drop_prob 0.0
  && Float.equal t.duplicate_prob 0.0
  && Hashtbl.length t.crash_at = 0
  && t.adversarial_budget = 0
  && Float.equal t.corrupt_prob 0.0
  && (Hashtbl.length t.byz = 0 || Float.equal t.byz_prob 0.0)

let crashed t ~vertex ~round =
  match Hashtbl.find_opt t.crash_at vertex with
  | Some r -> round >= r
  | None -> false

let is_byzantine t v = Hashtbl.mem t.byz v
let byzantine_count t = Hashtbl.length t.byz
let max_tolerated ~n = (n - 1) / 3

(* A decision is a pure function of (salt, round, src, dst): hash the
   coordinates into a fresh SplitMix stream and take its first float.  Query
   order therefore cannot perturb the schedule. *)
let key salt ~round ~src ~dst =
  salt
  lxor (round * 0x9E3779B1)
  lxor (src * 0x85EBCA77)
  lxor (dst * 0xC2B2AE3D)

let coin salt ~round ~src ~dst ~p =
  p > 0.0 && Prng.float (Prng.create (key salt ~round ~src ~dst)) < p

(* Coin and per-delivery key material from one stream: the first draw is
   the decision, the second is the tamper salt handed to the caller. *)
let coin_with_salt salt ~round ~src ~dst ~p =
  if p <= 0.0 then None
  else begin
    let g = Prng.create (key salt ~round ~src ~dst) in
    if Prng.float g < p then
      Some (Int64.to_int (Prng.next_int64 g) land max_int)
    else None
  end

let copies t ~round ~src ~dst =
  if coin t.drop_salt ~round ~src ~dst ~p:t.drop_prob then begin
    t.dropped <- t.dropped + 1;
    0
  end
  else if
    (* Silent-drop adversary.  With a Byzantine vertex set the budget is
       targeted: only deliveries from Byzantine senders are destroyed, and
       only when the (deterministic) silent-drop coin fires.  Without one,
       the historical worst-case behavior stands: the first
       [adversarial_drops] surviving deliveries die in engine order. *)
    t.adversarial_left > 0
    && (Hashtbl.length t.byz = 0
       || (is_byzantine t src
          && coin t.byz_drop_salt ~round ~src ~dst ~p:t.byz_prob))
  then begin
    t.adversarial_left <- t.adversarial_left - 1;
    t.dropped <- t.dropped + 1;
    0
  end
  else if coin t.dup_salt ~round ~src ~dst ~p:t.duplicate_prob then begin
    t.duplicated <- t.duplicated + 1;
    2
  end
  else 1

let tamper t ~round ~src ~dst =
  match coin_with_salt t.corrupt_salt ~round ~src ~dst ~p:t.corrupt_prob with
  | Some salt ->
      t.corrupted <- t.corrupted + 1;
      Some salt
  | None ->
      if is_byzantine t src then
        match coin_with_salt t.byz_salt ~round ~src ~dst ~p:t.byz_prob with
        | Some salt ->
            (* Keyed on (round, src, dst): two receivers of the same
               broadcast draw different salts, so a tampering Byzantine
               sender equivocates by construction. *)
            t.equivocated <- t.equivocated + 1;
            Some salt
        | None -> None
      else None

let tampers t =
  (not (Float.equal t.corrupt_prob 0.0))
  || (Hashtbl.length t.byz > 0 && not (Float.equal t.byz_prob 0.0))

let equivocates t =
  Hashtbl.length t.byz > 0 && not (Float.equal t.byz_prob 0.0)

let drops t = t.dropped
let duplicates t = t.duplicated
let adversarial_spent t = t.adversarial_budget - t.adversarial_left
let corruptions t = t.corrupted
let equivocations t = t.equivocated
let seed t = t.sd

let pp ppf t =
  Format.fprintf ppf
    "@[<h>faults seed=%d drop=%.3f dup=%.3f crashes=%d adversary=%d/%d \
     corrupt=%.3f byz=%d@%.3f (dropped=%d duplicated=%d corrupted=%d \
     equivocated=%d)@]"
    t.sd t.drop_prob t.duplicate_prob
    (Hashtbl.length t.crash_at)
    (adversarial_spent t) t.adversarial_budget t.corrupt_prob
    (Hashtbl.length t.byz) t.byz_prob t.dropped t.duplicated t.corrupted
    t.equivocated
