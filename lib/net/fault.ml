open Lbcc_util

type spec = {
  drop_prob : float;
  duplicate_prob : float;
  crashes : (int * int) list;
  adversarial_drops : int;
}

let spec ?(drop_prob = 0.0) ?(duplicate_prob = 0.0) ?(crashes = [])
    ?(adversarial_drops = 0) () =
  { drop_prob; duplicate_prob; crashes; adversarial_drops }

type t = {
  sd : int;
  drop_prob : float;
  duplicate_prob : float;
  crash_at : (int, int) Hashtbl.t; (* vertex -> earliest crash superstep *)
  drop_salt : int;
  dup_salt : int;
  mutable adversarial_left : int;
  adversarial_budget : int;
  mutable dropped : int;
  mutable duplicated : int;
}

let check_prob name p =
  if not (p >= 0.0 && p < 1.0) then
    invalid_arg (Printf.sprintf "Fault.create: %s must be in [0, 1)" name)

let create ?(seed = 1) (s : spec) =
  check_prob "drop_prob" s.drop_prob;
  check_prob "duplicate_prob" s.duplicate_prob;
  if s.adversarial_drops < 0 then
    invalid_arg "Fault.create: adversarial_drops must be >= 0";
  let crash_at = Hashtbl.create 8 in
  List.iter
    (fun (v, r) ->
      if r < 1 then invalid_arg "Fault.create: crash superstep must be >= 1";
      match Hashtbl.find_opt crash_at v with
      | Some r' when r' <= r -> ()
      | _ -> Hashtbl.replace crash_at v r)
    s.crashes;
  (* Independent per-purpose key material from the one seed: each salt is a
     whole split stream collapsed to its first output. *)
  let g = Prng.create seed in
  let salt () = Int64.to_int (Prng.next_int64 (Prng.split g)) land max_int in
  let drop_salt = salt () in
  let dup_salt = salt () in
  {
    sd = seed;
    drop_prob = s.drop_prob;
    duplicate_prob = s.duplicate_prob;
    crash_at;
    drop_salt;
    dup_salt;
    adversarial_left = s.adversarial_drops;
    adversarial_budget = s.adversarial_drops;
    dropped = 0;
    duplicated = 0;
  }

let lossless () = create ~seed:0 (spec ())

let is_lossless t =
  Float.equal t.drop_prob 0.0
  && Float.equal t.duplicate_prob 0.0
  && Hashtbl.length t.crash_at = 0
  && t.adversarial_budget = 0

let crashed t ~vertex ~round =
  match Hashtbl.find_opt t.crash_at vertex with
  | Some r -> round >= r
  | None -> false

(* A decision is a pure function of (salt, round, src, dst): hash the
   coordinates into a fresh SplitMix stream and take its first float.  Query
   order therefore cannot perturb the schedule. *)
let coin salt ~round ~src ~dst ~p =
  p > 0.0
  &&
  let key =
    salt
    lxor (round * 0x9E3779B1)
    lxor (src * 0x85EBCA77)
    lxor (dst * 0xC2B2AE3D)
  in
  Prng.float (Prng.create key) < p

let copies t ~round ~src ~dst =
  if coin t.drop_salt ~round ~src ~dst ~p:t.drop_prob then begin
    t.dropped <- t.dropped + 1;
    0
  end
  else if t.adversarial_left > 0 then begin
    t.adversarial_left <- t.adversarial_left - 1;
    t.dropped <- t.dropped + 1;
    0
  end
  else if coin t.dup_salt ~round ~src ~dst ~p:t.duplicate_prob then begin
    t.duplicated <- t.duplicated + 1;
    2
  end
  else 1

let drops t = t.dropped
let duplicates t = t.duplicated
let adversarial_spent t = t.adversarial_budget - t.adversarial_left
let seed t = t.sd

let pp ppf t =
  Format.fprintf ppf
    "@[<h>faults seed=%d drop=%.3f dup=%.3f crashes=%d adversary=%d/%d \
     (dropped=%d duplicated=%d)@]"
    t.sd t.drop_prob t.duplicate_prob
    (Hashtbl.length t.crash_at)
    (adversarial_spent t) t.adversarial_budget t.dropped t.duplicated
