type topology = Input_graph | Clique
type discipline = Unicast | Broadcast

type t = { topology : topology; discipline : discipline }

let congest = { topology = Input_graph; discipline = Unicast }
let broadcast_congest = { topology = Input_graph; discipline = Broadcast }
let congested_clique = { topology = Clique; discipline = Unicast }
let broadcast_congested_clique = { topology = Clique; discipline = Broadcast }

let bandwidth ~n = 2 * Lbcc_util.Bits.id_bits ~n

let name t =
  match (t.topology, t.discipline) with
  | Input_graph, Unicast -> "CONGEST"
  | Input_graph, Broadcast -> "Broadcast CONGEST"
  | Clique, Unicast -> "Congested Clique"
  | Clique, Broadcast -> "Broadcast Congested Clique"

let pp ppf t = Format.pp_print_string ppf (name t)

type reliability = None | Crash_safe | Byzantine_safe

let reliability_name = function
  | None -> "none"
  | Crash_safe -> "crash-safe"
  | Byzantine_safe -> "byzantine-safe"

let reliability_of_string s =
  match String.lowercase_ascii s with
  | "none" | "raw" -> Option.Some None
  | "crash" | "crash-safe" | "reliable" -> Option.Some Crash_safe
  | "byzantine" | "byzantine-safe" | "byz" -> Option.Some Byzantine_safe
  | _ -> Option.None

let pp_reliability ppf r = Format.pp_print_string ppf (reliability_name r)
