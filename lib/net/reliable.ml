module Graph = Lbcc_graph.Graph

type 'msg packet = {
  vround : int;
  payload : 'msg option;
  acks : int list; (* senders whose round-[vround] payload I hold *)
  halted : bool;
}

(* Per-vertex wrapper state.  The tables are mutated in place; the engine
   threads the record through unchanged. *)
type ('state, 'msg) vertex = {
  id : int;
  nbrs : int array;
      (* In the clique topology every vertex shares ONE [0..n-1] array and
         the iteration helpers skip [id] on the fly — building n explicit
         (n-1)-element neighbor lists was the legacy engine's O(n^2) setup
         cost.  On [Input_graph] this is the vertex's own adjacency, in
         [Graph.neighbors] order. *)
  mutable inner : 'state;
  mutable inner_live : bool;
  mutable vround : int; (* 0 until the first inner step runs *)
  mutable out : 'msg option; (* inner broadcast for [vround] *)
  mutable zombie : bool; (* final round fully acked; acking neighbors out *)
  mutable got : (int, 'msg option) Hashtbl.t; (* sender -> round-[vround] payload *)
  mutable future : (int, 'msg option) Hashtbl.t; (* sender -> round-[vround+1] payload *)
  acked : (int, unit) Hashtbl.t; (* neighbors holding my round-[vround] payload *)
  halted_nbrs : (int, unit) Hashtbl.t;
  suspected : (int, unit) Hashtbl.t;
  last_heard : (int, int) Hashtbl.t; (* neighbor -> last real superstep heard *)
}

type 'state result = {
  states : 'state array;
  stats : Engine.stats;
  virtual_supersteps : int;
  protocol_rounds : int;
  retransmit_rounds : int;
  suspected : int list;
}

let retransmit_label label = label ^ "/retransmit"

let packet_bits ~n inner_bits (pkt : _ packet) =
  let open Payload in
  let fields =
    Tag 4 :: Int pkt.vround :: List.map (fun _ -> Vertex_id n) pkt.acks
  in
  size fields + (match pkt.payload with None -> 0 | Some m -> inner_bits m)

(* Neighbors a vertex must still synchronize with: not self (the clique
   array contains it), not halted, not suspected.  Exposed as iteration
   helpers rather than a materialized list so the per-superstep barrier
   checks allocate nothing. *)
let is_waiting v u =
  u <> v.id
  && (not (Hashtbl.mem v.halted_nbrs u))
  && not (Hashtbl.mem v.suspected u)

let for_all_waiting v f =
  Array.for_all (fun u -> (not (is_waiting v u)) || f u) v.nbrs

let iter_waiting v f = Array.iter (fun u -> if is_waiting v u then f u) v.nbrs
let none_waiting v = for_all_waiting v (fun _ -> false)

let barrier_met v =
  for_all_waiting v (fun u -> Hashtbl.mem v.got u && Hashtbl.mem v.acked u)

let inbox_of_got got =
  Lbcc_util.Tbl.sorted_bindings ~compare:Int.compare got
  |> List.filter_map (fun (s, p) ->
         match p with Some m -> Some (s, m) | None -> None)

let run ?accountant ?tracer ?(label = "reliable") ?(max_supersteps = 100_000)
    ?(on_timeout = `Truncate) ?(patience = 30) ?faults ~model ~graph ~size_bits
    ~init ~step () =
  if patience < 1 then invalid_arg "Reliable.run: patience must be >= 1";
  Lbcc_obs.Trace.span tracer label @@ fun () ->
  let n = Graph.n graph in
  let all_ids =
    match model.Model.topology with
    | Model.Clique -> Array.init n Fun.id
    | Model.Input_graph -> [||]
  in
  let neighbors_of v =
    match model.Model.topology with
    | Model.Input_graph ->
        Array.of_list (List.map fst (Graph.neighbors graph v))
    | Model.Clique -> all_ids
  in
  let init_vertex v =
    {
      id = v;
      nbrs = neighbors_of v;
      inner = init v;
      inner_live = true;
      vround = 0;
      out = None;
      zombie = false;
      got = Hashtbl.create 8;
      future = Hashtbl.create 8;
      acked = Hashtbl.create 8;
      halted_nbrs = Hashtbl.create 8;
      suspected = Hashtbl.create 8;
      last_heard = Hashtbl.create 8;
    }
  in
  let receive v (sender, pkt) =
    if pkt.halted then Hashtbl.replace v.halted_nbrs sender ();
    if not pkt.halted then begin
      if pkt.vround = v.vround then begin
        if not (Hashtbl.mem v.got sender) then
          Hashtbl.replace v.got sender pkt.payload;
        if List.mem v.id pkt.acks then Hashtbl.replace v.acked sender ()
      end
      else if pkt.vround = v.vround + 1 then begin
        (* The sender is one round ahead; it cannot have advanced without my
           round-[vround] payload, so this doubles as an ack. *)
        if not (Hashtbl.mem v.future sender) then
          Hashtbl.replace v.future sender pkt.payload;
        Hashtbl.replace v.acked sender ()
      end
      else if pkt.vround > v.vround + 1 then
        (* Only reachable once this vertex is halted or the sender has
           suspected it; its payloads no longer matter. *)
        Hashtbl.replace v.acked sender ()
    end
  in
  let advance v =
    if v.inner_live then begin
      let inbox = if v.vround = 0 then [] else inbox_of_got v.got in
      let inner', msg, continue =
        step ~round:(v.vround + 1) ~vertex:v.id v.inner inbox
      in
      v.inner <- inner';
      v.out <- msg;
      v.vround <- v.vround + 1;
      v.inner_live <- continue;
      Hashtbl.reset v.acked;
      let consumed = v.got in
      v.got <- v.future;
      Hashtbl.reset consumed;
      v.future <- consumed
    end
    else v.zombie <- true
  in
  let wrapper_step ~round ~vertex:_ v inbox =
    List.iter
      (fun (sender, pkt) ->
        receive v (sender, pkt);
        Hashtbl.replace v.last_heard sender round)
      inbox;
    (* Suspect neighbors silent for [patience] consecutive real supersteps. *)
    iter_waiting v (fun u ->
        let heard =
          match Hashtbl.find_opt v.last_heard u with Some r -> r | None -> 0
        in
        if round - heard > patience then Hashtbl.replace v.suspected u ());
    if v.vround = 0 then advance v
    else if (not v.zombie) && barrier_met v then advance v;
    if v.zombie then begin
      let done_ = none_waiting v in
      let pkt = { vround = v.vround; payload = None; acks = []; halted = true } in
      (v, Some pkt, not done_)
    end
    else begin
      let acks = Lbcc_util.Tbl.sorted_keys ~compare:Int.compare v.got in
      let pkt =
        { vround = v.vround; payload = v.out; acks; halted = false }
      in
      (v, Some pkt, true)
    end
  in
  let vertices, stats =
    Engine.run ?faults ~label ~max_supersteps ~on_timeout ~model ~graph
      ~size_bits:(packet_bits ~n size_bits)
      ~init:init_vertex ~step:wrapper_step ()
  in
  (* [vround] is monotone, so the max over final values equals the max ever
     reached; [v.suspected] is never cleared, so the union over vertices is
     the set of everyone anyone suspected.  Recovering both here keeps the
     step closure free of cross-vertex mutation (it runs in parallel). *)
  let virtual_supersteps =
    Array.fold_left (fun m v -> Stdlib.max m v.vround) 0 vertices
  in
  let globally_suspected = Hashtbl.create 8 in
  Array.iter
    (fun (v : _ vertex) ->
      (* Set union: insertion order cannot affect the resulting key set. *)
      (* lbcc-lint: allow det-unordered-hashtbl *)
      Hashtbl.iter (fun u () -> Hashtbl.replace globally_suspected u ()) v.suspected)
    vertices;
  let protocol_rounds = Stdlib.min virtual_supersteps stats.Engine.rounds in
  let retransmit_rounds = stats.Engine.rounds - protocol_rounds in
  let suspected_count = Hashtbl.length globally_suspected in
  (* The per-superstep bit maxima are not recoverable after the fact, so the
     aggregate bits the real execution broadcast are attributed to the
     protocol label; the retransmit label carries rounds only. *)
  (match accountant with
  | Some acc ->
      Rounds.charge acc ~label ~bits:stats.Engine.total_bits
        ~rounds:protocol_rounds;
      Rounds.charge acc ~label:(retransmit_label label) ~rounds:retransmit_rounds
  | None -> ());
  Lbcc_obs.Trace.add tracer ~rounds:stats.Engine.rounds
    ~bits:stats.Engine.total_bits ~supersteps:stats.Engine.supersteps
    ~messages:stats.Engine.messages_sent ();
  Lbcc_obs.Trace.set_attr tracer "virtual_supersteps"
    (Lbcc_obs.Json.Int virtual_supersteps);
  Lbcc_obs.Trace.set_attr tracer "protocol_rounds"
    (Lbcc_obs.Json.Int protocol_rounds);
  Lbcc_obs.Trace.set_attr tracer "retransmit_rounds"
    (Lbcc_obs.Json.Int retransmit_rounds);
  Lbcc_obs.Trace.set_attr tracer "suspected" (Lbcc_obs.Json.Int suspected_count);
  {
    states = Array.map (fun v -> v.inner) vertices;
    stats;
    virtual_supersteps;
    protocol_rounds;
    retransmit_rounds;
    suspected = Lbcc_util.Tbl.sorted_keys ~compare:Int.compare globally_suspected;
  }
