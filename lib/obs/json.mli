(** Dependency-free JSON tree, emitter and parser.

    The observability layer writes machine-readable artifacts ([BENCH_*.json],
    [--json] CLI reports, trace dumps) that downstream tooling diffs across
    runs, so the encoding must be strict and deterministic: object keys are
    emitted in the order given, floats print with enough digits to round-trip
    an IEEE double, and non-finite floats are rejected rather than smuggled
    out as the invalid tokens [nan] / [inf].

    Numbers keep the [Int] / [Float] distinction through a round-trip: floats
    always print with a ['.'] or exponent, and number tokens containing
    neither parse back as [Int]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize.  [pretty] (default [false]) indents with two spaces.
    @raise Invalid_argument on a NaN or infinite {!Float}. *)

val of_string : string -> t
(** Parse a complete JSON document (trailing whitespace allowed).
    Handles string escapes including [\uXXXX] (surrogate pairs decode to
    UTF-8).  @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member key json] on an [Obj]; [None] on missing key or non-object. *)

val to_float : t -> float option
(** Numeric accessor: [Int] and [Float] both answer. *)

val equal : t -> t -> bool
(** Structural equality; object key order is significant. *)
