type direction = Le | Ge

type claim = {
  name : string;
  measured : float;
  claimed_bound : float;
  direction : direction;
}

type phase = { label : string; rounds : int; bits : int }

type t = {
  experiment : string;
  title : string;
  claims : claim list;
  phases : phase list;
  extra : (string * Json.t) list;
}

let schema_tag = "lbcc-bench/1"

let claim ?(direction = Le) ~name ~measured ~bound () =
  { name; measured; claimed_bound = bound; direction }

let within c =
  let slack = 1e-9 *. Float.max 1.0 (Float.abs c.claimed_bound) in
  match c.direction with
  | Le -> c.measured <= c.claimed_bound +. slack
  | Ge -> c.measured >= c.claimed_bound -. slack

let all_within t = List.for_all within t.claims

let direction_string = function Le -> "<=" | Ge -> ">="

let claim_to_json c =
  Json.Obj
    [
      ("name", Json.String c.name);
      ("measured", Json.Float c.measured);
      ("claimed_bound", Json.Float c.claimed_bound);
      ("direction", Json.String (direction_string c.direction));
      ("within_bound", Json.Bool (within c));
    ]

let phase_to_json p =
  Json.Obj
    [
      ("label", Json.String p.label);
      ("rounds", Json.Int p.rounds);
      ("bits", Json.Int p.bits);
    ]

let to_json t =
  Json.Obj
    ([
       ("schema", Json.String schema_tag);
       ("experiment", Json.String t.experiment);
       ("title", Json.String t.title);
       ("within_bound", Json.Bool (all_within t));
       ("claims", Json.Arr (List.map claim_to_json t.claims));
       ("phases", Json.Arr (List.map phase_to_json t.phases));
     ]
    @ t.extra)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let ( let* ) = Result.bind

let field obj key =
  match Json.member key obj with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing key %S" key)

let as_string key = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "%S must be a string" key)

let as_bool key = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%S must be a boolean" key)

let as_number key j =
  match Json.to_float j with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%S must be a number" key)

let as_int key = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "%S must be an integer" key)

let as_arr key = function
  | Json.Arr items -> Ok items
  | _ -> Error (Printf.sprintf "%S must be an array" key)

let validate_claim i j =
  let ctx msg = Printf.sprintf "claims[%d]: %s" i msg in
  Result.map_error ctx
    (let* name = field j "name" in
     let* _ = as_string "name" name in
     let* measured = field j "measured" in
     let* measured = as_number "measured" measured in
     let* bound = field j "claimed_bound" in
     let* bound = as_number "claimed_bound" bound in
     let* dir = field j "direction" in
     let* dir = as_string "direction" dir in
     let* direction =
       match dir with
       | "<=" -> Ok Le
       | ">=" -> Ok Ge
       | s -> Error (Printf.sprintf "bad direction %S" s)
     in
     let* wb = field j "within_bound" in
     let* wb = as_bool "within_bound" wb in
     let c = { name = ""; measured; claimed_bound = bound; direction } in
     if within c <> wb then Error "within_bound inconsistent with the numbers"
     else Ok wb)

let validate_phase i j =
  let ctx msg = Printf.sprintf "phases[%d]: %s" i msg in
  Result.map_error ctx
    (let* label = field j "label" in
     let* _ = as_string "label" label in
     let* rounds = field j "rounds" in
     let* rounds = as_int "rounds" rounds in
     let* bits = field j "bits" in
     let* bits = as_int "bits" bits in
     if rounds < 0 || bits < 0 then Error "negative counters" else Ok ())

let rec validate_all f i = function
  | [] -> Ok []
  | x :: rest ->
      let* v = f i x in
      let* vs = validate_all f (i + 1) rest in
      Ok (v :: vs)

let validate json =
  let* schema = field json "schema" in
  let* schema = as_string "schema" schema in
  let* () =
    if schema = schema_tag then Ok ()
    else Error (Printf.sprintf "unknown schema %S (want %S)" schema schema_tag)
  in
  let* exp = field json "experiment" in
  let* _ = as_string "experiment" exp in
  let* title = field json "title" in
  let* _ = as_string "title" title in
  let* wb = field json "within_bound" in
  let* wb = as_bool "within_bound" wb in
  let* claims = field json "claims" in
  let* claims = as_arr "claims" claims in
  let* claim_flags = validate_all validate_claim 0 claims in
  let* phases = field json "phases" in
  let* phases = as_arr "phases" phases in
  let* _ = validate_all validate_phase 0 phases in
  if List.for_all Fun.id claim_flags <> wb then
    Error "top-level within_bound inconsistent with the claims"
  else Ok ()

let filename t = Printf.sprintf "BENCH_%s.json" t.experiment

let write ~dir t =
  let path = Filename.concat dir (filename t) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true (to_json t));
      output_char oc '\n');
  path
