type span = {
  name : string;
  mutable wall_ns : int;
  mutable rounds : int;
  mutable bits : int;
  mutable supersteps : int;
  mutable messages : int;
  mutable attrs : (string * Json.t) list;
  mutable children : span list; (* reversed; [to_json]/[pp] re-reverse *)
}

type t = {
  clock : unit -> float;
  root_span : span;
  mutable stack : span list; (* innermost first, root always last *)
}

let fresh_span name =
  {
    name;
    wall_ns = 0;
    rounds = 0;
    bits = 0;
    supersteps = 0;
    messages = 0;
    attrs = [];
    children = [];
  }

let create ?(clock = Sys.time) () =
  let root_span = fresh_span "trace" in
  { clock; root_span; stack = [ root_span ] }

let current t = match t.stack with s :: _ -> s | [] -> t.root_span

let span tracer name f =
  match tracer with
  | None -> f ()
  | Some t ->
      let s = fresh_span name in
      let parent = current t in
      parent.children <- s :: parent.children;
      t.stack <- s :: t.stack;
      let t0 = t.clock () in
      Fun.protect
        ~finally:(fun () ->
          s.wall_ns <- s.wall_ns + int_of_float ((t.clock () -. t0) *. 1e9);
          (* Pop through any spans the body leaked (it cannot: [span] is the
             only push site and it always pops), defensive against reentrant
             clock exceptions. *)
          t.stack <- (match t.stack with _ :: rest -> rest | [] -> []))
        f

let add tracer ?(rounds = 0) ?(bits = 0) ?(supersteps = 0) ?(messages = 0) () =
  match tracer with
  | None -> ()
  | Some t ->
      let s = current t in
      s.rounds <- s.rounds + rounds;
      s.bits <- s.bits + bits;
      s.supersteps <- s.supersteps + supersteps;
      s.messages <- s.messages + messages

let set_attr tracer key value =
  match tracer with
  | None -> ()
  | Some t ->
      let s = current t in
      s.attrs <- (List.remove_assoc key s.attrs) @ [ (key, value) ]

let depth t = List.length t.stack - 1

let root t = t.root_span

let rec span_to_json s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("wall_ns", Json.Int s.wall_ns);
      ("rounds", Json.Int s.rounds);
      ("bits", Json.Int s.bits);
      ("supersteps", Json.Int s.supersteps);
      ("messages", Json.Int s.messages);
      ("attrs", Json.Obj s.attrs);
      ("children", Json.Arr (List.rev_map span_to_json s.children |> List.rev));
    ]

let to_json t = span_to_json t.root_span

let pp ppf t =
  let rec walk indent s =
    Format.fprintf ppf "%s%s: rounds=%d bits=%d supersteps=%d wall=%.3fms@,"
      indent s.name s.rounds s.bits s.supersteps
      (float_of_int s.wall_ns /. 1e6);
    List.iter (walk (indent ^ "  ")) (List.rev s.children)
  in
  Format.fprintf ppf "@[<v>";
  walk "" t.root_span;
  Format.fprintf ppf "@]"
