type hist = {
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
  counts : (int, int ref) Hashtbl.t; (* bucket exponent -> count *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
}

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let inc reg ?(by = 1) name =
  match reg with
  | None -> ()
  | Some r ->
      if by < 0 then invalid_arg "Metrics.inc: negative increment";
      (match Hashtbl.find_opt r.counters name with
      | Some c -> c := !c + by
      | None -> Hashtbl.add r.counters name (ref by))

let set_gauge reg name v =
  match reg with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.gauges name with
      | Some g -> g := v
      | None -> Hashtbl.add r.gauges name (ref v))

(* Underflow (v <= 0) uses a sentinel exponent below any ceil(log2 v). *)
let underflow_bucket = min_int

let bucket_of v =
  if v <= 0.0 then underflow_bucket
  else Stdlib.max (-1074) (int_of_float (Float.ceil (Float.log2 v)))

let bucket_bound e = if e = underflow_bucket then 0.0 else Float.pow 2.0 (float_of_int e)

let observe reg name v =
  match reg with
  | None -> ()
  | Some r ->
      let h =
        match Hashtbl.find_opt r.histograms name with
        | Some h -> h
        | None ->
            let h =
              { count = 0; sum = 0.0; min = infinity; max = neg_infinity;
                counts = Hashtbl.create 8 }
            in
            Hashtbl.add r.histograms name h;
            h
      in
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      h.min <- Float.min h.min v;
      h.max <- Float.max h.max v;
      let b = bucket_of v in
      (match Hashtbl.find_opt h.counts b with
      | Some c -> incr c
      | None -> Hashtbl.add h.counts b (ref 1))

let counter r name =
  match Hashtbl.find_opt r.counters name with Some c -> !c | None -> 0

let gauge r name = Option.map ( ! ) (Hashtbl.find_opt r.gauges name)

let summary_of h =
  let buckets =
    Hashtbl.fold (fun e c acc -> (e, !c) :: acc) h.counts []
    |> List.sort compare
    |> List.map (fun (e, c) -> (bucket_bound e, c))
  in
  { count = h.count; sum = h.sum; min = h.min; max = h.max; buckets }

let histogram r name = Option.map summary_of (Hashtbl.find_opt r.histograms name)

(* Bucket-interpolated quantile on the log2 histogram.  The target rank
   q * count is located in the cumulative bucket counts; within the winning
   bucket the estimate interpolates linearly between the bucket's bounds
   (lower bound = upper / 2 for power-of-two buckets), then clamps to the
   exact [min, max] the histogram tracks — so a constant distribution
   reports the constant, not a bucket edge, and no estimate can leave the
   observed range. *)
let quantile (s : histogram_summary) q =
  if s.count <= 0 then invalid_arg "Metrics.quantile: empty histogram";
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Metrics.quantile: q outside [0, 1]";
  if q <= 0.0 then s.min
  else if q >= 1.0 then s.max
  else begin
    let target = q *. float_of_int s.count in
    let clamp est = Float.min s.max (Float.max s.min est) in
    let rec walk cum = function
      | [] -> s.max
      | (ub, c) :: rest ->
          let cum' = cum +. float_of_int c in
          if target <= cum' || (match rest with [] -> true | _ -> false) then begin
            (* The underflow bucket (bound 0) holds the non-positive
               observations: interpolate from the exact minimum instead of a
               halved power of two. *)
            let lo = if ub <= 0.0 then s.min else ub /. 2.0 in
            let frac = (target -. cum) /. float_of_int c in
            let frac = Float.min 1.0 (Float.max 0.0 frac) in
            clamp (lo +. (frac *. (ub -. lo)))
          end
          else walk cum' rest
    in
    walk 0.0 s.buckets
  end

let quantile_of r name q = Option.map (fun s -> quantile s q) (histogram r name)

let names r =
  let collect tbl acc = Hashtbl.fold (fun k _ acc -> k :: acc) tbl acc in
  collect r.counters (collect r.gauges (collect r.histograms []))
  |> List.sort_uniq compare

let sorted_keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let to_json r =
  let counters =
    List.map (fun k -> (k, Json.Int (counter r k))) (sorted_keys r.counters)
  in
  let gauges =
    List.map
      (fun k -> (k, Json.Float (Option.get (gauge r k))))
      (sorted_keys r.gauges)
  in
  let histograms =
    List.map
      (fun k ->
        let s = Option.get (histogram r k) in
        ( k,
          Json.Obj
            [
              ("count", Json.Int s.count);
              ("sum", Json.Float s.sum);
              ("min", Json.Float s.min);
              ("max", Json.Float s.max);
              ( "buckets",
                Json.Arr
                  (List.map
                     (fun (le, c) ->
                       Json.Obj [ ("le", Json.Float le); ("count", Json.Int c) ])
                     s.buckets) );
            ] ))
      (sorted_keys r.histograms)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]
