(** Machine-readable benchmark reports ([BENCH_<EXP>.json]).

    Every experiment of the harness reduces to theorem-conformance claims:
    a measured quantity, the paper's claimed bound (with its big-O constant
    made explicit), and the comparison direction.  This module fixes the
    schema so the emitter (bench), the validator (CLI, CI) and the tests
    agree on one shape, versioned under the ["schema"] key.

    Schema [lbcc-bench/1]:
    {v
    { "schema": "lbcc-bench/1",
      "experiment": "E1",
      "title": "...",
      "within_bound": true,              // conjunction over claims
      "claims": [
        { "name": "stretch ER(0.3) k=2",
          "measured": 3.0,
          "claimed_bound": 3.0,
          "direction": "<=",             // or ">="
          "within_bound": true } ],
      "phases": [                         // may be empty
        { "label": "sparsify/spanner-...", "rounds": 12, "bits": 480 } ],
      ... }                               // experiment-specific extras
    v} *)

type direction = Le | Ge

type claim = {
  name : string;
  measured : float;
  claimed_bound : float;
  direction : direction;
}

type phase = { label : string; rounds : int; bits : int }

type t = {
  experiment : string;  (** "E1" .. "E16" *)
  title : string;
  claims : claim list;
  phases : phase list;  (** per-phase round+bit breakdown, label paths *)
  extra : (string * Json.t) list;  (** appended verbatim to the object *)
}

val claim :
  ?direction:direction -> name:string -> measured:float -> bound:float -> unit ->
  claim
(** [direction] defaults to [Le] (measured must not exceed the bound). *)

val within : claim -> bool
(** Bound satisfied, with a 1e-9 relative slack for float round-off. *)

val all_within : t -> bool

val to_json : t -> Json.t

val validate : Json.t -> (unit, string) result
(** Schema-shape check: version tag, required keys, claim and phase field
    types, and consistency of the [within_bound] aggregates. *)

val filename : t -> string
(** ["BENCH_<experiment>.json"]. *)

val write : dir:string -> t -> string
(** Write the pretty-printed report to [dir/filename]; returns the path. *)
