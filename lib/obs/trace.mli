(** Span-based tracer with hierarchical phase labels.

    A trace is a tree of spans.  Instrumented layers (the network engine, the
    sparsifier, the Laplacian solver, the IPM) open a span around a phase and
    record what that phase cost: simulated rounds, broadcast bits, engine
    supersteps, messages, and wall-clock time.  Wall-clock is measured
    {e inclusively} around the span body.  The numeric counters land on
    whichever span is open when {!add} is called; the accountant's
    [with_phase] adds each phase's inclusive round/bit delta to the phase's
    own span at close, so phase spans also read inclusively — a parent phase
    reports the cost of everything it contains — while a raw {!add} inside a
    child span stays on that child.

    Every entry point takes the tracer as an [option] so call sites can
    thread an optional [?tracer] argument straight through: [None] costs one
    branch and allocates nothing. *)

type t

type span = {
  name : string;
  mutable wall_ns : int;  (** inclusive wall-clock, nanoseconds *)
  mutable rounds : int;  (** inclusive simulated rounds *)
  mutable bits : int;  (** inclusive broadcast bits (per-superstep maxima) *)
  mutable supersteps : int;
  mutable messages : int;
  mutable attrs : (string * Json.t) list;  (** insertion order *)
  mutable children : span list;  (** in open order *)
}

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] returns seconds and defaults to [Sys.time] (processor time —
    the standard library has no monotonic wall clock and the simulation is
    CPU-bound anyway). *)

val span : t option -> string -> (unit -> 'a) -> 'a
(** [span tracer name f] runs [f] inside a fresh child span of the current
    span, timing it; exception-safe.  [span None name f] is just [f ()]. *)

val add : t option -> ?rounds:int -> ?bits:int -> ?supersteps:int ->
  ?messages:int -> unit -> unit
(** Add counters to the currently open span (the root when none is open). *)

val set_attr : t option -> string -> Json.t -> unit
(** Attach an attribute to the currently open span (replaces an existing
    key). *)

val depth : t -> int
(** Number of currently open spans (0 at top level). *)

val root : t -> span
(** The synthetic root span; its children are the top-level spans. *)

val to_json : t -> Json.t
(** The root span as JSON: [{name, wall_ns, rounds, bits, supersteps,
    messages, attrs, children}], children recursively. *)

val pp : Format.formatter -> t -> unit
(** Indented tree, one span per line. *)
