(* The observability layer owns the wall clock (DESIGN.md §8: the
   det-wall-clock lint rule bans clock reads everywhere else).  Code that
   needs a timestamp for *observation* — latency histograms, span timing —
   reads it through this module; nothing in the repository may branch on
   these values when deciding protocol or scheduler behaviour. *)

let now_s () = Unix.gettimeofday ()

let cpu_s () = Sys.time ()
