type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that still round-trips a double, always spelled
   as a float token (so Int/Float survive a round-trip). *)
let float_token f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite float has no JSON encoding";
  let short = Printf.sprintf "%.12g" f in
  let s = if float_of_string short = f then short else Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let to_string ?(pretty = false) json =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_token f)
    | String s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        newline ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (key, value) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            escape_string buf key;
            Buffer.add_string buf (if pretty then ": " else ":");
            emit (depth + 1) value)
          fields;
        newline ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 json;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type parser_state = { src : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | Some got -> fail st "expected '%c', found '%c'" c got
  | None -> fail st "expected '%c', found end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal"

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "invalid hex digit '%c'" c

let hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v * 16) + hex_digit st st.src.[st.pos + i]
  done;
  st.pos <- st.pos + 4;
  !v

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let cp = hex4 st in
                let cp =
                  (* High surrogate: consume the paired low surrogate. *)
                  if cp >= 0xD800 && cp <= 0xDBFF then begin
                    if
                      st.pos + 1 < String.length st.src
                      && st.src.[st.pos] = '\\'
                      && st.src.[st.pos + 1] = 'u'
                    then begin
                      st.pos <- st.pos + 2;
                      let lo = hex4 st in
                      if lo < 0xDC00 || lo > 0xDFFF then
                        fail st "unpaired surrogate"
                      else 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                    end
                    else fail st "unpaired surrogate"
                  end
                  else cp
                in
                add_utf8 buf cp
            | c -> fail st "invalid escape '\\%c'" c));
        loop ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> advance st
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st
    | _ -> continue_ := false
  done;
  let token = String.sub st.src start (st.pos - start) in
  if token = "" then fail st "expected a value";
  if !is_float then
    match float_of_string_opt token with
    | Some f -> Float f
    | None -> fail st "malformed number %S" token
  else
    match int_of_string_opt token with
    | Some i -> Int i
    | None -> (
        (* Integer token too wide for a native int: keep the value. *)
        match float_of_string_opt token with
        | Some f -> Float f
        | None -> fail st "malformed number %S" token)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let value = parse_value st in
          fields := (key, value) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields_loop ()
          | Some '}' -> advance st
          | _ -> fail st "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let value = parse_value st in
          items := value :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items_loop ()
          | Some ']' -> advance st
          | _ -> fail st "expected ',' or ']'"
        in
        items_loop ();
        Arr (List.rev !items)
      end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let equal (a : t) (b : t) = a = b
