(** Metrics registry: counters, gauges, log-scale histograms.

    A registry is a flat namespace of metrics keyed by label ("sparsify.runs",
    "solve.iterations", ...).  Counters accumulate integers, gauges hold the
    last value set, histograms bucket observations at powers of two (the
    quantities measured here — rounds, iterations, bits — span orders of
    magnitude, where linear buckets are useless).

    As with {!Trace}, every mutator takes the registry as an [option] so
    instrumented code can thread an optional argument through at zero cost
    when observability is off. *)

type t

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
      (** [(upper_bound, count)] for non-empty buckets, ascending; an
          observation [v] lands in the smallest bucket with [v <= 2^e] *)
}

val create : unit -> t

val inc : t option -> ?by:int -> string -> unit
(** Bump a counter (created at 0 on first use).  [by] defaults to 1 and must
    be [>= 0]. *)

val set_gauge : t option -> string -> float -> unit

val observe : t option -> string -> float -> unit
(** Add an observation to a histogram.  Non-positive values land in a
    dedicated underflow bucket (bound [0.]). *)

val counter : t -> string -> int
(** 0 when the counter was never bumped. *)

val gauge : t -> string -> float option

val histogram : t -> string -> histogram_summary option

val quantile : histogram_summary -> float -> float
(** [quantile s q] estimates the [q]-quantile ([0 <= q <= 1]) of the
    observations behind [s] by locating rank [q * count] in the cumulative
    bucket counts and interpolating linearly inside the winning power-of-two
    bucket, clamped to the exact [\[min, max\]] — so SLO summaries (p50 /
    p90 / p99) report values inside the observed range rather than bucket
    edges.  [q = 0.] is exactly [s.min] and [q = 1.] exactly [s.max].
    The estimate's error is bounded by the winning bucket's width.
    @raise Invalid_argument on an empty summary or [q] outside [\[0, 1\]]. *)

val quantile_of : t -> string -> float -> float option
(** {!quantile} on a named histogram; [None] when it does not exist. *)

val names : t -> string list
(** All registered metric names, sorted. *)

val to_json : t -> Json.t
(** [{counters: {...}, gauges: {...}, histograms: {...}}], each sorted by
    name. *)
