(** Metrics registry: counters, gauges, log-scale histograms.

    A registry is a flat namespace of metrics keyed by label ("sparsify.runs",
    "solve.iterations", ...).  Counters accumulate integers, gauges hold the
    last value set, histograms bucket observations at powers of two (the
    quantities measured here — rounds, iterations, bits — span orders of
    magnitude, where linear buckets are useless).

    As with {!Trace}, every mutator takes the registry as an [option] so
    instrumented code can thread an optional argument through at zero cost
    when observability is off. *)

type t

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
      (** [(upper_bound, count)] for non-empty buckets, ascending; an
          observation [v] lands in the smallest bucket with [v <= 2^e] *)
}

val create : unit -> t

val inc : t option -> ?by:int -> string -> unit
(** Bump a counter (created at 0 on first use).  [by] defaults to 1 and must
    be [>= 0]. *)

val set_gauge : t option -> string -> float -> unit

val observe : t option -> string -> float -> unit
(** Add an observation to a histogram.  Non-positive values land in a
    dedicated underflow bucket (bound [0.]). *)

val counter : t -> string -> int
(** 0 when the counter was never bumped. *)

val gauge : t -> string -> float option

val histogram : t -> string -> histogram_summary option

val names : t -> string list
(** All registered metric names, sorted. *)

val to_json : t -> Json.t
(** [{counters: {...}, gauges: {...}, histograms: {...}}], each sorted by
    name. *)
