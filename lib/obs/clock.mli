(** The repository's single wall-clock authority.

    The [det-wall-clock] lint rule (DESIGN.md §8) bans clock reads outside
    [lib/obs]: a protocol or scheduler that branches on the time of day is
    not replayable.  Observation, however, legitimately needs timestamps —
    service-latency histograms, span timing — so this module exposes the
    clock for {e measurement only}.  The contract for callers: clock values
    may flow into {!Metrics} and {!Trace}, never into control flow that
    decides what a run computes. *)

val now_s : unit -> float
(** Wall-clock seconds since the epoch ([Unix.gettimeofday]).  Suitable for
    latency deltas; not monotonic under clock steps, which is acceptable for
    histogram observations. *)

val cpu_s : unit -> float
(** Processor seconds for this process ([Sys.time]) — the clock {!Trace}
    defaults to. *)
