(* A reusable worker pool over OCaml 5 domains.

   Design constraints, in order:

   1. Determinism: callers split index ranges into chunks whose boundaries
      depend only on the problem size (never on the pool size or on
      scheduling), and chunk results are combined in ascending chunk order.
      Together with per-chunk work that touches disjoint state, any pool
      size — including 1 — computes bit-identical results.
   2. Zero dependencies: domains, mutexes and condition variables from the
      standard library only.
   3. Graceful degradation: a pool of size 1 never spawns a domain and every
      operation runs inline; nested [parallel_for] calls (a worker task that
      itself asks for parallelism) detect the situation and run inline
      rather than deadlocking on their own pool. *)

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable quit : bool;
  mutable idle : bool; (* job slot consumed and finished *)
  mutable domain : unit Domain.t option;
}

type t = {
  size : int; (* total lanes, including the calling domain *)
  workers : worker array; (* length [size - 1] *)
  in_use : bool Atomic.t; (* held while a parallel_for is in flight *)
}

let size t = t.size

let worker_loop w =
  let rec loop () =
    Mutex.lock w.mutex;
    while w.job = None && not w.quit do
      Condition.wait w.cond w.mutex
    done;
    if w.quit then Mutex.unlock w.mutex
    else begin
      let job = Option.get w.job in
      Mutex.unlock w.mutex;
      (job () : unit);
      Mutex.lock w.mutex;
      w.job <- None;
      w.idle <- true;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex;
      loop ()
    end
  in
  loop ()

let env_domains () =
  match Sys.getenv_opt "LBCC_DOMAINS" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | Some _ | None -> None)

let create ?domains () =
  let requested =
    match domains with
    | Some d -> d
    | None -> (
        match env_domains () with
        | Some d -> d
        | None -> Domain.recommended_domain_count ())
  in
  let size = Stdlib.max 1 (Stdlib.min requested 128) in
  let workers =
    Array.init (size - 1) (fun _ ->
        {
          mutex = Mutex.create ();
          cond = Condition.create ();
          job = None;
          quit = false;
          idle = true;
          domain = None;
        })
  in
  Array.iter (fun w -> w.domain <- Some (Domain.spawn (fun () -> worker_loop w))) workers;
  { size; workers; in_use = Atomic.make false }

let shutdown t =
  Array.iter
    (fun w ->
      Mutex.lock w.mutex;
      w.quit <- true;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex)
    t.workers;
  Array.iter
    (fun w ->
      match w.domain with
      | Some d ->
          Domain.join d;
          w.domain <- None
      | None -> ())
    t.workers

(* The process-wide default pool, sized by LBCC_DOMAINS (or the runtime's
   recommendation) on first use.  [set_default_domains] rebuilds it — the
   determinism test suite uses this to replay protocols at 1/2/4 lanes. *)
let default_pool : t option ref = ref None
let exit_hook_registered = ref false

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create () in
      default_pool := Some p;
      if not !exit_hook_registered then begin
        exit_hook_registered := true;
        at_exit (fun () ->
            match !default_pool with
            | Some p ->
                default_pool := None;
                shutdown p
            | None -> ())
      end;
      p

let set_default_domains d =
  if d < 1 then invalid_arg "Pool.set_default_domains: must be >= 1";
  (match !default_pool with Some p -> shutdown p | None -> ());
  default_pool := Some (create ~domains:d ());
  if not !exit_hook_registered then begin
    exit_hook_registered := true;
    at_exit (fun () ->
        match !default_pool with
        | Some p ->
            default_pool := None;
            shutdown p
        | None -> ())
  end

(* Chunk grid: boundaries depend only on [n] (and the caller's explicit
   [chunk]), never on the pool size, so reductions combine in the same
   order at every lane count. *)
let chunk_bounds ~n ~chunk =
  let chunk = Stdlib.max 1 chunk in
  (chunk, (n + chunk - 1) / chunk)

let default_chunk n = Stdlib.max 1 ((n + 63) / 64)

let run_chunks t ~nchunks work =
  (* Dynamic scheduling over a shared counter: which lane runs which chunk
     varies, but chunk payloads write disjoint state (or fill slot
     [chunk_index] of a results array), so scheduling is unobservable. *)
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let lane () =
    let rec grab () =
      let c = Atomic.fetch_and_add next 1 in
      if c < nchunks && Atomic.get failure = None then begin
        (try work c
         with e ->
           ignore (Atomic.compare_and_set failure None (Some e) : bool));
        grab ()
      end
    in
    grab ()
  in
  let engaged =
    Array.of_list
      (List.filteri
         (fun i _ -> i < nchunks - 1)
         (Array.to_list t.workers))
  in
  Array.iter
    (fun w ->
      Mutex.lock w.mutex;
      w.idle <- false;
      w.job <- Some lane;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex)
    engaged;
  lane ();
  Array.iter
    (fun w ->
      Mutex.lock w.mutex;
      while not w.idle do
        Condition.wait w.cond w.mutex
      done;
      Mutex.unlock w.mutex)
    engaged;
  match Atomic.get failure with Some e -> raise e | None -> ()

let parallel_for t ?chunk ~n f =
  if n > 0 then begin
    let chunk = match chunk with Some c -> c | None -> default_chunk n in
    if t.size = 1 || n <= chunk then f 0 n
    else if not (Atomic.compare_and_set t.in_use false true) then
      (* Nested call (or a concurrent caller): run inline. *)
      f 0 n
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set t.in_use false)
        (fun () ->
          let chunk, nchunks = chunk_bounds ~n ~chunk in
          run_chunks t ~nchunks (fun c ->
              let lo = c * chunk in
              let hi = Stdlib.min n (lo + chunk) in
              f lo hi))
  end

let parallel_reduce t ?chunk ~n ~init ~map ~combine () =
  if n <= 0 then init
  else begin
    let chunk = match chunk with Some c -> c | None -> default_chunk n in
    let chunk, nchunks = chunk_bounds ~n ~chunk in
    let slots = Array.make nchunks None in
    parallel_for t ~chunk ~n (fun lo hi ->
        (* The parallel path hands chunk-aligned ranges; the sequential
           fallback hands [0, n).  Walking the grid inside the callback
           makes both produce one slot per grid chunk. *)
        let pos = ref lo in
        while !pos < hi do
          let e = Stdlib.min hi (!pos + chunk) in
          slots.(!pos / chunk) <- Some (map !pos e);
          pos := e
        done);
    let acc = ref init in
    Array.iter
      (function Some v -> acc := combine !acc v | None -> ())
      slots;
    !acc
  end
