(** A reusable multicore worker pool over OCaml 5 domains.

    The pool keeps [size - 1] worker domains parked on condition variables;
    the calling domain is the remaining lane.  Work is split on a chunk grid
    whose boundaries depend only on the problem size (never on the pool
    size), and {!parallel_reduce} combines chunk results in ascending chunk
    order — so every pool size, including 1, computes bit-identical results
    as long as the per-chunk work touches disjoint state.

    A pool of size 1 never spawns a domain and runs everything inline.
    Nested parallel calls on a busy pool degrade to inline execution rather
    than deadlocking, so library code can use the shared {!default} pool
    without coordinating with its callers.  Exceptions raised by chunk work
    are re-raised on the calling domain (remaining chunks are abandoned). *)

type t

val create : ?domains:int -> unit -> t
(** [create ()] sizes the pool from the [LBCC_DOMAINS] environment variable
    when set (clamped to [\[1, 128\]]), else
    [Domain.recommended_domain_count ()].  [?domains] overrides both. *)

val size : t -> int
(** Total lanes, including the calling domain.  [size t = 1] means fully
    sequential. *)

val shutdown : t -> unit
(** Joins the worker domains.  The pool must not be used afterwards. *)

val default : unit -> t
(** The process-wide shared pool, created on first use and joined in an
    [at_exit] hook. *)

val set_default_domains : int -> unit
(** Replace the default pool with one of exactly [d] lanes (shutting the old
    one down).  Used by the determinism test suite and the [--domains] CLI
    flag to replay runs at several lane counts.
    @raise Invalid_argument when [d < 1]. *)

val parallel_for : t -> ?chunk:int -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for t ~n f] calls [f lo hi] over subranges covering [0, n).
    Ranges on the parallel path are chunk-grid aligned ([?chunk] elements
    each, default [max 1 (ceil (n / 64))]); the sequential fallback calls
    [f 0 n] once.  [f] must write disjoint state per index — under that
    contract results are identical for every pool size and schedule. *)

val parallel_reduce :
  t ->
  ?chunk:int ->
  n:int ->
  init:'a ->
  map:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  unit ->
  'a
(** [parallel_reduce t ~n ~init ~map ~combine ()] maps every grid chunk
    [\[lo, hi)] with [map] and folds the chunk results with [combine] in
    ascending chunk order — deterministic for every pool size even when
    [combine] is not associative in floating point. *)
