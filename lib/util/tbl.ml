(* Deterministic views of Hashtbl.

   [Hashtbl.iter]/[Hashtbl.fold] enumerate in hash-bucket order, which is
   not a stable public contract: it varies with the table's growth history
   and may change between compiler releases.  Protocol code must not
   observe it (lbcc-lint rule det-unordered-hashtbl), so every enumeration
   goes through one of these helpers, which impose a total order on the
   keys.  The sort is O(n log n) over the bindings — all call sites are on
   cold paths (result assembly, diagnostics), never in the superstep loop. *)

let sorted_bindings ~compare tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)

let sorted_keys ~compare tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let iter_sorted ~compare f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~compare tbl)

let fold_sorted ~compare f tbl init =
  List.fold_left
    (fun acc (k, v) -> f k v acc)
    init
    (sorted_bindings ~compare tbl)
