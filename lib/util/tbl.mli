(** Deterministic views of [Hashtbl].

    [Hashtbl.iter]/[Hashtbl.fold] enumerate in hash-bucket order, which is
    not a stable public contract.  Protocol code must not observe it
    (lbcc-lint rule [det-unordered-hashtbl]); these helpers impose a total
    key order instead.  O(n log n) over the bindings — meant for result
    assembly and diagnostics, not the superstep hot loop. *)

val sorted_bindings :
  compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key under [compare].  With duplicate keys
    (via [Hashtbl.add]) the relative order of equal keys is unspecified. *)

val sorted_keys : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** All keys (with multiplicity), sorted under [compare]. *)

val iter_sorted :
  compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted ~compare f tbl] applies [f] to each binding in ascending
    key order. *)

val fold_sorted :
  compare:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** [fold_sorted ~compare f tbl init] folds over bindings in ascending key
    order. *)
