module Graph = Lbcc_graph.Graph
module Spanner = Lbcc_spanner.Spanner

type result = {
  bundle : int list;
  rejected : int list;
  orientations : (int * int * int) list;
  rounds : int;
}

let run ?accountant ~prng ~graph ~p ~k ~t () =
  if t < 1 then invalid_arg "Bundle.run: t must be >= 1";
  let m = Graph.m graph in
  if Array.length p <> m then invalid_arg "Bundle.run: p has wrong length";
  let alive = Array.make m true in
  let bundle = ref [] and rejected = ref [] and orientations = ref [] in
  let rounds = ref 0 in
  for _i = 1 to t do
    (* Restrict to edges not yet decided by earlier spanners of the bundle. *)
    let ids =
      List.filter (fun e -> alive.(e)) (List.init m Fun.id)
    in
    let sub = Graph.sub_edges graph ids in
    let idx = Array.of_list ids in
    let sub_p = Array.map (fun e -> p.(e)) idx in
    let r = Spanner.run ?accountant ~prng ~graph:sub ~p:sub_p ~k () in
    rounds := !rounds + r.Spanner.rounds;
    List.iteri
      (fun pos e ->
        let orig = idx.(e) in
        alive.(orig) <- false;
        bundle := orig :: !bundle;
        let from_, to_ = r.Spanner.orientation.(pos) in
        orientations := (orig, from_, to_) :: !orientations)
      r.Spanner.fplus;
    List.iter
      (fun e ->
        let orig = idx.(e) in
        alive.(orig) <- false;
        rejected := orig :: !rejected)
      r.Spanner.fminus
  done;
  {
    bundle = List.sort Int.compare !bundle;
    rejected = List.sort Int.compare !rejected;
    orientations = !orientations;
    rounds = !rounds;
  }
