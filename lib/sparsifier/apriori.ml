open Lbcc_util
module Graph = Lbcc_graph.Graph

type result = {
  sparsifier : Graph.t;
  edge_origin : int array;
  bundle_sizes : int list;
}

let run ?k ?t ?t_scale ?iterations ~prng ~graph ~epsilon () =
  if epsilon <= 0.0 then invalid_arg "Apriori.run: epsilon must be positive";
  let n = Graph.n graph and m = Graph.m graph in
  if n = 0 then invalid_arg "Apriori.run: empty graph";
  let k = match k with Some k -> k | None -> Sparsify.default_k ~n in
  let t =
    match t with Some t -> t | None -> Sparsify.default_t ?t_scale ~n ~epsilon ()
  in
  let iterations =
    match iterations with Some i -> i | None -> Sparsify.default_iterations ~m
  in
  let weight = Array.map (fun (e : Graph.edge) -> e.w) (Graph.edges graph) in
  (* E_i as a list of original edge ids currently present. *)
  let current = ref (List.init m Fun.id) in
  let bundle_sizes = ref [] in
  for _i = 1 to iterations do
    let idx = Array.of_list !current in
    let edges =
      Array.map
        (fun e ->
          let ed = Graph.edge graph e in
          { ed with Graph.w = weight.(e) })
        idx
    in
    let sub = Graph.of_edge_array ~n edges in
    let p = Array.make (Array.length idx) 1.0 in
    let b = Bundle.run ~prng ~graph:sub ~p ~k ~t () in
    let bundle = List.map (fun e -> idx.(e)) b.Bundle.bundle in
    assert (b.Bundle.rejected = []);
    let in_bundle = Hashtbl.create (List.length bundle) in
    List.iter (fun e -> Hashtbl.replace in_bundle e ()) bundle;
    bundle_sizes := List.length bundle :: !bundle_sizes;
    (* E_i := B_i ∪ {each remaining edge independently w.p. 1/4, reweighted}. *)
    let next = ref bundle in
    List.iter
      (fun e ->
        if not (Hashtbl.mem in_bundle e) then
          if Prng.bernoulli prng 0.25 then begin
            weight.(e) <- weight.(e) *. 4.0;
            next := e :: !next
          end)
      !current;
    current := List.sort Int.compare !next
  done;
  (* Algorithm 4 returns E_{⌈log m⌉} = B_last ∪ the edges sampled alive in
     the last iteration. *)
  let edge_origin = Array.of_list (List.sort Int.compare !current) in
  let edges =
    Array.map
      (fun e ->
        let ed = Graph.edge graph e in
        { ed with Graph.w = weight.(e) })
      edge_origin
  in
  {
    sparsifier = Graph.of_edge_array ~n edges;
    edge_origin;
    bundle_sizes = List.rev !bundle_sizes;
  }
