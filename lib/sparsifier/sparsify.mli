(** Spectral sparsification in the Broadcast CONGEST model
    (Algorithm 5, [SpectralSparsify]; Theorem 1.2).

    Repeatedly computes t-bundle spanners with ad-hoc ("on the fly") edge
    sampling, quartering the survival probability and quadrupling the weight
    of every surviving non-bundle edge, and finally samples the leftover
    probabilistic edges locally at the lower-id endpoint.

    Parameters default to the paper's asymptotic settings
    ([k = ceil(log2 n)], [iterations = ceil(log2 m)]) with the bundle size
    [t = t_scale * log2(n)^2 / eps^2] exposed through [t_scale]: the paper's
    constant 400 certifies the w.h.p. guarantee but produces sparsifiers
    denser than any feasible input; experiments certify quality a posteriori
    with {!Certify} instead (see DESIGN.md, substitution 3). *)

open Lbcc_util
module Graph = Lbcc_graph.Graph

type result = {
  sparsifier : Graph.t;
      (** the reweighted subgraph [H]; edge ids are fresh *)
  edge_origin : int array;
      (** original edge id of each sparsifier edge *)
  orientation : (int * int) array;
      (** per sparsifier edge, [(from, to)] with the edge charged to [from]
          (Theorem 1.2's bounded out-degree orientation) *)
  rounds : int;  (** Broadcast CONGEST rounds charged *)
  bundle_sizes : int list;  (** bundle size per iteration *)
  final_sampled : int;  (** leftover probabilistic edges kept at the end *)
}

val default_k : n:int -> int
val default_iterations : m:int -> int
val default_t : ?t_scale:float -> n:int -> epsilon:float -> unit -> int

val run :
  ?accountant:Lbcc_net.Rounds.t ->
  ?k:int ->
  ?t:int ->
  ?t_scale:float ->
  ?iterations:int ->
  prng:Prng.t ->
  graph:Graph.t ->
  epsilon:float ->
  unit ->
  result
(** A multigraph input (e.g. a {!Graph.Delta}-accumulated graph where an
    insert duplicated an endpoint pair) is coalesced first; [edge_origin]
    then refers to the coalesced graph's edge ids.  Simple inputs are
    untouched, bit-identically.
    @raise Invalid_argument on non-positive [epsilon] or an empty graph. *)

val out_degrees : result -> int array
(** Out-degree profile of the orientation, indexed by vertex. *)

(** {2 Incremental sketches}

    A {!sketch} maintains a spectral sparsifier of a mutating graph.
    {!update} applies a {!Graph.Delta}: sketch edges whose endpoints are
    untouched by the delta pass through verbatim, while the delta's vertex
    neighborhoods — the bundles the changed edges lived in — are
    re-sparsified from the exact accumulated edges.  For a small delta the
    hit region is [O(|delta| * avg_degree)] edges, so the update costs far
    fewer broadcast rounds than re-running {!run} on the whole graph.
    Pass-through errors compose multiplicatively across generations (the
    Kyng–Pachocki–Peng–Sachdeva resparsification regime behind Thm 3.4);
    callers certify quality a posteriori with {!Certify} against
    [sketch.base], exactly as the static pipeline does. *)

type sketch = {
  base : Graph.t;  (** the accumulated (post-delta) graph *)
  sparsifier : Graph.t;  (** current spectral sketch of [base] *)
  epsilon : float;  (** target quality per (re-)sampling step *)
  generation : int;  (** number of updates applied *)
  resampled : int;  (** accumulated edges fed to the last re-sampling *)
  passed : int;  (** sketch edges passed through untouched last update *)
  last_rounds : int;  (** rounds charged by the last build/update *)
  total_rounds : int;  (** rounds charged across the sketch's life *)
}

val sketch :
  ?accountant:Lbcc_net.Rounds.t ->
  ?k:int ->
  ?t:int ->
  ?t_scale:float ->
  prng:Prng.t ->
  graph:Graph.t ->
  epsilon:float ->
  unit ->
  sketch
(** Build the initial sketch with {!run}. *)

val update :
  ?accountant:Lbcc_net.Rounds.t ->
  ?k:int ->
  ?t:int ->
  ?t_scale:float ->
  prng:Prng.t ->
  sketch ->
  Graph.Delta.t ->
  sketch
(** Apply one delta.  Charges, under phase [update]: the delta announcement
    broadcasts ([update/delta/announce], one op per superstep from the
    busiest announcing vertex) and a {!run} over the coalesced hit region
    ([update/sparsify/*]).  A pure function of [(sketch, delta, prng)] —
    bit-identical at any domain count.
    @raise Invalid_argument if the delta references an edge id [>= m] of
    [sketch.base]. *)

val resparsify :
  ?accountant:Lbcc_net.Rounds.t ->
  ?k:int ->
  ?t:int ->
  ?t_scale:float ->
  prng:Lbcc_util.Prng.t ->
  graphs:Graph.t list ->
  epsilon:float ->
  unit ->
  result
(** Resparsification (the Kyng–Pachocki–Peng–Sachdeva framework behind
    Theorem 3.4): sparsify the edge union of several (reweighted)
    sparsifiers over the same vertex set — e.g. to maintain a sparsifier of
    a growing graph by periodically re-sparsifying [old sparsifier ∪ new
    edges].  Errors compose multiplicatively: if each input is a
    [(1±eps_i)]-sparsifier of its graph and the output a
    [(1±eps)]-sparsifier of the union, the result approximates the union
    of the originals within [(1±eps) * prod (1±eps_i)].
    @raise Invalid_argument on an empty list or mismatched vertex sets. *)
