open Lbcc_util
module Graph = Lbcc_graph.Graph
module Rounds = Lbcc_net.Rounds
module Model = Lbcc_net.Model
module Payload = Lbcc_net.Payload

type result = {
  sparsifier : Graph.t;
  edge_origin : int array;
  orientation : (int * int) array;
  rounds : int;
  bundle_sizes : int list;
  final_sampled : int;
}

let default_k ~n = Stdlib.max 1 (Bits.ceil_log2 (Stdlib.max 2 n))

let default_iterations ~m = Stdlib.max 1 (Bits.ceil_log2 (Stdlib.max 2 m))

let default_t ?t_scale ~n ~epsilon () =
  let t_scale = Option.value ~default:0.05 t_scale in
  let logn = float_of_int (Bits.ceil_log2 (Stdlib.max 2 n)) in
  Stdlib.max 1 (int_of_float (Float.ceil (t_scale *. logn *. logn /. (epsilon *. epsilon))))

(* Delta-accumulated graphs are multigraphs (an insert may duplicate an
   existing endpoint pair), and the spanner machinery requires simple
   graphs.  Coalesce only when parallel edges are actually present, so the
   static pipeline's behaviour on simple inputs stays bit-identical;
   [edge_origin] then refers to the coalesced graph's edge ids. *)
let has_parallel_edges g =
  let seen = Hashtbl.create (2 * Graph.m g) in
  Array.exists
    (fun (e : Graph.edge) ->
      let key = (Stdlib.min e.u e.v, Stdlib.max e.u e.v) in
      Hashtbl.mem seen key || (Hashtbl.add seen key (); false))
    (Graph.edges g)

let run ?accountant ?k ?t ?t_scale ?iterations ~prng ~graph ~epsilon () =
  if epsilon <= 0.0 then invalid_arg "Sparsify.run: epsilon must be positive";
  let graph = if has_parallel_edges graph then Graph.coalesce graph else graph in
  let n = Graph.n graph and m = Graph.m graph in
  if n = 0 then invalid_arg "Sparsify.run: empty graph";
  let acc =
    match accountant with
    | Some a -> a
    | None -> Rounds.create ~bandwidth:(Model.bandwidth ~n)
  in
  let start_rounds = Rounds.checkpoint acc in
  Rounds.with_phase acc "sparsify" @@ fun () ->
  let k = match k with Some k -> k | None -> default_k ~n in
  let t = match t with Some t -> t | None -> default_t ?t_scale ~n ~epsilon () in
  let iterations =
    match iterations with Some i -> i | None -> default_iterations ~m
  in
  (* Mutable per-edge state over original edge ids. *)
  let weight = Array.map (fun (e : Graph.edge) -> e.w) (Graph.edges graph) in
  let p = Array.make m 1.0 in
  let alive = Array.make m true in
  let in_last_bundle = Array.make m false in
  let orientation_tbl = Hashtbl.create 64 in
  let bundle_sizes = ref [] in
  for _i = 1 to iterations do
    let ids = List.filter (fun e -> alive.(e)) (List.init m Fun.id) in
    let idx = Array.of_list ids in
    let edges =
      Array.map
        (fun e ->
          let ed = Graph.edge graph e in
          { ed with Graph.w = weight.(e) })
        idx
    in
    let sub = Graph.of_edge_array ~n edges in
    let sub_p = Array.map (fun e -> p.(e)) idx in
    let b = Bundle.run ?accountant:(Some acc) ~prng ~graph:sub ~p:sub_p ~k ~t () in
    Array.fill in_last_bundle 0 m false;
    List.iter
      (fun e ->
        let orig = idx.(e) in
        in_last_bundle.(orig) <- true;
        p.(orig) <- 1.0)
      b.Bundle.bundle;
    List.iter
      (fun (e, from_, to_) ->
        let orig = idx.(e) in
        if not (Hashtbl.mem orientation_tbl orig) then
          Hashtbl.replace orientation_tbl orig (from_, to_))
      b.Bundle.orientations;
    List.iter (fun e -> alive.(idx.(e)) <- false) b.Bundle.rejected;
    bundle_sizes := List.length b.Bundle.bundle :: !bundle_sizes;
    (* Surviving non-bundle edges: quarter the probability, quadruple the
       weight (lines 8-10 of Algorithm 5). *)
    Array.iter
      (fun orig ->
        if alive.(orig) && not (in_last_bundle.(orig)) then begin
          p.(orig) <- p.(orig) /. 4.0;
          weight.(orig) <- weight.(orig) *. 4.0
        end)
      idx
  done;
  (* Final step (lines 11-15): keep the last bundle; sample each remaining
     probabilistic edge at its lower-id endpoint and broadcast additions. *)
  let kept = ref [] in
  let final_sampled = ref 0 in
  let adds_per_vertex = Array.make n 0 in
  for e = m - 1 downto 0 do
    if alive.(e) then begin
      if in_last_bundle.(e) then kept := e :: !kept
      else begin
        let ed = Graph.edge graph e in
        let lower = Stdlib.min ed.u ed.v and higher = Stdlib.max ed.u ed.v in
        if Prng.bernoulli prng p.(e) then begin
          kept := e :: !kept;
          incr final_sampled;
          adds_per_vertex.(lower) <- adds_per_vertex.(lower) + 1;
          (* Orientation of sampled leftovers: towards the higher id. *)
          if not (Hashtbl.mem orientation_tbl e) then
            Hashtbl.replace orientation_tbl e (lower, higher)
        end
      end
    end
  done;
  (* Charge the announcement supersteps: every vertex broadcasts its kept
     leftover edges one per superstep; lockstep cost is the longest list. *)
  let max_adds = Array.fold_left Stdlib.max 0 adds_per_vertex in
  let msg_bits =
    Payload.size [ Vertex_id n; Vertex_id n; Weight (Array.fold_left Float.max 1.0 weight) ]
  in
  for _ = 1 to max_adds do
    Rounds.charge_broadcast acc ~label:"sparsifier-final-sampling" ~bits:msg_bits
  done;
  let kept = !kept in
  let edge_origin = Array.of_list kept in
  let edges =
    Array.map
      (fun e ->
        let ed = Graph.edge graph e in
        { ed with Graph.w = weight.(e) })
      edge_origin
  in
  let sparsifier = Graph.of_edge_array ~n edges in
  let orientation =
    Array.map
      (fun e ->
        match Hashtbl.find_opt orientation_tbl e with
        | Some o -> o
        | None ->
            let ed = Graph.edge graph e in
            (Stdlib.min ed.u ed.v, Stdlib.max ed.u ed.v))
      edge_origin
  in
  {
    sparsifier;
    edge_origin;
    orientation;
    rounds = Rounds.checkpoint acc - start_rounds;
    bundle_sizes = List.rev !bundle_sizes;
    final_sampled = !final_sampled;
  }

let out_degrees result =
  let deg = Array.make (Graph.n result.sparsifier) 0 in
  Array.iter (fun (from_, _) -> deg.(from_) <- deg.(from_) + 1) result.orientation;
  deg

(* Incremental sketches ------------------------------------------------- *)

type sketch = {
  base : Graph.t;
  sparsifier : Graph.t;
  epsilon : float;
  generation : int;
  resampled : int;
  passed : int;
  last_rounds : int;
  total_rounds : int;
}

let sketch ?accountant ?k ?t ?t_scale ~prng ~graph ~epsilon () =
  let r = run ?accountant ?k ?t ?t_scale ~prng ~graph ~epsilon () in
  {
    base = graph;
    sparsifier = r.sparsifier;
    epsilon;
    generation = 0;
    resampled = Graph.m r.sparsifier;
    passed = 0;
    last_rounds = r.rounds;
    total_rounds = r.rounds;
  }

let update ?accountant ?k ?t ?t_scale ~prng sk delta =
  let n = Graph.n sk.base in
  if Graph.Delta.is_empty delta then
    {
      sk with
      generation = sk.generation + 1;
      resampled = 0;
      passed = Graph.m sk.sparsifier;
      last_rounds = 0;
    }
  else begin
    let acc =
      match accountant with
      | Some a -> a
      | None -> Rounds.create ~bandwidth:(Model.bandwidth ~n)
    in
    let start = Rounds.checkpoint acc in
    Rounds.with_phase acc "update" @@ fun () ->
    (* The delta is known only to the endpoints that own its edges; announce
       it first so every vertex can re-run the hit-region sampling locally.
       Each op is broadcast by the lower endpoint of the edge it names, one
       op per superstep — lockstep cost is the busiest announcer. *)
    let touched = Graph.delta_touched sk.base delta in
    let ops_per_vertex = Array.make n 0 in
    let announce u v =
      let lower = Stdlib.min u v in
      ops_per_vertex.(lower) <- ops_per_vertex.(lower) + 1
    in
    Array.iter
      (fun (e : Graph.edge) -> announce e.u e.v)
      (Graph.Delta.inserts delta);
    Array.iter
      (fun id ->
        let e = Graph.edge sk.base id in
        announce e.u e.v)
      (Graph.Delta.deletes delta);
    Array.iter
      (fun (id, _) ->
        let e = Graph.edge sk.base id in
        announce e.u e.v)
      (Graph.Delta.reweights delta);
    let max_ops = Array.fold_left Stdlib.max 0 ops_per_vertex in
    let msg_bits =
      Payload.size
        [
          Vertex_id n;
          Vertex_id n;
          Weight (Float.max 1.0 (Graph.max_weight sk.base));
        ]
    in
    Rounds.with_phase acc "delta" (fun () ->
        for _ = 1 to max_ops do
          Rounds.charge_broadcast acc ~label:"announce" ~bits:msg_bits
        done);
    let base' = Graph.apply sk.base delta in
    (* Split by the delta's vertex neighborhoods: sketch edges with both
       endpoints untouched pass through verbatim (the old sketch still
       approximates that region); everything incident to a touched vertex is
       re-sparsified from the exact accumulated edges, so deletes and
       reweights need no per-edge origin bookkeeping — the whole hit region
       is rebuilt from ground truth.  Errors on the pass-through part
       compose multiplicatively across generations (the KPPS
       resparsification regime); quality is certified a posteriori against
       [base]. *)
    let passed = ref [] and n_passed = ref 0 in
    Array.iter
      (fun (e : Graph.edge) ->
        if not (touched.(e.u) || touched.(e.v)) then begin
          passed := e :: !passed;
          incr n_passed
        end)
      (Graph.edges sk.sparsifier);
    let hit = ref [] and n_hit = ref 0 in
    Array.iter
      (fun (e : Graph.edge) ->
        if touched.(e.u) || touched.(e.v) then begin
          hit := e :: !hit;
          incr n_hit
        end)
      (Graph.edges base');
    let resampled_edges =
      if !n_hit = 0 then [||]
      else
        let pool = Graph.coalesce (Graph.create ~n (List.rev !hit)) in
        let r =
          run ~accountant:acc ?k ?t ?t_scale ~prng ~graph:pool
            ~epsilon:sk.epsilon ()
        in
        Graph.edges r.sparsifier
    in
    let sparsifier =
      Graph.of_edge_array ~n
        (Array.append (Array.of_list (List.rev !passed)) resampled_edges)
    in
    (* Safety valve: a sketch that disconnects a still-connected base is a
       certification failure waiting to happen (and would break downstream
       preconditioner factorization), so rebuild from ground truth.  The
       check and the fallback are both deterministic. *)
    let sparsifier =
      if Graph.is_connected base' && not (Graph.is_connected sparsifier) then
        (run ~accountant:acc ?k ?t ?t_scale ~prng ~graph:base'
           ~epsilon:sk.epsilon ())
          .sparsifier
      else sparsifier
    in
    let rounds = Rounds.checkpoint acc - start in
    {
      base = base';
      sparsifier;
      epsilon = sk.epsilon;
      generation = sk.generation + 1;
      resampled = !n_hit;
      passed = !n_passed;
      last_rounds = rounds;
      total_rounds = sk.total_rounds + rounds;
    }
  end

let resparsify ?accountant ?k ?t ?t_scale ~prng ~graphs ~epsilon () =
  match graphs with
  | [] -> invalid_arg "Sparsify.resparsify: empty graph list"
  | first :: rest ->
      (* Coalesce parallel edges of the union: Laplacians add, so merging
         is spectrally exact, and the spanner assumes simple graphs. *)
      let union = Graph.coalesce (List.fold_left Graph.union first rest) in
      run ?accountant ?k ?t ?t_scale ~prng ~graph:union ~epsilon ()
