(** Minimum-cost maximum flow through the LP solver (Section 5;
    Theorem 1.1).

    The LP (Daitch–Spielman / Lee–Sidford form): variables
    [(x, y, z, F)] with [x] the arc flows, [y, z] conservation slacks,
    [F] the flow value, constraint [B x + y - z = F e_t] over the vertices
    other than the source, costs [q~^T x + lambda (1^T y + 1^T z) - 2 n M~ F]
    where [q~] is the uniqueness perturbation of the arc costs.

    Constant calibration (DESIGN.md, substitution 5): the paper's
    [lambda = 440 |E|^4 M~^2 M^3] overflows double precision for any
    nontrivial instance; we expose the penalty/reward scales and default
    them to values that preserve the argument's inequalities
    ([lambda > 2 n M~ >> E M]) at laptop scale.  Exactness is certified
    against {!Mcmf.solve} rather than assumed. *)

open Lbcc_util
module Vec = Lbcc_linalg.Vec
module Problem = Lbcc_lp.Problem

type constants = {
  mtilde_c : float;  (** [M~ = mtilde_c * E^2 * M^3]; paper: 8 *)
  lambda_c : float;  (** [lambda = lambda_c * n * M~ * M]; paper form differs, see above *)
  perturb : bool;  (** apply the uniqueness perturbation to costs *)
}

val default_constants : constants

type instance = {
  net : Network.t;
  problem : Problem.t;
  x0 : Vec.t;  (** the paper's explicit interior point *)
  qtilde : Vec.t;  (** perturbed arc costs *)
  n_lp : int;
  m_lp : int;
}

val build : ?constants:constants -> prng:Prng.t -> Network.t -> instance

val column_of_vertex : instance -> int -> int
(** LP column of a non-source vertex.
    @raise Invalid_argument for the source. *)

val laplacian_normal_solver :
  ?accountant:Lbcc_net.Rounds.t ->
  ?backend:[ `Direct | `Gremban ] ->
  instance ->
  Problem.normal_solver
(** Lemma 5.1: assemble [A^T D A = B D1 B^T + D2 + D3 + e_t D4 e_t^T]
    locally (it is SDD with nonpositive off-diagonals) and solve it, charged
    the [T(n,m) = O~(log M)] rounds of the theorem.  [`Gremban] performs the
    paper's reduction to a Laplacian on the doubled virtual graph;
    [`Direct] (default) factors the SDD matrix itself, which is the same
    system but numerically robust to the extreme diagonal ranges of late
    IPM iterates (the doubling squares the conditioning gap).

    The returned operator is {e prepared}: its normal-matrix and diagonal
    workspaces are allocated once here and reused by every solve, and it
    must therefore be driven sequentially (the IPM does). *)

val extract : instance -> Vec.t -> float array * float
(** [(arc flows, F)] components of an LP point. *)

val round_flow : instance -> Vec.t -> float array
(** The paper's rounding: damp by [(1 - eps-hat)] and round each arc flow
    to the nearest integer. *)

type solve_result = {
  flow : float array;
  value : int;
  cost : int;
  feasible : bool;  (** rounded flow satisfies conservation + capacities *)
  matches_baseline : bool;  (** equals SSP's optimal value and cost *)
  iterations : int;  (** IPM progress steps *)
  rounds : int;  (** total rounds charged *)
  lp_objective : float;
}

val solve :
  ?accountant:Lbcc_net.Rounds.t ->
  ?config:Lbcc_lp.Ipm.config ->
  ?constants:constants ->
  ?eps:float ->
  prng:Prng.t ->
  Network.t ->
  solve_result
(** End-to-end Theorem 1.1: build the LP, run [LPSolve] with the
    Laplacian-backed normal solver, round, validate, and compare with the
    combinatorial baseline.  Accounting follows the prepare/query split:
    one [mcmf/prepare/*] phase (instance broadcast + operator setup) paid
    before the IPM starts, then [mcmf/ipm/query/normal-solve] charges per
    iteration. *)
