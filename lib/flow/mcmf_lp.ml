open Lbcc_util
module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense
module Sparse = Lbcc_linalg.Sparse
module Rounds = Lbcc_net.Rounds
module Payload = Lbcc_net.Payload
module Problem = Lbcc_lp.Problem
module Ipm = Lbcc_lp.Ipm
module Gremban = Lbcc_laplacian.Gremban

type constants = {
  mtilde_c : float;
  lambda_c : float;
  perturb : bool;
}

let default_constants = { mtilde_c = 8.0; lambda_c = 16.0; perturb = true }

type instance = {
  net : Network.t;
  problem : Problem.t;
  x0 : Vec.t;
  qtilde : Vec.t;
  n_lp : int;
  m_lp : int;
}

let column_of_vertex_raw ~source v =
  if v = source then invalid_arg "Mcmf_lp: the source has no LP column"
  else if v < source then v
  else v - 1

let column_of_vertex inst v = column_of_vertex_raw ~source:inst.net.Network.source v

let build ?(constants = default_constants) ~prng (net : Network.t) =
  let nv = net.Network.n and ne = Network.m net in
  let source = net.Network.source and sink = net.Network.sink in
  let mm = float_of_int (Stdlib.max (Network.max_capacity net) (Network.max_cost net)) in
  let nef = float_of_int ne and nvf = float_of_int nv in
  let mtilde = constants.mtilde_c *. nef *. nef *. (mm ** 3.0) in
  let lambda = constants.lambda_c *. nvf *. mtilde *. mm in
  let n_lp = nv - 1 in
  let m_lp = ne + (2 * n_lp) + 1 in
  let col = column_of_vertex_raw ~source in
  (* A = [B I -I -e_t]^T: row e of A is the incidence column of arc e. *)
  let triplets = ref [] in
  Array.iteri
    (fun e (a : Network.arc) ->
      if a.dst <> source then triplets := (e, col a.dst, 1.0) :: !triplets;
      if a.src <> source then triplets := (e, col a.src, -1.0) :: !triplets)
    net.Network.arcs;
  for i = 0 to n_lp - 1 do
    triplets := (ne + i, i, 1.0) :: !triplets;
    triplets := (ne + n_lp + i, i, -1.0) :: !triplets
  done;
  triplets := (ne + (2 * n_lp), col sink, -1.0) :: !triplets;
  let a = Sparse.of_triplets ~rows:m_lp ~cols:n_lp !triplets in
  (* Perturbed costs: q~_e = q_e + i / (4 E^2 M^2), i uniform in [1, 2EM]. *)
  let denom = 4.0 *. nef *. nef *. mm *. mm in
  let qtilde =
    Array.map
      (fun (arc : Network.arc) ->
        let base = float_of_int arc.cost in
        if constants.perturb then
          base +. (float_of_int (1 + Prng.int prng (Stdlib.max 1 (int_of_float (2.0 *. nef *. mm)))) /. denom)
        else base)
      net.Network.arcs
  in
  let c_lp =
    Vec.init m_lp (fun i ->
        if i < ne then qtilde.(i)
        else if i < ne + (2 * n_lp) then lambda
        else -2.0 *. nvf *. mtilde)
  in
  let slack_hi = 4.0 *. nvf *. mm in
  let lo = Array.make m_lp 0.0 in
  let hi =
    Array.init m_lp (fun i ->
        if i < ne then float_of_int net.Network.arcs.(i).capacity
        else if i < ne + (2 * n_lp) then slack_hi
        else 2.0 *. nvf *. mm)
  in
  let problem = Problem.make ~a ~b:(Vec.zeros n_lp) ~c:c_lp ~lo ~hi in
  (* The explicit interior point of Section 5. *)
  let f0 = nvf *. mm in
  let bc2 = Vec.zeros n_lp in
  Array.iter
    (fun (arc : Network.arc) ->
      let half = float_of_int arc.capacity /. 2.0 in
      if arc.dst <> source then bc2.(col arc.dst) <- bc2.(col arc.dst) +. half;
      if arc.src <> source then bc2.(col arc.src) <- bc2.(col arc.src) -. half)
    net.Network.arcs;
  let x0 =
    Vec.init m_lp (fun i ->
        if i < ne then float_of_int net.Network.arcs.(i).capacity /. 2.0
        else if i < ne + n_lp then begin
          let v = i - ne in
          (2.0 *. nvf *. mm)
          -. Float.min 0.0 bc2.(v)
          +. (if v = col sink then f0 else 0.0)
        end
        else if i < ne + (2 * n_lp) then begin
          let v = i - ne - n_lp in
          (2.0 *. nvf *. mm) +. Float.max 0.0 bc2.(v)
        end
        else f0)
  in
  { net; problem; x0; qtilde; n_lp; m_lp }

(* Lemma 5.1: the normal matrix is SDD with nonpositive off-diagonals;
   assemble it over the non-source vertices.  Each call is charged the
   paper's T(n,m) = O~(log M).  [backend] selects how the SDD system is
   solved numerically: [`Gremban] doubles into a Laplacian exactly as the
   paper does (exercised by tests and the pipeline example); [`Direct]
   factors the SDD matrix itself — same system, but the doubling squares
   the conditioning gap of extreme IPM iterates, so the hot path uses the
   direct form (DESIGN.md, substitution 4). *)
let laplacian_normal_solver ?accountant ?(backend = `Direct) inst =
  let net = inst.net in
  let ne = Network.m net in
  let n_lp = inst.n_lp in
  let source = net.Network.source and sink = net.Network.sink in
  let col = column_of_vertex_raw ~source in
  ignore accountant;
  let bandwidth = Lbcc_net.Model.bandwidth ~n:net.Network.n in
  (* Declared per-call cost, charged by the caller (the IPM): one
     high-precision Laplacian solve on the doubled virtual graph —
     O(sqrt(3) log(1/eps)) Chebyshev iterations, each a vector exchange,
     doubled for the two simulated copies (Lemma 5.1). *)
  let declared_rounds =
    let iters = Lbcc_linalg.Chebyshev.iterations_bound ~kappa:3.0 ~eps:1e-9 in
    let per_iter = 2 * Stdlib.max 1 (Bits.ceil_div (Bits.float_bits ()) bandwidth) in
    iters * per_iter
  in
  (* Prepared workspaces, allocated once per operator and reused by every
     IPM iteration's solve: the normal-matrix buffer and the floored
     diagonal.  The IPM drives the solver sequentially, so reuse is safe. *)
  let m_mat = Dense.create n_lp n_lp in
  let d_floored = Array.make inst.m_lp 0.0 in
  let solve ~d ~rhs =
    (* Relative floor on the diagonal scaling: entries that underflow to
       zero (coordinates numerically on the boundary) would otherwise zero
       out a row of the normal matrix. *)
    let dmax = Array.fold_left Float.max 0.0 d in
    let floor_v = 1e-120 *. Float.max dmax 1e-300 in
    Array.iteri (fun i x -> d_floored.(i) <- Float.max x floor_v) d;
    let d = d_floored in
    Dense.fill m_mat 0.0;
    (* B D1 B^T *)
    Array.iteri
      (fun e (arc : Network.arc) ->
        let d1 = d.(e) in
        let cu = if arc.src <> source then Some (col arc.src) else None in
        let cv = if arc.dst <> source then Some (col arc.dst) else None in
        (match cu with Some u -> Dense.add_entry m_mat u u d1 | None -> ());
        (match cv with Some v -> Dense.add_entry m_mat v v d1 | None -> ());
        match (cu, cv) with
        | Some u, Some v ->
            Dense.add_entry m_mat u v (-.d1);
            Dense.add_entry m_mat v u (-.d1)
        | _ -> ())
      net.Network.arcs;
    (* D2 + D3 *)
    for i = 0 to n_lp - 1 do
      Dense.add_entry m_mat i i (d.(ne + i) +. d.(ne + n_lp + i))
    done;
    (* e_t D4 e_t^T *)
    Dense.add_entry m_mat (col sink) (col sink) d.(ne + (2 * n_lp));
    (* One step of iterative refinement: the IPM hands us normal matrices
       whose entries span ~30 orders of magnitude, where a single solve
       loses digits the path following cannot afford. *)
    let solve_once =
      match backend with
      | `Gremban -> Gremban.solve m_mat
      | `Direct ->
          let f = Dense.factorize m_mat in
          Dense.solve_factored f
    in
    let s = solve_once rhs in
    let resid = Vec.sub rhs (Dense.matvec m_mat s) in
    if Vec.norm2 resid > 1e-12 *. Float.max 1.0 (Vec.norm2 rhs) then
      Vec.add s (solve_once resid)
    else s
  in
  { Problem.solve; rounds = declared_rounds }

let extract inst v =
  let ne = Network.m inst.net in
  (Array.sub v 0 ne, v.(inst.m_lp - 1))

let round_flow inst v =
  let flows, _ = extract inst v in
  let ne = Network.m inst.net in
  let mm =
    float_of_int
      (Stdlib.max (Network.max_capacity inst.net) (Network.max_cost inst.net))
  in
  let nef = float_of_int ne in
  let mtilde = 8.0 *. nef *. nef *. (mm ** 3.0) in
  let eps_hat = 1.0 /. (40.0 *. nef *. nef *. mtilde *. mm) in
  Array.map (fun fe -> Float.round ((1.0 -. eps_hat) *. fe)) flows

type solve_result = {
  flow : float array;
  value : int;
  cost : int;
  feasible : bool;
  matches_baseline : bool;
  iterations : int;
  rounds : int;
  lp_objective : float;
}

(* One-time instance broadcast: every vertex announces its incident arcs
   (endpoints, capacity, perturbed cost) so the LP instance is globally
   known before the IPM starts; the superstep costs the largest per-vertex
   message.  Charged once under "prepare/flow-instance". *)
let charge_instance acc (net : Network.t) =
  let nv = net.Network.n in
  let out_deg = Array.make nv 0 in
  Array.iter
    (fun (a : Network.arc) -> out_deg.(a.src) <- out_deg.(a.src) + 1)
    net.Network.arcs;
  let max_deg = Array.fold_left Stdlib.max 1 out_deg in
  let arc_bits =
    Payload.size
      [
        Payload.Vertex_id nv;
        Payload.Vertex_id nv;
        Payload.Int (Network.max_capacity net);
        Payload.Int (Network.max_cost net);
      ]
  in
  Rounds.charge_vector acc ~entries:max_deg ~label:"flow-instance"
    ~entry_bits:arc_bits

let solve ?accountant ?(config = Ipm.default_config) ?constants ?eps ~prng net =
  let acc =
    match accountant with
    | Some a -> a
    | None ->
        Rounds.create ~bandwidth:(Lbcc_net.Model.bandwidth ~n:net.Network.n)
  in
  Rounds.with_phase acc "mcmf" @@ fun () ->
  (* Prepare phase, paid once: build the LP instance, broadcast it, and set
     up the normal-operator workspaces.  Every IPM iteration afterwards
     charges only query-phase normal solves. *)
  let inst, solver =
    Rounds.with_phase acc "prepare" @@ fun () ->
    let inst = build ?constants ~prng net in
    charge_instance acc net;
    (inst, laplacian_normal_solver ~accountant:acc inst)
  in
  let mm =
    float_of_int (Stdlib.max (Network.max_capacity net) (Network.max_cost net))
  in
  let eps = match eps with Some e -> e | None -> 1.0 /. (12.0 *. mm) in
  let x_lp, trace =
    Ipm.lp_solve ~accountant:acc ~config ~prng ~problem:inst.problem ~solver
      ~x0:inst.x0 ~eps ()
  in
  let flow = round_flow inst x_lp in
  let feasible = Network.is_flow net flow in
  let value = int_of_float (Network.flow_value net flow) in
  let cost = int_of_float (Network.flow_cost net flow) in
  let baseline = Mcmf.solve net in
  let matches_baseline =
    feasible && value = baseline.Mcmf.value && cost = baseline.Mcmf.cost
  in
  {
    flow;
    value;
    cost;
    feasible;
    matches_baseline;
    iterations = trace.Ipm.iterations;
    rounds = Rounds.rounds acc;
    lp_objective = Problem.objective inst.problem x_lp;
  }
