open Lbcc_util
module Vec = Lbcc_linalg.Vec
module Chebyshev = Lbcc_linalg.Chebyshev
module Cg = Lbcc_linalg.Cg
module Graph = Lbcc_graph.Graph
module Rounds = Lbcc_net.Rounds
module Model = Lbcc_net.Model
module Sparsify = Lbcc_sparsifier.Sparsify
module Certify = Lbcc_sparsifier.Certify

(* The vertex-internal preconditioner solve in B = lambda_max * L_H.  [P_lu]
   is the historical dense LU factorization — exact, O(n^3) to build and
   O(n^2) memory, fine up to a few thousand vertices.  [P_cg] solves each
   B z = r on demand by Jacobi-preconditioned CG over the *sparse* L_H to a
   tolerance far below the outer Chebyshev accuracy, so it is exact for the
   outer iteration's purposes while needing only O(m_H) memory — the
   backend that makes the n = 8192 SCALE pipeline feasible.  Both operate
   on mean-centered right-hand sides (the Laplacian kernel is span(1)). *)
type precond =
  | P_lu of Exact.t
  | P_cg of { h : Graph.t; inv_diag : Vec.t; tol : float; max_iter : int }

type t = {
  graph : Graph.t;
  sparsifier : Graph.t;
  precond : precond;
  kappa : float;
  lambda_max : float; (* of the pencil (L_G, L_H): scale for the preconditioner *)
  preprocessing_rounds : int;
  bandwidth : int;
}

type solve_result = {
  solution : Vec.t;
  iterations : int;
  rounds : int;
  bits : int;
  residual : float;
}

type scratch = S_lu of Exact.t | S_cg
type workspace = { h_scratch : scratch; centered : Vec.t }

(* Jacobi inverse diagonal of L_H: 1 / weighted degree.  H is connected
   (the sparsifier preserves connectivity), so every degree is positive;
   the guard only covers degenerate single-vertex graphs. *)
let jacobi_inv_diag h =
  let d = Vec.zeros (Graph.n h) in
  Array.iter
    (fun (e : Graph.edge) ->
      d.(e.u) <- d.(e.u) +. e.w;
      d.(e.v) <- d.(e.v) +. e.w)
    (Graph.edges h);
  Vec.map (fun x -> if x > 0.0 then 1.0 /. x else 0.0) d

(* Nest [with_phase] for each label in order, so callers can relabel the
   accountant paths ("solve/preprocess" by default, "prepare" for the
   service layer) without touching the charges themselves. *)
let rec with_phases acc phases f =
  match phases with
  | [] -> f ()
  | p :: rest -> Rounds.with_phase acc p (fun () -> with_phases acc rest f)

let preprocess ?accountant ?(phases = [ "solve"; "preprocess" ]) ?t ?t_scale ?k
    ?certify ?(backend = `Lu) ?sparsifier ~prng ~graph () =
  if not (Graph.is_connected graph) then
    invalid_arg "Solver.preprocess: graph must be connected";
  let n = Graph.n graph in
  let bandwidth = Model.bandwidth ~n in
  let acc =
    match accountant with Some a -> a | None -> Rounds.create ~bandwidth
  in
  let start = Rounds.checkpoint acc in
  with_phases acc phases @@ fun () ->
  let h =
    match sparsifier with
    | Some h ->
        (* Externally maintained H (an incremental Sparsify.sketch): the
           caller already paid its broadcast rounds, so only the
           vertex-internal factor + certify steps remain here. *)
        if Graph.n h <> n then
          invalid_arg "Solver.preprocess: sparsifier vertex count mismatch";
        if not (Graph.is_connected h) then
          invalid_arg "Solver.preprocess: sparsifier must be connected";
        h
    | None ->
        (Sparsify.run ~accountant:acc ?t ?t_scale ?k ~prng ~graph
           ~epsilon:0.5 ())
          .Sparsify.sparsifier
  in
  (* The sparsifier preserves connectivity of the input (each bundle begins
     with a spanner of the surviving edges), so factoring cannot fail. *)
  let precond =
    match backend with
    | `Lu -> P_lu (Exact.factor h)
    | `Cg ->
        P_cg
          {
            h;
            inv_diag = jacobi_inv_diag h;
            tol = 1e-10;
            max_iter = 20 * Stdlib.max 1 n;
          }
  in
  let certify =
    match certify with
    | Some c -> c
    | None -> if n <= 400 then `Exact else `Power 60
  in
  let cert =
    match certify with
    | `Exact -> Certify.exact graph h
    | `Power iters -> Certify.power (Prng.split prng) graph h ~iters
    | `Probe s -> Certify.probe (Prng.split prng) graph h ~samples:s
  in
  (* Rescale the preconditioner so the pencil (L_G, B) has top eigenvalue
     exactly 1: B := lambda_max * L_H, kappa := lambda_max / lambda_min.
     (With the paper's eps_H = 1/2 this is the kappa = 3 of Cor. 2.4.)
     Power/probe certificates approximate the extremes from inside, so
     widen them before trusting A <= B. *)
  let margin = match certify with `Exact -> 1.0 | `Power _ | `Probe _ -> 1.15 in
  let lambda_min = Float.max (cert.Certify.lambda_min /. margin) 1e-12 in
  let lambda_max = Float.max (cert.Certify.lambda_max *. margin) lambda_min in
  let kappa = Float.max 1.0 (lambda_max /. lambda_min) *. 1.05 in
  {
    graph;
    sparsifier = h;
    precond;
    kappa;
    lambda_max;
    preprocessing_rounds = Rounds.checkpoint acc - start;
    bandwidth;
  }

let graph t = t.graph
let sparsifier t = t.sparsifier
let kappa t = t.kappa
let preprocessing_rounds t = t.preprocessing_rounds

let workspace t =
  {
    h_scratch =
      (match t.precond with
      | P_lu f -> S_lu (Exact.clone_scratch f)
      | P_cg _ -> S_cg);
    centered = Vec.zeros (Graph.n t.graph);
  }

let solve ?accountant ?(phases = [ "solve" ]) ?workspace t ~b ~eps =
  if eps <= 0.0 then invalid_arg "Solver.solve: eps must be positive";
  let ws =
    match workspace with
    | Some w ->
        if Vec.dim w.centered <> Graph.n t.graph then
          invalid_arg "Solver.solve: workspace dimension mismatch";
        w
    | None ->
        {
          h_scratch =
            (match t.precond with P_lu f -> S_lu f | P_cg _ -> S_cg);
          centered = Vec.zeros (Graph.n t.graph);
        }
  in
  let acc =
    match accountant with
    | Some a -> a
    | None -> Rounds.create ~bandwidth:t.bandwidth
  in
  let start = Rounds.checkpoint acc in
  let start_bits = Rounds.checkpoint_bits acc in
  with_phases acc phases @@ fun () ->
  (* Each Chebyshev iteration: one distributed L_G-matvec (a vector
     exchange: every vertex broadcasts its O(log(nU/eps))-bit coordinate)
     and one vertex-internal L_H solve (free). *)
  let matvec x =
    Rounds.charge_vector acc ~label:"laplacian-matvec" ~entry_bits:(Bits.float_bits ());
    Graph.apply_laplacian t.graph x
  in
  let matvec_into x y =
    Rounds.charge_vector acc ~label:"laplacian-matvec" ~entry_bits:(Bits.float_bits ());
    Graph.apply_laplacian_into t.graph x y
  in
  (* B = lambda_max * L_H; solving B z = r needs zero-sum r: residuals of
     Laplacian systems with zero-sum b stay zero-sum. *)
  let solve_b, solve_b_into =
    match (t.precond, ws.h_scratch) with
    | P_lu _, S_lu scratch ->
        ( (fun r ->
            Vec.scale (1.0 /. t.lambda_max)
              (Exact.solve scratch (Vec.mean_center r))),
          fun r z ->
            Vec.mean_center_into r ws.centered;
            Exact.solve_into scratch ws.centered z;
            Vec.scale_into (1.0 /. t.lambda_max) z z )
    | P_cg { h; inv_diag; tol; max_iter }, S_cg ->
        (* The preconditioner output is projected back onto the zero-sum
           space (Jacobi scaling leaves it), so CG never wanders along the
           Laplacian kernel; the inner tolerance is far below the outer
           Chebyshev accuracy, making the operator effectively exact and —
           crucially for determinism — a fixed function of its input. *)
        let matvec_h x = Graph.apply_laplacian h x in
        let matvec_h_into x y = Graph.apply_laplacian_into h x y in
        let precond x = Vec.mean_center (Vec.mul inv_diag x) in
        let precond_into x y =
          Vec.mul_into inv_diag x y;
          Vec.mean_center_into y y
        in
        let inner b =
          let r =
            Cg.solve_preconditioned ~max_iter ~tol ~matvec_into:matvec_h_into
              ~precond_into ~matvec:matvec_h ~precond ~b ()
          in
          r.Cg.solution
        in
        ( (fun r ->
            let sol = inner (Vec.mean_center r) in
            Vec.mean_center_into sol sol;
            Vec.scale (1.0 /. t.lambda_max) sol),
          fun r z ->
            Vec.mean_center_into r ws.centered;
            let sol = inner ws.centered in
            Vec.mean_center_into sol z;
            Vec.scale_into (1.0 /. t.lambda_max) z z )
    | P_lu _, S_cg | P_cg _, S_lu _ ->
        invalid_arg "Solver.solve: workspace from a different backend"
  in
  let result =
    Chebyshev.solve ~matvec_into ~solve_b_into ~matvec ~solve_b ~kappa:t.kappa
      ~eps ~b ()
  in
  {
    solution = result.Chebyshev.solution;
    iterations = result.Chebyshev.iterations;
    rounds = Rounds.checkpoint acc - start;
    bits = Rounds.checkpoint_bits acc - start_bits;
    residual = Exact.residual t.graph ~x:result.Chebyshev.solution ~b;
  }

let solve_exact_fallback t ~b = Exact.solve_graph t.graph b
