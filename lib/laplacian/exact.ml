module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense
module Graph = Lbcc_graph.Graph

(* One factored block per connected component: the component's vertices and
   the LU factorization of its Laplacian with the first vertex pinned.
   The reduced matrix is SPD; pivoted LU is used rather than Cholesky
   because callers (the IPM) produce weights spanning many orders of
   magnitude, where Cholesky's positivity test fails before LU's pivoting
   does. *)
type block = {
  vertices : int array; (* component members; vertices.(0) is pinned *)
  factorization : Dense.factorization option; (* None for singletons *)
  rhs_buf : float array; (* scratch, length k-1: reduced right-hand side *)
  sol_buf : float array; (* scratch, length k-1: reduced solution *)
}

type t = { n : int; blocks : block list }

let factor g =
  let n = Graph.n g in
  if n < 1 then invalid_arg "Exact.factor: empty graph";
  let l = Graph.laplacian_dense g in
  let comp, count = Graph.components g in
  let members = Array.make count [] in
  for v = n - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  let blocks =
    Array.to_list members
    |> List.map (fun vs ->
           let vertices = Array.of_list vs in
           let k = Array.length vertices in
           let rhs_buf = Array.make (k - 1) 0.0
           and sol_buf = Array.make (k - 1) 0.0 in
           if k = 1 then { vertices; factorization = None; rhs_buf; sol_buf }
           else begin
             let reduced =
               Dense.init (k - 1) (k - 1) (fun i j ->
                   Dense.get l vertices.(i + 1) vertices.(j + 1))
             in
             {
               vertices;
               factorization = Some (Dense.factorize reduced);
               rhs_buf;
               sol_buf;
             }
           end)
  in
  { n; blocks }

let solve_into t b x =
  if Vec.dim b <> t.n then invalid_arg "Exact.solve: dimension mismatch";
  if Vec.dim x <> t.n then invalid_arg "Exact.solve: solution dimension mismatch";
  let scale = Float.max 1.0 (Vec.norm_inf b) in
  Array.fill x 0 t.n 0.0;
  List.iter
    (fun block ->
      let k = Array.length block.vertices in
      let acc = ref 0.0 in
      for i = 0 to k - 1 do
        acc := !acc +. b.(block.vertices.(i))
      done;
      let total = !acc in
      if Float.abs total > 1e-6 *. scale *. float_of_int k then
        invalid_arg "Exact.solve: right-hand side must have zero sum per component";
      match block.factorization with
      | None -> ()
      | Some f ->
          for i = 0 to k - 2 do
            block.rhs_buf.(i) <- b.(block.vertices.(i + 1))
          done;
          Dense.solve_factored_into f block.rhs_buf block.sol_buf;
          (* Mean-center within the component. *)
          let s = ref 0.0 in
          for i = 0 to k - 2 do
            s := !s +. block.sol_buf.(i)
          done;
          let mean = !s /. float_of_int k in
          x.(block.vertices.(0)) <- -.mean;
          for i = 0 to k - 2 do
            x.(block.vertices.(i + 1)) <- block.sol_buf.(i) -. mean
          done)
    t.blocks

let clone_scratch t =
  {
    t with
    blocks =
      List.map
        (fun b ->
          {
            b with
            rhs_buf = Array.make (Array.length b.rhs_buf) 0.0;
            sol_buf = Array.make (Array.length b.sol_buf) 0.0;
          })
        t.blocks;
  }

let solve t b =
  let x = Array.make t.n 0.0 in
  solve_into t b x;
  x

let solve_graph g b = solve (factor g) b

let laplacian_norm g x =
  let q = Vec.dot x (Graph.apply_laplacian g x) in
  sqrt (Float.max 0.0 q)

let residual g ~x ~b =
  let r = Vec.sub b (Graph.apply_laplacian g x) in
  Vec.norm2 r /. Float.max (Vec.norm2 b) 1e-300
