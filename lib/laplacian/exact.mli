(** Exact (direct) Laplacian solving by pinning and dense Cholesky.

    [L] of a connected graph has nullspace [span(1)]; pinning vertex 0
    (deleting its row and column) leaves an SPD system.  Used for the
    vertex-internal solves of the distributed algorithms (simulated vertices
    have unlimited local computation and know the whole sparsifier) and as
    the reference in tests.

    All solves require a right-hand side with (numerically) zero sum —
    otherwise [L x = b] has no solution — and return the solution with zero
    mean. *)

module Vec = Lbcc_linalg.Vec
module Graph = Lbcc_graph.Graph

type t
(** A factored Laplacian. *)

val factor : Graph.t -> t

val solve : t -> Vec.t -> Vec.t
(** [solve t b] returns the per-component-zero-mean [x] with [L x = b].
    @raise Invalid_argument if [b] has non-negligible sum on some
    component. *)

val solve_into : t -> Vec.t -> Vec.t -> unit
(** [solve_into t b x] writes the solution into [x] using scratch buffers
    held in [t]: allocation-free, but not reentrant — do not share one
    factorization across concurrent solves.  [x] must not alias [b]. *)

val clone_scratch : t -> t
(** A handle sharing the (read-only) factorizations of [t] but carrying
    fresh scratch buffers, so clones may solve concurrently — the batched
    multi-RHS path hands one clone to each worker lane. *)

val solve_graph : Graph.t -> Vec.t -> Vec.t
(** One-shot [factor] + [solve]. *)

val laplacian_norm : Graph.t -> Vec.t -> float
(** [||x||_{L} = sqrt (x^T L x)]. *)

val residual : Graph.t -> x:Vec.t -> b:Vec.t -> float
(** [||b - L x||_2 / ||b||_2]. *)
