(** The Broadcast Congested Clique Laplacian solver (Theorem 1.3).

    Preprocessing computes a spectral sparsifier [H] of [G] (every vertex
    then knows all of [H], so solves in [L_H] are vertex-internal) and a
    certified relative-condition bound [kappa] of the pencil
    [(L_G, (1+eps_H) L_H)].  Each [solve ~b ~eps] then runs preconditioned
    Chebyshev (Corollary 2.4): [O(sqrt(kappa) log(1/eps))] iterations, each
    one distributed [L_G]-matvec — a single vector exchange charged
    [O(log(nU/eps))] bits per vertex — plus an internal [L_H] solve.

    The paper fixes the sparsifier quality at [eps_H = 1/2] so
    [kappa = 3]; with calibrated bundle sizes (DESIGN.md, substitution 3)
    the achieved [eps_H] is measured and [kappa] set from the certificate,
    so the error guarantee always holds. *)

open Lbcc_util
module Vec = Lbcc_linalg.Vec
module Graph = Lbcc_graph.Graph

type t

type solve_result = {
  solution : Vec.t;
  iterations : int;
  rounds : int;  (** rounds charged for this solve *)
  bits : int;  (** bits charged for this solve *)
  residual : float;  (** measured [||b - L_G y||_2 / ||b||_2] *)
}

type workspace
(** Per-lane scratch (preconditioner scratch buffers + a centering vector)
    for reentrant solves: the solver handle itself is immutable, but the
    default solve path reuses internal buffers, so concurrent solves on one
    handle must each pass their own [workspace]. *)

val workspace : t -> workspace
(** Fresh scratch for [t]; shares the (read-only) factorizations. *)

val preprocess :
  ?accountant:Lbcc_net.Rounds.t ->
  ?phases:string list ->
  ?t:int ->
  ?t_scale:float ->
  ?k:int ->
  ?certify:[ `Exact | `Power of int | `Probe of int ] ->
  ?backend:[ `Lu | `Cg ] ->
  ?sparsifier:Graph.t ->
  prng:Prng.t ->
  graph:Graph.t ->
  unit ->
  t
(** Sparsify, factor [L_H], certify [kappa].  When [sparsifier] is given it
    is used as [H] directly and the internal sparsification is skipped —
    the door the incremental-update path uses to rebuild a prepared
    operator from a patched {!Lbcc_sparsifier.Sparsify.sketch} without
    paying full re-sparsification rounds ([t]/[t_scale]/[k] are then
    ignored; the caller has already charged the sketch's rounds).  [certify] selects the exact
    eigen certificate (default for [n <= 400]), power iteration on the
    pencil (default above, tight and [O(n^3)]-free per step), or cheap
    randomized probing.  [phases] relabels the accountant phase nesting for
    the charges (default [["solve"; "preprocess"]]; the service layer passes
    [["prepare"]]).

    [backend] selects the vertex-internal preconditioner solve: [`Lu] (the
    default) factors [L_H] densely once — exact, [O(n^3)] setup, [O(n^2)]
    memory; [`Cg] answers each preconditioner application by
    Jacobi-preconditioned CG over the sparse [L_H] to a tolerance far below
    the outer accuracy — [O(m_H)] memory, the choice for [n] in the
    thousands (the SCALE bench runs [n = 8192] this way).  Round/bit
    accounting is identical under either backend: the preconditioner solve
    is vertex-internal and free in the model; only wall-clock and memory
    differ.  Pair [`Cg] with [~certify:(`Probe _)] — the default [`Power]
    certificate densely factors both Laplacians, which defeats the point.
    @raise Invalid_argument if [graph] is not connected. *)

val graph : t -> Graph.t
val sparsifier : t -> Graph.t
val kappa : t -> float
val preprocessing_rounds : t -> int

val solve :
  ?accountant:Lbcc_net.Rounds.t ->
  ?phases:string list ->
  ?workspace:workspace ->
  t ->
  b:Vec.t ->
  eps:float ->
  solve_result
(** [solve t ~b ~eps] returns [y] with [||x - y||_{L_G} <= eps ||x||_{L_G}]
    for the true solution [x] (guaranteed by the Chebyshev bound with the
    certified [kappa]).  [b] must have zero sum.  [phases] relabels the
    accountant phase nesting (default [["solve"]]; the service layer passes
    [["query"]]).  Pass a distinct [workspace] per lane to run concurrent
    solves on one handle; results are identical either way (the iteration
    count is a function of [(kappa, eps)] alone). *)

val solve_exact_fallback : t -> b:Vec.t -> Vec.t
(** Direct dense solve of [L_G x = b], for reference comparisons. *)
