module Engine = Lbcc_net.Engine
module Packed = Lbcc_net.Packed
module Model = Lbcc_net.Model
module Reliable = Lbcc_net.Reliable
module Byzantine = Lbcc_net.Byzantine
module Graph = Lbcc_graph.Graph
module Payload = Lbcc_net.Payload

type state = {
  sdist : float;
  sparent : int;
  dirty : bool; (* improved since last broadcast *)
  idle : int; (* consecutive quiet supersteps, for local termination *)
}

type result = {
  dist : float array;
  parent : int array;
  rounds : int;
  supersteps : int;
  converged : bool;
}

let program ~graph ~source =
  let n = Graph.n graph in
  if source < 0 || source >= n then invalid_arg "Sssp.run: source out of range";
  (* Edge weight lookup per (vertex, neighbor): in Broadcast CONGEST a
     vertex knows the weights of its incident edges; in the clique models
     the weight of a non-edge is irrelevant because only graph neighbors
     relax through it — we look the edge up and skip strangers. *)
  let weight_to = Array.make n [] in
  Array.iteri
    (fun _ (e : Graph.edge) ->
      weight_to.(e.u) <- (e.v, e.w) :: weight_to.(e.u);
      weight_to.(e.v) <- (e.u, e.w) :: weight_to.(e.v))
    (Graph.edges graph);
  let weight_between v u =
    List.assoc_opt u weight_to.(v)
  in
  let init v =
    if v = source then { sdist = 0.0; sparent = -1; dirty = true; idle = 0 }
    else { sdist = infinity; sparent = -1; dirty = false; idle = 0 }
  in
  (* A vertex halts after [n] consecutive supersteps without improvement
     (the synchronous-model bound on the number of relaxation phases). *)
  let quiet_limit = n in
  let step ~round:_ ~vertex (st : state) inbox =
    let best = ref st in
    List.iter
      (fun (sender, d) ->
        match weight_between vertex sender with
        | Some w ->
            if d +. w < !best.sdist -. 1e-12 then
              best := { !best with sdist = d +. w; sparent = sender; dirty = true }
        | None -> ())
      inbox;
    let st = !best in
    if st.dirty then ({ st with dirty = false; idle = 0 }, Some st.sdist, true)
    else begin
      let st = { st with idle = st.idle + 1 } in
      (st, None, st.idle < quiet_limit)
    end
  in
  (init, step)

(* Distances settle after <= n-1 relaxation waves, then each vertex sits
   out [n] quiet supersteps: 4(n+2) bounds the sum with slack. *)
let max_supersteps n = 4 * (n + 2)

let result_of states ~rounds ~supersteps ~converged =
  {
    dist = Array.map (fun s -> s.sdist) states;
    parent = Array.map (fun s -> s.sparent) states;
    rounds;
    supersteps;
    converged;
  }

(* Payload poison for tampered deliveries: shrink the announced distance,
   the worst case for min-based relaxation (an inflated distance would be
   masked by the protocol's own monotonicity). *)
let tamper ~salt d = (d *. 0.5) -. float_of_int (1 + (salt land 0xF))

let run ?accountant ?faults ~model ~graph ~source () =
  let n = Graph.n graph in
  let init, step = program ~graph ~source in
  let states, stats =
    (* Charges land under ~label at the caller's phase scope: the runner is
       the public API and must not impose one (fingerprint-stable). *)
    (* lbcc-lint: allow typ-phase-flow *)
    Engine.run ?accountant ?faults ~tamper ~codec:Packed.float_codec
      ~label:"sssp" ~model ~graph
      ~size_bits:(fun d -> Payload.weight_bits d)
      ~init ~step
      ~max_supersteps:(max_supersteps n)
      ()
  in
  result_of states ~rounds:stats.Engine.rounds ~supersteps:stats.Engine.supersteps
    ~converged:stats.Engine.converged

let run_byzantine ?accountant ?faults ?retries ~model ~graph ~source () =
  let n = Graph.n graph in
  let init, step = program ~graph ~source in
  let r =
    (* Charges land under ~label at the caller's phase scope: the runner is
       the public API and must not impose one (fingerprint-stable). *)
    (* lbcc-lint: allow typ-phase-flow *)
    Byzantine.run ?accountant ?faults ?retries ~tamper ~label:"sssp" ~model
      ~graph
      ~size_bits:(fun d -> Payload.weight_bits d)
      ~init ~step
      ~max_supersteps:(100 * max_supersteps n)
      ()
  in
  ( result_of r.Byzantine.states ~rounds:r.Byzantine.stats.Engine.rounds
      ~supersteps:r.Byzantine.virtual_supersteps
      ~converged:r.Byzantine.stats.Engine.converged,
    Byzantine.diag r )

let run_reliable ?accountant ?faults ?patience
    ?(reliability = Model.Crash_safe) ~model ~graph ~source () =
  match reliability with
  | Model.None -> run ?accountant ?faults ~model ~graph ~source ()
  | Model.Byzantine_safe ->
      fst (run_byzantine ?accountant ?faults ~model ~graph ~source ())
  | Model.Crash_safe ->
      let n = Graph.n graph in
      let init, step = program ~graph ~source in
      let r =
        (* Charges land under ~label at the caller's phase scope: the runner is
       the public API and must not impose one (fingerprint-stable). *)
        (* lbcc-lint: allow typ-phase-flow *)
        Reliable.run ?accountant ?faults ?patience ~label:"sssp" ~model ~graph
          ~size_bits:(fun d -> Payload.weight_bits d)
          ~init ~step
          ~max_supersteps:(100 * max_supersteps n)
          ()
      in
      result_of r.Reliable.states ~rounds:r.Reliable.stats.Engine.rounds
        ~supersteps:r.Reliable.virtual_supersteps
        ~converged:r.Reliable.stats.Engine.converged
