open Lbcc_util
module Engine = Lbcc_net.Engine
module Packed = Lbcc_net.Packed
module Model = Lbcc_net.Model
module Reliable = Lbcc_net.Reliable
module Byzantine = Lbcc_net.Byzantine
module Graph = Lbcc_graph.Graph

type state = {
  sdist : int;
  sparent : int;
  announced : bool;
}

type result = {
  dist : int array;
  parent : int array;
  rounds : int;
  supersteps : int;
  converged : bool;
}

(* The vertex program, shared by the lossless runner and the
   reliable-broadcast runner. *)
let program ~n ~source =
  if source < 0 || source >= n then invalid_arg "Bfs.run: source out of range";
  let init v =
    if v = source then { sdist = 0; sparent = -1; announced = false }
    else { sdist = max_int; sparent = -1; announced = false }
  in
  let step ~round:_ ~vertex:_ (st : state) inbox =
    if st.sdist < max_int then
      if st.announced then (st, None, false)
      else ({ st with announced = true }, Some st.sdist, true)
    else begin
      (* Adopt the first (lowest-id) announcer as parent and announce the
         new distance in the same superstep. *)
      match inbox with
      | (sender, d) :: _ ->
          ({ sdist = d + 1; sparent = sender; announced = true }, Some (d + 1), true)
      | [] -> (st, None, true)
    end
  in
  (init, step)

(* The wave crosses the graph in <= n-1 supersteps and every vertex
   announces once more before halting, so 2(n+1) leaves slack; a run that
   exhausts the cap reports [converged = false]. *)
let max_supersteps n = 2 * (n + 1)

let result_of states ~rounds ~supersteps ~converged =
  {
    dist = Array.map (fun s -> s.sdist) states;
    parent = Array.map (fun s -> s.sparent) states;
    rounds;
    supersteps;
    converged;
  }

(* Payload poison for tampered deliveries: flip low distance bits, always
   changing the value.  Tampering is only visible when a runner passes this
   to the engine — see the determinism contract in {!Lbcc_net.Fault}. *)
let tamper ~salt d = d lxor (1 lor (salt land 0x7))

let run ?accountant ?faults ~model ~graph ~source () =
  let n = Graph.n graph in
  let init, step = program ~n ~source in
  let states, stats =
    (* Charges land under ~label at the caller's phase scope: the runner is
       the public API and must not impose one (fingerprint-stable). *)
    (* lbcc-lint: allow typ-phase-flow *)
    Engine.run ?accountant ?faults ~tamper ~codec:Packed.int_codec ~label:"bfs"
      ~model ~graph
      ~size_bits:(fun d -> Bits.int_bits d)
      ~init ~step
      ~max_supersteps:(max_supersteps n)
      ()
  in
  result_of states ~rounds:stats.Engine.rounds ~supersteps:stats.Engine.supersteps
    ~converged:stats.Engine.converged

let run_byzantine ?accountant ?faults ?retries ~model ~graph ~source () =
  let n = Graph.n graph in
  let init, step = program ~n ~source in
  let r =
    (* Charges land under ~label at the caller's phase scope: the runner is
       the public API and must not impose one (fingerprint-stable). *)
    (* lbcc-lint: allow typ-phase-flow *)
    Byzantine.run ?accountant ?faults ?retries ~tamper ~label:"bfs" ~model
      ~graph
      ~size_bits:(fun d -> Bits.int_bits d)
      ~init ~step
      ~max_supersteps:(100 * max_supersteps n)
      ()
  in
  ( result_of r.Byzantine.states ~rounds:r.Byzantine.stats.Engine.rounds
      ~supersteps:r.Byzantine.virtual_supersteps
      ~converged:r.Byzantine.stats.Engine.converged,
    Byzantine.diag r )

let run_reliable ?accountant ?faults ?patience
    ?(reliability = Model.Crash_safe) ~model ~graph ~source () =
  match reliability with
  | Model.None -> run ?accountant ?faults ~model ~graph ~source ()
  | Model.Byzantine_safe ->
      fst (run_byzantine ?accountant ?faults ~model ~graph ~source ())
  | Model.Crash_safe ->
      let n = Graph.n graph in
      let init, step = program ~n ~source in
      let r =
        (* Charges land under ~label at the caller's phase scope: the runner is
       the public API and must not impose one (fingerprint-stable). *)
        (* lbcc-lint: allow typ-phase-flow *)
        Reliable.run ?accountant ?faults ?patience ~label:"bfs" ~model ~graph
          ~size_bits:(fun d -> Bits.int_bits d)
          ~init ~step
          ~max_supersteps:(100 * max_supersteps n)
          ()
      in
      result_of r.Reliable.states ~rounds:r.Reliable.stats.Engine.rounds
        ~supersteps:r.Reliable.virtual_supersteps
        ~converged:r.Reliable.stats.Engine.converged
