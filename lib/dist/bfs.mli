(** Distributed breadth-first search as an {!Lbcc_net.Engine} vertex
    program: unweighted single-source distances and a BFS tree, in any of
    the broadcast models.

    In Broadcast CONGEST this takes [O(D)] rounds for hop-diameter [D]; in
    the Broadcast Congested Clique every vertex hears the wave after one
    hop of the clique topology.  Used as context for the paper's intro
    comparison of SSSP complexities. *)

type result = {
  dist : int array;  (** hop distance, [max_int] if unreachable *)
  parent : int array;  (** BFS-tree parent, [-1] at the root/unreachable *)
  rounds : int;
  supersteps : int;
      (** for {!run_reliable}: virtual (inner) supersteps, matching the
          lossless count *)
  converged : bool;  (** [false] iff truncated by the superstep cap *)
}

val run :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  source:int ->
  unit ->
  result
(** Raw engine run: injected faults (if any) hit the protocol directly —
    dropped announcements simply never arrive and tampered distances are
    believed.
    @raise Invalid_argument on a unicast model. *)

val run_byzantine :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  ?retries:int ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  source:int ->
  unit ->
  result * Lbcc_net.Byzantine.Diag.t
(** Same program behind {!Lbcc_net.Byzantine}: echo-quorum delivery
    tolerating [f < n/3] equivocating vertices, with the quorum overhead
    under the ["bfs/byz-echo"] accountant label.  The diagnostics say
    whether the delivery guarantee held.
    @raise Invalid_argument on a non-clique model. *)

val run_reliable :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  ?patience:int ->
  ?reliability:Lbcc_net.Model.reliability ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  source:int ->
  unit ->
  result
(** The program behind the delivery tier selected by [reliability]
    (default [Crash_safe]): [None] is {!run}, [Crash_safe] runs behind
    {!Lbcc_net.Reliable} (exactly-once delivery over a lossy engine,
    retransmission cost under ["bfs/retransmit"]), [Byzantine_safe] is
    {!run_byzantine} with the diagnostics dropped.  [patience] applies to
    the [Crash_safe] tier only. *)
