(** Distributed breadth-first search as an {!Lbcc_net.Engine} vertex
    program: unweighted single-source distances and a BFS tree, in any of
    the broadcast models.

    In Broadcast CONGEST this takes [O(D)] rounds for hop-diameter [D]; in
    the Broadcast Congested Clique every vertex hears the wave after one
    hop of the clique topology.  Used as context for the paper's intro
    comparison of SSSP complexities. *)

type result = {
  dist : int array;  (** hop distance, [max_int] if unreachable *)
  parent : int array;  (** BFS-tree parent, [-1] at the root/unreachable *)
  rounds : int;
  supersteps : int;
      (** for {!run_reliable}: virtual (inner) supersteps, matching the
          lossless count *)
  converged : bool;  (** [false] iff truncated by the superstep cap *)
}

val run :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  source:int ->
  unit ->
  result
(** Raw engine run: injected faults (if any) hit the protocol directly —
    dropped announcements simply never arrive.
    @raise Invalid_argument on a unicast model. *)

val run_reliable :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  ?patience:int ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  source:int ->
  unit ->
  result
(** Same program behind {!Lbcc_net.Reliable}: exactly-once delivery over a
    lossy engine; retransmission cost appears under the
    ["bfs/retransmit"] accountant label. *)
