module Engine = Lbcc_net.Engine
module Packed = Lbcc_net.Packed
module Reliable = Lbcc_net.Reliable
module Byzantine = Lbcc_net.Byzantine
module Graph = Lbcc_graph.Graph
module Model = Lbcc_net.Model

type state = {
  best : int;
  changed : bool;
  idle : int;
}

type result = {
  leader : int;
  rounds : int;
  supersteps : int;
  converged : bool;
}

(* In the clique topology one broadcast round suffices: every vertex
   hears every id and can halt immediately.  On the input graph, flood
   the smallest id and halt after [n] quiet supersteps (a vertex cannot
   locally distinguish "stable" from "the wave is still far away"
   earlier than that). *)
let program ~n ~topology =
  let init v = { best = v; changed = true; idle = 0 } in
  let step =
    match topology with
    | Model.Clique ->
        fun ~round ~vertex:_ (st : state) inbox ->
          if round = 1 then (st, Some st.best, true)
          else begin
            let best =
              List.fold_left (fun acc (_, b) -> Stdlib.min acc b) st.best inbox
            in
            ({ st with best }, None, false)
          end
    | Model.Input_graph ->
        fun ~round:_ ~vertex:_ (st : state) inbox ->
          let best =
            List.fold_left (fun acc (_, b) -> Stdlib.min acc b) st.best inbox
          in
          let changed = best < st.best in
          let st = { best; changed; idle = (if changed then 0 else st.idle + 1) } in
          if st.changed || st.idle <= 1 then (st, Some st.best, st.idle < n)
          else (st, None, st.idle < n)
  in
  (init, step)

(* Flooding takes <= n-1 supersteps, then n quiet ones before the last
   vertex halts: 2(n+2) bounds it with slack. *)
let max_supersteps n = 2 * (n + 2)

let check_input ~model ~graph =
  let n = Graph.n graph in
  if n = 0 then invalid_arg "Leader.run: empty graph";
  if model.Model.topology = Model.Input_graph && not (Graph.is_connected graph)
  then invalid_arg "Leader.run: graph must be connected";
  n

(* Under faults a crashed vertex keeps a stale [best]; agreement is only
   asserted on clean converged runs. *)
let result_of ?faults states ~rounds ~supersteps ~converged =
  let leader = states.(0).best in
  (match faults with
  | None when converged ->
      Array.iter (fun s -> assert (s.best = leader)) states
  | _ -> ());
  { leader; rounds; supersteps; converged }

(* Payload poison for tampered deliveries: a forged id below every honest
   one, which min-id flooding believes unconditionally — the starkest
   possible corruption of the election. *)
let tamper ~salt b = -(1 + (b lxor (salt land 0x3F)))

let run ?accountant ?faults ~model ~graph () =
  let n = check_input ~model ~graph in
  let init, step = program ~n ~topology:model.Model.topology in
  let states, stats =
    (* Charges land under ~label at the caller's phase scope: the runner is
       the public API and must not impose one (fingerprint-stable). *)
    (* lbcc-lint: allow typ-phase-flow *)
    Engine.run ?accountant ?faults ~tamper ~codec:Packed.int_codec
      ~label:"leader" ~model ~graph
      ~size_bits:(fun _ -> Lbcc_util.Bits.id_bits ~n)
      ~init ~step
      ~max_supersteps:(max_supersteps n)
      ()
  in
  result_of ?faults states ~rounds:stats.Engine.rounds
    ~supersteps:stats.Engine.supersteps ~converged:stats.Engine.converged

let run_byzantine ?accountant ?faults ?retries ~model ~graph () =
  let n = check_input ~model ~graph in
  let init, step = program ~n ~topology:model.Model.topology in
  let r =
    (* Charges land under ~label at the caller's phase scope: the runner is
       the public API and must not impose one (fingerprint-stable). *)
    (* lbcc-lint: allow typ-phase-flow *)
    Byzantine.run ?accountant ?faults ?retries ~tamper ~label:"leader" ~model
      ~graph
      ~size_bits:(fun _ -> Lbcc_util.Bits.id_bits ~n)
      ~init ~step
      ~max_supersteps:(100 * max_supersteps n)
      ()
  in
  ( result_of ?faults r.Byzantine.states ~rounds:r.Byzantine.stats.Engine.rounds
      ~supersteps:r.Byzantine.virtual_supersteps
      ~converged:r.Byzantine.stats.Engine.converged,
    Byzantine.diag r )

let run_reliable ?accountant ?faults ?patience
    ?(reliability = Model.Crash_safe) ~model ~graph () =
  match reliability with
  | Model.None -> run ?accountant ?faults ~model ~graph ()
  | Model.Byzantine_safe ->
      fst (run_byzantine ?accountant ?faults ~model ~graph ())
  | Model.Crash_safe ->
      let n = check_input ~model ~graph in
      let init, step = program ~n ~topology:model.Model.topology in
      let r =
        (* Charges land under ~label at the caller's phase scope: the runner is
       the public API and must not impose one (fingerprint-stable). *)
        (* lbcc-lint: allow typ-phase-flow *)
        Reliable.run ?accountant ?faults ?patience ~label:"leader" ~model
          ~graph
          ~size_bits:(fun _ -> Lbcc_util.Bits.id_bits ~n)
          ~init ~step
          ~max_supersteps:(100 * max_supersteps n)
          ()
      in
      result_of ?faults r.Reliable.states
        ~rounds:r.Reliable.stats.Engine.rounds
        ~supersteps:r.Reliable.virtual_supersteps
        ~converged:r.Reliable.stats.Engine.converged
