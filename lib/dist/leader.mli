(** Leader election by min-id flooding.

    The primitive behind Algorithm 6's "declare the vertex with the highest
    ID the leader": in the Broadcast Congested Clique one round suffices;
    in Broadcast CONGEST the extremal id floods in diameter rounds.  We
    elect the *minimum* id (any fixed extremum works). *)

type result = {
  leader : int;
  rounds : int;
  supersteps : int;
      (** for {!run_reliable}: virtual (inner) supersteps, matching the
          lossless count *)
  converged : bool;  (** [false] iff truncated by the superstep cap *)
}

val run :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  unit ->
  result
(** On a clean converged run all vertices agree on the returned leader
    (asserted internally); under faults the crashed vertices may retain
    stale views and the assertion is skipped.
    @raise Invalid_argument on a unicast model or a disconnected graph
    under the [Input_graph] topology. *)

val run_byzantine :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  ?retries:int ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  unit ->
  result * Lbcc_net.Byzantine.Diag.t
(** Same program behind {!Lbcc_net.Byzantine}: echo-quorum delivery
    tolerating [f < n/3] equivocating vertices — a tampered delivery
    forges an id below every honest one, which raw min-id flooding
    believes and the quorum tier rejects.  Overhead is charged under the
    ["leader/byz-echo"] accountant label.
    @raise Invalid_argument on a non-clique model. *)

val run_reliable :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  ?patience:int ->
  ?reliability:Lbcc_net.Model.reliability ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  unit ->
  result
(** The program behind the delivery tier selected by [reliability]
    (default [Crash_safe]): [None] is {!run}, [Crash_safe] runs behind
    {!Lbcc_net.Reliable} (retransmission cost under
    ["leader/retransmit"]), [Byzantine_safe] is {!run_byzantine} with the
    diagnostics dropped.  [patience] applies to the [Crash_safe] tier
    only. *)
