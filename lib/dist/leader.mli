(** Leader election by min-id flooding.

    The primitive behind Algorithm 6's "declare the vertex with the highest
    ID the leader": in the Broadcast Congested Clique one round suffices;
    in Broadcast CONGEST the extremal id floods in diameter rounds.  We
    elect the *minimum* id (any fixed extremum works). *)

type result = {
  leader : int;
  rounds : int;
  supersteps : int;
      (** for {!run_reliable}: virtual (inner) supersteps, matching the
          lossless count *)
  converged : bool;  (** [false] iff truncated by the superstep cap *)
}

val run :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  unit ->
  result
(** On a clean converged run all vertices agree on the returned leader
    (asserted internally); under faults the crashed vertices may retain
    stale views and the assertion is skipped.
    @raise Invalid_argument on a unicast model or a disconnected graph
    under the [Input_graph] topology. *)

val run_reliable :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  ?patience:int ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  unit ->
  result
(** Same program behind {!Lbcc_net.Reliable}: exactly-once delivery over a
    lossy engine; retransmission cost appears under the
    ["leader/retransmit"] accountant label. *)
