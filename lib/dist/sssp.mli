(** Distributed Bellman–Ford: weighted single-source shortest paths as a
    vertex program in the broadcast models.

    Every superstep, each vertex whose tentative distance improved
    broadcasts it; the protocol stabilizes after at most [n - 1]
    broadcast-CONGEST supersteps — the classical [O(n)]-round baseline the
    paper's introduction contrasts with the [O~(sqrt n)] BCC algorithms
    ([Nan14]) and with this repository's flow-based machinery. *)

type result = {
  dist : float array;  (** [infinity] if unreachable *)
  parent : int array;  (** shortest-path-tree parent, [-1] at root *)
  rounds : int;
  supersteps : int;
      (** for {!run_reliable}: virtual (inner) supersteps, matching the
          lossless count *)
  converged : bool;  (** [false] iff truncated by the superstep cap *)
}

val run :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  source:int ->
  unit ->
  result
(** @raise Invalid_argument on a unicast model.  Distances agree with
    {!Lbcc_graph.Paths.dijkstra} (tested). *)

val run_reliable :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  ?patience:int ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  source:int ->
  unit ->
  result
(** Same program behind {!Lbcc_net.Reliable}: exactly-once delivery over a
    lossy engine; retransmission cost appears under the
    ["sssp/retransmit"] accountant label. *)
