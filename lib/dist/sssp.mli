(** Distributed Bellman–Ford: weighted single-source shortest paths as a
    vertex program in the broadcast models.

    Every superstep, each vertex whose tentative distance improved
    broadcasts it; the protocol stabilizes after at most [n - 1]
    broadcast-CONGEST supersteps — the classical [O(n)]-round baseline the
    paper's introduction contrasts with the [O~(sqrt n)] BCC algorithms
    ([Nan14]) and with this repository's flow-based machinery. *)

type result = {
  dist : float array;  (** [infinity] if unreachable *)
  parent : int array;  (** shortest-path-tree parent, [-1] at root *)
  rounds : int;
  supersteps : int;
      (** for {!run_reliable}: virtual (inner) supersteps, matching the
          lossless count *)
  converged : bool;  (** [false] iff truncated by the superstep cap *)
}

val run :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  source:int ->
  unit ->
  result
(** @raise Invalid_argument on a unicast model.  Distances agree with
    {!Lbcc_graph.Paths.dijkstra} (tested).  Tampered deliveries (see
    {!Lbcc_net.Fault}) shrink announced distances — the worst case for
    min-based relaxation — and are believed. *)

val run_byzantine :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  ?retries:int ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  source:int ->
  unit ->
  result * Lbcc_net.Byzantine.Diag.t
(** Same program behind {!Lbcc_net.Byzantine}: echo-quorum delivery
    tolerating [f < n/3] equivocating vertices, with the quorum overhead
    under the ["sssp/byz-echo"] accountant label.
    @raise Invalid_argument on a non-clique model. *)

val run_reliable :
  ?accountant:Lbcc_net.Rounds.t ->
  ?faults:Lbcc_net.Fault.t ->
  ?patience:int ->
  ?reliability:Lbcc_net.Model.reliability ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  source:int ->
  unit ->
  result
(** The program behind the delivery tier selected by [reliability]
    (default [Crash_safe]): [None] is {!run}, [Crash_safe] runs behind
    {!Lbcc_net.Reliable} (retransmission cost under ["sssp/retransmit"]),
    [Byzantine_safe] is {!run_byzantine} with the diagnostics dropped.
    [patience] applies to the [Crash_safe] tier only. *)
