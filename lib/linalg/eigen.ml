let off_diagonal_norm a =
  let n = Dense.rows a in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let v = Dense.get a i j in
        acc := !acc +. (v *. v)
      end
    done
  done;
  sqrt !acc

let jacobi ?(max_sweeps = 100) ?(tol = 1e-12) a0 =
  if not (Dense.is_symmetric ~tol:1e-8 a0) then
    invalid_arg "Eigen.jacobi: matrix not symmetric";
  let n = Dense.rows a0 in
  let a = Dense.symmetrize a0 in
  let v = Dense.identity n in
  let scale = Float.max 1.0 (Dense.frobenius a) in
  let sweep = ref 0 in
  while !sweep < max_sweeps && off_diagonal_norm a > tol *. scale do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Dense.get a p q in
        if Float.abs apq > 1e-300 then begin
          let app = Dense.get a p p and aqq = Dense.get a q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let s = if theta >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* Rotate rows/columns p and q of [a]. *)
          for k = 0 to n - 1 do
            let akp = Dense.get a k p and akq = Dense.get a k q in
            Dense.set a k p ((c *. akp) -. (s *. akq));
            Dense.set a k q ((s *. akp) +. (c *. akq))
          done;
          for k = 0 to n - 1 do
            let apk = Dense.get a p k and aqk = Dense.get a q k in
            Dense.set a p k ((c *. apk) -. (s *. aqk));
            Dense.set a q k ((s *. apk) +. (c *. aqk))
          done;
          for k = 0 to n - 1 do
            let vkp = Dense.get v k p and vkq = Dense.get v k q in
            Dense.set v k p ((c *. vkp) -. (s *. vkq));
            Dense.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  let eigs = Dense.diag a in
  (* Sort ascending, permuting eigenvector columns along. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare eigs.(i) eigs.(j)) order;
  let sorted = Array.map (fun i -> eigs.(i)) order in
  let vecs = Dense.init n n (fun i j -> Dense.get v i order.(j)) in
  (sorted, vecs)

let eigenvalues ?max_sweeps ?tol a = fst (jacobi ?max_sweeps ?tol a)

let spd_condition_number a =
  let eigs = eigenvalues a in
  let n = Array.length eigs in
  if n = 0 then invalid_arg "Eigen.spd_condition_number: empty matrix";
  if eigs.(0) <= 0.0 then failwith "Eigen.spd_condition_number: not positive definite";
  eigs.(n - 1) /. eigs.(0)

let pseudo_sqrt_inverse ?(rank_tol = 1e-9) a =
  let eigs, v = jacobi a in
  let n = Array.length eigs in
  let lmax = Array.fold_left Float.max 0.0 eigs in
  let cutoff = rank_tol *. Float.max lmax 1e-300 in
  let d = Array.map (fun l -> if l > cutoff then 1.0 /. sqrt l else 0.0) eigs in
  (* v * diag(d) * v^T *)
  let m = Dense.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (Dense.get v i k *. d.(k) *. Dense.get v j k)
      done;
      Dense.set m i j !acc
    done
  done;
  m

let relative_condition a b =
  let bphalf = pseudo_sqrt_inverse b in
  let m = Dense.symmetrize (Dense.matmul bphalf (Dense.matmul a bphalf)) in
  let eigs = eigenvalues m in
  (* Discard the (common) nullspace: eigenvalues numerically zero. *)
  let lmax = Array.fold_left Float.max 0.0 eigs in
  let cutoff = 1e-7 *. Float.max lmax 1e-300 in
  let nonzero = Array.of_list (List.filter (fun l -> l > cutoff) (Array.to_list eigs)) in
  if Array.length nonzero = 0 then (0.0, 0.0)
  else (nonzero.(0), nonzero.(Array.length nonzero - 1))
