(** Sparse matrices in compressed-sparse-row (CSR) form.

    Built once from coordinate triplets (duplicates are summed), then used for
    matvec-style operations.  This is the representation behind graph
    Laplacians, incidence matrices and the LP constraint matrices. *)

type t

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Duplicate [(i, j)] entries are summed; explicit zeros are dropped. *)

val of_dense : Dense.t -> t
val to_dense : t -> Dense.t

val rows : t -> int
val cols : t -> int
val nnz : t -> int

val matvec : t -> Vec.t -> Vec.t
(** Row-chunk parallel on the default pool for large matrices; per-row
    accumulation order is fixed, so results are identical at any pool
    size. *)

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t a x = a^T x] without materializing the transpose. *)

val matvec_into : t -> Vec.t -> Vec.t -> unit
(** [matvec_into a x y] writes [a x] into [y] without allocating.  [y] must
    not alias [x].  Same parallel row chunking as {!matvec}. *)

val matvec_t_into : t -> Vec.t -> Vec.t -> unit
(** [matvec_t_into a x y] writes [a^T x] into [y] without allocating.  [y]
    must not alias [x]. *)

val transpose : t -> t
(** Linear-time counting sort (no triplet round-trip). *)

val scale : float -> t -> t

val add : t -> t -> t
(** Linear two-pointer merge of the sorted rows; entries summing to exactly
    [0.0] are dropped. *)

val row_scale : Vec.t -> t -> t
(** [row_scale d a] is [diag(d) * a]. *)

val col_scale : t -> Vec.t -> t
(** [col_scale a d] is [a * diag(d)]. *)

val diag : t -> Vec.t

val get : t -> int -> int -> float
(** Linear scan of the row; meant for tests, not inner loops. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
val iter : t -> (int -> int -> float -> unit) -> unit
val fold : t -> init:'a -> f:('a -> int -> int -> float -> 'a) -> 'a

val gram : t -> Vec.t -> Dense.t
(** [gram a d] is the (dense) normal matrix [a^T diag(d) a] — the paper's
    [A^T D A].  Requires [dim d = rows a]. *)

val pp : Format.formatter -> t -> unit
