type t = { r : int; c : int; a : float array }

let create r c =
  if r < 0 || c < 0 then invalid_arg "Dense.create: negative dimension";
  { r; c; a = Array.make (r * c) 0.0 }

let rows m = m.r
let cols m = m.c

let get m i j = m.a.((i * m.c) + j)
let set m i j v = m.a.((i * m.c) + j) <- v
let add_entry m i j v = m.a.((i * m.c) + j) <- m.a.((i * m.c) + j) +. v

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i 1.0
  done;
  m

let init r c f =
  let m = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      set m i j (f i j)
    done
  done;
  m

let of_arrays rows_arr =
  let r = Array.length rows_arr in
  let c = if r = 0 then 0 else Array.length rows_arr.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Dense.of_arrays: ragged rows")
    rows_arr;
  init r c (fun i j -> rows_arr.(i).(j))

let to_arrays m = Array.init m.r (fun i -> Array.init m.c (fun j -> get m i j))

let fill m v = Array.fill m.a 0 (m.r * m.c) v
let copy m = { m with a = Array.copy m.a }

let transpose m = init m.c m.r (fun i j -> get m j i)

let check_same name x y =
  if x.r <> y.r || x.c <> y.c then
    invalid_arg (Printf.sprintf "Dense.%s: dimension mismatch" name)

let add x y =
  check_same "add" x y;
  { x with a = Array.init (Array.length x.a) (fun i -> x.a.(i) +. y.a.(i)) }

let sub x y =
  check_same "sub" x y;
  { x with a = Array.init (Array.length x.a) (fun i -> x.a.(i) -. y.a.(i)) }

let scale s m = { m with a = Array.map (fun v -> s *. v) m.a }

(* Output rows are independent in matmul/matvec and the update rows of an
   LU pivot step are independent too, so all three parallelize over row
   chunks with bit-identical results (each row's arithmetic sequence is
   unchanged).  Small problems stay sequential. *)
let parallel_rows ~n ~work_per_row body =
  if n >= 64 && n * work_per_row >= 1 lsl 14 then
    Lbcc_util.Pool.parallel_for (Lbcc_util.Pool.default ()) ~n body
  else body 0 n

let matmul x y =
  if x.c <> y.r then invalid_arg "Dense.matmul: inner dimension mismatch";
  let z = create x.r y.c in
  parallel_rows ~n:x.r ~work_per_row:(x.c * y.c) (fun lo hi ->
      for i = lo to hi - 1 do
        for k = 0 to x.c - 1 do
          let xik = get x i k in
          (* Exact zero-skip: an optimisation, not a tolerance test. *)
          (* lbcc-lint: allow det-float-poly-compare *)
          if xik <> 0.0 then
            for j = 0 to y.c - 1 do
              add_entry z i j (xik *. get y k j)
            done
        done
      done);
  z

let matvec_into m x y =
  if m.c <> Array.length x then invalid_arg "Dense.matvec_into: dimension mismatch";
  if m.r <> Array.length y then invalid_arg "Dense.matvec_into: dimension mismatch";
  parallel_rows ~n:m.r ~work_per_row:m.c (fun lo hi ->
      for i = lo to hi - 1 do
        let acc = ref 0.0 in
        let base = i * m.c in
        for j = 0 to m.c - 1 do
          acc := !acc +. (m.a.(base + j) *. x.(j))
        done;
        y.(i) <- !acc
      done)

let matvec m x =
  if m.c <> Array.length x then invalid_arg "Dense.matvec: dimension mismatch";
  let y = Array.make m.r 0.0 in
  matvec_into m x y;
  y

let matvec_t m x =
  if m.r <> Array.length x then invalid_arg "Dense.matvec_t: dimension mismatch";
  let y = Array.make m.c 0.0 in
  for i = 0 to m.r - 1 do
    let xi = x.(i) in
    (* Exact zero-skip: an optimisation, not a tolerance test. *)
    (* lbcc-lint: allow det-float-poly-compare *)
    if xi <> 0.0 then
      for j = 0 to m.c - 1 do
        y.(j) <- y.(j) +. (get m i j *. xi)
      done
  done;
  y

let diag m =
  let n = min m.r m.c in
  Array.init n (fun i -> get m i i)

let of_diag d =
  let n = Array.length d in
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i d.(i)
  done;
  m

let trace m = Array.fold_left ( +. ) 0.0 (diag m)

let frobenius m = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 m.a)

let symmetrize m =
  if m.r <> m.c then invalid_arg "Dense.symmetrize: not square";
  init m.r m.c (fun i j -> 0.5 *. (get m i j +. get m j i))

let is_symmetric ?(tol = 1e-10) m =
  m.r = m.c
  &&
  let ok = ref true in
  for i = 0 to m.r - 1 do
    for j = i + 1 to m.c - 1 do
      if Float.abs (get m i j -. get m j i) > tol then ok := false
    done
  done;
  !ok

(* LU factorization with partial pivoting, stored in place.  Returns the
   permutation as an array of row indices. *)
let lu_factor m =
  if m.r <> m.c then invalid_arg "Dense.solve: matrix not square";
  let n = m.r in
  let lu = copy m in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    let pivot = ref k and best = ref (Float.abs (get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (get lu i k) in
      if v > !best then begin
        best := v;
        pivot := i
      end
    done;
    if !best < 1e-300 then failwith "Dense.solve: singular matrix";
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = get lu k j in
        set lu k j (get lu !pivot j);
        set lu !pivot j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tmp
    end;
    let pkk = get lu k k in
    (* Rows below the pivot update independently (each reads only pivot row
       [k] and writes only itself). *)
    parallel_rows ~n:(n - 1 - k) ~work_per_row:(n - k) (fun lo hi ->
        for t = lo to hi - 1 do
          let i = k + 1 + t in
          let factor = get lu i k /. pkk in
          set lu i k factor;
          for j = k + 1 to n - 1 do
            add_entry lu i j (-.factor *. get lu k j)
          done
        done)
  done;
  (lu, perm)

(* Flat-array accesses keep the triangular-solve inner loops free of boxed
   float temporaries — this runs once per Chebyshev iteration, so it
   dominates the solver's allocation profile. *)
let lu_solve_into (lu, perm) b x =
  let n = rows lu in
  if Array.length b <> n then invalid_arg "Dense.solve: rhs dimension mismatch";
  if Array.length x <> n then invalid_arg "Dense.solve: solution dimension mismatch";
  let a = lu.a and c = lu.c in
  for i = 0 to n - 1 do
    x.(i) <- b.(perm.(i))
  done;
  for i = 1 to n - 1 do
    let base = i * c in
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (a.(base + j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let base = i * c in
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (a.(base + j) *. x.(j))
    done;
    x.(i) <- !acc /. a.(base + i)
  done

let lu_solve f b =
  let x = Array.make (rows (fst f)) 0.0 in
  lu_solve_into f b x;
  x

let solve m b = lu_solve (lu_factor m) b

type factorization = t * int array

let factorize = lu_factor
let solve_factored = lu_solve
let solve_factored_into = lu_solve_into

let solve_many m bs =
  let f = lu_factor m in
  Array.map (lu_solve f) bs

let inverse m =
  let n = m.r in
  let f = lu_factor m in
  let inv = create n n in
  for j = 0 to n - 1 do
    let col = lu_solve f (Vec.basis n j) in
    for i = 0 to n - 1 do
      set inv i j col.(i)
    done
  done;
  inv

let cholesky m =
  if m.r <> m.c then invalid_arg "Dense.cholesky: not square";
  let n = m.r in
  let l = create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (get m i j) in
      for k = 0 to j - 1 do
        s := !s -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !s <= 0.0 then failwith "Dense.cholesky: matrix not positive definite";
        set l i j (sqrt !s)
      end
      else set l i j (!s /. get l j j)
    done
  done;
  l

let cholesky_solve l b =
  let n = rows l in
  if Array.length b <> n then invalid_arg "Dense.cholesky_solve: dimension mismatch";
  let y = Array.copy b in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      y.(i) <- y.(i) -. (get l i j *. y.(j))
    done;
    y.(i) <- y.(i) /. get l i i
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      y.(i) <- y.(i) -. (get l j i *. y.(j))
    done;
    y.(i) <- y.(i) /. get l i i
  done;
  y

let quadratic_form m x = Vec.dot x (matvec m x)

let pp ppf m =
  for i = 0 to m.r - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.c - 1 do
      Format.fprintf ppf "%10.4g " (get m i j)
    done;
    Format.fprintf ppf "@]@."
  done
