(** Conjugate gradient over an abstract matvec operator.

    Used internally by simulated vertices (which have unlimited local
    computation) and as a reference solver in tests.

    The iteration runs over preallocated workspaces.  Callers on a hot path
    can supply [?matvec_into] / [?precond_into] (write the operator result
    into the given destination) to make each iteration allocation-free; the
    allocating [matvec] / [precond] are used otherwise.  Either way the
    arithmetic sequence — hence every iterate, iteration count and residual
    — is identical. *)

type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float; (* final ||b - A x||_2 *)
  converged : bool;
}

val solve :
  ?x0:Vec.t ->
  ?max_iter:int ->
  ?tol:float ->
  ?matvec_into:(Vec.t -> Vec.t -> unit) ->
  matvec:(Vec.t -> Vec.t) ->
  b:Vec.t ->
  unit ->
  result
(** Plain CG for an SPD (or PSD with [b] in the range) operator.
    Stops when [||r||_2 <= tol * ||b||_2] or after [max_iter] iterations
    (default [10 * dim]). *)

val solve_preconditioned :
  ?x0:Vec.t ->
  ?max_iter:int ->
  ?tol:float ->
  ?matvec_into:(Vec.t -> Vec.t -> unit) ->
  ?precond_into:(Vec.t -> Vec.t -> unit) ->
  matvec:(Vec.t -> Vec.t) ->
  precond:(Vec.t -> Vec.t) ->
  b:Vec.t ->
  unit ->
  result
(** Preconditioned CG; [precond] applies an approximation of [A^+]. *)
