(** Dense vectors as float arrays.

    Thin helpers; all operations allocate a fresh result unless suffixed
    [_inplace].  Dimensions are checked with [Invalid_argument]. *)

type t = float array

val create : int -> float -> t
val zeros : int -> t
val ones : int -> t
val init : int -> (int -> float) -> t
val basis : int -> int -> t
(** [basis n i] is [e_i] in dimension [n]. *)

val copy : t -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Coordinate-wise product. *)

val div : t -> t -> t
(** Coordinate-wise quotient. *)

val recip : t -> t
(** Coordinate-wise reciprocal. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

(** {2 In-place kernels}

    Allocation-free variants writing into a caller-owned buffer with the
    same elementwise arithmetic (hence identical rounding) as their
    allocating counterparts.  Destinations may alias inputs. *)

val blit : t -> t -> unit
(** [blit x dst] copies [x] into [dst]. *)

val add_into : t -> t -> t -> unit
(** [add_into x y dst] performs [dst <- x + y]. *)

val sub_into : t -> t -> t -> unit
(** [sub_into x y dst] performs [dst <- x - y]. *)

val scale_into : float -> t -> t -> unit
(** [scale_into a x dst] performs [dst <- a*x]. *)

val mul_into : t -> t -> t -> unit
(** [mul_into x y dst] performs [dst <- x .* y] coordinate-wise. *)

val axpby_into : float -> float -> t -> t -> unit
(** [axpby_into a b z d] performs [d <- a*d + b*z], rounding exactly as
    [add (scale a d) (scale b z)]. *)

val mean_center_into : t -> t -> unit
(** [mean_center_into x dst] writes the mean-centered [x] into [dst]. *)

val fill_zero : t -> unit

val dot : t -> t -> float
val norm2 : t -> float
val norm_inf : t -> float
val norm1 : t -> float
val dist2 : t -> t -> float

val weighted_norm : t -> t -> float
(** [weighted_norm w x] is [sqrt (sum_i w_i x_i^2)]; requires [w_i >= 0]. *)

val sum : t -> float
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val mean_center : t -> t
(** Subtract the mean: projection onto the orthogonal complement of [1]. *)

val clamp : lo:t -> hi:t -> t -> t
(** Coordinate-wise median of [lo], [x], [hi] (the paper's [MEDIAN]). *)

val max_elt : t -> float
val min_elt : t -> float

val pp : Format.formatter -> t -> unit
