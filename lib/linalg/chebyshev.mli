(** Preconditioned Chebyshev iteration (Theorem 2.3 of the paper).

    Given symmetric PSD [A], [B] with [A <= B <= kappa * A], each iteration
    multiplies [A] by a vector, solves one linear system in [B], and does a
    constant number of vector operations; [O(sqrt(kappa) log(1/eps))]
    iterations produce [y] with [||x - y||_A <= eps ||x||_A] for some [x]
    with [A x = b].  This is the engine of the Laplacian solver:
    [A = L_G] and [B = (1 + 1/2) L_H] for a sparsifier [H] (Corollary 2.4).

    The recurrence runs over preallocated workspaces; supplying
    [?matvec_into] / [?solve_b_into] (write the operator result into the
    given destination) makes each iteration allocation-free.  The
    arithmetic sequence — hence every iterate and residual — is identical
    either way. *)

type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float; (* final ||b - A y||_2 relative to ||b||_2 *)
}

val iterations_bound : kappa:float -> eps:float -> int
(** The paper's iteration count [ceil(sqrt(kappa) * log(2/eps)) + 1]. *)

val solve :
  ?x0:Vec.t ->
  ?max_iter:int ->
  ?matvec_into:(Vec.t -> Vec.t -> unit) ->
  ?solve_b_into:(Vec.t -> Vec.t -> unit) ->
  matvec:(Vec.t -> Vec.t) ->
  solve_b:(Vec.t -> Vec.t) ->
  kappa:float ->
  eps:float ->
  b:Vec.t ->
  unit ->
  result
(** Runs the fixed Chebyshev recurrence for [iterations_bound] steps (or
    [max_iter] if given), using [solve_b] as the preconditioner solve.
    No adaptive stopping: the round complexity of the distributed version is
    deterministic given [kappa] and [eps], exactly as in the paper. *)

val solve_adaptive :
  ?x0:Vec.t ->
  ?max_iter:int ->
  ?matvec_into:(Vec.t -> Vec.t -> unit) ->
  ?solve_b_into:(Vec.t -> Vec.t -> unit) ->
  matvec:(Vec.t -> Vec.t) ->
  solve_b:(Vec.t -> Vec.t) ->
  kappa:float ->
  rtol:float ->
  b:Vec.t ->
  unit ->
  result
(** Same recurrence but stops as soon as [||b - A y||_2 <= rtol * ||b||_2];
    used to *measure* iteration counts against the theoretical bound. *)
