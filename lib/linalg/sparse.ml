type t = {
  r : int;
  c : int;
  row_ptr : int array; (* length r+1 *)
  col_idx : int array; (* length nnz *)
  values : float array; (* length nnz *)
}

let rows m = m.r
let cols m = m.c
let nnz m = Array.length m.values

(* Structural sparsity test: a stored entry is live iff it is not bitwise
   zero.  Exact comparison is intended — this decides storage, not numeric
   closeness — and the monomorphic annotation keeps the hot paths unboxed. *)
(* lbcc-lint: allow det-float-poly-compare *)
let nonzero (v : float) = v <> 0.0

let of_triplets ~rows:r ~cols:c triplets =
  if r < 0 || c < 0 then invalid_arg "Sparse.of_triplets: negative dimension";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= r || j < 0 || j >= c then
        invalid_arg
          (Printf.sprintf "Sparse.of_triplets: entry (%d,%d) out of %dx%d" i j r c))
    triplets;
  (* Sort by (row, col) and merge duplicates. *)
  let arr = Array.of_list triplets in
  Array.sort
    (fun (i1, j1, _) (i2, j2, _) ->
      if i1 <> i2 then Int.compare i1 i2 else Int.compare j1 j2)
    arr;
  let merged = ref [] and count = ref 0 in
  let n = Array.length arr in
  let k = ref 0 in
  while !k < n do
    let i, j, _ = arr.(!k) in
    let v = ref 0.0 in
    while
      !k < n
      && (let i', j', _ = arr.(!k) in
          i' = i && j' = j)
    do
      let _, _, x = arr.(!k) in
      v := !v +. x;
      incr k
    done;
    if nonzero !v then begin
      merged := (i, j, !v) :: !merged;
      incr count
    end
  done;
  let entries = Array.of_list (List.rev !merged) in
  let m = Array.length entries in
  let row_ptr = Array.make (r + 1) 0 in
  Array.iter (fun (i, _, _) -> row_ptr.(i + 1) <- row_ptr.(i + 1) + 1) entries;
  for i = 1 to r do
    row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
  done;
  let col_idx = Array.make m 0 and values = Array.make m 0.0 in
  Array.iteri
    (fun k (_, j, v) ->
      col_idx.(k) <- j;
      values.(k) <- v)
    entries;
  { r; c; row_ptr; col_idx; values }

let of_dense d =
  let triplets = ref [] in
  for i = Dense.rows d - 1 downto 0 do
    for j = Dense.cols d - 1 downto 0 do
      let v = Dense.get d i j in
      if nonzero v then triplets := (i, j, v) :: !triplets
    done
  done;
  of_triplets ~rows:(Dense.rows d) ~cols:(Dense.cols d) !triplets

let iter_row m i f =
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let iter m f =
  for i = 0 to m.r - 1 do
    iter_row m i (fun j v -> f i j v)
  done

let fold m ~init ~f =
  let acc = ref init in
  iter m (fun i j v -> acc := f !acc i j v);
  !acc

let to_dense m =
  let d = Dense.create m.r m.c in
  iter m (fun i j v -> Dense.add_entry d i j v);
  d

(* Rows are independent, so matvec parallelizes over row chunks with
   bit-identical results (each row's accumulation order is unchanged).
   Small matrices stay sequential — a dispatch costs more than the work. *)
let parallel_threshold_nnz = 1 lsl 14
let parallel_threshold_rows = 256

let matvec_into m x y =
  if Array.length x <> m.c then invalid_arg "Sparse.matvec_into: dimension mismatch";
  if Array.length y <> m.r then invalid_arg "Sparse.matvec_into: dimension mismatch";
  let rows lo hi =
    for i = lo to hi - 1 do
      let acc = ref 0.0 in
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
      done;
      y.(i) <- !acc
    done
  in
  if m.r >= parallel_threshold_rows && nnz m >= parallel_threshold_nnz then
    Lbcc_util.Pool.parallel_for (Lbcc_util.Pool.default ()) ~n:m.r rows
  else rows 0 m.r

let matvec m x =
  if Array.length x <> m.c then invalid_arg "Sparse.matvec: dimension mismatch";
  let y = Array.make m.r 0.0 in
  matvec_into m x y;
  y

(* Column scatter: rows race on [y], so this one stays sequential. *)
let matvec_t_into m x y =
  if Array.length x <> m.r then invalid_arg "Sparse.matvec_t_into: dimension mismatch";
  if Array.length y <> m.c then invalid_arg "Sparse.matvec_t_into: dimension mismatch";
  Array.fill y 0 (Array.length y) 0.0;
  for i = 0 to m.r - 1 do
    let xi = x.(i) in
    if nonzero xi then iter_row m i (fun j v -> y.(j) <- y.(j) +. (v *. xi))
  done

let matvec_t m x =
  if Array.length x <> m.r then invalid_arg "Sparse.matvec_t: dimension mismatch";
  let y = Array.make m.c 0.0 in
  matvec_t_into m x y;
  y

(* Counting-sort transpose: one pass counts entries per output row, a second
   places them.  Scanning input rows in ascending order keeps each output
   row sorted; explicit zeros are dropped exactly as [of_triplets] would. *)
let transpose m =
  let row_ptr = Array.make (m.c + 1) 0 in
  for k = 0 to Array.length m.values - 1 do
    if nonzero m.values.(k) then
      row_ptr.(m.col_idx.(k) + 1) <- row_ptr.(m.col_idx.(k) + 1) + 1
  done;
  for j = 1 to m.c do
    row_ptr.(j) <- row_ptr.(j) + row_ptr.(j - 1)
  done;
  let out = row_ptr.(m.c) in
  let col_idx = Array.make out 0 and values = Array.make out 0.0 in
  let fill = Array.sub row_ptr 0 m.c in
  for i = 0 to m.r - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let v = m.values.(k) in
      if nonzero v then begin
        let j = m.col_idx.(k) in
        let pos = fill.(j) in
        fill.(j) <- pos + 1;
        col_idx.(pos) <- i;
        values.(pos) <- v
      end
    done
  done;
  { r = m.c; c = m.r; row_ptr; col_idx; values }

let scale s m = { m with values = Array.map (fun v -> s *. v) m.values }

(* Linear two-pointer merge over the sorted rows of both operands.  Entries
   summing (or standing alone as) exactly 0.0 are dropped, matching the
   historical triplet round-trip; two-term IEEE addition is commutative, so
   the sums are bitwise those of the old path. *)
let add a b =
  if a.r <> b.r || a.c <> b.c then invalid_arg "Sparse.add: dimension mismatch";
  let cap = nnz a + nnz b in
  let col_idx = Array.make cap 0 and values = Array.make cap 0.0 in
  let row_ptr = Array.make (a.r + 1) 0 in
  let k = ref 0 in
  let push j v =
    if nonzero v then begin
      col_idx.(!k) <- j;
      values.(!k) <- v;
      incr k
    end
  in
  for i = 0 to a.r - 1 do
    let ka = ref a.row_ptr.(i) and kb = ref b.row_ptr.(i) in
    let ea = a.row_ptr.(i + 1) and eb = b.row_ptr.(i + 1) in
    while !ka < ea && !kb < eb do
      let ja = a.col_idx.(!ka) and jb = b.col_idx.(!kb) in
      if ja < jb then begin
        push ja a.values.(!ka);
        incr ka
      end
      else if jb < ja then begin
        push jb b.values.(!kb);
        incr kb
      end
      else begin
        push ja (a.values.(!ka) +. b.values.(!kb));
        incr ka;
        incr kb
      end
    done;
    while !ka < ea do
      push a.col_idx.(!ka) a.values.(!ka);
      incr ka
    done;
    while !kb < eb do
      push b.col_idx.(!kb) b.values.(!kb);
      incr kb
    done;
    row_ptr.(i + 1) <- !k
  done;
  {
    r = a.r;
    c = a.c;
    row_ptr;
    col_idx = Array.sub col_idx 0 !k;
    values = Array.sub values 0 !k;
  }

let row_scale d m =
  if Array.length d <> m.r then invalid_arg "Sparse.row_scale: dimension mismatch";
  let values = Array.copy m.values in
  for i = 0 to m.r - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      values.(k) <- values.(k) *. d.(i)
    done
  done;
  { m with values }

let col_scale m d =
  if Array.length d <> m.c then invalid_arg "Sparse.col_scale: dimension mismatch";
  let values = Array.copy m.values in
  for k = 0 to Array.length values - 1 do
    values.(k) <- values.(k) *. d.(m.col_idx.(k))
  done;
  { m with values }

let diag m =
  let n = min m.r m.c in
  let d = Array.make n 0.0 in
  for i = 0 to n - 1 do
    iter_row m i (fun j v -> if j = i then d.(i) <- d.(i) +. v)
  done;
  d

let get m i j =
  let acc = ref 0.0 in
  iter_row m i (fun j' v -> if j' = j then acc := !acc +. v);
  !acc

let gram a d =
  if Array.length d <> a.r then invalid_arg "Sparse.gram: dimension mismatch";
  let g = Dense.create a.c a.c in
  for i = 0 to a.r - 1 do
    let di = d.(i) in
    if nonzero di then
      iter_row a i (fun j1 v1 ->
          iter_row a i (fun j2 v2 -> Dense.add_entry g j1 j2 (di *. v1 *. v2)))
  done;
  g

let pp ppf m =
  Format.fprintf ppf "@[<v>sparse %dx%d nnz=%d@," m.r m.c (nnz m);
  iter m (fun i j v -> Format.fprintf ppf "(%d,%d)=%g@," i j v);
  Format.fprintf ppf "@]"
