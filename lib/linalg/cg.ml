type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

(* The loop runs over preallocated workspaces [ap], [r], [z]; per-iteration
   allocation is zero when the caller provides the [_into] operators and
   one operator result otherwise.  The arithmetic sequence is exactly the
   historical allocating loop's, so iteration counts and residuals are
   unchanged bit for bit. *)
let solve_preconditioned ?x0 ?max_iter ?(tol = 1e-10) ?matvec_into
    ?precond_into ~matvec ~precond ~b () =
  let n = Vec.dim b in
  let max_iter = match max_iter with Some m -> m | None -> 10 * Stdlib.max n 1 in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let apply_a =
    match matvec_into with
    | Some f -> f
    | None -> fun v dst -> Vec.blit (matvec v) dst
  in
  let apply_m =
    match precond_into with
    | Some f -> f
    | None -> fun v dst -> Vec.blit (precond v) dst
  in
  let ap = Vec.zeros n and r = Vec.zeros n and z = Vec.zeros n in
  apply_a x ap;
  Vec.sub_into b ap r;
  apply_m r z;
  let p = Vec.copy z in
  let rz = ref (Vec.dot r z) in
  let bnorm = Float.max (Vec.norm2 b) 1e-300 in
  let iterations = ref 0 in
  let finished () = Vec.norm2 r <= tol *. bnorm in
  while (not (finished ())) && !iterations < max_iter do
    incr iterations;
    apply_a p ap;
    let pap = Vec.dot p ap in
    if pap <= 0.0 then
      (* Stall on numerically indefinite directions rather than diverging. *)
      iterations := max_iter
    else begin
      let alpha = !rz /. pap in
      Vec.axpy alpha p x;
      Vec.axpy (-.alpha) ap r;
      apply_m r z;
      let rz' = Vec.dot r z in
      let beta = rz' /. !rz in
      rz := rz';
      for i = 0 to n - 1 do
        p.(i) <- z.(i) +. (beta *. p.(i))
      done
    end
  done;
  let res = Vec.norm2 r in
  { solution = x; iterations = !iterations; residual_norm = res; converged = res <= tol *. bnorm }

let solve ?x0 ?max_iter ?tol ?matvec_into ~matvec ~b () =
  solve_preconditioned ?x0 ?max_iter ?tol ?matvec_into
    ~precond_into:Vec.blit ~matvec ~precond:Vec.copy ~b ()
