type t = float array

let create n x = Array.make n x
let zeros n = Array.make n 0.0
let ones n = Array.make n 1.0
let init = Array.init

let basis n i =
  let v = zeros n in
  v.(i) <- 1.0;
  v

let copy = Array.copy
let dim = Array.length

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
        (Array.length x) (Array.length y))

let map2 f x y =
  check_dims "map2" x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let add x y = map2 ( +. ) x y
let sub x y = map2 ( -. ) x y
let scale a x = Array.map (fun v -> a *. v) x
let neg x = scale (-1.0) x
let mul x y = map2 ( *. ) x y
let div x y = map2 ( /. ) x y
let recip x = Array.map (fun v -> 1.0 /. v) x

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

(* In-place kernels: same elementwise arithmetic as their allocating
   counterparts (identical rounding), writing into a caller-owned buffer.
   Destinations may alias inputs. *)

let blit x dst =
  check_dims "blit" x dst;
  Array.blit x 0 dst 0 (Array.length x)

let add_into x y dst =
  check_dims "add_into" x y;
  check_dims "add_into" x dst;
  for i = 0 to Array.length x - 1 do
    dst.(i) <- x.(i) +. y.(i)
  done

let sub_into x y dst =
  check_dims "sub_into" x y;
  check_dims "sub_into" x dst;
  for i = 0 to Array.length x - 1 do
    dst.(i) <- x.(i) -. y.(i)
  done

let scale_into a x dst =
  check_dims "scale_into" x dst;
  for i = 0 to Array.length x - 1 do
    dst.(i) <- a *. x.(i)
  done

let mul_into x y dst =
  check_dims "mul_into" x y;
  check_dims "mul_into" x dst;
  for i = 0 to Array.length x - 1 do
    dst.(i) <- x.(i) *. y.(i)
  done

let fill_zero dst = Array.fill dst 0 (Array.length dst) 0.0

(* dst <- a*dst + b*z, the Chebyshev direction update.  Rounding matches
   add (scale a dst) (scale b z). *)
let axpby_into a b z dst =
  check_dims "axpby_into" z dst;
  for i = 0 to Array.length z - 1 do
    dst.(i) <- (a *. dst.(i)) +. (b *. z.(i))
  done

let mean_center_into x dst =
  check_dims "mean_center_into" x dst;
  let n = Array.length x in
  if n > 0 then begin
    (* Same left-to-right summation as [sum], as an allocation-free loop. *)
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. x.(i)
    done;
    let m = !s /. float_of_int n in
    for i = 0 to n - 1 do
      dst.(i) <- x.(i) -. m
    done
  end

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x
let norm1 x = Array.fold_left (fun acc v -> acc +. Float.abs v) 0.0 x

let dist2 x y = norm2 (sub x y)

let weighted_norm w x =
  check_dims "weighted_norm" w x;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (w.(i) *. x.(i) *. x.(i))
  done;
  sqrt !acc

let sum x = Array.fold_left ( +. ) 0.0 x
let map = Array.map

let mean_center x =
  let n = Array.length x in
  if n = 0 then [||]
  else begin
    let m = sum x /. float_of_int n in
    Array.map (fun v -> v -. m) x
  end

let clamp ~lo ~hi x =
  check_dims "clamp" lo x;
  check_dims "clamp" hi x;
  Array.init (Array.length x) (fun i -> Float.min hi.(i) (Float.max lo.(i) x.(i)))

let max_elt x = Array.fold_left Float.max neg_infinity x
let min_elt x = Array.fold_left Float.min infinity x

let pp ppf x =
  Format.fprintf ppf "[|";
  Array.iteri
    (fun i v -> if i > 0 then Format.fprintf ppf "; %g" v else Format.fprintf ppf "%g" v)
    x;
  Format.fprintf ppf "|]"
