type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
}

let iterations_bound ~kappa ~eps =
  if kappa < 1.0 then invalid_arg "Chebyshev.iterations_bound: kappa < 1";
  if eps <= 0.0 then invalid_arg "Chebyshev.iterations_bound: eps <= 0";
  1 + int_of_float (Float.ceil (sqrt kappa *. log (2.0 /. eps)))

(* Preconditioned Chebyshev (Saad, "Iterative methods for sparse linear
   systems", Algorithm 12.1, preconditioned variant).  The eigenvalues of
   B^{-1}A lie in [1/kappa, 1].

   The recurrence runs over preallocated workspaces [ax], [r], [z], [d];
   with [_into] operators a whole iteration allocates nothing.  The
   elementwise arithmetic matches the historical allocating loop exactly
   (the [d] update rounds as [add (scale cd d) (scale cz z)]), so iterates
   and residuals are bitwise unchanged. *)
let run ?x0 ?matvec_into ?solve_b_into ~matvec ~solve_b ~kappa ~b ~iters
    ~stop () =
  let n = Vec.dim b in
  let lmin = 1.0 /. kappa and lmax = 1.0 in
  let theta = (lmax +. lmin) /. 2.0 in
  let delta = (lmax -. lmin) /. 2.0 in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let apply_a =
    match matvec_into with
    | Some f -> f
    | None -> fun v dst -> Vec.blit (matvec v) dst
  in
  let apply_b =
    match solve_b_into with
    | Some f -> f
    | None -> fun v dst -> Vec.blit (solve_b v) dst
  in
  let ax = Vec.zeros n and r = Vec.zeros n and z = Vec.zeros n in
  apply_a x ax;
  Vec.sub_into b ax r;
  apply_b r z;
  let d = Vec.zeros n in
  Vec.scale_into (1.0 /. theta) z d;
  let sigma1 = theta /. delta in
  let rho_prev = ref (1.0 /. sigma1) in
  let bnorm = Float.max (Vec.norm2 b) 1e-300 in
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ && !k < iters do
    incr k;
    Vec.axpy 1.0 d x;
    apply_a x ax;
    Vec.sub_into b ax r;
    if stop (Vec.norm2 r /. bnorm) then continue_ := false
    else begin
      apply_b r z;
      let rho = 1.0 /. ((2.0 *. sigma1) -. !rho_prev) in
      let coeff_d = rho *. !rho_prev in
      let coeff_z = 2.0 *. rho /. delta in
      Vec.axpby_into coeff_d coeff_z z d;
      rho_prev := rho
    end
  done;
  { solution = x; iterations = !k; residual_norm = Vec.norm2 r /. bnorm }

let solve ?x0 ?max_iter ?matvec_into ?solve_b_into ~matvec ~solve_b ~kappa
    ~eps ~b () =
  let iters =
    match max_iter with Some m -> m | None -> iterations_bound ~kappa ~eps
  in
  run ?x0 ?matvec_into ?solve_b_into ~matvec ~solve_b ~kappa ~b ~iters
    ~stop:(fun _ -> false) ()

let solve_adaptive ?x0 ?max_iter ?matvec_into ?solve_b_into ~matvec ~solve_b
    ~kappa ~rtol ~b () =
  let iters =
    match max_iter with
    | Some m -> m
    | None -> 4 * iterations_bound ~kappa ~eps:rtol
  in
  run ?x0 ?matvec_into ?solve_b_into ~matvec ~solve_b ~kappa ~b ~iters
    ~stop:(fun res -> res <= rtol) ()
