(** Dense matrices in row-major order.

    Sized for the "unlimited internal computation" steps of the simulated
    vertices: factorizations of sparsifier Laplacians ([n] up to a few
    thousand), reference computations for tests, and the exact spectral
    certificates of EXPERIMENTS.md. *)

type t

val create : int -> int -> t
(** [create r c] is the zero matrix with [r] rows and [c] columns. *)

val identity : int -> t
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val init : int -> int -> (int -> int -> float) -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add_entry : t -> int -> int -> float -> unit
val copy : t -> t

val fill : t -> float -> unit
(** [fill m v] sets every entry of [m] to [v] in place — lets hot loops
    (the IPM normal-matrix assembly) reuse one buffer instead of
    reallocating per call. *)

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val matmul : t -> t -> t
(** Row-chunk parallel on the default pool for large operands; per-row
    arithmetic order is fixed, so results are identical at any pool size
    (as for {!matvec} and {!factorize}). *)

val matvec : t -> Vec.t -> Vec.t

val matvec_into : t -> Vec.t -> Vec.t -> unit
(** [matvec_into m x y] writes [m x] into [y] without allocating.  [y] must
    not alias [x]. *)

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t a x] is [a^T x]. *)

val diag : t -> Vec.t
val of_diag : Vec.t -> t
val trace : t -> float
val frobenius : t -> float
val symmetrize : t -> t
(** [(a + a^T) / 2]. *)

val is_symmetric : ?tol:float -> t -> bool

val solve : t -> Vec.t -> Vec.t
(** Gaussian elimination with partial pivoting.
    @raise Failure if the matrix is (numerically) singular. *)

val solve_many : t -> Vec.t array -> Vec.t array
(** Factor once, solve for several right-hand sides. *)

type factorization
(** A reusable LU factorization with partial pivoting. *)

val factorize : t -> factorization
(** @raise Failure if the matrix is (numerically) singular. *)

val solve_factored : factorization -> Vec.t -> Vec.t

val solve_factored_into : factorization -> Vec.t -> Vec.t -> unit
(** [solve_factored_into f b x] writes the solution into [x] without
    allocating.  [x] must not alias [b] (the permutation gather reads [b]
    while writing [x]). *)

val inverse : t -> t

val cholesky : t -> t
(** Lower-triangular Cholesky factor of an SPD matrix.
    @raise Failure if the matrix is not (numerically) positive definite. *)

val cholesky_solve : t -> Vec.t -> Vec.t
(** [cholesky_solve l b] solves [l l^T x = b] given the factor [l]. *)

val quadratic_form : t -> Vec.t -> float
(** [x^T a x]. *)

val pp : Format.formatter -> t -> unit
