(** Weighted undirected graphs.

    Vertices are [0 .. n-1]; edges carry positive real weights and have
    stable integer identifiers [0 .. m-1].  Parallel edges and reweighting
    are allowed (sparsifiers reweight); self-loops are rejected. *)

type edge = { u : int; v : int; w : float }

type t

val create : n:int -> edge list -> t
(** @raise Invalid_argument on out-of-range endpoints, self-loops, or
    non-positive weights. *)

val of_edge_array : n:int -> edge array -> t

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val edges : t -> edge array
(** The edge array, indexed by edge identifier.  Do not mutate. *)

val edge : t -> int -> edge

val neighbors : t -> int -> (int * int) list
(** [neighbors g v] lists [(u, edge_id)] pairs for edges incident to [v]. *)

val degree : t -> int -> int

val total_weight : t -> float
val max_weight : t -> float
val min_weight : t -> float

val other_endpoint : edge -> int -> int
(** [other_endpoint e v] is the endpoint of [e] that is not [v].
    @raise Invalid_argument if [v] is not an endpoint. *)

val map_weights : (int -> edge -> float) -> t -> t
(** [map_weights f g] replaces the weight of edge [id] by [f id (edge g id)]. *)

val sub_edges : t -> int list -> t
(** Subgraph on the same vertex set keeping only the listed edge ids
    (re-indexed). *)

val union : t -> t -> t
(** Disjoint union of edge sets over the same vertex set. *)

val coalesce : t -> t
(** Merge parallel edges by summing their weights — spectrally equivalent
    (Laplacians add) and required by consumers that assume simple graphs
    (the spanner algorithm). *)

val laplacian : t -> Lbcc_linalg.Sparse.t
(** The [n x n] graph Laplacian [L = B^T W B]. *)

val laplacian_dense : t -> Lbcc_linalg.Dense.t

val incidence : t -> Lbcc_linalg.Sparse.t
(** Edge-vertex incidence matrix [B] ([m x n]): row [e] has [+1] at the head
    [v] and [-1] at the tail [u] (orientation [u -> v] by edge record). *)

val weight_vector : t -> Lbcc_linalg.Vec.t
(** Vector of edge weights indexed by edge identifier. *)

val apply_laplacian : t -> Lbcc_linalg.Vec.t -> Lbcc_linalg.Vec.t
(** Matrix-free [L x] in [O(m)]. *)

val apply_laplacian_into : t -> Lbcc_linalg.Vec.t -> Lbcc_linalg.Vec.t -> unit
(** [apply_laplacian_into g x y] writes [L x] into [y] without allocating.
    [y] must not alias [x]. *)

val components : t -> int array * int
(** [(comp, count)] where [comp.(v)] is the component index of [v]. *)

val is_connected : t -> bool

val equal_structure : t -> t -> bool
(** Same vertex count and same multiset of [(u, v, w)] (up to endpoint
    order and float equality); used by tests. *)

val pp : Format.formatter -> t -> unit
