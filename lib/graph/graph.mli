(** Weighted undirected graphs.

    Vertices are [0 .. n-1]; edges carry positive real weights and have
    stable integer identifiers [0 .. m-1].  Parallel edges and reweighting
    are allowed (sparsifiers reweight); self-loops are rejected. *)

type edge = { u : int; v : int; w : float }

type t

val create : n:int -> edge list -> t
(** @raise Invalid_argument on out-of-range endpoints, self-loops, or
    non-positive weights. *)

val of_edge_array : n:int -> edge array -> t

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val edges : t -> edge array
(** The edge array, indexed by edge identifier.  Do not mutate. *)

val edge : t -> int -> edge

val neighbors : t -> int -> (int * int) list
(** [neighbors g v] lists [(u, edge_id)] pairs for edges incident to [v]. *)

val degree : t -> int -> int

val total_weight : t -> float
val max_weight : t -> float
val min_weight : t -> float

val other_endpoint : edge -> int -> int
(** [other_endpoint e v] is the endpoint of [e] that is not [v].
    @raise Invalid_argument if [v] is not an endpoint. *)

val map_weights : (int -> edge -> float) -> t -> t
(** [map_weights f g] replaces the weight of edge [id] by [f id (edge g id)]. *)

val sub_edges : t -> int list -> t
(** Subgraph on the same vertex set keeping only the listed edge ids
    (re-indexed). *)

val union : t -> t -> t
(** Disjoint union of edge sets over the same vertex set. *)

val coalesce : t -> t
(** Merge parallel edges by summing their weights — spectrally equivalent
    (Laplacians add) and required by consumers that assume simple graphs
    (the spanner algorithm). *)

val laplacian : t -> Lbcc_linalg.Sparse.t
(** The [n x n] graph Laplacian [L = B^T W B]. *)

val laplacian_dense : t -> Lbcc_linalg.Dense.t

val incidence : t -> Lbcc_linalg.Sparse.t
(** Edge-vertex incidence matrix [B] ([m x n]): row [e] has [+1] at the head
    [v] and [-1] at the tail [u] (orientation [u -> v] by edge record). *)

val weight_vector : t -> Lbcc_linalg.Vec.t
(** Vector of edge weights indexed by edge identifier. *)

val apply_laplacian : t -> Lbcc_linalg.Vec.t -> Lbcc_linalg.Vec.t
(** Matrix-free [L x] in [O(m)]. *)

val apply_laplacian_into : t -> Lbcc_linalg.Vec.t -> Lbcc_linalg.Vec.t -> unit
(** [apply_laplacian_into g x y] writes [L x] into [y] without allocating.
    [y] must not alias [x]. *)

val components : t -> int array * int
(** [(comp, count)] where [comp.(v)] is the component index of [v]. *)

val is_connected : t -> bool

val equal_structure : t -> t -> bool
(** Same vertex count and same multiset of [(u, v, w)] (up to endpoint
    order and float equality); used by tests. *)

val pp : Format.formatter -> t -> unit

(** {2 Batched mutation}

    A {!Delta.t} is a batch of edge inserts, deletes, and reweights against
    one graph version, with every delete/reweight naming a {e pre-delta}
    edge id.  Deltas carry a canonical normal form (inserts canonically
    oriented and sorted, delete/reweight ids sorted and deduplicated with
    last-op-wins semantics), so equal mutations compare equal and every
    consumer — fingerprint patching, incremental re-sparsification, the
    serve-daemon [update] opcode — sees the same bytes for the same edit. *)

module Delta : sig
  type op =
    | Insert of edge  (** add a (possibly parallel) edge *)
    | Delete of int  (** remove the edge with this pre-delta id *)
    | Reweight of int * float  (** replace the weight of a pre-delta id *)

  type t

  val empty : t

  val of_ops : op list -> t
  (** Normalize an op sequence.  Ops are interpreted left to right against a
      single graph version: for the same edge id the last op wins (a
      [Reweight] followed by a [Delete] is the [Delete]).
      @raise Invalid_argument on self-loop inserts, non-positive or
      non-finite weights, or negative edge ids. *)

  val ops : t -> op list
  (** The normal form as an op list: deletes, then reweights, then inserts. *)

  val inserts : t -> edge array
  val deletes : t -> int array
  val reweights : t -> (int * float) array

  val size : t -> int
  (** Total op count after normalization. *)

  val is_empty : t -> bool

  val max_id : t -> int
  (** Largest pre-delta edge id referenced, or [-1] if none. *)

  val pp : Format.formatter -> t -> unit
end

val apply : t -> Delta.t -> t
(** Apply a delta: surviving edges keep their relative order and are
    re-indexed compactly, inserted edges follow in canonical order, and the
    vertex set is unchanged.
    @raise Invalid_argument if the delta references an edge id [>= m] or an
    insert endpoint [>= n]. *)

val apply_mapped : t -> Delta.t -> t * int array
(** Like {!apply}, also returning the edge-id remap: entry [id] is the
    post-delta id of pre-delta edge [id], or [-1] if it was deleted. *)

val delta_touched : t -> Delta.t -> bool array
(** Per-vertex flag: incident to an inserted, deleted, or reweighted edge —
    the neighborhoods incremental re-sparsification must revisit. *)
