open Lbcc_util

let weight prng w_max =
  if w_max <= 1 then 1.0 else float_of_int (1 + Prng.int prng w_max)

let dedupe_edges edges =
  (* Keep the first edge per unordered endpoint pair. *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (e : Graph.edge) ->
      let key = (min e.u e.v, max e.u e.v) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    edges

let erdos_renyi prng ~n ~p ~w_max =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bernoulli prng p then
        edges := { Graph.u; v; w = weight prng w_max } :: !edges
    done
  done;
  Graph.create ~n !edges

let random_cycle_edges prng ~n ~w_max =
  let perm = Array.init n (fun i -> i) in
  Prng.shuffle prng perm;
  List.init n (fun i ->
      { Graph.u = perm.(i); v = perm.((i + 1) mod n); w = weight prng w_max })

let erdos_renyi_connected prng ~n ~p ~w_max =
  if n < 3 then invalid_arg "Gen.erdos_renyi_connected: n must be >= 3";
  let base = Graph.edges (erdos_renyi prng ~n ~p ~w_max) in
  let cycle = random_cycle_edges prng ~n ~w_max in
  Graph.create ~n (dedupe_edges (Array.to_list base @ cycle))

let complete ?(w_max = 1) prng ~n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := { Graph.u; v; w = weight prng w_max } :: !edges
    done
  done;
  Graph.create ~n !edges

let ring ?(w_max = 1) prng ~n =
  if n < 3 then invalid_arg "Gen.ring: n must be >= 3";
  Graph.create ~n
    (List.init n (fun i -> { Graph.u = i; v = (i + 1) mod n; w = weight prng w_max }))

let grid ?(w_max = 1) prng ~rows ~cols =
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        edges := { Graph.u = idx r c; v = idx r (c + 1); w = weight prng w_max } :: !edges;
      if r + 1 < rows then
        edges := { Graph.u = idx r c; v = idx (r + 1) c; w = weight prng w_max } :: !edges
    done
  done;
  Graph.create ~n:(rows * cols) !edges

let torus ?(w_max = 1) prng ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Gen.torus: need rows, cols >= 3";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges :=
        { Graph.u = idx r c; v = idx r ((c + 1) mod cols); w = weight prng w_max }
        :: { Graph.u = idx r c; v = idx ((r + 1) mod rows) c; w = weight prng w_max }
        :: !edges
    done
  done;
  Graph.create ~n:(rows * cols) !edges

let clique_edges prng ~offset ~size ~w_max =
  let edges = ref [] in
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      edges := { Graph.u = offset + u; v = offset + v; w = weight prng w_max } :: !edges
    done
  done;
  !edges

let barbell ?(w_max = 1) prng ~clique ~path =
  if clique < 2 then invalid_arg "Gen.barbell: clique must be >= 2";
  if path < 1 then invalid_arg "Gen.barbell: path must be >= 1";
  let n = (2 * clique) + path - 1 in
  let left = clique_edges prng ~offset:0 ~size:clique ~w_max in
  let right = clique_edges prng ~offset:(clique + path - 1) ~size:clique ~w_max in
  (* Path from vertex clique-1 through path-1 internal vertices to the
     second clique's first vertex. *)
  let path_edges =
    List.init path (fun i ->
        { Graph.u = clique - 1 + i; v = clique + i; w = weight prng w_max })
  in
  Graph.create ~n (left @ right @ path_edges)

let random_geometric prng ~n ~radius ~w_max =
  let pts = Array.init n (fun _ -> (Prng.float prng, Prng.float prng)) in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let x1, y1 = pts.(u) and x2, y2 = pts.(v) in
      let d = sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0)) in
      if d <= radius then edges := { Graph.u; v; w = weight prng w_max } :: !edges
    done
  done;
  let g = Graph.create ~n !edges in
  if Graph.is_connected g then g
  else begin
    (* Stitch components along a random cycle so experiments always run on
       connected inputs. *)
    let cycle = random_cycle_edges prng ~n ~w_max in
    Graph.create ~n (dedupe_edges (!edges @ cycle))
  end

let preferential_attachment prng ~n ~degree ~w_max =
  if degree < 1 then invalid_arg "Gen.preferential_attachment: degree >= 1";
  if n <= degree then invalid_arg "Gen.preferential_attachment: n must exceed degree";
  let targets = ref [] in
  (* endpoint multiset for preferential sampling *)
  let endpoints = ref [] and n_endpoints = ref 0 in
  let edges = ref [] in
  let seed_size = degree + 1 in
  for u = 0 to seed_size - 1 do
    for v = u + 1 to seed_size - 1 do
      edges := { Graph.u; v; w = weight prng w_max } :: !edges;
      endpoints := u :: v :: !endpoints;
      n_endpoints := !n_endpoints + 2
    done
  done;
  let endpoint_arr = ref (Array.of_list !endpoints) in
  for v = seed_size to n - 1 do
    targets := [];
    let chosen = Hashtbl.create 8 in
    while Hashtbl.length chosen < degree do
      let t = !endpoint_arr.(Prng.int prng (Array.length !endpoint_arr)) in
      if not (Hashtbl.mem chosen t) then Hashtbl.add chosen t ()
    done;
    Tbl.iter_sorted ~compare:Int.compare
      (fun t () ->
        edges := { Graph.u = v; v = t; w = weight prng w_max } :: !edges;
        endpoints := v :: t :: !endpoints)
      chosen;
    endpoint_arr := Array.of_list !endpoints
  done;
  Graph.create ~n !edges

let random_regularish prng ~n ~degree ~w_max =
  if degree < 2 then invalid_arg "Gen.random_regularish: degree >= 2";
  let cycles = Stdlib.max 1 (degree / 2) in
  let edges = ref [] in
  for _ = 1 to cycles do
    edges := random_cycle_edges prng ~n ~w_max @ !edges
  done;
  Graph.create ~n (dedupe_edges !edges)

let delta ?(w_max = 1) ?(connected = false) prng ~graph ~inserts ~deletes
    ~reweights () =
  let n = Graph.n graph and m = Graph.m graph in
  if n < 2 then invalid_arg "Gen.delta: graph must have >= 2 vertices";
  let random_insert () =
    let u = Prng.int prng n in
    let v = ref (Prng.int prng (n - 1)) in
    if !v >= u then incr v;
    Graph.Delta.Insert { Graph.u; v = !v; w = weight prng w_max }
  in
  let ins = List.init inserts (fun _ -> random_insert ()) in
  let rw =
    if m = 0 then []
    else
      List.init reweights (fun _ ->
          Graph.Delta.Reweight (Prng.int prng m, weight prng w_max))
  in
  let pick_deletes () =
    if m = 0 then []
    else begin
      let chosen = Hashtbl.create 8 in
      let want = Stdlib.min deletes m in
      (* Distinct ids; bounded rejection keeps the draw deterministic. *)
      let attempts = ref 0 in
      while Hashtbl.length chosen < want && !attempts < 64 * want do
        incr attempts;
        let id = Prng.int prng m in
        if not (Hashtbl.mem chosen id) then Hashtbl.add chosen id ()
      done;
      let dels = ref [] in
      Tbl.iter_sorted ~compare:Int.compare
        (fun id () -> dels := Graph.Delta.Delete id :: !dels)
        chosen;
      !dels
    end
  in
  let build dels = Graph.Delta.of_ops (ins @ rw @ dels) in
  if not connected then build (pick_deletes ())
  else begin
    (* Rejection-sample delete sets that would disconnect the graph; after a
       few failures fall back to a delete-free delta. *)
    let rec try_deletes k =
      if k = 0 then build []
      else
        let d = build (pick_deletes ()) in
        if Graph.is_connected (Graph.apply graph d) then d
        else try_deletes (k - 1)
    in
    try_deletes 16
  end

let dumbbell_expander prng ~n ~w_max =
  if n < 8 then invalid_arg "Gen.dumbbell_expander: n must be >= 8";
  let half = n / 2 in
  let left = random_regularish prng ~n:half ~degree:4 ~w_max in
  let right = random_regularish prng ~n:(n - half) ~degree:4 ~w_max in
  let shift (e : Graph.edge) = { e with u = e.u + half; v = e.v + half } in
  let edges =
    Array.to_list (Graph.edges left)
    @ List.map shift (Array.to_list (Graph.edges right))
    @ [ { Graph.u = 0; v = half; w = weight prng w_max } ]
  in
  Graph.create ~n edges
