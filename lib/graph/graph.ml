module Sparse = Lbcc_linalg.Sparse
module Dense = Lbcc_linalg.Dense
module Vec = Lbcc_linalg.Vec

type edge = { u : int; v : int; w : float }

type t = {
  n : int;
  edges : edge array;
  adjacency : (int * int) list array; (* per vertex: (neighbor, edge id) *)
}

let check_edge n e =
  if e.u < 0 || e.u >= n || e.v < 0 || e.v >= n then
    invalid_arg (Printf.sprintf "Graph.create: endpoint out of range (%d,%d)" e.u e.v);
  if e.u = e.v then invalid_arg "Graph.create: self-loop";
  if e.w <= 0.0 || not (Float.is_finite e.w) then
    invalid_arg "Graph.create: weights must be positive and finite"

let of_edge_array ~n edges =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  Array.iter (check_edge n) edges;
  let adjacency = Array.make n [] in
  Array.iteri
    (fun id e ->
      adjacency.(e.u) <- (e.v, id) :: adjacency.(e.u);
      adjacency.(e.v) <- (e.u, id) :: adjacency.(e.v))
    edges;
  { n; edges; adjacency }

let create ~n edges = of_edge_array ~n (Array.of_list edges)

let n g = g.n
let m g = Array.length g.edges
let edges g = g.edges
let edge g id = g.edges.(id)
let neighbors g v = g.adjacency.(v)
let degree g v = List.length g.adjacency.(v)

let total_weight g = Array.fold_left (fun acc e -> acc +. e.w) 0.0 g.edges

let max_weight g = Array.fold_left (fun acc e -> Float.max acc e.w) 0.0 g.edges

let min_weight g = Array.fold_left (fun acc e -> Float.min acc e.w) infinity g.edges

let other_endpoint e v =
  if e.u = v then e.v
  else if e.v = v then e.u
  else invalid_arg "Graph.other_endpoint: vertex not an endpoint"

let map_weights f g =
  let edges = Array.mapi (fun id e -> { e with w = f id e }) g.edges in
  of_edge_array ~n:g.n edges

let sub_edges g ids =
  let edges = List.map (fun id -> g.edges.(id)) ids in
  create ~n:g.n edges

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: vertex count mismatch";
  of_edge_array ~n:a.n (Array.append a.edges b.edges)

let coalesce g =
  let tbl = Hashtbl.create (m g) in
  Array.iter
    (fun e ->
      let key = (Stdlib.min e.u e.v, Stdlib.max e.u e.v) in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (prev +. e.w))
    g.edges;
  let compare_key (u1, v1) (u2, v2) =
    let c = Int.compare u1 u2 in
    if c <> 0 then c else Int.compare v1 v2
  in
  let edges =
    Lbcc_util.Tbl.sorted_bindings ~compare:compare_key tbl
    |> List.map (fun ((u, v), w) -> { u; v; w })
  in
  create ~n:g.n edges

let laplacian g =
  let triplets =
    Array.to_list g.edges
    |> List.concat_map (fun e ->
           [
             (e.u, e.u, e.w);
             (e.v, e.v, e.w);
             (e.u, e.v, -.e.w);
             (e.v, e.u, -.e.w);
           ])
  in
  Sparse.of_triplets ~rows:g.n ~cols:g.n triplets

let laplacian_dense g =
  let d = Dense.create g.n g.n in
  Array.iter
    (fun e ->
      Dense.add_entry d e.u e.u e.w;
      Dense.add_entry d e.v e.v e.w;
      Dense.add_entry d e.u e.v (-.e.w);
      Dense.add_entry d e.v e.u (-.e.w))
    g.edges;
  d

let incidence g =
  let triplets =
    Array.to_list g.edges
    |> List.mapi (fun id e -> [ (id, e.v, 1.0); (id, e.u, -1.0) ])
    |> List.concat
  in
  Sparse.of_triplets ~rows:(m g) ~cols:g.n triplets

let weight_vector g = Array.map (fun e -> e.w) g.edges

let apply_laplacian_into g x y =
  if Vec.dim x <> g.n then invalid_arg "Graph.apply_laplacian: dimension mismatch";
  if Vec.dim y <> g.n then invalid_arg "Graph.apply_laplacian: dimension mismatch";
  Array.fill y 0 g.n 0.0;
  Array.iter
    (fun e ->
      let d = e.w *. (x.(e.u) -. x.(e.v)) in
      y.(e.u) <- y.(e.u) +. d;
      y.(e.v) <- y.(e.v) -. d)
    g.edges

let apply_laplacian g x =
  let y = Vec.zeros g.n in
  apply_laplacian_into g x y;
  y

let components g =
  let comp = Array.make g.n (-1) in
  let count = ref 0 in
  let stack = Stack.create () in
  for s = 0 to g.n - 1 do
    if comp.(s) < 0 then begin
      comp.(s) <- !count;
      Stack.push s stack;
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        List.iter
          (fun (u, _) ->
            if comp.(u) < 0 then begin
              comp.(u) <- !count;
              Stack.push u stack
            end)
          g.adjacency.(v)
      done;
      incr count
    end
  done;
  (comp, !count)

let is_connected g = g.n <= 1 || snd (components g) = 1

let canonical_edge e = if e.u <= e.v then (e.u, e.v, e.w) else (e.v, e.u, e.w)

let compare_canonical (u1, v1, w1) (u2, v2, w2) =
  let c = Int.compare u1 u2 in
  if c <> 0 then c
  else
    let c = Int.compare v1 v2 in
    if c <> 0 then c else Float.compare w1 w2

let equal_structure a b =
  a.n = b.n
  && m a = m b
  &&
  let ka = Array.map canonical_edge a.edges and kb = Array.map canonical_edge b.edges in
  Array.sort compare_canonical ka;
  Array.sort compare_canonical kb;
  Array.for_all2 (fun x y -> compare_canonical x y = 0) ka kb

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (m g);
  Array.iteri (fun id e -> Format.fprintf ppf "e%d: %d-%d w=%g@," id e.u e.v e.w) g.edges;
  Format.fprintf ppf "@]"

module Delta = struct
  type op = Insert of edge | Delete of int | Reweight of int * float

  type t = {
    inserts : edge array;
    deletes : int array;
    reweights : (int * float) array;
  }

  let empty = { inserts = [||]; deletes = [||]; reweights = [||] }

  let check_insert (e : edge) =
    if e.u < 0 || e.v < 0 then
      invalid_arg "Graph.Delta: negative insert endpoint";
    if e.u = e.v then invalid_arg "Graph.Delta: self-loop insert";
    if e.w <= 0.0 || not (Float.is_finite e.w) then
      invalid_arg "Graph.Delta: insert weight must be positive and finite"

  let compare_insert (a : edge) (b : edge) =
    let c = Int.compare a.u b.u in
    if c <> 0 then c
    else
      let c = Int.compare a.v b.v in
      if c <> 0 then c
      else Int64.compare (Int64.bits_of_float a.w) (Int64.bits_of_float b.w)

  (* Sequential semantics over the pre-delta edge ids: for ops targeting the
     same existing id the last one wins, so a Reweight followed by a Delete is
     just the Delete.  The normal form is order-free — inserts canonically
     oriented (u <= v) and sorted, delete/reweight ids sorted and distinct —
     so two op lists with the same effect normalize to equal values. *)
  let of_ops ops =
    let touched = Hashtbl.create 16 in
    let inserts = ref [] in
    List.iter
      (fun op ->
        match op with
        | Insert e ->
            check_insert e;
            let e = if e.u <= e.v then e else { e with u = e.v; v = e.u } in
            inserts := e :: !inserts
        | Delete id ->
            if id < 0 then invalid_arg "Graph.Delta: negative edge id";
            Hashtbl.replace touched id `Delete
        | Reweight (id, w) ->
            if id < 0 then invalid_arg "Graph.Delta: negative edge id";
            if w <= 0.0 || not (Float.is_finite w) then
              invalid_arg "Graph.Delta: reweight must be positive and finite";
            Hashtbl.replace touched id (`Reweight w))
      ops;
    let deletes = ref [] and reweights = ref [] in
    Lbcc_util.Tbl.iter_sorted ~compare:Int.compare
      (fun id op ->
        match op with
        | `Delete -> deletes := id :: !deletes
        | `Reweight w -> reweights := (id, w) :: !reweights)
      touched;
    let inserts = Array.of_list (List.rev !inserts) in
    Array.sort compare_insert inserts;
    {
      inserts;
      deletes = Array.of_list (List.rev !deletes);
      reweights = Array.of_list (List.rev !reweights);
    }

  let ops d =
    Array.to_list (Array.map (fun id -> Delete id) d.deletes)
    @ Array.to_list (Array.map (fun (id, w) -> Reweight (id, w)) d.reweights)
    @ Array.to_list (Array.map (fun e -> Insert e) d.inserts)

  let inserts d = d.inserts
  let deletes d = d.deletes
  let reweights d = d.reweights

  let size d =
    Array.length d.inserts + Array.length d.deletes + Array.length d.reweights

  let is_empty d = size d = 0

  let max_id d =
    let hi = ref (-1) in
    Array.iter (fun id -> hi := Stdlib.max !hi id) d.deletes;
    Array.iter (fun (id, _) -> hi := Stdlib.max !hi id) d.reweights;
    !hi

  let pp ppf d =
    Format.fprintf ppf "@[<v>delta +%d -%d ~%d@," (Array.length d.inserts)
      (Array.length d.deletes)
      (Array.length d.reweights);
    Array.iter (fun id -> Format.fprintf ppf "del e%d@," id) d.deletes;
    Array.iter
      (fun (id, w) -> Format.fprintf ppf "rw e%d w=%g@," id w)
      d.reweights;
    Array.iter
      (fun (e : edge) -> Format.fprintf ppf "ins %d-%d w=%g@," e.u e.v e.w)
      d.inserts;
    Format.fprintf ppf "@]"
end

let check_delta g (d : Delta.t) =
  let m0 = m g in
  if Delta.max_id d >= m0 then
    invalid_arg "Graph.apply: delta references an edge id out of range"

(* Apply a normalized delta: survivors keep their relative order and are
   compacted to ids [0 .. m'-#inserts-1]; inserted edges follow in the
   delta's canonical order.  The remap array sends each pre-delta edge id to
   its post-delta id, or -1 if deleted. *)
let apply_mapped g (d : Delta.t) =
  check_delta g d;
  let m0 = m g in
  let drop = Array.make m0 false in
  Array.iter (fun id -> drop.(id) <- true) (Delta.deletes d);
  let w = Array.map (fun e -> e.w) g.edges in
  Array.iter (fun (id, nw) -> if not drop.(id) then w.(id) <- nw)
    (Delta.reweights d);
  let remap = Array.make m0 (-1) in
  let survivors = ref [] and next = ref 0 in
  for id = m0 - 1 downto 0 do
    if not drop.(id) then survivors := id :: !survivors
  done;
  let kept =
    List.map
      (fun id ->
        remap.(id) <- !next;
        incr next;
        { (g.edges.(id)) with w = w.(id) })
      !survivors
  in
  let edges = Array.append (Array.of_list kept) (Delta.inserts d) in
  (of_edge_array ~n:g.n edges, remap)

let apply g d = fst (apply_mapped g d)

(* Vertices incident to any edge the delta inserts, deletes, or reweights —
   the neighborhoods an incremental re-sparsification must revisit. *)
let delta_touched g (d : Delta.t) =
  check_delta g d;
  let hit = Array.make g.n false in
  let mark_edge (e : edge) =
    hit.(e.u) <- true;
    hit.(e.v) <- true
  in
  Array.iter mark_edge (Delta.inserts d);
  Array.iter (fun id -> mark_edge g.edges.(id)) (Delta.deletes d);
  Array.iter (fun (id, _) -> mark_edge g.edges.(id)) (Delta.reweights d);
  hit
