(** Graph generators for the experiment workloads.

    Every generator takes an explicit PRNG for reproducibility.  Weighted
    variants draw integer weights uniformly in [\[1, w_max\]] (the paper's
    algorithms assume polynomially bounded integral weights); [w_max = 1]
    gives the unweighted case. *)

open Lbcc_util

val erdos_renyi : Prng.t -> n:int -> p:float -> w_max:int -> Graph.t
(** G(n, p) with random integer weights.  Not necessarily connected. *)

val erdos_renyi_connected : Prng.t -> n:int -> p:float -> w_max:int -> Graph.t
(** G(n, p) plus a random Hamiltonian cycle, guaranteeing connectivity while
    keeping the edge distribution ER-like. *)

val complete : ?w_max:int -> Prng.t -> n:int -> Graph.t

val ring : ?w_max:int -> Prng.t -> n:int -> Graph.t

val grid : ?w_max:int -> Prng.t -> rows:int -> cols:int -> Graph.t
(** 2D grid (mesh). *)

val torus : ?w_max:int -> Prng.t -> rows:int -> cols:int -> Graph.t

val barbell : ?w_max:int -> Prng.t -> clique:int -> path:int -> Graph.t
(** Two [clique]-cliques joined by a [path]-edge path: the classical
    bad case for cut-based sparsification and conditioning. *)

val random_geometric : Prng.t -> n:int -> radius:float -> w_max:int -> Graph.t
(** Uniform points in the unit square; edges within [radius], weight scaled
    from distance.  A spanning structure is added if disconnected. *)

val preferential_attachment : Prng.t -> n:int -> degree:int -> w_max:int -> Graph.t
(** Barabási–Albert-style heavy-tailed degrees, [degree] edges per arrival. *)

val random_regularish : Prng.t -> n:int -> degree:int -> w_max:int -> Graph.t
(** Union of [degree/2] random Hamiltonian cycles — an expander-like sparse
    graph with near-uniform degrees. *)

val dumbbell_expander : Prng.t -> n:int -> w_max:int -> Graph.t
(** Two expander halves joined by a single edge — worst-case conductance. *)

val delta :
  ?w_max:int ->
  ?connected:bool ->
  Prng.t ->
  graph:Graph.t ->
  inserts:int ->
  deletes:int ->
  reweights:int ->
  unit ->
  Graph.Delta.t
(** Random normalized delta against [graph]: [inserts] fresh edges,
    [deletes] distinct existing ids, [reweights] redrawn weights (all
    weights uniform in [\[1, w_max\]]).  With [~connected:true], delete sets
    that would disconnect the applied graph are rejection-sampled away
    (falling back to a delete-free delta), so update benchmarks always feed
    the solver connected inputs. *)
