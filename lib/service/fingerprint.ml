module Graph = Lbcc_graph.Graph

(* FNV-1a, 64-bit: h := (h lxor byte) * prime, folding in one byte at a
   time so the hash depends on every bit of every field. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix_int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    let byte = Int64.to_int (Int64.shift_right_logical v (shift * 8)) land 0xff in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

let mix_int h v = mix_int64 h (Int64.of_int v)

(* One FNV-1a chain per edge; the graph combines them by wrapping Int64
   addition.  Addition commutes, so the combined term is independent of edge
   order and — crucially — of the id compaction [Graph.apply] performs after
   deletes: patching a fingerprint by a delta only needs the hashes of the
   edges the delta names, O(|delta|) instead of O(m). *)
let edge_term (e : Graph.edge) =
  let lo = Stdlib.min e.u e.v and hi = Stdlib.max e.u e.v in
  mix_int64 (mix_int (mix_int fnv_offset lo) hi) (Int64.bits_of_float e.w)

type t = { n : int; m : int; esum : int64 }

let graph g =
  let esum = ref 0L in
  Array.iter (fun e -> esum := Int64.add !esum (edge_term e)) (Graph.edges g);
  { n = Graph.n g; m = Graph.m g; esum = !esum }

let hash t = mix_int64 (mix_int (mix_int fnv_offset t.n) t.m) t.esum
let to_hex t = Printf.sprintf "%016Lx" (hash t)
let equal a b = a.n = b.n && a.m = b.m && Int64.equal a.esum b.esum

type delta_fp = { dm : int; dsum : int64 }

let delta g d =
  if Graph.Delta.max_id d >= Graph.m g then
    invalid_arg "Fingerprint.delta: edge id out of range";
  let dm = ref 0 and dsum = ref 0L in
  let add e =
    incr dm;
    dsum := Int64.add !dsum (edge_term e)
  in
  let remove e =
    decr dm;
    dsum := Int64.sub !dsum (edge_term e)
  in
  Array.iter add (Graph.Delta.inserts d);
  Array.iter (fun id -> remove (Graph.edge g id)) (Graph.Delta.deletes d);
  Array.iter
    (fun (id, w) ->
      let e = Graph.edge g id in
      remove e;
      add { e with Graph.w })
    (Graph.Delta.reweights d);
  { dm = !dm; dsum = !dsum }

let apply t dfp = { t with m = t.m + dfp.dm; esum = Int64.add t.esum dfp.dsum }
