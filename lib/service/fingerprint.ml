module Graph = Lbcc_graph.Graph

(* FNV-1a, 64-bit: h := (h lxor byte) * prime, folding in one byte at a
   time so the hash depends on every bit of every field. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix_int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    let byte = Int64.to_int (Int64.shift_right_logical v (shift * 8)) land 0xff in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

let mix_int h v = mix_int64 h (Int64.of_int v)

let graph g =
  let h = ref (mix_int (mix_int fnv_offset (Graph.n g)) (Graph.m g)) in
  Array.iter
    (fun (e : Graph.edge) ->
      h := mix_int !h e.u;
      h := mix_int !h e.v;
      h := mix_int64 !h (Int64.bits_of_float e.w))
    (Graph.edges g);
  !h

let to_hex v = Printf.sprintf "%016Lx" v
