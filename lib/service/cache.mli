(** A small string-keyed LRU cache with hit/miss statistics.

    Sized for prepared-operator handles: a handful of heavyweight values
    keyed by graph fingerprint + solver parameters, where a linear eviction
    scan is cheaper than maintaining an intrusive list.  Not thread-safe —
    callers interact with the cache from the orchestrating domain only (the
    batched solve path parallelizes {e inside} a handle, never across the
    cache). *)

type 'v t

type stats = {
  hits : int;
  misses : int;  (** [find_or_add] builds, or [find] returns [None] *)
  evictions : int;  (** entries displaced by capacity pressure *)
  size : int;
  capacity : int;
}

val create :
  ?capacity:int ->
  ?metrics:Lbcc_obs.Metrics.t ->
  ?metrics_prefix:string ->
  unit ->
  'v t
(** [capacity] defaults to 8; [0] disables caching (every lookup misses and
    nothing is retained).  When [metrics] is given, the cache mirrors its
    counters into the registry as they change — ["<prefix>.hits"],
    ["<prefix>.misses"], ["<prefix>.evictions"] counters and a
    ["<prefix>.size"] gauge ([metrics_prefix] defaults to ["cache"]) — the
    canonical export consumers read instead of the {!stats} snapshot ints.
    @raise Invalid_argument when [capacity < 0]. *)

val set_metrics : 'v t -> ?prefix:string -> Lbcc_obs.Metrics.t option -> unit
(** Attach (or detach, with [None]) a registry after creation — how the
    serve daemon points the process-wide {!Prepared.shared_cache} at its own
    registry.  Only counts from the attach onward are mirrored; [prefix]
    defaults to ["cache"]. *)

val capacity : 'v t -> int
val size : 'v t -> int

val find : 'v t -> string -> 'v option
(** Refreshes the entry's recency on hit; counts a hit or miss. *)

val add : 'v t -> string -> 'v -> unit
(** Insert or overwrite; evicts the least-recently-used entry when over
    capacity.  Does not count a hit or miss. *)

val find_or_add : 'v t -> string -> (unit -> 'v) -> 'v * bool
(** [(v, hit)]: the cached value and [true], or the freshly built (and
    inserted) value and [false]. *)

val remove : 'v t -> string -> unit
(** Drop an entry if present (no eviction counted). *)

val clear : 'v t -> unit
(** Drop all entries; statistics are kept (use {!reset_stats}). *)

val stats : 'v t -> stats
val reset_stats : 'v t -> unit
