(** Prepared Laplacian operators: run Theorem 1.3's preprocessing once,
    answer many queries.

    The paper splits the solver into a polylog-round {e preprocessing} phase
    (sparsifier chain, preconditioner factorization, condition certificate)
    and an [O(sqrt(kappa) log(1/eps))]-iteration {e query} phase per
    [(b, eps)].  A [Prepared.t] reifies that split as a service handle:
    {!create} pays the preprocessing exactly once and records it under the
    accountant phase [prepare/*]; every {!solve} charges only query-phase
    rounds under [query/*].  {!solve_many} batches right-hand sides across
    the {!Lbcc_util.Pool} domains with results and round accounting
    bit-identical to the same queries issued sequentially.

    {!create_cached} memoizes handles in an LRU {!Cache} keyed by the graph
    {!Fingerprint} and the preprocessing parameters, so repeated preparation
    of an identical graph is a hit and mutating the graph invalidates. *)

module Vec = Lbcc_linalg.Vec
module Graph = Lbcc_graph.Graph
module Rounds = Lbcc_net.Rounds

type t
(** A prepared operator for one graph: immutable preprocessing state plus a
    cumulative round accountant.  Queries may run concurrently {e inside}
    {!solve_many}; the handle itself must be driven from one domain. *)

type query_result = {
  solution : Vec.t;  (** zero-mean [y] with [||x - y||_L <= eps ||x||_L] *)
  residual : float;  (** measured [||b - L y|| / ||b||] *)
  iterations : int;  (** Chebyshev iterations (a function of [kappa, eps]) *)
  rounds : int;  (** query-phase rounds charged for this solve alone *)
  bits : int;  (** broadcast bits behind those rounds *)
}

val create :
  ?ctx:Ctx.t -> ?seed:int -> ?t:int -> ?k:int -> Graph.t -> t
(** Run preprocessing (sparsify at [eps_H = 1/2], factor, certify) on the
    graph, charging it once under phase [prepare/*] on the handle's own
    accountant (traced via [ctx.tracer] when set).  [t]/[k] override the
    sparsifier's bundle parameters as in {!Lbcc_sparsifier.Sparsify.run}.
    @raise Invalid_argument if the graph is not connected. *)

val solve : ?accountant:Rounds.t -> ?eps:float -> t -> b:Vec.t -> query_result
(** One Theorem 1.3 query ([eps] defaults to [1e-8]).  Charges only
    query-phase rounds — [query/laplacian-matvec] per Chebyshev iteration —
    on the handle's accountant, and mirrors the same total onto [accountant]
    when given (as one aggregate charge with the identical label path, so a
    caller's per-label breakdown matches the handle's).  [b] must have zero
    sum. *)

val solve_many :
  ?accountant:Rounds.t -> ?eps:float -> t -> Vec.t list -> query_result list
(** Batch solve: the right-hand sides are distributed over the default
    {!Lbcc_util.Pool} (each lane gets its own solver workspace), then the
    per-query charges are replayed sequentially in list order.  Solutions,
    per-query rounds, and the handle's accountant state afterwards are all
    bit-identical to calling {!solve} on each [b] in order, at every
    [LBCC_DOMAINS] value. *)

val effective_resistance :
  ?accountant:Rounds.t -> ?eps:float -> t -> s:int -> t:int ->
  float * query_result
(** [R_eff(s,t) = (e_s - e_t)^T L^+ (e_s - e_t)] via one query
    ([eps] defaults to [1e-10]); returns the resistance together with the
    query's accounting (the round report the legacy front door used to
    discard).
    @raise Invalid_argument when [s] or [t] is out of range. *)

(** {2 Cached creation} *)

val create_cached :
  ?cache:t Cache.t ->
  ?ctx:Ctx.t ->
  ?seed:int ->
  ?t:int ->
  ?k:int ->
  Graph.t ->
  t * bool
(** [(handle, hit)].  Looks up the ([graph] fingerprint, [seed], [t], [k])
    key in [cache] (default: the process-wide {!shared_cache}); on a miss,
    builds with {!create} and inserts.  On a hit the handle's observability
    sinks are re-pointed at the caller's [ctx] (tracer and metrics), since
    the cached handle may outlive the run that created it.  Mutating the
    graph changes its fingerprint, so stale handles are never returned. *)

val shared_cache : unit -> t Cache.t
(** The process-wide handle cache.  Capacity is read once from
    [LBCC_PREPARED_CACHE] (default 8; 0 disables caching). *)

(** {2 Incremental updates} *)

val update : ?accountant:Rounds.t -> t -> Graph.Delta.t -> t
(** Patch the handle for the mutated graph [Graph.apply (graph t) delta]:
    the fingerprint is patched in [O(|delta|)] (exactly equal to a
    from-scratch fingerprint of the new graph), the sparsifier sketch is
    updated incrementally ({!Lbcc_sparsifier.Sparsify.update} — only the
    delta's neighborhoods are re-sampled), and the preconditioner is
    refactored from the patched sketch.  The returned handle charges the
    incremental work under phase [update/*] on a fresh accountant (mirrored
    onto [accountant] when given) — for small deltas far fewer rounds than
    {!create} pays — and starts with zero queries.  Deterministic in
    [(t, delta)]: the handle's ctx seed drives all re-sampling.
    @raise Invalid_argument if the delta is invalid for the handle's graph
    or the mutated graph is disconnected. *)

val update_cached :
  ?cache:t Cache.t -> ?accountant:Rounds.t -> t -> Graph.Delta.t -> t
(** {!update}, then re-key the cache in place: the entry under the old
    (fingerprint, seed, t, k) key is removed and the patched handle is
    inserted under the new graph's key — exactly where {!create_cached}
    would look — so a hot handle survives the mutation instead of being
    invalidated and rebuilt cold. *)

(** {2 Introspection} *)

val graph : t -> Graph.t
val solver : t -> Lbcc_laplacian.Solver.t
val ctx : t -> Ctx.t

val sketch : t -> Lbcc_sparsifier.Sparsify.sketch
(** The incremental sparsifier state {!update} maintains. *)

val generation : t -> int
(** Number of deltas patched into this handle (0 for a fresh {!create}). *)

val fingerprint : t -> Fingerprint.t
val fingerprint_hex : t -> string

val preprocessing_rounds : t -> int
(** Rounds charged by {!create} — paid once per handle, however many
    queries follow. *)

val preprocessing_bits : t -> int

val prepare_breakdown : t -> (string * int * int) list
(** [(label path, rounds, bits)] per preprocessing charge, first-charge
    order — what a caller mirrors into its own accountant on a cache miss. *)

val queries : t -> int
(** Number of queries served so far. *)

val query_rounds : t -> int
(** Total query-phase rounds across all queries served. *)

val rounds : t -> int
(** Everything charged on the handle: preprocessing + all queries. *)

val bits : t -> int

val breakdown : t -> (string * int * int) list
(** [(label path, rounds, bits)] over the handle's whole life: exactly one
    [prepare/*] group followed by the accumulated [query/*] charges. *)

val amortized_rounds_per_query : t -> float
(** [(preprocessing_rounds + query_rounds) / max 1 queries] — the quantity
    the BATCH benchmark shows decreasing in the batch size. *)
