type t = {
  seed : int;
  tracer : Lbcc_obs.Trace.t option;
  metrics : Lbcc_obs.Metrics.t option;
}

(* seed 1 matches the historical default of every [Lbcc] entry point, so
   migrating a call site from the legacy labels to [?ctx] never changes its
   output. *)
let default = { seed = 1; tracer = None; metrics = None }

let make ?(seed = default.seed) ?tracer ?metrics () = { seed; tracer; metrics }

let resolve ?ctx ?seed ?tracer ?metrics () =
  let base = match ctx with Some c -> c | None -> default in
  {
    seed = (match seed with Some s -> s | None -> base.seed);
    tracer = (match tracer with Some _ -> tracer | None -> base.tracer);
    metrics = (match metrics with Some _ -> metrics | None -> base.metrics);
  }

let with_seed t seed = { t with seed }
