type t = {
  seed : int;
  tracer : Lbcc_obs.Trace.t option;
  metrics : Lbcc_obs.Metrics.t option;
  reliability : Lbcc_net.Model.reliability;
}

(* seed 1 matches the historical default of every [Lbcc] entry point, so
   migrating a call site from the legacy labels to [?ctx] never changes its
   output; likewise reliability [None] (raw delivery) is the historical
   cost model. *)
let default =
  {
    seed = 1;
    tracer = None;
    metrics = None;
    reliability = Lbcc_net.Model.None;
  }

let make ?(seed = default.seed) ?tracer ?metrics
    ?(reliability = default.reliability) () =
  { seed; tracer; metrics; reliability }

let resolve ?ctx ?seed ?tracer ?metrics ?reliability () =
  let base = match ctx with Some c -> c | None -> default in
  {
    seed = (match seed with Some s -> s | None -> base.seed);
    tracer = (match tracer with Some _ -> tracer | None -> base.tracer);
    metrics = (match metrics with Some _ -> metrics | None -> base.metrics);
    reliability =
      (match reliability with Some r -> r | None -> base.reliability);
  }

let with_seed t seed = { t with seed }
