(** Run context: the seed / tracer / metrics triple that every front-door
    entry point needs.

    Historically each of [Lbcc.sparsify], [Lbcc.solve_laplacian], … grew the
    same three optional labels ([?seed ?tracer ?metrics]) independently —
    and [effective_resistance] forgot two of them.  A [Ctx.t] packages the
    triple once so callers configure a run in one place and pass the same
    context to every entry point (and to {!Prepared.create}). *)

type t = {
  seed : int;  (** shared randomness for the simulated clique *)
  tracer : Lbcc_obs.Trace.t option;  (** span tree sink, when tracing *)
  metrics : Lbcc_obs.Metrics.t option;  (** counter/histogram registry *)
  reliability : Lbcc_net.Model.reliability;
      (** delivery tier the run is costed under: the pipeline's supersteps
          are surcharged by the tier's round overhead (DESIGN.md §9) *)
}

val default : t
(** [{ seed = 1; tracer = None; metrics = None; reliability = None }] —
    seed 1 and raw delivery are the historical defaults of the [Lbcc]
    entry points, kept so migrating to [?ctx] never changes a call's
    output. *)

val make :
  ?seed:int ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?metrics:Lbcc_obs.Metrics.t ->
  ?reliability:Lbcc_net.Model.reliability ->
  unit ->
  t
(** Explicit constructor; omitted fields take {!default}'s values. *)

val resolve :
  ?ctx:t ->
  ?seed:int ->
  ?tracer:Lbcc_obs.Trace.t ->
  ?metrics:Lbcc_obs.Metrics.t ->
  ?reliability:Lbcc_net.Model.reliability ->
  unit ->
  t
(** Merge a context with the legacy per-call optional labels: start from
    [ctx] (or {!default}) and let any explicitly passed legacy label
    override the corresponding field.  This is what lets the deprecated
    [?seed/?tracer/?metrics] arguments keep working during migration. *)

val with_seed : t -> int -> t
(** [with_seed ctx s] is [ctx] with the seed replaced — handy for retry
    loops that reseed each attempt. *)
