module Metrics = Lbcc_obs.Metrics

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

type 'v entry = { value : 'v; mutable tick : int }

type 'v t = {
  table : (string, 'v entry) Hashtbl.t;
  capacity : int;
  mutable clock : int; (* monotone recency counter *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable metrics : Metrics.t option;
  mutable prefix : string;
}

let create ?(capacity = 8) ?metrics ?(metrics_prefix = "cache") () =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  {
    table = Hashtbl.create (max 1 capacity);
    capacity;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    metrics;
    prefix = metrics_prefix;
  }

let set_metrics t ?(prefix = "cache") metrics =
  t.metrics <- metrics;
  t.prefix <- prefix

let capacity t = t.capacity
let size t = Hashtbl.length t.table

(* Every counter the cache maintains is mirrored into the attached registry
   as it changes, so consumers (the BATCH bench, the serve daemon's stats
   endpoint) read "<prefix>.hits" / ".misses" / ".evictions" and the
   ".size" gauge instead of reaching for the ad-hoc ints in [stats]. *)
let bump t name =
  Metrics.inc t.metrics (t.prefix ^ "." ^ name)

let gauge_size t =
  Metrics.set_gauge t.metrics (t.prefix ^ ".size") (float_of_int (size t))

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      bump t "hits";
      touch t e;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      bump t "misses";
      None

let evict_lru t =
  let victim =
    (* Ticks come from a monotone counter, so the minimum is unique and the
       fold's visit order cannot change which entry wins. *)
    (* lbcc-lint: allow det-unordered-hashtbl *)
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best <= e.tick -> acc
        | _ -> Some (key, e.tick))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      bump t "evictions"
  | None -> ()

let add t key value =
  if t.capacity > 0 then begin
    if not (Hashtbl.mem t.table key) && Hashtbl.length t.table >= t.capacity
    then evict_lru t;
    t.clock <- t.clock + 1;
    Hashtbl.replace t.table key { value; tick = t.clock };
    gauge_size t
  end

let find_or_add t key build =
  match find t key with
  | Some v -> (v, true)
  | None ->
      let v = build () in
      add t key v;
      (v, false)

let remove t key =
  Hashtbl.remove t.table key;
  gauge_size t

let clear t =
  Hashtbl.reset t.table;
  gauge_size t

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    size = size t;
    capacity = t.capacity;
  }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
