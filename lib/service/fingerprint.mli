(** Patchable structural graph fingerprints for the prepared-handle cache.

    Two graphs with the same vertex count and the same edge multiset (same
    endpoint pairs, same IEEE weight bits, any order and orientation) get
    the same fingerprint; any mutation — reweighting an edge, adding or
    dropping one — changes it with overwhelming probability.  Each edge
    contributes an independent FNV-1a term and the graph sums them with
    wrapping 64-bit addition, so the fingerprint is a commutative group
    element: a {!Graph.Delta} translates to a {!delta_fp} in [O(|delta|)]
    and {!apply} patches a live fingerprint without rehashing the graph —
    the primitive that lets the serve daemon re-key hot prepared handles in
    place.  Deterministic across runs and collision-safe at cache scale (a
    handful of live graphs, not adversarial input). *)

module Graph = Lbcc_graph.Graph

type t
(** Fingerprint state: vertex count, edge count, and the commutative
    edge-term sum. *)

val graph : Graph.t -> t
(** Fingerprint the full edge multiset, [O(m)]. *)

val hash : t -> int64
(** Collapse to 64 bits (mixes [n], [m], and the edge-term sum). *)

val to_hex : t -> string
(** 16-digit lowercase hex of {!hash}, for cache keys and log lines. *)

val equal : t -> t -> bool

type delta_fp
(** The fingerprint-space image of one {!Graph.Delta}. *)

val delta : Graph.t -> Graph.Delta.t -> delta_fp
(** [delta g d] hashes only the edges [d] names, [O(|d|)].  [g] must be the
    pre-delta graph the delta's edge ids refer to.
    @raise Invalid_argument if [d] references an edge id [>= m]. *)

val apply : t -> delta_fp -> t
(** Patch: [apply (graph g) (delta g d) = graph (Graph.apply g d)], in
    O(1).  The algebra is exact, not approximate — the QCheck suite pins
    this identity under random delta streams. *)
