(** Structural graph fingerprints for the prepared-handle cache.

    Two graphs with the same vertex count and the same edge list (same
    endpoints, same IEEE weight bits, same order) get the same fingerprint;
    any mutation — reweighting an edge, adding or dropping one — changes it
    with overwhelming probability.  FNV-1a over 64 bits: cheap ([O(m)]),
    deterministic across runs, and collision-safe at cache scale (a handful
    of live graphs, not adversarial input). *)

val graph : Lbcc_graph.Graph.t -> int64
(** Fingerprint of [n] plus the full edge list (endpoints and weight
    bit patterns). *)

val to_hex : int64 -> string
(** 16-digit lowercase hex, for cache keys and log lines. *)
