open Lbcc_util
module Vec = Lbcc_linalg.Vec
module Graph = Lbcc_graph.Graph
module Rounds = Lbcc_net.Rounds
module Model = Lbcc_net.Model
module Metrics = Lbcc_obs.Metrics
module Solver = Lbcc_laplacian.Solver
module Sparsify = Lbcc_sparsifier.Sparsify

type query_result = {
  solution : Vec.t;
  residual : float;
  iterations : int;
  rounds : int;
  bits : int;
}

type t = {
  graph : Graph.t;
  mutable ctx : Ctx.t; (* re-pointed at the caller's ctx on cache hits *)
  solver : Solver.t;
  sketch : Sparsify.sketch; (* incremental sparsifier state for [update] *)
  fingerprint : Fingerprint.t;
  key_seed : int; (* the seed the cache key was built with *)
  t_opt : int option;
  k_opt : int option;
  generation : int; (* number of deltas patched into this handle *)
  acc : Rounds.t; (* cumulative: one prepare/* group, then query/* *)
  prepare_rounds : int;
  prepare_bits : int;
  prepare_breakdown : (string * int * int) list;
  mutable queries : int;
  mutable query_rounds : int;
}

let zip3 acc =
  List.map2
    (fun (label, rounds) (_, bits) -> (label, rounds, bits))
    (Rounds.breakdown acc) (Rounds.bits_breakdown acc)

let create ?ctx ?seed ?t ?k graph =
  let ctx = Ctx.resolve ?ctx ?seed () in
  let n = Graph.n graph in
  let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n) in
  Rounds.set_tracer acc ctx.Ctx.tracer;
  Metrics.inc ctx.Ctx.metrics "prepared.create";
  let prng = Prng.create ctx.Ctx.seed in
  let solver =
    Solver.preprocess ~accountant:acc ~phases:[ "prepare" ] ?t ?k ~prng ~graph
      ()
  in
  let rounds = Rounds.rounds acc in
  Metrics.observe ctx.Ctx.metrics "prepared.prepare_rounds"
    (float_of_int rounds);
  let h = Solver.sparsifier solver in
  {
    graph;
    ctx;
    solver;
    sketch =
      {
        Sparsify.base = graph;
        sparsifier = h;
        epsilon = 0.5;
        generation = 0;
        resampled = Graph.m h;
        passed = 0;
        last_rounds = rounds;
        total_rounds = rounds;
      };
    fingerprint = Fingerprint.graph graph;
    key_seed = ctx.Ctx.seed;
    t_opt = t;
    k_opt = k;
    generation = 0;
    acc;
    prepare_rounds = rounds;
    prepare_bits = Rounds.bits acc;
    prepare_breakdown = zip3 acc;
    queries = 0;
    query_rounds = 0;
  }

(* Mirror one query's cost onto a caller's accountant as a single aggregate
   charge.  The full label path is spelled out (rather than opening a
   "query" phase) so no duplicate trace span appears when the caller's
   accountant shares the handle's tracer; the per-label breakdown still
   matches the handle's exactly, because every query-phase charge lives
   under this one label. *)
let mirror accountant (r : Solver.solve_result) =
  match accountant with
  | None -> ()
  | Some a ->
      (* Full label path spelled out instead of opening a phase — see the
         comment above this function. *)
      (* lbcc-lint: allow typ-phase-flow *)
      Rounds.charge a ~bits:r.Solver.bits ~label:"query/laplacian-matvec"
        ~rounds:r.Solver.rounds

let to_query (r : Solver.solve_result) =
  {
    solution = r.Solver.solution;
    residual = r.Solver.residual;
    iterations = r.Solver.iterations;
    rounds = r.Solver.rounds;
    bits = r.Solver.bits;
  }

let bump t (r : Solver.solve_result) =
  t.queries <- t.queries + 1;
  t.query_rounds <- t.query_rounds + r.Solver.rounds;
  Metrics.inc t.ctx.Ctx.metrics "prepared.solve"

let solve ?accountant ?(eps = 1e-8) t ~b =
  let r = Solver.solve ~accountant:t.acc ~phases:[ "query" ] t.solver ~b ~eps in
  bump t r;
  mirror accountant r;
  to_query r

let solve_many ?accountant ?(eps = 1e-8) t bs =
  let bs = Array.of_list bs in
  let k = Array.length bs in
  if k = 0 then []
  else begin
    let results = Array.make k None in
    (* Compute phase: fan the right-hand sides out over the pool.  Each
       chunk gets its own workspace (the preconditioner scratch is not
       reentrant) and each solve runs against a private throwaway
       accountant, so lanes share only read-only state.  The chunk grid and
       the fixed Chebyshev iteration count make every solution bit-identical
       to its sequential counterpart. *)
    Pool.parallel_for (Pool.default ()) ~n:k (fun lo hi ->
        let ws = Solver.workspace t.solver in
        for i = lo to hi - 1 do
          results.(i) <-
            Some
              (Solver.solve ~phases:[ "query" ] ~workspace:ws t.solver
                 ~b:bs.(i) ~eps)
        done);
    (* Accounting phase: replay the per-query charges sequentially in list
       order, reproducing exactly the accountant state (and trace spans) of
       k single [solve] calls. *)
    let out =
      Array.to_list results
      |> List.map (fun r ->
             let r = Option.get r in
             Rounds.with_phase t.acc "query" (fun () ->
                 Rounds.charge t.acc ~bits:r.Solver.bits
                   ~label:"laplacian-matvec" ~rounds:r.Solver.rounds);
             bump t r;
             mirror accountant r;
             to_query r)
    in
    Metrics.observe t.ctx.Ctx.metrics "prepared.batch_size" (float_of_int k);
    out
  end

let effective_resistance ?accountant ?(eps = 1e-10) t ~s ~t:target =
  let n = Graph.n t.graph in
  if s < 0 || s >= n || target < 0 || target >= n then
    invalid_arg "Prepared.effective_resistance: vertex out of range";
  let b = Vec.zeros n in
  b.(s) <- b.(s) +. 1.0;
  b.(target) <- b.(target) -. 1.0;
  let q = solve ?accountant ~eps t ~b in
  (q.solution.(s) -. q.solution.(target), q)

(* Cached creation ------------------------------------------------------ *)

let default_capacity () =
  match Sys.getenv_opt "LBCC_PREPARED_CACHE" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 0 -> v
      | _ -> 8)
  | None -> 8

let shared = lazy (Cache.create ~capacity:(default_capacity ()) ())
let shared_cache () = Lazy.force shared

let key_of_fingerprint ~seed ?t ?k fp =
  let opt = function Some v -> string_of_int v | None -> "-" in
  Printf.sprintf "%s|seed=%d|t=%s|k=%s" (Fingerprint.to_hex fp) seed (opt t)
    (opt k)

let cache_key ~seed ?t ?k g =
  key_of_fingerprint ~seed ?t ?k (Fingerprint.graph g)

let own_key t =
  key_of_fingerprint ~seed:t.key_seed ?t:t.t_opt ?k:t.k_opt t.fingerprint

let create_cached ?cache ?ctx ?seed ?t ?k graph =
  let cache = match cache with Some c -> c | None -> shared_cache () in
  let ctx = Ctx.resolve ?ctx ?seed () in
  let key = cache_key ~seed:ctx.Ctx.seed ?t ?k graph in
  let handle, hit =
    Cache.find_or_add cache key (fun () -> create ~ctx ?t ?k graph)
  in
  if hit then begin
    handle.ctx <- ctx;
    Rounds.set_tracer handle.acc ctx.Ctx.tracer;
    Metrics.inc ctx.Ctx.metrics "prepared.cache_hit"
  end
  else Metrics.inc ctx.Ctx.metrics "prepared.cache_miss";
  (handle, hit)

(* Incremental updates --------------------------------------------------- *)

(* Mirror a whole breakdown onto a caller's accountant as aggregate charges
   with the handle's exact label paths (same convention as [mirror]). *)
let mirror_breakdown accountant entries =
  match accountant with
  | None -> ()
  | Some a ->
      List.iter
        (* Same convention as [mirror]: the entries carry their own full label
         paths. *)
        (* lbcc-lint: allow typ-phase-flow *)
        (fun (label, rounds, bits) -> Rounds.charge a ~bits ~label ~rounds)
        entries

let update ?accountant t delta =
  let ctx = t.ctx in
  let n = Graph.n t.graph in
  (* O(|delta|): patch the fingerprint before touching any edge arrays — the
     algebra guarantees it equals a from-scratch fingerprint of the new
     graph, so the patched handle re-keys exactly where a rebuilt one would
     land. *)
  let fingerprint = Fingerprint.apply t.fingerprint (Fingerprint.delta t.graph delta) in
  let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n) in
  Rounds.set_tracer acc ctx.Ctx.tracer;
  Metrics.inc ctx.Ctx.metrics "prepared.update";
  let prng = Prng.create ctx.Ctx.seed in
  (* Charge only the incremental work under phase [update/*]: the delta
     announcement plus re-sparsification of the hit neighborhoods, then the
     (round-free, vertex-internal) factor + certify on the patched H. *)
  let sketch = Sparsify.update ~accountant:acc ~prng t.sketch delta in
  let solver =
    Solver.preprocess ~accountant:acc ~phases:[ "update" ]
      ~sparsifier:sketch.Sparsify.sparsifier ~prng
      ~graph:sketch.Sparsify.base ()
  in
  let rounds = Rounds.rounds acc in
  Metrics.observe ctx.Ctx.metrics "prepared.update_rounds" (float_of_int rounds);
  mirror_breakdown accountant (zip3 acc);
  {
    graph = sketch.Sparsify.base;
    ctx;
    solver;
    sketch;
    fingerprint;
    key_seed = t.key_seed;
    t_opt = t.t_opt;
    k_opt = t.k_opt;
    generation = t.generation + 1;
    acc;
    prepare_rounds = rounds;
    prepare_bits = Rounds.bits acc;
    prepare_breakdown = zip3 acc;
    queries = 0;
    query_rounds = 0;
  }

let update_cached ?cache ?accountant t delta =
  let cache = match cache with Some c -> c | None -> shared_cache () in
  let old_key = own_key t in
  let patched = update ?accountant t delta in
  (* Patch-in-place: the old key can never serve the mutated graph again,
     and the patched handle lands exactly where [create_cached] would look
     for the new graph — a subsequent prepare of the same (graph, seed,
     t, k) is a hit instead of a cold rebuild. *)
  Cache.remove cache old_key;
  Cache.add cache (own_key patched) patched;
  Metrics.inc t.ctx.Ctx.metrics "prepared.cache_patch";
  patched

(* Introspection -------------------------------------------------------- *)

let graph t = t.graph
let solver t = t.solver
let ctx t = t.ctx
let sketch t = t.sketch
let generation t = t.generation
let fingerprint t = t.fingerprint
let fingerprint_hex t = Fingerprint.to_hex t.fingerprint
let preprocessing_rounds t = t.prepare_rounds
let preprocessing_bits t = t.prepare_bits
let prepare_breakdown t = t.prepare_breakdown
let queries t = t.queries
let query_rounds t = t.query_rounds
let rounds t = Rounds.rounds t.acc
let bits t = Rounds.bits t.acc
let breakdown t = zip3 t.acc

let amortized_rounds_per_query t =
  float_of_int (t.prepare_rounds + t.query_rounds)
  /. float_of_int (max 1 t.queries)
