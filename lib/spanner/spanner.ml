open Lbcc_util
module Graph = Lbcc_graph.Graph
module Rounds = Lbcc_net.Rounds
module Payload = Lbcc_net.Payload
module Model = Lbcc_net.Model

type result = {
  fplus : int list;
  fminus : int list;
  orientation : (int * int) array;
  clusters : int option array;
  rounds : int;
  supersteps : int;
  views_agree : bool;
}

(* Broadcast message kinds.  [Phase_info] announces a vertex's cluster and
   mark bit at the start of a phase; [Join*] is the step-2 announcement;
   [Connect*] the step-3/4 per-cluster announcements. *)
type msg =
  | Phase_info of { cluster : int option; marked : bool }
  | Join of { cluster : int; via : int; w : float }
  | Join_none
  | Connect_ok of { cluster : int; via : int; w : float }
  | Connect_fail of { cluster : int }

let msg_bits ~n = function
  | Phase_info _ -> Payload.size [ Tag 5; Vertex_id n; Bitfield 1 ]
  | Join { w; _ } -> Payload.size [ Tag 5; Vertex_id n; Vertex_id n; Weight w ]
  | Join_none -> Payload.size [ Tag 5 ]
  | Connect_ok { w; _ } -> Payload.size [ Tag 5; Vertex_id n; Vertex_id n; Weight w ]
  | Connect_fail _ -> Payload.size [ Tag 5; Vertex_id n ]

(* Per-vertex local state.  Everything a vertex learns about its incident
   edges is keyed by edge id; the discipline is that [v] writes only its own
   record and reads only its own record plus received broadcasts. *)
type vertex = {
  id : int;
  mutable cluster : int option;
  mutable marked : bool;
  mutable w_threshold : float;
  fplus : (int, unit) Hashtbl.t;
  fminus : (int, unit) Hashtbl.t;
  neighbor_cluster : (int, int option) Hashtbl.t;
  neighbor_marked : (int, bool) Hashtbl.t;
  neighbor_w : (int, float) Hashtbl.t;
  mark_prng : Prng.t;
  connect_prng : Prng.t;
}

type sim = {
  graph : Graph.t;
  n : int;
  p : float array;
  verts : vertex array;
  edge_of : (int * int, int) Hashtbl.t; (* (min u v, max u v) -> edge id *)
  acc : Rounds.t;
  mutable stage : string; (* label for the accountant's per-phase breakdown *)
  mutable supersteps : int;
  mutable orientation : (int, int * int) Hashtbl.t;
      (* edge id -> (from, to): first adder wins *)
  mutable consistent : bool;
}

let in_fplus vx e = Hashtbl.mem vx.fplus e
let in_fminus vx e = Hashtbl.mem vx.fminus e

let add_fplus sim vx ~from_ ~to_ e =
  if in_fminus vx e then sim.consistent <- false
  else if not (in_fplus vx e) then begin
    Hashtbl.replace vx.fplus e ();
    if not (Hashtbl.mem sim.orientation e) then
      Hashtbl.replace sim.orientation e (from_, to_)
  end

let add_fminus sim vx e =
  if in_fplus vx e then sim.consistent <- false
  else Hashtbl.replace vx.fminus e ()

(* Effective existence probability of an edge from [vx]'s point of view:
   accepted edges exist with certainty; rejected edges are never candidates;
   untried edges carry their input probability. *)
let p_eff sim vx e = if in_fplus vx e then 1.0 else sim.p.(e)

(* The paper's Connect(N, p): try candidates ascending by (weight, id of the
   other endpoint); the first accepted candidate wins, all earlier ones are
   rejected.  Candidates are given as (other endpoint, edge id). *)
let connect sim vx candidates =
  let weighted =
    List.map (fun (u, e) -> ((Graph.edge sim.graph e).w, u, e)) candidates
  in
  let compare_cand (w1, u1, e1) (w2, u2, e2) =
    let c = Float.compare w1 w2 in
    if c <> 0 then c
    else
      let c = Int.compare u1 u2 in
      if c <> 0 then c else Int.compare e1 e2
  in
  let sorted = List.sort compare_cand weighted in
  let rec go = function
    | [] -> None
    | (w, u, e) :: rest ->
        if Prng.float vx.connect_prng < p_eff sim vx e then begin
          add_fplus sim vx ~from_:vx.id ~to_:u e;
          Some (u, e, w)
        end
        else begin
          add_fminus sim vx e;
          go rest
        end
  in
  go sorted

(* ------------------------------------------------------------------ *)
(* Superstep drivers                                                   *)

(* One synchronous broadcast superstep: each vertex sends at most one
   message to all its graph neighbors; the step costs the largest message. *)
let superstep sim (outgoing : msg option array) receive =
  let any = Array.exists Option.is_some outgoing in
  if any then begin
    sim.supersteps <- sim.supersteps + 1;
    let max_bits = ref 1 in
    Array.iter
      (function
        | None -> ()
        | Some m -> max_bits := Stdlib.max !max_bits (msg_bits ~n:sim.n m))
      outgoing;
    Rounds.charge_broadcast sim.acc ~label:sim.stage ~bits:!max_bits;
    (* Deliver: receivers process broadcasts in sender order. *)
    for v = 0 to sim.n - 1 do
      match outgoing.(v) with
      | None -> ()
      | Some m ->
          List.iter
            (fun (u, e) -> receive ~receiver:sim.verts.(u) ~sender:v ~edge:e m)
            (Graph.neighbors sim.graph v)
    done
  end

(* Drain per-vertex message queues, one broadcast per vertex per superstep. *)
let drain_queues sim (queues : msg list array) receive =
  let pending () = Array.exists (fun q -> q <> []) queues in
  while pending () do
    let outgoing =
      Array.map
        (function
          | [] -> None
          | m :: _ -> Some m)
        queues
    in
    Array.iteri
      (fun v q -> match q with [] -> () | _ :: rest -> queues.(v) <- rest)
      queues;
    superstep sim outgoing receive
  done

(* ------------------------------------------------------------------ *)
(* Receivers                                                           *)

let receive_phase_info ~receiver ~sender:_ ~edge = function
  | Phase_info { cluster; marked } ->
      Hashtbl.replace receiver.neighbor_cluster edge cluster;
      Hashtbl.replace receiver.neighbor_marked edge marked
  | _ -> ()

(* Step 2 deduction rules.  [receiver] is [u], the message came from [v]
   over [edge]; [u] reacts only if it could have been in [v]'s candidate
   set: [u] is in a marked cluster and the edge is not already deleted. *)
let receive_join sim ~receiver ~sender ~edge msg =
  (match msg with
  | Join { w; _ } -> Hashtbl.replace receiver.neighbor_w edge w
  | Join_none -> Hashtbl.replace receiver.neighbor_w edge infinity
  | _ -> ());
  let u = receiver in
  let eligible = u.cluster <> None && u.marked && not (in_fminus u edge) in
  if eligible then begin
    match msg with
    | Join { via; w; _ } ->
        if via = u.id then add_fplus sim u ~from_:sender ~to_:u.id edge
        else begin
          let we = (Graph.edge sim.graph edge).w in
          if w > we || (w = we && via > u.id) then add_fminus sim u edge
        end
    | Join_none -> add_fminus sim u edge
    | _ -> ()
  end

(* Step 3 / step 4 deduction.  The message names the target cluster; [u]
   reacts if it belongs to that cluster, the edge is not deleted, and the
   edge met the sender's candidate condition ([weight_filter]). *)
let receive_connect sim ~weight_filtered ~receiver ~sender ~edge msg =
  let u = receiver in
  let concerns cluster = u.cluster = Some cluster in
  let we = (Graph.edge sim.graph edge).w in
  let candidate () =
    (not (in_fminus u edge))
    &&
    if weight_filtered then
      match Hashtbl.find_opt u.neighbor_w edge with
      | Some wv -> we < wv
      | None -> false
    else true
  in
  match msg with
  | Connect_ok { cluster; via; w } when concerns cluster && candidate () ->
      if via = u.id then add_fplus sim u ~from_:sender ~to_:u.id edge
      else if w > we || (w = we && via > u.id) then add_fminus sim u edge
  | Connect_fail { cluster } when concerns cluster && candidate () ->
      add_fminus sim u edge
  | Connect_ok _ | Connect_fail _ | Phase_info _ | Join _ | Join_none -> ()

(* ------------------------------------------------------------------ *)
(* The algorithm                                                       *)

(* Live (non-deleted) incident edges of [v] whose other endpoint's cluster
   satisfies [select]. *)
let candidates_by_cluster sim vx ~select =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (u, e) ->
      if not (in_fminus vx e) then
        match Hashtbl.find_opt vx.neighbor_cluster e with
        | Some (Some x) when select ~cluster:x ~other:u ~edge:e ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt groups x) in
            Hashtbl.replace groups x ((u, e) :: prev)
        | _ -> ())
    (Graph.neighbors sim.graph vx.id);
  (* Keys are distinct cluster ids, so key order alone fixes the output. *)
  Tbl.sorted_bindings ~compare:Int.compare groups

let phase_info_broadcast sim =
  let outgoing =
    Array.map
      (fun vx -> Some (Phase_info { cluster = vx.cluster; marked = vx.marked }))
      sim.verts
  in
  superstep sim outgoing (fun ~receiver ~sender ~edge m ->
      receive_phase_info ~receiver ~sender ~edge m)

(* Step 3 substep (and the three step-4 substeps): every qualifying vertex
   runs Connect against each cluster selected by [select], queues one
   message per tried cluster, and all queues drain synchronously. *)
let connect_stage sim ~participates ~select ~weight_filtered =
  let queues = Array.make sim.n [] in
  Array.iter
    (fun vx ->
      if participates vx then begin
        let groups = candidates_by_cluster sim vx ~select:(select vx) in
        let msgs =
          List.map
            (fun (x, members) ->
              match connect sim vx members with
              | Some (via, _e, w) -> Connect_ok { cluster = x; via; w }
              | None -> Connect_fail { cluster = x })
            groups
        in
        queues.(vx.id) <- msgs
      end)
    sim.verts;
  drain_queues sim queues (fun ~receiver ~sender ~edge m ->
      receive_connect sim ~weight_filtered ~receiver ~sender ~edge m)

let run ?accountant ~prng ~graph ~p ~k () =
  let n = Graph.n graph in
  if k < 1 then invalid_arg "Spanner.run: k must be >= 1";
  if Array.length p <> Graph.m graph then
    invalid_arg "Spanner.run: p has wrong length";
  Array.iter
    (fun pe ->
      if pe < 0.0 || pe > 1.0 then invalid_arg "Spanner.run: probability out of range")
    p;
  let acc =
    match accountant with
    | Some a -> a
    | None -> Rounds.create ~bandwidth:(Model.bandwidth ~n)
  in
  let edge_of = Hashtbl.create (Graph.m graph) in
  Array.iteri
    (fun e (ed : Graph.edge) ->
      let key = (Stdlib.min ed.u ed.v, Stdlib.max ed.u ed.v) in
      if Hashtbl.mem edge_of key then
        invalid_arg "Spanner.run: parallel edges not supported";
      Hashtbl.add edge_of key e)
    (Graph.edges graph);
  let verts =
    Array.init n (fun v ->
        {
          id = v;
          cluster = Some v;
          marked = false;
          w_threshold = infinity;
          fplus = Hashtbl.create 8;
          fminus = Hashtbl.create 8;
          neighbor_cluster = Hashtbl.create 8;
          neighbor_marked = Hashtbl.create 8;
          neighbor_w = Hashtbl.create 8;
          mark_prng = Prng.split prng;
          connect_prng = Prng.split prng;
        })
  in
  let sim =
    {
      graph;
      n;
      p;
      verts;
      edge_of;
      acc;
      stage = "spanner";
      supersteps = 0;
      orientation = Hashtbl.create 64;
      consistent = true;
    }
  in
  let start_rounds = Rounds.checkpoint acc in
  let mark_probability = float_of_int n ** (-1.0 /. float_of_int k) in
  let depth = Array.make n 0 in

  for _phase = 1 to k - 1 do
    (* Step 1: centers mark; the mark propagates down the cluster tree
       (1-bit messages along F+ tree edges), charged at the deepest tree. *)
    let mark_draw = Array.map (fun vx -> Prng.float vx.mark_prng) verts in
    let cluster_marked = Hashtbl.create 16 in
    Array.iter
      (fun vx ->
        match vx.cluster with
        | Some c when c = vx.id ->
            Hashtbl.replace cluster_marked c (mark_draw.(vx.id) < mark_probability)
        | Some _ | None -> ())
      verts;
    let max_depth = ref 0 in
    Array.iter
      (fun vx ->
        match vx.cluster with
        | Some c ->
            vx.marked <- Option.value ~default:false (Hashtbl.find_opt cluster_marked c);
            max_depth := Stdlib.max !max_depth depth.(vx.id)
        | None -> vx.marked <- false)
      verts;
    Rounds.charge acc ~label:"spanner/marking" ~rounds:(Stdlib.max 1 !max_depth);
    sim.supersteps <- sim.supersteps + Stdlib.max 1 !max_depth;

    (* Everyone announces (cluster, marked) so neighbors can build their
       candidate sets for this phase. *)
    sim.stage <- "spanner/phase-info";
    phase_info_broadcast sim;

    (* Step 2: unmarked-cluster vertices try to join a marked cluster. *)
    sim.stage <- "spanner/join-marked";
    let joins = Array.make n None in
    let outgoing =
      Array.map
        (fun vx ->
          match vx.cluster with
          | Some _ when not vx.marked ->
              let candidates =
                List.filter
                  (fun (_, e) ->
                    (not (in_fminus vx e))
                    && Option.value ~default:false (Hashtbl.find_opt vx.neighbor_marked e)
                    && Option.value ~default:None (Hashtbl.find_opt vx.neighbor_cluster e)
                       <> None)
                  (Graph.neighbors graph vx.id)
              in
              (match connect sim vx candidates with
              | Some (via, e, w) ->
                  vx.w_threshold <- w;
                  let target =
                    match Hashtbl.find_opt vx.neighbor_cluster e with
                    | Some (Some x) -> x
                    | Some None | None ->
                        failwith
                          "Spanner.connect: chosen edge lost its cluster label"
                  in
                  joins.(vx.id) <- Some (target, e);
                  Some (Join { cluster = target; via; w })
              | None ->
                  vx.w_threshold <- infinity;
                  Some Join_none)
          | Some _ | None -> None)
        verts
    in
    superstep sim outgoing (fun ~receiver ~sender ~edge m ->
        receive_join sim ~receiver ~sender ~edge m);

    (* Step 3.1 / 3.2: connections between unmarked clusters, split by
       cluster-id order so no edge is decided from both sides at once. *)
    let unmarked_clustered vx = vx.cluster <> None && not vx.marked in
    let select_lower vx ~cluster ~other:_ ~edge =
      (match vx.cluster with Some own -> cluster < own | None -> false)
      && (not (Option.value ~default:false (Hashtbl.find_opt vx.neighbor_marked edge)))
      && (Graph.edge graph edge).w < vx.w_threshold
    in
    let select_higher vx ~cluster ~other:_ ~edge =
      (match vx.cluster with Some own -> cluster > own | None -> false)
      && (not (Option.value ~default:false (Hashtbl.find_opt vx.neighbor_marked edge)))
      && (Graph.edge graph edge).w < vx.w_threshold
    in
    sim.stage <- "spanner/unmarked-connect";
    connect_stage sim ~participates:unmarked_clustered ~select:select_lower
      ~weight_filtered:true;
    connect_stage sim ~participates:unmarked_clustered ~select:select_higher
      ~weight_filtered:true;

    (* Phase epilogue: cluster updates become effective. *)
    Array.iter
      (fun vx ->
        if not vx.marked then begin
          match joins.(vx.id) with
          | Some (target, e) ->
              vx.cluster <- Some target;
              let other = Graph.other_endpoint (Graph.edge graph e) vx.id in
              depth.(vx.id) <- depth.(other) + 1
          | None -> vx.cluster <- None
        end)
      verts;
    Array.iter (fun vx -> vx.w_threshold <- infinity) verts
  done;

  (* Step 4: connect to the remaining clusters R_k.  A fresh announcement
     of final clusters (nobody is marked anymore: selection is by id). *)
  Array.iter (fun vx -> vx.marked <- false) verts;
  sim.stage <- "spanner/phase-info";
  phase_info_broadcast sim;
  let unclustered vx = vx.cluster = None in
  let clustered vx = vx.cluster <> None in
  let select_any _vx ~cluster:_ ~other:_ ~edge:_ = true in
  let select_lower vx ~cluster ~other:_ ~edge:_ =
    match vx.cluster with Some own -> cluster < own | None -> false
  in
  let select_higher vx ~cluster ~other:_ ~edge:_ =
    match vx.cluster with Some own -> cluster > own | None -> false
  in
  sim.stage <- "spanner/final-connect";
  connect_stage sim ~participates:unclustered ~select:select_any
    ~weight_filtered:false;
  connect_stage sim ~participates:clustered ~select:select_lower
    ~weight_filtered:false;
  connect_stage sim ~participates:clustered ~select:select_higher
    ~weight_filtered:false;

  (* Collect results and check that the two endpoints of every tried edge
     agree on its classification (the implicit-communication guarantee). *)
  let m = Graph.m graph in
  let fplus = ref [] and fminus = ref [] in
  let agree = ref sim.consistent in
  for e = m - 1 downto 0 do
    let ed = Graph.edge graph e in
    let pu = in_fplus verts.(ed.u) e and pv = in_fplus verts.(ed.v) e in
    let mu = in_fminus verts.(ed.u) e and mv = in_fminus verts.(ed.v) e in
    if pu <> pv || mu <> mv then agree := false;
    if pu || pv then fplus := e :: !fplus
    else if mu || mv then fminus := e :: !fminus
  done;
  let orientation =
    Array.of_list
      (List.map
         (fun e ->
           match Hashtbl.find_opt sim.orientation e with
           | Some o -> o
           | None ->
               let ed = Graph.edge graph e in
               (ed.u, ed.v))
         !fplus)
  in
  {
    fplus = !fplus;
    fminus = !fminus;
    orientation;
    clusters = Array.map (fun vx -> vx.cluster) verts;
    rounds = Rounds.checkpoint acc - start_rounds;
    supersteps = sim.supersteps;
    views_agree = !agree;
  }

let out_degrees graph (result : result) =
  let deg = Array.make (Graph.n graph) 0 in
  Array.iter (fun (from_, _) -> deg.(from_) <- deg.(from_) + 1) result.orientation;
  deg
