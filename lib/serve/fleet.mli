(** The fleet of named graphs (and flow networks) a daemon serves.

    Built once at daemon startup from a pure configuration, so the
    load-generator client can rebuild the identical fleet from the same
    config and verify daemon responses bit-for-bit against direct
    [Lbcc]/[Prepared] calls. *)

module Graph = Lbcc_graph.Graph
module Network = Lbcc_flow.Network

type family = Er | Grid | Geometric | Complete

val family_of_string : string -> family option
val family_to_string : family -> string

type config = {
  seed : int;
  graphs : int;  (** fleet size; named [g0 .. g{graphs-1}] *)
  vertices : int;
  family : family;
  w_max : int;
  networks : int;  (** flow networks; named [f0 ..]; 0 = no flow workload *)
  net_vertices : int;
}

val default_config : config
(** 4 Erdős–Rényi graphs on 48 vertices, no networks, seed 1. *)

type entry = {
  name : string;
  mutable graph : Graph.t;  (** mutate via {!set_graph} only *)
  mutable fingerprint_hex : string;
      (** structural fingerprint, precomputed — the scheduler's bin key *)
  mutable generation : int;  (** deltas applied since {!build} *)
}

type net_entry = { net_name : string; net : Network.t }

type t = { config : config; entries : entry list; nets : net_entry list }

val build : config -> t
(** Deterministic: every entry draws from its own stream derived from
    [(seed, index)], so equal configs build bit-identical fleets.
    @raise Invalid_argument when [graphs < 1]. *)

val find : t -> string -> entry option
val find_net : t -> string -> net_entry option

val set_graph : entry -> Graph.t -> fingerprint_hex:string -> unit
(** Replace an entry's graph in place (the daemon's [update] opcode):
    installs the new graph and its already-patched fingerprint and bumps
    the generation.  Requests admitted earlier but dispatched after this
    call observe the new graph — update visibility is a pure function of
    the dispatch order, which the scheduler keeps deterministic. *)

val info_json : t -> Lbcc_obs.Json.t
(** Fleet roster ([lbcc-serve-info/2]): name, size, fingerprint and update
    generation per graph — what the daemon answers to an [Info] request. *)
