(** Seeded zipf-distributed request traces for the SERVE load generator.

    Pure functions of the config: the daemon-side identity checker and the
    client rebuild identical operations (and right-hand sides) from the same
    seeds.  Graph popularity follows a zipf(s) law over the fleet — a few
    hot graphs and a long tail, the regime where fingerprint coalescing
    pays. *)

type op =
  | Solve_op of { graph : int; op_seed : int }
  | Resistance_op of { graph : int; op_seed : int }
  | Flow_op of { net : int }

type config = {
  seed : int;
  clients : int;
  per_client : int;  (** requests issued by each client *)
  graphs : int;  (** fleet size the zipf law ranges over *)
  zipf_s : float;  (** zipf exponent; 1.0 = classic *)
  resistance_frac : float;  (** fraction of ops querying [R_eff] *)
  flows : int;  (** total flow ops, dealt to the first trace slots *)
  networks : int;  (** required [> 0] when [flows > 0] *)
}

val default_config : config
(** 16 clients × 8 ops over 4 graphs, zipf 1.0, 25% resistance, no flow. *)

val zipf_cdf : s:float -> n:int -> float array
(** Cumulative zipf(s) distribution over ranks [0 .. n-1]
    (weight ∝ [1/(rank+1)^s]); last entry is exactly 1.
    @raise Invalid_argument when [n < 1]. *)

val sample_zipf : Lbcc_util.Prng.t -> float array -> int
(** Draw a rank from a {!zipf_cdf}. *)

val trace : config -> op array array
(** [trace cfg].(c).(j) is client [c]'s [j]-th operation.  Deterministic:
    each client draws from its own seeded stream. *)

val rhs : n:int -> op_seed:int -> float array
(** The mean-centered gaussian right-hand side of a [Solve_op],
    reproducible from the op seed. *)

val st_pair : n:int -> op_seed:int -> int * int
(** The distinct [(s, t)] vertex pair of a [Resistance_op]. *)
