(* Socket front-end for the daemon core: a single-process Unix.select event
   loop speaking the length-prefixed Proto frames.

   The loop owns no solver state and makes no scheduling decisions — it
   only moves bytes: accept connections, feed complete payloads to
   Daemon.handle, tick the daemon (force-ticking when the socket set is
   idle so lonely bins never starve), and flush the daemon's output queue
   back to the owning client.  SIGTERM/SIGINT flip the daemon into drain
   mode; the loop then stops accepting, answers everything admitted, and
   returns so the executable can dump the final stats snapshot. *)

type endpoint = Unix_sock of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let bind_listen endpoint =
  let domain, addr =
    match endpoint with
    | Unix_sock path ->
        (* A stale socket file from a crashed run would make bind fail. *)
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        (Unix.PF_UNIX, addr_of endpoint)
    | Tcp _ -> (Unix.PF_INET, addr_of endpoint)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 64;
  fd

let connect endpoint =
  let domain =
    match endpoint with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.connect fd (addr_of endpoint);
  fd

(* One connected client: its fd, its frame reassembly buffer, and the
   daemon-side client id used to route responses back. *)
type conn = { cid : int; fd : Unix.file_descr; reader : Proto.Reader.t }

let write_all fd buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd buf !off (len - !off)
  done

let install_drain_signals daemon =
  let drain = Sys.Signal_handle (fun _ -> Daemon.request_shutdown daemon) in
  Sys.set_signal Sys.sigterm drain;
  Sys.set_signal Sys.sigint drain;
  (* A client that disconnects mid-response must not kill the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let run ?(install_signals = true) daemon listen_fd =
  if install_signals then install_drain_signals daemon;
  let conns = ref [] in
  let next_cid = ref 0 in
  let scratch = Bytes.create 65536 in
  let drop c =
    conns := List.filter (fun c' -> c'.cid <> c.cid) !conns;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let accept_ready () =
    match Unix.accept listen_fd with
    | fd, _ ->
        let cid = !next_cid in
        incr next_cid;
        conns := { cid; fd; reader = Proto.Reader.create () } :: !conns
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
  in
  let read_ready c =
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | 0 -> drop c
    | n -> (
        Proto.Reader.feed c.reader scratch n;
        try
          let rec pump () =
            match Proto.Reader.next c.reader with
            | None -> ()
            | Some payload ->
                (match Proto.decode_request payload with
                | id, req -> Daemon.handle daemon ~client:c.cid ~id req
                | exception Proto.Decode_error msg ->
                    (* Framing survived but the payload is garbage: tell the
                       client (id 0: the real id may be unparseable) and cut
                       the connection — the stream is not trustworthy. *)
                    (try
                       write_all c.fd
                         (Proto.encode_response ~id:0
                            (Proto.Error_r
                               { code = Proto.Bad_request; message = msg }))
                     with Unix.Unix_error _ -> ());
                    drop c;
                    raise Exit);
                pump ()
          in
          pump ()
        with
        | Exit -> ()
        | Proto.Decode_error _ -> drop c)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> drop c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let flush_output () =
    List.iter
      (fun (cid, frame) ->
        match List.find_opt (fun c -> c.cid = cid) !conns with
        | None -> () (* client went away; its responses are dropped *)
        | Some c -> (
            try write_all c.fd frame
            with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
              drop c))
      (Daemon.take_output daemon)
  in
  let finished = ref false in
  while not !finished do
    let accepting = not (Daemon.shutting_down daemon) in
    let read_fds =
      (if accepting then [ listen_fd ] else [])
      @ List.map (fun c -> c.fd) !conns
    in
    let ready, _, _ =
      match Unix.select read_fds [] [] 0.05 with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let idle = match ready with [] -> true | _ -> false in
    if accepting && List.memq listen_fd ready then accept_ready ();
    List.iter
      (fun c -> if List.memq c.fd ready then read_ready c)
      (* iterate over a snapshot: read_ready mutates !conns on drop *)
      !conns;
    (* Execute every ripe batch; when the sockets are idle (or draining),
       force one dispatch so waiting bins keep aging toward the window. *)
    while Daemon.tick daemon do
      ()
    done;
    if idle || Daemon.shutting_down daemon then
      ignore (Daemon.tick ~force:true daemon : bool);
    flush_output ();
    if Daemon.shutting_down daemon && Daemon.pending daemon = 0 then begin
      Daemon.drain daemon;
      flush_output ();
      finished := true
    end
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  try Unix.close listen_fd with Unix.Unix_error _ -> ()
