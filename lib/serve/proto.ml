(* Wire protocol for lbcc_serve: length-prefixed binary frames.

   Frame   = u32_be payload length ++ payload
   Payload = u8 version ++ u8 opcode ++ u32_be request id
             ++ opcode-specific body

   Version 1 had no version byte; version 2 added it together with the
   Update opcode (0x07/0x87), so both sides fail fast on a mixed
   deployment instead of misparsing a mutation.

   Integers are big-endian; floats travel as their IEEE-754 bit pattern
   (Int64.bits_of_float), so a solution vector round-trips bit-for-bit —
   the SERVE bench's identity claims compare daemon responses against
   direct Lbcc calls at the bit level, and the codec must not be the
   component that loses a ulp. *)

module Graph = Lbcc_graph.Graph

exception Decode_error of string

let version = 2

let max_payload = 1 lsl 26
(* 64 MiB: generous for any fleet graph (an n-vertex solve response is
   8 n + tens of bytes) while rejecting corrupt length prefixes before they
   turn into an allocation attack on the daemon. *)

type error_code = Overloaded | Bad_request | Internal

type request =
  | Solve of { name : string; eps : float; b : float array }
  | Resistance of { name : string; eps : float; s : int; t : int }
  | Flow of { name : string }
  | Update of { name : string; delta : Graph.Delta.t }
  | Stats
  | Info
  | Shutdown

type response =
  | Solution of {
      solution : float array;
      residual : float;
      iterations : int;
      rounds : int;
      bits : int;
    }
  | Resistance_r of { resistance : float; rounds : int; bits : int }
  | Flow_r of {
      flow : float array;
      value : int;
      cost : int;
      rounds : int;
      bits : int;
    }
  | Json_r of string
  | Ok_r
  | Update_r of {
      n : int;
      m : int;
      fingerprint : string;
      rounds : int;
      bits : int;
    }
  | Error_r of { code : error_code; message : string }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let add_u8 b v = Buffer.add_uint8 b (v land 0xff)

let add_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Proto: u32 out of range";
  Buffer.add_int32_be b (Int32.of_int v)

let add_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let add_string b s =
  if String.length s > 0xffff then invalid_arg "Proto: string too long";
  Buffer.add_uint16_be b (String.length s);
  Buffer.add_string b s

let add_floats b a =
  add_u32 b (Array.length a);
  Array.iter (fun v -> add_f64 b v) a

let code_of_error = function Overloaded -> 1 | Bad_request -> 2 | Internal -> 3

let error_of_code = function
  | 1 -> Overloaded
  | 2 -> Bad_request
  | 3 -> Internal
  | c -> raise (Decode_error (Printf.sprintf "unknown error code %d" c))

let encode_payload buf ~id op body =
  add_u8 buf version;
  add_u8 buf op;
  add_u32 buf id;
  body buf

let add_delta buf d =
  let dels = Graph.Delta.deletes d in
  add_u32 buf (Array.length dels);
  Array.iter (fun id -> add_u32 buf id) dels;
  let rws = Graph.Delta.reweights d in
  add_u32 buf (Array.length rws);
  Array.iter
    (fun (id, w) ->
      add_u32 buf id;
      add_f64 buf w)
    rws;
  let ins = Graph.Delta.inserts d in
  add_u32 buf (Array.length ins);
  Array.iter
    (fun (e : Graph.edge) ->
      add_u32 buf e.Graph.u;
      add_u32 buf e.Graph.v;
      add_f64 buf e.Graph.w)
    ins

let frame_of buf =
  let payload = Buffer.contents buf in
  let n = String.length payload in
  if n > max_payload then invalid_arg "Proto: payload exceeds max_payload";
  let out = Bytes.create (4 + n) in
  Bytes.set_int32_be out 0 (Int32.of_int n);
  Bytes.blit_string payload 0 out 4 n;
  out

let encode_request ~id req =
  let buf = Buffer.create 64 in
  (match req with
  | Solve { name; eps; b } ->
      encode_payload buf ~id 0x01 (fun buf ->
          add_string buf name;
          add_f64 buf eps;
          add_floats buf b)
  | Resistance { name; eps; s; t } ->
      encode_payload buf ~id 0x02 (fun buf ->
          add_string buf name;
          add_f64 buf eps;
          add_u32 buf s;
          add_u32 buf t)
  | Flow { name } ->
      encode_payload buf ~id 0x03 (fun buf -> add_string buf name)
  | Update { name; delta } ->
      encode_payload buf ~id 0x07 (fun buf ->
          add_string buf name;
          add_delta buf delta)
  | Stats -> encode_payload buf ~id 0x04 (fun _ -> ())
  | Info -> encode_payload buf ~id 0x05 (fun _ -> ())
  | Shutdown -> encode_payload buf ~id 0x06 (fun _ -> ()));
  frame_of buf

let encode_response ~id resp =
  let buf = Buffer.create 64 in
  (match resp with
  | Solution { solution; residual; iterations; rounds; bits } ->
      encode_payload buf ~id 0x81 (fun buf ->
          add_f64 buf residual;
          add_u32 buf iterations;
          add_u32 buf rounds;
          add_u32 buf bits;
          add_floats buf solution)
  | Resistance_r { resistance; rounds; bits } ->
      encode_payload buf ~id 0x82 (fun buf ->
          add_f64 buf resistance;
          add_u32 buf rounds;
          add_u32 buf bits)
  | Flow_r { flow; value; cost; rounds; bits } ->
      encode_payload buf ~id 0x83 (fun buf ->
          add_u32 buf value;
          add_u32 buf cost;
          add_u32 buf rounds;
          add_u32 buf bits;
          add_floats buf flow)
  | Json_r s ->
      encode_payload buf ~id 0x84 (fun buf ->
          add_u32 buf (String.length s);
          Buffer.add_string buf s)
  | Ok_r -> encode_payload buf ~id 0x85 (fun _ -> ())
  | Update_r { n; m; fingerprint; rounds; bits } ->
      encode_payload buf ~id 0x87 (fun buf ->
          add_u32 buf n;
          add_u32 buf m;
          add_string buf fingerprint;
          add_u32 buf rounds;
          add_u32 buf bits)
  | Error_r { code; message } ->
      encode_payload buf ~id 0x86 (fun buf ->
          add_u8 buf (code_of_error code);
          add_string buf message));
  frame_of buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

type cursor = { data : Bytes.t; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.data then
    raise (Decode_error "truncated payload")

let get_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.data c.pos in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_be c.data c.pos) land 0xffff_ffff in
  c.pos <- c.pos + 4;
  v

let get_f64 c =
  need c 8;
  let v = Int64.float_of_bits (Bytes.get_int64_be c.data c.pos) in
  c.pos <- c.pos + 8;
  v

let get_string c =
  need c 2;
  let n = Bytes.get_uint16_be c.data c.pos in
  c.pos <- c.pos + 2;
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_floats c =
  let n = get_u32 c in
  if n * 8 > Bytes.length c.data - c.pos then
    raise (Decode_error "float array length exceeds payload");
  Array.init n (fun _ -> get_f64 c)

let get_blob c =
  let n = get_u32 c in
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let finish c v =
  if c.pos <> Bytes.length c.data then
    raise (Decode_error "trailing bytes after payload");
  v

let get_version c =
  let v = get_u8 c in
  if v <> version then
    raise (Decode_error (Printf.sprintf "protocol version %d, expected %d" v version))

let get_delta c =
  let dels = get_u32 c in
  let ops = ref [] in
  for _ = 1 to dels do
    ops := Graph.Delta.Delete (get_u32 c) :: !ops
  done;
  let rws = get_u32 c in
  for _ = 1 to rws do
    let id = get_u32 c in
    let w = get_f64 c in
    ops := Graph.Delta.Reweight (id, w) :: !ops
  done;
  let ins = get_u32 c in
  for _ = 1 to ins do
    let u = get_u32 c in
    let v = get_u32 c in
    let w = get_f64 c in
    ops := Graph.Delta.Insert { Graph.u; v; w } :: !ops
  done;
  try Graph.Delta.of_ops (List.rev !ops)
  with Invalid_argument msg -> raise (Decode_error msg)

let decode_request payload =
  let c = { data = payload; pos = 0 } in
  get_version c;
  let op = get_u8 c in
  let id = get_u32 c in
  let req =
    match op with
    | 0x01 ->
        let name = get_string c in
        let eps = get_f64 c in
        let b = get_floats c in
        Solve { name; eps; b }
    | 0x02 ->
        let name = get_string c in
        let eps = get_f64 c in
        let s = get_u32 c in
        let t = get_u32 c in
        Resistance { name; eps; s; t }
    | 0x03 -> Flow { name = get_string c }
    | 0x07 ->
        let name = get_string c in
        let delta = get_delta c in
        Update { name; delta }
    | 0x04 -> Stats
    | 0x05 -> Info
    | 0x06 -> Shutdown
    | op -> raise (Decode_error (Printf.sprintf "unknown request opcode 0x%02x" op))
  in
  finish c (id, req)

let decode_response payload =
  let c = { data = payload; pos = 0 } in
  get_version c;
  let op = get_u8 c in
  let id = get_u32 c in
  let resp =
    match op with
    | 0x81 ->
        let residual = get_f64 c in
        let iterations = get_u32 c in
        let rounds = get_u32 c in
        let bits = get_u32 c in
        let solution = get_floats c in
        Solution { solution; residual; iterations; rounds; bits }
    | 0x82 ->
        let resistance = get_f64 c in
        let rounds = get_u32 c in
        let bits = get_u32 c in
        Resistance_r { resistance; rounds; bits }
    | 0x83 ->
        let value = get_u32 c in
        let cost = get_u32 c in
        let rounds = get_u32 c in
        let bits = get_u32 c in
        let flow = get_floats c in
        Flow_r { flow; value; cost; rounds; bits }
    | 0x84 -> Json_r (get_blob c)
    | 0x85 -> Ok_r
    | 0x87 ->
        let n = get_u32 c in
        let m = get_u32 c in
        let fingerprint = get_string c in
        let rounds = get_u32 c in
        let bits = get_u32 c in
        Update_r { n; m; fingerprint; rounds; bits }
    | 0x86 ->
        let code = error_of_code (get_u8 c) in
        let message = get_string c in
        Error_r { code; message }
    | op ->
        raise (Decode_error (Printf.sprintf "unknown response opcode 0x%02x" op))
  in
  finish c (id, resp)

(* ------------------------------------------------------------------ *)
(* Incremental frame reader                                            *)

module Reader = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let feed t src n =
    if n > 0 then begin
      let cap = Bytes.length t.buf in
      if t.len + n > cap then begin
        let cap' = max (t.len + n) (2 * cap) in
        let buf' = Bytes.create cap' in
        Bytes.blit t.buf 0 buf' 0 t.len;
        t.buf <- buf'
      end;
      Bytes.blit src 0 t.buf t.len n;
      t.len <- t.len + n
    end

  let next t =
    if t.len < 4 then None
    else begin
      let n = Int32.to_int (Bytes.get_int32_be t.buf 0) in
      if n < 0 || n > max_payload then
        raise (Decode_error (Printf.sprintf "frame length %d out of range" n));
      if t.len < 4 + n then None
      else begin
        let payload = Bytes.sub t.buf 4 n in
        let rest = t.len - 4 - n in
        Bytes.blit t.buf (4 + n) t.buf 0 rest;
        t.len <- rest;
        Some payload
      end
    end

  let buffered t = t.len
end
