(** Socket front-end for the {!Daemon} core: a single-process
    [Unix.select] event loop over length-prefixed {!Proto} frames.

    The loop only moves bytes; every scheduling decision lives in
    {!Sched}/{!Daemon}, so a socket-driven daemon behaves identically to
    one driven in-process by the test suite. *)

type endpoint = Unix_sock of string | Tcp of string * int

val endpoint_to_string : endpoint -> string

val bind_listen : endpoint -> Unix.file_descr
(** Bound, listening socket for the endpoint.  A stale Unix socket file is
    unlinked first.  [Tcp] hosts must be numeric addresses (no resolver —
    the daemon stays deterministic and offline). *)

val connect : endpoint -> Unix.file_descr
(** Client side: a connected stream socket. *)

val run : ?install_signals:bool -> Daemon.t -> Unix.file_descr -> unit
(** Serve until shutdown: accept, decode, {!Daemon.handle}, tick, flush.
    Malformed payloads answer [Bad_request] (id 0) and drop the
    connection.  With [install_signals] (default), SIGTERM and SIGINT
    request a graceful drain and SIGPIPE is ignored.  Once draining, the
    loop stops accepting, answers every admitted request, flushes, closes
    all sockets (including [listen_fd]) and returns. *)
