(* Seeded zipf-distributed request traces for the load generator.

   A trace is a pure function of its config: per-client operation lists are
   drawn from independent Prng streams, with graph popularity following a
   zipf(s) law over the fleet — the canonical shape of fan-in query traffic
   (a few hot graphs, a long cold tail), and the regime where coalescing
   pays: the hot fingerprint's bin fills to max_batch while the window
   bounds the tail's latency. *)

open Lbcc_util

type op =
  | Solve_op of { graph : int; op_seed : int }
  | Resistance_op of { graph : int; op_seed : int }
  | Flow_op of { net : int }

type config = {
  seed : int;
  clients : int;
  per_client : int;
  graphs : int;
  zipf_s : float;
  resistance_frac : float;  (* fraction of ops that query R_eff *)
  flows : int;  (* total flow ops, dealt round-robin from client 0 *)
  networks : int;
}

let default_config =
  {
    seed = 1;
    clients = 16;
    per_client = 8;
    graphs = 4;
    zipf_s = 1.0;
    resistance_frac = 0.25;
    flows = 0;
    networks = 0;
  }

(* Cumulative zipf(s) distribution over ranks 0..n-1: weight(i) ∝ 1/(i+1)^s. *)
let zipf_cdf ~s ~n =
  if n < 1 then invalid_arg "Workload.zipf_cdf: n < 1";
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i wi ->
      acc := !acc +. (wi /. total);
      cdf.(i) <- !acc)
    w;
  cdf.(n - 1) <- 1.0;
  cdf

let sample_zipf prng cdf =
  let u = Prng.float prng in
  let n = Array.length cdf in
  let rec find i = if i >= n - 1 || u < cdf.(i) then i else find (i + 1) in
  find 0

let trace cfg =
  if cfg.clients < 1 then invalid_arg "Workload.trace: clients < 1";
  if cfg.graphs < 1 then invalid_arg "Workload.trace: graphs < 1";
  if cfg.flows > 0 && cfg.networks < 1 then
    invalid_arg "Workload.trace: flow ops need networks";
  let cdf = zipf_cdf ~s:cfg.zipf_s ~n:cfg.graphs in
  let flows_left = ref cfg.flows in
  Array.init cfg.clients (fun c ->
      let prng = Prng.create ((cfg.seed * 31337) + (2 * c) + 1) in
      Array.init cfg.per_client (fun j ->
          (* Flow ops are dealt deterministically to the first slots of the
             round-robin (client-major) order until the budget is spent. *)
          if !flows_left > 0 then begin
            decr flows_left;
            Flow_op { net = ((c * cfg.per_client) + j) mod cfg.networks }
          end
          else begin
            let graph = sample_zipf prng cdf in
            let op_seed = (Prng.int prng 0x3FFFFFF * 64) + (2 * c) + 1 in
            if Prng.bernoulli prng cfg.resistance_frac then
              Resistance_op { graph; op_seed }
            else Solve_op { graph; op_seed }
          end))

(* Mean-centered gaussian right-hand side — reproducible from the op seed,
   so both the client (building the request) and the identity checker
   (recomputing the direct solve) derive the same vector. *)
let rhs ~n ~op_seed =
  let prng = Prng.create op_seed in
  let b = Array.init n (fun _ -> Prng.gaussian prng) in
  let mean = Array.fold_left ( +. ) 0.0 b /. float_of_int n in
  Array.map (fun v -> v -. mean) b

let st_pair ~n ~op_seed =
  if n < 2 then invalid_arg "Workload.st_pair: n < 2";
  let prng = Prng.create op_seed in
  let s = Prng.int prng n in
  let t = Prng.int prng (n - 1) in
  (s, if t >= s then t + 1 else t)
