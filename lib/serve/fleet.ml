(* The fleet of named graphs (and flow networks) a daemon serves.

   Both sides of the SERVE bench — the forked daemon and the load-generator
   client checking bitwise identity — rebuild the fleet independently from
   the same configuration, so construction must be a pure function of the
   config: every entry draws from its own Prng stream derived from the
   fleet seed and the entry index. *)

module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Network = Lbcc_flow.Network
module Fingerprint = Lbcc_service.Fingerprint
open Lbcc_util

type family = Er | Grid | Geometric | Complete

let family_of_string = function
  | "er" -> Some Er
  | "grid" -> Some Grid
  | "geometric" -> Some Geometric
  | "complete" -> Some Complete
  | _ -> None

let family_to_string = function
  | Er -> "er"
  | Grid -> "grid"
  | Geometric -> "geometric"
  | Complete -> "complete"

type config = {
  seed : int;
  graphs : int;
  vertices : int;
  family : family;
  w_max : int;
  networks : int;
  net_vertices : int;
}

let default_config =
  {
    seed = 1;
    graphs = 4;
    vertices = 48;
    family = Er;
    w_max = 8;
    networks = 0;
    net_vertices = 8;
  }

type entry = {
  name : string;
  mutable graph : Graph.t;
  mutable fingerprint_hex : string;  (* precomputed: the admission-path bin key *)
  mutable generation : int;  (* deltas applied since build *)
}

type net_entry = { net_name : string; net : Network.t }

type t = { config : config; entries : entry list; nets : net_entry list }

(* Distinct odd stride keeps per-entry streams disjoint for any seed. *)
let entry_prng seed i = Prng.create ((seed * 65599) + (2 * i) + 1)

let build_graph cfg i =
  let prng = entry_prng cfg.seed i in
  let n = cfg.vertices in
  match cfg.family with
  | Er -> Gen.erdos_renyi_connected prng ~n ~p:0.3 ~w_max:cfg.w_max
  | Grid ->
      let side = Stdlib.max 2 (int_of_float (sqrt (float_of_int n))) in
      Gen.grid prng ~rows:side ~cols:side ~w_max:cfg.w_max
  | Geometric -> Gen.random_geometric prng ~n ~radius:0.3 ~w_max:cfg.w_max
  | Complete -> Gen.complete prng ~n ~w_max:cfg.w_max

let build cfg =
  if cfg.graphs < 1 then invalid_arg "Fleet.build: need at least one graph";
  let entries =
    List.init cfg.graphs (fun i ->
        let graph = build_graph cfg i in
        {
          name = Printf.sprintf "g%d" i;
          graph;
          fingerprint_hex = Fingerprint.to_hex (Fingerprint.graph graph);
          generation = 0;
        })
  in
  let nets =
    List.init cfg.networks (fun i ->
        let prng = entry_prng (cfg.seed + 7919) i in
        {
          net_name = Printf.sprintf "f%d" i;
          net =
            Network.random prng ~n:cfg.net_vertices ~density:0.3
              ~max_capacity:cfg.w_max ~max_cost:cfg.w_max;
        })
  in
  { config = cfg; entries; nets }

let find t name = List.find_opt (fun e -> String.equal e.name name) t.entries

(* The update path hands us the already-patched fingerprint (O(|delta|) via
   Fingerprint.apply), so replacing a graph never rehashes it. *)
let set_graph e graph ~fingerprint_hex =
  e.graph <- graph;
  e.fingerprint_hex <- fingerprint_hex;
  e.generation <- e.generation + 1

let find_net t name =
  List.find_opt (fun e -> String.equal e.net_name name) t.nets

let info_json t =
  let open Lbcc_obs.Json in
  Obj
    [
      ("schema", String "lbcc-serve-info/2");
      ( "graphs",
        Arr
          (List.map
             (fun e ->
               Obj
                 [
                   ("name", String e.name);
                   ("n", Int (Graph.n e.graph));
                   ("m", Int (Graph.m e.graph));
                   ("fingerprint", String e.fingerprint_hex);
                   ("generation", Int e.generation);
                 ])
             t.entries) );
      ( "networks",
        Arr
          (List.map
             (fun e ->
               Obj
                 [
                   ("name", String e.net_name);
                   ("n", Int e.net.Network.n);
                   ("m", Int (Network.m e.net));
                 ])
             t.nets) );
    ]
