(** The [lbcc_serve] daemon core, sockets excluded.

    Owns the full request lifecycle: validation against the {!Fleet},
    admission through the bounded {!Sched} queue (explicit [Overloaded]
    rejections, never unbounded buffering), coalesced execution through
    {!Lbcc_service.Prepared.solve_many}, and response emission.  The event
    loop ({!Server}) and the test suite drive the same three entry points —
    {!handle}, {!tick}, {!take_output} — so everything the daemon does over
    a socket is reproducible in-process.

    {b Determinism.}  Responses are bit-identical to direct
    [Lbcc]/[Prepared] calls on the same fleet and seed: batching changes
    {e when} a request is answered, never {e what} the answer is.  The only
    wall-clock reads go through {!Lbcc_obs.Clock} into latency histograms;
    scheduling decisions depend solely on the admit/dispatch trace. *)

type config = {
  sched : Sched.config;
  seed : int;  (** solver seed ({!Lbcc_service.Ctx}); pins responses *)
  cache_capacity : int;
      (** [Prepared] handle cache size; [0] disables reuse entirely, so
          every batch pays preprocessing afresh — the SERVE bench's serial
          baseline *)
  prepare_on_load : bool;
      (** prepare every fleet graph at startup (warm cache), charging the
          one-time costs before the first request arrives *)
}

val default_config : config
(** Default scheduler, seed 1, cache capacity 8, warm start. *)

type t

val create : ?metrics:Lbcc_obs.Metrics.t -> config -> Fleet.t -> t
(** A fresh daemon serving [fleet].  Supplies its own metrics registry when
    none is given; all SLO series live under the ["serve."] prefix. *)

val handle : t -> client:int -> id:int -> Proto.request -> unit
(** Process one decoded request from [client].  [Stats]/[Info]/[Shutdown]
    are answered immediately; solver work is validated (unknown names,
    wrong vector lengths and out-of-range vertices answer [Bad_request])
    and then admitted — or answered [Overloaded] when the queue is full or
    the daemon is draining.  Responses appear in {!take_output}. *)

val tick : ?force:bool -> t -> bool
(** Dispatch and execute at most one batch; [false] when no bin was ripe.
    [force] dispatches a non-empty bin even before it is ripe (idle poll,
    drain).  A solver exception answers every batch member with
    [Internal] rather than killing the daemon. *)

val drain : t -> unit
(** Force-tick until every admitted request has been answered — the
    graceful-shutdown guarantee. *)

val take_output : t -> (int * Bytes.t) list
(** Drain the emission queue: [(client, encoded response frame)] in
    emission order. *)

val output_pending : t -> bool

val request_shutdown : t -> unit
(** Begin draining: subsequent work requests are answered [Overloaded];
    already-admitted requests will still be answered. *)

val shutting_down : t -> bool
val pending : t -> int
val served : t -> int

val stats_json : t -> Lbcc_obs.Json.t
(** The [lbcc-serve-stats/1] SLO snapshot: admission and batch counters,
    round/bit totals, cache hit counters, latency and occupancy quantiles
    (via {!Lbcc_obs.Metrics.quantile}), and the full metrics registry.
    Strict JSON — safe for {!Lbcc_obs.Json.to_string}. *)

val metrics : t -> Lbcc_obs.Metrics.t
val accountant : t -> Lbcc_net.Rounds.t
