(** Wire protocol for [lbcc_serve]: length-prefixed binary frames.

    A frame is a 4-byte big-endian payload length followed by the payload:
    one protocol {!version} byte, one opcode byte, a 4-byte request id
    (echoed verbatim in the matching response — responses may be reordered
    across coalescing bins), and the opcode-specific body.  Floats travel
    as IEEE-754 bit patterns so vectors round-trip bit-for-bit; the SERVE
    bench's identity claims rely on the codec being lossless.

    Version history: v1 had no version byte; v2 (current) prefixes every
    payload with one and adds the {!request.Update} mutation opcode
    (0x07) with its {!response.Update_r} reply (0x87).  A mismatched
    version byte raises {!Decode_error} immediately, so mixed deployments
    fail fast instead of misparsing a mutation. *)

val version : int
(** Protocol version stamped into (and required of) every payload. *)

exception Decode_error of string
(** Malformed payload (unknown opcode, truncated body, trailing bytes,
    out-of-range frame length). *)

val max_payload : int
(** Upper bound on a payload size; a length prefix beyond it raises
    {!Decode_error} before any allocation. *)

type error_code =
  | Overloaded  (** admission control rejected the request (bounded queue) *)
  | Bad_request  (** unknown graph, wrong vector length, bad vertex id *)
  | Internal  (** the solver raised; message carries the exception text *)

type request =
  | Solve of { name : string; eps : float; b : float array }
      (** Theorem 1.3 query against fleet graph [name]; [b] must be
          zero-sum with one entry per vertex. *)
  | Resistance of { name : string; eps : float; s : int; t : int }
      (** Effective resistance [R_eff(s, t)] on fleet graph [name]. *)
  | Flow of { name : string }
      (** Theorem 1.1 min-cost max-flow on fleet network [name]. *)
  | Update of { name : string; delta : Lbcc_graph.Graph.Delta.t }
      (** Mutate fleet graph [name] by a normalized edge delta.  Admitted
          through the same scheduler as solves, so mutations interleave
          with coalesced batches deterministically; the reply reports the
          post-update shape and the incremental re-preparation cost. *)
  | Stats  (** SLO snapshot as strict JSON ({!response.Json_r}). *)
  | Info  (** fleet roster (names, sizes, fingerprints) as strict JSON *)
  | Shutdown  (** graceful drain: answer everything admitted, then exit *)

type response =
  | Solution of {
      solution : float array;
      residual : float;
      iterations : int;
      rounds : int;  (** query-phase rounds charged for this solve *)
      bits : int;
    }
  | Resistance_r of { resistance : float; rounds : int; bits : int }
  | Flow_r of {
      flow : float array;
      value : int;
      cost : int;
      rounds : int;
      bits : int;
    }
  | Json_r of string  (** strict JSON body ([Stats] / [Info] replies) *)
  | Ok_r
  | Update_r of {
      n : int;  (** vertex count after the update *)
      m : int;  (** edge count after the update *)
      fingerprint : string;  (** hex fingerprint of the mutated graph *)
      rounds : int;  (** update-phase rounds charged (announce + re-sample) *)
      bits : int;
    }
  | Error_r of { code : error_code; message : string }

val encode_request : id:int -> request -> Bytes.t
(** Complete frame, length prefix included.  [id] must fit an unsigned
    32-bit integer. *)

val encode_response : id:int -> response -> Bytes.t

val decode_request : Bytes.t -> int * request
(** Decode a payload (no length prefix) as [(id, request)].
    @raise Decode_error on malformed input. *)

val decode_response : Bytes.t -> int * response

(** Incremental frame extraction over a byte stream: feed whatever the
    socket produced, pop complete payloads as they become available. *)
module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> unit
  (** Append the first [n] bytes of the buffer to the stream. *)

  val next : t -> Bytes.t option
  (** The next complete payload (length prefix stripped), or [None] until
      more bytes arrive.  @raise Decode_error on an out-of-range length
      prefix (the connection is unrecoverable). *)

  val buffered : t -> int
  (** Bytes currently buffered (diagnostics). *)
end
