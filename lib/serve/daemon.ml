(* The daemon core: request validation, admission, coalesced execution and
   response emission — everything except the sockets, so the test suite can
   drive it through the same entry points the event loop uses and pin its
   behaviour deterministically.

   Execution path per batch: all requests in a batch share one coalescing
   key (graph fingerprint + eps + kind), so they resolve to one Prepared
   handle and one [Prepared.solve_many] call — the solutions are
   bit-identical to issuing each request alone (the BATCH invariant), which
   is what makes coalescing transparent to clients.  The daemon's round
   accountant mirrors every prepare and query charge under the [serve]
   phase; wall-clock is read only through [Lbcc_obs.Clock] and only flows
   into latency histograms, never into scheduling decisions. *)

module Vec = Lbcc_linalg.Vec
module Graph = Lbcc_graph.Graph
module Rounds = Lbcc_net.Rounds
module Model = Lbcc_net.Model
module Metrics = Lbcc_obs.Metrics
module Clock = Lbcc_obs.Clock
module Json = Lbcc_obs.Json
module Ctx = Lbcc_service.Ctx
module Cache = Lbcc_service.Cache
module Prepared = Lbcc_service.Prepared
module Fingerprint = Lbcc_service.Fingerprint
module Lbcc = Lbcc_core.Lbcc

type config = {
  sched : Sched.config;
  seed : int;
  cache_capacity : int;
      (* 0 = no handle reuse: every batch pays preprocessing afresh (the
         SERVE bench's serial-uncached baseline) *)
  prepare_on_load : bool;
}

let default_config =
  {
    sched = Sched.default_config;
    seed = 1;
    cache_capacity = 8;
    prepare_on_load = true;
  }

type work =
  | W_solve of { entry : Fleet.entry; eps : float; b : Vec.t }
  | W_resist of { entry : Fleet.entry; eps : float; s : int; t : int }
  | W_flow of { nentry : Fleet.net_entry }
  | W_update of { entry : Fleet.entry; delta : Graph.Delta.t }

type pending_req = { client : int; id : int; work : work; t_admit : float }

type t = {
  cfg : config;
  fleet : Fleet.t;
  ctx : Ctx.t;
  metrics : Metrics.t;
  acc : Rounds.t;
  cache : Prepared.t Cache.t option;
  sched : pending_req Sched.t;
  out : (int * Bytes.t) Queue.t;
  mutable served : int;
  mutable shutting_down : bool;
}

let fleet_bandwidth fleet =
  let n =
    List.fold_left
      (fun m (e : Fleet.entry) -> Stdlib.max m (Graph.n e.Fleet.graph))
      2 fleet.Fleet.entries
  in
  Model.bandwidth ~n

(* Replay a handle's one-time preprocessing charges onto the daemon
   accountant under the serve/prepare labels, so total served rounds
   reflect what this daemon actually paid — the quantity the SERVE bench's
   amortization claim divides by. *)
let mirror_prepare t h =
  Rounds.with_phase t.acc "serve" (fun () ->
      List.iter
        (fun (label, rounds, bits) -> Rounds.charge t.acc ~bits ~label ~rounds)
        (Prepared.prepare_breakdown h))

let handle_for t (entry : Fleet.entry) =
  match t.cache with
  | Some cache ->
      let h, hit =
        Prepared.create_cached ~cache ~ctx:t.ctx entry.Fleet.graph
      in
      if not hit then mirror_prepare t h;
      h
  | None ->
      let h = Prepared.create ~ctx:t.ctx entry.Fleet.graph in
      mirror_prepare t h;
      h

let create ?metrics cfg fleet =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let ctx = Ctx.make ~seed:cfg.seed ~metrics () in
  let cache =
    if cfg.cache_capacity > 0 then
      Some
        (Cache.create ~capacity:cfg.cache_capacity ~metrics
           ~metrics_prefix:"serve.cache" ())
    else None
  in
  let t =
    {
      cfg;
      fleet;
      ctx;
      metrics;
      acc = Rounds.create ~bandwidth:(fleet_bandwidth fleet);
      cache;
      sched = Sched.create ~metrics cfg.sched;
      out = Queue.create ();
      served = 0;
      shutting_down = false;
    }
  in
  if cfg.prepare_on_load && cfg.cache_capacity > 0 then
    List.iter
      (fun e -> ignore (handle_for t e : Prepared.t))
      fleet.Fleet.entries;
  t

let metrics t = t.metrics
let accountant t = t.acc
let pending t = Sched.pending t.sched
let served t = t.served
let shutting_down t = t.shutting_down
let request_shutdown t = t.shutting_down <- true

let respond t ~client ~id response =
  Queue.push (client, Proto.encode_response ~id response) t.out

let take_output t =
  let rec pop acc =
    match Queue.take_opt t.out with
    | Some x -> pop (x :: acc)
    | None -> List.rev acc
  in
  pop []

let output_pending t = not (Queue.is_empty t.out)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let quantiles_json t name =
  match Metrics.histogram t.metrics name with
  | None -> Json.Null
  | Some s ->
      Json.Obj
        [
          ("count", Json.Int s.Metrics.count);
          ("min", Json.Float s.Metrics.min);
          ("p50", Json.Float (Metrics.quantile s 0.5));
          ("p90", Json.Float (Metrics.quantile s 0.9));
          ("p99", Json.Float (Metrics.quantile s 0.99));
          ("max", Json.Float s.Metrics.max);
        ]

let stats_json t =
  let cache_json =
    match t.cache with
    | None -> Json.Null
    | Some _ ->
        (* The canonical counters are the ones the cache mirrors into the
           registry (Cache.set_metrics contract) — read them back from
           there rather than from the snapshot ints. *)
        Json.Obj
          [
            ("hits", Json.Int (Metrics.counter t.metrics "serve.cache.hits"));
            ( "misses",
              Json.Int (Metrics.counter t.metrics "serve.cache.misses") );
            ( "evictions",
              Json.Int (Metrics.counter t.metrics "serve.cache.evictions") );
          ]
  in
  Json.Obj
    [
      ("schema", Json.String "lbcc-serve-stats/1");
      ("served", Json.Int t.served);
      ("admitted", Json.Int (Sched.admitted t.sched));
      ("rejected", Json.Int (Sched.rejected t.sched));
      ("pending", Json.Int (Sched.pending t.sched));
      ("batches", Json.Int (Sched.batches t.sched));
      ("rounds", Json.Int (Rounds.rounds t.acc));
      ("bits", Json.Int (Rounds.bits t.acc));
      ("cache", cache_json);
      ( "slo",
        Json.Obj
          [
            ("latency_s", quantiles_json t "serve.latency_s");
            ("queue_wait_batches", quantiles_json t "serve.queue_wait_batches");
            ("batch_occupancy", quantiles_json t "serve.batch_occupancy");
          ] );
      ("metrics", Metrics.to_json t.metrics);
    ]

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let err code message = Proto.Error_r { code; message }

let key_of_work = function
  | W_solve { entry; eps; _ } ->
      Printf.sprintf "s|%s|%Lx" entry.Fleet.fingerprint_hex
        (Int64.bits_of_float eps)
  | W_resist { entry; eps; _ } ->
      Printf.sprintf "r|%s|%Lx" entry.Fleet.fingerprint_hex
        (Int64.bits_of_float eps)
  | W_flow { nentry } -> Printf.sprintf "f|%s" nentry.Fleet.net_name
  (* Updates bin per graph *name*, not fingerprint: consecutive deltas to
     one graph coalesce into a batch and apply in admission order. *)
  | W_update { entry; _ } -> Printf.sprintf "u|%s" entry.Fleet.name

let admit t ~client ~id work =
  if t.shutting_down then
    respond t ~client ~id (err Proto.Overloaded "daemon is draining")
  else begin
    let req = { client; id; work; t_admit = Clock.now_s () } in
    if not (Sched.admit t.sched ~key:(key_of_work work) req) then
      respond t ~client ~id (err Proto.Overloaded "admission queue full")
  end

let handle t ~client ~id (req : Proto.request) =
  match req with
  | Proto.Stats ->
      respond t ~client ~id (Proto.Json_r (Json.to_string (stats_json t)))
  | Proto.Info ->
      respond t ~client ~id
        (Proto.Json_r (Json.to_string (Fleet.info_json t.fleet)))
  | Proto.Shutdown ->
      t.shutting_down <- true;
      respond t ~client ~id Proto.Ok_r
  | Proto.Solve { name; eps; b } -> (
      match Fleet.find t.fleet name with
      | None -> respond t ~client ~id (err Proto.Bad_request ("unknown graph " ^ name))
      | Some entry ->
          if Array.length b <> Graph.n entry.Fleet.graph then
            respond t ~client ~id
              (err Proto.Bad_request
                 (Printf.sprintf "rhs length %d, graph has %d vertices"
                    (Array.length b)
                    (Graph.n entry.Fleet.graph)))
          else admit t ~client ~id (W_solve { entry; eps; b }))
  | Proto.Resistance { name; eps; s; t = tgt } -> (
      match Fleet.find t.fleet name with
      | None -> respond t ~client ~id (err Proto.Bad_request ("unknown graph " ^ name))
      | Some entry ->
          let n = Graph.n entry.Fleet.graph in
          if s < 0 || s >= n || tgt < 0 || tgt >= n then
            respond t ~client ~id
              (err Proto.Bad_request
                 (Printf.sprintf "vertex pair (%d, %d) out of range [0, %d)" s
                    tgt n))
          else admit t ~client ~id (W_resist { entry; eps; s; t = tgt }))
  | Proto.Flow { name } -> (
      match Fleet.find_net t.fleet name with
      | None ->
          respond t ~client ~id (err Proto.Bad_request ("unknown network " ^ name))
      | Some nentry -> admit t ~client ~id (W_flow { nentry }))
  | Proto.Update { name; delta } -> (
      match Fleet.find t.fleet name with
      | None -> respond t ~client ~id (err Proto.Bad_request ("unknown graph " ^ name))
      | Some entry ->
          (* Fast-fail on ids beyond the current edge count; the definitive
             validation happens at execution time against the graph version
             the update actually lands on (earlier queued updates may have
             changed m either way). *)
          if Graph.Delta.max_id delta >= Graph.m entry.Fleet.graph then
            respond t ~client ~id
              (err Proto.Bad_request
                 (Printf.sprintf "delta references edge id >= m (%d)"
                    (Graph.m entry.Fleet.graph)))
          else if
            Array.exists
              (fun (e : Graph.edge) ->
                e.Graph.u >= Graph.n entry.Fleet.graph
                || e.Graph.v >= Graph.n entry.Fleet.graph)
              (Graph.Delta.inserts delta)
          then
            respond t ~client ~id
              (err Proto.Bad_request
                 (Printf.sprintf "insert endpoint >= n (%d)"
                    (Graph.n entry.Fleet.graph)))
          else admit t ~client ~id (W_update { entry; delta }))

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let finish t (req : pending_req) response =
  Metrics.observe (Some t.metrics) "serve.latency_s"
    (Clock.now_s () -. req.t_admit);
  t.served <- t.served + 1;
  respond t ~client:req.client ~id:req.id response

let rhs_of (req : pending_req) n =
  match req.work with
  | W_solve { b; _ } -> b
  | W_resist { s; t = tgt; _ } ->
      let b = Vec.zeros n in
      b.(s) <- b.(s) +. 1.0;
      b.(tgt) <- b.(tgt) -. 1.0;
      b
  | W_flow _ | W_update _ -> invalid_arg "Daemon.rhs_of: not a solve op"

let execute_solve_batch t (entry : Fleet.entry) eps reqs =
  let n = Graph.n entry.Fleet.graph in
  let handle = handle_for t entry in
  let bs = List.map (fun r -> rhs_of r n) reqs in
  let results =
    Rounds.with_phase t.acc "serve" (fun () ->
        Prepared.solve_many ~accountant:t.acc ~eps handle bs)
  in
  List.iter2
    (fun (req : pending_req) (q : Prepared.query_result) ->
      match req.work with
      | W_solve _ ->
          finish t req
            (Proto.Solution
               {
                 solution = q.Prepared.solution;
                 residual = q.Prepared.residual;
                 iterations = q.Prepared.iterations;
                 rounds = q.Prepared.rounds;
                 bits = q.Prepared.bits;
               })
      | W_resist { s; t = tgt; _ } ->
          finish t req
            (Proto.Resistance_r
               {
                 resistance = q.Prepared.solution.(s) -. q.Prepared.solution.(tgt);
                 rounds = q.Prepared.rounds;
                 bits = q.Prepared.bits;
               })
      | W_flow _ | W_update _ ->
          failwith "Daemon.execute_solve_batch: non-solve op in solve bin")
    reqs results

let execute_flow t (req : pending_req) =
  match req.work with
  | W_flow { nentry } ->
      let r = Lbcc.min_cost_max_flow ~ctx:t.ctx nentry.Fleet.net in
      Rounds.with_phase t.acc "serve" (fun () ->
          Rounds.charge t.acc ~bits:r.Lbcc.rounds.Lbcc.bits ~label:"mcmf-flow"
            ~rounds:r.Lbcc.rounds.Lbcc.total);
      finish t req
        (Proto.Flow_r
           {
             flow = r.Lbcc.flow;
             value = r.Lbcc.value;
             cost = r.Lbcc.cost;
             rounds = r.Lbcc.rounds.Lbcc.total;
             bits = r.Lbcc.rounds.Lbcc.bits;
           })
  | _ -> failwith "Daemon.execute_flow: non-flow op"

(* One update, in admission order within its batch.  Errors are isolated
   per request (a bad delta answers Bad_request and leaves the graph on its
   pre-delta version) so queued siblings still apply — and so a mid-batch
   failure can never double-respond to already-finished members. *)
let execute_update t (req : pending_req) =
  match req.work with
  | W_update { entry; delta } -> (
      try
        let response =
          match t.cache with
          | Some cache ->
              (* Patch the hot handle in place: fetch (or build) the handle
                 for the current graph version, update it incrementally, and
                 re-key the cache where the next prepare will look. *)
              let h = handle_for t entry in
              let h' =
                Rounds.with_phase t.acc "serve" (fun () ->
                    Prepared.update_cached ~cache ~accountant:t.acc h delta)
              in
              let g' = Prepared.graph h' in
              Fleet.set_graph entry g'
                ~fingerprint_hex:(Prepared.fingerprint_hex h');
              Proto.Update_r
                {
                  n = Graph.n g';
                  m = Graph.m g';
                  fingerprint = Prepared.fingerprint_hex h';
                  rounds = Prepared.preprocessing_rounds h';
                  bits = Prepared.preprocessing_bits h';
                }
          | None ->
              (* Uncached mode keeps no handle to patch: apply the delta now
                 and let the next batch pay preprocessing afresh, exactly
                 like every other request in this mode (rounds = 0 here;
                 the rebuild cost lands on the batch that triggers it). *)
              let g' = Graph.apply entry.Fleet.graph delta in
              if not (Graph.is_connected g') then
                invalid_arg "Daemon: update would disconnect the graph";
              let fp_hex = Fingerprint.to_hex (Fingerprint.graph g') in
              Fleet.set_graph entry g' ~fingerprint_hex:fp_hex;
              Proto.Update_r
                { n = Graph.n g'; m = Graph.m g'; fingerprint = fp_hex;
                  rounds = 0; bits = 0 }
        in
        Metrics.inc (Some t.metrics) "serve.updates";
        finish t req response
      with
      | Invalid_argument msg -> finish t req (err Proto.Bad_request msg)
      | e -> finish t req (err Proto.Internal (Printexc.to_string e)))
  | _ -> failwith "Daemon.execute_update: non-update op"

let execute_batch t (batch : pending_req Sched.batch) =
  match batch.Sched.items with
  | [] -> ()
  | first :: _ -> (
      try
        match first.work with
        | W_flow _ -> List.iter (execute_flow t) batch.Sched.items
        | W_update _ ->
            (* execute_update isolates failures per request; iteration order
               is the batch's admission order, which fixes update visibility
               deterministically. *)
            List.iter (execute_update t) batch.Sched.items
        | W_solve { entry; eps; _ } | W_resist { entry; eps; _ } ->
            execute_solve_batch t entry eps batch.Sched.items
      with e ->
        (* A failing batch must not take the daemon down or swallow the
           requests: every member gets an Internal error response. *)
        let msg = Printexc.to_string e in
        List.iter
          (fun (req : pending_req) ->
            finish t req (err Proto.Internal msg))
          batch.Sched.items)

let tick ?(force = false) t =
  match Sched.dispatch ~force t.sched with
  | None -> false
  | Some batch ->
      execute_batch t batch;
      true

let drain t =
  while Sched.pending t.sched > 0 do
    ignore (tick ~force:true t : bool)
  done
