(** Admission control + fingerprint-coalescing scheduler (pure bookkeeping).

    The daemon's performance core: requests are admitted into a bounded
    queue (beyond [max_queue] the caller must reject with [Overloaded] —
    the daemon never buffers unboundedly), binned by an opaque coalescing
    key (graph fingerprint + solver parameters), and dispatched as batches
    that the daemon feeds to {!Lbcc_service.Prepared.solve_many}.

    {b Determinism.}  The scheduler reads no clock and no randomness; its
    batching window is measured in {e completed batches}, the monotone
    counter its own dispatches produce.  Every decision is therefore a pure
    function of the event trace (the [admit]/[dispatch] interleaving): the
    same trace yields the same batch compositions in the same order, at
    every worker-pool size (pinned by [test_serve]). *)

type config = {
  max_queue : int;
      (** admission bound: requests pending at once; at the bound new
          arrivals are rejected, never queued *)
  max_batch : int;  (** coalescing cap per dispatched batch *)
  window : int;
      (** latency guard: a request that has waited this many completed
          batches forces its bin to dispatch next, so coalescing never
          starves a lonely fingerprint.  [0] disables waiting entirely. *)
  coalesce : bool;
      (** [false]: serial dispatch — every batch carries exactly one
          request (the SERVE bench's baseline mode) *)
}

val default_config : config
(** [{ max_queue = 256; max_batch = 16; window = 4; coalesce = true }] *)

type 'a t

val create : ?metrics:Lbcc_obs.Metrics.t -> config -> 'a t
(** With [metrics], the scheduler maintains ["serve.admitted"] /
    ["serve.rejected"] counters, the ["serve.queue_depth"] gauge and the
    ["serve.batch_occupancy"] / ["serve.queue_wait_batches"] histograms.
    @raise Invalid_argument on [max_queue < 1], [max_batch < 1] or a
    negative [window]. *)

val config : 'a t -> config

val admit : 'a t -> key:string -> 'a -> bool
(** Enqueue under the coalescing [key]; [false] means the queue is at
    [max_queue] and the request was rejected ({e admission control}: the
    caller answers [Overloaded] immediately). *)

type 'a batch = {
  key : string;
  items : 'a list;  (** admission order *)
  occupancy : int;  (** [List.length items] *)
}

val dispatch : ?force:bool -> 'a t -> 'a batch option
(** Remove and return the next batch, or [None] when no bin is ripe.
    Priority: a bin whose head has waited [>= window] completed batches,
    else a bin holding [>= max_batch] requests, else — under [force]
    (drain, idle poll) — any bin; ties break toward the oldest head
    request.  Completing the dispatch increments the batch counter that
    ages every other waiting request. *)

val pending : 'a t -> int
(** Admitted requests not yet dispatched. *)

val batches : 'a t -> int
(** Completed batches — the scheduler's clock. *)

val admitted : 'a t -> int
val rejected : 'a t -> int
