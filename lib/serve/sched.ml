(* Admission control + fingerprint-coalescing scheduler.

   Pure bookkeeping: the scheduler never touches a socket, a clock or a
   solver, so its decisions are a deterministic function of the event trace
   (the interleaving of [admit] and [dispatch] calls).  Time is measured in
   completed batches — the only monotone quantity the daemon already
   produces — which keeps every decision replayable: given the same trace,
   the same batches come out in the same order with the same composition
   (test_serve pins this at 1/2/4 worker domains). *)

module Metrics = Lbcc_obs.Metrics

type config = {
  max_queue : int;  (* admission bound: max requests pending at once *)
  max_batch : int;  (* coalescing cap per dispatched batch *)
  window : int;  (* max completed batches a request may wait un-dispatched *)
  coalesce : bool;  (* false: every batch carries exactly one request *)
}

let default_config = { max_queue = 256; max_batch = 16; window = 4; coalesce = true }

type 'a item = { payload : 'a; seq : int; admitted_at : int }

type 'a bin = { key : string; q : 'a item Queue.t }

type 'a t = {
  cfg : config;
  metrics : Metrics.t option;
  mutable bins : 'a bin list;  (* first-arrival order of current members *)
  mutable seq : int;
  mutable pending : int;
  mutable batches : int;  (* completed (= dispatched) batches *)
  mutable admitted : int;
  mutable rejected : int;
}

let create ?metrics cfg =
  if cfg.max_queue < 1 then invalid_arg "Sched.create: max_queue < 1";
  if cfg.max_batch < 1 then invalid_arg "Sched.create: max_batch < 1";
  if cfg.window < 0 then invalid_arg "Sched.create: negative window";
  {
    cfg;
    metrics;
    bins = [];
    seq = 0;
    pending = 0;
    batches = 0;
    admitted = 0;
    rejected = 0;
  }

let config t = t.cfg
let pending t = t.pending
let batches t = t.batches
let admitted t = t.admitted
let rejected t = t.rejected

let gauge_depth t =
  Metrics.set_gauge t.metrics "serve.queue_depth" (float_of_int t.pending)

let admit t ~key payload =
  if t.pending >= t.cfg.max_queue then begin
    t.rejected <- t.rejected + 1;
    Metrics.inc t.metrics "serve.rejected";
    false
  end
  else begin
    t.seq <- t.seq + 1;
    let item = { payload; seq = t.seq; admitted_at = t.batches } in
    let bin =
      match List.find_opt (fun b -> String.equal b.key key) t.bins with
      | Some b -> b
      | None ->
          let b = { key; q = Queue.create () } in
          t.bins <- t.bins @ [ b ];
          b
    in
    Queue.push item bin.q;
    t.pending <- t.pending + 1;
    t.admitted <- t.admitted + 1;
    Metrics.inc t.metrics "serve.admitted";
    gauge_depth t;
    true
  end

type 'a batch = { key : string; items : 'a list; occupancy : int }

(* Selection policy, in priority order (ties always break toward the bin
   whose head request is oldest, i.e. smallest admission sequence number —
   a total order, so the choice is unique):

   1. a bin whose head request has waited >= window completed batches
      (the latency guard: coalescing never starves a lonely fingerprint);
   2. a bin holding a full batch (>= max_batch requests);
   3. under [force] (drain, or an idle poll loop), any non-empty bin.

   Otherwise the scheduler holds its fire and lets requests accumulate. *)
let dispatch ?(force = false) t =
  if t.pending = 0 then None
  else begin
    let head b = (Queue.peek b.q).seq in
    let oldest candidates =
      List.fold_left
        (fun best b ->
          match best with
          | Some b' when head b' <= head b -> best
          | _ -> Some b)
        None candidates
    in
    let expired b = t.batches - (Queue.peek b.q).admitted_at >= t.cfg.window in
    let full b = Queue.length b.q >= t.cfg.max_batch in
    let choice =
      match oldest (List.filter expired t.bins) with
      | Some _ as c -> c
      | None -> (
          match oldest (List.filter full t.bins) with
          | Some _ as c -> c
          | None -> if force then oldest t.bins else None)
    in
    match choice with
    | None -> None
    | Some bin ->
        let take =
          if t.cfg.coalesce then min t.cfg.max_batch (Queue.length bin.q)
          else 1
        in
        let items = ref [] in
        for _ = 1 to take do
          let it = Queue.pop bin.q in
          Metrics.observe t.metrics "serve.queue_wait_batches"
            (float_of_int (t.batches - it.admitted_at));
          items := it.payload :: !items
        done;
        if Queue.is_empty bin.q then
          t.bins <-
            List.filter
              (fun (b : _ bin) -> not (String.equal b.key bin.key))
              t.bins;
        t.pending <- t.pending - take;
        t.batches <- t.batches + 1;
        Metrics.observe t.metrics "serve.batch_occupancy" (float_of_int take);
        gauge_depth t;
        Some { key = bin.key; items = List.rev !items; occupancy = take }
  end
