(* SARIF 2.1.0 emission.

   GitHub code scanning, VS Code's SARIF viewer and most CI dashboards
   speak SARIF; emitting it alongside the native lbcc-lint/1 JSON makes
   lint findings first-class CI artifacts (EXPERIMENTS.md).  Only the
   required subset of the schema is produced: one [run] with a tool
   driver listing every rule (so viewers can show the doc string without
   a rules database) and one [result] per diagnostic with a physical
   location.  SARIF regions are 1-based in both line and column;
   Lint_diag columns are 0-based, hence the [+ 1]. *)

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let level_of_severity = function
  | Lint_diag.Error -> "error"
  | Lint_diag.Warning -> "warning"

let rule_descriptor (r : Lint_rules.rule) =
  Lbcc_obs.Json.Obj
    [
      ("id", Lbcc_obs.Json.String r.Lint_rules.name);
      ( "shortDescription",
        Lbcc_obs.Json.Obj
          [ ("text", Lbcc_obs.Json.String r.Lint_rules.doc) ] );
      ( "defaultConfiguration",
        Lbcc_obs.Json.Obj
          [
            ( "level",
              Lbcc_obs.Json.String (level_of_severity r.Lint_rules.severity) );
          ] );
    ]

let result_of_diag (d : Lint_diag.t) =
  Lbcc_obs.Json.Obj
    [
      ("ruleId", Lbcc_obs.Json.String d.Lint_diag.rule);
      ("level", Lbcc_obs.Json.String (level_of_severity d.Lint_diag.severity));
      ( "message",
        Lbcc_obs.Json.Obj [ ("text", Lbcc_obs.Json.String d.Lint_diag.message) ]
      );
      ( "locations",
        Lbcc_obs.Json.Arr
          [
            Lbcc_obs.Json.Obj
              [
                ( "physicalLocation",
                  Lbcc_obs.Json.Obj
                    [
                      ( "artifactLocation",
                        Lbcc_obs.Json.Obj
                          [
                            ("uri", Lbcc_obs.Json.String d.Lint_diag.file);
                            ( "uriBaseId",
                              Lbcc_obs.Json.String "SRCROOT" );
                          ] );
                      ( "region",
                        Lbcc_obs.Json.Obj
                          [
                            ("startLine", Lbcc_obs.Json.Int d.Lint_diag.line);
                            ( "startColumn",
                              Lbcc_obs.Json.Int (d.Lint_diag.col + 1) );
                          ] );
                    ] );
              ];
          ] );
    ]

let to_json ?(tool_version = "2.0.0") diags =
  Lbcc_obs.Json.Obj
    [
      ("$schema", Lbcc_obs.Json.String schema_uri);
      ("version", Lbcc_obs.Json.String "2.1.0");
      ( "runs",
        Lbcc_obs.Json.Arr
          [
            Lbcc_obs.Json.Obj
              [
                ( "tool",
                  Lbcc_obs.Json.Obj
                    [
                      ( "driver",
                        Lbcc_obs.Json.Obj
                          [
                            ("name", Lbcc_obs.Json.String "lbcc-lint");
                            ( "version",
                              Lbcc_obs.Json.String tool_version );
                            ( "informationUri",
                              Lbcc_obs.Json.String
                                "https://example.invalid/lbcc" );
                            ( "rules",
                              Lbcc_obs.Json.Arr
                                (List.map rule_descriptor Lint_rules.rules) );
                          ] );
                    ] );
                ( "results",
                  Lbcc_obs.Json.Arr (List.map result_of_diag diags) );
              ];
          ] );
    ]

let to_string ?tool_version diags =
  Lbcc_obs.Json.to_string ~pretty:true (to_json ?tool_version diags) ^ "\n"
