(* Typed-tier front end: loads the Typedtree the compiler already produced.

   The untyped rules work on the parsetree, so a nondeterminism source
   laundered through [module R = Random] or a helper in another file is
   invisible to them.  This module feeds the typed passes
   (Lint_callgraph / Lint_typed / Lint_race) with resolved trees from two
   sources:

   - the [.cmt] files dune emits next to every compiled module
     ([load_cmts]; the normal [lbcc_lint --typed] path), and
   - in-memory typechecking of a source string against the stdlib alone
     ([type_source]; how the fixture corpus under
     [test/lint_fixtures/typed/] is exercised hermetically).

   It also owns the path vocabulary shared by the typed passes: every
   [Path.t] is rendered as a dotted string with dune's [Lib__Module]
   mangling undone and file-local module aliases ([module Pool =
   Lbcc_util.Pool]) substituted, so a rule can match [Pool.parallel_for]
   and [Lbcc_util.Pool.parallel_for] as the same thing. *)

type unit_info = {
  path : string;  (** root-relative source path, e.g. [lib/net/engine.ml] *)
  modname : string;  (** dotted module name, e.g. [Lbcc_net.Engine] *)
  structure : Typedtree.structure;
  stale : bool;  (** the source file is newer than its [.cmt] *)
}

(* ------------------------------------------------------------------ *)
(* Dotted names                                                        *)

(* Undo dune's wrapped-library mangling: [Lbcc_net__Engine] is the
   compilation unit for [Lbcc_net.Engine]. *)
let normalize_modname s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* File-local module aliases, keyed by the unique ident name (which
   carries the stamp, so shadowing cannot confuse two binders). *)
type aliases = (string, string) Hashtbl.t

let rec resolve (aliases : aliases) p =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt aliases (Ident.unique_name id) with
      | Some target -> target
      | None -> normalize_modname (Ident.name id))
  | Path.Pdot (p, s) -> resolve aliases p ^ "." ^ s
  | Path.Papply (p, _) -> resolve aliases p
  | Path.Pextra_ty (p, _) -> resolve aliases p

(* Strip [Stdlib.] so classifier tables list [Random.int], not both
   spellings. *)
let drop_stdlib s =
  let prefix = "Stdlib." in
  if
    String.length s > String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  then String.sub s (String.length prefix) (String.length s - String.length prefix)
  else s

(* Last [k] dot-separated components of a dotted name. *)
let suffix ~k s =
  let segs = String.split_on_char '.' s in
  let n = List.length segs in
  if n <= k then s
  else String.concat "." (List.filteri (fun i _ -> i >= n - k) segs)

let last_component s = suffix ~k:1 s

let has_dot_prefix ~prefix s =
  s = prefix
  || String.length s > String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
     && s.[String.length prefix] = '.'

(* Collect the alias table for a structure.  Aliases may chain
   ([module P = Pool] after [module Pool = Lbcc_util.Pool]), so targets
   are resolved through the table built so far; Tast_iterator visits in
   source order, which makes that sound. *)
let alias_map structure =
  let aliases : aliases = Hashtbl.create 16 in
  let rec module_target (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_ident (p, _) -> Some (resolve aliases p)
    | Typedtree.Tmod_constraint (me, _, _, _) -> module_target me
    | _ -> None
  in
  let open Tast_iterator in
  let structure_item sub (item : Typedtree.structure_item) =
    (match item.Typedtree.str_desc with
    | Typedtree.Tstr_module { mb_id = Some id; mb_expr; _ } -> (
        match module_target mb_expr with
        | Some target -> Hashtbl.replace aliases (Ident.unique_name id) target
        | None -> ())
    | _ -> ());
    default_iterator.structure_item sub item
  in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_letmodule (Some id, _, _, me, _) -> (
        match module_target me with
        | Some target -> Hashtbl.replace aliases (Ident.unique_name id) target
        | None -> ())
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with structure_item; expr } in
  it.structure it structure;
  aliases

(* ------------------------------------------------------------------ *)
(* Loading cmt files                                                   *)

let mtime path = try Some (Unix.stat path).Unix.st_mtime with Unix.Unix_error _ -> None

let rec walk_files dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.fold_left
        (fun acc name ->
          let p = Filename.concat dir name in
          if Sys.is_directory p then walk_files p acc
          else if Filename.check_suffix name ".cmt" then p :: acc
          else acc)
        acc entries
  | exception Sys_error _ -> acc

let in_lib path =
  String.length path > 4 && String.sub path 0 4 = "lib/"

(* Load every implementation cmt under [root]/_build/default/lib.  Returns
   [Error] with an actionable message when the build directory is absent or
   holds no lib cmts — the CLI turns that into the "run dune build first"
   exit. *)
let load_cmts ~root =
  let build = Filename.concat root "_build/default/lib" in
  if not (Sys.file_exists build && Sys.is_directory build) then
    Error
      (Printf.sprintf
         "no build artifacts under %s: run `dune build` first so the typed \
          pass can read the .cmt files" build)
  else
    let cmts = walk_files build [] in
    let units =
      List.filter_map
        (fun cmt_path ->
          match Cmt_format.read_cmt cmt_path with
          | exception _ -> None
          | cmt -> (
              match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
              | Cmt_format.Implementation structure, Some src
                when Filename.check_suffix src ".ml" && in_lib src ->
                  let stale =
                    match
                      (mtime (Filename.concat root src), mtime cmt_path)
                    with
                    | Some src_t, Some cmt_t -> src_t > cmt_t
                    | _ -> false
                  in
                  Some
                    {
                      path = src;
                      modname = normalize_modname cmt.Cmt_format.cmt_modname;
                      structure;
                      stale;
                    }
              | _ -> None))
        cmts
    in
    (* One unit per source path (there is only the byte cmt, but be safe),
       in stable path order so every downstream pass is deterministic. *)
    let seen = Hashtbl.create 64 in
    let units =
      List.filter
        (fun u ->
          if Hashtbl.mem seen u.path then false
          else begin
            Hashtbl.replace seen u.path ();
            true
          end)
        (List.sort (fun a b -> String.compare a.path b.path) units)
    in
    if units = [] then
      Error
        (Printf.sprintf
           "no .cmt files under %s: run `dune build` first so the typed pass \
            can read them" build)
    else Ok units

(* ------------------------------------------------------------------ *)
(* In-memory typing (fixtures)                                         *)

let typing_initialized = ref false

let init_typing () =
  if not !typing_initialized then begin
    typing_initialized := true;
    Compmisc.init_path ();
    (* Fixtures are linted, not compiled: compiler warnings about them are
       noise on the test output. *)
    ignore (Warnings.parse_options false "-a" : Warnings.alert option)
  end

(* Typecheck [source] against the stdlib alone.  Any parse or type error
   comes back as a diagnostic (rule [parse-error]) rather than an
   exception, mirroring Lint_driver.lint_source. *)
let type_source ~path ~modname source =
  init_typing ();
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Location.input_name := path;
  match
    let parsed = Parse.implementation lexbuf in
    let env = Compmisc.initial_env () in
    let structure, _, _, _, _ = Typemod.type_structure env parsed in
    structure
  with
  | structure -> Ok { path; modname; structure; stale = false }
  | exception exn ->
      let line, msg =
        match Location.error_of_exn exn with
        | Some (`Ok err) ->
            let loc = err.Location.main.Location.loc in
            ( loc.Location.loc_start.Lexing.pos_lnum,
              Format.asprintf "%t" err.Location.main.Location.txt )
        | _ -> (1, Printexc.to_string exn)
      in
      Error
        {
          Lint_diag.rule = "parse-error";
          severity = Lint_diag.Error;
          file = path;
          line;
          col = 0;
          message = Printf.sprintf "file does not typecheck: %s" msg;
        }
