(* Cross-module call graph over the typed tree.

   A node is a module-level value binding ([let f ... =] at the top of a
   unit or inside a nested [module M = struct ... end]); everything
   defined beneath it — local functions, closures, loops — contributes
   its references to that node.  Edges are resolved against the set of
   nodes built from ALL loaded units, so a call from [lib/dist/bfs.ml]
   into [lib/net/engine.ml] is a real edge, not a token match.

   Besides the edges, the walk records the per-node facts the typed
   passes consume:

   - every reference, as a normalized dotted name with the enclosing
     phase depth (is this occurrence lexically inside a
     [Rounds.with_phase] callback?) — the determinism-taint pass
     classifies seed references out of these, and the phase-flow pass
     classifies broadcast-primitive references;
   - the string-literal labels passed to [with_phase]-family calls, for
     taxonomy validation on resolved calls rather than source tokens.

   References through [f @@ x] / [x |> f] are unwrapped so
   [with_phase acc "p" @@ fun () -> ...] opens a phase scope exactly like
   the parenthesised form.  An application carrying a [~phases:...]
   argument marks that call edge as phased: the callee routes its charges
   through [with_phases] internally (the Solver.solve convention). *)

type ref_info = {
  name : string;  (** normalized dotted name, aliases resolved *)
  rloc : Location.t;
  phased : bool;  (** occurs under a with_phase scope / ~phases call *)
}

type node = {
  id : string;  (** dotted: [Lbcc_net.Engine.run] *)
  unit_path : string;
  def_loc : Location.t;
  mutable refs : ref_info list;  (** in source order *)
  mutable phase_labels : (string * Location.t) list;
  mutable calls : (node * Location.t * bool) list;  (** resolved, source order *)
}

type t = {
  nodes : (string, node) Hashtbl.t;  (** by id *)
  order : string list;  (** sorted ids, the deterministic iteration order *)
  units : Lint_tast.unit_info list;
}

let node t id = Hashtbl.find_opt t.nodes id

let sorted_nodes t = List.filter_map (fun id -> node t id) t.order

(* with_phase / with_phase_opt / with_phases, whatever module they live
   in: solver.ml defines a local [with_phases] wrapper and the rule must
   see through it. *)
let is_phase_opener name =
  match Lint_tast.last_component name with
  | "with_phase" | "with_phase_opt" | "with_phases" -> true
  | _ -> false

let is_pipe name =
  match name with "Stdlib.@@" | "Stdlib.|>" | "@@" | "|>" -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-unit fact collection                                            *)

(* The leftmost identifier of an expression, looking through function
   application: [head_name (f x y)] is [f]'s name. *)
let rec head_name aliases (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some (Lint_tast.resolve aliases p)
  | Typedtree.Texp_apply (f, _) -> head_name aliases f
  | _ -> None

let collect_unit ~(unit : Lint_tast.unit_info) ~add_node =
  let aliases = Lint_tast.alias_map unit.structure in
  let rec bind_nodes ~module_path (str : Typedtree.structure) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match Typedtree.pat_bound_idents vb.Typedtree.vb_pat with
                | [] -> ()
                | id :: _ ->
                    let node_id =
                      String.concat "." (module_path @ [ Ident.name id ])
                    in
                    let n =
                      {
                        id = node_id;
                        unit_path = unit.path;
                        def_loc = vb.Typedtree.vb_pat.Typedtree.pat_loc;
                        refs = [];
                        phase_labels = [];
                        calls = [];
                      }
                    in
                    add_node n;
                    collect_body ~node:n vb.Typedtree.vb_expr)
              vbs
        | Typedtree.Tstr_module
            { mb_id = Some id; mb_expr = { mod_desc = Tmod_structure sub; _ }; _ }
          ->
            bind_nodes ~module_path:(module_path @ [ Ident.name id ]) sub
        | Typedtree.Tstr_module
            {
              mb_id = Some id;
              mb_expr =
                {
                  mod_desc =
                    Tmod_constraint ({ mod_desc = Tmod_structure sub; _ }, _, _, _);
                  _;
                };
              _;
            } ->
            bind_nodes ~module_path:(module_path @ [ Ident.name id ]) sub
        | _ -> ())
      str.Typedtree.str_items
  and collect_body ~node expr =
    let phase_depth = ref 0 in
    let open Tast_iterator in
    let record name loc =
      node.refs <-
        { name; rloc = loc; phased = !phase_depth > 0 } :: node.refs
    in
    let record_phase_label (arg : Typedtree.expression) =
      match arg.Typedtree.exp_desc with
      | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) ->
          node.phase_labels <- (s, arg.Typedtree.exp_loc) :: node.phase_labels
      | _ -> ()
    in
    let rec expr_iter sub (e : Typedtree.expression) =
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, _) ->
          record (Lint_tast.resolve aliases p) e.Typedtree.exp_loc
      | Typedtree.Texp_apply (f, args) ->
          let fname = head_name aliases f in
          let opens_phase =
            match fname with
            | Some n when is_phase_opener n -> true
            | Some n when is_pipe n ->
                (* with_phase acc "p" @@ thunk  /  thunk |> with_phase acc "p" *)
                List.exists
                  (fun (_, arg) ->
                    match arg with
                    | Some a -> (
                        match head_name aliases a with
                        | Some h -> is_phase_opener h
                        | None -> false)
                    | None -> false)
                  args
            | _ -> false
          in
          (* A ~phases:[...] argument means the callee scopes its own
             charges; the call edge counts as phased. *)
          let callee_phased =
            List.exists
              (fun (lbl, arg) ->
                match (lbl, arg) with
                | (Asttypes.Labelled "phases" | Asttypes.Optional "phases"),
                  Some _ ->
                    true
                | _ -> false)
              args
          in
          if opens_phase then begin
            (* The label literal is a direct argument in the plain form,
               or inside the partial application on one side of @@/|>. *)
            let label_args (e : Typedtree.expression) =
              match e.Typedtree.exp_desc with
              | Typedtree.Texp_apply (g, gargs) -> (
                  match head_name aliases g with
                  | Some h when is_phase_opener h ->
                      List.iter
                        (fun (_, arg) -> Option.iter record_phase_label arg)
                        gargs
                  | _ -> ())
              | _ -> ()
            in
            List.iter
              (fun (_, arg) ->
                Option.iter
                  (fun a ->
                    record_phase_label a;
                    label_args a)
                  arg)
              args;
            expr_iter sub f;
            incr phase_depth;
            List.iter (fun (_, arg) -> Option.iter (expr_iter sub) arg) args;
            decr phase_depth
          end
          else if callee_phased then begin
            incr phase_depth;
            expr_iter sub f;
            decr phase_depth;
            List.iter (fun (_, arg) -> Option.iter (expr_iter sub) arg) args
          end
          else default_iterator.expr sub e
      | _ -> default_iterator.expr sub e
    in
    let it = { default_iterator with expr = expr_iter } in
    it.expr it expr;
    node.refs <- List.rev node.refs;
    node.phase_labels <- List.rev node.phase_labels
  in
  bind_nodes ~module_path:(String.split_on_char '.' unit.modname) unit.structure

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)

(* A reference resolves to a node by (in order): exact dotted name; the
   name qualified by the referring unit's module (module-local [helper]);
   a unique dotted suffix of length >= 2 ([Engine.run] from a fixture's
   local [Engine] module).  Single-component suffixes are too ambiguous
   to use. *)
let build units =
  let nodes = Hashtbl.create 256 in
  let order = ref [] in
  let add_node n =
    if not (Hashtbl.mem nodes n.id) then begin
      Hashtbl.replace nodes n.id n;
      order := n.id :: !order
    end
  in
  List.iter (fun unit -> collect_unit ~unit ~add_node) units;
  let order = List.sort String.compare !order in
  (* Suffix index: every >=2-component dotted suffix of every node id. *)
  let by_suffix = Hashtbl.create 256 in
  List.iter
    (fun id ->
      let segs = String.split_on_char '.' id in
      let n = List.length segs in
      let rec suffixes i =
        if n - i >= 2 then begin
          let s =
            String.concat "." (List.filteri (fun j _ -> j >= i) segs)
          in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_suffix s) in
          Hashtbl.replace by_suffix s (prev @ [ id ]);
          suffixes (i + 1)
        end
      in
      suffixes 0)
    order;
  let graph = { nodes; order; units } in
  (* Resolve edges. *)
  List.iter
    (fun id ->
      match Hashtbl.find_opt nodes id with
      | None -> ()
      | Some n ->
          let modname =
            (* The unit/module prefix of this node's id. *)
            match String.rindex_opt n.id '.' with
            | Some i -> String.sub n.id 0 i
            | None -> n.id
          in
          n.calls <-
            List.filter_map
              (fun r ->
                let candidates =
                  match Hashtbl.find_opt nodes r.name with
                  | Some m -> [ m ]
                  | None -> (
                      match
                        Hashtbl.find_opt nodes (modname ^ "." ^ r.name)
                      with
                      | Some m -> [ m ]
                      | None ->
                          if String.contains r.name '.' then
                            List.filter_map
                              (fun cid -> Hashtbl.find_opt nodes cid)
                              (Option.value ~default:[]
                                 (Hashtbl.find_opt by_suffix r.name))
                          else [])
                in
                match candidates with
                | [] -> None
                | [ m ] when m.id = n.id -> None (* self loop *)
                | ms ->
                    Some
                      (List.filter_map
                         (fun m ->
                           if m.id = n.id then None
                           else Some (m, r.rloc, r.phased))
                         ms))
              n.refs
            |> List.concat)
    order;
  graph

(* Shortest call chain from any node satisfying [root] to [target], as a
   list of node ids (root first).  BFS over the sorted node order keeps
   the witness deterministic.  [use_edge] filters edges (the phase pass
   walks only unphased edges); [stop] marks sink nodes whose outgoing
   edges are not expanded (the phase pass stops at broadcast primitives:
   their internals implement the accounting, they do not consume it). *)
let witness ?(use_edge = fun _ -> true) ?(stop = fun _ -> false) t ~roots
    ~target =
  let parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun n ->
      if roots n && not (Hashtbl.mem parent n.id) then begin
        Hashtbl.replace parent n.id None;
        Queue.add n queue
      end)
    (sorted_nodes t);
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    if n.id = target then found := Some n
    else if not (stop n) then
      List.iter
        (fun (m, _, phased) ->
          if use_edge phased && not (Hashtbl.mem parent m.id) then begin
            Hashtbl.replace parent m.id (Some n.id);
            Queue.add m queue
          end)
        n.calls
  done;
  match !found with
  | None -> None
  | Some _ ->
      let rec unwind id acc =
        match Hashtbl.find_opt parent id with
        | Some (Some p) -> unwind p (id :: acc)
        | _ -> id :: acc
      in
      Some (unwind target [])

(* All nodes reachable from [roots] (inclusive), optionally restricted to
   unphased edges and truncated at [stop] sinks. *)
let reachable ?(use_edge = fun _ -> true) ?(stop = fun _ -> false) t ~roots =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun n ->
      if roots n && not (Hashtbl.mem seen n.id) then begin
        Hashtbl.replace seen n.id ();
        Queue.add n queue
      end)
    (sorted_nodes t);
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    if stop n then ()
    else
    List.iter
      (fun (m, _, phased) ->
        if use_edge phased && not (Hashtbl.mem seen m.id) then begin
          Hashtbl.replace seen m.id ();
          Queue.add m queue
        end)
      n.calls
  done;
  seen
