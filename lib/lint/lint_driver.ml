(* Driver: discover .ml files, parse them with compiler-libs, run the rule
   pass, and render the diagnostics as text or as machine-readable JSON
   (lbcc-lint/1) for CI to diff and archive. *)

type result = {
  root : string;
  files : string list; (* root-relative, sorted *)
  diags : Lint_diag.t list; (* sorted by file/position/rule *)
}

let errors r =
  List.length
    (List.filter (fun d -> d.Lint_diag.severity = Lint_diag.Error) r.diags)

let warnings r =
  List.length
    (List.filter (fun d -> d.Lint_diag.severity = Lint_diag.Warning) r.diags)

(* ------------------------------------------------------------------ *)
(* Discovery                                                           *)

let is_ml path = Filename.check_suffix path ".ml"

(* _build, _opam, .git and friends are never part of the lint surface. *)
let skip_dir name =
  String.length name > 0 && (name.[0] = '_' || name.[0] = '.')

let join rel name = if rel = "" then name else rel ^ "/" ^ name

let rec walk ~root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  if Sys.is_directory abs then
    Array.fold_left
      (fun acc name ->
        if skip_dir name then acc else walk ~root (join rel name) acc)
      acc
      (Sys.readdir abs)
  else if is_ml rel then rel :: acc
  else acc

let has_dot_slash p =
  String.length p >= 2 && p.[0] = '.' && (p.[1] = '/' || p.[1] = '\\')

let discover ~root paths =
  let files =
    List.fold_left
      (fun acc p ->
        let p =
          (* Normalise "./lib" and trailing slashes so rule scoping sees
             canonical "lib/..." paths. *)
          let p = if has_dot_slash p then String.sub p 2 (String.length p - 2) else p in
          if p <> "/" && Filename.check_suffix p "/" then
            String.sub p 0 (String.length p - 1)
          else p
        in
        if not (Sys.file_exists (Filename.concat root p)) then
          raise (Sys_error (Printf.sprintf "%s: no such file or directory" p))
        else walk ~root p acc)
      [] paths
  in
  List.sort_uniq String.compare files

(* ------------------------------------------------------------------ *)
(* Per-file pass                                                       *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_error_diag ~path exn =
  let line, msg =
    match Location.error_of_exn exn with
    | Some (`Ok err) ->
        let loc = err.Location.main.Location.loc in
        ( loc.Location.loc_start.Lexing.pos_lnum,
          Format.asprintf "%t" err.Location.main.Location.txt )
    | _ -> (1, Printexc.to_string exn)
  in
  {
    Lint_diag.rule = "parse-error";
    severity = Lint_diag.Error;
    file = path;
    line;
    col = 0;
    message = Printf.sprintf "file does not parse: %s" msg;
  }

(* [path] is the root-relative path: it selects which rules apply and is
   what appears in diagnostics.  [source] is the file contents, supplied by
   the caller so tests can lint fixtures under a pretended path. *)
let lint_source ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Location.input_name := path;
  match Parse.implementation lexbuf with
  | structure ->
      let suppress = Lint_suppress.scan source in
      Lint_rules.check ~path ~suppress structure
  | exception exn -> [ parse_error_diag ~path exn ]

let run ~root paths =
  let files = discover ~root paths in
  let diags =
    List.concat_map
      (fun rel -> lint_source ~path:rel (read_file (Filename.concat root rel)))
      files
  in
  { root; files; diags = List.sort Lint_diag.compare_diag diags }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let render_text ppf r =
  List.iter
    (fun d -> Format.fprintf ppf "%s@." (Lint_diag.to_string d))
    r.diags;
  Format.fprintf ppf "lbcc-lint — %d file%s scanned, %d error%s, %d warning%s@."
    (List.length r.files)
    (if List.length r.files = 1 then "" else "s")
    (errors r)
    (if errors r = 1 then "" else "s")
    (warnings r)
    (if warnings r = 1 then "" else "s")

let to_json r =
  let open Lbcc_obs.Json in
  Obj
    [
      ("schema", String "lbcc-lint/1");
      ("root", String r.root);
      ("files_scanned", Int (List.length r.files));
      ("errors", Int (errors r));
      ("warnings", Int (warnings r));
      ("rules",
       Arr
         (List.map
            (fun (rule : Lint_rules.rule) ->
              Obj
                [
                  ("name", String rule.Lint_rules.name);
                  ( "severity",
                    String (Lint_diag.severity_to_string rule.Lint_rules.severity) );
                ])
            Lint_rules.rules));
      ("diagnostics", Arr (List.map Lint_diag.to_json r.diags));
    ]
