(* Driver: discover .ml files, parse them with compiler-libs, run the rule
   pass, and render the diagnostics as text or as machine-readable JSON
   (lbcc-lint/1) for CI to diff and archive. *)

type result = {
  root : string;
  files : string list; (* root-relative, sorted *)
  diags : Lint_diag.t list; (* sorted by file/position/rule *)
}

let errors r =
  List.length
    (List.filter (fun d -> d.Lint_diag.severity = Lint_diag.Error) r.diags)

let warnings r =
  List.length
    (List.filter (fun d -> d.Lint_diag.severity = Lint_diag.Warning) r.diags)

(* ------------------------------------------------------------------ *)
(* Discovery                                                           *)

let is_ml path = Filename.check_suffix path ".ml"

(* _build, _opam, .git and friends are never part of the lint surface. *)
let skip_dir name =
  String.length name > 0 && (name.[0] = '_' || name.[0] = '.')

let join rel name = if rel = "" then name else rel ^ "/" ^ name

let rec walk ~root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  if Sys.is_directory abs then
    Array.fold_left
      (fun acc name ->
        if skip_dir name then acc else walk ~root (join rel name) acc)
      acc
      (Sys.readdir abs)
  else if is_ml rel then rel :: acc
  else acc

(* Canonicalize a user-supplied path to its segment form: split on '/',
   drop empty and "." segments, rejoin.  "lib//net", "lib/./net/" and
   "./lib/net" all become "lib/net", so overlapping or differently-spelt
   path arguments cannot smuggle the same file into the walk under two
   names (which would double-report every diagnostic in it). *)
let canonical p =
  let segs =
    List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' p)
  in
  match segs with [] -> "" | segs -> String.concat "/" segs

let discover ~root paths =
  let files =
    List.fold_left
      (fun acc p ->
        let p = canonical p in
        if not (Sys.file_exists (Filename.concat root p)) then
          raise (Sys_error (Printf.sprintf "%s: no such file or directory" p))
        else walk ~root p acc)
      [] paths
  in
  List.sort_uniq String.compare files

(* ------------------------------------------------------------------ *)
(* Per-file pass                                                       *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_error_diag ~path exn =
  let line, msg =
    match Location.error_of_exn exn with
    | Some (`Ok err) ->
        let loc = err.Location.main.Location.loc in
        ( loc.Location.loc_start.Lexing.pos_lnum,
          Format.asprintf "%t" err.Location.main.Location.txt )
    | _ -> (1, Printexc.to_string exn)
  in
  {
    Lint_diag.rule = "parse-error";
    severity = Lint_diag.Error;
    file = path;
    line;
    col = 0;
    message = Printf.sprintf "file does not parse: %s" msg;
  }

(* [path] is the root-relative path: it selects which rules apply and is
   what appears in diagnostics.  [source] is the file contents, supplied by
   the caller so tests can lint fixtures under a pretended path. *)
let lint_source ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Location.input_name := path;
  match Parse.implementation lexbuf with
  | structure ->
      let suppress = Lint_suppress.scan source in
      Lint_rules.check ~path ~suppress structure
  | exception exn -> [ parse_error_diag ~path exn ]

let run ~root paths =
  let files = discover ~root paths in
  let diags =
    List.concat_map
      (fun rel -> lint_source ~path:rel (read_file (Filename.concat root rel)))
      files
  in
  { root; files; diags = List.sort Lint_diag.compare_diag diags }

(* ------------------------------------------------------------------ *)
(* Typed tier                                                          *)

exception Typed_unavailable of string
(* No usable cmt artifacts; the CLI renders the message and exits 2. *)

(* [run_typed] is a superset of [run]: the untyped pass stays (it is the
   fast default and covers fixture-only rules), and the three typed
   passes are layered on top from the cmt files under [root]/_build.
   The call graph is built over ALL lib units regardless of [paths] —
   interprocedural facts need the whole program — but only diagnostics
   landing in the requested file set are reported, and the typed rules'
   waivers are applied from the real sources. *)
let run_typed ~root paths =
  let untyped = run ~root paths in
  match Lint_tast.load_cmts ~root with
  | Error msg -> raise (Typed_unavailable msg)
  | Ok units ->
      let graph = Lint_callgraph.build units in
      let suppress_cache = Hashtbl.create 64 in
      let suppress_for path =
        match Hashtbl.find_opt suppress_cache path with
        | Some s -> s
        | None ->
            let s =
              match read_file (Filename.concat root path) with
              | source -> Lint_suppress.scan source
              | exception Sys_error _ -> Lint_suppress.scan ""
            in
            Hashtbl.replace suppress_cache path s;
            s
      in
      let typed = Lint_typed.analyze graph ~suppress_for in
      let stale =
        List.filter_map
          (fun (u : Lint_tast.unit_info) ->
            if not u.stale then None
            else
              Some
                {
                  Lint_diag.rule = "typ-stale-cmt";
                  severity = Lint_diag.Warning;
                  file = u.path;
                  line = 1;
                  col = 0;
                  message =
                    "source is newer than its .cmt; typed findings may be \
                     stale — re-run `dune build`";
                })
          units
      in
      let in_scope = Hashtbl.create 64 in
      List.iter (fun f -> Hashtbl.replace in_scope f ()) untyped.files;
      let keep (d : Lint_diag.t) =
        Hashtbl.mem in_scope d.Lint_diag.file
        && not
             (Lint_suppress.active (suppress_for d.Lint_diag.file)
                ~rule:d.Lint_diag.rule ~line:d.Lint_diag.line)
      in
      let typed = List.filter keep (typed @ stale) in
      {
        untyped with
        diags = List.sort Lint_diag.compare_diag (untyped.diags @ typed);
      }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let render_text ppf r =
  List.iter
    (fun d -> Format.fprintf ppf "%s@." (Lint_diag.to_string d))
    r.diags;
  Format.fprintf ppf "lbcc-lint — %d file%s scanned, %d error%s, %d warning%s@."
    (List.length r.files)
    (if List.length r.files = 1 then "" else "s")
    (errors r)
    (if errors r = 1 then "" else "s")
    (warnings r)
    (if warnings r = 1 then "" else "s")

let to_json r =
  let open Lbcc_obs.Json in
  Obj
    [
      ("schema", String "lbcc-lint/1");
      ("root", String r.root);
      ("files_scanned", Int (List.length r.files));
      ("errors", Int (errors r));
      ("warnings", Int (warnings r));
      ("rules",
       Arr
         (List.map
            (fun (rule : Lint_rules.rule) ->
              Obj
                [
                  ("name", String rule.Lint_rules.name);
                  ( "severity",
                    String (Lint_diag.severity_to_string rule.Lint_rules.severity) );
                ])
            Lint_rules.rules));
      ("diagnostics", Arr (List.map Lint_diag.to_json r.diags));
    ]
