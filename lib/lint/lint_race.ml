(* Static race detector for parallel regions.

   The worker pool's contract (lib/util/pool.mli) is that a chunk body
   passed to [Pool.parallel_for] / [Pool.parallel_reduce ~map] only
   writes state that is disjoint per index — that is what makes every
   pool size compute bit-identical results.  A closure that writes a
   captured ref, a captured mutable record field, or a captured
   array/bytes cell at an index NOT derived from the chunk's own
   induction variables breaks that contract silently: the program still
   typechecks, still passes single-domain tests, and only diverges (or
   corrupts) under a multi-domain pool.

   For every closure reaching a parallel primitive — a literal [fun lo
   hi -> ...] or a let-bound body resolved within the same unit
   ([Pool.parallel_for pool ~chunk ~n body]) — the pass computes the set
   of idents bound INSIDE the closure (parameters, let-bindings, for
   indices, nested closures' binders) and flags:

   - [r := v] / [incr r] / [decr r] where [r] is captured;
   - [e.f <- v] where the mutable-field target's root ident is captured;
   - [a.(i) <- v] / [Bytes.set] / [unsafe_] variants where the
     array/bytes root is captured and [i] mentions no closure-local
     ident (a chunk-independent cell: the classic lost-update shape);
   - [Atomic.set]/[exchange]/[fetch_and_add]/[compare_and_set] on a
     captured atomic (atomics do not tear, but their interleaving is
     schedule-dependent, which already breaks replayability);
   - growth/removal on captured stdlib containers (Hashtbl.add/replace/
     remove/reset/clear, Buffer.add_*/clear/reset, Queue and Stack
     mutation).

   Writes hidden behind a function call ([gather buf v] mutating [buf])
   are out of reach of a per-closure analysis; DESIGN.md §13 records
   that boundary.  Chunk-local state — anything bound inside the closure
   — is exempt by construction, so per-chunk scratch and accumulator
   refs lint clean. *)

let parallel_suffixes = [ "Pool.parallel_for"; "Pool.parallel_reduce" ]

let indexed_writers =
  [
    "Array.set"; "Array.unsafe_set"; "Bytes.set"; "Bytes.unsafe_set";
    "Float.Array.set"; "Float.Array.unsafe_set"; "Bigarray.Array1.set";
  ]

let atomic_writers =
  [
    "Atomic.set"; "Atomic.exchange"; "Atomic.fetch_and_add"; "Atomic.incr";
    "Atomic.decr"; "Atomic.compare_and_set";
  ]

let container_mutators =
  [
    "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Buffer.add_string"; "Buffer.add_char";
    "Buffer.add_bytes"; "Buffer.add_subbytes"; "Buffer.add_substring";
    "Buffer.clear"; "Buffer.reset"; "Queue.add"; "Queue.push"; "Queue.pop";
    "Queue.take"; "Queue.clear"; "Stack.push"; "Stack.pop"; "Stack.clear";
  ]

type finding = { floc : Location.t; message : string }

(* ------------------------------------------------------------------ *)
(* Expression helpers                                                  *)

(* The root ident of a write target, looking through field projections
   ([t.buf]), derefs ([!r] — an apply of Stdlib.!) and type constraints:
   the capture question is about the binder the data flows from. *)
let rec root_ident (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> Some id
  | Typedtree.Texp_ident _ -> None
  | Typedtree.Texp_field (e, _, _) -> root_ident e
  | Typedtree.Texp_apply (f, [ (Asttypes.Nolabel, Some arg) ]) -> (
      match f.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, _)
        when Lint_tast.last_component (Path.name p) = "!" ->
          root_ident arg
      | _ -> None)
  | _ -> None

let positional args =
  List.filter_map
    (fun (lbl, arg) ->
      match (lbl, arg) with Asttypes.Nolabel, Some e -> Some e | _ -> None)
    args

(* Every ident bound anywhere inside [e]: function parameters, patterns
   of let/match/cases, for-loop indices, let-module bodies... *)
let bound_idents_in (e : Typedtree.expression) =
  let acc = Hashtbl.create 32 in
  let add id = Hashtbl.replace acc (Ident.unique_name id) () in
  let open Tast_iterator in
  let pat :
      'k. Tast_iterator.iterator -> 'k Typedtree.general_pattern -> unit =
   fun sub p ->
    List.iter add (Typedtree.pat_bound_idents p);
    default_iterator.pat sub p
  in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_function { param; _ } -> add param
    | Typedtree.Texp_for (id, _, _, _, _, _) -> add id
    | Typedtree.Texp_letmodule (Some id, _, _, _, _) -> add id
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr; pat } in
  it.expr it e;
  acc

let mentions_local locals (e : Typedtree.expression) =
  let found = ref false in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (Path.Pident id, _, _) ->
        if Hashtbl.mem locals (Ident.unique_name id) then found := true
    | _ -> ());
    if not !found then default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* Closure body analysis                                               *)

let target_name (e : Typedtree.expression) =
  match root_ident e with Some id -> Ident.name id | None -> "<expression>"

let check_closure ~aliases ~primitive (closure : Typedtree.expression) =
  let locals = bound_idents_in closure in
  let captured e =
    match root_ident e with
    | Some id -> not (Hashtbl.mem locals (Ident.unique_name id))
    | None -> false
  in
  let findings = ref [] in
  let flag floc fmt =
    Printf.ksprintf
      (fun message -> findings := { floc; message } :: !findings)
      fmt
  in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_setfield (recv, _, lbl, _) ->
        if captured recv then
          flag e.Typedtree.exp_loc
            "write to mutable field %s.%s captured by a %s chunk body: \
             chunk bodies may only write state disjoint per index \
             (pool.mli contract)"
            (target_name recv) lbl.Types.lbl_name primitive
    | Typedtree.Texp_apply (f, args) -> (
        match f.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            let name = Lint_tast.drop_stdlib (Lint_tast.resolve aliases p) in
            let two = Lint_tast.suffix ~k:2 name in
            let three = Lint_tast.suffix ~k:3 name in
            match (Lint_tast.last_component name, positional args) with
            | (":=" | "incr" | "decr"), r :: _ when captured r ->
                flag e.Typedtree.exp_loc
                  "captured ref %s assigned inside a %s chunk body: every \
                   lane reads and writes the same cell, so the result \
                   depends on the chunk schedule"
                  (target_name r) primitive
            | _, recv :: idx :: _
              when (List.mem two indexed_writers || List.mem three indexed_writers)
                   && captured recv
                   && not (mentions_local locals idx) ->
                flag e.Typedtree.exp_loc
                  "captured %s written at index independent of the chunk \
                   (%s on %s): distinct lanes hit the same cell; index by \
                   the chunk's own induction variable or keep the buffer \
                   chunk-local"
                  (Lint_tast.last_component two) two (target_name recv)
            | _, recv :: _ when List.mem two atomic_writers && captured recv ->
                flag e.Typedtree.exp_loc
                  "%s on captured %s inside a %s chunk body: atomics do \
                   not tear but their interleaving is schedule-dependent, \
                   which breaks bit-identical replay across pool sizes"
                  two (target_name recv) primitive
            | _, recv :: _ when List.mem two container_mutators && captured recv
              ->
                flag e.Typedtree.exp_loc
                  "%s mutates captured container %s inside a %s chunk \
                   body: container mutation is neither atomic nor \
                   index-disjoint"
                  two (target_name recv) primitive
            | _ -> ())
        | _ -> ())
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.expr it closure;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Finding the parallel regions                                        *)

(* Let-bound closures within the unit, so [let body = fun lo hi -> ... in
   Pool.parallel_for pool ~chunk ~n body] is analyzed like a literal
   closure.  Idents are unique (stamped), so one flat table is sound. *)
let local_closures (structure : Typedtree.structure) =
  let tbl = Hashtbl.create 32 in
  let open Tast_iterator in
  let value_binding sub (vb : Typedtree.value_binding) =
    (match
       (vb.Typedtree.vb_pat.Typedtree.pat_desc, vb.Typedtree.vb_expr.Typedtree.exp_desc)
     with
    | Typedtree.Tpat_var (id, _), Typedtree.Texp_function _ ->
        Hashtbl.replace tbl (Ident.unique_name id) vb.Typedtree.vb_expr
    | _ -> ());
    default_iterator.value_binding sub vb
  in
  let it = { default_iterator with value_binding } in
  it.structure it structure;
  tbl

let closure_arg ~closures (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function _ -> Some e
  | Typedtree.Texp_ident (Path.Pident id, _, _) ->
      Hashtbl.find_opt closures (Ident.unique_name id)
  | _ -> None

let check_unit (unit : Lint_tast.unit_info) =
  let aliases = Lint_tast.alias_map unit.structure in
  let closures = local_closures unit.structure in
  let findings = ref [] in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_apply (f, args) -> (
        match f.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            let name = Lint_tast.resolve aliases p in
            let two = Lint_tast.suffix ~k:2 name in
            if List.mem two parallel_suffixes then
              let body =
                if Lint_tast.last_component two = "parallel_for" then
                  (* last positional argument *)
                  match List.rev (positional args) with
                  | b :: _ -> Some b
                  | [] -> None
                else
                  (* parallel_reduce: the ~map chunk function *)
                  List.fold_left
                    (fun acc (lbl, arg) ->
                      match (lbl, arg) with
                      | Asttypes.Labelled "map", Some b -> Some b
                      | _ -> acc)
                    None args
              in
              match Option.map (closure_arg ~closures) body with
              | Some (Some closure) ->
                  findings :=
                    !findings @ check_closure ~aliases ~primitive:two closure
              | _ -> ())
        | _ -> ())
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.structure it unit.structure;
  !findings
