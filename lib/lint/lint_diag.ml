(* Diagnostics emitted by the lbcc-lint rules.  A diagnostic is anchored to
   a file:line:col triple so editors and CI logs can jump to the offence;
   the rule name doubles as the suppression key accepted by the waiver
   comments that Lint_suppress scans for. *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

(* Stable report order: file, then position, then rule name — so that two
   runs over the same tree produce byte-identical output and CI can diff
   lint.json across commits. *)
let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Stdlib.Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Stdlib.Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" d.file d.line d.col
    (severity_to_string d.severity)
    d.rule d.message

let to_json d =
  Lbcc_obs.Json.Obj
    [
      ("rule", Lbcc_obs.Json.String d.rule);
      ("severity", Lbcc_obs.Json.String (severity_to_string d.severity));
      ("file", Lbcc_obs.Json.String d.file);
      ("line", Lbcc_obs.Json.Int d.line);
      ("col", Lbcc_obs.Json.Int d.col);
      ("message", Lbcc_obs.Json.String d.message);
    ]
