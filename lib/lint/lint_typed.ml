(* The typed analysis passes: interprocedural determinism taint and the
   phase-accounting flow check, both over the Lint_callgraph, plus the
   shared configuration that names the sanctioned doors, the public
   entry surfaces and the broadcast primitives as resolved module paths.

   The untyped tier already polices the same invariants syntactically;
   what the typed tier adds is resolution and flow:

   - a [Random.int] behind [module R = Random], or behind a helper in
     another file, is the same taint as a literal one ([typ-det-taint]
     reports the seed with the call chain from a public entry point);
   - a [Rounds.charge] that executes three calls below a public API
     function is only sound if some frame on that path opened a
     [with_phase] scope ([typ-phase-flow] walks the unphased-edge
     closure of the entry set and reports broadcast primitives it can
     still reach);
   - a closure handed to the worker pool is checked against the
     disjoint-writes contract ([typ-par-race], implemented in
     Lint_race, driven from here).

   A determinism seed that carries a valid UNTYPED waiver (e.g. a
   [det-unordered-hashtbl] waiver arguing order-insensitivity) is
   treated as sanctioned: the waiver kills the taint at its source, so
   one reviewed justification does not have to be repeated at every
   caller. *)

type config = {
  doors : string list;
      (** dotted module prefixes whose internals are sanctioned
          containment: taint neither originates in nor propagates
          through them *)
  taint_entries : string list;
      (** dotted prefixes of the public protocol/solver surface: a seed
          only fires if some function here can reach it *)
  phase_entries : string list;
      (** dotted prefixes of the service front doors that must establish
          phase scopes before broadcasting *)
  primitives : string list;
      (** dotted 2-component suffixes of the broadcast primitives *)
}

let default_config =
  {
    doors = [ "Lbcc_util.Tbl"; "Lbcc_obs.Clock"; "Lbcc_util.Pool" ];
    taint_entries =
      [
        "Lbcc_net"; "Lbcc_dist"; "Lbcc_laplacian"; "Lbcc_sparsifier";
        "Lbcc_spanner"; "Lbcc_flow"; "Lbcc_lp"; "Lbcc_core"; "Lbcc_service";
        "Lbcc_serve"; "Lbcc_graph"; "Lbcc_linalg";
      ];
    phase_entries = [ "Lbcc_core"; "Lbcc_service"; "Lbcc_dist"; "Lbcc_serve" ];
    primitives =
      [
        "Engine.run"; "Engine.run_unicast"; "Engine.run_soa"; "Reliable.run";
        "Byzantine.run"; "Gossip.spread"; "Rounds.charge";
        "Rounds.charge_broadcast"; "Rounds.charge_vector";
      ];
  }

let is_door config id =
  List.exists (fun d -> Lint_tast.has_dot_prefix ~prefix:d id) config.doors

let mk_diag ~rule ~file ~(loc : Location.t) message =
  let severity =
    match Lint_rules.find_rule rule with
    | Some r -> r.Lint_rules.severity
    | None -> Lint_diag.Error
  in
  let pos = loc.Location.loc_start in
  {
    Lint_diag.rule;
    severity;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message;
  }

let chain_string ids = String.concat " -> " ids

(* ------------------------------------------------------------------ *)
(* Determinism taint                                                   *)

type seed_kind = Sk_random | Sk_hash_order | Sk_wall_clock | Sk_domain

(* The untyped rule whose waiver sanctions this seed kind. *)
let lexical_rule_of_kind = function
  | Sk_random -> "det-unseeded-random"
  | Sk_hash_order -> "det-unordered-hashtbl"
  | Sk_wall_clock -> "det-wall-clock"
  | Sk_domain -> "det-raw-domain"

let kind_doc = function
  | Sk_random -> "ambient Stdlib Random"
  | Sk_hash_order -> "hash-order enumeration"
  | Sk_wall_clock -> "wall-clock read"
  | Sk_domain -> "raw domain spawn"

(* Classify a resolved reference as a determinism seed.  Scopes mirror
   the untyped rules: lib/util may seed its own Prng, lib/obs owns the
   clock, pool.ml owns domains. *)
let classify_seed ~unit_path name =
  let n = Lint_tast.drop_stdlib name in
  let in_dir d =
    Lint_tast.has_dot_prefix ~prefix:d (String.concat "." (String.split_on_char '/' unit_path))
    (* paths are not dotted; do a plain prefix test instead *)
  in
  ignore (in_dir : string -> bool);
  let under p =
    String.length unit_path >= String.length p
    && String.sub unit_path 0 (String.length p) = p
  in
  let two = Lint_tast.suffix ~k:2 n in
  if Lint_tast.has_dot_prefix ~prefix:"Random" n && not (under "lib/util") then
    Some (Sk_random, n)
  else
    match two with
    | "Hashtbl.iter" | "Hashtbl.fold"
      when under "lib/"
           && (not (under "lib/util"))
           && (not (under "lib/obs"))
           && not (under "lib/lint") ->
        Some (Sk_hash_order, n)
    | "Sys.time" | "Unix.gettimeofday" | "Unix.time" | "Unix.gmtime"
    | "Unix.localtime"
      when not (under "lib/obs") ->
        Some (Sk_wall_clock, n)
    | "Domain.spawn" when unit_path <> "lib/util/pool.ml" ->
        Some (Sk_domain, n)
    | _ -> None

(* [suppress_for path] returns the waiver table scanned from the real
   source of [path] (never raises: a missing file yields an empty
   table). *)
let taint config (graph : Lint_callgraph.t) ~suppress_for =
  let open Lint_callgraph in
  (* Seeds per node, with sanctioned ones (waived at source) dropped. *)
  let node_seeds n =
    if is_door config n.id then []
    else
      List.filter_map
        (fun r ->
          match classify_seed ~unit_path:n.unit_path r.name with
          | None -> None
          | Some (kind, name) ->
              let line = r.rloc.Location.loc_start.Lexing.pos_lnum in
              let sup = suppress_for n.unit_path in
              if
                Lint_suppress.active sup ~rule:(lexical_rule_of_kind kind) ~line
                || Lint_suppress.active sup ~rule:"typ-det-taint" ~line
              then None
              else Some (kind, name, r.rloc))
        n.refs
  in
  let entry n =
    (not (is_door config n.id))
    && List.exists
         (fun p -> Lint_tast.has_dot_prefix ~prefix:p n.id)
         config.taint_entries
  in
  (* Reachability never crosses a door: calls INTO Tbl/Clock/Pool are the
     sanctioned way to consume their nondeterminism. *)
  let reach =
    reachable graph ~roots:entry
      ~use_edge:(fun _ -> true)
  in
  let reach n = Hashtbl.mem reach n.id && not (is_door config n.id) in
  List.concat_map
    (fun n ->
      match node_seeds n with
      | [] -> []
      | seeds when not (reach n) -> ignore (seeds : (seed_kind * string * Location.t) list); []
      | seeds ->
          let chain =
            match witness graph ~roots:entry ~target:n.id with
            | Some ids -> chain_string ids
            | None -> n.id
          in
          List.map
            (fun (kind, name, loc) ->
              mk_diag ~rule:"typ-det-taint" ~file:n.unit_path ~loc
                (Printf.sprintf
                   "%s (%s) reaches the public surface through %s; route \
                    through the sanctioned doors (Lbcc_util.Tbl, \
                    Lbcc_obs.Clock, Lbcc_util.Pool / seeded Prng) or waive \
                    with a determinism argument"
                   (kind_doc kind) name chain))
            seeds)
    (sorted_nodes graph)

(* ------------------------------------------------------------------ *)
(* Phase-accounting flow                                               *)

let is_primitive config name =
  List.mem (Lint_tast.suffix ~k:2 name) config.primitives

(* Nodes that ARE broadcast primitives: their bodies are the
   implementation of charging, not consumers of it. *)
let is_primitive_node config (n : Lint_callgraph.node) = is_primitive config n.id

let phase_flow config (graph : Lint_callgraph.t) =
  let open Lint_callgraph in
  let entry n =
    List.exists
      (fun p -> Lint_tast.has_dot_prefix ~prefix:p n.id)
      config.phase_entries
    && not (is_primitive_node config n)
  in
  (* Unphased closure of the entry set: follow only call edges that do
     not pass through a with_phase scope, and never descend into a
     primitive (its internals are its own). *)
  let stop = is_primitive_node config in
  let unphased =
    reachable graph ~roots:entry ~stop ~use_edge:(fun phased -> not phased)
  in
  let skip_unit p = p = "lib/net/rounds.ml" in
  let diags =
    List.concat_map
      (fun n ->
        if
          (not (Hashtbl.mem unphased n.id))
          || is_primitive_node config n
          || skip_unit n.unit_path
        then []
        else
          let sites =
            List.filter
              (fun r -> is_primitive config r.name && not r.phased)
              n.refs
          in
          match sites with
          | [] -> []
          | sites ->
              let chain =
                match
                  witness graph ~roots:entry ~target:n.id ~stop
                    ~use_edge:(fun phased -> not phased)
                with
                | Some ids -> chain_string ids
                | None -> n.id
              in
              List.map
                (fun r ->
                  mk_diag ~rule:"typ-phase-flow" ~file:n.unit_path ~loc:r.rloc
                    (Printf.sprintf
                       "broadcast primitive %s is reachable from the public \
                        surface (%s) with no with_phase scope on the path; \
                        wrap the call in Rounds.with_phase with a taxonomy \
                        label, or waive with a justification"
                       (Lint_tast.suffix ~k:2 r.name)
                       chain))
                sites)
      (sorted_nodes graph)
  in
  (* Taxonomy validation on with_phase labels seen at typed call sites:
     catches labels routed through aliased or locally-wrapped openers
     that the lexical pass cannot attribute. *)
  let label_diags =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun (label, loc) ->
            if List.mem label Lint_rules.phase_vocabulary then None
            else
              Some
                (mk_diag ~rule:"typ-phase-flow" ~file:n.unit_path ~loc
                   (Printf.sprintf
                      "with_phase label %S is outside the documented \
                       taxonomy (%s)"
                      label
                      (String.concat "|" Lint_rules.phase_vocabulary))))
          n.phase_labels)
      (sorted_nodes graph)
  in
  diags @ label_diags

(* ------------------------------------------------------------------ *)
(* Race pass (driver around Lint_race)                                 *)

let races (graph : Lint_callgraph.t) =
  List.concat_map
    (fun (u : Lint_tast.unit_info) ->
      if u.path = "lib/util/pool.ml" then []
      else
        List.map
          (fun (f : Lint_race.finding) ->
            mk_diag ~rule:"typ-par-race" ~file:u.path ~loc:f.Lint_race.floc
              f.Lint_race.message)
          (Lint_race.check_unit u))
    graph.Lint_callgraph.units

(* ------------------------------------------------------------------ *)
(* Combined                                                            *)

(* Run the three passes over a prebuilt graph.  [suppress_for] memoizes
   waiver tables per source file; taint consults it during analysis
   (sanctioned seeds), and the caller applies it again to the final
   diagnostics uniformly. *)
let analyze ?(config = default_config) graph ~suppress_for =
  taint config graph ~suppress_for
  @ phase_flow config graph
  @ races graph
