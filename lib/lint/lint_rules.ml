(* The lbcc-lint rule set.

   Three families, each protecting an invariant the test suite and the
   paper-conformance harness rely on but the type system cannot see:

   - [det-*]  determinism: protocol outputs must be bit-identical across
     domain-pool sizes and across runs ([test_determinism.ml]), so hidden
     sources of nondeterminism — ambient RNG, hash-order iteration,
     wall-clock reads, raw domains, polymorphic compare on float-carrying
     values — are banned outside the modules that exist to contain them.

   - [acct-*] round accounting: every broadcast must be charged to the
     accountant under a documented phase label, or the measured round/bit
     counts no longer witness Thm 1.1-1.4 / Lem 3.2.

   - [hyg-*]  hygiene: constructs that silently discard evidence
     ([Obj.magic], unannotated [ignore] of a call, [assert false]).

   All checks are purely syntactic (compiler-libs parsetree; no typing
   pass), so each rule errs on the side of an explicit waiver comment on
   or above the offending line (grammar in Lint_suppress / DESIGN.md §8). *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Rule table                                                          *)

type rule = {
  name : string;
  severity : Lint_diag.severity;
  doc : string;
  applies : string -> bool;
}

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let in_dir d path = has_prefix ~prefix:(d ^ "/") path

(* Modules that implement or support the broadcast protocols: everything
   under lib/ except the containment modules (lib/util seeds the RNG and
   owns the domain pool; lib/obs owns the clock) and this linter. *)
let protocol_path p =
  in_dir "lib" p
  && (not (in_dir "lib/util" p))
  && (not (in_dir "lib/obs" p))
  && not (in_dir "lib/lint" p)

let accounting_path p =
  (not (in_dir "lib/util" p))
  && (not (in_dir "lib/obs" p))
  && (not (in_dir "lib/lint" p))
  && p <> "lib/net/rounds.ml"

let everywhere _ = true

(* The documented phase vocabulary (DESIGN.md §8): every [with_phase]
   label and every non-final segment of a charge label must come from this
   list.  Leaf charge labels are free-form kebab-case. *)
let phase_vocabulary =
  [ "prepare"; "query"; "solve"; "preprocess"; "sparsify"; "spanner"; "mcmf";
    "ipm"; "retransmit"; "byz-echo"; "gossip"; "engine"; "scale"; "serve";
    "admit"; "coalesce"; "update"; "delta" ]

let rules =
  [
    {
      name = "det-unseeded-random";
      severity = Lint_diag.Error;
      doc =
        "Stdlib Random (ambient, self-seeding state) is banned outside \
         lib/util: protocols draw randomness from the seeded, splittable \
         Lbcc_util.Prng so runs are reproducible (Thm 1.2/1.3 conformance, \
         test_determinism fingerprints).";
      applies = (fun p -> not (in_dir "lib/util" p));
    };
    {
      name = "det-unordered-hashtbl";
      severity = Lint_diag.Error;
      doc =
        "Hashtbl.iter/Hashtbl.fold enumerate in hash-bucket order, which is \
         not a stable public contract; in protocol modules any order-\
         sensitive use silently breaks cross-run determinism. Use \
         Lbcc_util.Tbl.sorted_* or waive with a comment arguing order-\
         insensitivity.";
      applies = protocol_path;
    };
    {
      name = "det-wall-clock";
      severity = Lint_diag.Error;
      doc =
        "Sys.time/Unix.gettimeofday outside lib/obs: wall-clock reads in \
         protocol code make round counts and outputs timing-dependent. \
         Observability owns the clock (Trace spans); benches that measure \
         wall time on purpose carry an explicit waiver.";
      applies = (fun p -> not (in_dir "lib/obs" p));
    };
    {
      name = "det-raw-domain";
      severity = Lint_diag.Error;
      doc =
        "Domain.spawn outside lib/util/pool.ml: ad-hoc domains bypass the \
         deterministic chunk schedule of the worker pool (DESIGN.md §5b), \
         so parallel runs may diverge from sequential ones.";
      applies = (fun p -> p <> "lib/util/pool.ml");
    };
    {
      name = "det-float-poly-compare";
      severity = Lint_diag.Error;
      doc =
        "Polymorphic compare in protocol modules, or =/<> applied to a \
         syntactically float-valued operand: structural compare on float-\
         carrying values orders nan inconsistently with IEEE and silently \
         depends on representation. Use Float.compare/Int.compare or an \
         explicit comparator.";
      applies = protocol_path;
    };
    {
      name = "acct-unscoped-broadcast";
      severity = Lint_diag.Error;
      doc =
        "A broadcast/send primitive (Engine.run, Engine.run_unicast, \
         Reliable.run, Rounds.charge*) reached without an accountant \
         lexically in scope: no with_phase above it, no accountant \
         parameter or argument. Unaccounted broadcasts make the measured \
         bounds (Thm 1.1-1.4, Lem 3.2) unsound.";
      applies = accounting_path;
    };
    {
      name = "acct-phase-taxonomy";
      severity = Lint_diag.Error;
      doc =
        "A phase or charge label literal outside the documented taxonomy \
         (DESIGN.md §8): with_phase labels must be one of the vocabulary \
         segments; charge labels are kebab-case leaves optionally prefixed \
         by vocabulary phases (e.g. query/laplacian-matvec).";
      applies = accounting_path;
    };
    {
      name = "hyg-obj-magic";
      severity = Lint_diag.Error;
      doc = "Obj.magic defeats the type system; there is no sound use here.";
      applies = everywhere;
    };
    {
      name = "hyg-ignored-result";
      severity = Lint_diag.Warning;
      doc =
        "ignore applied to a function call without a type annotation: \
         annotate the discarded type (ignore (f x : t)) so dropping a \
         result — e.g. an Engine.stats or a verdict — is visibly \
         deliberate and survives refactors.";
      applies = everywhere;
    };
    {
      name = "hyg-assert-false";
      severity = Lint_diag.Error;
      doc =
        "assert false in shipped code: unreachable branches must raise a \
         descriptive exception (failwith/invalid_arg with context) or be \
         restructured away; a bare assert carries no evidence when it \
         fires in a 300-node run.";
      applies = everywhere;
    };
    {
      name = "lint-directive";
      severity = Lint_diag.Error;
      doc =
        "A malformed lbcc-lint suppression comment, or one naming an \
         unknown rule: a waiver that does not parse silently waives \
         nothing.";
      applies = everywhere;
    };
    (* Typed-tier rules (lbcc-lint --typed; cmt-based, see DESIGN.md §13).
       The [applies] predicates scope where a waiver for the rule makes
       sense; the passes themselves decide where they look. *)
    {
      name = "typ-det-taint";
      severity = Lint_diag.Error;
      doc =
        "[typed] A determinism seed (ambient Random, hash-order \
         iteration, wall-clock read, raw Domain.spawn) — possibly behind \
         aliases or helper calls — is reachable from the public \
         protocol/solver surface without routing through a sanctioned \
         door (Lbcc_util.Tbl, Lbcc_obs.Clock, Lbcc_util.Pool). The \
         diagnostic carries a shortest witness call chain.";
      applies = protocol_path;
    };
    {
      name = "typ-par-race";
      severity = Lint_diag.Error;
      doc =
        "[typed] A closure passed to Pool.parallel_for/parallel_reduce \
         writes captured mutable state (a ref, a mutable record field, \
         an array/bytes cell at a chunk-independent index, an atomic, or \
         a stdlib container): breaks the disjoint-writes contract that \
         makes every pool size bit-identical (pool.mli, DESIGN.md §5b).";
      applies = (fun p -> in_dir "lib" p && p <> "lib/util/pool.ml");
    };
    {
      name = "typ-phase-flow";
      severity = Lint_diag.Error;
      doc =
        "[typed] A broadcast primitive (Engine.run*, Reliable.run, \
         Byzantine.run, Gossip.spread, Rounds.charge*) is reachable from \
         a public entry point along a call path with no with_phase scope \
         on it, or a resolved with_phase call carries a label outside the \
         documented taxonomy. Interprocedural replacement for the \
         lexical acct-* scope check.";
      applies = accounting_path;
    };
    {
      name = "typ-stale-cmt";
      severity = Lint_diag.Warning;
      doc =
        "[typed] The source file is newer than the .cmt the typed pass \
         analyzed: findings may describe an old revision. Re-run `dune \
         build` to refresh the artifacts.";
      applies = everywhere;
    };
  ]

let find_rule name = List.find_opt (fun r -> r.name = name) rules

let rule_names = List.map (fun r -> r.name) rules

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)

let rec flat = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flat l @ [ s ]
  | Longident.Lapply _ -> []

let ident_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flat txt)
  | _ -> None

(* Strip a Stdlib. qualification so Stdlib.Random.int matches Random.int. *)
let unqualify = function "Stdlib" :: rest -> rest | l -> l

let last2 l =
  match List.rev l with a :: b :: _ -> Some (b, a) | _ -> None

let rec head_ident e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> head_ident f
  | Pexp_ident { txt; _ } -> Some (flat txt)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Syntactic classifiers                                               *)

let wall_clock_fns =
  [ ("Sys", "time"); ("Unix", "gettimeofday"); ("Unix", "time");
    ("Unix", "gmtime"); ("Unix", "localtime") ]

let is_phase_name l =
  match List.rev l with
  | ("with_phase" | "with_phase_opt" | "with_phases") :: _ -> true
  | _ -> false

(* The primitives that put bits on the shared channel (or record that they
   did): every call must be reachable only through an accounted scope. *)
let is_broadcast_primitive l =
  match last2 (unqualify l) with
  | Some ("Engine", ("run" | "run_unicast")) -> true
  | Some ("Reliable", "run") -> true
  | Some ("Rounds", ("charge" | "charge_broadcast" | "charge_vector")) -> true
  | _ -> (
      match List.rev l with
      | ("charge_broadcast" | "charge_vector") :: _ -> true
      | _ -> false)

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let float_fns =
  [ "sqrt"; "exp"; "log"; "log10"; "cos"; "sin"; "tan"; "atan"; "atan2";
    "abs_float"; "float_of_int"; "float_of_string" ]

let is_float_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
  | _ -> false

(* Shallow syntactic evidence that an expression is float-valued.  This is
   deliberately conservative: only spellings that cannot be anything but a
   float count, so the rule never fires on integer code. *)
let is_float_like e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> (
      match unqualify (flat txt) with
      | [ ("infinity" | "neg_infinity" | "nan" | "epsilon_float" | "max_float"
          | "min_float") ] ->
          true
      | "Float" :: _ :: _ -> true
      | _ -> false)
  | Pexp_constraint (_, ty) -> is_float_type ty
  | Pexp_apply (f, _) -> (
      match ident_of f with
      | Some [ op ] when List.mem op float_ops || List.mem op float_fns -> true
      | Some l -> (
          match unqualify l with "Float" :: _ :: _ -> true | _ -> false)
      | None -> false)
  | _ -> false

let segment_ok s =
  s <> ""
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-')
       s

let rec string_list_literal e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> Some []
  | Pexp_construct
      ( { txt = Longident.Lident "::"; _ },
        Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ } ) -> (
      match (hd.pexp_desc, string_list_literal tl) with
      | Pexp_constant (Pconst_string (s, loc, _)), Some rest ->
          Some ((s, loc) :: rest)
      | _ -> None)
  | _ -> None

(* Does this pattern bind an accountant?  By convention the accountant is
   always called [acc] or [accountant] in this codebase (enforced de facto
   by this very rule: a helper that charges must take the accountant under
   one of those names to be recognised as an accounted scope). *)
let rec pat_binds_acc p =
  match p.ppat_desc with
  | Ppat_var { txt = "acc" | "accountant"; _ } -> true
  | Ppat_alias (_, { txt = "acc" | "accountant"; _ }) -> true
  | Ppat_alias (p, _) -> pat_binds_acc p
  | Ppat_tuple ps -> List.exists pat_binds_acc ps
  | Ppat_construct (_, Some (_, p)) -> pat_binds_acc p
  | Ppat_variant (_, Some p) -> pat_binds_acc p
  | Ppat_record (fields, _) -> List.exists (fun (_, p) -> pat_binds_acc p) fields
  | Ppat_or (a, b) -> pat_binds_acc a || pat_binds_acc b
  | Ppat_constraint (p, _) | Ppat_open (_, p) | Ppat_lazy p -> pat_binds_acc p
  | _ -> false

let arg_is_accountant (lbl, e) =
  match lbl with
  | Asttypes.Labelled ("accountant" | "acc")
  | Asttypes.Optional ("accountant" | "acc") ->
      true
  | Asttypes.Labelled _ | Asttypes.Optional _ -> false
  | Asttypes.Nolabel -> (
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident ("acc" | "accountant"); _ } -> true
      | Pexp_field (_, { txt; _ }) -> (
          match List.rev (flat txt) with
          | ("acc" | "accountant") :: _ -> true
          | _ -> false)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)

type ctx = {
  path : string;
  suppress : Lint_suppress.t;
  mutable phase_depth : int; (* enclosing with_phase* applications *)
  mutable acct_depth : int; (* enclosing bindings of acc/accountant *)
  mutable out : Lint_diag.t list;
  active : (string * rule) list;
}

let report ctx name loc message =
  match List.assoc_opt name ctx.active with
  | None -> ()
  | Some rule ->
      let pos = loc.Location.loc_start in
      let line = pos.Lexing.pos_lnum in
      if not (Lint_suppress.active ctx.suppress ~rule:name ~line) then
        ctx.out <-
          {
            Lint_diag.rule = name;
            severity = rule.severity;
            file = ctx.path;
            line;
            col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
            message;
          }
          :: ctx.out

let check_phase_segment ctx loc s =
  if not (segment_ok s) then
    report ctx "acct-phase-taxonomy" loc
      (Printf.sprintf
         "phase label %S is not kebab-case ([a-z0-9-], '/'-separated)" s)
  else if not (List.mem s phase_vocabulary) then
    report ctx "acct-phase-taxonomy" loc
      (Printf.sprintf
         "phase label %S is not in the documented taxonomy (%s); extend \
          DESIGN.md §8 or pick an existing phase"
         s
         (String.concat "|" phase_vocabulary))

let check_charge_label ctx loc s =
  let segs = String.split_on_char '/' s in
  if not (List.for_all segment_ok segs) then
    report ctx "acct-phase-taxonomy" loc
      (Printf.sprintf
         "charge label %S is not kebab-case ([a-z0-9-], '/'-separated)" s)
  else
    let rec prefixes = function
      | [] | [ _ ] -> () (* the leaf segment is free-form *)
      | seg :: rest ->
          if not (List.mem seg phase_vocabulary) then
            report ctx "acct-phase-taxonomy" loc
              (Printf.sprintf
                 "charge label %S: prefix segment %S is not a documented \
                  phase (%s)"
                 s seg
                 (String.concat "|" phase_vocabulary));
          prefixes rest
    in
    prefixes segs

(* Module-path checks fire at every identifier occurrence, so a primitive
   passed as a value is caught the same as a direct call. *)
let check_ident ctx loc l =
  let u = unqualify l in
  (match u with
  | "Random" :: _ :: _ ->
      report ctx "det-unseeded-random" loc
        (Printf.sprintf
           "%s: ambient Stdlib Random; draw from the seeded Lbcc_util.Prng \
            instead"
           (String.concat "." l))
  | _ -> ());
  (match last2 u with
  | Some ("Hashtbl", (("iter" | "fold") as fn)) ->
      report ctx "det-unordered-hashtbl" loc
        (Printf.sprintf
           "Hashtbl.%s enumerates in hash-bucket order; use \
            Lbcc_util.Tbl.sorted_keys/sorted_bindings/iter_sorted or waive \
            with an order-insensitivity argument"
           fn)
  | Some (m, fn) when List.mem (m, fn) wall_clock_fns ->
      report ctx "det-wall-clock" loc
        (Printf.sprintf
           "%s.%s reads the wall clock; protocol code must be \
            timing-independent (lib/obs owns the clock)"
           m fn)
  | Some ("Domain", "spawn") ->
      report ctx "det-raw-domain" loc
        "raw Domain.spawn bypasses the deterministic worker pool \
         (Lbcc_util.Pool)"
  | Some ("Obj", "magic") ->
      report ctx "hyg-obj-magic" loc "Obj.magic defeats the type system"
  | _ -> ());
  match u with
  | [ "compare" ] ->
      report ctx "det-float-poly-compare" loc
        "polymorphic compare; use Int.compare/Float.compare/String.compare \
         or an explicit comparator for the element type"
  | _ -> ()

let check_apply ctx loc fn args =
  let fn_ident = Option.map unqualify (ident_of fn) in
  (* =/<> with a syntactically float operand. *)
  (match fn_ident with
  | Some [ ("=" | "<>" | "==" | "!=") ] ->
      let operands =
        List.filter_map
          (function Asttypes.Nolabel, e -> Some e | _ -> None)
          args
      in
      if List.exists is_float_like operands then
        report ctx "det-float-poly-compare" loc
          "polymorphic equality on a float-valued operand; use Float.equal \
           (or compare against an explicit tolerance)"
  | _ -> ());
  (* ignore of a call without a type annotation. *)
  (match (fn_ident, args) with
  | Some [ "ignore" ], [ (Asttypes.Nolabel, arg) ] -> (
      match arg.pexp_desc with
      | Pexp_apply _ ->
          report ctx "hyg-ignored-result" loc
            "ignore of a function call without a type annotation; write \
             ignore (f x : t) so the discarded result is visible"
      | _ -> ())
  | _ -> ());
  (* Accounting: broadcast primitives and label taxonomy. *)
  match fn_ident with
  | Some l when is_broadcast_primitive l ->
      let accounted =
        ctx.phase_depth > 0 || ctx.acct_depth > 0
        || List.exists arg_is_accountant args
      in
      if not accounted then
        report ctx "acct-unscoped-broadcast" loc
          (Printf.sprintf
             "%s outside any accountant scope: wrap in Rounds.with_phase, \
              take/pass an ~accountant, or waive with a justification"
             (String.concat "." l));
      List.iter
        (fun (lbl, e) ->
          match (lbl, e.pexp_desc) with
          | Asttypes.Labelled "label", Pexp_constant (Pconst_string (s, sloc, _))
            ->
              check_charge_label ctx sloc s
          | _ -> ())
        args
  | Some l when is_phase_name l ->
      (* First anonymous string literal is the phase label. *)
      let rec first_label = function
        | [] -> ()
        | (Asttypes.Nolabel, { pexp_desc = Pexp_constant (Pconst_string (s, sloc, _)); _ })
          :: _ ->
            check_phase_segment ctx sloc s
        | (Asttypes.Nolabel, e) :: rest -> (
            match string_list_literal e with
            | Some labels ->
                List.iter (fun (s, sloc) -> check_phase_segment ctx sloc s) labels
            | None -> first_label rest)
        | _ :: rest -> first_label rest
      in
      first_label args
  | _ ->
      (* ~phases:[...] at any call site routes into with_phases. *)
      List.iter
        (fun (lbl, e) ->
          match lbl with
          | Asttypes.Labelled "phases" | Asttypes.Optional "phases" -> (
              match string_list_literal e with
              | Some labels ->
                  List.iter
                    (fun (s, sloc) -> check_phase_segment ctx sloc s)
                    labels
              | None -> ())
          | _ -> ())
        args

let make_iterator ctx =
  let open Ast_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> check_ident ctx e.pexp_loc (flat txt)
    | _ -> ());
    match e.pexp_desc with
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
      ->
        report ctx "hyg-assert-false" e.pexp_loc
          "assert false in shipped code; raise a descriptive exception or \
           restructure the match"
    | Pexp_apply (fn, args) ->
        check_apply ctx e.pexp_loc fn args;
        let opens_phase =
          (match ident_of fn with
          | Some l -> (
              match unqualify l with
              | [ "@@" ] -> (
                  match args with
                  | (_, lhs) :: _ -> (
                      match head_ident lhs with
                      | Some hl -> is_phase_name hl
                      | None -> false)
                  | [] -> false)
              | l -> is_phase_name l)
          | None -> false)
        in
        if opens_phase then begin
          ctx.phase_depth <- ctx.phase_depth + 1;
          default_iterator.expr it e;
          ctx.phase_depth <- ctx.phase_depth - 1
        end
        else default_iterator.expr it e
    | Pexp_fun (lbl, _, pat, _) ->
        let binds =
          (match lbl with
          | Asttypes.Labelled ("accountant" | "acc")
          | Asttypes.Optional ("accountant" | "acc") ->
              true
          | _ -> false)
          || pat_binds_acc pat
        in
        if binds then begin
          ctx.acct_depth <- ctx.acct_depth + 1;
          default_iterator.expr it e;
          ctx.acct_depth <- ctx.acct_depth - 1
        end
        else default_iterator.expr it e
    | Pexp_let (_, vbs, _) ->
        if List.exists (fun vb -> pat_binds_acc vb.pvb_pat) vbs then begin
          ctx.acct_depth <- ctx.acct_depth + 1;
          default_iterator.expr it e;
          ctx.acct_depth <- ctx.acct_depth - 1
        end
        else default_iterator.expr it e
    | _ -> default_iterator.expr it e
  in
  let case it c =
    if pat_binds_acc c.pc_lhs then begin
      ctx.acct_depth <- ctx.acct_depth + 1;
      default_iterator.case it c;
      ctx.acct_depth <- ctx.acct_depth - 1
    end
    else default_iterator.case it c
  in
  { default_iterator with expr; case }

(* Top-level [let f ?accountant ... =] is a value binding whose expression
   is a Pexp_fun chain, so parameter scoping is handled by [expr]; here we
   only validate the suppression directives themselves. *)
let check_directives ctx =
  List.iter
    (fun line ->
      report ctx "lint-directive"
        Location.
          {
            loc_start = { Lexing.dummy_pos with pos_lnum = line; pos_bol = 0; pos_cnum = 0 };
            loc_end = { Lexing.dummy_pos with pos_lnum = line; pos_bol = 0; pos_cnum = 0 };
            loc_ghost = false;
          }
        "malformed suppression directive (expected the marker followed by \
         'allow <rule> ...' or 'allow-file <rule> ...')")
    (Lint_suppress.malformed_lines ctx.suppress);
  List.iter
    (fun (line, rule) ->
      if not (List.mem rule rule_names) then
        report ctx "lint-directive"
          Location.
            {
              loc_start = { Lexing.dummy_pos with pos_lnum = line; pos_bol = 0; pos_cnum = 0 };
              loc_end = { Lexing.dummy_pos with pos_lnum = line; pos_bol = 0; pos_cnum = 0 };
              loc_ghost = false;
            }
          (Printf.sprintf "waiver names unknown rule %S (see --list-rules)"
             rule))
    (Lint_suppress.mentioned_rules ctx.suppress)

let check ~path ~suppress structure =
  let active =
    List.filter_map
      (fun r -> if r.applies path then Some (r.name, r) else None)
      rules
  in
  let ctx = { path; suppress; phase_depth = 0; acct_depth = 0; out = []; active } in
  check_directives ctx;
  let it = make_iterator ctx in
  it.Ast_iterator.structure it structure;
  List.sort Lint_diag.compare_diag ctx.out
