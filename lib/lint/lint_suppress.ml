(* Suppression comments.

   A violation is acknowledged in source with a comment containing the
   marker (the tool name followed by a colon), the word "allow", and one
   or more rule names — placed on the same line as the offending
   expression or on the line directly above it.  "allow-file" instead of
   "allow" waives the named rules for the whole file (conventionally from
   the header).  Rule names are the ones printed in diagnostics and by
   [lbcc_lint --list-rules]; DESIGN.md §8 shows the concrete syntax.

   The scanner works on raw source text rather than the parsetree because
   the OCaml parser discards comments; a line-oriented scan is enough since
   the directive grammar is deliberately one-line. *)

type t = {
  per_line : (int, string list) Hashtbl.t; (* line -> allowed rules *)
  mutable file_wide : string list;
  mutable malformed : int list; (* lines bearing an unparseable directive *)
}

(* Built by concatenation so this source file does not itself contain the
   marker text (the scanner has no notion of string-literal context). *)
let directive_re = "lbcc-lint" ^ ":"

(* Split on blanks and commas, drop comment-closer tokens. *)
let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok = "" then None
         else
           (* A trailing "*)" glued to the last rule name. *)
           let tok =
             match String.index_opt tok '*' with
             | Some i -> String.sub tok 0 i
             | None -> tok
           in
           if tok = "" then None else Some tok)

let find_directive line =
  let n = String.length directive_re in
  let len = String.length line in
  let rec search i =
    if i + n > len then None
    else if String.sub line i n = directive_re then Some (i + n)
    else search (i + 1)
  in
  search 0

let scan source =
  let t = { per_line = Hashtbl.create 8; file_wide = []; malformed = [] } in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match find_directive line with
      | None -> ()
      | Some start -> (
          let rest = String.sub line start (String.length line - start) in
          match tokens rest with
          | "allow" :: (_ :: _ as rules) ->
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt t.per_line lineno)
              in
              Hashtbl.replace t.per_line lineno (prev @ rules)
          | "allow-file" :: (_ :: _ as rules) ->
              t.file_wide <- t.file_wide @ rules
          | _ -> t.malformed <- lineno :: t.malformed))
    lines;
  t

(* [line] is where the diagnostic fires; the waiver may sit on that line or
   the one above (the idiomatic spot for a standalone comment). *)
let active t ~rule ~line =
  List.mem rule t.file_wide
  || (match Hashtbl.find_opt t.per_line line with
     | Some rules -> List.mem rule rules
     | None -> false)
  ||
  match Hashtbl.find_opt t.per_line (line - 1) with
  | Some rules -> List.mem rule rules
  | None -> false

let malformed_lines t = List.rev t.malformed

(* Every (line, rule) mention, for validating that waivers reference real
   rules.  File-wide waivers are reported at line 0.  Sorted so the caller's
   diagnostics come out in a stable order. *)
let mentioned_rules t =
  let per_line =
    Hashtbl.fold
      (fun line rules acc -> List.map (fun r -> (line, r)) rules @ acc)
      t.per_line []
  in
  List.map (fun r -> (0, r)) t.file_wide @ per_line
  |> List.sort (fun (l1, r1) (l2, r2) ->
         let c = Stdlib.Int.compare l1 l2 in
         if c <> 0 then c else String.compare r1 r2)
