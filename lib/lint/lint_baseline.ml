(* Baseline filtering: fail CI only on NEW violations.

   A baseline file is just a saved lbcc-lint/1 report
   ([lbcc-lint --json --out lint-baseline.json], or
   [--write-baseline FILE]).  Under [--baseline FILE] the driver
   subtracts the baseline from the current findings before deciding the
   exit code, so a tree with known, not-yet-triaged debt can still gate
   regressions.

   Matching is by (rule, file, message) MULTISET, deliberately ignoring
   line/col: adding a line above an old finding must not resurface it,
   while a genuinely new instance of an already-known finding (same rule
   and message text but one more occurrence than the baseline holds)
   does fail.  Messages that embed call chains change when the graph
   around them changes — that is accepted; a reshaped path to a known
   offence is worth a fresh look. *)

let key (d : Lint_diag.t) =
  d.Lint_diag.rule ^ "|" ^ d.Lint_diag.file ^ "|" ^ d.Lint_diag.message

(* Parse the [diagnostics] array of an lbcc-lint/1 report (or a bare
   array of diagnostic objects) into keys.  Unknown fields are ignored;
   a malformed file is an [Error] so the CLI can exit 2 rather than
   silently gating nothing. *)
let keys_of_json json =
  let open Lbcc_obs.Json in
  let diag_key j =
    let str k = match member k j with Some (String s) -> Some s | _ -> None in
    match (str "rule", str "file", str "message") with
    | Some r, Some f, Some m -> Some (r ^ "|" ^ f ^ "|" ^ m)
    | _ -> None
  in
  let arr =
    match json with
    | Arr items -> Some items
    | Obj _ -> ( match member "diagnostics" json with Some (Arr items) -> Some items | _ -> None)
    | _ -> None
  in
  match arr with
  | None -> Error "baseline file is not an lbcc-lint/1 report (no diagnostics array)"
  | Some items -> Ok (List.filter_map diag_key items)

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read baseline: %s" msg)
  | contents -> (
      match Lbcc_obs.Json.of_string contents with
      | exception Lbcc_obs.Json.Parse_error msg ->
          Error (Printf.sprintf "baseline %s: %s" path msg)
      | json -> keys_of_json json)

(* Subtract the baseline multiset: each baseline entry absolves at most
   one current diagnostic with the same key. *)
let filter ~baseline diags =
  let budget = Hashtbl.create 64 in
  List.iter
    (fun k ->
      Hashtbl.replace budget k
        (1 + Option.value ~default:0 (Hashtbl.find_opt budget k)))
    baseline;
  List.filter
    (fun d ->
      let k = key d in
      match Hashtbl.find_opt budget k with
      | Some n when n > 0 ->
          Hashtbl.replace budget k (n - 1);
          false
      | _ -> true)
    diags
