open Lbcc_util
module Vec = Lbcc_linalg.Vec
module Sparse = Lbcc_linalg.Sparse
module Rounds = Lbcc_net.Rounds

type weighting = Lewis | Unweighted
type weight_update = [ `Recompute | `Paper ]
type leverage_mode = [ `Exact | `Jl of float ]

type config = {
  weighting : weighting;
  weight_update : weight_update;
  leverage_mode : leverage_mode;
  step_scale : float;
  lewis_eta : float;
  final_centering : int;
  max_iterations : int;
  t1_c : float;
  delta_target : float;
  max_centering_per_step : int;
  verbose : bool;
}

let default_config =
  {
    weighting = Lewis;
    weight_update = `Recompute;
    leverage_mode = `Exact;
    step_scale = 0.5;
    lewis_eta = 0.05;
    final_centering = 6;
    max_iterations = 200_000;
    t1_c = 1.0;
    delta_target = 0.5;
    max_centering_per_step = 30;
    verbose = false;
  }

type trace = {
  iterations : int;
  centering_calls : int;
  rounds : int;
  max_eq_residual : float;
  final_delta : float;
}

type centering_state = {
  x : Vec.t;
  w : Vec.t;
  delta : float;
}

let p_lewis m = 1.0 -. (1.0 /. log (4.0 *. float_of_int m))
let c_k m = 2.0 *. log (4.0 *. float_of_int m)
let c_norm m = 24.0 *. sqrt 4.0 *. c_k m

(* Normal solves are the IPM's query-phase cost: the operator itself was
   prepared once by the caller (instance broadcast + solver workspaces), so
   the label mirrors the solver service's prepare/query split. *)
let charge_solver acc (solver : Problem.normal_solver) =
  match acc with
  | Some a ->
      Rounds.charge a ~label:"query/normal-solve" ~rounds:solver.Problem.rounds
  | None -> ()

let charge_vector acc label =
  match acc with
  | Some a -> Rounds.charge_vector a ~label ~entry_bits:(Bits.float_bits ())
  | None -> ()

(* Leverage oracle for [diag(d) A_x] with [A_x = diag(spp)^{-1} A]:
   row-scale [A] by [d / spp] and answer normal solves through the
   instance backend. *)
let leverage_oracle ?accountant ~config ~prng ~(problem : Problem.t)
    ~(solver : Problem.normal_solver) ~spp d =
  let dd = Vec.div d spp in
  let op =
    {
      Leverage.rows = Problem.m problem;
      cols = Problem.n problem;
      apply = (fun x -> Vec.mul dd (Sparse.matvec problem.Problem.a x));
      apply_t = (fun y -> Sparse.matvec_t problem.Problem.a (Vec.mul dd y));
      solve_normal =
        (fun z ->
          charge_solver accountant solver;
          solver.Problem.solve ~d:(Vec.mul dd dd) ~rhs:z);
      solve_rounds = solver.Problem.rounds;
    }
  in
  match config.leverage_mode with
  | `Exact -> Leverage.exact op
  | `Jl eta -> Leverage.approximate ?accountant ~prng ~eta op

(* Regularized Lewis weights at [x], warm-started from [w_prev]. *)
let lewis_weights ?accountant ~config ~prng ~problem ~solver ~x ~w_prev () =
  let m = Problem.m problem and n = Problem.n problem in
  let spp = Vec.map sqrt (Problem.phi'' problem x) in
  let leverage d =
    leverage_oracle ?accountant ~config ~prng ~problem ~solver ~spp d
  in
  let c0 = float_of_int n /. (2.0 *. float_of_int m) in
  let w0 = Vec.map (fun wi -> Float.max (wi -. c0) 1e-9) w_prev in
  let w, _ =
    Lewis.fixed_point ~leverage ~p:(p_lewis m) ~w0 ~eta:config.lewis_eta ()
  in
  Lewis.regularized w ~n ~m

(* P_{x,w} y = y - W^{-1} A_x (A_x^T W^{-1} A_x)^{-1} A_x^T y. *)
let project ?accountant ~(problem : Problem.t) ~(solver : Problem.normal_solver)
    ~w ~spp y =
  let a = problem.Problem.a in
  let z = Sparse.matvec_t a (Vec.div y spp) in
  let d = Vec.init (Vec.dim w) (fun i -> 1.0 /. (w.(i) *. spp.(i) *. spp.(i))) in
  charge_solver accountant solver;
  let s = solver.Problem.solve ~d ~rhs:z in
  let corr = Vec.div (Sparse.matvec a s) (Vec.mul w spp) in
  Vec.sub y corr

let mixed_norm ~w ~cnorm y = Vec.norm_inf y +. (cnorm *. Vec.weighted_norm w y)

let centering_inexact ?accountant ~config ~prng ~problem ~solver ~t ~cost state =
  let m = Problem.m problem in
  let x = state.x and w = state.w in
  let pp' = Problem.phi' problem x in
  let pp'' = Problem.phi'' problem x in
  let spp = Vec.map sqrt pp'' in
  let y =
    Vec.init m (fun i -> ((t *. cost.(i)) +. (w.(i) *. pp'.(i))) /. (w.(i) *. spp.(i)))
  in
  let py = project ?accountant ~problem ~solver ~w ~spp y in
  charge_vector accountant "ipm-step-exchange";
  let delta_paper = mixed_norm ~w ~cnorm:(c_norm m) py in
  let delta = mixed_norm ~w ~cnorm:1.0 py in
  (* Damped Newton step, with backtracking to preserve strict interiority
     (the theory keeps delta small enough that the full step is safe; the
     calibrated constants occasionally are not, so we guard). *)
  let step = Vec.div py spp in
  let damping = if delta <= 0.25 then 1.0 else 1.0 /. (1.0 +. delta) in
  let rec attempt eta_step tries =
    let x_new = Vec.sub x (Vec.scale eta_step step) in
    if Problem.interior problem x_new then x_new
    else if tries = 0 then x
    else attempt (eta_step /. 2.0) (tries - 1)
  in
  let x_new = attempt damping 60 in
  (* Feasibility restoration: inexact normal solves let [A^T x - b] drift;
     cancel the residual with a correction in the row space,
     [x -= D0 A s] with [A^T D0 A s = A^T x - b], backtracked to stay
     interior (a partial correction still shrinks the residual). *)
  let x_new =
    let a = problem.Problem.a in
    let r = Vec.sub (Sparse.matvec_t a x_new) problem.Problem.b in
    let scale = Float.max 1.0 (Vec.norm2 problem.Problem.b) in
    if Vec.norm2 r <= 1e-12 *. scale then x_new
    else begin
      let pp''_new = Problem.phi'' problem x_new in
      let d0 = Vec.init m (fun i -> 1.0 /. (w.(i) *. pp''_new.(i))) in
      charge_solver accountant solver;
      let s = solver.Problem.solve ~d:d0 ~rhs:r in
      let corr = Vec.mul d0 (Sparse.matvec a s) in
      let rnorm = Vec.norm2 r in
      (* Accept the largest backtracked step that stays interior AND
         shrinks the residual: with badly conditioned normal solves the
         "correction" can point the wrong way, and applying it blindly
         compounds the drift. *)
      let rec fix eta_fix tries =
        if tries = 0 then x_new
        else begin
          let cand = Vec.sub x_new (Vec.scale eta_fix corr) in
          if Problem.interior problem cand then begin
            let r_cand = Vec.sub (Sparse.matvec_t a cand) problem.Problem.b in
            if Vec.norm2 r_cand < rnorm then cand else fix (eta_fix /. 2.0) (tries - 1)
          end
          else fix (eta_fix /. 2.0) (tries - 1)
        end
      in
      fix 1.0 40
    end
  in
  let w_new =
    match config.weighting with
    | Unweighted -> w
    | Lewis -> (
        match config.weight_update with
        | `Recompute ->
            lewis_weights ?accountant ~config ~prng ~problem ~solver ~x:x_new
              ~w_prev:w ()
        | `Paper ->
            (* Algorithm 11, lines 4-6. *)
            let ck = c_k m in
            let r = 1.0 /. (768.0 *. ck *. ck *. log (36.0 *. float_of_int m)) in
            let eta = 1.0 /. (2.0 *. ck) in
            let spp_new = Vec.map sqrt (Problem.phi'' problem x_new) in
            let leverage d =
              leverage_oracle ?accountant ~config ~prng ~problem ~solver
                ~spp:spp_new d
            in
            let n = Problem.n problem in
            let c0 = float_of_int n /. (2.0 *. float_of_int m) in
            let w0 = Vec.map (fun wi -> Float.max (wi -. c0) 1e-9) w in
            let apx, _ =
              Lewis.compute_apx_weights ~leverage ~p:(p_lewis m) ~w0
                ~eta:(Float.max (Float.exp r -. 1.0) 1e-3)
                ()
            in
            let z = Vec.map log (Lewis.regularized apx ~n ~m) in
            let mu = eta /. (12.0 *. r) in
            let v = Vec.map2 (fun zi wi -> mu *. (zi -. log wi)) z w in
            let grad = Vec.map (fun vi -> Float.exp vi -. Float.exp (-.vi)) v in
            let l = Vec.map (fun wi -> c_norm m *. sqrt wi) w in
            let proj =
              Mixed_ball.maximize ?accountant ~a:(Vec.neg grad) ~l ()
            in
            let scale = (1.0 -. (6.0 /. (7.0 *. ck))) *. delta_paper in
            let u = Vec.scale scale proj.Mixed_ball.x in
            Vec.map2 (fun wi ui -> Float.max 1e-12 (wi *. Float.exp ui)) w u)
  in
  { x = x_new; w = w_new; delta }

let median3 a b c = Float.max (Float.min a b) (Float.min (Float.max a b) c)

let path_following ?accountant ~config ~prng ~problem ~solver ~x ~w ~t_start
    ~t_end ~eta ~cost () =
  if t_start <= 0.0 || t_end <= 0.0 then
    invalid_arg "Ipm.path_following: path parameters must be positive";
  let c1 = Float.max 1.0 (Vec.norm1 w) in
  let alpha = config.step_scale /. sqrt c1 in
  let state = ref { x; w; delta = 0.0 } in
  let t = ref t_start in
  let iterations = ref 0 and centering_calls = ref 0 in
  let max_eq = ref 0.0 in
  let observe () =
    max_eq := Float.max !max_eq (Problem.equality_residual problem !state.x)
  in
  let center_until_good t =
    (* One mandatory step, then repeat while the centrality measure exceeds
       the target (the theory's constants make one step suffice; the
       calibrated ones occasionally need more). *)
    let tries = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      incr tries;
      incr centering_calls;
      state :=
        centering_inexact ?accountant ~config ~prng ~problem ~solver ~t ~cost
          !state;
      observe ();
      if !state.delta <= config.delta_target || !tries >= config.max_centering_per_step
      then continue_ := false
    done
  in
  while !t <> t_end && !iterations < config.max_iterations do
    incr iterations;
    center_until_good !t;
    t := median3 ((1.0 -. alpha) *. !t) t_end ((1.0 +. alpha) *. !t);
    if config.verbose && !iterations mod 50 = 0 then
      Format.eprintf "  [pf] iter=%d t=%.3e delta=%.3f@." !iterations !t
        !state.delta
  done;
  let extra =
    Stdlib.min config.final_centering
      (Stdlib.max 1 (int_of_float (Float.ceil (4.0 *. log (1.0 /. Float.min 0.5 eta)))))
  in
  for _ = 1 to extra do
    incr centering_calls;
    state :=
      centering_inexact ?accountant ~config ~prng ~problem ~solver ~t:t_end
        ~cost !state;
    observe ()
  done;
  let trace =
    {
      iterations = !iterations;
      centering_calls = !centering_calls;
      rounds = (match accountant with Some a -> Rounds.rounds a | None -> 0);
      max_eq_residual = !max_eq;
      final_delta = !state.delta;
    }
  in
  (!state.x, !state.w, trace)

let initial_weights ?accountant ~config ~prng ~problem ~solver ~x0 () =
  let m = Problem.m problem and n = Problem.n problem in
  match config.weighting with
  | Unweighted -> (Vec.ones m, 0)
  | Lewis ->
      let spp = Vec.map sqrt (Problem.phi'' problem x0) in
      let leverage_for ~p:_ d =
        leverage_oracle ?accountant ~config ~prng ~problem ~solver ~spp d
      in
      let w, steps =
        Lewis.compute_initial_weights ~leverage_for ~m ~n
          ~p_target:(p_lewis m) ~eta:config.lewis_eta ()
      in
      (Lewis.regularized w ~n ~m, steps)

let lp_solve ?accountant ?(config = default_config) ~prng ~problem ~solver ~x0
    ~eps () =
  if eps <= 0.0 then invalid_arg "Ipm.lp_solve: eps must be positive";
  if not (Problem.interior problem x0) then
    invalid_arg "Ipm.lp_solve: x0 must be strictly interior";
  Rounds.with_phase_opt accountant "ipm" @@ fun () ->
  let m = float_of_int (Problem.m problem) in
  let u = Problem.big_u problem ~x0 in
  let w, _ = initial_weights ?accountant ~config ~prng ~problem ~solver ~x0 () in
  (* Auxiliary cost making x0 exactly central at t = 1. *)
  let d = Vec.neg (Vec.mul w (Problem.phi' problem x0)) in
  let logm = log (Float.max m 2.0) in
  let t1 =
    config.t1_c /. ((m ** 1.5) *. u *. u *. (logm ** 4.0)) |> Float.max 1e-300
  in
  let t2 = 2.0 *. m /. eps in
  let eta1 = 1e-2 in
  let eta2 = eps /. (8.0 *. u *. u) in
  if config.verbose then
    Format.eprintf "[lp_solve] m=%g U=%.3g t1=%.3e t2=%.3e@." m u t1 t2;
  let x', w', trace1 =
    path_following ?accountant ~config ~prng ~problem ~solver ~x:x0 ~w
      ~t_start:1.0 ~t_end:t1 ~eta:eta1 ~cost:d ()
  in
  let x_final, _, trace2 =
    path_following ?accountant ~config ~prng ~problem ~solver ~x:x' ~w:w'
      ~t_start:t1 ~t_end:t2 ~eta:eta2 ~cost:problem.Problem.c ()
  in
  let trace =
    {
      iterations = trace1.iterations + trace2.iterations;
      centering_calls = trace1.centering_calls + trace2.centering_calls;
      rounds = (match accountant with Some a -> Rounds.rounds a | None -> 0);
      max_eq_residual = Float.max trace1.max_eq_residual trace2.max_eq_residual;
      final_delta = trace2.final_delta;
    }
  in
  (x_final, trace)
