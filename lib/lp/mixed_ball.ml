module Vec = Lbcc_linalg.Vec
module Rounds = Lbcc_net.Rounds

type result = {
  x : Vec.t;
  value : float;
  t : float;
  clamped : int;
  evaluations : int;
  rounds : int;
}

let sign v = if v > 0.0 then 1.0 else if v < 0.0 then -1.0 else 0.0

let feasible ?(tol = 1e-7) ~l x =
  let inf = Vec.max_elt (Vec.map2 (fun xi li -> Float.abs xi /. li) x l) in
  Vec.norm2 x +. inf <= 1.0 +. tol

(* Shared precomputation: coordinates sorted by |a_i|/l_i descending with
   prefix sums S_al, S_l2, S_a2 (index i = number of clamped coordinates). *)
type prep = {
  m : int;
  order : int array;
  s_al : float array; (* length m+1 *)
  s_l2 : float array;
  s_a2 : float array;
  a_norm2 : float; (* ||a||_2^2 *)
}

let prepare ~a ~l =
  let m = Vec.dim a in
  if Vec.dim l <> m then invalid_arg "Mixed_ball: dimension mismatch";
  Array.iter
    (fun li -> if li <= 0.0 then invalid_arg "Mixed_ball: l must be positive")
    l;
  let order = Array.init m Fun.id in
  let ratio i = Float.abs a.(i) /. l.(i) in
  Array.sort (fun i j -> Float.compare (ratio j) (ratio i)) order;
  let s_al = Array.make (m + 1) 0.0
  and s_l2 = Array.make (m + 1) 0.0
  and s_a2 = Array.make (m + 1) 0.0 in
  for pos = 1 to m do
    let i = order.(pos - 1) in
    s_al.(pos) <- s_al.(pos - 1) +. (Float.abs a.(i) *. l.(i));
    s_l2.(pos) <- s_l2.(pos - 1) +. (l.(i) *. l.(i));
    s_a2.(pos) <- s_a2.(pos - 1) +. (a.(i) *. a.(i))
  done;
  { m; order; s_al; s_l2; s_a2; a_norm2 = Vec.dot a a }

(* Objective of the clamp-form candidate with [i] clamped coordinates at
   split [t]; [-inf] when the 2-norm budget is exceeded. *)
let g_value prep ~i ~t =
  let rad = ((1.0 -. t) *. (1.0 -. t)) -. (t *. t *. prep.s_l2.(i)) in
  if rad < 0.0 then neg_infinity
  else
    (t *. prep.s_al.(i))
    +. (sqrt rad *. sqrt (Float.max 0.0 (prep.a_norm2 -. prep.s_a2.(i))))

(* The candidate itself (in the original coordinate order). *)
let candidate prep ~a ~l ~i ~t =
  let x = Vec.zeros prep.m in
  for pos = 0 to i - 1 do
    let j = prep.order.(pos) in
    x.(j) <- t *. sign a.(j) *. l.(j)
  done;
  let tail2 = Float.max 0.0 (prep.a_norm2 -. prep.s_a2.(i)) in
  if tail2 > 1e-300 then begin
    let rad =
      Float.max 0.0 (((1.0 -. t) *. (1.0 -. t)) -. (t *. t *. prep.s_l2.(i)))
    in
    let scale = sqrt (rad /. tail2) in
    for pos = i to prep.m - 1 do
      let j = prep.order.(pos) in
      x.(j) <- scale *. a.(j)
    done
  end;
  x

(* Max over t of g_i by golden-section search on the feasible interval
   [0, 1/(1 + sqrt(S_l2 i))]; g_i is concave there.  Returns (value, t) and
   counts evaluations. *)
let maximize_over_t prep ~i ~evals =
  let t_hi = 1.0 /. (1.0 +. sqrt prep.s_l2.(i)) in
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let lo = ref 0.0 and hi = ref t_hi in
  let f t =
    incr evals;
    g_value prep ~i ~t
  in
  let x1 = ref (!hi -. (phi *. (!hi -. !lo))) in
  let x2 = ref (!lo +. (phi *. (!hi -. !lo))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  for _ = 1 to 64 do
    if !f1 < !f2 then begin
      lo := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !lo +. (phi *. (!hi -. !lo));
      f2 := f !x2
    end
    else begin
      hi := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !hi -. (phi *. (!hi -. !lo));
      f1 := f !x1
    end
  done;
  let t = (!lo +. !hi) /. 2.0 in
  (g_value prep ~i ~t, t)

let best_result ?accountant ~a ~l ~prep ~evals ~candidates () =
  let best = ref (0.0, 0.0, 0) in
  List.iter
    (fun i ->
      let _, t = maximize_over_t prep ~i ~evals in
      let x = candidate prep ~a ~l ~i ~t in
      if feasible ~l x then begin
        let value = Vec.dot a x in
        let bv, _, _ = !best in
        if value > bv then best := (value, t, i)
      end)
    candidates;
  let value, t, i = !best in
  let x = candidate prep ~a ~l ~i ~t in
  let rounds =
    match accountant with
    | Some acc ->
        (* Each evaluation is one threshold broadcast plus one aggregation
           of three partial sums. *)
        let start = Rounds.checkpoint acc in
        for _ = 1 to !evals do
          Rounds.charge_broadcast acc ~label:"mixed-ball-query" ~bits:64;
          Rounds.charge_broadcast acc ~label:"mixed-ball-sums" ~bits:(3 * 64)
        done;
        Rounds.checkpoint acc - start
    | None -> 0
  in
  { x; value; t; clamped = i; evaluations = !evals; rounds }

let brute_force ~a ~l () =
  let prep = prepare ~a ~l in
  let evals = ref 0 in
  best_result ~a ~l ~prep ~evals ~candidates:(List.init (prep.m + 1) Fun.id) ()

let maximize ?accountant ~a ~l () =
  let prep = prepare ~a ~l in
  let evals = ref 0 in
  (* Ternary search over the clamp count i (the restricted maxima are
     unimodal across the ordered intervals because g is concave), followed
     by a local sweep to absorb plateaus at the boundary. *)
  let value_at = Hashtbl.create 32 in
  let m_of i =
    match Hashtbl.find_opt value_at i with
    | Some v -> v
    | None ->
        let v, t = maximize_over_t prep ~i ~evals in
        let x = candidate prep ~a ~l ~i ~t in
        let v = if feasible ~l x then v else neg_infinity in
        Hashtbl.replace value_at i (v, t);
        (v, t)
  in
  let lo = ref 0 and hi = ref prep.m in
  while !hi - !lo > 3 do
    let m1 = !lo + ((!hi - !lo) / 3) in
    let m2 = !hi - ((!hi - !lo) / 3) in
    if fst (m_of m1) < fst (m_of m2) then lo := m1 + 1 else hi := m2 - 1
  done;
  let around = List.init (!hi - !lo + 1) (fun d -> !lo + d) in
  let extra = [ 0; prep.m ] in
  best_result ?accountant ~a ~l ~prep ~evals
    ~candidates:(List.sort_uniq Int.compare (around @ extra))
    ()
