(* Spanners with probabilistic edges in the Broadcast CONGEST model.

   Shows the Section 3.1 primitive directly: for several topologies and
   stretch parameters, compute a spanner as a genuine message-passing
   vertex program, report size / stretch / rounds, and demonstrate the
   implicit communication of sampling results ([views_agree]).

   Run with:  dune exec examples/spanner_demo.exe *)

open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Paths = Lbcc_graph.Paths
module Spanner = Lbcc_spanner.Spanner

let demo name g k p_value =
  let m = Graph.m g in
  let p = Array.make m p_value in
  let r = Spanner.run ~prng:(Prng.create 11) ~graph:g ~p ~k () in
  let h = Graph.sub_edges g r.Spanner.fplus in
  let stretch =
    if p_value = 1.0 then Paths.stretch g h
    else begin
      (* Lemma 3.1 guarantee is w.r.t. the surviving graph F+ ∪ E''. *)
      let dead = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace dead e ()) r.Spanner.fminus;
      let surviving =
        List.filter (fun e -> not (Hashtbl.mem dead e)) (List.init m Fun.id)
      in
      Paths.stretch (Graph.sub_edges g surviving) h
    end
  in
  let out_deg = Spanner.out_degrees g r in
  Printf.printf
    "%-22s n=%4d m=%5d k=%d p=%.2f | |F+|=%5d |F-|=%5d stretch=%5.2f (<=%2d) \
     rounds=%5d maxdeg+=%3d agree=%b\n"
    name (Graph.n g) m k p_value (List.length r.Spanner.fplus)
    (List.length r.Spanner.fminus)
    stretch
    ((2 * k) - 1)
    r.Spanner.rounds
    (Array.fold_left Stdlib.max 0 out_deg)
    r.Spanner.views_agree

let () =
  Printf.printf "Baswana–Sen spanners with probabilistic edges (Section 3.1)\n\n";
  let p1 = Prng.create 1 in
  demo "complete graph" (Gen.complete p1 ~n:48 ~w_max:8) 2 1.0;
  demo "complete graph" (Gen.complete (Prng.create 1) ~n:48 ~w_max:8) 3 1.0;
  demo "dense ER" (Gen.erdos_renyi_connected (Prng.create 2) ~n:96 ~p:0.5 ~w_max:16) 3 1.0;
  demo "torus 12x12" (Gen.torus (Prng.create 3) ~rows:12 ~cols:12 ~w_max:4) 3 1.0;
  demo "geometric" (Gen.random_geometric (Prng.create 4) ~n:80 ~radius:0.35 ~w_max:8) 4 1.0;
  Printf.printf "\nwith ad-hoc sampling (each tried edge exists w.p. p):\n";
  demo "dense ER, p=0.75" (Gen.erdos_renyi_connected (Prng.create 5) ~n:96 ~p:0.5 ~w_max:16) 3 0.75;
  demo "dense ER, p=0.50" (Gen.erdos_renyi_connected (Prng.create 5) ~n:96 ~p:0.5 ~w_max:16) 3 0.5;
  demo "dense ER, p=0.25" (Gen.erdos_renyi_connected (Prng.create 5) ~n:96 ~p:0.5 ~w_max:16) 3 0.25;
  Printf.printf
    "\n'agree' certifies the paper's implicit communication: both endpoints\n\
     of every tried edge reached the same verdict without it ever being sent.\n"
