examples/electrical_grid.mli:
