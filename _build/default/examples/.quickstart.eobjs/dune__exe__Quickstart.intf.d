examples/quickstart.mli:
