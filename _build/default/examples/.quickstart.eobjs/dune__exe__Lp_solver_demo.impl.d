examples/lp_solver_demo.ml: Array Float Fun Lbcc_flow Lbcc_linalg Lbcc_lp Lbcc_util List Printf Prng
