examples/electrical_grid.ml: Array Float Hashtbl Lbcc_graph Lbcc_laplacian Lbcc_linalg Lbcc_util List Printf Prng
