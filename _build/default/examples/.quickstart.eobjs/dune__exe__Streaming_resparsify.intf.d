examples/streaming_resparsify.mli:
