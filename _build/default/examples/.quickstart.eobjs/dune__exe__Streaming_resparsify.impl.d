examples/streaming_resparsify.ml: Array Fun Lbcc_graph Lbcc_sparsifier Lbcc_util Printf Prng
