examples/lp_solver_demo.mli:
