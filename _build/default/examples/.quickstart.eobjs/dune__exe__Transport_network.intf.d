examples/transport_network.mli:
