examples/spanner_demo.ml: Array Fun Hashtbl Lbcc_graph Lbcc_spanner Lbcc_util List Printf Prng Stdlib
