examples/transport_network.ml: Array Lbcc_flow Lbcc_util Printf Prng Unix
