examples/spanner_demo.mli:
