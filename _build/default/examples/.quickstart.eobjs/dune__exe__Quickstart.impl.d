examples/quickstart.ml: Array Lbcc_core Lbcc_flow Lbcc_graph Lbcc_linalg Lbcc_util Printf Prng
