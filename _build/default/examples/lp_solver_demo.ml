(* The general LP solver (Theorem 1.4) on non-flow programs.

   Two box-constrained LPs with independently known optima:

   1. A fractional "budget" program:  min c^T x  over  { sum x_i = B,
      0 <= x_i <= 1 } — the optimum fills the cheapest coordinates greedily.
   2. A transportation plan, solved once through the Problem API directly
      and once through the combinatorial flow baseline.

   Both use the Lewis-weighted path following of Section 4 with the dense
   normal-equation backend; the same code path the min-cost-flow pipeline
   drives through the Laplacian solver.

   Run with:  dune exec examples/lp_solver_demo.exe *)

open Lbcc_util
module Vec = Lbcc_linalg.Vec
module Sparse = Lbcc_linalg.Sparse
module Problem = Lbcc_lp.Problem
module Ipm = Lbcc_lp.Ipm

let budget_lp () =
  let costs = [| 4.0; 1.0; 6.0; 2.0; 9.0; 3.0; 5.0; 7.0 |] in
  let m = Array.length costs in
  let budget = 3.5 in
  Printf.printf "== budget LP: pick %.1f units from %d unit boxes ==\n" budget m;
  let a = Sparse.of_triplets ~rows:m ~cols:1 (List.init m (fun i -> (i, 0, 1.0))) in
  let problem =
    Problem.make ~a ~b:[| budget |] ~c:costs ~lo:(Array.make m 0.0)
      ~hi:(Array.make m 1.0)
  in
  let x0 = Vec.create m (budget /. float_of_int m) in
  let solver = Problem.dense_normal_solver problem in
  let x, trace =
    Ipm.lp_solve ~prng:(Prng.create 1) ~problem ~solver ~x0 ~eps:0.01 ()
  in
  (* Greedy reference. *)
  let order = Array.init m Fun.id in
  Array.sort (fun i j -> compare costs.(i) costs.(j)) order;
  let remaining = ref budget and opt = ref 0.0 in
  Array.iter
    (fun i ->
      let take = Float.min 1.0 !remaining in
      remaining := !remaining -. take;
      opt := !opt +. (take *. costs.(i)))
    order;
  Printf.printf "IPM value %.4f vs greedy optimum %.4f (eps 0.01)\n" (Vec.dot costs x)
    !opt;
  Printf.printf "iterations %d, equality drift %.1e\n" trace.Ipm.iterations
    trace.Ipm.max_eq_residual;
  Array.iteri (fun i xi -> Printf.printf "  x%-2d cost %.0f -> %.3f\n" i costs.(i) xi) x

let transportation () =
  Printf.printf "\n== transportation plan via the flow pipeline ==\n";
  let supplies = [| 5; 7 |] and demands = [| 4; 3; 5 |] in
  let costs = [| [| 2; 4; 5 |]; [| 3; 1; 7 |] |] in
  let net = Lbcc_flow.Network.transportation ~supplies ~demands ~costs in
  let r = Lbcc_flow.Mcmf_lp.solve ~prng:(Prng.create 2) net in
  let base = Lbcc_flow.Mcmf.solve net in
  Printf.printf "IPM: shipped %d units at cost %d; baseline %d at %d; exact=%b\n"
    r.Lbcc_flow.Mcmf_lp.value r.Lbcc_flow.Mcmf_lp.cost base.Lbcc_flow.Mcmf.value
    base.Lbcc_flow.Mcmf.cost r.Lbcc_flow.Mcmf_lp.matches_baseline;
  (* Print the plan matrix (supplier x consumer shipments). *)
  let ns = Array.length supplies in
  Printf.printf "optimal plan (rows = suppliers, cols = consumers):\n";
  Array.iteri
    (fun arc_id (a : Lbcc_flow.Network.arc) ->
      let f = r.Lbcc_flow.Mcmf_lp.flow.(arc_id) in
      if a.src >= 1 && a.src <= ns && f > 0.5 then
        Printf.printf "  supplier %d -> consumer %d : %.0f units @ %d\n" (a.src - 1)
          (a.dst - 1 - ns) f a.cost)
    net.Lbcc_flow.Network.arcs

let () =
  budget_lp ();
  transportation ()
