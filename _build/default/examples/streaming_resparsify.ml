(* Maintaining a sparsifier of a growing graph by resparsification.

   The Kyng–Pachocki–Peng–Sachdeva framework behind Theorem 3.4 is a
   *resparsification* analysis: sparsifying a union of sparsifiers stays
   spectrally faithful, with errors composing multiplicatively.  This demo
   processes a graph arriving in batches of edges: instead of re-running
   the sparsifier on everything seen so far, it keeps a compressed sketch
   and re-sparsifies [sketch ∪ new batch] — the sketch stays small while
   the accumulated input keeps growing.

   Run with:  dune exec examples/streaming_resparsify.exe *)

open Lbcc_util
module Graph = Lbcc_graph.Graph
module Sparsify = Lbcc_sparsifier.Sparsify
module Certify = Lbcc_sparsifier.Certify

let () =
  let n = 96 in
  let batches = 6 in
  let prng = Prng.create 2024 in
  (* The full stream: a dense graph revealed in random batches. *)
  let full = Lbcc_graph.Gen.complete prng ~n ~w_max:4 in
  let order = Array.init (Graph.m full) Fun.id in
  Prng.shuffle prng order;
  let per_batch = Graph.m full / batches in
  Printf.printf
    "streaming %d edges over %d vertices in %d batches of ~%d edges\n\n"
    (Graph.m full) n batches per_batch;
  Printf.printf "%6s | %9s %9s | %9s %9s\n" "batch" "seen m" "sketch m"
    "eps(seen)" "compress";

  let sketch = ref (Graph.create ~n []) in
  let seen = ref (Graph.create ~n []) in
  for b = 0 to batches - 1 do
    let from = b * per_batch in
    let upto = if b = batches - 1 then Graph.m full - 1 else from + per_batch - 1 in
    let batch_ids = Array.to_list (Array.sub order from (upto - from + 1)) in
    let batch = Graph.sub_edges full batch_ids in
    seen := Graph.coalesce (Graph.union !seen batch);
    (* Resparsify sketch ∪ batch, never the full accumulated graph. *)
    let r =
      Sparsify.resparsify
        ~prng:(Prng.create (100 + b))
        ~graphs:[ !sketch; batch ] ~epsilon:0.5 ~t:4 ~k:5 ()
    in
    sketch := r.Sparsify.sparsifier;
    let eps =
      if Graph.is_connected !seen then
        (Certify.exact !seen !sketch).Certify.epsilon_achieved
      else nan
    in
    Printf.printf "%6d | %9d %9d | %9.3f %8.1f%%\n" (b + 1) (Graph.m !seen)
      (Graph.m !sketch) eps
      (100.0 *. float_of_int (Graph.m !sketch) /. float_of_int (Graph.m !seen))
  done;
  Printf.printf
    "\nthe sketch answers Laplacian queries for the whole stream: the\n\
     final certified eps bounds x^T L_seen x vs x^T L_sketch x for all x.\n\
     (with the paper's bundle size t = Theta(log^2 n / eps^2) the certified\n\
     eps would stay fixed across batches — Theorem 3.4; the calibrated t\n\
     trades accumulated error for the compression visible above.)\n"
