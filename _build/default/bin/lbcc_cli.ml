(* Command-line front end: generate inputs, run the three main algorithms,
   inspect round counts.

     lbcc sparsify --vertices 64 --family er --epsilon 0.5
     lbcc solve    --vertices 64 --family grid --eps 1e-8
     lbcc spanner  --vertices 96 --stretch 3 --edge-prob 0.5
     lbcc flow     --vertices 8 --density 0.3 --max-capacity 6 --max-cost 5
*)

open Cmdliner
open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Vec = Lbcc_linalg.Vec
module Lbcc = Lbcc_core.Lbcc

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let n_arg =
  Arg.(value & opt int 64 & info [ "n"; "vertices" ] ~docv:"N" ~doc:"Number of vertices.")

let family_arg =
  let families = [ ("er", `Er); ("grid", `Grid); ("complete", `Complete);
                   ("torus", `Torus); ("geometric", `Geometric); ("barbell", `Barbell) ] in
  Arg.(
    value
    & opt (enum families) `Er
    & info [ "family" ] ~docv:"FAMILY"
        ~doc:"Graph family: er, grid, complete, torus, geometric, barbell.")

let w_max_arg =
  Arg.(value & opt int 8 & info [ "w-max" ] ~docv:"W" ~doc:"Maximum edge weight.")

let make_graph family seed n w_max =
  let prng = Prng.create seed in
  match family with
  | `Er -> Gen.erdos_renyi_connected prng ~n ~p:0.3 ~w_max
  | `Grid ->
      let side = Stdlib.max 2 (int_of_float (sqrt (float_of_int n))) in
      Gen.grid prng ~rows:side ~cols:side ~w_max
  | `Complete -> Gen.complete prng ~n ~w_max
  | `Torus ->
      let side = Stdlib.max 3 (int_of_float (sqrt (float_of_int n))) in
      Gen.torus prng ~rows:side ~cols:side ~w_max
  | `Geometric -> Gen.random_geometric prng ~n ~radius:0.3 ~w_max
  | `Barbell -> Gen.barbell prng ~clique:(Stdlib.max 2 (n / 3)) ~path:(Stdlib.max 1 (n / 3)) ~w_max

let pp_rounds (r : Lbcc.rounds_report) =
  Printf.printf "rounds: %d total (B = %d bits/message)\n" r.Lbcc.total r.Lbcc.bandwidth;
  List.iter (fun (label, rds) -> Printf.printf "  %-28s %d\n" label rds) r.Lbcc.breakdown

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)

let sparsify_cmd =
  let epsilon =
    Arg.(value & opt float 0.5 & info [ "epsilon" ] ~doc:"Target spectral error.")
  in
  let t = Arg.(value & opt (some int) None & info [ "t"; "bundle" ] ~doc:"Bundle size override.") in
  let run seed n family w_max epsilon t =
    let g = make_graph family seed n w_max in
    Printf.printf "input: n=%d m=%d\n" (Graph.n g) (Graph.m g);
    let r = Lbcc.sparsify ~seed ~epsilon ?t g in
    Printf.printf "sparsifier: m=%d  certified eps=%.4f  max out-degree=%d\n"
      (Graph.m r.Lbcc.sparsifier) r.Lbcc.epsilon_achieved r.Lbcc.out_degree_max;
    pp_rounds r.Lbcc.rounds
  in
  Cmd.v
    (Cmd.info "sparsify" ~doc:"Spectral sparsification (Theorem 1.2)")
    Term.(const run $ seed_arg $ n_arg $ family_arg $ w_max_arg $ epsilon $ t)

let solve_cmd =
  let eps = Arg.(value & opt float 1e-8 & info [ "eps" ] ~doc:"Solution accuracy.") in
  let run seed n family w_max eps =
    let g = make_graph family seed n w_max in
    let nv = Graph.n g in
    Printf.printf "input: n=%d m=%d\n" nv (Graph.m g);
    let prng = Prng.create (seed + 1) in
    let b = Vec.mean_center (Vec.init nv (fun _ -> Prng.gaussian prng)) in
    let r = Lbcc.solve_laplacian ~seed ~eps g ~b in
    Printf.printf
      "solved L x = b: residual %.2e in %d iterations\n\
       rounds: %d preprocessing + %d per solve\n"
      r.Lbcc.residual r.Lbcc.iterations r.Lbcc.preprocessing_rounds r.Lbcc.solve_rounds
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Laplacian solving (Theorem 1.3)")
    Term.(const run $ seed_arg $ n_arg $ family_arg $ w_max_arg $ eps)

let spanner_cmd =
  let k = Arg.(value & opt int 3 & info [ "k"; "stretch" ] ~doc:"Stretch parameter (2k-1).") in
  let edge_prob =
    Arg.(value & opt float 1.0 & info [ "edge-prob" ] ~doc:"Edge survival probability.")
  in
  let run seed n family w_max k edge_prob =
    let g = make_graph family seed n w_max in
    Printf.printf "input: n=%d m=%d\n" (Graph.n g) (Graph.m g);
    let p = Array.make (Graph.m g) edge_prob in
    let r = Lbcc_spanner.Spanner.run ~prng:(Prng.create seed) ~graph:g ~p ~k () in
    let h = Graph.sub_edges g r.Lbcc_spanner.Spanner.fplus in
    Printf.printf
      "spanner: |F+|=%d |F-|=%d  stretch=%.2f (bound %d)  rounds=%d  views agree=%b\n"
      (List.length r.Lbcc_spanner.Spanner.fplus)
      (List.length r.Lbcc_spanner.Spanner.fminus)
      (Lbcc_graph.Paths.stretch g h)
      ((2 * k) - 1)
      r.Lbcc_spanner.Spanner.rounds r.Lbcc_spanner.Spanner.views_agree
  in
  Cmd.v
    (Cmd.info "spanner" ~doc:"Baswana-Sen spanner with probabilistic edges (Section 3.1)")
    Term.(const run $ seed_arg $ n_arg $ family_arg $ w_max_arg $ k $ edge_prob)

let flow_cmd =
  let density = Arg.(value & opt float 0.3 & info [ "density" ] ~doc:"Arc density.") in
  let max_capacity =
    Arg.(value & opt int 6 & info [ "max-capacity" ] ~doc:"Maximum arc capacity.")
  in
  let max_cost = Arg.(value & opt int 5 & info [ "max-cost" ] ~doc:"Maximum arc cost.") in
  let input =
    Arg.(
      value
      & opt (some file) None
      & info [ "input" ] ~docv:"FILE"
          ~doc:"Read the network from FILE (see Network_io format) instead of \
                generating one.")
  in
  let output_dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "output-dot" ] ~docv:"FILE"
          ~doc:"Write the network with the optimal flow as Graphviz DOT.")
  in
  let run seed n density max_capacity max_cost input output_dot =
    let net =
      match input with
      | Some path -> Lbcc_flow.Network_io.load path
      | None ->
          Lbcc_flow.Network.random (Prng.create seed) ~n ~density ~max_capacity
            ~max_cost
    in
    Printf.printf "network: n=%d m=%d\n" net.Lbcc_flow.Network.n
      (Lbcc_flow.Network.m net);
    let r = Lbcc.min_cost_max_flow ~seed net in
    Printf.printf
      "min-cost max-flow: value=%d cost=%d  exact vs baseline=%b\n\
       IPM iterations=%d  total rounds=%d\n"
      r.Lbcc.value r.Lbcc.cost r.Lbcc.exact r.Lbcc.ipm_iterations
      r.Lbcc.rounds.Lbcc.total;
    match output_dot with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (Lbcc_flow.Network_io.to_dot ~flow:r.Lbcc.flow net));
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "flow" ~doc:"Exact minimum-cost maximum flow (Theorem 1.1)")
    Term.(
      const run $ seed_arg $ n_arg $ density $ max_capacity $ max_cost $ input
      $ output_dot)

let gen_cmd =
  let kind =
    Arg.(
      value
      & opt (enum [ ("graph", `G); ("network", `N) ]) `G
      & info [ "kind" ] ~doc:"What to generate: graph or network.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "output" ] ~docv:"FILE" ~doc:"Output file path.")
  in
  let run seed n family w_max kind out =
    match kind with
    | `G ->
        let g = make_graph family seed n w_max in
        Lbcc_graph.Io.save_graph out g;
        Printf.printf "wrote graph n=%d m=%d to %s\n" (Graph.n g) (Graph.m g) out
    | `N ->
        let net =
          Lbcc_flow.Network.random (Prng.create seed) ~n ~density:0.3
            ~max_capacity:w_max ~max_cost:w_max
        in
        Lbcc_flow.Network_io.save out net;
        Printf.printf "wrote network n=%d m=%d to %s\n" net.Lbcc_flow.Network.n
          (Lbcc_flow.Network.m net) out
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a graph or flow network file")
    Term.(const run $ seed_arg $ n_arg $ family_arg $ w_max_arg $ kind $ out)

let main_cmd =
  let doc = "The Laplacian paradigm in the Broadcast Congested Clique" in
  Cmd.group
    (Cmd.info "lbcc" ~version:Lbcc.version ~doc)
    [ sparsify_cmd; solve_cmd; spanner_cmd; flow_cmd; gen_cmd ]

let () = exit (Cmd.eval main_cmd)
