(** Leader election by min-id flooding.

    The primitive behind Algorithm 6's "declare the vertex with the highest
    ID the leader": in the Broadcast Congested Clique one round suffices;
    in Broadcast CONGEST the extremal id floods in diameter rounds.  We
    elect the *minimum* id (any fixed extremum works). *)

type result = {
  leader : int;
  rounds : int;
  supersteps : int;
}

val run :
  ?accountant:Lbcc_net.Rounds.t ->
  model:Lbcc_net.Model.t ->
  graph:Lbcc_graph.Graph.t ->
  unit ->
  result
(** All vertices agree on the returned leader (asserted internally).
    @raise Invalid_argument on a unicast model or a disconnected graph
    under the [Input_graph] topology. *)
