lib/dist/bfs.mli: Lbcc_graph Lbcc_net
