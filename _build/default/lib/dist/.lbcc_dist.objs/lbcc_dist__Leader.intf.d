lib/dist/leader.mli: Lbcc_graph Lbcc_net
