lib/dist/sssp.mli: Lbcc_graph Lbcc_net
