lib/dist/sssp.ml: Array Lbcc_graph Lbcc_net List
