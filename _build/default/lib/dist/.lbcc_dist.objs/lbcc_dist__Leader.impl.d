lib/dist/leader.ml: Array Lbcc_graph Lbcc_net Lbcc_util List Stdlib
