lib/dist/bfs.ml: Array Bits Lbcc_graph Lbcc_net Lbcc_util
