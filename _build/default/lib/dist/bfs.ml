open Lbcc_util
module Engine = Lbcc_net.Engine
module Graph = Lbcc_graph.Graph

type state = {
  sdist : int;
  sparent : int;
  announced : bool;
}

type result = {
  dist : int array;
  parent : int array;
  rounds : int;
  supersteps : int;
}

let run ?accountant ~model ~graph ~source () =
  let n = Graph.n graph in
  if source < 0 || source >= n then invalid_arg "Bfs.run: source out of range";
  let init v =
    if v = source then { sdist = 0; sparent = -1; announced = false }
    else { sdist = max_int; sparent = -1; announced = false }
  in
  let step ~round:_ ~vertex:_ (st : state) inbox =
    if st.sdist < max_int then
      if st.announced then (st, None, false)
      else ({ st with announced = true }, Some st.sdist, true)
    else begin
      (* Adopt the first (lowest-id) announcer as parent and announce the
         new distance in the same superstep. *)
      match inbox with
      | (sender, d) :: _ ->
          ({ sdist = d + 1; sparent = sender; announced = true }, Some (d + 1), true)
      | [] -> (st, None, true)
    end
  in
  let states, stats =
    Engine.run ?accountant ~label:"bfs" ~model ~graph
      ~size_bits:(fun d -> Bits.int_bits d)
      ~init ~step
      ~max_supersteps:(2 * (n + 1))
      ()
  in
  {
    dist = Array.map (fun s -> s.sdist) states;
    parent = Array.map (fun s -> s.sparent) states;
    rounds = stats.Engine.rounds;
    supersteps = stats.Engine.supersteps;
  }
