module Engine = Lbcc_net.Engine
module Graph = Lbcc_graph.Graph
module Model = Lbcc_net.Model

type state = {
  best : int;
  changed : bool;
  idle : int;
}

type result = {
  leader : int;
  rounds : int;
  supersteps : int;
}

let run ?accountant ~model ~graph () =
  let n = Graph.n graph in
  if n = 0 then invalid_arg "Leader.run: empty graph";
  if model.Model.topology = Model.Input_graph && not (Graph.is_connected graph)
  then invalid_arg "Leader.run: graph must be connected";
  let init v = { best = v; changed = true; idle = 0 } in
  (* In the clique topology one broadcast round suffices: every vertex
     hears every id and can halt immediately.  On the input graph, flood
     the smallest id and halt after [n] quiet supersteps (a vertex cannot
     locally distinguish "stable" from "the wave is still far away"
     earlier than that). *)
  let step =
    match model.Model.topology with
    | Model.Clique ->
        fun ~round ~vertex:_ (st : state) inbox ->
          if round = 1 then (st, Some st.best, true)
          else begin
            let best =
              List.fold_left (fun acc (_, b) -> Stdlib.min acc b) st.best inbox
            in
            ({ st with best }, None, false)
          end
    | Model.Input_graph ->
        fun ~round:_ ~vertex:_ (st : state) inbox ->
          let best =
            List.fold_left (fun acc (_, b) -> Stdlib.min acc b) st.best inbox
          in
          let changed = best < st.best in
          let st = { best; changed; idle = (if changed then 0 else st.idle + 1) } in
          if st.changed || st.idle <= 1 then (st, Some st.best, st.idle < n)
          else (st, None, st.idle < n)
  in
  let states, stats =
    Engine.run ?accountant ~label:"leader" ~model ~graph
      ~size_bits:(fun _ -> Lbcc_util.Bits.id_bits ~n)
      ~init ~step
      ~max_supersteps:(2 * (n + 2))
      ()
  in
  let leader = states.(0).best in
  Array.iter (fun s -> assert (s.best = leader)) states;
  { leader; rounds = stats.Engine.rounds; supersteps = stats.Engine.supersteps }
