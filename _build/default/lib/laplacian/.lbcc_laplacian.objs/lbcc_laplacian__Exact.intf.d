lib/laplacian/exact.mli: Lbcc_graph Lbcc_linalg
