lib/laplacian/gremban.mli: Lbcc_graph Lbcc_linalg
