lib/laplacian/solver.ml: Bits Exact Float Lbcc_graph Lbcc_linalg Lbcc_net Lbcc_sparsifier Lbcc_util Prng
