lib/laplacian/exact.ml: Array Float Lbcc_graph Lbcc_linalg List
