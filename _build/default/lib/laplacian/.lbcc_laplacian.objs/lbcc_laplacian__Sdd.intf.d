lib/laplacian/sdd.mli: Lbcc_linalg Lbcc_net Lbcc_util
