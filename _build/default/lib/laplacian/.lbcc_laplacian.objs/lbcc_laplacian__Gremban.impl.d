lib/laplacian/gremban.ml: Array Exact Float Lbcc_graph Lbcc_linalg
