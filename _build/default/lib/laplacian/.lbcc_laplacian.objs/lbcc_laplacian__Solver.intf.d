lib/laplacian/solver.mli: Lbcc_graph Lbcc_linalg Lbcc_net Lbcc_util Prng
