lib/laplacian/sdd.ml: Array Float Gremban Lbcc_graph Lbcc_linalg Solver
