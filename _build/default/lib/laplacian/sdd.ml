module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense
module Graph = Lbcc_graph.Graph

type t = {
  matrix : Dense.t;
  n : int;
  solver : Solver.t;
}

type result = {
  solution : Vec.t;
  iterations : int;
  rounds : int;
  residual : float;
}

let preprocess ?accountant ?t ?k ~prng m =
  let vg = Gremban.virtual_graph m in
  if not (Graph.is_connected vg) then
    invalid_arg "Sdd.preprocess: virtual graph is disconnected; solve blockwise";
  let solver = Solver.preprocess ?accountant ?t ?k ~prng ~graph:vg () in
  { matrix = m; n = Dense.rows m; solver }

let solve ?accountant t ~y ~eps =
  if Vec.dim y <> t.n then invalid_arg "Sdd.solve: dimension mismatch";
  let b = Array.init (2 * t.n) (fun i -> if i < t.n then y.(i) else -.y.(i - t.n)) in
  let r = Solver.solve ?accountant t.solver ~b ~eps in
  let x12 = r.Solver.solution in
  let x = Array.init t.n (fun i -> (x12.(i) -. x12.(t.n + i)) /. 2.0) in
  let residual =
    Vec.norm2 (Vec.sub y (Dense.matvec t.matrix x))
    /. Float.max (Vec.norm2 y) 1e-300
  in
  (* Each virtual round is simulated by two real rounds (Lemma 5.1). *)
  {
    solution = x;
    iterations = r.Solver.iterations;
    rounds = 2 * r.Solver.rounds;
    residual;
  }

let solve_once ?accountant ~prng m ~y ~eps =
  solve ?accountant (preprocess ?accountant ~prng m) ~y ~eps
