module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense
module Graph = Lbcc_graph.Graph

let is_sdd_nonpositive_offdiag ?(tol = 1e-9) m =
  Dense.is_symmetric ~tol m
  &&
  let n = Dense.rows m in
  let ok = ref true in
  for u = 0 to n - 1 do
    let off = ref 0.0 in
    for v = 0 to n - 1 do
      if v <> u then begin
        let x = Dense.get m u v in
        if x > tol then ok := false;
        off := !off +. Float.abs x
      end
    done;
    if Dense.get m u u < !off -. tol then ok := false
  done;
  !ok

let virtual_graph m =
  if not (is_sdd_nonpositive_offdiag m) then
    invalid_arg "Gremban.virtual_graph: matrix is not SDD with nonpositive off-diagonals";
  let n = Dense.rows m in
  let edges = ref [] in
  (* Off-diagonal entries: edges within each copy. *)
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let x = Dense.get m u v in
      if x < 0.0 then begin
        edges := { Graph.u; v; w = -.x } :: !edges;
        edges := { Graph.u = n + u; v = n + v; w = -.x } :: !edges
      end
    done
  done;
  (* Diagonal slack: cross edges u <-> u+n of weight C2(u,u)/2. *)
  let any_slack = ref false in
  for u = 0 to n - 1 do
    let off = ref 0.0 in
    for v = 0 to n - 1 do
      if v <> u then off := !off +. Float.abs (Dense.get m u v)
    done;
    let slack = Dense.get m u u -. !off in
    if slack > 1e-12 then begin
      any_slack := true;
      edges := { Graph.u; v = n + u; w = slack /. 2.0 } :: !edges
    end
  done;
  if not !any_slack then
    invalid_arg
      "Gremban.virtual_graph: zero slack everywhere — the matrix is a \
       Laplacian, solve it directly";
  Graph.create ~n:(2 * n) !edges

let solve_with ~laplacian_solve m y =
  let n = Dense.rows m in
  if Vec.dim y <> n then invalid_arg "Gremban.solve: dimension mismatch";
  let g = virtual_graph m in
  let b = Array.init (2 * n) (fun i -> if i < n then y.(i) else -.y.(i - n)) in
  let x12 = laplacian_solve g b in
  Array.init n (fun i -> (x12.(i) -. x12.(n + i)) /. 2.0)

let solve m y = solve_with ~laplacian_solve:(fun g b -> Exact.solve_graph g b) m y
