(** Gremban's reduction from SDD systems to Laplacian systems (Section 5,
    following Kelner et al.'s notation).

    A symmetric diagonally dominant matrix [M] with nonpositive off-diagonal
    entries splits as [M = C1 + C2 + M_n] where [C1(u,u) = sum_v |M(u,v)|]
    over off-diagonals, [M_n] is the off-diagonal part and [C2 >= 0] the
    diagonal slack.  The doubled Laplacian

    {[ L = [ C1 + C2/2 + M_n   -C2/2          ]
           [ -C2/2             C1 + C2/2 + M_n ] ]}

    is the Laplacian of a virtual graph on [2n] vertices; solving
    [L (x1, x2) = (y, -y)] yields [x = (x1 - x2)/2] with [M x = y].  In the
    Broadcast Congested Clique each real vertex simulates its two virtual
    copies, so rounds double (Lemma 5.1). *)

module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense
module Graph = Lbcc_graph.Graph

val is_sdd_nonpositive_offdiag : ?tol:float -> Dense.t -> bool
(** Symmetric, diagonally dominant, with all off-diagonal entries [<= 0]. *)

val virtual_graph : Dense.t -> Graph.t
(** The doubled graph whose Laplacian is [L] above.
    @raise Invalid_argument if [is_sdd_nonpositive_offdiag] fails, or if the
    matrix has zero slack everywhere and the reduction would disconnect
    (in that case the input is itself a Laplacian: solve it directly). *)

val solve : Dense.t -> Vec.t -> Vec.t
(** Exact solve of [M x = y] through the reduction (reference path). *)

val solve_with :
  laplacian_solve:(Graph.t -> Vec.t -> Vec.t) -> Dense.t -> Vec.t -> Vec.t
(** Same, but delegating the doubled Laplacian system to the given solver —
    e.g. the Theorem 1.3 solver — as the min-cost-flow pipeline does. *)
