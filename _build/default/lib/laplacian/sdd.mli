(** High-level SDD solving in the Broadcast Congested Clique.

    Combines Gremban's reduction with the Theorem 1.3 Laplacian solver:
    the "standard reduction from SDD systems to Laplacian systems, which
    also applies in the Broadcast Congested Clique" used by Theorem 1.1's
    proof (Section 5).  Each real vertex simulates its two virtual copies,
    doubling the round count. *)

module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense

type t
(** A preprocessed SDD system (virtual graph sparsified and factored). *)

type result = {
  solution : Vec.t;
  iterations : int;
  rounds : int;  (** rounds charged for this solve (virtual rounds x2) *)
  residual : float;  (** measured [||y - M x|| / ||y||] *)
}

val preprocess :
  ?accountant:Lbcc_net.Rounds.t ->
  ?t:int ->
  ?k:int ->
  prng:Lbcc_util.Prng.t ->
  Dense.t ->
  t
(** [preprocess m] for a symmetric diagonally dominant [m] with nonpositive
    off-diagonal entries and at least one vertex of positive slack.
    @raise Invalid_argument if [m] is not SDD with nonpositive
    off-diagonals, or if the reduction yields a disconnected virtual graph
    (solve such systems blockwise). *)

val solve :
  ?accountant:Lbcc_net.Rounds.t -> t -> y:Vec.t -> eps:float -> result
(** [solve t ~y ~eps] returns [x] with [M x ≈ y]. *)

val solve_once :
  ?accountant:Lbcc_net.Rounds.t ->
  prng:Lbcc_util.Prng.t ->
  Dense.t ->
  y:Vec.t ->
  eps:float ->
  result
(** One-shot [preprocess] + [solve]. *)
