(** The message-passing models of the paper (Section 2.1).

    All four models proceed in synchronous rounds with bandwidth
    [B = Theta(log n)] bits per message.  They differ in topology
    (communication along input-graph edges vs. all-to-all) and in whether a
    vertex may send distinct messages to distinct neighbors (unicast) or must
    send the same message to all (broadcast). *)

type topology = Input_graph | Clique
type discipline = Unicast | Broadcast

type t = { topology : topology; discipline : discipline }

val congest : t
val broadcast_congest : t
val congested_clique : t
val broadcast_congested_clique : t

val bandwidth : n:int -> int
(** The per-message bandwidth [B] in bits for an [n]-vertex network:
    [2 * ceil(log2 n)], i.e. [Theta(log n)] with the constant the paper's
    messages (an ID plus a small tag) need. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
