open Lbcc_util

type t = {
  bandwidth : int;
  mutable total : int;
  tally : (string, int ref) Hashtbl.t;
  mutable order : string list; (* reversed first-charge order *)
}

let create ~bandwidth =
  if bandwidth < 1 then invalid_arg "Rounds.create: bandwidth must be >= 1";
  { bandwidth; total = 0; tally = Hashtbl.create 16; order = [] }

let bandwidth t = t.bandwidth

let charge t ~label ~rounds =
  if rounds < 0 then invalid_arg "Rounds.charge: negative rounds";
  t.total <- t.total + rounds;
  match Hashtbl.find_opt t.tally label with
  | Some r -> r := !r + rounds
  | None ->
      Hashtbl.add t.tally label (ref rounds);
      t.order <- label :: t.order

let charge_broadcast t ~label ~bits =
  let rounds = Stdlib.max 1 (Bits.ceil_div (Stdlib.max 1 bits) t.bandwidth) in
  charge t ~label ~rounds

let charge_vector t ~label ~entry_bits = charge_broadcast t ~label ~bits:entry_bits

let rounds t = t.total

let breakdown t =
  List.rev_map (fun label -> (label, !(Hashtbl.find t.tally label))) t.order

let reset t =
  t.total <- 0;
  Hashtbl.reset t.tally;
  t.order <- []

let checkpoint t = t.total

let pp ppf t =
  Format.fprintf ppf "@[<v>rounds total=%d (B=%d bits)@," t.total t.bandwidth;
  List.iter (fun (l, r) -> Format.fprintf ppf "  %-32s %d@," l r) (breakdown t);
  Format.fprintf ppf "@]"
