lib/net/rounds.ml: Bits Format Hashtbl Lbcc_util List Stdlib
