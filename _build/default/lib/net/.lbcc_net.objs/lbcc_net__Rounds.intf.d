lib/net/rounds.mli: Format
