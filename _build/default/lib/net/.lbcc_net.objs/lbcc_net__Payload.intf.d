lib/net/payload.mli:
