lib/net/engine.mli: Lbcc_graph Model Rounds
