lib/net/payload.ml: Bits Float Lbcc_util List Stdlib
