lib/net/model.ml: Format Lbcc_util
