lib/net/engine.ml: Array Fun Hashtbl Lbcc_graph Lbcc_util List Model Rounds Stdlib
