type topology = Input_graph | Clique
type discipline = Unicast | Broadcast

type t = { topology : topology; discipline : discipline }

let congest = { topology = Input_graph; discipline = Unicast }
let broadcast_congest = { topology = Input_graph; discipline = Broadcast }
let congested_clique = { topology = Clique; discipline = Unicast }
let broadcast_congested_clique = { topology = Clique; discipline = Broadcast }

let bandwidth ~n = 2 * Lbcc_util.Bits.id_bits ~n

let name t =
  match (t.topology, t.discipline) with
  | Input_graph, Unicast -> "CONGEST"
  | Input_graph, Broadcast -> "Broadcast CONGEST"
  | Clique, Unicast -> "Congested Clique"
  | Clique, Broadcast -> "Broadcast Congested Clique"

let pp ppf t = Format.pp_print_string ppf (name t)
