(** Bit-size computation for simulated message payloads.

    A payload is a small algebraic description of a message's fields; the
    engine and the accountant charge rounds from its [size].  Vertex
    identifiers are charged [ceil(log2 n)] bits, integers their binary
    magnitude plus sign, edge weights either their integer size or a full
    double if fractional, and tags a constant number of bits distinguishing
    message kinds. *)

type field =
  | Tag of int (** number of distinct alternatives the tag selects among *)
  | Vertex_id of int (** [n], the vertex-id universe *)
  | Int of int (** the integer value carried *)
  | Weight of float (** an edge weight / numeric value *)
  | Bitfield of int (** raw bit count *)

type t = field list

val size : t -> int
(** Total bits of a payload; at least 1. *)

val weight_bits : float -> int
(** Bits charged for a weight: [int_bits w] when [w] is integral,
    [Bits.float_bits ()] otherwise. *)
