open Lbcc_util

type field =
  | Tag of int
  | Vertex_id of int
  | Int of int
  | Weight of float
  | Bitfield of int

type t = field list

let weight_bits w =
  if Float.is_integer w && Float.abs w < 1e15 then Bits.int_bits (int_of_float w)
  else Bits.float_bits ()

let field_size = function
  | Tag alternatives -> Bits.ceil_log2 (Stdlib.max 2 alternatives)
  | Vertex_id n -> Bits.id_bits ~n
  | Int v -> Bits.int_bits v
  | Weight w -> weight_bits w
  | Bitfield b -> Stdlib.max 0 b

let size t = Stdlib.max 1 (List.fold_left (fun acc f -> acc + field_size f) 0 t)
