(** Round accountant.

    Round complexity is the metric the paper proves bounds on, so it is a
    first-class runtime value here: every distributed routine threads an
    accountant and charges it for each communication superstep.  A superstep
    in which the largest broadcast is [s] bits costs [ceil(s/B)] rounds
    (the synchronous lockstep cost the paper uses, e.g. the
    "[1 + log W / log n] rounds" per spanner message).

    Charges carry string labels so experiments can report per-phase
    breakdowns. *)

type t

val create : bandwidth:int -> t
(** [create ~bandwidth:b] with [b >= 1] bits per message per round. *)

val bandwidth : t -> int

val charge : t -> label:string -> rounds:int -> unit
(** Charge a fixed number of rounds. *)

val charge_broadcast : t -> label:string -> bits:int -> unit
(** One synchronous broadcast superstep whose largest message has [bits]
    bits: costs [max 1 (ceil(bits/B))] rounds. *)

val charge_vector : t -> label:string -> entry_bits:int -> unit
(** Exchange of a distributed vector, one coordinate per vertex, each entry
    [entry_bits] bits: everyone broadcasts simultaneously, so this is a
    single broadcast superstep. *)

val rounds : t -> int
(** Total rounds charged so far. *)

val breakdown : t -> (string * int) list
(** Rounds per label, in first-charge order. *)

val reset : t -> unit

val checkpoint : t -> int
(** Current total, for measuring a subcomputation as a difference. *)

val pp : Format.formatter -> t -> unit
