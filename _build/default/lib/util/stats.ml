type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n <= 1 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty array";
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = quantile xs 0.5;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" s.count
    s.mean s.stddev s.min s.median s.max

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys || n < 2 then
    invalid_arg "Stats.linear_fit: need two arrays of equal length >= 2";
  let fx = mean xs and fy = mean ys in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 1 do
    num := !num +. ((xs.(i) -. fx) *. (ys.(i) -. fy));
    den := !den +. ((xs.(i) -. fx) *. (xs.(i) -. fx))
  done;
  let slope = if !den = 0.0 then 0.0 else !num /. !den in
  (slope, fy -. (slope *. fx))

let scaling_exponent ns ys =
  let lx = Array.map log ns and ly = Array.map log ys in
  fst (linear_fit lx ly)
