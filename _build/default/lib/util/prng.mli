(** Deterministic pseudo-random number generation.

    All randomized algorithms in this repository take an explicit generator so
    that every experiment is reproducible from a single integer seed.  The
    implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): fast,
    statistically solid for simulation purposes, and trivially splittable,
    which we use to hand independent streams to independent simulated
    vertices. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    (for simulation purposes) independent of the remainder of [t]'s. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val bits : t -> int -> int
(** [bits t n] returns [n] uniform random bits packed in an [int];
    requires [0 <= n <= 62]. *)

val sign : t -> float
(** Uniform in [{ -1.; +1. }]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
