lib/util/heap.mli:
