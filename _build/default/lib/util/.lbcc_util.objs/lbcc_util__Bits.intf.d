lib/util/bits.mli:
