lib/util/prng.mli:
