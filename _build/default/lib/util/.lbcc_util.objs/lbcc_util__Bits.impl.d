lib/util/bits.ml:
