(** Bit-size accounting for simulated messages.

    The models charge one round per [B = Theta(log n)] bits broadcast; these
    helpers compute how many bits a payload occupies so the network layer can
    charge rounds faithfully. *)

val bit_length : int -> int
(** Number of bits needed to write [abs n] in binary; [bit_length 0 = 1]. *)

val int_bits : int -> int
(** Bits to encode a (possibly negative) integer: sign bit + magnitude. *)

val id_bits : n:int -> int
(** Bits of a vertex identifier in an [n]-vertex network: [ceil(log2 n)],
    at least 1. *)

val float_bits : unit -> int
(** Bits charged for a fixed-precision real message entry.  We charge the
    size of an IEEE double (64); the paper charges [O(log (nU/eps))] which is
    the same regime for all experiments we run. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceil(a/b)] for positive [b], nonnegative [a]. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] for [n >= 1]; [ceil_log2 1 = 0]. *)
