(** Small descriptive-statistics helpers used by the experiment harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val mean : float array -> float
(** Arithmetic mean; [nan] on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; [0.] for arrays of length [<= 1]. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [\[0,1\]], linear interpolation between order
    statistics.  Does not mutate its argument. *)

val summarize : float array -> summary
(** Full summary; raises [Invalid_argument] on the empty array. *)

val pp_summary : Format.formatter -> summary -> unit

val linear_fit : float array -> float array -> float * float
(** [linear_fit xs ys] returns [(slope, intercept)] of the least-squares line.
    Used for estimating scaling exponents from log-log data. *)

val scaling_exponent : float array -> float array -> float
(** [scaling_exponent ns ys] fits [y ~ c * n^a] by regressing
    [log y] on [log n] and returns [a].  All inputs must be positive. *)
