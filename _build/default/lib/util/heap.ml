type 'a entry = { key : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty h = h.len = 0
let size h = h.len

let grow h =
  let cap = Array.length h.data in
  if h.len >= cap then begin
    let ncap = Stdlib.max 8 (2 * cap) in
    let data = Array.make ncap h.data.(0) in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).key < h.data.(parent).key then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.data.(l).key < h.data.(!smallest).key then smallest := l;
  if r < h.len && h.data.(r).key < h.data.(!smallest).key then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h key value =
  if h.len = 0 && Array.length h.data = 0 then h.data <- Array.make 8 { key; value };
  grow h;
  h.data.(h.len) <- { key; value };
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop_min h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (top.key, top.value)
  end
