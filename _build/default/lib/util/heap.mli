(** Minimal binary min-heap keyed by floats, for Dijkstra-style algorithms.

    Stale-entry semantics: [push] may insert duplicates for one element;
    callers dedupe on pop (standard "lazy decrease-key"). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop_min : 'a t -> (float * 'a) option
(** Removes and returns the minimum-key entry, or [None] when empty. *)
