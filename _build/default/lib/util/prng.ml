type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = mix (Int64.logxor s 0x5851F42D4C957F2DL) }

(* Top 53 bits give a uniform double in [0, 1). *)
let float t =
  let x = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec loop () =
    let r = Int64.to_int (Int64.logand (next_int64 t) mask) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then loop () else v
  in
  loop ()

let bool t = Int64.compare (Int64.logand (next_int64 t) 1L) 0L <> 0

let bernoulli t p = float t < p

let bits t n =
  assert (n >= 0 && n <= 62);
  if n = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 t) (64 - n))

let sign t = if bool t then 1.0 else -1.0

let gaussian t =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
