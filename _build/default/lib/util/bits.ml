let bit_length n =
  let n = abs n in
  if n = 0 then 1
  else begin
    let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
    go 0 n
  end

let int_bits n = 1 + bit_length n

let ceil_log2 n =
  if n < 1 then invalid_arg "Bits.ceil_log2: n must be >= 1";
  let rec go acc p = if p >= n then acc else go (acc + 1) (p * 2) in
  go 0 1

let id_bits ~n = max 1 (ceil_log2 (max 2 n))

let float_bits () = 64

let ceil_div a b =
  if b <= 0 then invalid_arg "Bits.ceil_div: b must be positive";
  if a < 0 then invalid_arg "Bits.ceil_div: a must be nonnegative";
  (a + b - 1) / b
