(** Symmetric eigenproblems via the cyclic Jacobi rotation method.

    Used as the exact reference that certifies spectral-sparsifier quality
    (Theorem 1.2): for moderate [n] we compute all eigenvalues of
    [L_H^{+1/2} L_G L_H^{+1/2}] and read off the true relative condition
    number, rather than trusting the w.h.p. guarantee. *)

val jacobi : ?max_sweeps:int -> ?tol:float -> Dense.t -> Vec.t * Dense.t
(** [jacobi a] returns [(eigenvalues, eigenvectors)] of symmetric [a]:
    column [j] of the returned matrix is the unit eigenvector for
    [eigenvalues.(j)].  Eigenvalues are sorted ascending.
    @raise Invalid_argument if [a] is not symmetric. *)

val eigenvalues : ?max_sweeps:int -> ?tol:float -> Dense.t -> Vec.t
(** Eigenvalues only, sorted ascending. *)

val spd_condition_number : Dense.t -> float
(** Ratio of largest to smallest eigenvalue of an SPD matrix. *)

val relative_condition : Dense.t -> Dense.t -> float * float
(** [relative_condition a b] for symmetric PSD [a], [b] with the same
    nullspace returns [(lambda_min, lambda_max)] of the pencil [(a, b)]
    restricted to the complement of the common nullspace: the extreme
    generalized eigenvalues [lambda] with [a x = lambda b x].
    This is exactly the quantity bounded by the sparsifier guarantee
    [(1-eps) L_H <= L_G <= (1+eps) L_H]. *)

val pseudo_sqrt_inverse : ?rank_tol:float -> Dense.t -> Dense.t
(** Symmetric PSD pseudo inverse square root [a^{+1/2}], treating
    eigenvalues below [rank_tol * lambda_max] as zero. *)
