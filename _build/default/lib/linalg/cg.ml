type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

let solve_preconditioned ?x0 ?max_iter ?(tol = 1e-10) ~matvec ~precond ~b () =
  let n = Vec.dim b in
  let max_iter = match max_iter with Some m -> m | None -> 10 * Stdlib.max n 1 in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let r = Vec.sub b (matvec x) in
  let z = precond r in
  let p = Vec.copy z in
  let rz = ref (Vec.dot r z) in
  let bnorm = Float.max (Vec.norm2 b) 1e-300 in
  let iterations = ref 0 in
  let finished () = Vec.norm2 r <= tol *. bnorm in
  while (not (finished ())) && !iterations < max_iter do
    incr iterations;
    let ap = matvec p in
    let pap = Vec.dot p ap in
    if pap <= 0.0 then
      (* Stall on numerically indefinite directions rather than diverging. *)
      iterations := max_iter
    else begin
      let alpha = !rz /. pap in
      Vec.axpy alpha p x;
      Vec.axpy (-.alpha) ap r;
      let z = precond r in
      let rz' = Vec.dot r z in
      let beta = rz' /. !rz in
      rz := rz';
      for i = 0 to n - 1 do
        p.(i) <- z.(i) +. (beta *. p.(i))
      done
    end
  done;
  let res = Vec.norm2 r in
  { solution = x; iterations = !iterations; residual_norm = res; converged = res <= tol *. bnorm }

let solve ?x0 ?max_iter ?tol ~matvec ~b () =
  solve_preconditioned ?x0 ?max_iter ?tol ~matvec ~precond:Vec.copy ~b ()
