(** Dense vectors as float arrays.

    Thin helpers; all operations allocate a fresh result unless suffixed
    [_inplace].  Dimensions are checked with [Invalid_argument]. *)

type t = float array

val create : int -> float -> t
val zeros : int -> t
val ones : int -> t
val init : int -> (int -> float) -> t
val basis : int -> int -> t
(** [basis n i] is [e_i] in dimension [n]. *)

val copy : t -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Coordinate-wise product. *)

val div : t -> t -> t
(** Coordinate-wise quotient. *)

val recip : t -> t
(** Coordinate-wise reciprocal. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float
val norm2 : t -> float
val norm_inf : t -> float
val norm1 : t -> float
val dist2 : t -> t -> float

val weighted_norm : t -> t -> float
(** [weighted_norm w x] is [sqrt (sum_i w_i x_i^2)]; requires [w_i >= 0]. *)

val sum : t -> float
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val mean_center : t -> t
(** Subtract the mean: projection onto the orthogonal complement of [1]. *)

val clamp : lo:t -> hi:t -> t -> t
(** Coordinate-wise median of [lo], [x], [hi] (the paper's [MEDIAN]). *)

val max_elt : t -> float
val min_elt : t -> float

val pp : Format.formatter -> t -> unit
