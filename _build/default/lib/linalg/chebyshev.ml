type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
}

let iterations_bound ~kappa ~eps =
  if kappa < 1.0 then invalid_arg "Chebyshev.iterations_bound: kappa < 1";
  if eps <= 0.0 then invalid_arg "Chebyshev.iterations_bound: eps <= 0";
  1 + int_of_float (Float.ceil (sqrt kappa *. log (2.0 /. eps)))

(* Preconditioned Chebyshev (Saad, "Iterative methods for sparse linear
   systems", Algorithm 12.1, preconditioned variant).  The eigenvalues of
   B^{-1}A lie in [1/kappa, 1]. *)
let run ?x0 ~matvec ~solve_b ~kappa ~b ~iters ~stop () =
  let n = Vec.dim b in
  let lmin = 1.0 /. kappa and lmax = 1.0 in
  let theta = (lmax +. lmin) /. 2.0 in
  let delta = (lmax -. lmin) /. 2.0 in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let r = ref (Vec.sub b (matvec x)) in
  let z = solve_b !r in
  let d = ref (Vec.scale (1.0 /. theta) z) in
  let sigma1 = theta /. delta in
  let rho_prev = ref (1.0 /. sigma1) in
  let bnorm = Float.max (Vec.norm2 b) 1e-300 in
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ && !k < iters do
    incr k;
    Vec.axpy 1.0 !d x;
    r := Vec.sub b (matvec x);
    if stop (Vec.norm2 !r /. bnorm) then continue_ := false
    else begin
      let z = solve_b !r in
      let rho = 1.0 /. ((2.0 *. sigma1) -. !rho_prev) in
      let coeff_d = rho *. !rho_prev in
      let coeff_z = 2.0 *. rho /. delta in
      d := Vec.add (Vec.scale coeff_d !d) (Vec.scale coeff_z z);
      rho_prev := rho
    end
  done;
  { solution = x; iterations = !k; residual_norm = Vec.norm2 !r /. bnorm }

let solve ?x0 ?max_iter ~matvec ~solve_b ~kappa ~eps ~b () =
  let iters =
    match max_iter with Some m -> m | None -> iterations_bound ~kappa ~eps
  in
  run ?x0 ~matvec ~solve_b ~kappa ~b ~iters ~stop:(fun _ -> false) ()

let solve_adaptive ?x0 ?max_iter ~matvec ~solve_b ~kappa ~rtol ~b () =
  let iters =
    match max_iter with
    | Some m -> m
    | None -> 4 * iterations_bound ~kappa ~eps:rtol
  in
  run ?x0 ~matvec ~solve_b ~kappa ~b ~iters ~stop:(fun res -> res <= rtol) ()
