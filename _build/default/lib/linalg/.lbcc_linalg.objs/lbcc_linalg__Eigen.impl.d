lib/linalg/eigen.ml: Array Dense Float List
