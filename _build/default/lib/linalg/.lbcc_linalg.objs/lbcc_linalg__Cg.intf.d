lib/linalg/cg.mli: Vec
