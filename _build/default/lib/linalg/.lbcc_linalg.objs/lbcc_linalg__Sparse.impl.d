lib/linalg/sparse.ml: Array Dense Format List Printf
