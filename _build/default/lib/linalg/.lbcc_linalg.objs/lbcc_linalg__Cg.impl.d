lib/linalg/cg.ml: Array Float Stdlib Vec
