lib/linalg/chebyshev.ml: Float Vec
