lib/linalg/eigen.mli: Dense Vec
