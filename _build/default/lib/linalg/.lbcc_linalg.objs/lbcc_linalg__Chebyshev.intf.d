lib/linalg/chebyshev.mli: Vec
