lib/linalg/sparse.mli: Dense Format Vec
