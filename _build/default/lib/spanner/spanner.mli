(** Spanners with probabilistic edges (Section 3.1 of the paper).

    [run] computes, in the simulated Broadcast CONGEST model, a partition of
    a subset [F = F+ ⊔ F-] of the edges such that each tried edge [e] lands
    in [F+] independently with probability [p_e], and [S = (V, F+)] is a
    [(2k-1)]-spanner of [(V, F+ ∪ E'')] for every [E'' ⊆ E \ F]
    (Lemma 3.1).  With [p ≡ 1] the algorithm is exactly Baswana–Sen
    (Appendix A) and [F- = ∅].

    The implementation is a vertex program: every decision of vertex [v]
    reads only [v]'s local state and the broadcasts of its neighbors, and
    every broadcast is charged to the round accountant at its bit size.
    Each vertex records its own view of [F+] and [F-]; the paper's
    implicit-communication argument says the two endpoints' views always
    agree, and [run] verifies this ([views_agree]). *)

open Lbcc_util
module Graph = Lbcc_graph.Graph

type result = {
  fplus : int list;  (** spanner edge ids, ascending *)
  fminus : int list;  (** rejected (non-existing) edge ids, ascending *)
  orientation : (int * int) array;
      (** for each [fplus] edge in order, [(from, to_)]: the edge is charged
          to the out-degree of [from] (Lemma 3.1's orientation) *)
  clusters : int option array;  (** final cluster (center id) per vertex *)
  rounds : int;  (** Broadcast CONGEST rounds charged for this call *)
  supersteps : int;
  views_agree : bool;
      (** both endpoints of every tried edge classified it identically —
          the correctness of the paper's implicit communication *)
}

val run :
  ?accountant:Lbcc_net.Rounds.t ->
  prng:Prng.t ->
  graph:Graph.t ->
  p:float array ->
  k:int ->
  unit ->
  result
(** [run ~prng ~graph ~p ~k ()] with [p.(e)] the survival probability of edge
    [e] and stretch parameter [k >= 1].
    @raise Invalid_argument if [p] has the wrong length, a probability is
    outside [\[0,1\]], [k < 1], or [graph] has parallel edges. *)

val out_degrees : Graph.t -> result -> int array
(** Out-degree per vertex under the result's orientation. *)
