lib/spanner/spanner.ml: Array Hashtbl Lbcc_graph Lbcc_net Lbcc_util List Option Prng Stdlib
