(** Directed flow networks with integral capacities and costs
    (Section 2.4). *)

open Lbcc_util

type arc = { src : int; dst : int; capacity : int; cost : int }

type t = {
  n : int;
  arcs : arc array;
  source : int;
  sink : int;
}

val make : n:int -> source:int -> sink:int -> arc list -> t
(** @raise Invalid_argument on out-of-range endpoints, self-loops,
    negative capacities or costs, or [source = sink]. *)

val m : t -> int

val max_capacity : t -> int
val max_cost : t -> int

val out_arcs : t -> int -> (int * arc) list
(** [(arc_id, arc)] leaving a vertex. *)

val in_arcs : t -> int -> (int * arc) list

val is_flow : ?tol:float -> t -> float array -> bool
(** Capacity bounds and conservation at every vertex except source/sink. *)

val flow_value : t -> float array -> float
(** Net flow out of the source. *)

val flow_cost : t -> float array -> float

val undirected_support : t -> Lbcc_graph.Graph.t
(** The underlying undirected (simple) graph, unit weights — the
    communication topology and the Laplacian-solver substrate. *)

val random : Prng.t -> n:int -> density:float -> max_capacity:int ->
  max_cost:int -> t
(** A random s-t network guaranteed to have positive max flow: random arcs
    at the given density plus a random source-to-sink path. *)

val layered : Prng.t -> layers:int -> width:int -> max_capacity:int ->
  max_cost:int -> t
(** A layered DAG (source, [layers] ranks of [width] vertices, sink) — the
    classical transportation-network shape. *)

val transportation :
  supplies:int array -> demands:int array -> costs:int array array -> t
(** The classical transportation problem as a flow network: a super-source
    feeding supply vertices, a super-sink draining demand vertices, and a
    complete bipartite middle with the given per-unit shipping [costs]
    ([costs.(i).(j)] from supplier [i] to consumer [j]).  When total supply
    equals total demand, the min-cost max-flow is the optimal shipping plan.
    @raise Invalid_argument on negative entries or shape mismatch. *)

val pp : Format.formatter -> t -> unit
