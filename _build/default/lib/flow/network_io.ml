let write oc (net : Network.t) =
  Printf.fprintf oc "c laplacian_bcc flow network\n";
  Printf.fprintf oc "p mcmf %d %d %d %d\n" net.Network.n (Network.m net)
    net.Network.source net.Network.sink;
  Array.iter
    (fun (a : Network.arc) ->
      Printf.fprintf oc "a %d %d %d %d\n" a.src a.dst a.capacity a.cost)
    net.Network.arcs

let to_string net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "c laplacian_bcc flow network\n";
  Buffer.add_string buf
    (Printf.sprintf "p mcmf %d %d %d %d\n" net.Network.n (Network.m net)
       net.Network.source net.Network.sink);
  Array.iter
    (fun (a : Network.arc) ->
      Buffer.add_string buf (Printf.sprintf "a %d %d %d %d\n" a.src a.dst a.capacity a.cost))
    net.Network.arcs;
  Buffer.contents buf

let parse_lines lines =
  let header = ref None in
  let arcs = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let fail msg =
        failwith (Printf.sprintf "Network_io.read: line %d: %s" lineno msg)
      in
      let line = String.trim line in
      if line = "" then ()
      else
        match line.[0] with
        | 'c' -> ()
        | 'p' -> (
            match String.split_on_char ' ' line with
            | [ "p"; "mcmf"; ns; ms; ss; ts ] -> (
                match
                  ( int_of_string_opt ns,
                    int_of_string_opt ms,
                    int_of_string_opt ss,
                    int_of_string_opt ts )
                with
                | Some n, Some m, Some source, Some sink ->
                    header := Some (n, m, source, sink)
                | _ -> fail "bad problem line")
            | _ -> fail "bad problem line")
        | 'a' -> (
            if !header = None then fail "arc before problem line";
            match String.split_on_char ' ' line with
            | [ "a"; ss; ds; cs; qs ] -> (
                match
                  ( int_of_string_opt ss,
                    int_of_string_opt ds,
                    int_of_string_opt cs,
                    int_of_string_opt qs )
                with
                | Some src, Some dst, Some capacity, Some cost ->
                    arcs := { Network.src; dst; capacity; cost } :: !arcs
                | _ -> fail "bad arc line")
            | _ -> fail "bad arc line")
        | _ -> fail "unknown line kind")
    lines;
  match !header with
  | None -> failwith "Network_io.read: missing problem line"
  | Some (n, m, source, sink) ->
      let arcs = List.rev !arcs in
      if List.length arcs <> m then
        failwith
          (Printf.sprintf "Network_io.read: expected %d arcs, found %d" m
             (List.length arcs));
      Network.make ~n ~source ~sink arcs

let read_all_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let read ic = parse_lines (read_all_lines ic)
let of_string s = parse_lines (String.split_on_char '\n' s)

let save path net =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc net)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)

let to_dot ?(name = "net") ?flow (net : Network.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf
    (Printf.sprintf "  %d [shape=doublecircle];\n  %d [shape=doublecircle];\n"
       net.Network.source net.Network.sink);
  Array.iteri
    (fun i (a : Network.arc) ->
      match flow with
      | Some f ->
          let loaded = f.(i) > 0.5 in
          Buffer.add_string buf
            (Printf.sprintf "  %d -> %d [label=\"%.0f/%d @%d\"%s];\n" a.src a.dst
               f.(i) a.capacity a.cost
               (if loaded then ", style=bold" else ""))
      | None ->
          Buffer.add_string buf
            (Printf.sprintf "  %d -> %d [label=\"%d @%d\"];\n" a.src a.dst
               a.capacity a.cost))
    net.Network.arcs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
