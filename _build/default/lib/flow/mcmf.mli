(** Minimum-cost maximum-flow by successive shortest paths with Johnson
    potentials — the exact combinatorial baseline Theorem 1.1's output is
    checked against. *)

type result = {
  value : int;  (** maximum flow value *)
  cost : int;  (** minimum cost among maximum flows *)
  flow : float array;  (** integral optimal flow per arc *)
}

val solve : Network.t -> result
(** Requires nonnegative arc costs (as in Section 2.4). *)
