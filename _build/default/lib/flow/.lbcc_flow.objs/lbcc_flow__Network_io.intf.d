lib/flow/network_io.mli: Network
