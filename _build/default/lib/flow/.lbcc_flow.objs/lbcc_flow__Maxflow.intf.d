lib/flow/maxflow.mli: Network
