lib/flow/mcmf_lp.ml: Array Bits Float Lbcc_laplacian Lbcc_linalg Lbcc_lp Lbcc_net Lbcc_util Mcmf Network Prng Stdlib
