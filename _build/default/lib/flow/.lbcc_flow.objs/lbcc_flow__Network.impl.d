lib/flow/network.ml: Array Float Format Hashtbl Lbcc_graph Lbcc_util List Prng Stdlib
