lib/flow/mcmf.ml: Array Float Heap Lbcc_util List Network Stdlib
