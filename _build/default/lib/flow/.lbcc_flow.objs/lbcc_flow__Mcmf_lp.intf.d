lib/flow/mcmf_lp.mli: Lbcc_linalg Lbcc_lp Lbcc_net Lbcc_util Network Prng
