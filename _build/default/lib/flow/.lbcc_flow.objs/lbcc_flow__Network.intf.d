lib/flow/network.mli: Format Lbcc_graph Lbcc_util Prng
