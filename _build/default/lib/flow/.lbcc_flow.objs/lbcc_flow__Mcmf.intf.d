lib/flow/mcmf.mli: Network
