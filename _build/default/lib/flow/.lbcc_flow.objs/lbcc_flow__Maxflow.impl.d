lib/flow/maxflow.ml: Array List Network Queue Stdlib
