lib/flow/network_io.ml: Array Buffer Fun List Network Printf String
