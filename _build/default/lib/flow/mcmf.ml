open Lbcc_util

type result = {
  value : int;
  cost : int;
  flow : float array;
}

type residual = {
  n : int;
  heads : int array;
  caps : int array;
  costs : int array; (* residual costs: reverse arcs carry the negation *)
  adj : int list array;
}

let build (net : Network.t) =
  let m = Network.m net in
  let heads = Array.make (2 * m) 0
  and caps = Array.make (2 * m) 0
  and costs = Array.make (2 * m) 0 in
  let adj = Array.make net.Network.n [] in
  Array.iteri
    (fun i (a : Network.arc) ->
      heads.(2 * i) <- a.dst;
      caps.(2 * i) <- a.capacity;
      costs.(2 * i) <- a.cost;
      heads.((2 * i) + 1) <- a.src;
      caps.((2 * i) + 1) <- 0;
      costs.((2 * i) + 1) <- -a.cost;
      adj.(a.src) <- (2 * i) :: adj.(a.src);
      adj.(a.dst) <- ((2 * i) + 1) :: adj.(a.dst))
    net.Network.arcs;
  { n = net.Network.n; heads; caps; costs; adj }

let solve (net : Network.t) =
  Array.iter
    (fun (a : Network.arc) ->
      if a.cost < 0 then invalid_arg "Mcmf.solve: costs must be nonnegative")
    net.Network.arcs;
  let r = build net in
  let s = net.Network.source and t = net.Network.sink in
  let potential = Array.make r.n 0.0 in
  let dist = Array.make r.n infinity in
  let parent_edge = Array.make r.n (-1) in
  let value = ref 0 and cost = ref 0 in
  let dijkstra () =
    Array.fill dist 0 r.n infinity;
    Array.fill parent_edge 0 r.n (-1);
    dist.(s) <- 0.0;
    let heap = Heap.create () in
    Heap.push heap 0.0 s;
    let settled = Array.make r.n false in
    let rec drain () =
      match Heap.pop_min heap with
      | None -> ()
      | Some (d, v) ->
          if not settled.(v) then begin
            settled.(v) <- true;
            List.iter
              (fun e ->
                if r.caps.(e) > 0 then begin
                  let u = r.heads.(e) in
                  let reduced =
                    d +. float_of_int r.costs.(e) +. potential.(v) -. potential.(u)
                  in
                  if (not settled.(u)) && reduced < dist.(u) -. 1e-9 then begin
                    dist.(u) <- reduced;
                    parent_edge.(u) <- e;
                    Heap.push heap reduced u
                  end
                end)
              r.adj.(v)
          end;
          drain ()
    in
    drain ();
    Float.is_finite dist.(t)
  in
  while dijkstra () do
    for v = 0 to r.n - 1 do
      if Float.is_finite dist.(v) then potential.(v) <- potential.(v) +. dist.(v)
    done;
    (* Bottleneck along the shortest path. *)
    let rec bottleneck v acc =
      if v = s then acc
      else begin
        let e = parent_edge.(v) in
        bottleneck r.heads.(e lxor 1) (Stdlib.min acc r.caps.(e))
      end
    in
    let d = bottleneck t max_int in
    let rec augment v =
      if v <> s then begin
        let e = parent_edge.(v) in
        r.caps.(e) <- r.caps.(e) - d;
        r.caps.(e lxor 1) <- r.caps.(e lxor 1) + d;
        cost := !cost + (d * r.costs.(e));
        augment r.heads.(e lxor 1)
      end
    in
    augment t;
    value := !value + d
  done;
  let flow =
    Array.init (Network.m net) (fun i -> float_of_int r.caps.((2 * i) + 1))
  in
  { value = !value; cost = !cost; flow }
