open Lbcc_util

type arc = { src : int; dst : int; capacity : int; cost : int }

type t = {
  n : int;
  arcs : arc array;
  source : int;
  sink : int;
}

let make ~n ~source ~sink arcs =
  if source < 0 || source >= n || sink < 0 || sink >= n then
    invalid_arg "Network.make: source/sink out of range";
  if source = sink then invalid_arg "Network.make: source = sink";
  List.iter
    (fun a ->
      if a.src < 0 || a.src >= n || a.dst < 0 || a.dst >= n then
        invalid_arg "Network.make: arc endpoint out of range";
      if a.src = a.dst then invalid_arg "Network.make: self-loop";
      if a.capacity < 0 then invalid_arg "Network.make: negative capacity";
      if a.cost < 0 then invalid_arg "Network.make: negative cost")
    arcs;
  { n; arcs = Array.of_list arcs; source; sink }

let m t = Array.length t.arcs

let max_capacity t = Array.fold_left (fun acc a -> Stdlib.max acc a.capacity) 1 t.arcs
let max_cost t = Array.fold_left (fun acc a -> Stdlib.max acc a.cost) 1 t.arcs

let out_arcs t v =
  Array.to_list t.arcs
  |> List.mapi (fun id a -> (id, a))
  |> List.filter (fun (_, a) -> a.src = v)

let in_arcs t v =
  Array.to_list t.arcs
  |> List.mapi (fun id a -> (id, a))
  |> List.filter (fun (_, a) -> a.dst = v)

let is_flow ?(tol = 1e-6) t f =
  Array.length f = m t
  && Array.for_all2
       (fun a fe -> fe >= -.tol && fe <= float_of_int a.capacity +. tol)
       t.arcs f
  &&
  let net = Array.make t.n 0.0 in
  Array.iteri
    (fun id a ->
      net.(a.src) <- net.(a.src) +. f.(id);
      net.(a.dst) <- net.(a.dst) -. f.(id))
    t.arcs;
  let ok = ref true in
  let scale = Float.max 1.0 (Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 f) in
  for v = 0 to t.n - 1 do
    if v <> t.source && v <> t.sink && Float.abs net.(v) > tol *. scale then
      ok := false
  done;
  !ok

let flow_value t f =
  let acc = ref 0.0 in
  Array.iteri
    (fun id a ->
      if a.src = t.source then acc := !acc +. f.(id);
      if a.dst = t.source then acc := !acc -. f.(id))
    t.arcs;
  !acc

let flow_cost t f =
  let acc = ref 0.0 in
  Array.iteri (fun id a -> acc := !acc +. (float_of_int a.cost *. f.(id))) t.arcs;
  !acc

let undirected_support t =
  let seen = Hashtbl.create (m t) in
  let edges = ref [] in
  Array.iter
    (fun a ->
      let key = (Stdlib.min a.src a.dst, Stdlib.max a.src a.dst) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        edges := { Lbcc_graph.Graph.u = a.src; v = a.dst; w = 1.0 } :: !edges
      end)
    t.arcs;
  Lbcc_graph.Graph.create ~n:t.n !edges

let rand_cap prng max_capacity = 1 + Prng.int prng max_capacity
let rand_cost prng max_cost = Prng.int prng (max_cost + 1)

let random prng ~n ~density ~max_capacity ~max_cost =
  if n < 3 then invalid_arg "Network.random: n must be >= 3";
  let source = 0 and sink = n - 1 in
  let arcs = ref [] in
  let seen = Hashtbl.create 64 in
  let add src dst =
    if src <> dst && not (Hashtbl.mem seen (src, dst)) then begin
      Hashtbl.add seen (src, dst) ();
      arcs :=
        {
          src;
          dst;
          capacity = rand_cap prng max_capacity;
          cost = rand_cost prng max_cost;
        }
        :: !arcs
    end
  in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && Prng.bernoulli prng density then add src dst
    done
  done;
  (* A random source-sink path guarantees positive maximum flow. *)
  let interior = Array.init (n - 2) (fun i -> i + 1) in
  Prng.shuffle prng interior;
  let len = 1 + Prng.int prng (Stdlib.max 1 (n - 2)) in
  let path = source :: (Array.to_list (Array.sub interior 0 (Stdlib.min len (n - 2))) @ [ sink ]) in
  let rec link = function
    | a :: (b :: _ as rest) ->
        add a b;
        link rest
    | [ _ ] | [] -> ()
  in
  link path;
  make ~n ~source ~sink !arcs

let layered prng ~layers ~width ~max_capacity ~max_cost =
  if layers < 1 || width < 1 then invalid_arg "Network.layered: bad shape";
  let n = 2 + (layers * width) in
  let source = 0 and sink = n - 1 in
  let vertex layer pos = 1 + ((layer - 1) * width) + pos in
  let arcs = ref [] in
  let add src dst =
    arcs :=
      {
        src;
        dst;
        capacity = rand_cap prng max_capacity;
        cost = rand_cost prng max_cost;
      }
      :: !arcs
  in
  for pos = 0 to width - 1 do
    add source (vertex 1 pos)
  done;
  for layer = 1 to layers - 1 do
    for p1 = 0 to width - 1 do
      for p2 = 0 to width - 1 do
        if p1 = p2 || Prng.bernoulli prng 0.5 then
          add (vertex layer p1) (vertex (layer + 1) p2)
      done
    done
  done;
  for pos = 0 to width - 1 do
    add (vertex layers pos) sink
  done;
  make ~n ~source ~sink !arcs

let transportation ~supplies ~demands ~costs =
  let ns = Array.length supplies and nd = Array.length demands in
  if ns = 0 || nd = 0 then invalid_arg "Network.transportation: empty side";
  if Array.length costs <> ns then
    invalid_arg "Network.transportation: costs must have one row per supplier";
  Array.iter
    (fun row ->
      if Array.length row <> nd then
        invalid_arg "Network.transportation: ragged cost matrix")
    costs;
  let n = ns + nd + 2 in
  let source = 0 and sink = n - 1 in
  let supplier i = 1 + i and consumer j = 1 + ns + j in
  let arcs = ref [] in
  Array.iteri
    (fun i s ->
      if s < 0 then invalid_arg "Network.transportation: negative supply";
      if s > 0 then arcs := { src = source; dst = supplier i; capacity = s; cost = 0 } :: !arcs)
    supplies;
  Array.iteri
    (fun j d ->
      if d < 0 then invalid_arg "Network.transportation: negative demand";
      if d > 0 then arcs := { src = consumer j; dst = sink; capacity = d; cost = 0 } :: !arcs)
    demands;
  let total_supply = Array.fold_left ( + ) 0 supplies in
  for i = 0 to ns - 1 do
    for j = 0 to nd - 1 do
      if costs.(i).(j) < 0 then invalid_arg "Network.transportation: negative cost";
      arcs :=
        { src = supplier i; dst = consumer j; capacity = total_supply; cost = costs.(i).(j) }
        :: !arcs
    done
  done;
  make ~n ~source ~sink !arcs

let pp ppf t =
  Format.fprintf ppf "@[<v>network n=%d m=%d s=%d t=%d@," t.n (m t) t.source t.sink;
  Array.iteri
    (fun id a ->
      Format.fprintf ppf "a%d: %d->%d cap=%d cost=%d@," id a.src a.dst a.capacity a.cost)
    t.arcs;
  Format.fprintf ppf "@]"
