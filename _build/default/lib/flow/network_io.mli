(** Plain-text serialization for flow networks.

    DIMACS-flavoured line protocol:

    {v
    c comment
    p mcmf <n> <m> <source> <sink>
    a <src> <dst> <capacity> <cost>
    v}

    Vertices are 0-based. *)

val write : out_channel -> Network.t -> unit
val to_string : Network.t -> string

val read : in_channel -> Network.t
(** @raise Failure on malformed input. *)

val of_string : string -> Network.t

val save : string -> Network.t -> unit
val load : string -> Network.t

val to_dot : ?name:string -> ?flow:float array -> Network.t -> string
(** Graphviz rendering; when [flow] is given arcs are labelled
    [flow/capacity @ cost] and loaded arcs are drawn bold. *)
