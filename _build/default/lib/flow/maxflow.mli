(** Dinic's maximum-flow algorithm — the combinatorial reference for the
    flow value [F] that the LP pipeline must reach. *)

type result = {
  value : int;
  flow : float array;  (** integral values, per arc of the input network *)
}

val dinic : Network.t -> result
