type result = {
  value : int;
  flow : float array;
}

(* Residual representation: arc i of the network is residual edge 2i, its
   reverse is 2i+1. *)
type residual = {
  n : int;
  heads : int array; (* per residual edge *)
  caps : int array;
  adj : int list array; (* residual edge ids per vertex *)
}

let build (net : Network.t) =
  let m = Network.m net in
  let heads = Array.make (2 * m) 0 and caps = Array.make (2 * m) 0 in
  let adj = Array.make net.Network.n [] in
  Array.iteri
    (fun i (a : Network.arc) ->
      heads.(2 * i) <- a.dst;
      caps.(2 * i) <- a.capacity;
      heads.((2 * i) + 1) <- a.src;
      caps.((2 * i) + 1) <- 0;
      adj.(a.src) <- (2 * i) :: adj.(a.src);
      adj.(a.dst) <- ((2 * i) + 1) :: adj.(a.dst))
    net.Network.arcs;
  { n = net.Network.n; heads; caps; adj }

let dinic (net : Network.t) =
  let r = build net in
  let s = net.Network.source and t = net.Network.sink in
  let level = Array.make r.n (-1) in
  let bfs () =
    Array.fill level 0 r.n (-1);
    level.(s) <- 0;
    let q = Queue.create () in
    Queue.push s q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun e ->
          let u = r.heads.(e) in
          if r.caps.(e) > 0 && level.(u) < 0 then begin
            level.(u) <- level.(v) + 1;
            Queue.push u q
          end)
        r.adj.(v)
    done;
    level.(t) >= 0
  in
  (* Depth-first blocking flow with a per-vertex iterator. *)
  let iter = Array.make r.n [] in
  let rec dfs v pushed =
    if v = t then pushed
    else begin
      match iter.(v) with
      | [] -> 0
      | e :: rest ->
          let u = r.heads.(e) in
          if r.caps.(e) > 0 && level.(u) = level.(v) + 1 then begin
            let d = dfs u (Stdlib.min pushed r.caps.(e)) in
            if d > 0 then begin
              r.caps.(e) <- r.caps.(e) - d;
              r.caps.(e lxor 1) <- r.caps.(e lxor 1) + d;
              d
            end
            else begin
              iter.(v) <- rest;
              dfs v pushed
            end
          end
          else begin
            iter.(v) <- rest;
            dfs v pushed
          end
    end
  in
  let value = ref 0 in
  while bfs () do
    Array.iteri (fun v l -> ignore l; iter.(v) <- r.adj.(v)) level;
    let rec pump () =
      let d = dfs s max_int in
      if d > 0 then begin
        value := !value + d;
        pump ()
      end
    in
    pump ()
  done;
  let flow =
    Array.init (Network.m net) (fun i ->
        float_of_int r.caps.((2 * i) + 1))
  in
  { value = !value; flow }
