let write_graph oc g =
  Printf.fprintf oc "c laplacian_bcc graph\n";
  Printf.fprintf oc "p graph %d %d\n" (Graph.n g) (Graph.m g);
  Array.iter
    (fun (e : Graph.edge) -> Printf.fprintf oc "e %d %d %.17g\n" e.u e.v e.w)
    (Graph.edges g)

let graph_to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "c laplacian_bcc graph\n";
  Buffer.add_string buf (Printf.sprintf "p graph %d %d\n" (Graph.n g) (Graph.m g));
  Array.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf (Printf.sprintf "e %d %d %.17g\n" e.u e.v e.w))
    (Graph.edges g);
  Buffer.contents buf

let parse_lines lines =
  let n = ref (-1) and expected_m = ref (-1) in
  let edges = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let fail msg = failwith (Printf.sprintf "Io.read_graph: line %d: %s" lineno msg) in
      let line = String.trim line in
      if line = "" then ()
      else
        match line.[0] with
        | 'c' -> ()
        | 'p' -> (
            match String.split_on_char ' ' line with
            | [ "p"; "graph"; ns; ms ] -> (
                match (int_of_string_opt ns, int_of_string_opt ms) with
                | Some nv, Some mv ->
                    n := nv;
                    expected_m := mv
                | _ -> fail "bad problem line")
            | _ -> fail "bad problem line")
        | 'e' -> (
            if !n < 0 then fail "edge before problem line";
            match String.split_on_char ' ' line with
            | [ "e"; us; vs; ws ] -> (
                match
                  (int_of_string_opt us, int_of_string_opt vs, float_of_string_opt ws)
                with
                | Some u, Some v, Some w -> edges := { Graph.u; v; w } :: !edges
                | _ -> fail "bad edge line")
            | _ -> fail "bad edge line")
        | _ -> fail "unknown line kind")
    lines;
  if !n < 0 then failwith "Io.read_graph: missing problem line";
  let edges = List.rev !edges in
  if !expected_m >= 0 && List.length edges <> !expected_m then
    failwith
      (Printf.sprintf "Io.read_graph: expected %d edges, found %d" !expected_m
         (List.length edges));
  Graph.create ~n:!n edges

let read_all_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let read_graph ic = parse_lines (read_all_lines ic)

let graph_of_string s = parse_lines (String.split_on_char '\n' s)

let save_graph path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_graph oc g)

let load_graph path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_graph ic)

let to_dot ?(name = "g") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Array.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d [label=\"%g\"];\n" e.u e.v e.w))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
