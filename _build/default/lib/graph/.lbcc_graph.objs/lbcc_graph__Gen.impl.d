lib/graph/gen.ml: Array Graph Hashtbl Lbcc_util List Prng Stdlib
