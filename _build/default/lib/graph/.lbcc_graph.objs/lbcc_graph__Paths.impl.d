lib/graph/paths.ml: Array Float Graph Heap Lbcc_util List Queue
