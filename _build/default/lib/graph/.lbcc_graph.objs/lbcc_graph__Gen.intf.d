lib/graph/gen.mli: Graph Lbcc_util Prng
