lib/graph/graph.ml: Array Float Format Hashtbl Lbcc_linalg List Option Printf Stack Stdlib
