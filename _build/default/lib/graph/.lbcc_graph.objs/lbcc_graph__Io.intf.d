lib/graph/io.mli: Graph
