lib/graph/graph.mli: Format Lbcc_linalg
