open Lbcc_util

let dijkstra_with_parents g ~src =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let rec drain () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, v) ->
        if not settled.(v) then begin
          settled.(v) <- true;
          List.iter
            (fun (u, eid) ->
              let w = (Graph.edge g eid).w in
              if (not settled.(u)) && d +. w < dist.(u) then begin
                dist.(u) <- d +. w;
                parent.(u) <- eid;
                Heap.push heap dist.(u) u
              end)
            (Graph.neighbors g v)
        end;
        drain ()
  in
  drain ();
  (dist, parent)

let dijkstra g ~src = fst (dijkstra_with_parents g ~src)

let bfs_hops g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (u, _) ->
        if dist.(u) = max_int then begin
          dist.(u) <- dist.(v) + 1;
          Queue.push u q
        end)
      (Graph.neighbors g v)
  done;
  dist

let all_pairs g = Array.init (Graph.n g) (fun src -> dijkstra g ~src)

let stretch g h =
  if Graph.n g <> Graph.n h then invalid_arg "Paths.stretch: vertex count mismatch";
  let n = Graph.n g in
  let worst = ref 1.0 in
  for src = 0 to n - 1 do
    let dg = dijkstra g ~src and dh = dijkstra h ~src in
    for v = 0 to n - 1 do
      if v <> src && Float.is_finite dg.(v) && dg.(v) > 0.0 then begin
        if Float.is_finite dh.(v) then worst := Float.max !worst (dh.(v) /. dg.(v))
        else worst := infinity
      end
    done
  done;
  !worst

let eccentricity g ~src =
  let d = dijkstra g ~src in
  Array.fold_left (fun acc x -> if Float.is_finite x then Float.max acc x else acc) 0.0 d

let bellman_ford ~n ~arcs ~src =
  let dist = Array.make n infinity in
  dist.(src) <- 0.0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < n do
    changed := false;
    incr rounds;
    List.iter
      (fun (u, v, w) ->
        if Float.is_finite dist.(u) && dist.(u) +. w < dist.(v) -. 1e-12 then begin
          dist.(v) <- dist.(u) +. w;
          changed := true
        end)
      arcs
  done;
  (* One more relaxation detects a reachable negative cycle. *)
  let negative =
    List.exists
      (fun (u, v, w) -> Float.is_finite dist.(u) && dist.(u) +. w < dist.(v) -. 1e-9)
      arcs
  in
  if negative then None else Some dist

let diameter g =
  let worst = ref 0.0 in
  for src = 0 to Graph.n g - 1 do
    worst := Float.max !worst (eccentricity g ~src)
  done;
  !worst
