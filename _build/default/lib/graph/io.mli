(** Plain-text serialization for graphs and DOT export.

    The format is a DIMACS-flavoured line protocol:

    {v
    c comment
    p graph <n> <m>
    e <u> <v> <w>
    v}

    Vertices are 0-based; weights are decimal.  Parsing is strict: malformed
    lines raise with the offending line number. *)

val write_graph : out_channel -> Graph.t -> unit
val graph_to_string : Graph.t -> string

val read_graph : in_channel -> Graph.t
(** @raise Failure on malformed input. *)

val graph_of_string : string -> Graph.t

val save_graph : string -> Graph.t -> unit
(** Write to a file path. *)

val load_graph : string -> Graph.t

val to_dot : ?name:string -> Graph.t -> string
(** Graphviz rendering (undirected, weight-labelled). *)
