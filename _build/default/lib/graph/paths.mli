(** Shortest paths on weighted graphs.

    Exact distances back the spanner stretch checks (Lemma 3.1) and the
    combinatorial flow baselines. *)

val dijkstra : Graph.t -> src:int -> float array
(** Single-source distances with nonnegative weights; [infinity] where
    unreachable. *)

val dijkstra_with_parents : Graph.t -> src:int -> float array * int array
(** Distances plus parent edge ids ([-1] at the source / unreachable). *)

val bfs_hops : Graph.t -> src:int -> int array
(** Hop distances ignoring weights; [max_int] where unreachable. *)

val all_pairs : Graph.t -> float array array
(** Exact APSP by repeated Dijkstra: [O(n m log n)].  Fine for the
    experiment sizes (n <= ~1000 on sparse graphs). *)

val stretch : Graph.t -> Graph.t -> float
(** [stretch g h] is the maximum over vertex pairs [u, v] connected in [g] of
    [d_h(u,v) / d_g(u,v)]; [infinity] if [h] disconnects such a pair.
    [h] must be a subgraph of [g] on the same vertex set (not checked). *)

val eccentricity : Graph.t -> src:int -> float
(** Largest finite distance from [src]. *)

val bellman_ford :
  n:int -> arcs:(int * int * float) list -> src:int -> float array option
(** Single-source distances on a general directed arc list (negative
    weights allowed); [None] if a negative cycle is reachable from [src].
    Backs the flow baselines' optimality certificates. *)

val diameter : Graph.t -> float
(** Largest finite pairwise distance ([0.] for singletons). *)
