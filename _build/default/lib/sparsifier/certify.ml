open Lbcc_util
module Graph = Lbcc_graph.Graph
module Eigen = Lbcc_linalg.Eigen
module Vec = Lbcc_linalg.Vec

type certificate = {
  lambda_min : float;
  lambda_max : float;
  epsilon_achieved : float;
}

let epsilon_of ~lambda_min ~lambda_max =
  if lambda_min <= 0.0 then infinity
  else Float.max (1.0 -. lambda_min) (lambda_max -. 1.0)

let exact g h =
  if Graph.n g <> Graph.n h then invalid_arg "Certify.exact: vertex count mismatch";
  let lg = Graph.laplacian_dense g and lh = Graph.laplacian_dense h in
  let lambda_min, lambda_max = Eigen.relative_condition lg lh in
  { lambda_min; lambda_max; epsilon_achieved = epsilon_of ~lambda_min ~lambda_max }

let probe prng g h ~samples =
  if Graph.n g <> Graph.n h then invalid_arg "Certify.probe: vertex count mismatch";
  let n = Graph.n g in
  let lo = ref infinity and hi = ref 0.0 in
  for _ = 1 to samples do
    let x = Vec.mean_center (Vec.init n (fun _ -> Prng.gaussian prng)) in
    let qg = Vec.dot x (Graph.apply_laplacian g x) in
    let qh = Vec.dot x (Graph.apply_laplacian h x) in
    if qh > 1e-300 then begin
      let ratio = qg /. qh in
      lo := Float.min !lo ratio;
      hi := Float.max !hi ratio
    end
  done;
  let lambda_min = if Float.is_finite !lo then !lo else 0.0 in
  let lambda_max = !hi in
  { lambda_min; lambda_max; epsilon_achieved = epsilon_of ~lambda_min ~lambda_max }

let is_sparsifier ?(tol = 1e-9) g h ~epsilon =
  let c = exact g h in
  c.epsilon_achieved <= epsilon +. tol

(* Local pinned-vertex Laplacian solve (the Laplacian library depends on
   this one, so it cannot be used here). *)
let pinned_factor g =
  if not (Graph.is_connected g) then
    invalid_arg "Certify.power: graphs must be connected";
  let n = Graph.n g in
  let l = Graph.laplacian_dense g in
  let reduced =
    Lbcc_linalg.Dense.init (n - 1) (n - 1) (fun i j ->
        Lbcc_linalg.Dense.get l (i + 1) (j + 1))
  in
  (n, Lbcc_linalg.Dense.factorize reduced)

let pinned_solve (n, f) b =
  let rhs = Array.sub b 1 (n - 1) in
  let sol = Lbcc_linalg.Dense.solve_factored f rhs in
  let x = Array.make n 0.0 in
  Array.blit sol 0 x 1 (n - 1);
  Vec.mean_center x

let power prng g h ~iters =
  if Graph.n g <> Graph.n h then invalid_arg "Certify.power: vertex count mismatch";
  let n = Graph.n g in
  let fg = pinned_factor g and fh = pinned_factor h in
  let rayleigh y =
    let qg = Vec.dot y (Graph.apply_laplacian g y) in
    let qh = Vec.dot y (Graph.apply_laplacian h y) in
    qg /. Float.max qh 1e-300
  in
  (* lambda_max: dominant eigenvalue of L_H^+ L_G on the complement of 1. *)
  let iterate apply =
    let y = ref (Vec.mean_center (Vec.init n (fun _ -> Prng.gaussian prng))) in
    for _ = 1 to iters do
      let z = apply !y in
      let z = Vec.mean_center z in
      let norm = Float.max (Vec.norm2 z) 1e-300 in
      y := Vec.scale (1.0 /. norm) z
    done;
    !y
  in
  let y_max = iterate (fun y -> pinned_solve fh (Graph.apply_laplacian g y)) in
  let y_min = iterate (fun y -> pinned_solve fg (Graph.apply_laplacian h y)) in
  let lambda_max = rayleigh y_max in
  let lambda_min = rayleigh y_min in
  { lambda_min; lambda_max; epsilon_achieved = epsilon_of ~lambda_min ~lambda_max }
