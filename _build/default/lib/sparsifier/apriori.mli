(** Reference sparsifier with a-priori sampling
    (Algorithm 4, [SpectralSparsify-Apriori]; Koutis–Xu with the fixed
    bundle size of Kyng et al.).

    This is the variant that is easy in CONGEST but not in broadcast models:
    each iteration samples the surviving edges up front (centrally, here)
    and runs deterministic-edge spanners ([p ≡ 1]).  Lemma 3.3 states its
    output distribution equals {!Sparsify.run}'s; experiment E4 compares
    the two empirically. *)

open Lbcc_util
module Graph = Lbcc_graph.Graph

type result = {
  sparsifier : Graph.t;
  edge_origin : int array;  (** original edge id per sparsifier edge *)
  bundle_sizes : int list;
}

val run :
  ?k:int ->
  ?t:int ->
  ?t_scale:float ->
  ?iterations:int ->
  prng:Prng.t ->
  graph:Graph.t ->
  epsilon:float ->
  unit ->
  result
