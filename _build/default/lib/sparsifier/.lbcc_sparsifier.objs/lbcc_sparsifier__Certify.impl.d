lib/sparsifier/certify.ml: Array Float Lbcc_graph Lbcc_linalg Lbcc_util Prng
