lib/sparsifier/bundle.ml: Array Fun Lbcc_graph Lbcc_spanner List
