lib/sparsifier/apriori.ml: Array Bundle Fun Hashtbl Lbcc_graph Lbcc_util List Prng Sparsify
