lib/sparsifier/certify.mli: Lbcc_graph Lbcc_util Prng
