lib/sparsifier/bundle.mli: Lbcc_graph Lbcc_net Lbcc_util Prng
