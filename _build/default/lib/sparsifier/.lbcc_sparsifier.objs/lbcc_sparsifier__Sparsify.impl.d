lib/sparsifier/sparsify.ml: Array Bits Bundle Float Fun Hashtbl Lbcc_graph Lbcc_net Lbcc_util List Option Prng Stdlib
