lib/sparsifier/apriori.mli: Lbcc_graph Lbcc_util Prng
