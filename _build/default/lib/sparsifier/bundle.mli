(** t-bundle spanners (Algorithm 3, [BundleSpanner]).

    A [t]-bundle spanner of stretch [2k-1] is a union [B = ∪ T_i] where each
    [T_i] is a spanner of [G \ ∪_{j<i} T_j].  With probabilistic edges, each
    call to [Spanner.run] both builds [T_i] and definitively samples the
    edges it tried; [C] collects the rejected edges. *)

open Lbcc_util
module Graph = Lbcc_graph.Graph

type result = {
  bundle : int list;  (** B: edge ids in the bundle, ascending *)
  rejected : int list;  (** C: edge ids sampled out of existence *)
  orientations : (int * int * int) list;
      (** per bundle edge: [(edge, from, to)] — Lemma 3.1 orientation *)
  rounds : int;
}

val run :
  ?accountant:Lbcc_net.Rounds.t ->
  prng:Prng.t ->
  graph:Graph.t ->
  p:float array ->
  k:int ->
  t:int ->
  unit ->
  result
(** [run ~graph ~p ~k ~t ()] computes a [t]-bundle of [(2k-1)]-spanners on
    the probabilistic graph [(graph, p)]. *)
