(** A-posteriori spectral certificates for sparsifiers.

    The paper's guarantee (Definition 2.1) is
    [(1-eps) x^T L_H x <= x^T L_G x <= (1+eps) x^T L_H x] for all [x].
    For moderate [n] we verify this exactly: the extreme generalized
    eigenvalues of the pencil [(L_G, L_H)] are the tight constants.  For
    larger instances [probe] gives a cheap randomized necessary condition. *)

open Lbcc_util
module Graph = Lbcc_graph.Graph

type certificate = {
  lambda_min : float;  (** min over [x ⟂ nullspace] of [x^T L_G x / x^T L_H x] *)
  lambda_max : float;
  epsilon_achieved : float;
      (** smallest [eps] with [(1-eps) L_H <= L_G <= (1+eps) L_H];
          [infinity] if [H] fails to dominate the pencil at all *)
}

val exact : Graph.t -> Graph.t -> certificate
(** Dense, eigensolver-backed certificate; [O(n^3)].
    Both graphs must share the vertex set. *)

val probe : Prng.t -> Graph.t -> Graph.t -> samples:int -> certificate
(** Randomized quadratic-form probes with mean-centered Gaussian vectors:
    returns the extreme observed Rayleigh quotients.  A necessary condition
    only ([lambda] range is inner-approximated). *)

val is_sparsifier : ?tol:float -> Graph.t -> Graph.t -> epsilon:float -> bool
(** [is_sparsifier g h ~epsilon] checks the exact certificate against
    [epsilon], with a small numerical slack [tol]. *)

val power : Prng.t -> Graph.t -> Graph.t -> iters:int -> certificate
(** Extremal generalized eigenvalues of [(L_G, L_H)] by power iteration on
    [L_H^+ L_G] (for [lambda_max]) and [L_G^+ L_H] (for [lambda_min]),
    using direct factorizations of both Laplacians.  Much faster than
    {!exact} for [n] in the hundreds-to-thousands, converging to the true
    extremes as [iters] grows (both graphs must be connected). *)
