lib/lp/mixed_ball.mli: Lbcc_linalg Lbcc_net
