lib/lp/mixed_ball.ml: Array Float Fun Hashtbl Lbcc_linalg Lbcc_net List
