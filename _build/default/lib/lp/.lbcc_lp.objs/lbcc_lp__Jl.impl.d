lib/lp/jl.ml: Array Float Int64 Lbcc_linalg Lbcc_util Stdlib
