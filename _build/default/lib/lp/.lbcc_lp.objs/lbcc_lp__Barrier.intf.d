lib/lp/barrier.mli:
