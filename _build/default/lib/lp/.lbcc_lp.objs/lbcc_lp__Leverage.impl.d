lib/lp/leverage.ml: Array Bits Float Int64 Jl Lazy Lbcc_linalg Lbcc_net Lbcc_util Prng Stdlib
