lib/lp/ipm.ml: Array Bits Float Format Lbcc_linalg Lbcc_net Lbcc_util Leverage Lewis Mixed_ball Problem Stdlib
