lib/lp/problem.mli: Barrier Lbcc_linalg
