lib/lp/ipm.mli: Lbcc_linalg Lbcc_net Lbcc_util Prng Problem
