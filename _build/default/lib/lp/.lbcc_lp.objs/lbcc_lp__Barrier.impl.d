lib/lp/barrier.ml: Float
