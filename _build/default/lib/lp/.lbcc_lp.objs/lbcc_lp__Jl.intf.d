lib/lp/jl.mli: Lbcc_linalg
