lib/lp/lewis.mli: Lbcc_linalg
