lib/lp/lewis.ml: Array Float Lbcc_linalg Stdlib
