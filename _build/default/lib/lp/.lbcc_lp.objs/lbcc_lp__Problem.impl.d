lib/lp/problem.ml: Array Barrier Float Lbcc_linalg
