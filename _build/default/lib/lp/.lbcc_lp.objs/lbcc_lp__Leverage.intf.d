lib/lp/leverage.mli: Lbcc_linalg Lbcc_net Lbcc_util
