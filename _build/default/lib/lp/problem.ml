module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense
module Sparse = Lbcc_linalg.Sparse

type t = {
  a : Sparse.t;
  b : Vec.t;
  c : Vec.t;
  barriers : Barrier.t array;
}

let make ~a ~b ~c ~lo ~hi =
  let m = Sparse.rows a and n = Sparse.cols a in
  if Vec.dim b <> n then invalid_arg "Problem.make: b must have dim n";
  if Vec.dim c <> m then invalid_arg "Problem.make: c must have dim m";
  if Array.length lo <> m || Array.length hi <> m then
    invalid_arg "Problem.make: bounds must have dim m";
  let barriers = Array.init m (fun i -> Barrier.make ~lo:lo.(i) ~hi:hi.(i)) in
  { a; b; c; barriers }

let m t = Sparse.rows t.a
let n t = Sparse.cols t.a

let interior t x =
  Vec.dim x = m t && Array.for_all2 (fun bar xi -> Barrier.contains bar xi) t.barriers x

let equality_residual t x =
  let r = Vec.sub (Sparse.matvec_t t.a x) t.b in
  Vec.norm2 r /. Float.max 1.0 (Vec.norm2 t.b)

let objective t x = Vec.dot t.c x

let phi' t x = Array.mapi (fun i xi -> Barrier.dphi t.barriers.(i) xi) x
let phi'' t x = Array.mapi (fun i xi -> Barrier.ddphi t.barriers.(i) xi) x

let analytic_center_start t = Array.map Barrier.center t.barriers

let big_u t ~x0 =
  let acc = ref (Vec.norm_inf t.c) in
  Array.iteri
    (fun i bar ->
      let lo = Barrier.lo bar and hi = Barrier.hi bar in
      if Float.is_finite hi then acc := Float.max !acc (1.0 /. (hi -. x0.(i)));
      if Float.is_finite lo then acc := Float.max !acc (1.0 /. (x0.(i) -. lo));
      if Float.is_finite lo && Float.is_finite hi then
        acc := Float.max !acc (hi -. lo))
    t.barriers;
  !acc

type normal_solver = {
  solve : d:Vec.t -> rhs:Vec.t -> Vec.t;
  rounds : int;
}

let dense_normal_solver t =
  let solve ~d ~rhs =
    (* Same relative floor as the Laplacian backend: a coordinate pinned to
       its boundary must not zero out a row of the Gram matrix. *)
    let dmax = Array.fold_left Float.max 0.0 d in
    let d = Array.map (fun x -> Float.max x (1e-120 *. Float.max dmax 1e-300)) d in
    let gram = Sparse.gram t.a d in
    Dense.solve gram rhs
  in
  { solve; rounds = 1 }
