open Lbcc_util
module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense
module Sparse = Lbcc_linalg.Sparse
module Rounds = Lbcc_net.Rounds

type operator = {
  rows : int;
  cols : int;
  apply : Vec.t -> Vec.t;
  apply_t : Vec.t -> Vec.t;
  solve_normal : Vec.t -> Vec.t;
  solve_rounds : int;
}

let of_row_scaled ?(solve_rounds = 1) a d =
  if Vec.dim d <> Sparse.rows a then
    invalid_arg "Leverage.of_row_scaled: dimension mismatch";
  let apply x = Vec.mul d (Sparse.matvec a x) in
  let apply_t y = Sparse.matvec_t a (Vec.mul d y) in
  (* Gram matrix (DA)^T (DA) = A^T D^2 A, factored once per operator. *)
  let gram = Sparse.gram a (Vec.mul d d) in
  let factor = lazy (Dense.factorize gram) in
  let solve_normal z = Dense.solve_factored (Lazy.force factor) z in
  { rows = Sparse.rows a; cols = Sparse.cols a; apply; apply_t; solve_normal; solve_rounds }

let exact op =
  Vec.init op.rows (fun i ->
      let p = op.apply (op.solve_normal (op.apply_t (Vec.basis op.rows i))) in
      p.(i))

let approximate ?accountant ~prng ~eta op =
  if eta <= 0.0 then invalid_arg "Leverage.approximate: eta must be positive";
  let m = op.rows in
  (* Never use more probes than exact computation needs: for small [m]
     (simulation scale) the JL constants exceed [m], and [m] basis probes
     compute sigma exactly at the same communication pattern. *)
  let k_jl = Jl.rows_for ~m ~eta:(eta /. 4.0) in
  let k = Stdlib.min k_jl m in
  let use_basis = k >= m in
  (* The leader samples Theta(log^2 m) bits and broadcasts them: one
     broadcast superstep of that size. *)
  let seed = Int64.to_int (Prng.next_int64 prng) in
  (match accountant with
  | Some acc ->
      Rounds.charge_broadcast acc ~label:"leverage-seed" ~bits:(Jl.seed_bits ~m)
  | None -> ());
  let sigma = Vec.zeros m in
  for j = 0 to k - 1 do
    let q = if use_basis then Vec.basis m j else Jl.row ~seed ~k ~j ~m in
    (match accountant with
    | Some acc ->
        (* M^T q and M y are vector exchanges; the normal solve charges
           itself through the operator ([solve_rounds] documents it). *)
        Rounds.charge_vector acc ~label:"leverage-matvec" ~entry_bits:(Bits.float_bits ());
        Rounds.charge_vector acc ~label:"leverage-matvec" ~entry_bits:(Bits.float_bits ())
    | None -> ());
    let p = op.apply (op.solve_normal (op.apply_t q)) in
    for i = 0 to m - 1 do
      sigma.(i) <- sigma.(i) +. (p.(i) *. p.(i))
    done
  done;
  sigma

let sum_check sigma ~rank =
  let s = Vec.sum sigma in
  Float.abs (s -. float_of_int rank) /. float_of_int (Stdlib.max rank 1)
