(** Seed-driven Johnson–Lindenstrauss projections (Lemma 4.5's
    communication pattern).

    Achlioptas-style dense random-sign projections need one fresh coin per
    matrix entry — infeasible under the broadcast constraint, since an edge's
    coin cannot reach the other endpoint.  Kane–Nelson [KN14] show a family
    seeded by [O(log(1/delta) log m)] uniform bits suffices; operationally,
    the leader broadcasts a short seed and every vertex expands the same
    projection locally.  We realize exactly that: a SplitMix64-keyed family
    of rows with entries [±1/sqrt k], derived deterministically from
    [(seed, row, column)]. *)

module Vec = Lbcc_linalg.Vec

val rows_for : m:int -> eta:float -> int
(** The projection dimension [k = ceil(c log(m) / eta^2)]. *)

val seed_bits : m:int -> int
(** Number of random bits the leader broadcasts, [Theta(log^2 m)]. *)

val row : seed:int -> k:int -> j:int -> m:int -> Vec.t
(** [row ~seed ~k ~j ~m] is [Q^(j)], the [j]-th row of the seeded projection
    [Q ∈ R^{k×m}], with entries [±1/sqrt k].  Pure: any party holding the
    seed reconstructs the same row. *)

val entry : seed:int -> k:int -> j:int -> i:int -> float
(** Single entry [Q_{j,i}], for the distributed evaluation where vertex [v]
    only materializes the coordinates it owns. *)

val apply : seed:int -> k:int -> Vec.t -> Vec.t
(** [apply ~seed ~k x = Q x ∈ R^k]. *)
