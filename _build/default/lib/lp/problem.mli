(** Linear programs in the paper's form (Section 4):

    [min c^T x  over  { x in R^m : A^T x = b,  l_i <= x_i <= u_i }]

    with [A ∈ R^{m×n}] of rank [n] (so flow LPs have [n ≈ |V|] and
    [m ≈ |E|]).  Every coordinate domain carries its self-concordant
    barrier. *)

module Vec = Lbcc_linalg.Vec
module Sparse = Lbcc_linalg.Sparse

type t = {
  a : Sparse.t;  (** [m x n] constraint matrix *)
  b : Vec.t;  (** demands, [R^n] *)
  c : Vec.t;  (** costs, [R^m] *)
  barriers : Barrier.t array;
}

val make :
  a:Sparse.t -> b:Vec.t -> c:Vec.t -> lo:float array -> hi:float array -> t
(** @raise Invalid_argument on dimension mismatches or empty domains. *)

val m : t -> int
val n : t -> int

val interior : t -> Vec.t -> bool
(** Strict interiority of every coordinate. *)

val equality_residual : t -> Vec.t -> float
(** [||A^T x - b||_2 / max(1, ||b||_2)]. *)

val objective : t -> Vec.t -> float

val phi' : t -> Vec.t -> Vec.t
val phi'' : t -> Vec.t -> Vec.t

val analytic_center_start : t -> Vec.t
(** The coordinate-wise barrier minimizer — an interior point, though not
    necessarily satisfying [A^T x = b] (callers supply feasible starts;
    this is a convenience for tests). *)

val big_u : t -> x0:Vec.t -> float
(** The parameter [U] of Theorem 1.4:
    [max(||1/(u - x0)||_inf, ||1/(x0 - l)||_inf, ||u - l||_inf, ||c||_inf)]
    (infinite entries of [u - l] are skipped, as the paper's finite-[U]
    statements assume box-bounded coordinates). *)

type normal_solver = {
  solve : d:Vec.t -> rhs:Vec.t -> Vec.t;
      (** [(A^T diag(d) A)^{-1} rhs] to high precision, [d > 0] *)
  rounds : int;  (** the [T(n,m)] charged per call *)
}

val dense_normal_solver : t -> normal_solver
(** Reference backend: dense Gram assembly + LU per call. *)
