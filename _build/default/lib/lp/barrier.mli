(** 1-self-concordant barrier functions per coordinate domain (Section 4.1).

    For [dom(x_i) = (l_i, u_i)] with at least one bound finite:
    - [l] finite, [u = +inf]: log barrier [-log (x - l)];
    - [l = -inf], [u] finite: log barrier [-log (u - x)];
    - both finite: the trigonometric barrier [-log cos (a x + b)] with
      [a = pi / (u - l)], [b = -pi/2 * (u + l)/(u - l)]. *)

type t

val make : lo:float -> hi:float -> t
(** @raise Invalid_argument if both bounds are infinite or [lo >= hi]. *)

val lo : t -> float
val hi : t -> float

val contains : t -> float -> bool
(** Strict interior membership. *)

val value : t -> float -> float
val dphi : t -> float -> float
(** First derivative [phi']. *)

val ddphi : t -> float -> float
(** Second derivative [phi'']; always positive on the domain. *)

val center : t -> float
(** The minimizer of the barrier (where [phi' = 0]); for one-sided domains
    a canonical interior point one unit from the bound. *)
