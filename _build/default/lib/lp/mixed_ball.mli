(** Projection on a mixed norm ball (Lemma 4.10).

    Solves [arg max { a^T x : ||x||_2 + ||l^{-1} x||_inf <= 1 }] for
    [l > 0].  Writing [s = t/(1-t)] for the ∞-radius share [t], the
    maximizer clamps the coordinates with the largest [|a_i|/l_i] to
    [± s l_i] and spends the remaining 2-norm budget along [a]; the
    objective [g(t)] is concave, so its maximum is found by a
    golden-section search over [t], each evaluation using only three
    prefix sums of the (implicitly) sorted coordinates — the quantities a
    Broadcast Congested Clique can aggregate in [O(log(U/eps))] rounds
    per query (we charge exactly that). *)

module Vec = Lbcc_linalg.Vec

type result = {
  x : Vec.t;
  value : float;  (** attained [a^T x] *)
  t : float;  (** optimal ∞/2 budget split *)
  clamped : int;  (** number of clamped coordinates, [i_t] *)
  evaluations : int;  (** number of [g] evaluations (network queries) *)
  rounds : int;  (** rounds charged when an accountant is supplied *)
}

val maximize : ?accountant:Lbcc_net.Rounds.t -> a:Vec.t -> l:Vec.t -> unit -> result
(** The distributed algorithm.
    @raise Invalid_argument unless [dim a = dim l] and [l > 0]. *)

val brute_force : a:Vec.t -> l:Vec.t -> unit -> result
(** Reference maximizer: dense scan over a fine [t]-grid with local
    refinement; [O(m log m + grid)]. *)

val feasible : ?tol:float -> l:Vec.t -> Vec.t -> bool
(** Membership in the ball [||x||_2 + ||l^{-1} x||_inf <= 1 + tol]. *)
