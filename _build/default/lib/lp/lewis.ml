module Vec = Lbcc_linalg.Vec

type params = {
  step_scale : float;
  max_fixed_point_iters : int;
  leverage_eta : float;
}

let default_params =
  { step_scale = 0.25; max_fixed_point_iters = 200; leverage_eta = 0.05 }

(* sigma(W^{1/2 - 1/p} M) given a leverage oracle for row-scaled M. *)
let scaled_sigma ~leverage ~p w =
  let expo = 0.5 -. (1.0 /. p) in
  let d = Vec.map (fun wi -> Float.max wi 1e-300 ** expo) w in
  leverage d

let residual ~leverage ~p w =
  let sigma = scaled_sigma ~leverage ~p w in
  let dev = Vec.map2 (fun wi si -> Float.abs (si -. wi) /. Float.max wi 1e-300) w sigma in
  Vec.max_elt dev

let fixed_point ?(params = default_params) ~leverage ~p ~w0 ~eta () =
  let w = ref (Vec.copy w0) in
  let iters = ref 0 in
  let continue_ = ref true in
  let prev_dev = ref infinity in
  while !continue_ && !iters < params.max_fixed_point_iters do
    let sigma = scaled_sigma ~leverage ~p !w in
    (* Cohen–Peng contractive update: w <- sigma^{p/2} w^{1-p/2}
       (a contraction in log space with factor |1 - p/2| for p < 4);
       plain w <- sigma diverges for p < 2. *)
    let next =
      Vec.map2
        (fun wi si ->
          let si = Float.max si 1e-300 and wi = Float.max wi 1e-300 in
          Float.max 1e-12 ((si ** (p /. 2.0)) *. (wi ** (1.0 -. (p /. 2.0)))))
        !w sigma
    in
    (* Movement-based stopping: rows whose weight sits at the numerical
       floor (coordinates pinned to the boundary) keep a unit *relative*
       residual forever; what the IPM needs is that the iterate has
       stopped moving, which bounds the distance to the fixed point via
       the contraction factor. *)
    let dev =
      Vec.max_elt (Vec.map2 (fun wi ni -> Float.abs (log (ni /. wi))) !w next)
    in
    w := next;
    incr iters;
    (* Converged, or the movement has plateaued: weights floored at the
       numerical boundary can sustain a small limit cycle, and once the
       movement stops contracting further iterations buy nothing. *)
    if dev <= eta /. 2.0 then continue_ := false
    else if !iters > 3 && dev >= 0.8 *. !prev_dev then continue_ := false;
    prev_dev := dev
  done;
  (!w, !iters)

let compute_apx_weights ?(params = default_params) ~leverage ~p ~w0 ~eta () =
  (* Algorithm 7 with the paper's shape: damped step toward the fixed point,
     clamped to a multiplicative trust region around the warm start. *)
  let damping = Float.max 4.0 (8.0 /. p) in
  let r = Float.min 0.5 (p *. p *. (4.0 -. p) /. 16.0) in
  let t =
    let n = float_of_int (Vec.dim w0) in
    Stdlib.max 2
      (Stdlib.min params.max_fixed_point_iters
         (int_of_float
            (Float.ceil (4.0 *. ((p /. 2.0) +. (2.0 /. p)) *. log (n /. Float.min 0.5 eta)))))
  in
  let lo = Vec.scale (1.0 -. r) w0 and hi = Vec.scale (1.0 +. r) w0 in
  let w = ref (Vec.copy w0) in
  let iters = ref 0 in
  for _j = 1 to t - 1 do
    incr iters;
    let sigma = scaled_sigma ~leverage ~p !w in
    let next = Vec.copy !w in
    for i = 0 to Vec.dim next - 1 do
      let wi = Float.max !w.(i) 1e-300 in
      let cand = wi -. ((w0.(i) -. (w0.(i) /. wi *. sigma.(i))) /. damping) in
      next.(i) <- Float.min hi.(i) (Float.max lo.(i) cand)
    done;
    w := next
  done;
  (!w, !iters)

let compute_initial_weights ?(params = default_params) ~leverage_for ~m ~n
    ~p_target ~eta () =
  if p_target <= 0.0 || p_target > 2.0 then
    invalid_arg "Lewis.compute_initial_weights: p_target must be in (0, 2]";
  (* p = 2: Lewis weights are exactly the leverage scores. *)
  let w =
    ref
      (Vec.map
         (fun si -> Float.max si 1e-12)
         (leverage_for ~p:2.0 (Vec.ones m)))
  in
  let p = ref 2.0 in
  let steps = ref 0 in
  let nf = float_of_int n and mf = float_of_int m in
  let denom = sqrt (nf *. log ((mf *. Float.exp 2.0 /. nf) +. Float.exp 1.0)) in
  while !p <> p_target do
    incr steps;
    let h = params.step_scale *. Float.min 2.0 !p /. denom in
    let p_new =
      if !p > p_target then Float.max p_target (!p -. h)
      else Float.min p_target (!p +. h)
    in
    (* Warm start: w^{p_new / p} per Algorithm 8. *)
    let w0 = Vec.map (fun wi -> Float.max wi 1e-300 ** (p_new /. !p)) !w in
    let leverage = leverage_for ~p:p_new in
    let w', _ =
      fixed_point ~params ~leverage ~p:p_new ~w0 ~eta:(Float.max eta 0.05)
        ()
    in
    w := w';
    p := p_new
  done;
  let leverage = leverage_for ~p:p_target in
  let w_final, _ = fixed_point ~params ~leverage ~p:p_target ~w0:!w ~eta () in
  (w_final, !steps)

let regularized w ~n ~m =
  let c0 = float_of_int n /. (2.0 *. float_of_int m) in
  Vec.map (fun wi -> wi +. c0) w
