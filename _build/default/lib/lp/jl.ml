module Vec = Lbcc_linalg.Vec

let rows_for ~m ~eta =
  if eta <= 0.0 then invalid_arg "Jl.rows_for: eta must be positive";
  let c = 4.0 in
  Stdlib.max 1
    (int_of_float (Float.ceil (c *. log (float_of_int (Stdlib.max 2 m)) /. (eta *. eta))))

let seed_bits ~m =
  let lg = Lbcc_util.Bits.ceil_log2 (Stdlib.max 2 m) in
  lg * lg

(* A tiny keyed hash: SplitMix64 finalizer over (seed, j, i). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let sign_at ~seed ~j ~i =
  let h =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.add (Int64.mul (Int64.of_int j) 0xD1B54A32D192ED03L) (Int64.of_int i)))
  in
  if Int64.compare (Int64.logand h 1L) 0L = 0 then 1.0 else -1.0

let entry ~seed ~k ~j ~i = sign_at ~seed ~j ~i /. sqrt (float_of_int k)

let row ~seed ~k ~j ~m = Vec.init m (fun i -> entry ~seed ~k ~j ~i)

let apply ~seed ~k x =
  let m = Vec.dim x in
  Vec.init k (fun j ->
      let acc = ref 0.0 in
      for i = 0 to m - 1 do
        acc := !acc +. (sign_at ~seed ~j ~i *. x.(i))
      done;
      !acc /. sqrt (float_of_int k))
