(** The interior point method: [LPSolve], [PathFollowing],
    [CenteringInexact] (Algorithms 9–11; Theorem 1.4).

    Weighted path following: each progress step multiplies the path
    parameter [t] by [(1 ± alpha)] with [alpha = step_scale / sqrt(c1)],
    [c1 = ||w||_1] — so Lewis weights ([||w||_1 <= 2n]) give
    [O(sqrt n log(t_end/t_start))] iterations and the unweighted log
    barrier ([||w||_1 = m]) gives [O(sqrt m ...)]: experiment E10 measures
    exactly this separation.  Each [CenteringInexact] performs one projected
    Newton step (one normal-equation solve through the supplied backend,
    charged [T(n,m)] rounds) and refreshes the weights.

    Weight refresh modes:
    - [`Recompute]: recompute regularized Lewis weights at the new point
      (warm-started fixed point) — the robust default; what the paper's
      update tracks.
    - [`Paper]: Algorithm 11's update — approximate weights, soft-max
      potential gradient, step obtained by {!Mixed_ball.maximize}, all with
      the printed constants.  Exercised by tests; impractically conservative
      for full solves (DESIGN.md, substitution 5). *)

open Lbcc_util
module Vec = Lbcc_linalg.Vec

type weighting = Lewis | Unweighted

type weight_update = [ `Recompute | `Paper ]

type leverage_mode = [ `Exact | `Jl of float ]

type config = {
  weighting : weighting;
  weight_update : weight_update;
  leverage_mode : leverage_mode;
  step_scale : float;  (** multiplies [1/sqrt(c1)] in [alpha] *)
  lewis_eta : float;  (** fixed-point accuracy of weight recomputation *)
  final_centering : int;  (** extra centering steps at [t_end] *)
  max_iterations : int;  (** hard cap on progress steps per phase *)
  t1_c : float;  (** scale of the phase-1 target [t_1] *)
  delta_target : float;
      (** repeat centering after each progress step until the centrality
          measure drops below this *)
  max_centering_per_step : int;
  verbose : bool;
}

val default_config : config

type trace = {
  iterations : int;  (** progress steps across both phases *)
  centering_calls : int;
  rounds : int;  (** rounds charged (when an accountant is given) *)
  max_eq_residual : float;  (** worst [||A^T x - b||] drift observed *)
  final_delta : float;  (** last centrality measure *)
}

type centering_state = {
  x : Vec.t;
  w : Vec.t;
  delta : float;
}

val centering_inexact :
  ?accountant:Lbcc_net.Rounds.t ->
  config:config ->
  prng:Prng.t ->
  problem:Problem.t ->
  solver:Problem.normal_solver ->
  t:float ->
  cost:Vec.t ->
  centering_state ->
  centering_state
(** One Newton step plus weight refresh (Algorithm 11). *)

val path_following :
  ?accountant:Lbcc_net.Rounds.t ->
  config:config ->
  prng:Prng.t ->
  problem:Problem.t ->
  solver:Problem.normal_solver ->
  x:Vec.t ->
  w:Vec.t ->
  t_start:float ->
  t_end:float ->
  eta:float ->
  cost:Vec.t ->
  unit ->
  Vec.t * Vec.t * trace
(** Algorithm 10. *)

val initial_weights :
  ?accountant:Lbcc_net.Rounds.t ->
  config:config ->
  prng:Prng.t ->
  problem:Problem.t ->
  solver:Problem.normal_solver ->
  x0:Vec.t ->
  unit ->
  Vec.t * int
(** Regularized initial weights at [x0] (Algorithm 8 homotopy for Lewis
    weighting, all-ones for the unweighted baseline); returns the homotopy
    step count. *)

val lp_solve :
  ?accountant:Lbcc_net.Rounds.t ->
  ?config:config ->
  prng:Prng.t ->
  problem:Problem.t ->
  solver:Problem.normal_solver ->
  x0:Vec.t ->
  eps:float ->
  unit ->
  Vec.t * trace
(** Algorithm 9: centers [x0], then follows the path until the duality-gap
    parameter reaches [t_2 = 2m/eps]; returns a strictly feasible [x] with
    [c^T x <= OPT + eps] (up to the calibrated-constants caveat of
    DESIGN.md). *)
