type kind =
  | Lower of float (* -log (x - l) *)
  | Upper of float (* -log (u - x) *)
  | Both of { a : float; b : float; lo : float; hi : float }

type t = { kind : kind; lo : float; hi : float }

(* Distances to the boundary are clamped away from zero so that barrier
   derivatives stay finite in doubles: a coordinate within 1e-50 of its
   bound is numerically on the boundary, and an infinite phi'' would
   zero out rows of the normal matrix. *)
let safe_dist d = Float.max d 1e-50

let make ~lo ~hi =
  if lo >= hi then invalid_arg "Barrier.make: empty domain";
  match (Float.is_finite lo, Float.is_finite hi) with
  | true, false -> { kind = Lower lo; lo; hi }
  | false, true -> { kind = Upper hi; lo; hi }
  | true, true ->
      let a = Float.pi /. (hi -. lo) in
      let b = -.(Float.pi /. 2.0) *. ((hi +. lo) /. (hi -. lo)) in
      { kind = Both { a; b; lo; hi }; lo; hi }
  | false, false ->
      invalid_arg "Barrier.make: at least one bound must be finite"

let lo t = t.lo
let hi t = t.hi

let contains t x = x > t.lo && x < t.hi

let value t x =
  match t.kind with
  | Lower l -> -.log (safe_dist (x -. l))
  | Upper u -> -.log (safe_dist (u -. x))
  | Both { a; b; _ } -> -.log (safe_dist (cos ((a *. x) +. b)))

let dphi t x =
  match t.kind with
  | Lower l -> -1.0 /. safe_dist (x -. l)
  | Upper u -> 1.0 /. safe_dist (u -. x)
  | Both { a; b; _ } ->
      a *. sin ((a *. x) +. b) /. safe_dist (cos ((a *. x) +. b))

let ddphi t x =
  match t.kind with
  | Lower l ->
      let d = safe_dist (x -. l) in
      1.0 /. (d *. d)
  | Upper u ->
      let d = safe_dist (u -. x) in
      1.0 /. (d *. d)
  | Both { a; b; _ } ->
      let c = safe_dist (cos ((a *. x) +. b)) in
      a *. a /. (c *. c)

let center t =
  match t.kind with
  | Lower l -> l +. 1.0
  | Upper u -> u -. 1.0
  | Both { lo; hi; _ } -> (lo +. hi) /. 2.0
