(** Approximate leverage scores (Algorithm 6, [ComputeLeverageScores];
    Lemma 4.5).

    [sigma(M) = diag(M (M^T M)^{-1} M^T)].  Using
    [sigma(M)_i = ||M (M^T M)^{-1} M^T e_i||_2^2] and a seed-driven JL
    projection [Q], each probe [j] computes
    [p^(j) = M (M^T M)^{-1} M^T Q^(j)] with one [M^T]-matvec, one normal
    system solve, and one [M]-matvec; [sigma ≈ sum_j (p^(j))^2]. *)

module Vec = Lbcc_linalg.Vec
module Sparse = Lbcc_linalg.Sparse

type operator = {
  rows : int;  (** m *)
  cols : int;  (** n *)
  apply : Vec.t -> Vec.t;  (** [M x] *)
  apply_t : Vec.t -> Vec.t;  (** [M^T y] *)
  solve_normal : Vec.t -> Vec.t;  (** [(M^T M)^{-1} z] to high precision *)
  solve_rounds : int;
      (** the [T(n,m)] of Theorem 1.4: rounds charged per normal solve *)
}

val of_row_scaled : ?solve_rounds:int -> Sparse.t -> Vec.t -> operator
(** [of_row_scaled a d] is the operator for [M = diag(d) * a], with the
    normal solves done by dense factorization of the Gram matrix (the
    reference backend; flow instances override with the Laplacian path). *)

val exact : operator -> Vec.t
(** Exact leverage scores via [n] normal solves — [O(n)] probes; reference
    for tests and small instances. *)

val approximate :
  ?accountant:Lbcc_net.Rounds.t ->
  prng:Lbcc_util.Prng.t ->
  eta:float ->
  operator ->
  Vec.t
(** The distributed algorithm: the leader draws a seed ([Theta(log^2 m)]
    bits, charged as one broadcast), every vertex expands [Q], and
    [k = O(log(m)/eta^2)] probes are evaluated, each charged two vector
    exchanges plus [solve_rounds]. *)

val sum_check : Vec.t -> rank:int -> float
(** [sum sigma_i] must equal [rank(M)]; returns the relative deviation —
    a cheap global sanity certificate used by tests. *)
