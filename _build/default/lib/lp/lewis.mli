(** Regularized ℓ_p Lewis weights (Definition 4.3; Algorithms 7–8).

    [w_p(M)] is the unique fixed point of [w = sigma(W^{1/2 - 1/p} M)].
    [compute_apx_weights] is the paper's damped iteration from a warm start
    (Lemma 4.6); [compute_initial_weights] homotopes [p] from 2 (where Lewis
    weights are plain leverage scores) down to the target in
    [O(sqrt n)]-ish steps.  [fixed_point] is the classical undamped
    iteration (geometric for [p < 4]) used as the reference in tests.

    Practical constants: the paper's damping [L], cap [r] and step [h] carry
    factors like [2^-20] that make progress invisible at laptop scale; they
    are exposed as parameters with calibrated defaults and the theory
    constants documented alongside (DESIGN.md, substitution 5). *)

module Vec = Lbcc_linalg.Vec

type params = {
  step_scale : float;
      (** multiplies the homotopy step [h]; paper value [p^2(4-p)/2^20] per
          unit of [min(2,p)/sqrt(n log(m e^2/n))] *)
  max_fixed_point_iters : int;
  leverage_eta : float;  (** probe accuracy for inner leverage scores *)
}

val default_params : params

val residual : leverage:(Vec.t -> Vec.t) -> p:float -> Vec.t -> float
(** [|| w^{-1} (sigma(W^{1/2-1/p} M) - w) ||_inf] — distance from the Lewis
    fixed point; [leverage d] must return [sigma(diag(d) M)]. *)

val fixed_point :
  ?params:params ->
  leverage:(Vec.t -> Vec.t) ->
  p:float ->
  w0:Vec.t ->
  eta:float ->
  unit ->
  Vec.t * int
(** Undamped iteration [w <- sigma(W^{1/2-1/p} M)] until the residual drops
    below [eta] (or the iteration cap); returns the weights and the
    iteration count. *)

val compute_apx_weights :
  ?params:params ->
  leverage:(Vec.t -> Vec.t) ->
  p:float ->
  w0:Vec.t ->
  eta:float ->
  unit ->
  Vec.t * int
(** Algorithm 7: damped and clamped to the trust region
    [\[(1-r) w0, (1+r) w0\]] around the warm start. *)

val compute_initial_weights :
  ?params:params ->
  leverage_for:(p:float -> Vec.t -> Vec.t) ->
  m:int ->
  n:int ->
  p_target:float ->
  eta:float ->
  unit ->
  Vec.t * int
(** Algorithm 8: start at [p = 2] with [w = sigma(M)]-ish, walk [p] to
    [p_target] in steps of [h = step_scale * min(2,p)/sqrt(n log(m e^2/n))],
    re-solving the fixed point at each stop; returns the weights and the
    total number of homotopy steps. *)

val regularized : Vec.t -> n:int -> m:int -> Vec.t
(** [g(x) = w + n/(2m)] — the regularization of Definition 4.3. *)
