open Lbcc_util
module Graph = Lbcc_graph.Graph
module Network = Lbcc_flow.Network
module Vec = Lbcc_linalg.Vec
module Rounds = Lbcc_net.Rounds
module Model = Lbcc_net.Model

let version = "1.0.0"

type rounds_report = {
  total : int;
  breakdown : (string * int) list;
  bandwidth : int;
}

let report_of acc =
  {
    total = Rounds.rounds acc;
    breakdown = Rounds.breakdown acc;
    bandwidth = Rounds.bandwidth acc;
  }

type sparsifier_result = {
  sparsifier : Graph.t;
  epsilon_achieved : float;
  out_degree_max : int;
  rounds : rounds_report;
}

let sparsify ?(seed = 1) ?(epsilon = 0.5) ?t g =
  let n = Graph.n g in
  let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n) in
  let prng = Prng.create seed in
  let r = Lbcc_sparsifier.Sparsify.run ~accountant:acc ?t ~prng ~graph:g ~epsilon () in
  let cert =
    if n <= 400 then Lbcc_sparsifier.Certify.exact g r.Lbcc_sparsifier.Sparsify.sparsifier
    else
      Lbcc_sparsifier.Certify.probe (Prng.split prng) g
        r.Lbcc_sparsifier.Sparsify.sparsifier ~samples:64
  in
  let out_deg = Lbcc_sparsifier.Sparsify.out_degrees r in
  {
    sparsifier = r.Lbcc_sparsifier.Sparsify.sparsifier;
    epsilon_achieved = cert.Lbcc_sparsifier.Certify.epsilon_achieved;
    out_degree_max = Array.fold_left Stdlib.max 0 out_deg;
    rounds = report_of acc;
  }

type laplacian_result = {
  solution : Vec.t;
  residual : float;
  iterations : int;
  preprocessing_rounds : int;
  solve_rounds : int;
}

let solve_laplacian ?(seed = 1) ?(eps = 1e-8) g ~b =
  let prng = Prng.create seed in
  let solver = Lbcc_laplacian.Solver.preprocess ~prng ~graph:g () in
  let r = Lbcc_laplacian.Solver.solve solver ~b ~eps in
  {
    solution = r.Lbcc_laplacian.Solver.solution;
    residual = r.Lbcc_laplacian.Solver.residual;
    iterations = r.Lbcc_laplacian.Solver.iterations;
    preprocessing_rounds = Lbcc_laplacian.Solver.preprocessing_rounds solver;
    solve_rounds = r.Lbcc_laplacian.Solver.rounds;
  }

type flow_result = {
  flow : float array;
  value : int;
  cost : int;
  exact : bool;
  ipm_iterations : int;
  rounds : rounds_report;
}

let min_cost_max_flow ?(seed = 1) net =
  let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n:net.Network.n) in
  let r = Lbcc_flow.Mcmf_lp.solve ~accountant:acc ~prng:(Prng.create seed) net in
  {
    flow = r.Lbcc_flow.Mcmf_lp.flow;
    value = r.Lbcc_flow.Mcmf_lp.value;
    cost = r.Lbcc_flow.Mcmf_lp.cost;
    exact = r.Lbcc_flow.Mcmf_lp.matches_baseline;
    ipm_iterations = r.Lbcc_flow.Mcmf_lp.iterations;
    rounds = report_of acc;
  }

let effective_resistance ?(seed = 1) g ~s ~t =
  if s = t then 0.0
  else begin
    let n = Graph.n g in
    let b = Vec.zeros n in
    b.(s) <- 1.0;
    b.(t) <- -1.0;
    let r = solve_laplacian ~seed ~eps:1e-10 g ~b in
    r.solution.(s) -. r.solution.(t)
  end
