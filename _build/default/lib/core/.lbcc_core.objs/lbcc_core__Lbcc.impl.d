lib/core/lbcc.ml: Array Lbcc_flow Lbcc_graph Lbcc_laplacian Lbcc_linalg Lbcc_net Lbcc_sparsifier Lbcc_util Prng Stdlib
