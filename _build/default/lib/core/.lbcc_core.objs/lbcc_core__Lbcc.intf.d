lib/core/lbcc.mli: Lbcc_flow Lbcc_graph Lbcc_linalg
