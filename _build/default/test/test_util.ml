open Lbcc_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds differ" true (!same < 4)

let test_prng_float_range () =
  let t = Prng.create 7 in
  for _ = 1 to 10_000 do
    let f = Prng.float t in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_float_mean () =
  let t = Prng.create 9 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.float t
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.01)

let test_prng_bernoulli () =
  let t = Prng.create 3 in
  let hits = ref 0 and n = 40_000 in
  for _ = 1 to n do
    if Prng.bernoulli t 0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 1/4" true (Float.abs (rate -. 0.25) < 0.01)

let test_prng_copy_independent () =
  let a = Prng.create 5 in
  let _ = Prng.next_int64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_prng_split_diverges () =
  let a = Prng.create 5 in
  let b = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_prng_gaussian_moments () =
  let t = Prng.create 11 in
  let n = 50_000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let g = Prng.gaussian t in
    sum := !sum +. g;
    sum2 := !sum2 +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.03);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.0) < 0.05)

let test_prng_shuffle_permutes () =
  let t = Prng.create 13 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

let prop_prng_int_bounds =
  QCheck.Test.make ~name:"Prng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Prng.create seed in
      let v = Prng.int t bound in
      v >= 0 && v < bound)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_variance () =
  check_float "variance" (14.0 /. 3.0) (Stats.variance [| 1.0; 2.0; 3.0; 6.0 |])

let test_stats_quantile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median" 3.0 (Stats.quantile xs 0.5);
  check_float "min" 1.0 (Stats.quantile xs 0.0);
  check_float "max" 5.0 (Stats.quantile xs 1.0);
  check_float "q25" 2.0 (Stats.quantile xs 0.25)

let test_stats_summary () =
  let s = Stats.summarize [| 2.0; 4.0 |] in
  Alcotest.(check int) "count" 2 s.Stats.count;
  check_float "mean" 3.0 s.Stats.mean;
  check_float "median" 3.0 s.Stats.median

let test_stats_linear_fit () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 3.0; 5.0; 7.0; 9.0 |] in
  let slope, intercept = Stats.linear_fit xs ys in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept

let test_stats_scaling_exponent () =
  let ns = [| 10.0; 100.0; 1000.0 |] in
  let ys = Array.map (fun n -> 7.0 *. (n ** 1.5)) ns in
  let a = Stats.scaling_exponent ns ys in
  Alcotest.(check bool) "exponent ~ 1.5" true (Float.abs (a -. 1.5) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Bits                                                                *)

let test_bits_lengths () =
  Alcotest.(check int) "bit_length 0" 1 (Bits.bit_length 0);
  Alcotest.(check int) "bit_length 1" 1 (Bits.bit_length 1);
  Alcotest.(check int) "bit_length 7" 3 (Bits.bit_length 7);
  Alcotest.(check int) "bit_length 8" 4 (Bits.bit_length 8);
  Alcotest.(check int) "bit_length -8" 4 (Bits.bit_length (-8))

let test_bits_ceil_log2 () =
  Alcotest.(check int) "ceil_log2 1" 0 (Bits.ceil_log2 1);
  Alcotest.(check int) "ceil_log2 2" 1 (Bits.ceil_log2 2);
  Alcotest.(check int) "ceil_log2 3" 2 (Bits.ceil_log2 3);
  Alcotest.(check int) "ceil_log2 1024" 10 (Bits.ceil_log2 1024);
  Alcotest.(check int) "ceil_log2 1025" 11 (Bits.ceil_log2 1025)

let test_bits_ceil_div () =
  Alcotest.(check int) "7/3" 3 (Bits.ceil_div 7 3);
  Alcotest.(check int) "6/3" 2 (Bits.ceil_div 6 3);
  Alcotest.(check int) "0/5" 0 (Bits.ceil_div 0 5)

let test_bits_id_bits () =
  Alcotest.(check int) "n=1024" 10 (Bits.id_bits ~n:1024);
  Alcotest.(check int) "n=1" 1 (Bits.id_bits ~n:1)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let test_heap_sorts () =
  let h = Heap.create () in
  let prng = Prng.create 17 in
  let keys = Array.init 500 (fun _ -> Prng.float prng) in
  Array.iteri (fun i k -> Heap.push h k i) keys;
  let out = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (k, _) ->
        out := k :: !out;
        drain ()
  in
  drain ();
  let got = Array.of_list (List.rev !out) in
  let expect = Array.copy keys in
  Array.sort compare expect;
  Alcotest.(check (array (float 0.0))) "heap sorts" expect got

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop empty" true (Heap.pop_min h = None)

let prop_heap_min =
  QCheck.Test.make ~name:"Heap.pop_min returns minimum" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0.0 100.0))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k ()) keys;
      match Heap.pop_min h with
      | Some (k, ()) -> k = List.fold_left Float.min infinity keys
      | None -> false)

let suites =
  [
    ( "util.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "float range" `Quick test_prng_float_range;
        Alcotest.test_case "float mean" `Quick test_prng_float_mean;
        Alcotest.test_case "bernoulli rate" `Quick test_prng_bernoulli;
        Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
        Alcotest.test_case "split diverges" `Quick test_prng_split_diverges;
        Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
        Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        QCheck_alcotest.to_alcotest prop_prng_int_bounds;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "variance" `Quick test_stats_variance;
        Alcotest.test_case "quantile" `Quick test_stats_quantile;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
        Alcotest.test_case "scaling exponent" `Quick test_stats_scaling_exponent;
      ] );
    ( "util.bits",
      [
        Alcotest.test_case "bit lengths" `Quick test_bits_lengths;
        Alcotest.test_case "ceil_log2" `Quick test_bits_ceil_log2;
        Alcotest.test_case "ceil_div" `Quick test_bits_ceil_div;
        Alcotest.test_case "id_bits" `Quick test_bits_id_bits;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "sorts" `Quick test_heap_sorts;
        Alcotest.test_case "empty" `Quick test_heap_empty;
        QCheck_alcotest.to_alcotest prop_heap_min;
      ] );
  ]
