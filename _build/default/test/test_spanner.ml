open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Paths = Lbcc_graph.Paths
module Spanner = Lbcc_spanner.Spanner
module Bundle = Lbcc_sparsifier.Bundle

let run_spanner ?(seed = 1) ~graph ~p ~k () =
  Spanner.run ~prng:(Prng.create seed) ~graph ~p ~k ()

let ones_p g = Array.make (Graph.m g) 1.0

(* With p ≡ 1 the algorithm is Baswana–Sen: nothing is ever rejected. *)
let test_deterministic_no_rejections () =
  for seed = 1 to 5 do
    let prng = Prng.create (100 + seed) in
    let g = Gen.erdos_renyi_connected prng ~n:40 ~p:0.3 ~w_max:6 in
    let r = run_spanner ~seed ~graph:g ~p:(ones_p g) ~k:3 () in
    Alcotest.(check (list int)) "F- empty" [] r.Spanner.fminus;
    Alcotest.(check bool) "views agree" true r.Spanner.views_agree
  done

let stretch_of g fplus = Paths.stretch g (Graph.sub_edges g fplus)

let test_stretch_bound_deterministic () =
  List.iter
    (fun k ->
      for seed = 1 to 3 do
        let prng = Prng.create (7 * seed) in
        let g = Gen.erdos_renyi_connected prng ~n:36 ~p:0.4 ~w_max:5 in
        let r = run_spanner ~seed ~graph:g ~p:(ones_p g) ~k () in
        let s = stretch_of g r.Spanner.fplus in
        Alcotest.(check bool)
          (Printf.sprintf "stretch k=%d seed=%d: %.2f <= %d" k seed s ((2 * k) - 1))
          true
          (s <= float_of_int ((2 * k) - 1) +. 1e-9)
      done)
    [ 1; 2; 3; 4 ]

(* Lemma 3.1: S = (V, F+) is a (2k-1)-spanner of (V, F+ ∪ E'') for every
   E'' disjoint from F. *)
let test_stretch_bound_probabilistic () =
  List.iter
    (fun pe ->
      for seed = 1 to 3 do
        let prng = Prng.create (13 * seed) in
        let g = Gen.erdos_renyi_connected prng ~n:32 ~p:0.35 ~w_max:4 in
        let k = 3 in
        let p = Array.make (Graph.m g) pe in
        let r = run_spanner ~seed ~graph:g ~p ~k () in
        Alcotest.(check bool) "views agree" true r.Spanner.views_agree;
        let in_f = Hashtbl.create 64 in
        List.iter (fun e -> Hashtbl.replace in_f e ()) r.Spanner.fplus;
        List.iter (fun e -> Hashtbl.replace in_f e ()) r.Spanner.fminus;
        let e'' =
          List.filter (fun e -> not (Hashtbl.mem in_f e)) (List.init (Graph.m g) Fun.id)
        in
        let extended = Graph.sub_edges g (List.sort compare (r.Spanner.fplus @ e'')) in
        let h = Graph.sub_edges g r.Spanner.fplus in
        let s = Paths.stretch extended h in
        Alcotest.(check bool)
          (Printf.sprintf "prob stretch p=%.2f: %.2f" pe s)
          true
          (s <= float_of_int ((2 * k) - 1) +. 1e-9)
      done)
    [ 0.25; 0.5; 0.75 ]

(* The coupling of Lemma 3.1's proof: re-running with p ≡ 1 on
   (V, F+ ∪ E'') and the same marking randomness reproduces F+ exactly. *)
let test_coupling_with_deterministic_rerun () =
  for seed = 1 to 4 do
    let prng = Prng.create (31 * seed) in
    let g = Gen.erdos_renyi_connected prng ~n:28 ~p:0.3 ~w_max:4 in
    let k = 3 in
    let p = Array.make (Graph.m g) 0.5 in
    let r = run_spanner ~seed ~graph:g ~p ~k () in
    let in_fminus = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace in_fminus e ()) r.Spanner.fminus;
    let surviving =
      List.filter (fun e -> not (Hashtbl.mem in_fminus e)) (List.init (Graph.m g) Fun.id)
    in
    let g' = Graph.sub_edges g surviving in
    (* Same seed => same per-vertex mark streams (marks are drawn from a
       dedicated stream, one draw per vertex per phase). *)
    let r' = run_spanner ~seed ~graph:g' ~p:(ones_p g') ~k () in
    let fplus' = List.map (fun e -> List.nth surviving e) r'.Spanner.fplus in
    Alcotest.(check (list int)) "same spanner" r.Spanner.fplus (List.sort compare fplus')
  done

let test_p_zero_rejects_everything_tried () =
  let prng = Prng.create 99 in
  let g = Gen.erdos_renyi_connected prng ~n:24 ~p:0.4 ~w_max:3 in
  let p = Array.make (Graph.m g) 0.0 in
  let r = run_spanner ~seed:5 ~graph:g ~p ~k:3 () in
  Alcotest.(check (list int)) "no spanner edges" [] r.Spanner.fplus;
  Alcotest.(check bool) "some edges tried and rejected" true
    (List.length r.Spanner.fminus > 0)

let test_k1_takes_all_edges () =
  let prng = Prng.create 77 in
  let g = Gen.erdos_renyi_connected prng ~n:16 ~p:0.3 ~w_max:4 in
  let r = run_spanner ~seed:2 ~graph:g ~p:(ones_p g) ~k:1 () in
  Alcotest.(check int) "spanner = graph for k=1" (Graph.m g)
    (List.length r.Spanner.fplus)

let test_spanner_size_reasonable () =
  (* |F+| = O(k n^{1+1/k}); check against the bound with a generous
     constant on a dense graph where sparsification is visible. *)
  let prng = Prng.create 55 in
  let n = 64 in
  let g = Gen.erdos_renyi_connected prng ~n ~p:0.8 ~w_max:1 in
  let k = 3 in
  let r = run_spanner ~seed:3 ~graph:g ~p:(ones_p g) ~k () in
  let bound =
    8.0 *. float_of_int k *. (float_of_int n ** (1.0 +. (1.0 /. float_of_int k)))
  in
  let size = List.length r.Spanner.fplus in
  Alcotest.(check bool)
    (Printf.sprintf "|F+| = %d <= %.0f" size bound)
    true
    (float_of_int size <= bound);
  Alcotest.(check bool) "sparser than input" true (size < Graph.m g)

let test_orientation_covers_fplus () =
  let prng = Prng.create 42 in
  let g = Gen.erdos_renyi_connected prng ~n:30 ~p:0.4 ~w_max:4 in
  let r = run_spanner ~seed:4 ~graph:g ~p:(ones_p g) ~k:3 () in
  Alcotest.(check int) "one orientation per edge"
    (List.length r.Spanner.fplus)
    (Array.length r.Spanner.orientation);
  List.iteri
    (fun pos e ->
      let from_, to_ = r.Spanner.orientation.(pos) in
      let ed = Graph.edge g e in
      Alcotest.(check bool) "orientation endpoints match edge" true
        ((from_ = ed.Graph.u && to_ = ed.Graph.v)
        || (from_ = ed.Graph.v && to_ = ed.Graph.u)))
    r.Spanner.fplus

let test_out_degree_bounded () =
  let prng = Prng.create 43 in
  let n = 64 in
  let g = Gen.erdos_renyi_connected prng ~n ~p:0.6 ~w_max:1 in
  let k = 3 in
  let r = run_spanner ~seed:6 ~graph:g ~p:(ones_p g) ~k () in
  let deg = Spanner.out_degrees g r in
  let max_deg = Array.fold_left Stdlib.max 0 deg in
  (* O(k n^{1/k}) with a generous constant (expectation bound). *)
  let bound = 10.0 *. float_of_int k *. (float_of_int n ** (1.0 /. float_of_int k)) in
  Alcotest.(check bool)
    (Printf.sprintf "max out-degree %d <= %.0f" max_deg bound)
    true
    (float_of_int max_deg <= bound)

let test_rounds_charged () =
  let prng = Prng.create 44 in
  let g = Gen.erdos_renyi_connected prng ~n:20 ~p:0.3 ~w_max:4 in
  let r = run_spanner ~seed:7 ~graph:g ~p:(ones_p g) ~k:3 () in
  Alcotest.(check bool) "rounds positive" true (r.Spanner.rounds > 0);
  Alcotest.(check bool) "supersteps positive" true (r.Spanner.supersteps > 0)

let test_rejects_bad_inputs () =
  let prng = Prng.create 45 in
  let g = Gen.ring prng ~n:5 in
  Alcotest.check_raises "bad k" (Invalid_argument "Spanner.run: k must be >= 1")
    (fun () -> ignore (run_spanner ~graph:g ~p:(ones_p g) ~k:0 ()));
  Alcotest.check_raises "bad p length"
    (Invalid_argument "Spanner.run: p has wrong length") (fun () ->
      ignore (run_spanner ~graph:g ~p:[| 1.0 |] ~k:2 ()))

(* Marginal probability: among edges that were tried (landed in F), the
   fraction accepted should track p. *)
let test_acceptance_rate_tracks_p () =
  let pe = 0.3 in
  let accepted = ref 0 and tried = ref 0 in
  for seed = 1 to 30 do
    let prng = Prng.create (1000 + seed) in
    let g = Gen.erdos_renyi_connected prng ~n:24 ~p:0.3 ~w_max:1 in
    let p = Array.make (Graph.m g) pe in
    let r = run_spanner ~seed ~graph:g ~p ~k:2 () in
    accepted := !accepted + List.length r.Spanner.fplus;
    tried := !tried + List.length r.Spanner.fplus + List.length r.Spanner.fminus
  done;
  let rate = float_of_int !accepted /. float_of_int !tried in
  Alcotest.(check bool)
    (Printf.sprintf "acceptance rate %.3f ~ %.3f" rate pe)
    true
    (Float.abs (rate -. pe) < 0.05)

let test_cluster_ids_are_vertices () =
  let prng = Prng.create 60 in
  let g = Gen.erdos_renyi_connected prng ~n:30 ~p:0.3 ~w_max:3 in
  let r = run_spanner ~seed:9 ~graph:g ~p:(ones_p g) ~k:3 () in
  Array.iter
    (function
      | Some c -> Alcotest.(check bool) "valid center id" true (c >= 0 && c < 30)
      | None -> ())
    r.Spanner.clusters

let test_k1_singleton_clusters () =
  let prng = Prng.create 61 in
  let g = Gen.ring prng ~n:12 in
  let r = run_spanner ~seed:10 ~graph:g ~p:(ones_p g) ~k:1 () in
  Array.iteri
    (fun v c -> Alcotest.(check (option int)) "own singleton" (Some v) c)
    r.Spanner.clusters

let test_phase_breakdown_labels () =
  let prng = Prng.create 62 in
  let g = Gen.erdos_renyi_connected prng ~n:24 ~p:0.4 ~w_max:3 in
  let acc =
    Lbcc_net.Rounds.create ~bandwidth:(Lbcc_net.Model.bandwidth ~n:24)
  in
  let _ = Spanner.run ~accountant:acc ~prng:(Prng.create 11) ~graph:g
      ~p:(ones_p g) ~k:3 () in
  let breakdown = Lbcc_net.Rounds.breakdown acc in
  List.iter
    (fun label ->
      Alcotest.(check bool) (label ^ " present") true (List.mem_assoc label breakdown))
    [ "spanner/marking"; "spanner/phase-info"; "spanner/join-marked";
      "spanner/final-connect" ]

(* ------------------------------------------------------------------ *)
(* Bundles                                                             *)

let test_bundle_partitions () =
  let prng = Prng.create 46 in
  let g = Gen.erdos_renyi_connected prng ~n:32 ~p:0.5 ~w_max:3 in
  let p = ones_p g in
  let b = Bundle.run ~prng:(Prng.create 8) ~graph:g ~p ~k:3 ~t:3 () in
  (* With p = 1 nothing is rejected and bundle edges are distinct. *)
  Alcotest.(check (list int)) "no rejections" [] b.Bundle.rejected;
  let sorted = List.sort_uniq compare b.Bundle.bundle in
  Alcotest.(check int) "no duplicates" (List.length b.Bundle.bundle)
    (List.length sorted)

let test_bundle_preserves_connectivity () =
  let prng = Prng.create 47 in
  let g = Gen.erdos_renyi_connected prng ~n:32 ~p:0.5 ~w_max:3 in
  let b = Bundle.run ~prng:(Prng.create 9) ~graph:g ~p:(ones_p g) ~k:3 ~t:2 () in
  Alcotest.(check bool) "bundle spans" true
    (Graph.is_connected (Graph.sub_edges g b.Bundle.bundle))

let test_bundle_first_spanner_stretch () =
  let prng = Prng.create 48 in
  let g = Gen.erdos_renyi_connected prng ~n:32 ~p:0.5 ~w_max:3 in
  let k = 3 in
  let b = Bundle.run ~prng:(Prng.create 10) ~graph:g ~p:(ones_p g) ~k ~t:2 () in
  (* The union is at least as good as a single spanner. *)
  let s = Paths.stretch g (Graph.sub_edges g b.Bundle.bundle) in
  Alcotest.(check bool) "bundle stretch" true (s <= float_of_int ((2 * k) - 1) +. 1e-9)

let test_bundle_grows_with_t () =
  let prng = Prng.create 49 in
  let g = Gen.erdos_renyi_connected prng ~n:48 ~p:0.7 ~w_max:1 in
  let b1 = Bundle.run ~prng:(Prng.create 11) ~graph:g ~p:(ones_p g) ~k:4 ~t:1 () in
  let b3 = Bundle.run ~prng:(Prng.create 11) ~graph:g ~p:(ones_p g) ~k:4 ~t:3 () in
  Alcotest.(check bool) "more spanners, more edges" true
    (List.length b3.Bundle.bundle > List.length b1.Bundle.bundle)

let suites =
  [
    ( "spanner.deterministic",
      [
        Alcotest.test_case "no rejections when p=1" `Quick test_deterministic_no_rejections;
        Alcotest.test_case "stretch bound" `Slow test_stretch_bound_deterministic;
        Alcotest.test_case "k=1 keeps all" `Quick test_k1_takes_all_edges;
        Alcotest.test_case "size bound" `Quick test_spanner_size_reasonable;
        Alcotest.test_case "orientation" `Quick test_orientation_covers_fplus;
        Alcotest.test_case "out-degree" `Quick test_out_degree_bounded;
        Alcotest.test_case "rounds charged" `Quick test_rounds_charged;
        Alcotest.test_case "rejects bad inputs" `Quick test_rejects_bad_inputs;
        Alcotest.test_case "cluster ids valid" `Quick test_cluster_ids_are_vertices;
        Alcotest.test_case "k=1 singleton clusters" `Quick test_k1_singleton_clusters;
        Alcotest.test_case "phase breakdown labels" `Quick test_phase_breakdown_labels;
      ] );
    ( "spanner.probabilistic",
      [
        Alcotest.test_case "stretch bound" `Slow test_stretch_bound_probabilistic;
        Alcotest.test_case "coupling with p=1 rerun" `Slow
          test_coupling_with_deterministic_rerun;
        Alcotest.test_case "p=0 rejects" `Quick test_p_zero_rejects_everything_tried;
        Alcotest.test_case "acceptance tracks p" `Slow test_acceptance_rate_tracks_p;
      ] );
    ( "spanner.bundle",
      [
        Alcotest.test_case "partitions" `Quick test_bundle_partitions;
        Alcotest.test_case "connectivity" `Quick test_bundle_preserves_connectivity;
        Alcotest.test_case "stretch" `Quick test_bundle_first_spanner_stretch;
        Alcotest.test_case "grows with t" `Quick test_bundle_grows_with_t;
      ] );
  ]
