open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Paths = Lbcc_graph.Paths
module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense
module Sparse = Lbcc_linalg.Sparse

let triangle () =
  Graph.create ~n:3
    [ { Graph.u = 0; v = 1; w = 1.0 }; { u = 1; v = 2; w = 2.0 }; { u = 0; v = 2; w = 3.0 } ]

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)

let test_graph_basic () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check int) "degree" 2 (Graph.degree g 0);
  Alcotest.(check (float 1e-12)) "total weight" 6.0 (Graph.total_weight g)

let test_graph_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (Graph.create ~n:2 [ { Graph.u = 1; v = 1; w = 1.0 } ]))

let test_graph_rejects_bad_weight () =
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Graph.create: weights must be positive and finite") (fun () ->
      ignore (Graph.create ~n:2 [ { Graph.u = 0; v = 1; w = 0.0 } ]))

let test_graph_other_endpoint () =
  let e = { Graph.u = 3; v = 7; w = 1.0 } in
  Alcotest.(check int) "other of u" 7 (Graph.other_endpoint e 3);
  Alcotest.(check int) "other of v" 3 (Graph.other_endpoint e 7)

let test_graph_sub_edges () =
  let g = triangle () in
  let h = Graph.sub_edges g [ 0; 2 ] in
  Alcotest.(check int) "m" 2 (Graph.m h);
  Alcotest.(check int) "n unchanged" 3 (Graph.n h)

let test_graph_map_weights () =
  let g = triangle () in
  let h = Graph.map_weights (fun _ e -> e.Graph.w *. 4.0) g in
  Alcotest.(check (float 1e-12)) "reweighted" 24.0 (Graph.total_weight h)

let test_graph_components () =
  let g =
    Graph.create ~n:5 [ { Graph.u = 0; v = 1; w = 1.0 }; { u = 2; v = 3; w = 1.0 } ]
  in
  let comp, count = Graph.components g in
  Alcotest.(check int) "3 components" 3 count;
  Alcotest.(check bool) "0 and 1 together" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "0 and 2 apart" true (comp.(0) <> comp.(2));
  Alcotest.(check bool) "not connected" false (Graph.is_connected g)

let test_graph_coalesce () =
  let g =
    Graph.create ~n:3
      [
        { Graph.u = 0; v = 1; w = 1.0 };
        { u = 1; v = 0; w = 2.0 };
        { u = 1; v = 2; w = 3.0 };
      ]
  in
  let c = Graph.coalesce g in
  Alcotest.(check int) "merged" 2 (Graph.m c);
  Alcotest.(check (float 1e-12)) "summed weight" 3.0
    (List.fold_left
       (fun acc (e : Graph.edge) -> if e.u = 0 || e.v = 0 then acc +. e.w else acc)
       0.0
       (Array.to_list (Graph.edges c)));
  (* Spectral equivalence of coalescing. *)
  let lg = Graph.laplacian_dense g and lc = Graph.laplacian_dense c in
  Alcotest.(check (float 1e-9)) "same laplacian" 0.0
    (Dense.frobenius (Dense.sub lg lc))

(* ------------------------------------------------------------------ *)
(* Laplacian / incidence                                               *)

let test_laplacian_rows_sum_zero () =
  let prng = Prng.create 1 in
  let g = Gen.erdos_renyi_connected prng ~n:20 ~p:0.3 ~w_max:5 in
  let l = Graph.laplacian_dense g in
  for i = 0 to 19 do
    let row_sum = ref 0.0 in
    for j = 0 to 19 do
      row_sum := !row_sum +. Dense.get l i j
    done;
    Alcotest.(check (float 1e-9)) (Printf.sprintf "row %d" i) 0.0 !row_sum
  done

let test_laplacian_psd () =
  let prng = Prng.create 2 in
  let g = Gen.erdos_renyi_connected prng ~n:16 ~p:0.3 ~w_max:3 in
  let l = Graph.laplacian_dense g in
  for _ = 1 to 20 do
    let x = Vec.init 16 (fun _ -> Prng.gaussian prng) in
    Alcotest.(check bool) "x^T L x >= 0" true (Dense.quadratic_form l x >= -1e-9)
  done

let test_laplacian_btwb () =
  (* L = B^T W B *)
  let prng = Prng.create 3 in
  let g = Gen.erdos_renyi_connected prng ~n:12 ~p:0.4 ~w_max:4 in
  let b = Sparse.to_dense (Graph.incidence g) in
  let w = Dense.of_diag (Graph.weight_vector g) in
  let btwb = Dense.matmul (Dense.transpose b) (Dense.matmul w b) in
  let l = Graph.laplacian_dense g in
  Alcotest.(check (float 1e-8)) "L = B^T W B" 0.0 (Dense.frobenius (Dense.sub l btwb))

let test_apply_laplacian_matches_dense () =
  let prng = Prng.create 4 in
  let g = Gen.erdos_renyi_connected prng ~n:15 ~p:0.3 ~w_max:6 in
  let l = Graph.laplacian_dense g in
  for _ = 1 to 10 do
    let x = Vec.init 15 (fun _ -> Prng.gaussian prng) in
    Alcotest.(check bool) "matrix-free Lx" true
      (Vec.dist2 (Graph.apply_laplacian g x) (Dense.matvec l x) < 1e-9)
  done

let test_laplacian_kills_constants () =
  let prng = Prng.create 5 in
  let g = Gen.grid prng ~rows:4 ~cols:5 in
  let ones = Vec.ones 20 in
  Alcotest.(check (float 1e-9)) "L 1 = 0" 0.0 (Vec.norm2 (Graph.apply_laplacian g ones))

let test_sparse_laplacian_matches_dense () =
  let prng = Prng.create 6 in
  let g = Gen.torus prng ~rows:4 ~cols:4 in
  let d = Sparse.to_dense (Graph.laplacian g) in
  Alcotest.(check (float 1e-9)) "sparse = dense" 0.0
    (Dense.frobenius (Dense.sub d (Graph.laplacian_dense g)))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let test_gen_grid_shape () =
  let prng = Prng.create 7 in
  let g = Gen.grid prng ~rows:3 ~cols:4 in
  Alcotest.(check int) "n" 12 (Graph.n g);
  Alcotest.(check int) "m" ((2 * 4) + (3 * 3)) (Graph.m g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_gen_torus_regular () =
  let prng = Prng.create 8 in
  let g = Gen.torus prng ~rows:4 ~cols:5 in
  Alcotest.(check int) "m = 2n" 40 (Graph.m g);
  for v = 0 to 19 do
    Alcotest.(check int) (Printf.sprintf "degree %d" v) 4 (Graph.degree g v)
  done

let test_gen_complete () =
  let prng = Prng.create 9 in
  let g = Gen.complete prng ~n:7 in
  Alcotest.(check int) "m" 21 (Graph.m g)

let test_gen_ring () =
  let prng = Prng.create 10 in
  let g = Gen.ring prng ~n:9 in
  Alcotest.(check int) "m" 9 (Graph.m g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_gen_er_connected () =
  for seed = 1 to 5 do
    let prng = Prng.create seed in
    let g = Gen.erdos_renyi_connected prng ~n:30 ~p:0.05 ~w_max:8 in
    Alcotest.(check bool) "connected" true (Graph.is_connected g);
    Array.iter
      (fun e ->
        Alcotest.(check bool) "integral weight in range" true
          (Float.is_integer e.Graph.w && e.Graph.w >= 1.0 && e.Graph.w <= 8.0))
      (Graph.edges g)
  done

let test_gen_barbell () =
  let prng = Prng.create 11 in
  let g = Gen.barbell prng ~clique:5 ~path:3 in
  Alcotest.(check int) "n" 12 (Graph.n g);
  Alcotest.(check int) "m" (10 + 10 + 3) (Graph.m g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_gen_geometric_connected () =
  let prng = Prng.create 12 in
  let g = Gen.random_geometric prng ~n:40 ~radius:0.15 ~w_max:4 in
  Alcotest.(check bool) "connected (stitched)" true (Graph.is_connected g)

let test_gen_preferential_attachment () =
  let prng = Prng.create 13 in
  let g = Gen.preferential_attachment prng ~n:50 ~degree:3 ~w_max:1 in
  Alcotest.(check int) "n" 50 (Graph.n g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check bool) "m close to 3n" true (Graph.m g <= 3 * 50)

let test_gen_dumbbell () =
  let prng = Prng.create 14 in
  let g = Gen.dumbbell_expander prng ~n:24 ~w_max:1 in
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)

let test_dijkstra_line () =
  let g =
    Graph.create ~n:4
      [
        { Graph.u = 0; v = 1; w = 1.0 };
        { u = 1; v = 2; w = 2.0 };
        { u = 2; v = 3; w = 3.0 };
      ]
  in
  let d = Paths.dijkstra g ~src:0 in
  Alcotest.(check (array (float 1e-12))) "line distances" [| 0.0; 1.0; 3.0; 6.0 |] d

let test_dijkstra_shortcut () =
  let g =
    Graph.create ~n:3
      [
        { Graph.u = 0; v = 1; w = 5.0 };
        { u = 1; v = 2; w = 5.0 };
        { u = 0; v = 2; w = 1.0 };
      ]
  in
  let d = Paths.dijkstra g ~src:0 in
  Alcotest.(check (float 1e-12)) "direct edge wins" 1.0 d.(2);
  Alcotest.(check (float 1e-12)) "via shortcut" 5.0 d.(1)

let test_dijkstra_unreachable () =
  let g = Graph.create ~n:3 [ { Graph.u = 0; v = 1; w = 1.0 } ] in
  let d = Paths.dijkstra g ~src:0 in
  Alcotest.(check bool) "unreachable is inf" true (d.(2) = infinity)

let test_bfs_hops () =
  let prng = Prng.create 15 in
  let g = Gen.ring prng ~n:10 in
  let d = Paths.bfs_hops g ~src:0 in
  Alcotest.(check int) "opposite side" 5 d.(5);
  Alcotest.(check int) "neighbor" 1 d.(1)

let test_stretch_subgraph () =
  let prng = Prng.create 16 in
  let g = Gen.complete prng ~n:8 in
  (* Spanning star through vertex 0: stretch of a unit-weight complete graph
     through a star is exactly 2. *)
  let star_ids =
    Array.to_list
      (Array.of_list
         (List.filteri
            (fun _ _ -> true)
            (List.init (Graph.m g) Fun.id)))
    |> List.filter (fun id ->
           let e = Graph.edge g id in
           e.Graph.u = 0 || e.Graph.v = 0)
  in
  let star = Graph.sub_edges g star_ids in
  Alcotest.(check (float 1e-12)) "star stretch" 2.0 (Paths.stretch g star)

let test_stretch_disconnected_inf () =
  let g = Graph.create ~n:3 [ { Graph.u = 0; v = 1; w = 1.0 }; { u = 1; v = 2; w = 1.0 } ] in
  let h = Graph.sub_edges g [ 0 ] in
  Alcotest.(check bool) "infinite stretch" true (Paths.stretch g h = infinity)

let test_all_pairs_symmetric () =
  let prng = Prng.create 17 in
  let g = Gen.erdos_renyi_connected prng ~n:12 ~p:0.3 ~w_max:5 in
  let d = Paths.all_pairs g in
  for i = 0 to 11 do
    for j = 0 to 11 do
      Alcotest.(check (float 1e-9)) "symmetric" d.(i).(j) d.(j).(i)
    done
  done

let test_bellman_ford_matches_dijkstra () =
  let prng = Prng.create 18 in
  let g = Gen.erdos_renyi_connected prng ~n:16 ~p:0.3 ~w_max:7 in
  let arcs =
    Array.to_list (Graph.edges g)
    |> List.concat_map (fun (e : Graph.edge) -> [ (e.u, e.v, e.w); (e.v, e.u, e.w) ])
  in
  match Paths.bellman_ford ~n:16 ~arcs ~src:0 with
  | None -> Alcotest.fail "unexpected negative cycle"
  | Some d ->
      let expect = Paths.dijkstra g ~src:0 in
      Array.iteri
        (fun v dv -> Alcotest.(check (float 1e-9)) (Printf.sprintf "v%d" v) expect.(v) dv)
        d

let test_bellman_ford_negative_edges () =
  (* 0 ->(5) 1 ->(-3) 2: shortest 0-2 is 2. *)
  let arcs = [ (0, 1, 5.0); (1, 2, -3.0); (0, 2, 4.0) ] in
  match Paths.bellman_ford ~n:3 ~arcs ~src:0 with
  | None -> Alcotest.fail "no negative cycle here"
  | Some d -> Alcotest.(check (float 1e-9)) "via negative edge" 2.0 d.(2)

let test_bellman_ford_detects_negative_cycle () =
  let arcs = [ (0, 1, 1.0); (1, 2, -3.0); (2, 0, 1.0) ] in
  Alcotest.(check bool) "detected" true (Paths.bellman_ford ~n:3 ~arcs ~src:0 = None)

let test_diameter_ring () =
  let prng = Prng.create 19 in
  let g = Gen.ring prng ~n:10 in
  Alcotest.(check (float 1e-9)) "ring diameter" 5.0 (Paths.diameter g)

let prop_dijkstra_triangle_inequality =
  QCheck.Test.make ~name:"dijkstra satisfies triangle inequality" ~count:30
    QCheck.small_int (fun seed ->
      let prng = Prng.create seed in
      let g = Gen.erdos_renyi_connected prng ~n:12 ~p:0.3 ~w_max:6 in
      let d = Paths.all_pairs g in
      let ok = ref true in
      for i = 0 to 11 do
        for j = 0 to 11 do
          for k = 0 to 11 do
            if d.(i).(j) > d.(i).(k) +. d.(k).(j) +. 1e-9 then ok := false
          done
        done
      done;
      !ok)

let suites =
  [
    ( "graph.structure",
      [
        Alcotest.test_case "basic" `Quick test_graph_basic;
        Alcotest.test_case "rejects self loop" `Quick test_graph_rejects_self_loop;
        Alcotest.test_case "rejects bad weight" `Quick test_graph_rejects_bad_weight;
        Alcotest.test_case "other endpoint" `Quick test_graph_other_endpoint;
        Alcotest.test_case "sub edges" `Quick test_graph_sub_edges;
        Alcotest.test_case "map weights" `Quick test_graph_map_weights;
        Alcotest.test_case "components" `Quick test_graph_components;
        Alcotest.test_case "coalesce" `Quick test_graph_coalesce;
      ] );
    ( "graph.laplacian",
      [
        Alcotest.test_case "rows sum zero" `Quick test_laplacian_rows_sum_zero;
        Alcotest.test_case "psd" `Quick test_laplacian_psd;
        Alcotest.test_case "L = B^T W B" `Quick test_laplacian_btwb;
        Alcotest.test_case "matrix-free matches" `Quick test_apply_laplacian_matches_dense;
        Alcotest.test_case "kills constants" `Quick test_laplacian_kills_constants;
        Alcotest.test_case "sparse = dense" `Quick test_sparse_laplacian_matches_dense;
      ] );
    ( "graph.generators",
      [
        Alcotest.test_case "grid" `Quick test_gen_grid_shape;
        Alcotest.test_case "torus regular" `Quick test_gen_torus_regular;
        Alcotest.test_case "complete" `Quick test_gen_complete;
        Alcotest.test_case "ring" `Quick test_gen_ring;
        Alcotest.test_case "er connected" `Quick test_gen_er_connected;
        Alcotest.test_case "barbell" `Quick test_gen_barbell;
        Alcotest.test_case "geometric connected" `Quick test_gen_geometric_connected;
        Alcotest.test_case "preferential attachment" `Quick
          test_gen_preferential_attachment;
        Alcotest.test_case "dumbbell" `Quick test_gen_dumbbell;
      ] );
    ( "graph.paths",
      [
        Alcotest.test_case "dijkstra line" `Quick test_dijkstra_line;
        Alcotest.test_case "dijkstra shortcut" `Quick test_dijkstra_shortcut;
        Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
        Alcotest.test_case "bfs hops" `Quick test_bfs_hops;
        Alcotest.test_case "star stretch" `Quick test_stretch_subgraph;
        Alcotest.test_case "disconnected stretch" `Quick test_stretch_disconnected_inf;
        Alcotest.test_case "apsp symmetric" `Quick test_all_pairs_symmetric;
        Alcotest.test_case "bellman-ford vs dijkstra" `Quick
          test_bellman_ford_matches_dijkstra;
        Alcotest.test_case "bellman-ford negative edges" `Quick
          test_bellman_ford_negative_edges;
        Alcotest.test_case "bellman-ford negative cycle" `Quick
          test_bellman_ford_detects_negative_cycle;
        Alcotest.test_case "diameter" `Quick test_diameter_ring;
        QCheck_alcotest.to_alcotest prop_dijkstra_triangle_inequality;
      ] );
  ]
