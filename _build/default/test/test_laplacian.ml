open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense
module Exact = Lbcc_laplacian.Exact
module Solver = Lbcc_laplacian.Solver
module Gremban = Lbcc_laplacian.Gremban
module Sdd = Lbcc_laplacian.Sdd

let zero_sum_b prng n =
  Vec.mean_center (Vec.init n (fun _ -> Prng.gaussian prng))

(* ------------------------------------------------------------------ *)
(* Exact solver                                                        *)

let test_exact_residual_zero () =
  for seed = 1 to 5 do
    let prng = Prng.create seed in
    let g = Gen.erdos_renyi_connected prng ~n:30 ~p:0.3 ~w_max:6 in
    let b = zero_sum_b prng 30 in
    let x = Exact.solve_graph g b in
    Alcotest.(check bool) "residual tiny" true (Exact.residual g ~x ~b < 1e-9);
    Alcotest.(check (float 1e-9)) "zero mean" 0.0 (Vec.sum x)
  done

let test_exact_rejects_nonzero_sum () =
  let prng = Prng.create 6 in
  let g = Gen.ring prng ~n:6 in
  Alcotest.check_raises "nonzero sum"
    (Invalid_argument "Exact.solve: right-hand side must have zero sum per component")
    (fun () -> ignore (Exact.solve_graph g (Vec.ones 6)))

let test_exact_path_known_solution () =
  (* Unit path 0-1-2: L x = (1, 0, -1) has x = (1, 0, -1) up to constants. *)
  let g =
    Graph.create ~n:3 [ { Graph.u = 0; v = 1; w = 1.0 }; { u = 1; v = 2; w = 1.0 } ]
  in
  let x = Exact.solve_graph g [| 1.0; 0.0; -1.0 |] in
  Alcotest.(check (float 1e-9)) "x0 - x2 = effective resistance * current" 2.0
    (x.(0) -. x.(2));
  Alcotest.(check (float 1e-9)) "x1 centered" 0.0 x.(1)

let test_exact_disconnected_components () =
  let g =
    Graph.create ~n:4 [ { Graph.u = 0; v = 1; w = 1.0 }; { u = 2; v = 3; w = 2.0 } ]
  in
  let b = [| 1.0; -1.0; 2.0; -2.0 |] in
  let x = Exact.solve_graph g b in
  Alcotest.(check bool) "residual" true (Exact.residual g ~x ~b < 1e-9)

let test_exact_disconnected_bad_rhs () =
  let g =
    Graph.create ~n:4 [ { Graph.u = 0; v = 1; w = 1.0 }; { u = 2; v = 3; w = 1.0 } ]
  in
  (* Zero total sum but nonzero per component. *)
  Alcotest.check_raises "per-component zero sum"
    (Invalid_argument "Exact.solve: right-hand side must have zero sum per component")
    (fun () -> ignore (Exact.solve_graph g [| 1.0; 1.0; -1.0; -1.0 |]))

let test_laplacian_norm () =
  let g = Graph.create ~n:2 [ { Graph.u = 0; v = 1; w = 2.0 } ] in
  (* x^T L x = w (x0 - x1)^2 = 2 * 4 = 8 *)
  Alcotest.(check (float 1e-9)) "norm" (sqrt 8.0)
    (Exact.laplacian_norm g [| 1.0; -1.0 |])

(* ------------------------------------------------------------------ *)
(* Theorem 1.3 solver                                                  *)

let solver_for ?(seed = 3) ?(t = 4) g =
  Solver.preprocess ~prng:(Prng.create seed) ~graph:g ~t ~k:3 ()

let test_solver_meets_error_bound () =
  let prng = Prng.create 7 in
  let g = Gen.erdos_renyi_connected prng ~n:40 ~p:0.3 ~w_max:8 in
  let s = solver_for g in
  let b = zero_sum_b prng 40 in
  let x_exact = Exact.solve_graph g b in
  let xnorm = Exact.laplacian_norm g x_exact in
  List.iter
    (fun eps ->
      let r = Solver.solve s ~b ~eps in
      let err = Exact.laplacian_norm g (Vec.sub r.Solver.solution x_exact) /. xnorm in
      Alcotest.(check bool)
        (Printf.sprintf "eps=%.0e: err=%.2e" eps err)
        true (err <= eps))
    [ 0.5; 1e-2; 1e-4; 1e-8 ]

let test_solver_iterations_grow_with_precision () =
  let prng = Prng.create 8 in
  let g = Gen.erdos_renyi_connected prng ~n:32 ~p:0.3 ~w_max:4 in
  let s = solver_for g in
  let b = zero_sum_b prng 32 in
  let r1 = Solver.solve s ~b ~eps:1e-2 in
  let r2 = Solver.solve s ~b ~eps:1e-10 in
  Alcotest.(check bool) "more precision, more iterations" true
    (r2.Solver.iterations > r1.Solver.iterations)

let test_solver_kappa_certified () =
  let prng = Prng.create 9 in
  let g = Gen.erdos_renyi_connected prng ~n:36 ~p:0.4 ~w_max:4 in
  let s = solver_for ~t:6 g in
  Alcotest.(check bool) "kappa >= 1" true (Solver.kappa s >= 1.0);
  Alcotest.(check bool) "kappa finite" true (Float.is_finite (Solver.kappa s))

let test_solver_rounds_accounting () =
  let prng = Prng.create 10 in
  let g = Gen.erdos_renyi_connected prng ~n:24 ~p:0.4 ~w_max:3 in
  let s = solver_for g in
  Alcotest.(check bool) "preprocessing rounds" true (Solver.preprocessing_rounds s > 0);
  let b = zero_sum_b prng 24 in
  let r = Solver.solve s ~b ~eps:1e-6 in
  Alcotest.(check bool) "solve rounds" true (r.Solver.rounds > 0);
  Alcotest.(check bool) "solve rounds tiny vs preprocessing" true
    (r.Solver.rounds < Solver.preprocessing_rounds s)

let test_solver_rejects_disconnected () =
  let g = Graph.create ~n:4 [ { Graph.u = 0; v = 1; w = 1.0 }; { u = 2; v = 3; w = 1.0 } ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Solver.preprocess: graph must be connected") (fun () ->
      ignore (solver_for g))

let test_solver_on_grid_and_barbell () =
  List.iter
    (fun g ->
      let prng = Prng.create 11 in
      let s = solver_for ~t:6 g in
      let b = zero_sum_b prng (Graph.n g) in
      let r = Solver.solve s ~b ~eps:1e-6 in
      Alcotest.(check bool) "residual small" true (r.Solver.residual < 1e-5))
    [
      Gen.grid (Prng.create 12) ~rows:5 ~cols:6;
      Gen.barbell (Prng.create 13) ~clique:6 ~path:4;
    ]

(* ------------------------------------------------------------------ *)
(* Gremban reduction                                                   *)

let random_sdd prng n =
  (* Random Laplacian-like plus positive diagonal slack. *)
  let m = Dense.create n n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bernoulli prng 0.5 then begin
        let w = 0.5 +. Prng.float prng in
        Dense.add_entry m u v (-.w);
        Dense.add_entry m v u (-.w);
        Dense.add_entry m u u w;
        Dense.add_entry m v v w
      end
    done;
    Dense.add_entry m u u (0.1 +. Prng.float prng)
  done;
  m

let test_gremban_detects_sdd () =
  let prng = Prng.create 14 in
  let m = random_sdd prng 8 in
  Alcotest.(check bool) "sdd" true (Gremban.is_sdd_nonpositive_offdiag m);
  let bad = Dense.of_arrays [| [| 1.0; 0.5 |]; [| 0.5; 1.0 |] |] in
  Alcotest.(check bool) "positive off-diagonal rejected" false
    (Gremban.is_sdd_nonpositive_offdiag bad)

let test_gremban_solves_sdd () =
  for seed = 1 to 6 do
    let prng = Prng.create (20 + seed) in
    let m = random_sdd prng 10 in
    let x = Vec.init 10 (fun _ -> Prng.gaussian prng) in
    let y = Dense.matvec m x in
    let x' = Gremban.solve m y in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d" seed)
      true
      (Vec.dist2 x x' < 1e-6 *. Float.max 1.0 (Vec.norm2 x))
  done

let test_gremban_virtual_graph_shape () =
  let prng = Prng.create 30 in
  let m = random_sdd prng 6 in
  let g = Gremban.virtual_graph m in
  Alcotest.(check int) "doubled vertices" 12 (Graph.n g)

let test_gremban_rejects_pure_laplacian () =
  let g = Gen.ring (Prng.create 31) ~n:5 in
  let l = Graph.laplacian_dense g in
  Alcotest.(check bool) "raises on zero slack" true
    (try
       ignore (Gremban.virtual_graph l);
       false
     with Invalid_argument _ -> true)

let test_gremban_with_custom_solver () =
  let prng = Prng.create 32 in
  let m = random_sdd prng 8 in
  let x = Vec.init 8 (fun _ -> Prng.gaussian prng) in
  let y = Dense.matvec m x in
  (* Route the doubled system through the Theorem 1.3 solver. *)
  let laplacian_solve g b =
    let s = Solver.preprocess ~prng:(Prng.create 33) ~graph:g ~t:4 ~k:2 () in
    (Solver.solve s ~b ~eps:1e-10).Solver.solution
  in
  let x' = Gremban.solve_with ~laplacian_solve m y in
  Alcotest.(check bool) "pipeline solve" true (Vec.dist2 x x' < 1e-5)

let test_sdd_module_end_to_end () =
  let prng = Prng.create 40 in
  (* Connected SDD system: Laplacian of a connected graph + positive diagonal. *)
  let g = Gen.erdos_renyi_connected prng ~n:12 ~p:0.4 ~w_max:3 in
  let m = Graph.laplacian_dense g in
  for i = 0 to 11 do
    Dense.add_entry m i i (0.2 +. Prng.float prng)
  done;
  let x_ref = Vec.init 12 (fun _ -> Prng.gaussian prng) in
  let y = Dense.matvec m x_ref in
  let r = Sdd.solve_once ~prng:(Prng.create 41) m ~y ~eps:1e-10 in
  Alcotest.(check bool) "residual" true (r.Sdd.residual < 1e-6);
  Alcotest.(check bool) "solution" true
    (Vec.dist2 r.Sdd.solution x_ref < 1e-5 *. Float.max 1.0 (Vec.norm2 x_ref));
  Alcotest.(check bool) "rounds doubled and positive" true (r.Sdd.rounds > 0)

let test_sdd_preprocess_reuse () =
  let prng = Prng.create 42 in
  let g = Gen.ring prng ~n:10 ~w_max:2 in
  let m = Graph.laplacian_dense g in
  for i = 0 to 9 do
    Dense.add_entry m i i 1.0
  done;
  let s = Sdd.preprocess ~prng:(Prng.create 43) m in
  for seed = 1 to 3 do
    let prng2 = Prng.create (50 + seed) in
    let x_ref = Vec.init 10 (fun _ -> Prng.gaussian prng2) in
    let y = Dense.matvec m x_ref in
    let r = Sdd.solve s ~y ~eps:1e-10 in
    Alcotest.(check bool) "repeat solves" true (r.Sdd.residual < 1e-6)
  done

let prop_gremban_random_sdd =
  QCheck.Test.make ~name:"Gremban solves random SDD systems" ~count:25
    QCheck.small_int (fun seed ->
      let prng = Prng.create (7919 + seed) in
      let n = 3 + Prng.int prng 8 in
      let m = random_sdd prng n in
      let x = Vec.init n (fun _ -> Prng.gaussian prng) in
      let y = Dense.matvec m x in
      let x' = Gremban.solve m y in
      Vec.dist2 x x' < 1e-5 *. Float.max 1.0 (Vec.norm2 x))

let suites =
  [
    ( "laplacian.exact",
      [
        Alcotest.test_case "residual zero" `Quick test_exact_residual_zero;
        Alcotest.test_case "rejects nonzero sum" `Quick test_exact_rejects_nonzero_sum;
        Alcotest.test_case "path known solution" `Quick test_exact_path_known_solution;
        Alcotest.test_case "disconnected ok" `Quick test_exact_disconnected_components;
        Alcotest.test_case "disconnected bad rhs" `Quick test_exact_disconnected_bad_rhs;
        Alcotest.test_case "laplacian norm" `Quick test_laplacian_norm;
      ] );
    ( "laplacian.solver",
      [
        Alcotest.test_case "error bound" `Slow test_solver_meets_error_bound;
        Alcotest.test_case "iterations vs precision" `Quick
          test_solver_iterations_grow_with_precision;
        Alcotest.test_case "kappa certified" `Quick test_solver_kappa_certified;
        Alcotest.test_case "rounds accounting" `Quick test_solver_rounds_accounting;
        Alcotest.test_case "rejects disconnected" `Quick test_solver_rejects_disconnected;
        Alcotest.test_case "grid and barbell" `Slow test_solver_on_grid_and_barbell;
      ] );
    ( "laplacian.gremban",
      [
        Alcotest.test_case "detects sdd" `Quick test_gremban_detects_sdd;
        Alcotest.test_case "solves sdd" `Quick test_gremban_solves_sdd;
        Alcotest.test_case "virtual graph shape" `Quick test_gremban_virtual_graph_shape;
        Alcotest.test_case "rejects pure laplacian" `Quick
          test_gremban_rejects_pure_laplacian;
        Alcotest.test_case "custom solver" `Slow test_gremban_with_custom_solver;
        QCheck_alcotest.to_alcotest prop_gremban_random_sdd;
        Alcotest.test_case "sdd module" `Slow test_sdd_module_end_to_end;
        Alcotest.test_case "sdd preprocess reuse" `Slow test_sdd_preprocess_reuse;
      ] );
  ]
