open Lbcc_util
module Vec = Lbcc_linalg.Vec
module Sparse = Lbcc_linalg.Sparse
module Barrier = Lbcc_lp.Barrier
module Jl = Lbcc_lp.Jl
module Leverage = Lbcc_lp.Leverage
module Lewis = Lbcc_lp.Lewis
module Mixed_ball = Lbcc_lp.Mixed_ball
module Problem = Lbcc_lp.Problem

(* ------------------------------------------------------------------ *)
(* Barriers                                                            *)

let numeric_derivative f x =
  let h = 1e-6 in
  (f (x +. h) -. f (x -. h)) /. (2.0 *. h)

let test_barrier_log_lower () =
  let b = Barrier.make ~lo:2.0 ~hi:infinity in
  Alcotest.(check bool) "contains" true (Barrier.contains b 3.0);
  Alcotest.(check bool) "excludes boundary" false (Barrier.contains b 2.0);
  Alcotest.(check (float 1e-9)) "phi(3)" 0.0 (Barrier.value b 3.0);
  Alcotest.(check (float 1e-9)) "phi'(3)" (-1.0) (Barrier.dphi b 3.0);
  Alcotest.(check (float 1e-9)) "phi''(3)" 1.0 (Barrier.ddphi b 3.0)

let test_barrier_log_upper () =
  let b = Barrier.make ~lo:neg_infinity ~hi:5.0 in
  Alcotest.(check (float 1e-9)) "phi'(4)" 1.0 (Barrier.dphi b 4.0);
  Alcotest.(check bool) "blows up near bound" true (Barrier.value b 4.999999 > 10.0)

let test_barrier_trig () =
  let b = Barrier.make ~lo:0.0 ~hi:1.0 in
  Alcotest.(check bool) "contains midpoint" true (Barrier.contains b 0.5);
  (* Symmetric: phi'(1/2) = 0. *)
  Alcotest.(check (float 1e-9)) "centered gradient" 0.0 (Barrier.dphi b 0.5);
  Alcotest.(check bool) "convex" true (Barrier.ddphi b 0.5 > 0.0)

let test_barrier_derivatives_numeric () =
  let check_b b x =
    let d_num = numeric_derivative (Barrier.value b) x in
    Alcotest.(check bool)
      (Printf.sprintf "phi' at %.2f" x)
      true
      (Float.abs (d_num -. Barrier.dphi b x) < 1e-4 *. Float.max 1.0 (Float.abs d_num));
    let dd_num = numeric_derivative (Barrier.dphi b) x in
    Alcotest.(check bool)
      (Printf.sprintf "phi'' at %.2f" x)
      true
      (Float.abs (dd_num -. Barrier.ddphi b x) < 1e-3 *. Float.max 1.0 (Float.abs dd_num))
  in
  let b1 = Barrier.make ~lo:0.0 ~hi:infinity in
  List.iter (check_b b1) [ 0.5; 1.0; 3.0 ];
  let b2 = Barrier.make ~lo:neg_infinity ~hi:2.0 in
  List.iter (check_b b2) [ 0.0; 1.5 ];
  let b3 = Barrier.make ~lo:(-1.0) ~hi:1.0 in
  List.iter (check_b b3) [ -0.5; 0.0; 0.7 ]

let test_barrier_rejects_free_line () =
  Alcotest.check_raises "free line"
    (Invalid_argument "Barrier.make: at least one bound must be finite") (fun () ->
      ignore (Barrier.make ~lo:neg_infinity ~hi:infinity))

let test_barrier_center_interior () =
  List.iter
    (fun (lo, hi) ->
      let b = Barrier.make ~lo ~hi in
      Alcotest.(check bool) "center interior" true (Barrier.contains b (Barrier.center b)))
    [ (0.0, infinity); (neg_infinity, 3.0); (2.0, 9.0) ]

(* ------------------------------------------------------------------ *)
(* JL                                                                  *)

let test_jl_deterministic_from_seed () =
  let r1 = Jl.row ~seed:42 ~k:8 ~j:3 ~m:50 in
  let r2 = Jl.row ~seed:42 ~k:8 ~j:3 ~m:50 in
  Alcotest.(check (array (float 0.0))) "same row from same seed" r1 r2;
  let r3 = Jl.row ~seed:43 ~k:8 ~j:3 ~m:50 in
  Alcotest.(check bool) "different seed differs" true (r1 <> r3)

let test_jl_entries_pm () =
  let k = 16 in
  let r = Jl.row ~seed:7 ~k ~j:0 ~m:100 in
  let expected = 1.0 /. sqrt (float_of_int k) in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "entry is +-1/sqrt k" true
        (Float.abs (Float.abs v -. expected) < 1e-12))
    r

let test_jl_norm_preservation () =
  let prng = Prng.create 3 in
  let m = 400 in
  let eta = 0.3 in
  let k = Jl.rows_for ~m ~eta in
  let within = ref 0 and trials = 30 in
  for seed = 1 to trials do
    let x = Vec.init m (fun _ -> Prng.gaussian prng) in
    let qx = Jl.apply ~seed ~k x in
    let ratio = Vec.norm2 qx /. Vec.norm2 x in
    if ratio > 1.0 -. eta && ratio < 1.0 +. eta then incr within
  done;
  Alcotest.(check bool)
    (Printf.sprintf "norm preserved in %d/%d trials" !within trials)
    true
    (!within >= trials - 2)

let test_jl_rows_for_monotone () =
  Alcotest.(check bool) "shrinking eta costs rows" true
    (Jl.rows_for ~m:100 ~eta:0.1 > Jl.rows_for ~m:100 ~eta:0.5)

(* ------------------------------------------------------------------ *)
(* Leverage scores                                                     *)

let random_operator ?(rows = 60) ?(cols = 15) seed =
  let prng = Prng.create seed in
  let triplets = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Prng.bernoulli prng 0.3 then triplets := (i, j, Prng.gaussian prng) :: !triplets
    done;
    (* guarantee no zero row *)
    triplets := (i, Prng.int prng cols, 1.0 +. Prng.float prng) :: !triplets
  done;
  let a = Sparse.of_triplets ~rows ~cols !triplets in
  let d = Vec.init rows (fun _ -> 0.5 +. Prng.float prng) in
  (a, d, Leverage.of_row_scaled a d)

let test_leverage_sum_is_rank () =
  let _, _, op = random_operator 1 in
  let sigma = Leverage.exact op in
  Alcotest.(check bool) "sum = rank" true (Leverage.sum_check sigma ~rank:15 < 1e-9)

let test_leverage_in_unit_interval () =
  let _, _, op = random_operator 2 in
  let sigma = Leverage.exact op in
  Array.iter
    (fun s -> Alcotest.(check bool) "sigma in [0,1]" true (s >= -1e-9 && s <= 1.0 +. 1e-9))
    sigma

let test_leverage_approx_close () =
  let _, _, op = random_operator 3 in
  let exact = Leverage.exact op in
  let approx = Leverage.approximate ~prng:(Prng.create 9) ~eta:0.25 op in
  Array.iteri
    (fun i s ->
      if s > 1e-6 then
        Alcotest.(check bool)
          (Printf.sprintf "row %d rel err" i)
          true
          (Float.abs (approx.(i) -. s) /. s < 0.25))
    exact

let test_leverage_approx_charges_rounds () =
  let _, _, op = random_operator 4 in
  let acc = Lbcc_net.Rounds.create ~bandwidth:16 in
  let _ = Leverage.approximate ~accountant:acc ~prng:(Prng.create 10) ~eta:0.5 op in
  Alcotest.(check bool) "rounds charged" true (Lbcc_net.Rounds.rounds acc > 0);
  Alcotest.(check bool) "seed broadcast charged" true
    (List.mem_assoc "leverage-seed" (Lbcc_net.Rounds.breakdown acc))

(* ------------------------------------------------------------------ *)
(* Lewis weights                                                       *)

let leverage_of (a, d) scale = Leverage.exact (Leverage.of_row_scaled a (Vec.mul d scale))

let test_lewis_p2_is_leverage () =
  let a, d, op = random_operator 5 in
  let sigma = Leverage.exact op in
  let leverage s = leverage_of (a, d) s in
  let w, _ = Lewis.fixed_point ~leverage ~p:2.0 ~w0:(Vec.ones 60) ~eta:1e-8 () in
  (* At p=2 the scaling W^{1/2-1/2} = I, so the fixed point is sigma itself. *)
  Array.iteri
    (fun i s ->
      Alcotest.(check bool) "w = sigma at p=2" true
        (Float.abs (w.(i) -. Float.max s 1e-12) < 1e-6))
    sigma

let test_lewis_fixed_point_residual () =
  let a, d, _ = random_operator 6 in
  let leverage s = leverage_of (a, d) s in
  let p = 1.0 -. (1.0 /. log (4.0 *. 60.0)) in
  let w, iters = Lewis.fixed_point ~leverage ~p ~w0:(Vec.ones 60) ~eta:1e-7 () in
  Alcotest.(check bool) "converged" true (iters < 200);
  Alcotest.(check bool) "residual small" true (Lewis.residual ~leverage ~p w < 1e-5)

let test_lewis_sum_close_to_rank () =
  let a, d, _ = random_operator 7 in
  let leverage s = leverage_of (a, d) s in
  let p = 1.2 in
  let w, _ = Lewis.fixed_point ~leverage ~p ~w0:(Vec.ones 60) ~eta:1e-7 () in
  (* sum of Lewis weights = n for all p (they are leverage scores of the
     rescaled matrix at the fixed point). *)
  Alcotest.(check bool) "sum ~ n" true (Float.abs (Vec.sum w -. 15.0) < 0.1)

let test_lewis_apx_stays_in_trust_region () =
  let a, d, _ = random_operator 8 in
  let leverage s = leverage_of (a, d) s in
  let p = 1.5 in
  let w0, _ = Lewis.fixed_point ~leverage ~p ~w0:(Vec.ones 60) ~eta:1e-6 () in
  let w, _ = Lewis.compute_apx_weights ~leverage ~p ~w0 ~eta:0.1 () in
  let r = Float.min 0.5 (p *. p *. (4.0 -. p) /. 16.0) in
  Array.iteri
    (fun i wi ->
      Alcotest.(check bool) "within trust region" true
        (wi >= ((1.0 -. r) *. w0.(i)) -. 1e-9 && wi <= ((1.0 +. r) *. w0.(i)) +. 1e-9))
    w

let test_lewis_initial_weights_homotopy () =
  let a, d, _ = random_operator 9 in
  let leverage_for ~p:_ s = leverage_of (a, d) s in
  let p_target = 1.0 -. (1.0 /. log (4.0 *. 60.0)) in
  let w, steps =
    Lewis.compute_initial_weights ~leverage_for ~m:60 ~n:15 ~p_target ~eta:1e-5 ()
  in
  Alcotest.(check bool) "took homotopy steps" true (steps > 1);
  let leverage s = leverage_of (a, d) s in
  Alcotest.(check bool) "lands near fixed point" true
    (Lewis.residual ~leverage ~p:p_target w < 1e-3)

let test_lewis_regularized () =
  let w = Lewis.regularized (Vec.zeros 10) ~n:5 ~m:10 in
  Array.iter (fun wi -> Alcotest.(check (float 1e-12)) "c0 = n/2m" 0.25 wi) w

(* ------------------------------------------------------------------ *)
(* Mixed-norm ball                                                     *)

let random_ball_instance seed =
  let prng = Prng.create seed in
  let m = 5 + Prng.int prng 60 in
  let a = Vec.init m (fun _ -> Prng.gaussian prng) in
  let l = Vec.init m (fun _ -> 0.05 +. (3.0 *. Prng.float prng)) in
  (a, l)

let test_mixed_ball_matches_brute_force () =
  for seed = 1 to 10 do
    let a, l = random_ball_instance seed in
    let bf = Mixed_ball.brute_force ~a ~l () in
    let mx = Mixed_ball.maximize ~a ~l () in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: %.6f vs %.6f" seed mx.Mixed_ball.value bf.Mixed_ball.value)
      true
      (Float.abs (mx.Mixed_ball.value -. bf.Mixed_ball.value)
      <= 1e-6 *. Float.max 1.0 bf.Mixed_ball.value)
  done

let test_mixed_ball_feasible () =
  for seed = 11 to 20 do
    let a, l = random_ball_instance seed in
    let r = Mixed_ball.maximize ~a ~l () in
    Alcotest.(check bool) "solution in ball" true (Mixed_ball.feasible ~l r.Mixed_ball.x)
  done

let test_mixed_ball_dominates_random_feasible () =
  let prng = Prng.create 21 in
  for seed = 21 to 26 do
    let a, l = random_ball_instance seed in
    let m = Vec.dim a in
    let best = Mixed_ball.maximize ~a ~l () in
    for _ = 1 to 300 do
      let x = Vec.init m (fun _ -> Prng.gaussian prng) in
      let norm =
        Vec.norm2 x +. Vec.max_elt (Vec.map2 (fun xi li -> Float.abs xi /. li) x l)
      in
      let x = Vec.scale (0.999 /. norm) x in
      Alcotest.(check bool) "maximizer dominates" true
        (Vec.dot a x <= best.Mixed_ball.value +. 1e-9)
    done
  done

let test_mixed_ball_zero_objective () =
  let r = Mixed_ball.maximize ~a:(Vec.zeros 5) ~l:(Vec.ones 5) () in
  Alcotest.(check (float 1e-12)) "zero" 0.0 r.Mixed_ball.value

let test_mixed_ball_single_coordinate () =
  (* m = 1: max a x s.t. |x| + |x|/l <= 1 => x = 1/(1 + 1/l). *)
  let r = Mixed_ball.maximize ~a:[| 2.0 |] ~l:[| 4.0 |] () in
  Alcotest.(check (float 1e-6)) "closed form" (2.0 /. (1.0 +. (1.0 /. 4.0)))
    r.Mixed_ball.value

let test_mixed_ball_rejects_bad_l () =
  Alcotest.check_raises "nonpositive l"
    (Invalid_argument "Mixed_ball: l must be positive") (fun () ->
      ignore (Mixed_ball.maximize ~a:[| 1.0 |] ~l:[| 0.0 |] ()))

let test_mixed_ball_charges_rounds () =
  let a, l = random_ball_instance 30 in
  let acc = Lbcc_net.Rounds.create ~bandwidth:16 in
  let r = Mixed_ball.maximize ~accountant:acc ~a ~l () in
  Alcotest.(check bool) "rounds positive" true (r.Mixed_ball.rounds > 0)

let prop_mixed_ball_feasibility =
  QCheck.Test.make ~name:"mixed ball maximizer is always feasible" ~count:60
    QCheck.small_int (fun seed ->
      let a, l = random_ball_instance (1000 + seed) in
      let r = Mixed_ball.maximize ~a ~l () in
      Mixed_ball.feasible ~l r.Mixed_ball.x)

(* ------------------------------------------------------------------ *)
(* Problem                                                             *)

let tiny_problem () =
  (* Two variables, one constraint x1 + x2 = 1, box [0, 1]. *)
  let a = Sparse.of_triplets ~rows:2 ~cols:1 [ (0, 0, 1.0); (1, 0, 1.0) ] in
  Problem.make ~a ~b:[| 1.0 |] ~c:[| 1.0; 2.0 |] ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; 1.0 |]

let test_problem_dimensions () =
  let p = tiny_problem () in
  Alcotest.(check int) "m" 2 (Problem.m p);
  Alcotest.(check int) "n" 1 (Problem.n p)

let test_problem_interior () =
  let p = tiny_problem () in
  Alcotest.(check bool) "interior" true (Problem.interior p [| 0.5; 0.5 |]);
  Alcotest.(check bool) "boundary" false (Problem.interior p [| 0.0; 1.0 |])

let test_problem_equality_residual () =
  let p = tiny_problem () in
  Alcotest.(check (float 1e-12)) "feasible" 0.0 (Problem.equality_residual p [| 0.3; 0.7 |]);
  Alcotest.(check bool) "infeasible" true (Problem.equality_residual p [| 0.3; 0.3 |] > 0.1)

let test_problem_big_u () =
  let p = tiny_problem () in
  let u = Problem.big_u p ~x0:[| 0.5; 0.5 |] in
  Alcotest.(check (float 1e-12)) "U = max(2, 1, 1, 2)" 2.0 u

let test_dense_normal_solver () =
  let p = tiny_problem () in
  let s = Problem.dense_normal_solver p in
  (* A^T D A = d1 + d2 (1x1). *)
  let x = s.Problem.solve ~d:[| 2.0; 3.0 |] ~rhs:[| 10.0 |] in
  Alcotest.(check (float 1e-9)) "solve" 2.0 x.(0)

let suites =
  [
    ( "lp.barrier",
      [
        Alcotest.test_case "log lower" `Quick test_barrier_log_lower;
        Alcotest.test_case "log upper" `Quick test_barrier_log_upper;
        Alcotest.test_case "trigonometric" `Quick test_barrier_trig;
        Alcotest.test_case "numeric derivatives" `Quick test_barrier_derivatives_numeric;
        Alcotest.test_case "rejects free line" `Quick test_barrier_rejects_free_line;
        Alcotest.test_case "center interior" `Quick test_barrier_center_interior;
      ] );
    ( "lp.jl",
      [
        Alcotest.test_case "deterministic" `Quick test_jl_deterministic_from_seed;
        Alcotest.test_case "entries" `Quick test_jl_entries_pm;
        Alcotest.test_case "norm preservation" `Slow test_jl_norm_preservation;
        Alcotest.test_case "rows monotone" `Quick test_jl_rows_for_monotone;
      ] );
    ( "lp.leverage",
      [
        Alcotest.test_case "sum = rank" `Quick test_leverage_sum_is_rank;
        Alcotest.test_case "in [0,1]" `Quick test_leverage_in_unit_interval;
        Alcotest.test_case "approx close" `Slow test_leverage_approx_close;
        Alcotest.test_case "charges rounds" `Quick test_leverage_approx_charges_rounds;
      ] );
    ( "lp.lewis",
      [
        Alcotest.test_case "p=2 is leverage" `Quick test_lewis_p2_is_leverage;
        Alcotest.test_case "fixed point" `Quick test_lewis_fixed_point_residual;
        Alcotest.test_case "sum ~ rank" `Quick test_lewis_sum_close_to_rank;
        Alcotest.test_case "trust region" `Quick test_lewis_apx_stays_in_trust_region;
        Alcotest.test_case "initial homotopy" `Slow test_lewis_initial_weights_homotopy;
        Alcotest.test_case "regularized" `Quick test_lewis_regularized;
      ] );
    ( "lp.mixed_ball",
      [
        Alcotest.test_case "matches brute force" `Quick test_mixed_ball_matches_brute_force;
        Alcotest.test_case "feasible" `Quick test_mixed_ball_feasible;
        Alcotest.test_case "dominates random" `Slow test_mixed_ball_dominates_random_feasible;
        Alcotest.test_case "zero objective" `Quick test_mixed_ball_zero_objective;
        Alcotest.test_case "single coordinate" `Quick test_mixed_ball_single_coordinate;
        Alcotest.test_case "rejects bad l" `Quick test_mixed_ball_rejects_bad_l;
        Alcotest.test_case "charges rounds" `Quick test_mixed_ball_charges_rounds;
        QCheck_alcotest.to_alcotest prop_mixed_ball_feasibility;
      ] );
    ( "lp.problem",
      [
        Alcotest.test_case "dimensions" `Quick test_problem_dimensions;
        Alcotest.test_case "interior" `Quick test_problem_interior;
        Alcotest.test_case "equality residual" `Quick test_problem_equality_residual;
        Alcotest.test_case "big U" `Quick test_problem_big_u;
        Alcotest.test_case "dense normal solver" `Quick test_dense_normal_solver;
      ] );
  ]
