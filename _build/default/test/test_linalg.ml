open Lbcc_util
module Vec = Lbcc_linalg.Vec
module Dense = Lbcc_linalg.Dense
module Sparse = Lbcc_linalg.Sparse
module Eigen = Lbcc_linalg.Eigen
module Cg = Lbcc_linalg.Cg
module Chebyshev = Lbcc_linalg.Chebyshev

let vecs = Alcotest.(array (float 1e-9))

let random_vec prng n = Vec.init n (fun _ -> Prng.gaussian prng)

let random_spd prng n =
  (* A^T A + I is SPD. *)
  let a = Dense.init n n (fun _ _ -> Prng.gaussian prng) in
  Dense.add (Dense.matmul (Dense.transpose a) a) (Dense.identity n)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)

let test_vec_ops () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; 5.0; 6.0 |] in
  Alcotest.check vecs "add" [| 5.0; 7.0; 9.0 |] (Vec.add x y);
  Alcotest.check vecs "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub x y);
  Alcotest.check vecs "scale" [| 2.0; 4.0; 6.0 |] (Vec.scale 2.0 x);
  Alcotest.(check (float 1e-9)) "dot" 32.0 (Vec.dot x y);
  Alcotest.(check (float 1e-9)) "norm2" (sqrt 14.0) (Vec.norm2 x);
  Alcotest.(check (float 1e-9)) "norm_inf" 3.0 (Vec.norm_inf x);
  Alcotest.(check (float 1e-9)) "norm1" 6.0 (Vec.norm1 x)

let test_vec_axpy () =
  let x = [| 1.0; 2.0 |] and y = [| 10.0; 20.0 |] in
  Vec.axpy 3.0 x y;
  Alcotest.check vecs "axpy" [| 13.0; 26.0 |] y

let test_vec_mean_center () =
  let x = Vec.mean_center [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-12)) "zero sum" 0.0 (Vec.sum x)

let test_vec_weighted_norm () =
  Alcotest.(check (float 1e-9)) "weighted" (sqrt 11.0)
    (Vec.weighted_norm [| 2.0; 1.0 |] [| 1.0; 3.0 |])

let test_vec_clamp () =
  let x = Vec.clamp ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; 1.0 |] [| -0.5; 2.0 |] in
  Alcotest.check vecs "clamped" [| 0.0; 1.0 |] x

let test_vec_basis () =
  Alcotest.check vecs "basis" [| 0.0; 1.0; 0.0 |] (Vec.basis 3 1)

let prop_vec_dot_symmetric =
  QCheck.Test.make ~name:"dot is symmetric" ~count:100
    QCheck.(list_of_size (Gen.return 8) (float_range (-10.0) 10.0))
    (fun xs ->
      let x = Array.of_list xs in
      let y = Array.map (fun v -> v +. 1.0) x in
      Float.abs (Vec.dot x y -. Vec.dot y x) < 1e-9)

let prop_vec_triangle =
  QCheck.Test.make ~name:"norm2 triangle inequality" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.return 6) (float_range (-5.0) 5.0))
        (list_of_size (Gen.return 6) (float_range (-5.0) 5.0)))
    (fun (xs, ys) ->
      let x = Array.of_list xs and y = Array.of_list ys in
      Vec.norm2 (Vec.add x y) <= Vec.norm2 x +. Vec.norm2 y +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Dense                                                               *)

let test_dense_matmul () =
  let a = Dense.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Dense.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Dense.matmul a b in
  Alcotest.check vecs "matmul row0" [| 19.0; 22.0 |] (Dense.to_arrays c).(0);
  Alcotest.check vecs "matmul row1" [| 43.0; 50.0 |] (Dense.to_arrays c).(1)

let test_dense_matvec_t () =
  let a = Dense.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let y = [| 1.0; 1.0; 1.0 |] in
  Alcotest.check vecs "A^T y" [| 9.0; 12.0 |] (Dense.matvec_t a y)

let test_dense_solve_roundtrip () =
  let prng = Prng.create 2 in
  for n = 2 to 12 do
    let a = random_spd prng n in
    let x = random_vec prng n in
    let b = Dense.matvec a x in
    let x' = Dense.solve a b in
    Alcotest.(check bool)
      (Printf.sprintf "solve n=%d" n)
      true
      (Vec.dist2 x x' < 1e-6 *. Float.max 1.0 (Vec.norm2 x))
  done

let test_dense_solve_singular () =
  let a = Dense.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Dense.solve: singular matrix")
    (fun () -> ignore (Dense.solve a [| 1.0; 1.0 |]))

let test_dense_cholesky () =
  let prng = Prng.create 3 in
  let a = random_spd prng 8 in
  let l = Dense.cholesky a in
  let llt = Dense.matmul l (Dense.transpose l) in
  Alcotest.(check (float 1e-6)) "L L^T = A" 0.0 (Dense.frobenius (Dense.sub llt a))

let test_dense_cholesky_solve () =
  let prng = Prng.create 4 in
  let a = random_spd prng 10 in
  let x = random_vec prng 10 in
  let b = Dense.matvec a x in
  let l = Dense.cholesky a in
  let x' = Dense.cholesky_solve l b in
  Alcotest.(check bool) "cholesky solve" true (Vec.dist2 x x' < 1e-6)

let test_dense_inverse () =
  let prng = Prng.create 5 in
  let a = random_spd prng 6 in
  let ia = Dense.inverse a in
  let prod = Dense.matmul a ia in
  Alcotest.(check (float 1e-6)) "A A^-1 = I" 0.0
    (Dense.frobenius (Dense.sub prod (Dense.identity 6)))

let test_dense_factorize_reuse () =
  let prng = Prng.create 6 in
  let a = random_spd prng 7 in
  let f = Dense.factorize a in
  for _ = 1 to 5 do
    let x = random_vec prng 7 in
    let b = Dense.matvec a x in
    Alcotest.(check bool) "factored solve" true
      (Vec.dist2 x (Dense.solve_factored f b) < 1e-6)
  done

let test_dense_symmetrize () =
  let a = Dense.of_arrays [| [| 1.0; 4.0 |]; [| 2.0; 3.0 |] |] in
  let s = Dense.symmetrize a in
  Alcotest.(check bool) "symmetric" true (Dense.is_symmetric s);
  Alcotest.(check (float 1e-12)) "avg" 3.0 (Dense.get s 0 1)

(* ------------------------------------------------------------------ *)
(* Sparse                                                              *)

let test_sparse_matvec_matches_dense () =
  let prng = Prng.create 7 in
  let r = 15 and c = 9 in
  let triplets = ref [] in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      if Prng.bernoulli prng 0.3 then triplets := (i, j, Prng.gaussian prng) :: !triplets
    done
  done;
  let s = Sparse.of_triplets ~rows:r ~cols:c !triplets in
  let d = Sparse.to_dense s in
  let x = random_vec prng c and y = random_vec prng r in
  Alcotest.(check bool) "matvec" true
    (Vec.dist2 (Sparse.matvec s x) (Dense.matvec d x) < 1e-9);
  Alcotest.(check bool) "matvec_t" true
    (Vec.dist2 (Sparse.matvec_t s y) (Dense.matvec_t d y) < 1e-9)

let test_sparse_duplicates_sum () =
  let s = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.0); (0, 0, 2.0); (1, 1, -1.0) ] in
  Alcotest.(check (float 1e-12)) "summed" 3.0 (Sparse.get s 0 0);
  Alcotest.(check int) "nnz" 2 (Sparse.nnz s)

let test_sparse_transpose () =
  let s = Sparse.of_triplets ~rows:2 ~cols:3 [ (0, 2, 5.0); (1, 0, -1.0) ] in
  let st = Sparse.transpose s in
  Alcotest.(check (float 1e-12)) "transposed entry" 5.0 (Sparse.get st 2 0);
  Alcotest.(check int) "dims" 3 (Sparse.rows st)

let test_sparse_gram () =
  let prng = Prng.create 8 in
  let r = 12 and c = 5 in
  let triplets = ref [] in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      if Prng.bernoulli prng 0.4 then triplets := (i, j, Prng.gaussian prng) :: !triplets
    done
  done;
  let s = Sparse.of_triplets ~rows:r ~cols:c !triplets in
  let d = Vec.init r (fun _ -> 0.1 +. Prng.float prng) in
  let g = Sparse.gram s d in
  (* reference: A^T D A densely *)
  let ad = Sparse.to_dense s in
  let dd = Dense.of_diag d in
  let expect = Dense.matmul (Dense.transpose ad) (Dense.matmul dd ad) in
  Alcotest.(check (float 1e-8)) "gram" 0.0 (Dense.frobenius (Dense.sub g expect))

let test_sparse_row_col_scale () =
  let s = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.0); (0, 1, 2.0); (1, 1, 3.0) ] in
  let rs = Sparse.row_scale [| 2.0; 10.0 |] s in
  Alcotest.(check (float 1e-12)) "row scaled" 4.0 (Sparse.get rs 0 1);
  Alcotest.(check (float 1e-12)) "row scaled 2" 30.0 (Sparse.get rs 1 1);
  let cs = Sparse.col_scale s [| 5.0; 1.0 |] in
  Alcotest.(check (float 1e-12)) "col scaled" 5.0 (Sparse.get cs 0 0)

let test_sparse_add () =
  let a = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.0); (0, 1, 2.0) ] in
  let b = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, -1.0); (1, 1, 3.0) ] in
  let c = Sparse.add a b in
  Alcotest.(check (float 1e-12)) "cancelled" 0.0 (Sparse.get c 0 0);
  Alcotest.(check (float 1e-12)) "kept" 2.0 (Sparse.get c 0 1);
  Alcotest.(check (float 1e-12)) "added" 3.0 (Sparse.get c 1 1);
  (* exact zeros are dropped from the structure *)
  Alcotest.(check int) "nnz" 2 (Sparse.nnz c)

let prop_sparse_roundtrip =
  QCheck.Test.make ~name:"sparse of_dense/to_dense roundtrip" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let prng = Prng.create seed in
      let d =
        Dense.init 6 4 (fun _ _ ->
            if Prng.bernoulli prng 0.5 then Prng.gaussian prng else 0.0)
      in
      let d' = Sparse.to_dense (Sparse.of_dense d) in
      Dense.frobenius (Dense.sub d d') < 1e-12)

(* ------------------------------------------------------------------ *)
(* Eigen                                                               *)

let test_eigen_diagonal () =
  let d = Dense.of_diag [| 3.0; 1.0; 2.0 |] in
  let eigs = Eigen.eigenvalues d in
  Alcotest.check vecs "sorted eigenvalues" [| 1.0; 2.0; 3.0 |] eigs

let test_eigen_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 1 and 3 *)
  let a = Dense.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let eigs = Eigen.eigenvalues a in
  Alcotest.(check (float 1e-9)) "lambda1" 1.0 eigs.(0);
  Alcotest.(check (float 1e-9)) "lambda2" 3.0 eigs.(1)

let test_eigen_reconstruction () =
  let prng = Prng.create 9 in
  let a = Dense.symmetrize (Dense.init 8 8 (fun _ _ -> Prng.gaussian prng)) in
  let eigs, v = Eigen.jacobi a in
  (* A v_j = lambda_j v_j *)
  for j = 0 to 7 do
    let vj = Array.init 8 (fun i -> Dense.get v i j) in
    let av = Dense.matvec a vj in
    let lv = Vec.scale eigs.(j) vj in
    Alcotest.(check bool)
      (Printf.sprintf "eigenpair %d" j)
      true
      (Vec.dist2 av lv < 1e-7)
  done

let test_eigen_trace_preserved () =
  let prng = Prng.create 10 in
  let a = Dense.symmetrize (Dense.init 10 10 (fun _ _ -> Prng.gaussian prng)) in
  let eigs = Eigen.eigenvalues a in
  Alcotest.(check (float 1e-7)) "trace = sum of eigenvalues" (Dense.trace a)
    (Vec.sum eigs)

let test_eigen_spd_condition_number () =
  let d = Dense.of_diag [| 2.0; 8.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "kappa = max/min" 4.0 (Eigen.spd_condition_number d)

let test_eigen_relative_condition_identity () =
  let prng = Prng.create 11 in
  let a = random_spd prng 6 in
  let lmin, lmax = Eigen.relative_condition a a in
  Alcotest.(check (float 1e-6)) "lmin = 1" 1.0 lmin;
  Alcotest.(check (float 1e-6)) "lmax = 1" 1.0 lmax

let test_eigen_relative_condition_scaled () =
  let prng = Prng.create 12 in
  let a = random_spd prng 6 in
  let b = Dense.scale 2.0 a in
  let lmin, lmax = Eigen.relative_condition a b in
  Alcotest.(check (float 1e-6)) "lmin = 1/2" 0.5 lmin;
  Alcotest.(check (float 1e-6)) "lmax = 1/2" 0.5 lmax

(* ------------------------------------------------------------------ *)
(* Cg and Chebyshev                                                    *)

let test_cg_solves_spd () =
  let prng = Prng.create 13 in
  let a = random_spd prng 20 in
  let x = random_vec prng 20 in
  let b = Dense.matvec a x in
  let r = Cg.solve ~matvec:(Dense.matvec a) ~b ~tol:1e-12 () in
  Alcotest.(check bool) "converged" true r.Cg.converged;
  Alcotest.(check bool) "solution" true (Vec.dist2 x r.Cg.solution < 1e-5)

let test_cg_preconditioned_faster () =
  let prng = Prng.create 14 in
  let n = 30 in
  (* Ill-conditioned diagonal + noise *)
  let d = Vec.init n (fun i -> 1.0 +. (1000.0 *. float_of_int i /. float_of_int n)) in
  let a = Dense.of_diag d in
  let x = random_vec prng n in
  let b = Dense.matvec a x in
  let plain = Cg.solve ~matvec:(Dense.matvec a) ~b ~tol:1e-10 () in
  let precond z = Vec.div z d in
  let pcg =
    Cg.solve_preconditioned ~matvec:(Dense.matvec a) ~precond ~b ~tol:1e-10 ()
  in
  Alcotest.(check bool) "pcg converged" true pcg.Cg.converged;
  Alcotest.(check bool) "pcg at most as many iterations" true
    (pcg.Cg.iterations <= plain.Cg.iterations)

let test_chebyshev_identity_preconditioner () =
  (* B = A: kappa = 1, converges immediately. *)
  let prng = Prng.create 15 in
  let a = random_spd prng 10 in
  let f = Dense.factorize a in
  let x = random_vec prng 10 in
  let b = Dense.matvec a x in
  let r =
    Chebyshev.solve ~matvec:(Dense.matvec a)
      ~solve_b:(Dense.solve_factored f) ~kappa:1.0001 ~eps:1e-10 ~b ()
  in
  Alcotest.(check bool) "tiny residual" true (r.Chebyshev.residual_norm < 1e-8)

let test_chebyshev_iterations_bound () =
  Alcotest.(check bool) "monotone in kappa" true
    (Chebyshev.iterations_bound ~kappa:100.0 ~eps:1e-6
    > Chebyshev.iterations_bound ~kappa:4.0 ~eps:1e-6);
  Alcotest.(check bool) "monotone in eps" true
    (Chebyshev.iterations_bound ~kappa:4.0 ~eps:1e-12
    > Chebyshev.iterations_bound ~kappa:4.0 ~eps:1e-2)

let test_chebyshev_scaled_preconditioner () =
  (* B = kappa * A with spectrum [1/kappa, 1/kappa]: still within theory if
     we pass the pencil bounds kappa. *)
  let prng = Prng.create 16 in
  let a = random_spd prng 12 in
  let f = Dense.factorize a in
  let kappa = 5.0 in
  let solve_b r = Vec.scale (1.0 /. kappa) (Dense.solve_factored f r) in
  let x = random_vec prng 12 in
  let b = Dense.matvec a x in
  let r =
    Chebyshev.solve ~matvec:(Dense.matvec a) ~solve_b ~kappa ~eps:1e-10 ~b ()
  in
  Alcotest.(check bool) "converges through scaled preconditioner" true
    (r.Chebyshev.residual_norm < 1e-6)

let test_chebyshev_adaptive_counts () =
  let prng = Prng.create 17 in
  let a = random_spd prng 12 in
  let f = Dense.factorize a in
  let kappa = 3.0 in
  let solve_b r = Vec.scale (1.0 /. kappa) (Dense.solve_factored f r) in
  let x = random_vec prng 12 in
  let b = Dense.matvec a x in
  let r =
    Chebyshev.solve_adaptive ~matvec:(Dense.matvec a) ~solve_b ~kappa
      ~rtol:1e-8 ~b ()
  in
  Alcotest.(check bool) "adaptive converged" true (r.Chebyshev.residual_norm <= 1e-8);
  Alcotest.(check bool) "within 4x bound" true
    (r.Chebyshev.iterations <= 4 * Chebyshev.iterations_bound ~kappa ~eps:1e-8)

let suites =
  [
    ( "linalg.vec",
      [
        Alcotest.test_case "ops" `Quick test_vec_ops;
        Alcotest.test_case "axpy" `Quick test_vec_axpy;
        Alcotest.test_case "mean_center" `Quick test_vec_mean_center;
        Alcotest.test_case "weighted norm" `Quick test_vec_weighted_norm;
        Alcotest.test_case "clamp" `Quick test_vec_clamp;
        Alcotest.test_case "basis" `Quick test_vec_basis;
        QCheck_alcotest.to_alcotest prop_vec_dot_symmetric;
        QCheck_alcotest.to_alcotest prop_vec_triangle;
      ] );
    ( "linalg.dense",
      [
        Alcotest.test_case "matmul" `Quick test_dense_matmul;
        Alcotest.test_case "matvec_t" `Quick test_dense_matvec_t;
        Alcotest.test_case "solve roundtrip" `Quick test_dense_solve_roundtrip;
        Alcotest.test_case "solve singular" `Quick test_dense_solve_singular;
        Alcotest.test_case "cholesky" `Quick test_dense_cholesky;
        Alcotest.test_case "cholesky solve" `Quick test_dense_cholesky_solve;
        Alcotest.test_case "inverse" `Quick test_dense_inverse;
        Alcotest.test_case "factorize reuse" `Quick test_dense_factorize_reuse;
        Alcotest.test_case "symmetrize" `Quick test_dense_symmetrize;
      ] );
    ( "linalg.sparse",
      [
        Alcotest.test_case "matvec vs dense" `Quick test_sparse_matvec_matches_dense;
        Alcotest.test_case "duplicates sum" `Quick test_sparse_duplicates_sum;
        Alcotest.test_case "transpose" `Quick test_sparse_transpose;
        Alcotest.test_case "gram" `Quick test_sparse_gram;
        Alcotest.test_case "row/col scale" `Quick test_sparse_row_col_scale;
        Alcotest.test_case "add" `Quick test_sparse_add;
        QCheck_alcotest.to_alcotest prop_sparse_roundtrip;
      ] );
    ( "linalg.eigen",
      [
        Alcotest.test_case "diagonal" `Quick test_eigen_diagonal;
        Alcotest.test_case "known 2x2" `Quick test_eigen_known_2x2;
        Alcotest.test_case "eigenpairs" `Quick test_eigen_reconstruction;
        Alcotest.test_case "trace preserved" `Quick test_eigen_trace_preserved;
        Alcotest.test_case "spd condition number" `Quick test_eigen_spd_condition_number;
        Alcotest.test_case "relative condition id" `Quick
          test_eigen_relative_condition_identity;
        Alcotest.test_case "relative condition scaled" `Quick
          test_eigen_relative_condition_scaled;
      ] );
    ( "linalg.iterative",
      [
        Alcotest.test_case "cg solves" `Quick test_cg_solves_spd;
        Alcotest.test_case "pcg no slower" `Quick test_cg_preconditioned_faster;
        Alcotest.test_case "chebyshev kappa=1" `Quick
          test_chebyshev_identity_preconditioner;
        Alcotest.test_case "chebyshev bound monotone" `Quick
          test_chebyshev_iterations_bound;
        Alcotest.test_case "chebyshev scaled preconditioner" `Quick
          test_chebyshev_scaled_preconditioner;
        Alcotest.test_case "chebyshev adaptive" `Quick test_chebyshev_adaptive_counts;
      ] );
  ]
