open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Paths = Lbcc_graph.Paths
module Model = Lbcc_net.Model
module Bfs = Lbcc_dist.Bfs
module Sssp = Lbcc_dist.Sssp
module Leader = Lbcc_dist.Leader

let test_bfs_matches_reference () =
  for seed = 1 to 5 do
    let prng = Prng.create seed in
    let g = Gen.erdos_renyi_connected prng ~n:24 ~p:0.15 ~w_max:1 in
    let r = Bfs.run ~model:Model.broadcast_congest ~graph:g ~source:0 () in
    let expect = Paths.bfs_hops g ~src:0 in
    Alcotest.(check (array int)) (Printf.sprintf "seed %d" seed) expect r.Bfs.dist
  done

let test_bfs_parents_form_tree () =
  let prng = Prng.create 6 in
  let g = Gen.erdos_renyi_connected prng ~n:20 ~p:0.2 ~w_max:1 in
  let r = Bfs.run ~model:Model.broadcast_congest ~graph:g ~source:0 () in
  Array.iteri
    (fun v p ->
      if v <> 0 then begin
        Alcotest.(check bool) "has parent" true (p >= 0);
        Alcotest.(check int) "parent one hop closer" (r.Bfs.dist.(v) - 1) r.Bfs.dist.(p)
      end)
    r.Bfs.parent

let test_bfs_rounds_track_diameter () =
  let prng = Prng.create 7 in
  let ring = Gen.ring prng ~n:32 in
  let r = Bfs.run ~model:Model.broadcast_congest ~graph:ring ~source:0 () in
  (* Hop diameter of a 32-ring is 16; the wave needs ~that many supersteps. *)
  Alcotest.(check bool)
    (Printf.sprintf "supersteps %d ~ diameter 16" r.Bfs.supersteps)
    true
    (r.Bfs.supersteps >= 16 && r.Bfs.supersteps <= 20)

let test_bfs_clique_is_flat () =
  let prng = Prng.create 8 in
  let ring = Gen.ring prng ~n:32 in
  let bc = Bfs.run ~model:Model.broadcast_congest ~graph:ring ~source:0 () in
  let bcc = Bfs.run ~model:Model.broadcast_congested_clique ~graph:ring ~source:0 () in
  Alcotest.(check bool) "clique flattens the wave" true
    (bcc.Bfs.supersteps < bc.Bfs.supersteps);
  (* In the clique topology hop distance is 1 for everyone. *)
  Array.iteri
    (fun v d -> if v <> 0 then Alcotest.(check int) "one hop" 1 d)
    bcc.Bfs.dist

let test_sssp_matches_dijkstra () =
  List.iter
    (fun model ->
      for seed = 1 to 4 do
        let prng = Prng.create (10 + seed) in
        let g = Gen.erdos_renyi_connected prng ~n:20 ~p:0.2 ~w_max:9 in
        let r = Sssp.run ~model ~graph:g ~source:0 () in
        let expect = Paths.dijkstra g ~src:0 in
        Array.iteri
          (fun v d ->
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "seed %d vertex %d" seed v)
              expect.(v) d)
          r.Sssp.dist
      done)
    [ Model.broadcast_congest; Model.broadcast_congested_clique ]

let test_sssp_parents_consistent () =
  let prng = Prng.create 15 in
  let g = Gen.erdos_renyi_connected prng ~n:18 ~p:0.25 ~w_max:5 in
  let r = Sssp.run ~model:Model.broadcast_congest ~graph:g ~source:0 () in
  Array.iteri
    (fun v p ->
      if v <> 0 && p >= 0 then begin
        (* dist(v) = dist(parent) + w(parent, v) *)
        let w =
          List.find_map
            (fun (u, eid) ->
              if u = p then Some (Graph.edge g eid).Graph.w else None)
            (Graph.neighbors g v)
        in
        match w with
        | Some w ->
            Alcotest.(check (float 1e-9)) "tree edge tight" r.Sssp.dist.(v)
              (r.Sssp.dist.(p) +. w)
        | None -> Alcotest.fail "parent is not a neighbor"
      end)
    r.Sssp.parent

let test_sssp_rounds_charged () =
  let prng = Prng.create 16 in
  let g = Gen.ring prng ~n:16 ~w_max:4 in
  let acc = Lbcc_net.Rounds.create ~bandwidth:(Model.bandwidth ~n:16) in
  let r = Sssp.run ~accountant:acc ~model:Model.broadcast_congest ~graph:g ~source:0 () in
  Alcotest.(check bool) "rounds charged" true (Lbcc_net.Rounds.rounds acc >= r.Sssp.supersteps)

let test_leader_agreement () =
  List.iter
    (fun model ->
      let prng = Prng.create 17 in
      let g = Gen.erdos_renyi_connected prng ~n:24 ~p:0.2 ~w_max:1 in
      let r = Leader.run ~model ~graph:g () in
      Alcotest.(check int) "min id wins" 0 r.Leader.leader)
    [ Model.broadcast_congest; Model.broadcast_congested_clique ]

let test_leader_clique_fast () =
  let prng = Prng.create 18 in
  let ring = Gen.ring prng ~n:40 in
  let bc = Leader.run ~model:Model.broadcast_congest ~graph:ring () in
  let bcc = Leader.run ~model:Model.broadcast_congested_clique ~graph:ring () in
  Alcotest.(check bool)
    (Printf.sprintf "clique %d < ring %d supersteps" bcc.Leader.supersteps
       bc.Leader.supersteps)
    true
    (bcc.Leader.supersteps < bc.Leader.supersteps)

let test_leader_rejects_disconnected () =
  let g = Graph.create ~n:4 [ { Graph.u = 0; v = 1; w = 1.0 }; { u = 2; v = 3; w = 1.0 } ] in
  Alcotest.check_raises "disconnected" (Invalid_argument "Leader.run: graph must be connected")
    (fun () -> ignore (Leader.run ~model:Model.broadcast_congest ~graph:g ()))

let prop_sssp_random_graphs =
  QCheck.Test.make ~name:"distributed SSSP equals Dijkstra" ~count:15
    QCheck.small_int (fun seed ->
      let prng = Prng.create (3000 + seed) in
      let g = Gen.erdos_renyi_connected prng ~n:14 ~p:0.25 ~w_max:7 in
      let r = Sssp.run ~model:Model.broadcast_congest ~graph:g ~source:0 () in
      let expect = Paths.dijkstra g ~src:0 in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) expect r.Sssp.dist)

let suites =
  [
    ( "dist.bfs",
      [
        Alcotest.test_case "matches reference" `Quick test_bfs_matches_reference;
        Alcotest.test_case "parents form tree" `Quick test_bfs_parents_form_tree;
        Alcotest.test_case "rounds track diameter" `Quick test_bfs_rounds_track_diameter;
        Alcotest.test_case "clique is flat" `Quick test_bfs_clique_is_flat;
      ] );
    ( "dist.sssp",
      [
        Alcotest.test_case "matches dijkstra" `Quick test_sssp_matches_dijkstra;
        Alcotest.test_case "parents consistent" `Quick test_sssp_parents_consistent;
        Alcotest.test_case "rounds charged" `Quick test_sssp_rounds_charged;
        QCheck_alcotest.to_alcotest prop_sssp_random_graphs;
      ] );
    ( "dist.leader",
      [
        Alcotest.test_case "agreement" `Quick test_leader_agreement;
        Alcotest.test_case "clique fast" `Quick test_leader_clique_fast;
        Alcotest.test_case "rejects disconnected" `Quick test_leader_rejects_disconnected;
      ] );
  ]
