open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Sparsify = Lbcc_sparsifier.Sparsify
module Apriori = Lbcc_sparsifier.Apriori
module Certify = Lbcc_sparsifier.Certify

let test_defaults () =
  Alcotest.(check int) "k default" 6 (Sparsify.default_k ~n:64);
  Alcotest.(check int) "iterations default" 10 (Sparsify.default_iterations ~m:1000);
  Alcotest.(check bool) "t grows as eps shrinks" true
    (Sparsify.default_t ~n:64 ~epsilon:0.1 () > Sparsify.default_t ~n:64 ~epsilon:1.0 ())

let test_preserves_connectivity () =
  for seed = 1 to 4 do
    let prng = Prng.create seed in
    let g = Gen.erdos_renyi_connected prng ~n:48 ~p:0.4 ~w_max:8 in
    let r = Sparsify.run ~prng:(Prng.create (seed + 10)) ~graph:g ~epsilon:0.5 ~t:2 ~k:3 () in
    Alcotest.(check bool) "connected" true (Graph.is_connected r.Sparsify.sparsifier)
  done

let test_weights_are_powers_of_four () =
  let prng = Prng.create 5 in
  let g = Gen.erdos_renyi_connected prng ~n:40 ~p:0.4 ~w_max:1 in
  let r = Sparsify.run ~prng:(Prng.create 6) ~graph:g ~epsilon:0.5 ~t:2 ~k:3 () in
  Array.iter
    (fun e ->
      let w = e.Graph.w in
      let log4 = log w /. log 4.0 in
      Alcotest.(check bool)
        (Printf.sprintf "weight %g is a power of 4" w)
        true
        (Float.abs (log4 -. Float.round log4) < 1e-9))
    (Graph.edges r.Sparsify.sparsifier)

let test_edge_origin_valid () =
  let prng = Prng.create 7 in
  let g = Gen.erdos_renyi_connected prng ~n:32 ~p:0.4 ~w_max:4 in
  let r = Sparsify.run ~prng:(Prng.create 8) ~graph:g ~epsilon:0.5 ~t:2 ~k:3 () in
  Array.iteri
    (fun pos orig ->
      let se = Graph.edge r.Sparsify.sparsifier pos in
      let ge = Graph.edge g orig in
      Alcotest.(check bool) "same endpoints" true
        ((se.Graph.u = ge.Graph.u && se.Graph.v = ge.Graph.v)
        || (se.Graph.u = ge.Graph.v && se.Graph.v = ge.Graph.u)))
    r.Sparsify.edge_origin

let test_quality_improves_with_t () =
  let prng = Prng.create 9 in
  let g = Gen.erdos_renyi_connected prng ~n:48 ~p:0.6 ~w_max:1 in
  let eps_of t =
    let runs =
      List.init 3 (fun s ->
          let r =
            Sparsify.run ~prng:(Prng.create (100 + s)) ~graph:g ~epsilon:0.5 ~t ~k:3 ()
          in
          (Certify.exact g r.Sparsify.sparsifier).Certify.epsilon_achieved)
    in
    List.fold_left ( +. ) 0.0 runs /. 3.0
  in
  let e1 = eps_of 1 and e6 = eps_of 6 in
  Alcotest.(check bool)
    (Printf.sprintf "eps(t=6)=%.3f < eps(t=1)=%.3f" e6 e1)
    true (e6 < e1)

let test_large_t_gives_good_sparsifier () =
  let prng = Prng.create 11 in
  let g = Gen.erdos_renyi_connected prng ~n:40 ~p:0.5 ~w_max:2 in
  let r = Sparsify.run ~prng:(Prng.create 12) ~graph:g ~epsilon:0.5 ~t:12 ~k:3 () in
  let c = Certify.exact g r.Sparsify.sparsifier in
  Alcotest.(check bool)
    (Printf.sprintf "achieved eps %.3f < 0.75" c.Certify.epsilon_achieved)
    true
    (c.Certify.epsilon_achieved < 0.75)

let test_certify_identity () =
  let prng = Prng.create 13 in
  let g = Gen.erdos_renyi_connected prng ~n:24 ~p:0.3 ~w_max:5 in
  let c = Certify.exact g g in
  Alcotest.(check (float 1e-6)) "graph certifies itself at eps 0" 0.0
    c.Certify.epsilon_achieved

let test_certify_scaled () =
  let prng = Prng.create 14 in
  let g = Gen.erdos_renyi_connected prng ~n:24 ~p:0.3 ~w_max:5 in
  let h = Graph.map_weights (fun _ e -> 2.0 *. e.Graph.w) g in
  let c = Certify.exact g h in
  (* L_G = (1/2) L_H: lambda in [0.5, 0.5], eps achieved = 0.5. *)
  Alcotest.(check (float 1e-6)) "eps of doubling" 0.5 c.Certify.epsilon_achieved

let test_certify_probe_within_exact () =
  let prng = Prng.create 15 in
  let g = Gen.erdos_renyi_connected prng ~n:32 ~p:0.4 ~w_max:3 in
  let r = Sparsify.run ~prng:(Prng.create 16) ~graph:g ~epsilon:0.5 ~t:3 ~k:3 () in
  let exact = Certify.exact g r.Sparsify.sparsifier in
  let probe = Certify.probe (Prng.create 17) g r.Sparsify.sparsifier ~samples:200 in
  (* Probing inner-approximates the spectral interval. *)
  Alcotest.(check bool) "probe lmin >= exact lmin" true
    (probe.Certify.lambda_min >= exact.Certify.lambda_min -. 1e-9);
  Alcotest.(check bool) "probe lmax <= exact lmax" true
    (probe.Certify.lambda_max <= exact.Certify.lambda_max +. 1e-9)

let test_is_sparsifier_predicate () =
  let prng = Prng.create 18 in
  let g = Gen.erdos_renyi_connected prng ~n:20 ~p:0.4 ~w_max:2 in
  Alcotest.(check bool) "self" true (Certify.is_sparsifier g g ~epsilon:0.01);
  let h = Graph.map_weights (fun _ e -> 3.0 *. e.Graph.w) g in
  Alcotest.(check bool) "tripled fails at eps=0.5" false
    (Certify.is_sparsifier g h ~epsilon:0.5)

(* Lemma 3.3: ad-hoc and a-priori sampling give the same output
   distribution; compare sparsifier sizes across seeds. *)
let test_adhoc_vs_apriori_distribution () =
  let prng = Prng.create 19 in
  let g = Gen.erdos_renyi_connected prng ~n:36 ~p:0.5 ~w_max:1 in
  let runs = 12 in
  let sizes_adhoc =
    Array.init runs (fun s ->
        let r =
          Sparsify.run ~prng:(Prng.create (500 + s)) ~graph:g ~epsilon:0.5 ~t:2 ~k:3 ()
        in
        float_of_int (Graph.m r.Sparsify.sparsifier))
  in
  let sizes_apriori =
    Array.init runs (fun s ->
        let r =
          Apriori.run ~prng:(Prng.create (900 + s)) ~graph:g ~epsilon:0.5 ~t:2 ~k:3 ()
        in
        float_of_int (Graph.m r.Apriori.sparsifier))
  in
  let ma = Stats.mean sizes_adhoc and mb = Stats.mean sizes_apriori in
  let sd = Float.max (Stats.stddev sizes_adhoc) (Stats.stddev sizes_apriori) in
  Alcotest.(check bool)
    (Printf.sprintf "means %.1f vs %.1f (sd %.1f)" ma mb sd)
    true
    (Float.abs (ma -. mb) <= Float.max (3.0 *. sd) (0.1 *. ma))

let test_apriori_quality_similar () =
  let prng = Prng.create 20 in
  let g = Gen.erdos_renyi_connected prng ~n:32 ~p:0.5 ~w_max:1 in
  let r = Apriori.run ~prng:(Prng.create 21) ~graph:g ~epsilon:0.5 ~t:8 ~k:3 () in
  let c = Certify.exact g r.Apriori.sparsifier in
  Alcotest.(check bool) "apriori quality reasonable" true
    (c.Certify.epsilon_achieved < 1.0)

let test_out_degree_bound () =
  let prng = Prng.create 22 in
  let g = Gen.erdos_renyi_connected prng ~n:48 ~p:0.6 ~w_max:1 in
  let r = Sparsify.run ~prng:(Prng.create 23) ~graph:g ~epsilon:0.5 ~t:3 ~k:3 () in
  let deg = Sparsify.out_degrees r in
  let total = Array.fold_left ( + ) 0 deg in
  Alcotest.(check int) "orientations cover all sparsifier edges"
    (Graph.m r.Sparsify.sparsifier) total;
  (* Theorem 1.2: out-degree O(t * k * n^{1/k}) with calibrated t. *)
  let bound = 10 * 3 * 3 * int_of_float (48.0 ** (1.0 /. 3.0)) in
  Alcotest.(check bool) "max out-degree bounded" true
    (Array.fold_left Stdlib.max 0 deg <= bound)

let test_rounds_positive_and_scaling () =
  let prng = Prng.create 24 in
  let g = Gen.erdos_renyi_connected prng ~n:24 ~p:0.4 ~w_max:3 in
  let r1 = Sparsify.run ~prng:(Prng.create 25) ~graph:g ~epsilon:0.5 ~t:1 ~k:3 () in
  let r3 = Sparsify.run ~prng:(Prng.create 25) ~graph:g ~epsilon:0.5 ~t:3 ~k:3 () in
  Alcotest.(check bool) "rounds positive" true (r1.Sparsify.rounds > 0);
  Alcotest.(check bool) "more spanners cost more rounds" true
    (r3.Sparsify.rounds > r1.Sparsify.rounds)

let test_power_matches_exact () =
  let prng = Prng.create 25 in
  let g = Gen.erdos_renyi_connected prng ~n:40 ~p:0.4 ~w_max:4 in
  let r = Sparsify.run ~prng:(Prng.create 26) ~graph:g ~epsilon:0.5 ~t:3 ~k:3 () in
  let h = r.Sparsify.sparsifier in
  let ex = Certify.exact g h in
  let pw = Certify.power (Prng.create 27) g h ~iters:200 in
  Alcotest.(check bool)
    (Printf.sprintf "lmax power %.4f vs exact %.4f" pw.Certify.lambda_max
       ex.Certify.lambda_max)
    true
    (Float.abs (pw.Certify.lambda_max -. ex.Certify.lambda_max)
    < 0.05 *. ex.Certify.lambda_max);
  Alcotest.(check bool)
    (Printf.sprintf "lmin power %.4f vs exact %.4f" pw.Certify.lambda_min
       ex.Certify.lambda_min)
    true
    (Float.abs (pw.Certify.lambda_min -. ex.Certify.lambda_min)
    < 0.05 *. Float.max ex.Certify.lambda_min 1e-6)

let test_power_identity () =
  let prng = Prng.create 28 in
  let g = Gen.torus prng ~rows:5 ~cols:5 ~w_max:3 in
  let c = Certify.power (Prng.create 29) g g ~iters:50 in
  Alcotest.(check (float 1e-6)) "lmin" 1.0 c.Certify.lambda_min;
  Alcotest.(check (float 1e-6)) "lmax" 1.0 c.Certify.lambda_max

let test_resparsify_union () =
  let prng = Prng.create 30 in
  let g1 = Gen.erdos_renyi_connected prng ~n:32 ~p:0.3 ~w_max:2 in
  let g2 = Gen.erdos_renyi_connected prng ~n:32 ~p:0.3 ~w_max:2 in
  let r =
    Sparsify.resparsify ~prng:(Prng.create 31) ~graphs:[ g1; g2 ] ~epsilon:0.5
      ~t:8 ~k:3 ()
  in
  let union = Graph.coalesce (Graph.union g1 g2) in
  Alcotest.(check bool) "connected" true (Graph.is_connected r.Sparsify.sparsifier);
  let c = Certify.exact union r.Sparsify.sparsifier in
  Alcotest.(check bool)
    (Printf.sprintf "quality %.3f" c.Certify.epsilon_achieved)
    true
    (c.Certify.epsilon_achieved < 1.0)

let test_resparsify_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Sparsify.resparsify: empty graph list")
    (fun () ->
      ignore (Sparsify.resparsify ~prng:(Prng.create 1) ~graphs:[] ~epsilon:0.5 ()))

let suites =
  [
    ( "sparsifier.basic",
      [
        Alcotest.test_case "defaults" `Quick test_defaults;
        Alcotest.test_case "connectivity" `Quick test_preserves_connectivity;
        Alcotest.test_case "weights powers of 4" `Quick test_weights_are_powers_of_four;
        Alcotest.test_case "edge origin" `Quick test_edge_origin_valid;
        Alcotest.test_case "out-degree" `Quick test_out_degree_bound;
        Alcotest.test_case "rounds" `Quick test_rounds_positive_and_scaling;
      ] );
    ( "sparsifier.quality",
      [
        Alcotest.test_case "improves with t" `Slow test_quality_improves_with_t;
        Alcotest.test_case "large t good" `Slow test_large_t_gives_good_sparsifier;
        Alcotest.test_case "certify identity" `Quick test_certify_identity;
        Alcotest.test_case "certify scaled" `Quick test_certify_scaled;
        Alcotest.test_case "probe inner-approximates" `Quick
          test_certify_probe_within_exact;
        Alcotest.test_case "is_sparsifier" `Quick test_is_sparsifier_predicate;
        Alcotest.test_case "power matches exact" `Quick test_power_matches_exact;
        Alcotest.test_case "power identity" `Quick test_power_identity;
      ] );
    ( "sparsifier.lemma33",
      [
        Alcotest.test_case "adhoc vs apriori sizes" `Slow
          test_adhoc_vs_apriori_distribution;
        Alcotest.test_case "apriori quality" `Slow test_apriori_quality_similar;
        Alcotest.test_case "resparsify union" `Slow test_resparsify_union;
        Alcotest.test_case "resparsify rejects empty" `Quick test_resparsify_rejects_empty;
      ] );
  ]
