test/test_main.ml: Alcotest Test_core Test_dist Test_flow Test_graph Test_io Test_ipm Test_laplacian Test_linalg Test_lp Test_net Test_spanner Test_sparsifier Test_util
