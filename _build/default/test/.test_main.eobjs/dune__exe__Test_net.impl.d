test/test_net.ml: Alcotest Array Bits Lbcc_graph Lbcc_net Lbcc_util List Printf Prng
