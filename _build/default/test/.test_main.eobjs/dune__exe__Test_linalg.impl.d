test/test_linalg.ml: Alcotest Array Float Gen Lbcc_linalg Lbcc_util Printf Prng QCheck QCheck_alcotest
