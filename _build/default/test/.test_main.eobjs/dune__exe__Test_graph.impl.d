test/test_graph.ml: Alcotest Array Float Fun Lbcc_graph Lbcc_linalg Lbcc_util List Printf Prng QCheck QCheck_alcotest
