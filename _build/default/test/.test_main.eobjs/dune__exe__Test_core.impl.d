test/test_core.ml: Alcotest Float Lbcc_core Lbcc_flow Lbcc_graph Lbcc_linalg Lbcc_util List Prng QCheck QCheck_alcotest String
