test/test_spanner.ml: Alcotest Array Float Fun Hashtbl Lbcc_graph Lbcc_net Lbcc_spanner Lbcc_sparsifier Lbcc_util List Printf Prng Stdlib
