test/test_util.ml: Alcotest Array Bits Float Fun Gen Heap Lbcc_util List Prng QCheck QCheck_alcotest Stats
