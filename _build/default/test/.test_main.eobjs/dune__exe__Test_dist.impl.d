test/test_dist.ml: Alcotest Array Float Lbcc_dist Lbcc_graph Lbcc_net Lbcc_util List Printf Prng QCheck QCheck_alcotest
