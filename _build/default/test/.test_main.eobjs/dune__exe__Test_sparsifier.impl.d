test/test_sparsifier.ml: Alcotest Array Float Lbcc_graph Lbcc_sparsifier Lbcc_util List Printf Prng Stats Stdlib
