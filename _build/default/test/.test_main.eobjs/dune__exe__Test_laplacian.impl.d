test/test_laplacian.ml: Alcotest Array Float Lbcc_graph Lbcc_laplacian Lbcc_linalg Lbcc_util List Printf Prng QCheck QCheck_alcotest
