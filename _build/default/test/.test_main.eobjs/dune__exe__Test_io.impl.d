test/test_io.ml: Alcotest Filename Fun Lbcc_flow Lbcc_graph Lbcc_util Printf Prng String Sys
