test/test_flow.ml: Alcotest Array Float Lbcc_core Lbcc_flow Lbcc_graph Lbcc_linalg Lbcc_lp Lbcc_net Lbcc_util List Printf Prng Stdlib
