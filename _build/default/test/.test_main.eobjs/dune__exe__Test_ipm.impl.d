test/test_ipm.ml: Alcotest Array Float Fun Lbcc_linalg Lbcc_lp Lbcc_util List Printf Prng
