test/test_lp.ml: Alcotest Array Float Lbcc_linalg Lbcc_lp Lbcc_net Lbcc_util List Printf Prng QCheck QCheck_alcotest
