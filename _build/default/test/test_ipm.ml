open Lbcc_util
module Vec = Lbcc_linalg.Vec
module Sparse = Lbcc_linalg.Sparse
module Problem = Lbcc_lp.Problem
module Ipm = Lbcc_lp.Ipm

(* A small transportation-style LP with a known optimum:
   min c^T x  over  { x in [0,1]^m : sum x_i = budget }.
   The optimum fills the cheapest coordinates greedily. *)
let knapsack_problem ~costs ~budget =
  let m = Array.length costs in
  let a = Sparse.of_triplets ~rows:m ~cols:1 (List.init m (fun i -> (i, 0, 1.0))) in
  let p =
    Problem.make ~a ~b:[| budget |] ~c:costs ~lo:(Array.make m 0.0)
      ~hi:(Array.make m 1.0)
  in
  let x0 = Vec.create m (budget /. float_of_int m) in
  (p, x0)

let greedy_optimum ~costs ~budget =
  let order = Array.init (Array.length costs) Fun.id in
  Array.sort (fun i j -> compare costs.(i) costs.(j)) order;
  let remaining = ref budget and value = ref 0.0 in
  Array.iter
    (fun i ->
      let take = Float.min 1.0 !remaining in
      remaining := !remaining -. take;
      value := !value +. (take *. costs.(i)))
    order;
  !value

let solve_knapsack ?(config = Ipm.default_config) ~costs ~budget ~eps () =
  let p, x0 = knapsack_problem ~costs ~budget in
  let solver = Problem.dense_normal_solver p in
  Ipm.lp_solve ~config ~prng:(Prng.create 5) ~problem:p ~solver ~x0 ~eps ()

let test_knapsack_reaches_optimum () =
  let costs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  let budget = 2.5 in
  let opt = greedy_optimum ~costs ~budget in
  let x, _ = solve_knapsack ~costs ~budget ~eps:0.01 () in
  let value = Vec.dot costs x in
  Alcotest.(check bool)
    (Printf.sprintf "value %.4f vs opt %.4f" value opt)
    true
    (value <= opt +. 0.011 && value >= opt -. 1e-6)

let test_knapsack_feasibility_maintained () =
  let costs = [| 2.0; 7.0; 1.0; 9.0; 4.0; 3.0 |] in
  let budget = 3.0 in
  let p, _ = knapsack_problem ~costs ~budget in
  let x, trace = solve_knapsack ~costs ~budget ~eps:0.05 () in
  Alcotest.(check bool) "interior" true (Problem.interior p x);
  Alcotest.(check bool) "equality maintained" true (trace.Ipm.max_eq_residual < 1e-5)

let test_unweighted_matches_lewis_objective () =
  let costs = [| 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 |] in
  let budget = 4.0 in
  let opt = greedy_optimum ~costs ~budget in
  let lw, _ = solve_knapsack ~costs ~budget ~eps:0.02 () in
  let uw, _ =
    solve_knapsack
      ~config:{ Ipm.default_config with weighting = Ipm.Unweighted }
      ~costs ~budget ~eps:0.02 ()
  in
  Alcotest.(check bool) "lewis near opt" true (Vec.dot costs lw <= opt +. 0.05);
  Alcotest.(check bool) "unweighted near opt" true (Vec.dot costs uw <= opt +. 0.05)

let test_iterations_scale_with_c1 () =
  (* alpha ~ 1/sqrt(||w||_1): unweighted runs should need more progress
     steps than Lewis-weighted ones once m >> n. *)
  let m = 40 in
  let prng = Prng.create 6 in
  let costs = Vec.init m (fun _ -> 1.0 +. Prng.float prng) in
  let budget = float_of_int m /. 4.0 in
  let _, tr_lewis = solve_knapsack ~costs ~budget ~eps:0.05 () in
  let _, tr_unw =
    solve_knapsack
      ~config:{ Ipm.default_config with weighting = Ipm.Unweighted }
      ~costs ~budget ~eps:0.05 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "lewis %d < unweighted %d iterations" tr_lewis.Ipm.iterations
       tr_unw.Ipm.iterations)
    true
    (tr_lewis.Ipm.iterations < tr_unw.Ipm.iterations)

let test_initial_weights_size_bound () =
  let costs = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  let p, x0 = knapsack_problem ~costs ~budget:3.0 in
  let solver = Problem.dense_normal_solver p in
  let w, _ =
    Ipm.initial_weights ~config:Ipm.default_config ~prng:(Prng.create 7) ~problem:p
      ~solver ~x0 ()
  in
  (* Size bound: ||g||_1 <= c1 = 3/2 n (plus regularization slack). *)
  Alcotest.(check bool) "size bound" true (Vec.norm1 w <= 1.5 *. 1.0 +. 1.0);
  Array.iter (fun wi -> Alcotest.(check bool) "positive" true (wi > 0.0)) w

let test_centering_reduces_delta () =
  let costs = [| 2.0; 1.0; 3.0 |] in
  let p, x0 = knapsack_problem ~costs ~budget:1.5 in
  let solver = Problem.dense_normal_solver p in
  let config = Ipm.default_config in
  let prng = Prng.create 8 in
  let w, _ = Ipm.initial_weights ~config ~prng ~problem:p ~solver ~x0 () in
  (* Start slightly off-center and verify repeated centering contracts. *)
  let x_off = Vec.map2 (fun xi hi -> Float.min (xi *. 1.2) (hi *. 0.9)) x0 [| 1.0; 1.0; 1.0 |] in
  let d = Vec.neg (Vec.mul w (Problem.phi' p x0)) in
  let state = ref { Ipm.x = x_off; w; delta = infinity } in
  let deltas = ref [] in
  for _ = 1 to 6 do
    state := Ipm.centering_inexact ~config ~prng ~problem:p ~solver ~t:1.0 ~cost:d !state;
    deltas := !state.Ipm.delta :: !deltas
  done;
  match !deltas with
  | last :: _ ->
      let first = List.nth (List.rev !deltas) 0 in
      Alcotest.(check bool)
        (Printf.sprintf "delta %.4f -> %.4f" first last)
        true (last <= first +. 1e-9)
  | [] -> Alcotest.fail "no centering data"

let test_lp_solve_rejects_bad_inputs () =
  let costs = [| 1.0; 2.0 |] in
  let p, _ = knapsack_problem ~costs ~budget:1.0 in
  let solver = Problem.dense_normal_solver p in
  Alcotest.check_raises "bad eps" (Invalid_argument "Ipm.lp_solve: eps must be positive")
    (fun () ->
      ignore
        (Ipm.lp_solve ~prng:(Prng.create 1) ~problem:p ~solver ~x0:[| 0.5; 0.5 |]
           ~eps:0.0 ()));
  Alcotest.check_raises "exterior x0"
    (Invalid_argument "Ipm.lp_solve: x0 must be strictly interior") (fun () ->
      ignore
        (Ipm.lp_solve ~prng:(Prng.create 1) ~problem:p ~solver ~x0:[| 0.0; 1.0 |]
           ~eps:0.1 ()))

let test_paper_weight_update_runs () =
  (* The printed Algorithm 11 update (mixed-ball projected potential
     step) must keep weights positive and finite. *)
  let costs = [| 2.0; 1.0; 3.0; 4.0 |] in
  let p, x0 = knapsack_problem ~costs ~budget:2.0 in
  let solver = Problem.dense_normal_solver p in
  let config = { Ipm.default_config with weight_update = `Paper } in
  let prng = Prng.create 9 in
  let w, _ = Ipm.initial_weights ~config ~prng ~problem:p ~solver ~x0 () in
  let d = Vec.neg (Vec.mul w (Problem.phi' p x0)) in
  let state = ref { Ipm.x = x0; w; delta = infinity } in
  for _ = 1 to 3 do
    state := Ipm.centering_inexact ~config ~prng ~problem:p ~solver ~t:1.0 ~cost:d !state
  done;
  Array.iter
    (fun wi ->
      Alcotest.(check bool) "weight positive and finite" true
        (wi > 0.0 && Float.is_finite wi))
    !state.Ipm.w

let test_jl_leverage_mode_end_to_end () =
  let costs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  let budget = 2.5 in
  let opt = greedy_optimum ~costs ~budget in
  let config = { Ipm.default_config with leverage_mode = `Jl 0.5 } in
  let x, _ = solve_knapsack ~config ~costs ~budget ~eps:0.05 () in
  Alcotest.(check bool) "JL-backed solve near optimum" true
    (Vec.dot costs x <= opt +. 0.1)

let suites =
  [
    ( "ipm",
      [
        Alcotest.test_case "knapsack optimum" `Slow test_knapsack_reaches_optimum;
        Alcotest.test_case "feasibility maintained" `Slow
          test_knapsack_feasibility_maintained;
        Alcotest.test_case "unweighted matches" `Slow
          test_unweighted_matches_lewis_objective;
        Alcotest.test_case "iterations scale with c1" `Slow test_iterations_scale_with_c1;
        Alcotest.test_case "initial weights size bound" `Quick
          test_initial_weights_size_bound;
        Alcotest.test_case "centering contracts" `Quick test_centering_reduces_delta;
        Alcotest.test_case "rejects bad inputs" `Quick test_lp_solve_rejects_bad_inputs;
        Alcotest.test_case "paper weight update" `Slow test_paper_weight_update_runs;
        Alcotest.test_case "JL leverage mode" `Slow test_jl_leverage_mode_end_to_end;
      ] );
  ]
