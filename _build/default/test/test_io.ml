open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Io = Lbcc_graph.Io
module Network = Lbcc_flow.Network
module Network_io = Lbcc_flow.Network_io

let test_graph_roundtrip () =
  for seed = 1 to 5 do
    let prng = Prng.create seed in
    let g = Gen.erdos_renyi_connected prng ~n:20 ~p:0.3 ~w_max:9 in
    let g' = Io.graph_of_string (Io.graph_to_string g) in
    Alcotest.(check bool) (Printf.sprintf "roundtrip seed %d" seed) true
      (Graph.equal_structure g g')
  done

let test_graph_roundtrip_fractional_weights () =
  let g =
    Graph.create ~n:3
      [ { Graph.u = 0; v = 1; w = 0.125 }; { u = 1; v = 2; w = 3.141592653589793 } ]
  in
  let g' = Io.graph_of_string (Io.graph_to_string g) in
  Alcotest.(check bool) "exact floats" true (Graph.equal_structure g g')

let test_graph_file_roundtrip () =
  let prng = Prng.create 6 in
  let g = Gen.grid prng ~rows:4 ~cols:5 ~w_max:3 in
  let path = Filename.temp_file "lbcc" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save_graph path g;
      let g' = Io.load_graph path in
      Alcotest.(check bool) "file roundtrip" true (Graph.equal_structure g g'))

let test_graph_parse_errors () =
  let check_fails name s =
    Alcotest.(check bool) name true
      (try
         ignore (Io.graph_of_string s);
         false
       with Failure _ -> true)
  in
  check_fails "missing header" "e 0 1 1.0\n";
  check_fails "bad edge" "p graph 2 1\ne 0 x 1.0\n";
  check_fails "edge count mismatch" "p graph 2 2\ne 0 1 1.0\n";
  check_fails "unknown line" "p graph 2 0\nz nonsense\n"

let test_graph_comments_and_blanks () =
  let g = Io.graph_of_string "c hi\n\np graph 2 1\nc mid\ne 0 1 2\n\n" in
  Alcotest.(check int) "n" 2 (Graph.n g);
  Alcotest.(check (float 1e-12)) "w" 2.0 (Graph.edge g 0).Graph.w

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_graph_to_dot () =
  let g = Graph.create ~n:2 [ { Graph.u = 0; v = 1; w = 2.5 } ] in
  let dot = Io.to_dot ~name:"test" g in
  Alcotest.(check bool) "mentions edge" true (contains ~needle:"0 -- 1" dot)

let test_network_roundtrip () =
  for seed = 1 to 5 do
    let prng = Prng.create seed in
    let net = Network.random prng ~n:12 ~density:0.2 ~max_capacity:7 ~max_cost:9 in
    let net' = Network_io.of_string (Network_io.to_string net) in
    Alcotest.(check int) "n" net.Network.n net'.Network.n;
    Alcotest.(check int) "source" net.Network.source net'.Network.source;
    Alcotest.(check int) "sink" net.Network.sink net'.Network.sink;
    Alcotest.(check bool) "arcs equal" true (net.Network.arcs = net'.Network.arcs)
  done

let test_network_file_roundtrip () =
  let prng = Prng.create 7 in
  let net = Network.layered prng ~layers:2 ~width:3 ~max_capacity:4 ~max_cost:5 in
  let path = Filename.temp_file "lbcc" ".net" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Network_io.save path net;
      let net' = Network_io.load path in
      Alcotest.(check bool) "arcs equal" true (net.Network.arcs = net'.Network.arcs))

let test_network_parse_errors () =
  let check_fails name s =
    Alcotest.(check bool) name true
      (try
         ignore (Network_io.of_string s);
         false
       with Failure _ -> true)
  in
  check_fails "missing header" "a 0 1 1 1\n";
  check_fails "arc count mismatch" "p mcmf 2 2 0 1\na 0 1 1 1\n";
  check_fails "bad arc" "p mcmf 2 1 0 1\na 0 1 x 1\n"

let test_network_dot_with_flow () =
  let net =
    Network.make ~n:2 ~source:0 ~sink:1
      [ { Network.src = 0; dst = 1; capacity = 3; cost = 2 } ]
  in
  let dot = Network_io.to_dot ~flow:[| 2.0 |] net in
  Alcotest.(check bool) "bold loaded arc" true (contains ~needle:"style=bold" dot)

let suites =
  [
    ( "io.graph",
      [
        Alcotest.test_case "roundtrip" `Quick test_graph_roundtrip;
        Alcotest.test_case "fractional weights" `Quick test_graph_roundtrip_fractional_weights;
        Alcotest.test_case "file roundtrip" `Quick test_graph_file_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_graph_parse_errors;
        Alcotest.test_case "comments and blanks" `Quick test_graph_comments_and_blanks;
        Alcotest.test_case "dot export" `Quick test_graph_to_dot;
      ] );
    ( "io.network",
      [
        Alcotest.test_case "roundtrip" `Quick test_network_roundtrip;
        Alcotest.test_case "file roundtrip" `Quick test_network_file_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_network_parse_errors;
        Alcotest.test_case "dot with flow" `Quick test_network_dot_with_flow;
      ] );
  ]
