CLI := ./_build/default/bin/lbcc_cli.exe

.PHONY: all build test smoke bench-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

# Fault-injection smoke run: the reliable-broadcast layer must reproduce the
# lossless outputs under 20% drop + an injected crash, and the raw engine run
# must still terminate honestly.  Greps assert the recovery, not just exit 0.
smoke: build
	$(CLI) dist --algo bfs --vertices 24 --drop-prob 0.2 --crash 23@30 \
	  --fault-seed 7 | grep -q 'matches lossless run: true'
	$(CLI) dist --algo sssp --drop-prob 0.15 --dup-prob 0.05 --fault-seed 3 \
	  | grep -q 'matches lossless run: true'
	$(CLI) dist --algo leader --model bcc --drop-prob 0.2 \
	  | grep -q 'matches lossless run: true'
	$(CLI) dist --algo bfs --raw --drop-prob 0.3 --fault-seed 2 \
	  | grep -q 'converged='
	$(CLI) sparsify --vertices 48 --max-retries 2 | grep -q 'verdict=ok'
	@echo "smoke: OK"

# Benchmark smoke: two fast experiments emitting machine-readable reports;
# each BENCH_<EXP>.json must parse and validate against the lbcc-bench/1
# schema (the harness itself exits nonzero if any claim leaves its bound).
bench-smoke: build
	rm -rf _bench_reports && mkdir -p _bench_reports
	dune exec bench/main.exe -- E1 E5 --json --out _bench_reports
	$(CLI) report --validate _bench_reports/BENCH_E1.json \
	  _bench_reports/BENCH_E5.json
	@echo "bench-smoke: OK"

ci: build test smoke

clean:
	dune clean
