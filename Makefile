CLI := ./_build/default/bin/lbcc_cli.exe
LINT := ./_build/default/bin/lbcc_lint.exe
SERVE := ./_build/default/bin/lbcc_serve.exe

# Warnings are errors by default (the configuration CI enforces); set
# LBCC_DEV=1 for a forgiving edit-compile loop where warnings only print.
# The warning set itself is fixed in the root `dune` env stanza.
DUNE_PROFILE := $(if $(LBCC_DEV),dev,strict)
DUNE := dune build --profile $(DUNE_PROFILE)

.PHONY: all build test lint lint-typed smoke bench-smoke perf fingerprints scale-smoke serve-smoke update-smoke doc ci clean

all: build

build:
	$(DUNE)

test:
	dune runtest --profile $(DUNE_PROFILE)

# Static analysis (determinism / round-accounting / hygiene rules; see
# DESIGN.md §8).  Writes the machine-readable report to lint.json and
# exits nonzero on any error or — under --strict, which this target
# uses — warning.
lint: build
	$(LINT) --strict --out lint.json lib bin bench examples

# Typed tier on top (DESIGN.md §13): interprocedural determinism taint,
# parallel-region race detection and phase-accounting flow from the .cmt
# files the build just produced.  Writes both the lbcc-lint/1 report and
# a SARIF 2.1.0 report (CI uploads both as artifacts).  A baseline can
# gate only new findings: make lint-typed LINT_BASELINE=lint-baseline.json
LINT_BASELINE_FLAG := $(if $(LINT_BASELINE),--baseline $(LINT_BASELINE),)
lint-typed: build
	$(LINT) --strict --typed --out lint.json --sarif lint.sarif \
	  $(LINT_BASELINE_FLAG) lib bin bench examples

# Fault-injection smoke run: the reliable-broadcast layer must reproduce the
# lossless outputs under 20% drop + an injected crash, and the raw engine run
# must still terminate honestly.  Greps assert the recovery, not just exit 0.
smoke: build
	$(CLI) dist --algo bfs --vertices 24 --drop-prob 0.2 --crash 23@30 \
	  --fault-seed 7 | grep -q 'matches lossless run: true'
	$(CLI) dist --algo sssp --drop-prob 0.15 --dup-prob 0.05 --fault-seed 3 \
	  | grep -q 'matches lossless run: true'
	$(CLI) dist --algo leader --model bcc --drop-prob 0.2 \
	  | grep -q 'matches lossless run: true'
	$(CLI) dist --algo bfs --raw --drop-prob 0.3 --fault-seed 2 \
	  | grep -q 'converged='
	$(CLI) sparsify --vertices 48 --max-retries 2 | grep -q 'verdict=ok'
	dune exec test/test_main.exe -- test engine-diff -q
	$(CLI) dist --algo leader --model bcc --vertices 16 --byz-count 2 \
	  --byz-prob 0.2 --reliability byzantine \
	  | grep -q 'matches lossless run: true'
	! $(CLI) dist --algo leader --model bcc --vertices 16 --byz-count 8 \
	  --byz-prob 0.4 --reliability byzantine | grep -q 'quorum-failures=0'
	@echo "smoke: OK"

# Benchmark smoke: the whole unit suite re-run on a 2-domain worker pool
# (any sequential/parallel divergence fails the determinism suite), then
# fast experiments plus the multicore PERF profile emitting machine-readable
# reports; each BENCH_<EXP>.json must parse and validate against the
# lbcc-bench/1 schema (the harness itself exits nonzero if any claim leaves
# its bound — for PERF that includes outputs differing across pool sizes).
bench-smoke: build
	LBCC_DOMAINS=2 dune runtest --force
	rm -rf _bench_reports && mkdir -p _bench_reports
	dune exec bench/main.exe -- E1 E5 BYZ PERF BATCH --json --out _bench_reports
	$(CLI) report --validate _bench_reports/BENCH_E1.json \
	  _bench_reports/BENCH_E5.json _bench_reports/BENCH_BYZ.json \
	  _bench_reports/BENCH_PERF.json _bench_reports/BENCH_BATCH.json
	@echo "bench-smoke: OK"

# Regenerate the golden fingerprint file that pins every protocol in the
# shared table (test/fp/fp.ml) at the golden seeds.  Refuses to run from a
# dirty tree: a new baseline must be its own reviewable commit, with the
# code change that moved the fingerprints visible in the same diff.
fingerprints: build
	@if ! git diff --quiet || ! git diff --cached --quiet; then \
	  echo "fingerprints: tree is dirty; commit or stash first" >&2; exit 1; \
	fi
	dune exec test/fp/fp_dump.exe > test/fingerprints.expected
	@echo "fingerprints: regenerated test/fingerprints.expected"

# Scaling smoke: the SCALE experiment capped at a CI-friendly size.  The
# claims (allocation-free run_soa superstep loop, broadcast-capacity
# invariant, sweep completion) are asserted by the harness exit code, and
# the report must validate against the lbcc-bench/1 schema.
scale-smoke: build
	rm -rf _bench_reports && mkdir -p _bench_reports
	LBCC_SCALE_MAX_N=1024 dune exec bench/main.exe -- SCALE --json \
	  --out _bench_reports
	$(CLI) report --validate _bench_reports/BENCH_SCALE.json
	@echo "scale-smoke: OK"

# Daemon smoke (DESIGN.md §11): fork a coalescing daemon, a serial-dispatch
# baseline and an overloaded small-queue daemon; replay the seeded zipf trace
# over 16 concurrent clients; check every response bit-for-bit against direct
# in-process solves; validate the BENCH_SERVE.json claims (the bench itself
# exits 1 on an SLO violation).
serve-smoke: build
	mkdir -p _bench_reports
	$(SERVE) bench --out _bench_reports --socket /tmp/lbcc-serve-smoke.sock
	$(CLI) report --validate _bench_reports/BENCH_SERVE.json
	@echo "serve-smoke: OK"

# Dynamic-graph smoke: the UPDATE experiment (incremental update rounds vs
# full rebuild across delta sizes, a-posteriori certification, fingerprint
# patch exactness, 1/2/4-domain bit-identity — the harness exits nonzero if
# any claim leaves its bound), then one end-to-end CLI delta stream.
update-smoke: build
	mkdir -p _bench_reports
	dune exec bench/main.exe -- UPDATE --json --out _bench_reports
	$(CLI) report --validate _bench_reports/BENCH_UPDATE.json
	$(CLI) update --vertices 48 --steps 2 --ops 6 --json \
	  | tail -1 | grep -q '"certified":true'
	@echo "update-smoke: OK"

# Multicore wall-clock profile alone: times the E11-style pipeline at 1 vs 4
# worker domains (outputs must stay bit-identical) and measures the
# allocation profile of the Laplacian solve loop; writes BENCH_PERF.json.
perf: build
	rm -rf _bench_reports && mkdir -p _bench_reports
	dune exec bench/main.exe -- PERF --json --out _bench_reports
	$(CLI) report --validate _bench_reports/BENCH_PERF.json
	@echo "perf: OK"

# API docs via odoc.  Skipped gracefully where odoc is not installed so the
# target is safe in minimal containers; CI installs odoc and runs it for real.
doc:
	@if command -v odoc >/dev/null 2>&1 || opam list --installed odoc >/dev/null 2>&1; then \
	  dune build @doc && echo "doc: HTML under _build/default/_doc/_html"; \
	else \
	  echo "doc: odoc not installed, skipping (opam install odoc)"; \
	fi

ci: build test lint lint-typed smoke serve-smoke update-smoke

clean:
	dune clean
