open Lbcc_util
module Network = Lbcc_flow.Network
module Maxflow = Lbcc_flow.Maxflow
module Mcmf = Lbcc_flow.Mcmf
module Mcmf_lp = Lbcc_flow.Mcmf_lp
module Vec = Lbcc_linalg.Vec
module Problem = Lbcc_lp.Problem

let diamond () =
  (* s=0, t=3; two parallel routes with different costs. *)
  Network.make ~n:4 ~source:0 ~sink:3
    [
      { Network.src = 0; dst = 1; capacity = 2; cost = 1 };
      { src = 0; dst = 2; capacity = 2; cost = 5 };
      { src = 1; dst = 3; capacity = 2; cost = 1 };
      { src = 2; dst = 3; capacity = 2; cost = 1 };
      { src = 1; dst = 2; capacity = 1; cost = 0 };
    ]

(* ------------------------------------------------------------------ *)
(* Network                                                             *)

let test_network_validation () =
  Alcotest.check_raises "source = sink" (Invalid_argument "Network.make: source = sink")
    (fun () -> ignore (Network.make ~n:2 ~source:0 ~sink:0 []));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Network.make: negative capacity") (fun () ->
      ignore
        (Network.make ~n:2 ~source:0 ~sink:1
           [ { Network.src = 0; dst = 1; capacity = -1; cost = 0 } ]))

let test_network_flow_checks () =
  let net = diamond () in
  let good = [| 2.0; 1.0; 2.0; 1.0; 0.0 |] in
  Alcotest.(check bool) "valid flow" true (Network.is_flow net good);
  Alcotest.(check (float 1e-12)) "value" 3.0 (Network.flow_value net good);
  Alcotest.(check (float 1e-12)) "cost" 10.0 (Network.flow_cost net good);
  let over = [| 3.0; 0.0; 3.0; 0.0; 0.0 |] in
  Alcotest.(check bool) "capacity violation" false (Network.is_flow net over);
  let leak = [| 2.0; 0.0; 1.0; 0.0; 0.0 |] in
  Alcotest.(check bool) "conservation violation" false (Network.is_flow net leak)

let test_network_random_generator () =
  for seed = 1 to 5 do
    let prng = Prng.create seed in
    let net = Network.random prng ~n:12 ~density:0.2 ~max_capacity:5 ~max_cost:7 in
    Alcotest.(check bool) "positive max flow" true ((Maxflow.dinic net).Maxflow.value > 0);
    Array.iter
      (fun (a : Network.arc) ->
        Alcotest.(check bool) "bounds" true
          (a.capacity >= 1 && a.capacity <= 5 && a.cost >= 0 && a.cost <= 7))
      net.Network.arcs
  done

let test_network_layered_generator () =
  let prng = Prng.create 6 in
  let net = Network.layered prng ~layers:3 ~width:4 ~max_capacity:3 ~max_cost:5 in
  Alcotest.(check int) "vertex count" (2 + 12) net.Network.n;
  Alcotest.(check bool) "positive flow" true ((Maxflow.dinic net).Maxflow.value > 0)

let test_undirected_support () =
  let net = diamond () in
  let g = Network.undirected_support net in
  Alcotest.(check int) "n" 4 (Lbcc_graph.Graph.n g);
  Alcotest.(check int) "m (deduped)" 5 (Lbcc_graph.Graph.m g)

let test_transportation_known_optimum () =
  (* Two suppliers (3, 2), two consumers (2, 3); costs [[1, 4]; [2, 1]]:
     optimum ships 2 from s0->c0 (2), 1 from s0->c1 (4), 2 from s1->c1 (2)
     ... the true optimum is s0->c0:2 @1, s1->c1:2 @1, s0->c1:1 @4 = 8. *)
  let net =
    Network.transportation ~supplies:[| 3; 2 |] ~demands:[| 2; 3 |]
      ~costs:[| [| 1; 4 |]; [| 2; 1 |] |]
  in
  let r = Mcmf.solve net in
  Alcotest.(check int) "ships everything" 5 r.Mcmf.value;
  Alcotest.(check int) "optimal cost" 8 r.Mcmf.cost

let test_transportation_via_ipm () =
  let net =
    Network.transportation ~supplies:[| 2; 2 |] ~demands:[| 1; 3 |]
      ~costs:[| [| 3; 1 |]; [| 2; 2 |] |]
  in
  let r = Mcmf_lp.solve ~prng:(Prng.create 120) net in
  Alcotest.(check bool) "exact" true r.Mcmf_lp.matches_baseline

let test_transportation_validation () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Network.transportation: ragged cost matrix") (fun () ->
      ignore
        (Network.transportation ~supplies:[| 1; 1 |] ~demands:[| 2 |]
           ~costs:[| [| 1 |]; [| 1; 2 |] |]))

(* ------------------------------------------------------------------ *)
(* Dinic                                                               *)

let test_dinic_diamond () =
  let r = Maxflow.dinic (diamond ()) in
  Alcotest.(check int) "max flow" 4 r.Maxflow.value;
  Alcotest.(check bool) "flow is valid" true (Network.is_flow (diamond ()) r.Maxflow.flow);
  Alcotest.(check (float 1e-12)) "flow value matches" 4.0
    (Network.flow_value (diamond ()) r.Maxflow.flow)

let test_dinic_bottleneck () =
  let net =
    Network.make ~n:3 ~source:0 ~sink:2
      [
        { Network.src = 0; dst = 1; capacity = 10; cost = 0 };
        { src = 1; dst = 2; capacity = 3; cost = 0 };
      ]
  in
  Alcotest.(check int) "bottleneck" 3 (Maxflow.dinic net).Maxflow.value

let test_dinic_disconnected () =
  let net =
    Network.make ~n:4 ~source:0 ~sink:3
      [ { Network.src = 0; dst = 1; capacity = 5; cost = 0 } ]
  in
  Alcotest.(check int) "no path" 0 (Maxflow.dinic net).Maxflow.value

(* Max-flow = min-cut on small instances: check the flow value against a
   brute-force minimum cut. *)
let brute_force_min_cut (net : Network.t) =
  let n = net.Network.n in
  let best = ref max_int in
  for mask = 0 to (1 lsl n) - 1 do
    let side v = mask land (1 lsl v) <> 0 in
    if side net.Network.source && not (side net.Network.sink) then begin
      let cut = ref 0 in
      Array.iter
        (fun (a : Network.arc) ->
          if side a.src && not (side a.dst) then cut := !cut + a.capacity)
        net.Network.arcs;
      best := Stdlib.min !best !cut
    end
  done;
  !best

let test_dinic_equals_min_cut () =
  for seed = 1 to 8 do
    let prng = Prng.create (40 + seed) in
    let net = Network.random prng ~n:7 ~density:0.3 ~max_capacity:6 ~max_cost:3 in
    Alcotest.(check int)
      (Printf.sprintf "maxflow = mincut (seed %d)" seed)
      (brute_force_min_cut net)
      (Maxflow.dinic net).Maxflow.value
  done

(* ------------------------------------------------------------------ *)
(* SSP mcmf                                                            *)

let test_mcmf_diamond () =
  let r = Mcmf.solve (diamond ()) in
  Alcotest.(check int) "max flow" 4 r.Mcmf.value;
  (* Cheapest max flow: 2 units via 0-1-3 (cost 2 each) saturate; 1 unit
     0-1-2-3? cap(0,1)=2 already used; remaining 2 units via 0-2-3 at cost 6
     each: total 2*2 + 2*6 = 16. *)
  Alcotest.(check int) "min cost" 16 r.Mcmf.cost;
  Alcotest.(check bool) "valid" true (Network.is_flow (diamond ()) r.Mcmf.flow)

let test_mcmf_value_matches_dinic () =
  for seed = 1 to 8 do
    let prng = Prng.create (60 + seed) in
    let net = Network.random prng ~n:10 ~density:0.25 ~max_capacity:5 ~max_cost:9 in
    Alcotest.(check int)
      (Printf.sprintf "values agree (seed %d)" seed)
      (Maxflow.dinic net).Maxflow.value (Mcmf.solve net).Mcmf.value
  done

(* Optimality certificate: an optimal min-cost max-flow admits no negative
   cycle in its residual network (Bellman–Ford detection). *)
let has_negative_residual_cycle (net : Network.t) flow =
  let n = net.Network.n in
  let edges = ref [] in
  Array.iteri
    (fun i (a : Network.arc) ->
      if flow.(i) < float_of_int a.capacity -. 1e-9 then
        edges := (a.src, a.dst, float_of_int a.cost) :: !edges;
      if flow.(i) > 1e-9 then edges := (a.dst, a.src, -.float_of_int a.cost) :: !edges)
    net.Network.arcs;
  let dist = Array.make n 0.0 in
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    List.iter
      (fun (u, v, c) ->
        if dist.(u) +. c < dist.(v) -. 1e-9 then begin
          dist.(v) <- dist.(u) +. c;
          changed := true
        end)
      !edges
  done;
  !changed

let test_mcmf_no_negative_residual_cycle () =
  for seed = 1 to 8 do
    let prng = Prng.create (80 + seed) in
    let net = Network.random prng ~n:10 ~density:0.3 ~max_capacity:4 ~max_cost:8 in
    let r = Mcmf.solve net in
    Alcotest.(check bool)
      (Printf.sprintf "optimal residual (seed %d)" seed)
      false
      (has_negative_residual_cycle net r.Mcmf.flow)
  done

let test_mcmf_rejects_negative_costs () =
  Alcotest.check_raises "negative costs"
    (Invalid_argument "Network.make: negative cost") (fun () ->
      ignore
        (Network.make ~n:2 ~source:0 ~sink:1
           [ { Network.src = 0; dst = 1; capacity = 1; cost = -1 } ]))

(* ------------------------------------------------------------------ *)
(* LP formulation                                                      *)

let test_lp_build_well_formed () =
  let prng = Prng.create 90 in
  let net = Network.random prng ~n:8 ~density:0.3 ~max_capacity:4 ~max_cost:4 in
  let inst = Mcmf_lp.build ~prng:(Prng.create 91) net in
  Alcotest.(check int) "n_lp = |V| - 1" (net.Network.n - 1) inst.Mcmf_lp.n_lp;
  Alcotest.(check int) "m_lp = |E| + 2(|V|-1) + 1"
    (Network.m net + (2 * (net.Network.n - 1)) + 1)
    inst.Mcmf_lp.m_lp;
  Alcotest.(check bool) "x0 interior" true
    (Problem.interior inst.Mcmf_lp.problem inst.Mcmf_lp.x0);
  Alcotest.(check bool) "x0 feasible" true
    (Problem.equality_residual inst.Mcmf_lp.problem inst.Mcmf_lp.x0 < 1e-9)

let test_lp_perturbation_preserves_order () =
  let prng = Prng.create 92 in
  let net = Network.random prng ~n:8 ~density:0.3 ~max_capacity:4 ~max_cost:6 in
  let inst = Mcmf_lp.build ~prng:(Prng.create 93) net in
  Array.iteri
    (fun e q ->
      let base = float_of_int net.Network.arcs.(e).Network.cost in
      Alcotest.(check bool) "q <= q~ < q + 1/2" true (q >= base && q < base +. 0.5))
    inst.Mcmf_lp.qtilde

let test_lp_normal_solver_matches_dense () =
  let prng = Prng.create 94 in
  let net = Network.random prng ~n:7 ~density:0.35 ~max_capacity:3 ~max_cost:3 in
  let inst = Mcmf_lp.build ~prng:(Prng.create 95) net in
  let lap = Mcmf_lp.laplacian_normal_solver inst in
  let dense = Problem.dense_normal_solver inst.Mcmf_lp.problem in
  let prng2 = Prng.create 96 in
  for _ = 1 to 5 do
    let d = Vec.init inst.Mcmf_lp.m_lp (fun _ -> 0.1 +. Prng.float prng2) in
    let rhs = Vec.init inst.Mcmf_lp.n_lp (fun _ -> Prng.gaussian prng2) in
    let x1 = lap.Problem.solve ~d ~rhs in
    let x2 = dense.Problem.solve ~d ~rhs in
    Alcotest.(check bool) "gremban = dense" true
      (Vec.dist2 x1 x2 < 1e-6 *. Float.max 1.0 (Vec.norm2 x2))
  done

let test_lp_column_of_vertex () =
  let net = diamond () in
  let inst = Mcmf_lp.build ~prng:(Prng.create 97) net in
  Alcotest.(check int) "vertex 1" 0 (Mcmf_lp.column_of_vertex inst 1);
  Alcotest.(check int) "vertex 3" 2 (Mcmf_lp.column_of_vertex inst 3);
  Alcotest.check_raises "source" (Invalid_argument "Mcmf_lp: the source has no LP column")
    (fun () -> ignore (Mcmf_lp.column_of_vertex inst 0))

let test_lp_solve_diamond_exact () =
  let r = Mcmf_lp.solve ~prng:(Prng.create 98) (diamond ()) in
  Alcotest.(check bool) "feasible" true r.Mcmf_lp.feasible;
  Alcotest.(check int) "value" 4 r.Mcmf_lp.value;
  Alcotest.(check int) "cost" 16 r.Mcmf_lp.cost;
  Alcotest.(check bool) "matches baseline" true r.Mcmf_lp.matches_baseline

let test_lp_solve_random_exact () =
  for seed = 1 to 3 do
    let prng = Prng.create (100 + seed) in
    let net = Network.random prng ~n:7 ~density:0.25 ~max_capacity:4 ~max_cost:5 in
    let r = Mcmf_lp.solve ~prng:(Prng.create (200 + seed)) net in
    Alcotest.(check bool)
      (Printf.sprintf "exact (seed %d): v=%d c=%d" seed r.Mcmf_lp.value r.Mcmf_lp.cost)
      true r.Mcmf_lp.matches_baseline
  done

let test_lp_solve_charges_rounds () =
  let acc = Lbcc_net.Rounds.create ~bandwidth:8 in
  let r = Mcmf_lp.solve ~accountant:acc ~prng:(Prng.create 99) (diamond ()) in
  Alcotest.(check bool) "rounds charged" true (r.Mcmf_lp.rounds > 0)

let test_lp_solve_unit_capacities () =
  (* The regime of [FGLP+21]'s CONGEST algorithm; Theorem 1.1 needs no
     unit-capacity assumption but must of course handle it. *)
  let prng = Prng.create 110 in
  let net = Network.random prng ~n:7 ~density:0.3 ~max_capacity:1 ~max_cost:4 in
  let r = Mcmf_lp.solve ~prng:(Prng.create 111) net in
  Alcotest.(check bool) "unit capacities exact" true r.Mcmf_lp.matches_baseline

let test_lp_solve_zero_costs () =
  (* Pure max-flow as a degenerate min-cost instance. *)
  let prng = Prng.create 112 in
  let net = Network.random prng ~n:7 ~density:0.3 ~max_capacity:5 ~max_cost:0 in
  let r = Mcmf_lp.solve ~prng:(Prng.create 113) net in
  Alcotest.(check bool) "zero costs exact" true r.Mcmf_lp.matches_baseline;
  Alcotest.(check int) "cost zero" 0 r.Mcmf_lp.cost

let test_lp_solve_disconnected_sink () =
  (* No augmenting path: optimum is the zero flow. *)
  let net =
    Network.make ~n:5 ~source:0 ~sink:4
      [
        { Network.src = 0; dst = 1; capacity = 3; cost = 1 };
        { src = 1; dst = 2; capacity = 3; cost = 1 };
        { src = 4; dst = 3; capacity = 2; cost = 1 };
      ]
  in
  let r = Mcmf_lp.solve ~prng:(Prng.create 114) net in
  Alcotest.(check int) "zero flow" 0 r.Mcmf_lp.value;
  Alcotest.(check bool) "matches baseline" true r.Mcmf_lp.matches_baseline

let test_lp_solve_single_path () =
  let net =
    Network.make ~n:4 ~source:0 ~sink:3
      [
        { Network.src = 0; dst = 1; capacity = 5; cost = 2 };
        { src = 1; dst = 2; capacity = 3; cost = 1 };
        { src = 2; dst = 3; capacity = 7; cost = 3 };
      ]
  in
  let r = Mcmf_lp.solve ~prng:(Prng.create 115) net in
  Alcotest.(check int) "bottleneck value" 3 r.Mcmf_lp.value;
  Alcotest.(check int) "path cost" (3 * (2 + 1 + 3)) r.Mcmf_lp.cost;
  Alcotest.(check bool) "exact" true r.Mcmf_lp.matches_baseline

let test_lp_gremban_backend_end_to_end () =
  (* The paper's own normal-solver path, end to end on a small instance. *)
  let net = diamond () in
  let inst = Mcmf_lp.build ~prng:(Prng.create 116) net in
  let solver = Mcmf_lp.laplacian_normal_solver ~backend:`Gremban inst in
  let mm = 5.0 in
  let x_lp, _ =
    Lbcc_lp.Ipm.lp_solve ~prng:(Prng.create 117) ~problem:inst.Mcmf_lp.problem
      ~solver ~x0:inst.Mcmf_lp.x0
      ~eps:(1.0 /. (12.0 *. mm))
      ()
  in
  let flow = Mcmf_lp.round_flow inst x_lp in
  let base = Mcmf.solve net in
  Alcotest.(check bool) "feasible" true (Network.is_flow net flow);
  Alcotest.(check int) "value" base.Mcmf.value
    (int_of_float (Network.flow_value net flow))

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)

let test_core_min_cost_max_flow () =
  let r = Lbcc_core.Lbcc.min_cost_max_flow (diamond ()) in
  Alcotest.(check bool) "exact" true r.Lbcc_core.Lbcc.exact;
  Alcotest.(check int) "value" 4 r.Lbcc_core.Lbcc.value

let test_core_sparsify_and_solve () =
  let prng = Prng.create 120 in
  let g = Lbcc_graph.Gen.erdos_renyi_connected prng ~n:32 ~p:0.4 ~w_max:4 in
  let s = Lbcc_core.Lbcc.sparsify ~epsilon:0.5 ~t:4 g in
  Alcotest.(check bool) "rounds" true (s.Lbcc_core.Lbcc.rounds.Lbcc_core.Lbcc.total > 0);
  let b = Vec.mean_center (Vec.init 32 (fun i -> float_of_int (i mod 5))) in
  let r = Lbcc_core.Lbcc.solve_laplacian g ~b in
  Alcotest.(check bool) "residual" true (r.Lbcc_core.Lbcc.residual < 1e-6)

let test_core_effective_resistance () =
  (* Series path of unit resistors: R(0, k) = k. *)
  let g =
    Lbcc_graph.Graph.create ~n:4
      [
        { Lbcc_graph.Graph.u = 0; v = 1; w = 1.0 };
        { u = 1; v = 2; w = 1.0 };
        { u = 2; v = 3; w = 1.0 };
      ]
  in
  let r = Lbcc_core.Lbcc.effective_resistance g ~s:0 ~t:3 in
  Alcotest.(check (float 1e-6)) "series resistance" 3.0
    r.Lbcc_core.Lbcc.resistance

let suites =
  [
    ( "flow.network",
      [
        Alcotest.test_case "validation" `Quick test_network_validation;
        Alcotest.test_case "flow checks" `Quick test_network_flow_checks;
        Alcotest.test_case "random generator" `Quick test_network_random_generator;
        Alcotest.test_case "layered generator" `Quick test_network_layered_generator;
        Alcotest.test_case "undirected support" `Quick test_undirected_support;
        Alcotest.test_case "transportation optimum" `Quick
          test_transportation_known_optimum;
        Alcotest.test_case "transportation via ipm" `Slow test_transportation_via_ipm;
        Alcotest.test_case "transportation validation" `Quick
          test_transportation_validation;
      ] );
    ( "flow.dinic",
      [
        Alcotest.test_case "diamond" `Quick test_dinic_diamond;
        Alcotest.test_case "bottleneck" `Quick test_dinic_bottleneck;
        Alcotest.test_case "disconnected" `Quick test_dinic_disconnected;
        Alcotest.test_case "equals min cut" `Quick test_dinic_equals_min_cut;
      ] );
    ( "flow.mcmf",
      [
        Alcotest.test_case "diamond" `Quick test_mcmf_diamond;
        Alcotest.test_case "value matches dinic" `Quick test_mcmf_value_matches_dinic;
        Alcotest.test_case "no negative residual cycle" `Quick
          test_mcmf_no_negative_residual_cycle;
        Alcotest.test_case "rejects negative costs" `Quick test_mcmf_rejects_negative_costs;
      ] );
    ( "flow.lp",
      [
        Alcotest.test_case "build well-formed" `Quick test_lp_build_well_formed;
        Alcotest.test_case "perturbation" `Quick test_lp_perturbation_preserves_order;
        Alcotest.test_case "normal solver vs dense" `Quick test_lp_normal_solver_matches_dense;
        Alcotest.test_case "column mapping" `Quick test_lp_column_of_vertex;
        Alcotest.test_case "diamond exact" `Slow test_lp_solve_diamond_exact;
        Alcotest.test_case "random exact" `Slow test_lp_solve_random_exact;
        Alcotest.test_case "charges rounds" `Slow test_lp_solve_charges_rounds;
        Alcotest.test_case "unit capacities" `Slow test_lp_solve_unit_capacities;
        Alcotest.test_case "zero costs" `Slow test_lp_solve_zero_costs;
        Alcotest.test_case "disconnected sink" `Slow test_lp_solve_disconnected_sink;
        Alcotest.test_case "single path" `Slow test_lp_solve_single_path;
        Alcotest.test_case "gremban backend e2e" `Slow test_lp_gremban_backend_end_to_end;
      ] );
    ( "flow.core_api",
      [
        Alcotest.test_case "min cost max flow" `Slow test_core_min_cost_max_flow;
        Alcotest.test_case "sparsify and solve" `Slow test_core_sparsify_and_solve;
        Alcotest.test_case "effective resistance" `Quick test_core_effective_resistance;
      ] );
  ]
