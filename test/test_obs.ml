(* Observability layer: JSON round-trips, tracer span trees, metrics
   registry, and the BENCH_<EXP>.json report schema. *)

module Json = Lbcc_obs.Json
module Trace = Lbcc_obs.Trace
module Metrics = Lbcc_obs.Metrics
module Report = Lbcc_obs.Report
module Rounds = Lbcc_net.Rounds

let json_testable =
  Alcotest.testable
    (fun ppf j -> Format.pp_print_string ppf (Json.to_string j))
    Json.equal

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let roundtrip j = Json.of_string (Json.to_string j)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.Arr [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("big", Json.Int 9007199254740993);
        ("float", Json.Float 0.1);
        ("neg", Json.Float (-1.5e-300));
        ("nested", Json.Obj [ ("empty_arr", Json.Arr []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  Alcotest.check json_testable "compact round-trip" j (roundtrip j);
  Alcotest.check json_testable "pretty round-trip" j
    (Json.of_string (Json.to_string ~pretty:true j))

let test_json_string_escaping () =
  let strings =
    [
      "plain";
      "quote\" backslash\\ slash/";
      "control\n\t\r\b\x0c chars";
      "\x00\x01\x1f low bytes";
      "caf\xc3\xa9 utf8 \xe2\x88\x80";
      "";
    ]
  in
  List.iter
    (fun s ->
      Alcotest.check json_testable
        (Printf.sprintf "escapes %S" s)
        (Json.String s)
        (roundtrip (Json.String s)))
    strings;
  (* \uXXXX decoding, incl. a surrogate pair *)
  Alcotest.check json_testable "unicode escapes"
    (Json.String "A\xc3\xa9\xe2\x82\xac")
    (Json.of_string {|"Aé€"|});
  Alcotest.check json_testable "surrogate pair"
    (Json.String "\xf0\x9d\x84\x9e")
    (Json.of_string {|"𝄞"|})

let test_json_rejects_nonfinite () =
  List.iter
    (fun f ->
      try
        ignore (Json.to_string (Json.Obj [ ("x", Json.Float f) ]));
        Alcotest.fail "non-finite float must not serialize"
      with Invalid_argument _ -> ())
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      try
        ignore (Json.of_string s);
        Alcotest.fail (Printf.sprintf "parser accepted %S" s)
      with Json.Parse_error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_accessors () =
  let j = Json.Obj [ ("a", Json.Int 3); ("b", Json.Float 2.5) ] in
  Alcotest.(check (option (float 1e-12))) "int member" (Some 3.0)
    (Option.bind (Json.member "a" j) Json.to_float);
  Alcotest.(check (option (float 1e-12))) "float member" (Some 2.5)
    (Option.bind (Json.member "b" j) Json.to_float);
  Alcotest.(check bool) "missing member" true (Json.member "c" j = None)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let test_trace_nested_spans () =
  let tr = Trace.create ~clock:(fun () -> 0.0) () in
  let tracer = Some tr in
  let result =
    Trace.span tracer "outer" (fun () ->
        Trace.add tracer ~rounds:2 ~bits:10 ();
        Trace.span tracer "inner" (fun () ->
            Trace.add tracer ~rounds:3 ~bits:5 ~supersteps:7 ();
            Trace.set_attr tracer "k" (Json.Int 3);
            Alcotest.(check int) "depth inside" 2 (Trace.depth tr);
            "done")
        )
  in
  Alcotest.(check string) "span returns f's value" "done" result;
  Alcotest.(check int) "depth restored" 0 (Trace.depth tr);
  (* Raw [add] is local to the open span: counters land where they were
     added.  Inclusive phase totals come from the accountant bridge, see
     test_trace_accountant_bridge. *)
  match (Trace.root tr).Trace.children with
  | [ outer ] -> (
      Alcotest.(check string) "outer name" "outer" outer.Trace.name;
      Alcotest.(check int) "outer rounds" 2 outer.Trace.rounds;
      Alcotest.(check int) "outer bits" 10 outer.Trace.bits;
      match outer.Trace.children with
      | [ inner ] ->
          Alcotest.(check string) "inner name" "inner" inner.Trace.name;
          Alcotest.(check int) "inner rounds" 3 inner.Trace.rounds;
          Alcotest.(check int) "inner supersteps" 7 inner.Trace.supersteps;
          Alcotest.check json_testable "inner attr" (Json.Int 3)
            (List.assoc "k" inner.Trace.attrs)
      | l -> Alcotest.fail (Printf.sprintf "%d inner spans" (List.length l)))
  | l -> Alcotest.fail (Printf.sprintf "%d outer spans" (List.length l))

let test_trace_exception_safe () =
  let tr = Trace.create ~clock:(fun () -> 0.0) () in
  (try Trace.span (Some tr) "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 0 (Trace.depth tr);
  Alcotest.(check int) "span recorded" 1
    (List.length (Trace.root tr).Trace.children)

let test_trace_none_is_passthrough () =
  Alcotest.(check int) "span None" 9 (Trace.span None "x" (fun () -> 9));
  Trace.add None ~rounds:1 ();
  Trace.set_attr None "k" Json.Null

let test_trace_to_json_roundtrips () =
  let tr = Trace.create ~clock:(fun () -> 0.0) () in
  Trace.span (Some tr) "a" (fun () ->
      Trace.add (Some tr) ~rounds:1 ~messages:4 ();
      Trace.span (Some tr) "b" (fun () -> ()));
  let j = Trace.to_json tr in
  Alcotest.check json_testable "trace json round-trips" j (roundtrip j);
  match Json.member "children" j with
  | Some (Json.Arr [ _ ]) -> ()
  | _ -> Alcotest.fail "root children missing from JSON"

(* The accountant mirrors each phase's inclusive round/bit deltas into the
   attached tracer — the bridge the engine-level spans hang off. *)
let test_trace_accountant_bridge () =
  let tr = Trace.create ~clock:(fun () -> 0.0) () in
  let acc = Rounds.create ~bandwidth:10 in
  Rounds.set_tracer acc (Some tr);
  Rounds.with_phase acc "sparsify" (fun () ->
      Rounds.charge_broadcast acc ~label:"x" ~bits:25;
      Rounds.with_phase acc "spanner" (fun () ->
          Rounds.charge acc ~bits:3 ~label:"y" ~rounds:1));
  match (Trace.root tr).Trace.children with
  | [ sp ] ->
      Alcotest.(check string) "phase span" "sparsify" sp.Trace.name;
      Alcotest.(check int) "inclusive rounds" 4 sp.Trace.rounds;
      Alcotest.(check int) "inclusive bits" 28 sp.Trace.bits;
      Alcotest.(check (list string)) "nested phase" [ "spanner" ]
        (List.map (fun s -> s.Trace.name) sp.Trace.children)
  | l -> Alcotest.fail (Printf.sprintf "%d spans" (List.length l))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  let mm = Some m in
  Metrics.inc mm "runs";
  Metrics.inc mm ~by:4 "runs";
  Metrics.inc mm ~by:0 "runs";
  Metrics.set_gauge mm "eps" 0.25;
  Metrics.set_gauge mm "eps" 0.125;
  Alcotest.(check int) "counter accumulates" 5 (Metrics.counter m "runs");
  Alcotest.(check int) "unknown counter is 0" 0 (Metrics.counter m "nope");
  Alcotest.(check (option (float 1e-12))) "gauge keeps last" (Some 0.125)
    (Metrics.gauge m "eps");
  Metrics.inc None "ignored";
  Metrics.set_gauge None "ignored" 1.0

let test_metrics_histogram_buckets () =
  let m = Metrics.create () in
  List.iter (Metrics.observe (Some m) "rounds") [ 1.0; 3.0; 1000.0; 0.0 ];
  match Metrics.histogram m "rounds" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 4 h.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 1004.0 h.Metrics.sum;
      Alcotest.(check (float 1e-9)) "max" 1000.0 h.Metrics.max;
      (* 1 -> 2^0, 3 -> 2^2, 1000 -> 2^10, 0 -> underflow bucket 0. *)
      Alcotest.(check (list (pair (float 1e-9) int))) "log2 buckets"
        [ (0.0, 1); (1.0, 1); (4.0, 1); (1024.0, 1) ]
        h.Metrics.buckets

let test_metrics_to_json () =
  let m = Metrics.create () in
  Metrics.inc (Some m) "b.count";
  Metrics.inc (Some m) "a.count";
  Metrics.set_gauge (Some m) "g" 2.0;
  Metrics.observe (Some m) "h" 5.0;
  Alcotest.(check (list string)) "names sorted"
    [ "a.count"; "b.count"; "g"; "h" ]
    (Metrics.names m);
  let j = Metrics.to_json m in
  Alcotest.check json_testable "metrics json round-trips" j (roundtrip j);
  match Json.member "counters" j with
  | Some (Json.Obj [ ("a.count", Json.Int 1); ("b.count", Json.Int 1) ]) -> ()
  | _ -> Alcotest.fail "counters object malformed"

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let sample_report () =
  {
    Report.experiment = "E1";
    title = "spanner stretch & size vs Lemma 3.1 bounds";
    claims =
      [
        Report.claim ~name:"max stretch / (2k-1)" ~measured:1.0 ~bound:1.0 ();
        Report.claim ~direction:Report.Ge ~name:"exact fraction" ~measured:1.0
          ~bound:1.0 ();
      ];
    phases =
      [
        { Report.label = "sparsify/spanner/marking"; rounds = 12; bits = 480 };
        { Report.label = "solve/preprocess"; rounds = 3; bits = 30 };
      ];
    extra = [ ("note", Json.String "test") ];
  }

let test_report_within () =
  let le m b = Report.within (Report.claim ~name:"c" ~measured:m ~bound:b ()) in
  Alcotest.(check bool) "below" true (le 0.5 1.0);
  Alcotest.(check bool) "equal (slack)" true (le 1.0 1.0);
  Alcotest.(check bool) "above" false (le 1.1 1.0);
  let ge =
    Report.within
      (Report.claim ~direction:Report.Ge ~name:"c" ~measured:0.9 ~bound:1.0 ())
  in
  Alcotest.(check bool) "ge violated" false ge;
  Alcotest.(check bool) "all_within" true (Report.all_within (sample_report ()))

let test_report_validate () =
  let r = sample_report () in
  (match Report.validate (Report.to_json r) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Tampering with the aggregate must be caught. *)
  let tampered =
    match Report.to_json r with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "within_bound", _ -> ("within_bound", Json.Bool false)
               | kv -> kv)
             fields)
    | _ -> assert false
  in
  (match Report.validate tampered with
  | Ok () -> Alcotest.fail "inconsistent within_bound accepted"
  | Error _ -> ());
  match Report.validate (Json.Obj [ ("schema", Json.String "lbcc-bench/1") ]) with
  | Ok () -> Alcotest.fail "missing keys accepted"
  | Error _ -> ()

let test_report_write_real_file () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lbcc_obs_test_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let r = sample_report () in
      Alcotest.(check string) "filename" "BENCH_E1.json" (Report.filename r);
      let path = Report.write ~dir r in
      Alcotest.(check string) "path" (Filename.concat dir "BENCH_E1.json") path;
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let j = Json.of_string contents in
      (match Report.validate j with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (* Schema shape of the file on disk: the keys tooling greps for. *)
      (match Json.member "schema" j with
      | Some (Json.String "lbcc-bench/1") -> ()
      | _ -> Alcotest.fail "schema tag missing");
      (match Json.member "claims" j with
      | Some (Json.Arr (first :: _)) ->
          List.iter
            (fun k ->
              if Json.member k first = None then
                Alcotest.fail (Printf.sprintf "claim key %s missing" k))
            [ "name"; "measured"; "claimed_bound"; "direction"; "within_bound" ]
      | _ -> Alcotest.fail "claims array missing");
      match Json.member "phases" j with
      | Some (Json.Arr (first :: _)) ->
          List.iter
            (fun k ->
              if Json.member k first = None then
                Alcotest.fail (Printf.sprintf "phase key %s missing" k))
            [ "label"; "rounds"; "bits" ]
      | _ -> Alcotest.fail "phases array missing")

let suites =
  [
    ( "obs.json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "string escaping" `Quick test_json_string_escaping;
        Alcotest.test_case "rejects NaN/inf" `Quick test_json_rejects_nonfinite;
        Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "nested spans" `Quick test_trace_nested_spans;
        Alcotest.test_case "exception safe" `Quick test_trace_exception_safe;
        Alcotest.test_case "None passthrough" `Quick test_trace_none_is_passthrough;
        Alcotest.test_case "to_json" `Quick test_trace_to_json_roundtrips;
        Alcotest.test_case "accountant bridge" `Quick test_trace_accountant_bridge;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counters and gauges" `Quick test_metrics_counters_gauges;
        Alcotest.test_case "histogram buckets" `Quick test_metrics_histogram_buckets;
        Alcotest.test_case "to_json" `Quick test_metrics_to_json;
      ] );
    ( "obs.report",
      [
        Alcotest.test_case "within directions" `Quick test_report_within;
        Alcotest.test_case "validate" `Quick test_report_validate;
        Alcotest.test_case "write real file" `Quick test_report_write_real_file;
      ] );
  ]
