open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Vec = Lbcc_linalg.Vec
module Lbcc = Lbcc_core.Lbcc

let test_version () =
  Alcotest.(check bool) "nonempty version" true (String.length Lbcc.version > 0)

let test_sparsify_report_structure () =
  let prng = Prng.create 1 in
  let g = Gen.erdos_renyi_connected prng ~n:24 ~p:0.4 ~w_max:4 in
  let r = Lbcc.sparsify ~ctx:(Lbcc.Ctx.make ~seed:2 ()) ~epsilon:0.5 ~t:3 g in
  Alcotest.(check bool) "bandwidth positive" true (r.Lbcc.rounds.Lbcc.bandwidth > 0);
  Alcotest.(check bool) "breakdown nonempty" true (r.Lbcc.rounds.Lbcc.breakdown <> []);
  let sum = List.fold_left (fun acc (_, v) -> acc + v) 0 r.Lbcc.rounds.Lbcc.breakdown in
  Alcotest.(check int) "breakdown sums to total" r.Lbcc.rounds.Lbcc.total sum;
  Alcotest.(check bool) "certificate finite" true
    (Float.is_finite r.Lbcc.epsilon_achieved)

let test_sparsify_deterministic_by_seed () =
  let prng = Prng.create 3 in
  let g = Gen.erdos_renyi_connected prng ~n:24 ~p:0.4 ~w_max:4 in
  let r1 = Lbcc.sparsify ~ctx:(Lbcc.Ctx.make ~seed:7 ()) ~t:2 g in
  let r2 = Lbcc.sparsify ~ctx:(Lbcc.Ctx.make ~seed:7 ()) ~t:2 g in
  Alcotest.(check bool) "same output for same seed" true
    (Graph.equal_structure r1.Lbcc.sparsifier r2.Lbcc.sparsifier);
  let r3 = Lbcc.sparsify ~ctx:(Lbcc.Ctx.make ~seed:8 ()) ~t:2 g in
  (* Different seeds will almost surely differ on a random graph. *)
  Alcotest.(check bool) "different seed differs" true
    (not (Graph.equal_structure r1.Lbcc.sparsifier r3.Lbcc.sparsifier)
    || Graph.m r1.Lbcc.sparsifier = Graph.m g)

let test_solve_laplacian_on_grid () =
  let prng = Prng.create 4 in
  let g = Gen.grid prng ~rows:5 ~cols:5 ~w_max:3 in
  let b = Vec.mean_center (Vec.init 25 (fun i -> float_of_int (i mod 3))) in
  let r = Lbcc.solve_laplacian ~ctx:(Lbcc.Ctx.make ~seed:5 ()) ~eps:1e-10 g ~b in
  Alcotest.(check bool) "residual" true (r.Lbcc.residual < 1e-8);
  Alcotest.(check bool) "round split" true
    (r.Lbcc.preprocessing_rounds > r.Lbcc.solve_rounds)

let test_effective_resistance_parallel_edges_law () =
  (* Two vertices joined by conductances 2 and 3 in parallel (after
     coalescing): R = 1/(2+3). *)
  let g =
    Graph.coalesce
      (Graph.create ~n:2
         [ { Graph.u = 0; v = 1; w = 2.0 }; { u = 0; v = 1; w = 3.0 } ])
  in
  let r = Lbcc.effective_resistance g ~s:0 ~t:1 in
  Alcotest.(check (float 1e-9)) "parallel conductances" (1.0 /. 5.0)
    r.Lbcc.resistance;
  (* The bugfixed API reports accounting instead of discarding it. *)
  Alcotest.(check bool) "query rounds tracked" true (r.Lbcc.query_rounds > 0);
  Alcotest.(check bool) "report sums" true
    (r.Lbcc.rounds.Lbcc.total
    = List.fold_left (fun a (_, r) -> a + r) 0 r.Lbcc.rounds.Lbcc.breakdown)

let test_effective_resistance_symmetric () =
  let prng = Prng.create 6 in
  let g = Gen.erdos_renyi_connected prng ~n:20 ~p:0.3 ~w_max:4 in
  let r1 = Lbcc.effective_resistance ~ctx:(Lbcc.Ctx.make ~seed:9 ()) g ~s:2 ~t:11 in
  let r2 = Lbcc.effective_resistance ~ctx:(Lbcc.Ctx.make ~seed:9 ()) g ~s:11 ~t:2 in
  Alcotest.(check (float 1e-9)) "symmetric" r1.Lbcc.resistance
    r2.Lbcc.resistance;
  Alcotest.(check (float 1e-12)) "zero on self" 0.0
    (Lbcc.effective_resistance g ~s:3 ~t:3).Lbcc.resistance

let test_min_cost_max_flow_report () =
  let net =
    Lbcc_flow.Network.random (Prng.create 7) ~n:7 ~density:0.3 ~max_capacity:4
      ~max_cost:3
  in
  let r = Lbcc.min_cost_max_flow ~ctx:(Lbcc.Ctx.make ~seed:10 ()) net in
  Alcotest.(check bool) "exact" true r.Lbcc.exact;
  Alcotest.(check bool) "rounds tracked" true (r.Lbcc.rounds.Lbcc.total > 0);
  Alcotest.(check bool) "flow validates" true
    (Lbcc_flow.Network.is_flow net r.Lbcc.flow)

let prop_coalesce_preserves_laplacian =
  QCheck.Test.make ~name:"coalesce preserves the Laplacian" ~count:40
    QCheck.small_int (fun seed ->
      let prng = Prng.create (5000 + seed) in
      let n = 4 + Prng.int prng 10 in
      (* Random multigraph: duplicate some edges on purpose. *)
      let edges = ref [] in
      for _ = 1 to 3 * n do
        let u = Prng.int prng n in
        let v = Prng.int prng n in
        if u <> v then
          edges := { Graph.u; v; w = 1.0 +. Prng.float prng } :: !edges
      done;
      match !edges with
      | [] -> true
      | es ->
          let g = Graph.create ~n es in
          let c = Graph.coalesce g in
          let lg = Graph.laplacian_dense g and lc = Graph.laplacian_dense c in
          Lbcc_linalg.Dense.frobenius (Lbcc_linalg.Dense.sub lg lc) < 1e-9)

let prop_graph_io_roundtrip =
  QCheck.Test.make ~name:"graph file format roundtrips" ~count:30
    QCheck.small_int (fun seed ->
      let prng = Prng.create (6000 + seed) in
      let g =
        Gen.erdos_renyi_connected prng ~n:(8 + Prng.int prng 16) ~p:0.3 ~w_max:9
      in
      Graph.equal_structure g
        (Lbcc_graph.Io.graph_of_string (Lbcc_graph.Io.graph_to_string g)))

let suites =
  [
    ( "core.api",
      [
        Alcotest.test_case "version" `Quick test_version;
        Alcotest.test_case "sparsify report" `Quick test_sparsify_report_structure;
        Alcotest.test_case "seed determinism" `Quick test_sparsify_deterministic_by_seed;
        Alcotest.test_case "solve on grid" `Quick test_solve_laplacian_on_grid;
        Alcotest.test_case "parallel resistors" `Quick
          test_effective_resistance_parallel_edges_law;
        Alcotest.test_case "resistance symmetric" `Quick
          test_effective_resistance_symmetric;
        Alcotest.test_case "flow report" `Slow test_min_cost_max_flow_report;
        QCheck_alcotest.to_alcotest prop_coalesce_preserves_laplacian;
        QCheck_alcotest.to_alcotest prop_graph_io_roundtrip;
      ] );
  ]
