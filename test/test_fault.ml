open Lbcc_util
module Model = Lbcc_net.Model
module Rounds = Lbcc_net.Rounds
module Engine = Lbcc_net.Engine
module Fault = Lbcc_net.Fault
module Reliable = Lbcc_net.Reliable
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Paths = Lbcc_graph.Paths
module Bfs = Lbcc_dist.Bfs
module Sssp = Lbcc_dist.Sssp
module Leader = Lbcc_dist.Leader
module Lbcc = Lbcc_core.Lbcc
module Resilient = Lbcc_core.Resilient

(* ------------------------------------------------------------------ *)
(* Fault model: determinism and the individual fault types             *)

let test_fault_same_seed_same_schedule () =
  let mk () = Fault.create ~seed:42 (Fault.spec ~drop_prob:0.3 ~duplicate_prob:0.1 ()) in
  let a = mk () and b = mk () in
  (* Query b in reverse order: decisions must not depend on query order. *)
  let slots = List.init 200 Fun.id in
  let fate f i = Fault.copies f ~round:(1 + (i mod 7)) ~src:(i mod 5) ~dst:(i / 5) in
  let fa = List.map (fate a) slots in
  let fb = List.rev_map (fate b) (List.rev slots) in
  Alcotest.(check (list int)) "identical schedule" fa fb;
  Alcotest.(check bool) "some drops happened" true (Fault.drops a > 0);
  Alcotest.(check bool) "some duplicates happened" true (Fault.duplicates a > 0)

let test_fault_seed_changes_schedule () =
  let fate seed =
    let f = Fault.create ~seed (Fault.spec ~drop_prob:0.3 ()) in
    List.init 100 (fun i -> Fault.copies f ~round:1 ~src:0 ~dst:i)
  in
  Alcotest.(check bool) "different seeds differ" true (fate 1 <> fate 2)

let test_fault_crash_schedule () =
  let f = Fault.create ~seed:1 (Fault.spec ~crashes:[ (3, 5); (1, 2) ] ()) in
  Alcotest.(check bool) "not crashed before" false (Fault.crashed f ~vertex:3 ~round:4);
  Alcotest.(check bool) "crashed at" true (Fault.crashed f ~vertex:3 ~round:5);
  Alcotest.(check bool) "crashed after" true (Fault.crashed f ~vertex:3 ~round:9);
  Alcotest.(check bool) "other vertex" true (Fault.crashed f ~vertex:1 ~round:2);
  Alcotest.(check bool) "uncrashed vertex" false (Fault.crashed f ~vertex:0 ~round:100)

let test_fault_adversarial_budget () =
  let f = Fault.create ~seed:1 (Fault.spec ~adversarial_drops:3 ()) in
  let fates = List.init 10 (fun i -> Fault.copies f ~round:1 ~src:0 ~dst:i) in
  Alcotest.(check (list int)) "first three destroyed"
    [ 0; 0; 0; 1; 1; 1; 1; 1; 1; 1 ] fates;
  Alcotest.(check int) "budget spent" 3 (Fault.adversarial_spent f)

let test_fault_rejects_bad_spec () =
  Alcotest.check_raises "bad prob"
    (Invalid_argument "Fault.create: drop_prob must be in [0, 1)") (fun () ->
      ignore (Fault.create (Fault.spec ~drop_prob:1.0 ())));
  Alcotest.check_raises "bad budget"
    (Invalid_argument "Fault.create: adversarial_drops must be >= 0") (fun () ->
      ignore (Fault.create (Fault.spec ~adversarial_drops:(-1) ())))

(* ------------------------------------------------------------------ *)
(* Engine: honest termination and fault threading                      *)

let never_halt_program g ~max_supersteps ~on_timeout () =
  Engine.run ~model:Model.broadcast_congest ~graph:g
    ~size_bits:(fun () -> 1)
    ~init:(fun _ -> ())
    ~step:(fun ~round:_ ~vertex:_ s _ -> (s, Some (), true))
    ~max_supersteps ~on_timeout ()

let test_engine_reports_timeout () =
  let g = Gen.ring (Prng.create 1) ~n:4 in
  let _, stats = never_halt_program g ~max_supersteps:5 ~on_timeout:`Truncate () in
  Alcotest.(check bool) "not converged" false stats.Engine.converged;
  Alcotest.(check int) "ran to the cap" 5 stats.Engine.supersteps;
  let r = Bfs.run ~model:Model.broadcast_congest ~graph:g ~source:0 () in
  Alcotest.(check bool) "bfs converges" true r.Bfs.converged

let test_engine_timeout_raises () =
  let g = Gen.ring (Prng.create 1) ~n:4 in
  Alcotest.check_raises "timeout raises"
    (Engine.Timeout { label = "engine"; supersteps = 5; rounds = 5; phase = "" })
    (fun () -> ignore (never_halt_program g ~max_supersteps:5 ~on_timeout:`Raise ()))

let test_engine_crash_stops_vertex () =
  (* Clique BFS with the source crashed at superstep 1: the wave never
     starts, the other vertices wait until the cap — and the engine now
     says so instead of pretending the run finished. *)
  let g = Gen.ring (Prng.create 2) ~n:8 in
  let faults = Fault.create ~seed:1 (Fault.spec ~crashes:[ (0, 1) ] ()) in
  let r = Bfs.run ~faults ~model:Model.broadcast_congested_clique ~graph:g ~source:0 () in
  Alcotest.(check bool) "truncated, reported honestly" false r.Bfs.converged;
  Array.iteri
    (fun v d -> if v <> 0 then Alcotest.(check int) "unreached" max_int d)
    r.Bfs.dist

let test_engine_drops_are_deterministic () =
  let g = Gen.erdos_renyi_connected (Prng.create 3) ~n:16 ~p:0.3 ~w_max:4 in
  let run () =
    let faults = Fault.create ~seed:7 (Fault.spec ~drop_prob:0.4 ()) in
    Sssp.run ~faults ~model:Model.broadcast_congest ~graph:g ~source:0 ()
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical lossy runs" true
    (a.Sssp.dist = b.Sssp.dist && a.Sssp.supersteps = b.Sssp.supersteps)

(* ------------------------------------------------------------------ *)
(* Reliable broadcast: lossless equivalence, lossy recovery            *)

let lossy_spec =
  Fault.spec ~drop_prob:0.2 ~duplicate_prob:0.05 ()

let test_reliable_lossless_matches_engine () =
  let g = Gen.erdos_renyi_connected (Prng.create 4) ~n:18 ~p:0.2 ~w_max:6 in
  let plain = Bfs.run ~model:Model.broadcast_congest ~graph:g ~source:0 () in
  let rel = Bfs.run_reliable ~model:Model.broadcast_congest ~graph:g ~source:0 () in
  Alcotest.(check (array int)) "distances" plain.Bfs.dist rel.Bfs.dist;
  Alcotest.(check (array int)) "parents" plain.Bfs.parent rel.Bfs.parent;
  Alcotest.(check int) "virtual supersteps = lossless supersteps"
    plain.Bfs.supersteps rel.Bfs.supersteps

let test_reliable_bfs_recovers_from_drops () =
  let g = Gen.erdos_renyi_connected (Prng.create 5) ~n:20 ~p:0.2 ~w_max:4 in
  let plain = Bfs.run ~model:Model.broadcast_congest ~graph:g ~source:0 () in
  let faults = Fault.create ~seed:11 lossy_spec in
  let rel = Bfs.run_reliable ~faults ~model:Model.broadcast_congest ~graph:g ~source:0 () in
  Alcotest.(check bool) "converged" true rel.Bfs.converged;
  Alcotest.(check (array int)) "distances" plain.Bfs.dist rel.Bfs.dist;
  Alcotest.(check (array int)) "parents" plain.Bfs.parent rel.Bfs.parent;
  Alcotest.(check int) "virtual supersteps" plain.Bfs.supersteps rel.Bfs.supersteps;
  Alcotest.(check bool) "drops actually happened" true (Fault.drops faults > 0)

let test_reliable_sssp_recovers_from_drops () =
  let g = Gen.erdos_renyi_connected (Prng.create 6) ~n:16 ~p:0.25 ~w_max:9 in
  let plain = Sssp.run ~model:Model.broadcast_congest ~graph:g ~source:0 () in
  let faults = Fault.create ~seed:12 lossy_spec in
  let rel = Sssp.run_reliable ~faults ~model:Model.broadcast_congest ~graph:g ~source:0 () in
  Alcotest.(check bool) "converged" true rel.Sssp.converged;
  Array.iteri
    (fun v d ->
      Alcotest.(check (float 1e-12)) (Printf.sprintf "dist %d" v) plain.Sssp.dist.(v) d)
    rel.Sssp.dist;
  Alcotest.(check int) "virtual supersteps" plain.Sssp.supersteps rel.Sssp.supersteps;
  let expect = Paths.dijkstra g ~src:0 in
  Array.iteri
    (fun v d -> Alcotest.(check (float 1e-9)) "matches dijkstra" expect.(v) d)
    rel.Sssp.dist

let test_reliable_leader_recovers_from_drops () =
  List.iter
    (fun model ->
      let g = Gen.erdos_renyi_connected (Prng.create 7) ~n:20 ~p:0.2 ~w_max:1 in
      let plain = Leader.run ~model ~graph:g () in
      let faults = Fault.create ~seed:13 lossy_spec in
      let rel = Leader.run_reliable ~faults ~model ~graph:g () in
      Alcotest.(check bool) "converged" true rel.Leader.converged;
      Alcotest.(check int) "same leader" plain.Leader.leader rel.Leader.leader;
      Alcotest.(check int) "virtual supersteps" plain.Leader.supersteps
        rel.Leader.supersteps)
    [ Model.broadcast_congest; Model.broadcast_congested_clique ]

let test_reliable_with_crash_matches_lossless () =
  (* Acceptance scenario: drop_prob = 0.2 plus one injected crash.  Vertex
     23 (distance 1 from the source on the ring) settles within a few
     virtual rounds; crashing it at real superstep 30 hits the protocol
     mid-flight, its neighbors suspect it and heal, and every vertex —
     including the crashed one, whose inner state was already final —
     reports exactly the lossless answer. *)
  let g = Gen.ring (Prng.create 8) ~n:24 in
  let plain = Bfs.run ~model:Model.broadcast_congest ~graph:g ~source:0 () in
  let faults =
    Fault.create ~seed:14 (Fault.spec ~drop_prob:0.2 ~crashes:[ (23, 30) ] ())
  in
  let rel =
    Bfs.run_reliable ~faults ~patience:20 ~model:Model.broadcast_congest ~graph:g
      ~source:0 ()
  in
  Alcotest.(check bool) "converged" true rel.Bfs.converged;
  Alcotest.(check (array int)) "distances" plain.Bfs.dist rel.Bfs.dist

let test_reliable_retransmit_label_charged () =
  let g = Gen.erdos_renyi_connected (Prng.create 9) ~n:16 ~p:0.25 ~w_max:4 in
  let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n:16) in
  let faults = Fault.create ~seed:15 lossy_spec in
  let _ = Bfs.run_reliable ~accountant:acc ~faults ~model:Model.broadcast_congest
            ~graph:g ~source:0 () in
  let breakdown = Rounds.breakdown acc in
  Alcotest.(check bool) "bfs label" true (List.mem_assoc "bfs" breakdown);
  Alcotest.(check bool) "retransmit label" true
    (List.mem_assoc "bfs/retransmit" breakdown);
  Alcotest.(check bool) "retransmission cost visible" true
    (List.assoc "bfs/retransmit" breakdown > 0)

(* ------------------------------------------------------------------ *)
(* Resilient wrappers                                                  *)

let test_resilient_sparsify_ok () =
  let g = Gen.erdos_renyi_connected (Prng.create 10) ~n:48 ~p:0.3 ~w_max:8 in
  let o = Resilient.sparsify ~seed:1 ~epsilon:0.9 g in
  Alcotest.(check string) "ok" "ok" (Resilient.verdict_string o.Resilient.verdict);
  Alcotest.(check bool) "has value" true (o.Resilient.value <> None);
  Alcotest.(check bool) "attempt recorded" true (List.length o.Resilient.attempts >= 1);
  (match o.Resilient.attempts with
  | a :: _ ->
      Alcotest.(check bool) "first attempt uses the caller seed" true
        (a.Resilient.attempt_seed = 1);
      Alcotest.(check bool) "rounds accounted" true (a.Resilient.rounds > 0)
  | [] -> Alcotest.fail "no attempts")

let test_resilient_sparsify_recovers_from_bad_certification () =
  let g = Gen.erdos_renyi_connected (Prng.create 11) ~n:40 ~p:0.3 ~w_max:8 in
  (* Inject a failed certification on the first attempt; the wrapper must
     retry with a fresh split seed and succeed. *)
  let calls = ref 0 in
  let accept (r : Lbcc.sparsifier_result) =
    incr calls;
    !calls > 1 && Float.is_finite r.Lbcc.epsilon_achieved
  in
  let o = Resilient.sparsify ~seed:1 ~epsilon:0.9 ~max_retries:3 ~accept g in
  Alcotest.(check string) "recovered" "ok" (Resilient.verdict_string o.Resilient.verdict);
  Alcotest.(check int) "two attempts" 2 (List.length o.Resilient.attempts);
  (match o.Resilient.attempts with
  | [ first; second ] ->
      Alcotest.(check bool) "first rejected" false first.Resilient.accepted;
      Alcotest.(check bool) "second accepted" true second.Resilient.accepted;
      Alcotest.(check bool) "fresh seed on retry" true
        (second.Resilient.attempt_seed <> first.Resilient.attempt_seed)
  | _ -> Alcotest.fail "expected exactly two attempts")

let test_resilient_degraded_when_budget_exhausted () =
  let g = Gen.erdos_renyi_connected (Prng.create 12) ~n:32 ~p:0.3 ~w_max:8 in
  let o = Resilient.sparsify ~seed:1 ~epsilon:0.9 ~max_retries:1
            ~accept:(fun _ -> false) g in
  Alcotest.(check string) "degraded" "degraded"
    (Resilient.verdict_string o.Resilient.verdict);
  Alcotest.(check bool) "still returns best value" true (o.Resilient.value <> None);
  Alcotest.(check int) "budget respected" 2 (List.length o.Resilient.attempts)

let test_resilient_failed_when_all_raise () =
  (* A disconnected graph makes solve_laplacian raise on every attempt. *)
  let g =
    Graph.create ~n:4 [ { Graph.u = 0; v = 1; w = 1.0 }; { u = 2; v = 3; w = 1.0 } ]
  in
  let b = [| 1.0; -1.0; 0.0; 0.0 |] in
  let o = Resilient.solve_laplacian ~seed:1 ~max_retries:1 g ~b in
  Alcotest.(check string) "failed" "failed"
    (Resilient.verdict_string o.Resilient.verdict);
  Alcotest.(check bool) "no value" true (o.Resilient.value = None);
  List.iter
    (fun a -> Alcotest.(check bool) "attempt rejected" false a.Resilient.accepted)
    o.Resilient.attempts

let test_resilient_solve_and_flow_ok () =
  let g = Gen.erdos_renyi_connected (Prng.create 13) ~n:24 ~p:0.3 ~w_max:4 in
  let prng = Prng.create 99 in
  let b =
    Lbcc_linalg.Vec.mean_center
      (Lbcc_linalg.Vec.init 24 (fun _ -> Prng.gaussian prng))
  in
  let o = Resilient.solve_laplacian ~seed:1 ~eps:1e-6 g ~b in
  Alcotest.(check string) "solve ok" "ok"
    (Resilient.verdict_string o.Resilient.verdict);
  let net = Lbcc_flow.Network.random (Prng.create 14) ~n:8 ~density:0.3
              ~max_capacity:6 ~max_cost:5 in
  let o = Resilient.min_cost_max_flow ~seed:1 net in
  Alcotest.(check string) "flow ok" "ok"
    (Resilient.verdict_string o.Resilient.verdict);
  (match o.Resilient.value with
  | Some r -> Alcotest.(check bool) "exact" true r.Lbcc.exact
  | None -> Alcotest.fail "flow returned no value")

let suites =
  [
    ( "fault.model",
      [
        Alcotest.test_case "same seed, same schedule" `Quick
          test_fault_same_seed_same_schedule;
        Alcotest.test_case "seed changes schedule" `Quick
          test_fault_seed_changes_schedule;
        Alcotest.test_case "crash schedule" `Quick test_fault_crash_schedule;
        Alcotest.test_case "adversarial budget" `Quick test_fault_adversarial_budget;
        Alcotest.test_case "rejects bad spec" `Quick test_fault_rejects_bad_spec;
      ] );
    ( "fault.engine",
      [
        Alcotest.test_case "reports timeout" `Quick test_engine_reports_timeout;
        Alcotest.test_case "timeout raises on demand" `Quick test_engine_timeout_raises;
        Alcotest.test_case "crash stops a vertex" `Quick test_engine_crash_stops_vertex;
        Alcotest.test_case "lossy runs deterministic" `Quick
          test_engine_drops_are_deterministic;
      ] );
    ( "fault.reliable",
      [
        Alcotest.test_case "lossless matches engine" `Quick
          test_reliable_lossless_matches_engine;
        Alcotest.test_case "bfs recovers from drops" `Quick
          test_reliable_bfs_recovers_from_drops;
        Alcotest.test_case "sssp recovers from drops" `Quick
          test_reliable_sssp_recovers_from_drops;
        Alcotest.test_case "leader recovers from drops" `Quick
          test_reliable_leader_recovers_from_drops;
        Alcotest.test_case "crash + drops match lossless" `Quick
          test_reliable_with_crash_matches_lossless;
        Alcotest.test_case "retransmit label charged" `Quick
          test_reliable_retransmit_label_charged;
      ] );
    ( "fault.resilient",
      [
        Alcotest.test_case "sparsify ok" `Quick test_resilient_sparsify_ok;
        Alcotest.test_case "recovers from bad certification" `Quick
          test_resilient_sparsify_recovers_from_bad_certification;
        Alcotest.test_case "degraded on exhausted budget" `Quick
          test_resilient_degraded_when_budget_exhausted;
        Alcotest.test_case "failed when all attempts raise" `Quick
          test_resilient_failed_when_all_raise;
        Alcotest.test_case "solve + flow ok" `Quick test_resilient_solve_and_flow_ok;
      ] );
  ]
