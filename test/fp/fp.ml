(* The shared protocol-fingerprint table.

   One place defines "a run's exact identity": final states (floats by bit
   pattern), engine stats, fault outcomes and the accountant's hierarchical
   breakdowns, rendered as a string.  Three consumers compare these
   fingerprints:

   - test_determinism.ml: sequential vs. parallel (1 = 2 = 4 domains);
   - test_engine_diff.ml: boxed vs. flat engine core, per fault tier;
   - test_fingerprints.ml + `make fingerprints`: the checked-in golden file
     test/fingerprints.expected, pinning today's values against future
     regressions (and documenting exactly what "bit-identical" means).

   Every fingerprint function takes a fresh accountant and fault plan per
   run — fault plans are stateful (adversarial drop budgets burn as
   queried), so sharing one across runs would corrupt the comparison. *)

open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Model = Lbcc_net.Model
module Rounds = Lbcc_net.Rounds
module Fault = Lbcc_net.Fault
module Bfs = Lbcc_dist.Bfs
module Sssp = Lbcc_dist.Sssp
module Leader = Lbcc_dist.Leader
module Sparsify = Lbcc_sparsifier.Sparsify

let seeds = List.init 10 (fun i -> i + 1)

let graph_of seed =
  Gen.erdos_renyi_connected (Prng.create seed) ~n:40 ~p:0.15 ~w_max:8

let faults_of seed =
  Fault.create ~seed
    (Fault.spec ~drop_prob:0.15 ~duplicate_prob:0.1 ~crashes:[ (1, 3) ]
       ~adversarial_drops:2 ())

(* Exact fingerprints: ints verbatim, floats by their bit pattern. *)
let ints a = String.concat "," (List.map string_of_int (Array.to_list a))

let floats a =
  String.concat ","
    (List.map
       (fun f -> Printf.sprintf "%Lx" (Int64.bits_of_float f))
       (Array.to_list a))

let acct_fp acc =
  let flat kvs =
    String.concat ";" (List.map (fun (l, r) -> Printf.sprintf "%s=%d" l r) kvs)
  in
  flat (Rounds.breakdown acc) ^ "|" ^ flat (Rounds.bits_breakdown acc)

let with_acct f =
  let acc = Rounds.create ~bandwidth:16 in
  let fp = f acc in
  fp ^ "|" ^ acct_fp acc

(* protocol name, fingerprint of one full run. *)
let protocols =
  [
    ( "bfs clique",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Bfs.run ~accountant:acc ~model:Model.broadcast_congested_clique
                ~graph:(graph_of seed) ~source:0 ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (ints r.Bfs.dist)
              (ints r.Bfs.parent) r.Bfs.rounds r.Bfs.supersteps r.Bfs.converged)
    );
    ( "bfs faulty",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Bfs.run ~accountant:acc ~faults:(faults_of seed)
                ~model:Model.broadcast_congest ~graph:(graph_of seed) ~source:0
                ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (ints r.Bfs.dist)
              (ints r.Bfs.parent) r.Bfs.rounds r.Bfs.supersteps r.Bfs.converged)
    );
    ( "sssp",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Sssp.run ~accountant:acc ~model:Model.broadcast_congest
                ~graph:(graph_of seed) ~source:0 ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (floats r.Sssp.dist)
              (ints r.Sssp.parent) r.Sssp.rounds r.Sssp.supersteps
              r.Sssp.converged) );
    ( "sssp faulty",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Sssp.run ~accountant:acc ~faults:(faults_of seed)
                ~model:Model.broadcast_congest ~graph:(graph_of seed) ~source:0
                ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (floats r.Sssp.dist)
              (ints r.Sssp.parent) r.Sssp.rounds r.Sssp.supersteps
              r.Sssp.converged) );
    ( "leader",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Leader.run ~accountant:acc ~model:Model.broadcast_congest
                ~graph:(graph_of seed) ()
            in
            Printf.sprintf "%d|%d|%d|%b" r.Leader.leader r.Leader.rounds
              r.Leader.supersteps r.Leader.converged) );
    ( "reliable bfs faulty",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Bfs.run_reliable ~accountant:acc ~faults:(faults_of seed)
                ~model:Model.broadcast_congest ~graph:(graph_of seed) ~source:0
                ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (ints r.Bfs.dist)
              (ints r.Bfs.parent) r.Bfs.rounds r.Bfs.supersteps r.Bfs.converged)
    );
    ( "reliable sssp faulty",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Sssp.run_reliable ~accountant:acc ~faults:(faults_of seed)
                ~model:Model.broadcast_congest ~graph:(graph_of seed) ~source:0
                ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (floats r.Sssp.dist)
              (ints r.Sssp.parent) r.Sssp.rounds r.Sssp.supersteps
              r.Sssp.converged) );
    ( "reliable leader crash+dup",
      (* Combined crash-stop and duplication schedule: the ack/retransmit
         layer has to suspect the crashed vertex and dedupe the copies in
         the same run. *)
      fun seed ->
        with_acct (fun acc ->
            let faults =
              Fault.create ~seed
                (Fault.spec ~drop_prob:0.1 ~duplicate_prob:0.25
                   ~crashes:[ (2, 4); (5, 2) ] ())
            in
            let r =
              Leader.run_reliable ~accountant:acc ~faults
                ~model:Model.broadcast_congest ~graph:(graph_of seed) ()
            in
            Printf.sprintf "%d|%d|%d|%b" r.Leader.leader r.Leader.rounds
              r.Leader.supersteps r.Leader.converged) );
    ( "byzantine bfs equivocating",
      fun seed ->
        with_acct (fun acc ->
            let g = graph_of seed in
            let faults =
              Fault.create ~seed
                (Fault.spec
                   ~byzantine:
                     (List.init (Fault.max_tolerated ~n:(Graph.n g)) Fun.id)
                   ~byz_prob:0.15 ())
            in
            let r, d =
              Bfs.run_byzantine ~accountant:acc ~faults
                ~model:Model.broadcast_congested_clique ~graph:g ~source:0 ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b|%d|%d|%d" (ints r.Bfs.dist)
              (ints r.Bfs.parent) r.Bfs.rounds r.Bfs.supersteps r.Bfs.converged
              d.Lbcc_net.Byzantine.Diag.echo_rounds
              d.Lbcc_net.Byzantine.Diag.repairs_served
              d.Lbcc_net.Byzantine.Diag.quorum_failures) );
    ( "sparsifier",
      fun seed ->
        with_acct (fun acc ->
            let g =
              Gen.erdos_renyi_connected (Prng.create seed) ~n:24 ~p:0.3
                ~w_max:8
            in
            let r =
              Sparsify.run ~accountant:acc ~prng:(Prng.create (seed + 100))
                ~graph:g ~epsilon:0.5 ()
            in
            let h = r.Sparsify.sparsifier in
            let edges =
              Array.to_list (Graph.edges h)
              |> List.map (fun (e : Graph.edge) ->
                     Printf.sprintf "%d-%d:%Lx" e.Graph.u e.Graph.v
                       (Int64.bits_of_float e.Graph.w))
            in
            Printf.sprintf "%s|%s|%d|%d" (String.concat "," edges)
              (ints (Sparsify.out_degrees r))
              r.Sparsify.rounds r.Sparsify.final_sampled) );
  ]

(* The golden file keeps a readable subset of the seed range (the full
   cross product lives in the test suites).  Raw fingerprint strings are
   checked in rather than digests of them: when a value drifts, the diff
   shows which field moved. *)
let golden_seeds = [ 1; 5; 10 ]

(* One golden line: "<protocol>\t<seed>\t<fingerprint>".  Protocol names
   contain spaces but never tabs. *)
let golden_lines () =
  List.concat_map
    (fun (name, f) ->
      List.map
        (fun seed -> Printf.sprintf "%s\t%d\t%s" name seed (f seed))
        golden_seeds)
    protocols
